// Compile-fail case: mixing frequency with a power ratio
//
// Without CF_MISUSE this file must compile (positive control proving the
// harness sees a working translation unit). With -DCF_MISUSE it must NOT
// compile — ctest runs both variants (see CMakeLists.txt).
#include "common/units.hpp"

using namespace alphawan;

constexpr Hz ok = Hz{868.1e6} + Hz{200e3};
#ifdef CF_MISUSE
constexpr Hz bad = Hz{868.1e6} + Db{3.0};  // cross-unit addition
#endif

int main() { return 0; }
