#include "phy/capture.hpp"

#include <cmath>

namespace alphawan {

Db capture_sir_threshold(SpreadingFactor wanted, SpreadingFactor interferer) {
  // Croce et al. co-channel rejection matrix (dB), 125 kHz. Diagonal: the
  // wanted packet needs ~+1 dB (we use +6 dB to model non-ideal timing /
  // imperfect capture on COTS gateways). Off-diagonal: the interferer may
  // be stronger by the listed magnitude before the wanted packet is lost.
  static constexpr double kMatrix[6][6] = {
      // interferer:  SF7     SF8     SF9     SF10    SF11    SF12
      /* SF7  */ {6.0, -8.0, -9.0, -9.0, -9.0, -9.0},
      /* SF8  */ {-11.0, 6.0, -11.0, -12.0, -13.0, -13.0},
      /* SF9  */ {-15.0, -13.0, 6.0, -13.0, -14.0, -15.0},
      /* SF10 */ {-19.0, -18.0, -17.0, 6.0, -17.0, -18.0},
      /* SF11 */ {-22.0, -22.0, -21.0, -20.0, 6.0, -20.0},
      /* SF12 */ {-25.0, -25.0, -25.0, -24.0, -23.0, 6.0},
  };
  return Db{kMatrix[sf_index(wanted)][sf_index(interferer)]};
}

bool survives_interference(SpreadingFactor wanted_sf, Dbm wanted_dbm,
                           SpreadingFactor interferer_sf, Dbm interferer_dbm) {
  const Db sir = wanted_dbm - interferer_dbm;
  return sir >= capture_sir_threshold(wanted_sf, interferer_sf);
}

Dbm combine_powers_dbm(Dbm a, Dbm b) {
  const double lin =
      std::pow(10.0, a.value() / 10.0) + std::pow(10.0, b.value() / 10.0);
  return Dbm{10.0 * std::log10(lin)};
}

}  // namespace alphawan
