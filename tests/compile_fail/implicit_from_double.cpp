// Compile-fail case: implicit construction from a bare double
//
// Without CF_MISUSE this file must compile (positive control proving the
// harness sees a working translation unit). With -DCF_MISUSE it must NOT
// compile — ctest runs both variants (see CMakeLists.txt).
#include "common/units.hpp"

using namespace alphawan;

constexpr Hz ok{868.1e6};  // explicit construction is the visible act
#ifdef CF_MISUSE
constexpr Hz bad = 868.1e6;  // raw numbers must not silently become units
#endif

int main() { return 0; }
