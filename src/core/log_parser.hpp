// AlphaWAN's ChirpStack-side log parser (paper Sec. 4.3.3): interprets the
// uplink metadata recorded by the network server (receiving channel,
// timestamp, SNR per gateway) into user-gateway link profiles and
// per-window traffic series — the raw CP input.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "net/gateway.hpp"

namespace alphawan {

// Best observed SNR per (node, gateway), plus the settings the node used.
struct LinkEstimates {
  struct NodeLinks {
    std::map<GatewayId, Db> gateway_snr;
    Dbm observed_tx_power = kDefaultTxPower;  // power during measurement
    std::size_t packets = 0;
  };
  std::map<NodeId, NodeLinks> nodes;

  [[nodiscard]] bool empty() const { return nodes.empty(); }
};

// Parse link profiles from a raw uplink log. `tx_power_of` supplies each
// node's transmit power during the logged period (the server knows the
// configs it pushed); nodes missing from the map default to 14 dBm.
[[nodiscard]] LinkEstimates parse_links(
    std::span<const UplinkRecord> log,
    const std::map<NodeId, Dbm>& tx_power_of = {});

// Per-window delivered-packet counts per node: series[node][w] = packets
// in window w. Window w covers [w*window_len, (w+1)*window_len).
[[nodiscard]] std::map<NodeId, std::vector<std::size_t>> per_window_counts(
    std::span<const UplinkRecord> log, Seconds window_len,
    std::size_t num_windows);

}  // namespace alphawan
