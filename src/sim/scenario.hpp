// ScenarioRunner: the glue that runs one window of traffic through every
// gateway of every coexisting network, feeds the network servers, and
// classifies packet fates. This is the top-level simulation API used by
// benches, examples, and AlphaWAN's measurement loop.
//
// Within a window, gateways are independent consumers of the shared
// transmission list, so run_window fans them out across the parallel
// executor (common/parallel.hpp) and merges per-gateway results in
// deployment order — bit-identical to the serial run (docs/parallelism.md).
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/topology.hpp"

namespace alphawan {

class SimInvariants;

// Seed-stable per-(gateway, packet) generator for fast-fading draws. The
// stream depends only on the runner's root seed and the two ids — never on
// iteration order — so engine refactors cannot reshuffle draws and a single
// packet's reception can be replayed in isolation (check/replay.hpp).
[[nodiscard]] Rng packet_link_rng(const Rng& root, GatewayId gateway,
                                  PacketId packet);

// Optional per-gateway outcome post-processor (hook used by the CIC
// baseline to resolve collisions a stock gateway cannot). Receives the
// events the gateway saw and may rewrite outcome dispositions. May be
// invoked from concurrent gateway tasks, so it must not mutate state shared
// across gateways (see docs/parallelism.md).
using RxPostProcessor = std::function<void(
    const Gateway& gw, const std::vector<RxEvent>& events,
    std::vector<RxOutcome>& outcomes)>;

// Per-runner knobs, consolidated in one value so a runner is configured in
// a single statement instead of a pile of setters.
struct RunOptions {
  // Transmissions weaker than noise_floor - prune_margin at a gateway are
  // dropped from that gateway's event list (they can neither be received
  // nor meaningfully interfere).
  Db prune_margin{25.0};
  RxPostProcessor post_processor;
  // Worker threads for the per-gateway fan-out: 0 = the ALPHAWAN_THREADS
  // process default, 1 = force serial.
  int threads = 0;
};

struct WindowResult {
  // Fate of every offered packet (across all networks).
  std::vector<PacketFate> fates;
  // Delivered unique packets per network in this window.
  std::map<NetworkId, std::size_t> delivered;
  std::map<NetworkId, std::size_t> offered;
  // Distinct nodes served per network.
  std::map<NetworkId, std::size_t> served_nodes;

  [[nodiscard]] std::size_t total_delivered() const;
  [[nodiscard]] std::size_t total_offered() const;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(Deployment& deployment, std::uint64_t seed = 7,
                          RunOptions options = {});

  void set_options(RunOptions options) { options_ = std::move(options); }
  [[nodiscard]] const RunOptions& options() const { return options_; }
  [[nodiscard]] Db prune_margin() const { return options_.prune_margin; }
  [[nodiscard]] std::uint64_t seed() const { return rng_.root_seed(); }

  // Deprecated setter shims, kept for one release for external callers.
  [[deprecated("pass RunOptions to the constructor or set_options")]]
  void set_prune_margin(Db margin) {
    options_.prune_margin = margin;
  }
  [[deprecated("pass RunOptions to the constructor or set_options")]]
  void set_post_processor(RxPostProcessor proc) {
    options_.post_processor = std::move(proc);
  }

  // Attach the correctness harness: every window is checked for packet
  // conservation, FCFS ordering, and decoder-pool discipline. Enabled
  // automatically (fail-fast) when ALPHAWAN_CHECK=1 is exported. Pass
  // nullptr to detach. The observer protocol is sequential, so an attached
  // checker forces the window to run serially.
  void set_invariants(SimInvariants* invariants) { invariants_ = invariants; }
  [[nodiscard]] SimInvariants* invariants() const { return invariants_; }

  // Run one window. Transmissions may belong to any network in the
  // deployment; every gateway observes every transmission in range
  // (including foreign ones — that is the point of the paper).
  WindowResult run_window(const std::vector<Transmission>& txs);

  // Convenience: run a window and add each fate to `metrics`.
  WindowResult run_window(const std::vector<Transmission>& txs,
                          MetricsCollector& metrics);

 private:
  // Per-window working storage, reused across windows so a steady-state
  // window allocates nothing in the prepass or the classification pass
  // (docs/performance.md). Makes concurrent run_window calls on one runner
  // invalid — they already were (network servers are shared state).
  struct RunScratch {
    std::vector<std::uint32_t> row_of_tx;  // tx index -> link-cache row
    std::vector<std::uint32_t> task_col;   // task index -> link-cache column
    std::vector<std::uint64_t> tx_mask;    // tx index -> candidate columns
    std::vector<std::vector<std::uint32_t>> gw_txs;  // per-column tx lists
                                                     // (> 64-gateway path)
    std::vector<std::vector<RxEvent>> events;        // per-task event arena
    // Flat per-packet own-network outcome gather (count / prefix / fill).
    std::vector<std::uint32_t> own_count;
    std::vector<std::uint32_t> own_offset;
    std::vector<RxOutcome> own_flat;
    // Per-network uplink gather handed to NetworkServer::ingest.
    std::vector<UplinkRecord> uplinks;
    // Flat per-network classification counters (dense network index).
    std::vector<NetworkId> net_ids;
    std::vector<std::size_t> offered;
    std::vector<std::size_t> delivered;
    std::vector<std::vector<NodeId>> served;
  };

  Deployment& deployment_;
  Rng rng_;
  RunOptions options_;
  SimInvariants* invariants_ = nullptr;
  RunScratch scratch_;
};

}  // namespace alphawan
