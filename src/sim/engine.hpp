// Discrete-event simulation engine: a clock plus an event queue. Used for
// backhaul/latency simulations (Fig. 17) and time-stepped scenarios; the
// radio itself is window-batched (see ScenarioRunner).
#pragma once

#include <optional>

#include "sim/event_queue.hpp"

namespace alphawan {

class Engine {
 public:
  [[nodiscard]] Seconds now() const { return now_; }

  // Schedule relative to the current time.
  void schedule_in(Seconds delay, EventQueue::Action action);
  // Schedule at an absolute time (must not be in the past).
  void schedule_at(Seconds when, EventQueue::Action action);

  // Run until the queue drains or the horizon is reached (no horizon:
  // drain the queue). Returns the number of events executed. The clock
  // advances to the horizon when events remain beyond it.
  std::size_t run(std::optional<Seconds> horizon = std::nullopt);

  // Execute at most one event; returns false if the queue is empty or the
  // next event is beyond the horizon (no horizon: any event runs).
  bool step(std::optional<Seconds> horizon = std::nullopt);

  void reset();

 private:
  Seconds now_{0.0};
  EventQueue queue_;
};

}  // namespace alphawan
