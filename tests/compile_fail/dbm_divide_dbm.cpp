// Compile-fail case: dividing absolute log-powers
//
// Without CF_MISUSE this file must compile (positive control proving the
// harness sees a working translation unit). With -DCF_MISUSE it must NOT
// compile — ctest runs both variants (see CMakeLists.txt).
#include "common/units.hpp"

using namespace alphawan;

constexpr double ok = Db{6.0} / Db{3.0};  // ratio of ratios is dimensionless
#ifdef CF_MISUSE
constexpr double bad = Dbm{-80.0} / Dbm{-40.0};  // log-power ratio is meaningless
#endif

int main() { return 0; }
