// Operator <-> AlphaWAN-Master protocol (paper Sec. 4.3.2): operators
// register before deploying, then request channel plans; the Master
// responds with frequency-misaligned channel assignments. In the paper the
// exchange runs over TCP; here the same messages are serialized with the
// wire codec and carried by the in-process MessageBus.
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "backhaul/wire.hpp"
#include "phy/band_plan.hpp"

namespace alphawan {

struct RegisterMsg {
  NetworkId operator_id = 0;
  std::string operator_name;

  friend bool operator==(const RegisterMsg&, const RegisterMsg&) = default;
};

struct RegisterAckMsg {
  NetworkId operator_id = 0;
  std::uint32_t master_epoch = 0;

  friend bool operator==(const RegisterAckMsg&,
                         const RegisterAckMsg&) = default;
};

struct PlanRequestMsg {
  NetworkId operator_id = 0;
  Hz spectrum_base{0.0};
  Hz spectrum_width{0.0};
  std::uint16_t requested_channels = 8;

  friend bool operator==(const PlanRequestMsg&,
                         const PlanRequestMsg&) = default;
};

struct PlanAssignMsg {
  NetworkId operator_id = 0;
  // Master epoch the plan was computed at. Epochs advance on every new
  // registration; receivers must ignore assignments from a stale epoch
  // (a delayed or duplicated message can arrive after a refresh).
  std::uint32_t master_epoch = 0;
  double overlap_ratio = 0.0;  // with the nearest coexisting plan
  Hz frequency_offset{0.0};   // applied to the standard grid
  std::vector<Channel> channels;

  friend bool operator==(const PlanAssignMsg&, const PlanAssignMsg&) = default;
};

struct ErrorMsg {
  std::uint16_t code = 0;
  std::string message;

  friend bool operator==(const ErrorMsg&, const ErrorMsg&) = default;
};

using MasterMessage = std::variant<RegisterMsg, RegisterAckMsg, PlanRequestMsg,
                                   PlanAssignMsg, ErrorMsg>;

// Encoded payloads carry a CRC-32 trailer (wire.hpp `seal_payload`), so
// any truncation or bit corruption in flight is rejected on decode.
[[nodiscard]] std::vector<std::uint8_t> encode_message(
    const MasterMessage& msg);

// Returns nullopt on malformed/truncated/corrupted/unknown-tag payloads,
// including any message carrying a non-finite float field.
[[nodiscard]] std::optional<MasterMessage> decode_message(
    std::span<const std::uint8_t> payload);

}  // namespace alphawan
