#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace alphawan {
namespace {

TEST(StaticPartition, CoversEveryIndexExactlyOnce) {
  for (std::size_t count : {0u, 1u, 2u, 7u, 8u, 9u, 100u, 1000u}) {
    for (int chunks : {1, 2, 3, 4, 8, 16, 64}) {
      const auto ranges = static_partition(count, chunks);
      std::vector<int> hits(count, 0);
      for (const auto& r : ranges) {
        EXPECT_LT(r.begin, r.end);  // empty ranges are omitted
        for (std::size_t i = r.begin; i < r.end; ++i) ++hits[i];
      }
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i], 1) << "count=" << count << " chunks=" << chunks
                              << " index=" << i;
      }
    }
  }
}

TEST(StaticPartition, ChunkCountAndContiguity) {
  const auto ranges = static_partition(10, 4);
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges.front().begin, 0u);
  EXPECT_EQ(ranges.back().end, 10u);
  for (std::size_t c = 1; c < ranges.size(); ++c) {
    EXPECT_EQ(ranges[c].begin, ranges[c - 1].end);
  }
  // More chunks than indices: one singleton range per index.
  EXPECT_EQ(static_partition(3, 8).size(), 3u);
  EXPECT_TRUE(static_partition(0, 8).empty());
}

TEST(StaticPartition, BalancedWithEarlyRemainder) {
  const auto ranges = static_partition(11, 4);  // 3,3,3,2
  ASSERT_EQ(ranges.size(), 4u);
  std::vector<std::size_t> sizes;
  for (const auto& r : ranges) sizes.push_back(r.end - r.begin);
  EXPECT_EQ(sizes, (std::vector<std::size_t>{3, 3, 3, 2}));
}

TEST(StaticPartition, IdenticalForRepeatedCalls) {
  // The partition is a pure function of (count, chunks) — the determinism
  // contract depends on it.
  for (int rep = 0; rep < 3; ++rep) {
    const auto a = static_partition(137, 8);
    const auto b = static_partition(137, 8);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t c = 0; c < a.size(); ++c) {
      EXPECT_EQ(a[c].begin, b[c].begin);
      EXPECT_EQ(a[c].end, b[c].end);
    }
  }
}

TEST(ParseThreadCount, AcceptsPositiveIntegers) {
  EXPECT_EQ(parse_thread_count("1"), 1);
  EXPECT_EQ(parse_thread_count("8"), 8);
  EXPECT_EQ(parse_thread_count("4096"), 4096);
}

TEST(ParseThreadCount, FallsBackToHardwareConcurrency) {
  const int fallback = parse_thread_count(nullptr);
  EXPECT_GE(fallback, 1);
  EXPECT_EQ(parse_thread_count(""), fallback);
  EXPECT_EQ(parse_thread_count("zero"), fallback);
  EXPECT_EQ(parse_thread_count("0"), fallback);
  EXPECT_EQ(parse_thread_count("-3"), fallback);
  EXPECT_EQ(parse_thread_count("8 threads"), fallback);
  EXPECT_EQ(parse_thread_count("99999999"), fallback);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  for (int threads : {1, 2, 4, 8}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(
        hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, threads);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelFor, ZeroCountIsANoop) {
  bool ran = false;
  parallel_for(0, [&](std::size_t) { ran = true; }, 8);
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, SerialWhenOneThread) {
  // threads=1 must run inline on the calling thread, in index order.
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  parallel_for(
      16,
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
      },
      1);
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ParallelMap, SlotsMatchIndices) {
  for (int threads : {1, 2, 8}) {
    const auto out = parallel_map(
        100, [](std::size_t i) { return i * i; }, threads);
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelMap, IdenticalAcrossThreadCounts) {
  const auto serial =
      parallel_map(512, [](std::size_t i) { return 31 * i + 7; }, 1);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(parallel_map(512, [](std::size_t i) { return 31 * i + 7; },
                           threads),
              serial);
  }
}

TEST(ParallelFor, PropagatesExceptionFromLowestFailingChunk) {
  // Several chunks throw; the rethrown exception must always be the one
  // from the lowest-indexed failing chunk, so error reporting is
  // deterministic too. With 8 chunks over 64 indices, index 8 begins
  // chunk 1 — the lowest failing chunk of {1, 3, 5}.
  for (int attempt = 0; attempt < 8; ++attempt) {
    try {
      parallel_for(
          64,
          [](std::size_t i) {
            if (i == 8 || i == 24 || i == 40) {
              throw std::runtime_error("chunk-" + std::to_string(i / 8));
            }
          },
          8);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& err) {
      EXPECT_STREQ(err.what(), "chunk-1");
    }
  }
}

TEST(ParallelFor, PoolSurvivesAnException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   16, 4, [](std::size_t) { throw std::logic_error("boom"); }),
               std::logic_error);
  // The workers must still be alive and draining tasks.
  std::atomic<int> total{0};
  pool.parallel_for(32, 4, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 32);
}

TEST(ParallelFor, NestedCallsDegradeToSerialWithoutDeadlock) {
  // A body that itself calls parallel_for must not deadlock on the shared
  // global pool: inner regions run serially on the worker.
  std::vector<std::atomic<int>> hits(64);
  parallel_for(
      8,
      [&](std::size_t outer) {
        parallel_for(
            8,
            [&](std::size_t inner) { hits[outer * 8 + inner].fetch_add(1); },
            8);
      },
      8);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, LifecycleConstructDestruct) {
  // Pools of every size construct, run one region, and tear down cleanly.
  for (int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    std::atomic<int> total{0};
    pool.parallel_for(10, threads, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 10);
  }
}

TEST(ThreadPool, GlobalPoolIsReusableAcrossRegions) {
  auto& pool = ThreadPool::global();
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(100, pool.threads(),
                      [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
    EXPECT_EQ(sum.load(), 4950);
  }
}

}  // namespace
}  // namespace alphawan
