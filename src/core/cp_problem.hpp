// The Channel Planning (CP) optimization problem (paper Sec. 4.3.1).
//
// Input triplet (GW, ND, CH) plus the discrete transmission-distance set
// DR, the coverage relation r_{ijl}, node traffic U, and per-gateway radio
// constants (C_j decoders, P_j max channels, B_j max bandwidth). Decision:
// which grid channels each gateway operates, and which (channel, distance
// level) each node uses. Objective: minimize the total packet-loss risk
// Sum_i Phi_i, where phi_j = max(0, k_j - C_j) is gateway overload and
// Phi_i is the minimum overload among gateways serving node i.
//
// The problem is a knapsack variant (NP-hard); AlphaWAN searches it with
// an evolutionary algorithm seeded by a greedy constructor.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/band_plan.hpp"
#include "phy/sensitivity.hpp"

namespace alphawan {

// One distance level l corresponds to operating at data rate
// level_to_dr(l): level 0 = DR5 (shortest reach) ... 5 = DR0 (longest).
inline constexpr int kNumLevels = kNumDataRates;

[[nodiscard]] constexpr DataRate level_to_dr(int level) {
  return static_cast<DataRate>(kNumDataRates - 1 - level);
}
[[nodiscard]] constexpr int dr_to_level(DataRate dr) {
  return kNumDataRates - 1 - dr_value(dr);
}

inline constexpr std::uint8_t kUnreachable = 255;

struct CpGateway {
  GatewayId id = kInvalidGateway;
  int decoders = 16;       // C_j
  int max_channels = 8;    // P_j
  int max_span_channels = 8;  // B_j expressed in grid-channel units
};

struct CpNode {
  NodeId id = kInvalidNode;
  double traffic = 1.0;  // U_i: expected packets per planning window
  // min_level[j]: smallest distance level at which the node reaches
  // gateway j (kUnreachable if no level works). Reachability is monotone
  // in the level.
  std::vector<std::uint8_t> min_level;
};

struct CpInstance {
  Spectrum spectrum{};
  int num_channels = 0;  // |CH| = spectrum grid size
  std::vector<CpGateway> gateways;
  std::vector<CpNode> nodes;

  // Capacity of one (channel, data-rate) pair in packets per window, used
  // to penalize RF channel contention (users sharing identical settings).
  // For concurrency experiments (one packet per node per window) this is
  // 1.0: one user per channel/SF pair, the oracle assumption.
  std::vector<double> pair_capacity = std::vector<double>(kNumDataRates, 1.0);

  [[nodiscard]] bool valid() const;

  // Total decoder resources vs. total traffic (quick feasibility signal).
  [[nodiscard]] double total_decoders() const;
  [[nodiscard]] double total_traffic() const;
};

// A candidate plan. Gateways hold sorted unique grid-channel indices;
// nodes hold a grid channel index and a distance level.
struct CpSolution {
  std::vector<std::vector<std::int32_t>> gateway_channels;
  std::vector<std::int32_t> node_channel;
  std::vector<std::int32_t> node_level;

  [[nodiscard]] static CpSolution empty_for(const CpInstance& instance);
};

// Weights of the penalty terms added to the paper's objective.
// All loss terms are per-packet probabilities/counts, so the weights are
// directly comparable: a disconnected node loses everything (1.2 > any
// overload fraction), and a user squeezed onto a full (channel, DR) pair
// destroys its own packet plus a peer's (~2.5).
struct CpWeights {
  double disconnect_penalty = 1.2;
  double pair_overload_weight = 2.5;
  // Bias toward fast data rates / low power: faster DRs carry more
  // packets per unit airtime, so the planner only slows a user down when
  // contention demands it.
  double level_cost = 0.05;
};

struct CpEvaluation {
  double objective = 0.0;        // total fitness (lower is better)
  double overload_risk = 0.0;    // Sum_i U_i * Phi_i (paper objective)
  double pair_overload = 0.0;    // RF contention pressure
  double disconnected = 0.0;     // traffic with no serving gateway
  double level_bias = 0.0;       // the tiny low-power tie-break term
  std::vector<double> gateway_load;  // k_j

  // The risk terms alone — zero means a plan with no predicted loss,
  // regardless of the cosmetic level bias.
  [[nodiscard]] double hard_objective() const {
    return objective - level_bias;
  }
};

// Evaluate a solution. Infeasible gateway channel sets (too many channels
// or span too wide) must be repaired before evaluation; evaluate() trusts
// its input (checked in debug builds).
[[nodiscard]] CpEvaluation evaluate(const CpInstance& instance,
                                    const CpSolution& solution,
                                    const CpWeights& weights = CpWeights{});

// Structural feasibility of a solution w.r.t. the instance's constraints
// (gateway channel count/span, channel indices in range, node levels).
[[nodiscard]] bool feasible(const CpInstance& instance,
                            const CpSolution& solution);

// Clamp/repair a solution in place to satisfy structural constraints.
void repair(const CpInstance& instance, CpSolution& solution);

}  // namespace alphawan
