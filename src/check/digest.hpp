// Run digests: an order-sensitive FNV-1a hash over the PacketFate stream
// of a simulation run. Two runs with the same seed must produce the same
// digest bit-for-bit; golden digests for the canonical scenarios (see
// check/canonical.hpp) turn "did this refactor change simulation
// behaviour?" into a single integer comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/metrics.hpp"

namespace alphawan {

inline constexpr std::uint64_t kFnv1aOffset = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001B3ULL;

// Fold `len` bytes into a running FNV-1a state.
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t len,
                                  std::uint64_t state = kFnv1aOffset);

// Digest of one fate (field-by-field, so struct padding never leaks in).
[[nodiscard]] std::uint64_t fold_fate(const PacketFate& fate,
                                      std::uint64_t state);

// Digest of an ordered fate stream (a window or a whole run).
[[nodiscard]] std::uint64_t fate_digest(const std::vector<PacketFate>& fates);

// Lower-case 16-char hex rendering, as stored in golden files.
[[nodiscard]] std::string digest_hex(std::uint64_t digest);

}  // namespace alphawan
