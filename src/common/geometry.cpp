#include "common/geometry.hpp"

#include <algorithm>
#include <cmath>

namespace alphawan {

Meters distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double bearing(const Point& from, const Point& to) {
  return std::atan2(to.y - from.y, to.x - from.x);
}

Point Region::random_point(Rng& rng) const {
  return {rng.uniform(0.0, width), rng.uniform(0.0, height)};
}

bool Region::contains(const Point& p) const {
  return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= height;
}

std::vector<Point> grid_placement(const Region& region, std::size_t count,
                                  Rng& rng, double jitter_fraction) {
  std::vector<Point> points;
  points.reserve(count);
  if (count == 0) return points;
  // Pick the most-square grid that holds `count` cells.
  const auto cols = static_cast<std::size_t>(std::ceil(std::sqrt(
      static_cast<double>(count) * region.width / region.height)));
  const std::size_t rows = (count + cols - 1) / cols;
  const double cell_w = region.width / static_cast<double>(cols);
  const double cell_h = region.height / static_cast<double>(rows);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t r = i / cols;
    const std::size_t c = i % cols;
    const double jitter_x =
        rng.uniform(-jitter_fraction, jitter_fraction) * cell_w;
    const double jitter_y =
        rng.uniform(-jitter_fraction, jitter_fraction) * cell_h;
    Point p{(static_cast<double>(c) + 0.5) * cell_w + jitter_x,
            (static_cast<double>(r) + 0.5) * cell_h + jitter_y};
    p.x = std::clamp(p.x, 0.0, region.width);
    p.y = std::clamp(p.y, 0.0, region.height);
    points.push_back(p);
  }
  return points;
}

std::vector<Point> uniform_placement(const Region& region, std::size_t count,
                                     Rng& rng) {
  std::vector<Point> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back(region.random_point(rng));
  }
  return points;
}

std::vector<Point> clustered_placement(const Region& region, std::size_t count,
                                       std::size_t clusters,
                                       Meters cluster_sigma, Rng& rng) {
  std::vector<Point> centers = uniform_placement(region, std::max<std::size_t>(clusters, 1), rng);
  std::vector<Point> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& c = centers[i % centers.size()];
    Point p{c.x + rng.normal(0.0, cluster_sigma),
            c.y + rng.normal(0.0, cluster_sigma)};
    p.x = std::clamp(p.x, 0.0, region.width);
    p.y = std::clamp(p.y, 0.0, region.height);
    points.push_back(p);
  }
  return points;
}

}  // namespace alphawan
