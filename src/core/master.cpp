#include "core/master.hpp"

#include <algorithm>
#include <cmath>

namespace alphawan {

MasterNode::MasterNode(MasterConfig config) : config_(config) {
  config_.desired_overlap = std::clamp(config_.desired_overlap, 0.0, 0.95);
  config_.expected_networks = std::max(1, config_.expected_networks);
}

Hz MasterNode::plan_offset_step() const {
  const Hz desired_delta =
      (1.0 - config_.desired_overlap) * kLoRaBandwidth125k;
  const int networks =
      std::max<int>(config_.expected_networks,
                    static_cast<int>(slots_.size()));
  if (networks <= 1) return desired_delta;
  // Plans repeat every grid spacing; compress the step when the desired
  // misalignment cannot host everyone.
  const int capacity =
      std::max(1, static_cast<int>(kChannelSpacing / desired_delta));
  if (networks <= capacity) return desired_delta;
  return kChannelSpacing / static_cast<double>(networks);
}

double MasterNode::effective_overlap() const {
  const Hz step = plan_offset_step();
  return std::max(0.0, 1.0 - step / kLoRaBandwidth125k);
}

RegisterAckMsg MasterNode::handle_register(const RegisterMsg& msg) {
  if (!slots_.contains(msg.operator_id)) {
    const int slot = static_cast<int>(slots_.size());
    slots_[msg.operator_id] = slot;
    ++epoch_;
  }
  return RegisterAckMsg{msg.operator_id, epoch_};
}

std::optional<Hz> MasterNode::offset_of(NetworkId operator_id) const {
  const auto it = slots_.find(operator_id);
  if (it == slots_.end()) return std::nullopt;
  return config_.base_offset +
         plan_offset_step() * static_cast<double>(it->second);
}

MasterMessage MasterNode::handle_plan_request(const PlanRequestMsg& msg) {
  const auto offset = offset_of(msg.operator_id);
  if (!offset) {
    return ErrorMsg{1, "operator not registered"};
  }
  PlanAssignMsg assign;
  assign.operator_id = msg.operator_id;
  assign.master_epoch = epoch_;
  assign.frequency_offset = *offset;
  assign.overlap_ratio = effective_overlap();
  // Channels: the requested count of grid channels, shifted by the
  // operator's offset, kept inside the spectrum.
  const Spectrum& spec = config_.spectrum;
  const int want = std::max<int>(1, msg.requested_channels);
  for (int k = 0; k < spec.grid_size() && static_cast<int>(
                                              assign.channels.size()) < want;
       ++k) {
    Channel ch = spec.grid_channel(k);
    ch.center += *offset;
    if (spec.contains(ch)) assign.channels.push_back(ch);
  }
  return assign;
}

MasterService::MasterService(MasterNode& master, MessageBus& bus)
    : master_(master), bus_(bus) {
  bus_.attach(endpoint(), [this](const EndpointId& from,
                                 std::vector<std::uint8_t> payload) {
    on_message(from, std::move(payload));
  });
}

void MasterService::on_message(const EndpointId& from,
                               std::vector<std::uint8_t> payload) {
  const auto msg = decode_message(payload);
  MasterMessage reply = ErrorMsg{2, "malformed message"};
  if (msg) {
    if (const auto* reg = std::get_if<RegisterMsg>(&*msg)) {
      // Duplicate registrations (an operator's retry whose ack was lost)
      // are answered idempotently with the current epoch.
      if (master_.offset_of(reg->operator_id).has_value()) {
        ++duplicate_registrations_;
      }
      reply = master_.handle_register(*reg);
    } else if (const auto* req = std::get_if<PlanRequestMsg>(&*msg)) {
      reply = master_.handle_plan_request(*req);
    } else {
      reply = ErrorMsg{3, "unexpected message type"};
    }
  }
  ++requests_served_;
  bus_.send(endpoint(), from, encode_message(reply), /*wan=*/true);
}

// ---- operator client --------------------------------------------------------

OperatorClient::OperatorClient(NetworkId operator_id,
                               std::string operator_name, MessageBus& bus,
                               RetryPolicy policy, NetworkServer* server)
    : id_(operator_id),
      name_(std::move(operator_name)),
      bus_(bus),
      policy_(policy),
      server_(server) {
  bus_.attach(endpoint(), [this](const EndpointId& from,
                                 std::vector<std::uint8_t> payload) {
    on_message(from, std::move(payload));
  });
}

OperatorClient::~OperatorClient() {
  bus_.detach(endpoint());
  ++xact_;  // neutralize any timer still queued on the engine
}

EndpointId OperatorClient::endpoint() const {
  return "operator-" + std::to_string(id_);
}

void OperatorClient::sync(const Spectrum& spectrum,
                          std::uint16_t requested_channels) {
  spectrum_ = spectrum;
  requested_channels_ = requested_channels;
  state_ = registered_ ? State::kRequesting : State::kRegistering;
  attempt_ = 0;
  ++xact_;
  transmit();
}

void OperatorClient::refresh() {
  if (state_ != State::kIdle) return;  // exchange already in flight
  state_ = registered_ ? State::kRequesting : State::kRegistering;
  attempt_ = 0;
  ++xact_;
  transmit();
}

void OperatorClient::transmit() {
  ++stats_.sends;
  MasterMessage msg;
  if (state_ == State::kRegistering) {
    msg = RegisterMsg{id_, name_};
  } else {
    msg = PlanRequestMsg{id_, spectrum_.base, spectrum_.width,
                         requested_channels_};
  }
  bus_.send(endpoint(), MasterService::endpoint(), encode_message(msg),
            /*wan=*/true);
  arm_timeout();
}

void OperatorClient::arm_timeout() {
  const Seconds timeout = policy_.timeout_for_attempt(attempt_);
  bus_.engine().schedule_in(timeout, [this, xact = xact_] {
    if (xact != xact_ || state_ == State::kIdle) return;  // superseded
    ++stats_.timeouts;
    ++attempt_;
    if (policy_.max_attempts > 0 && attempt_ >= policy_.max_attempts) {
      // Give up; the last-known-good plan (if any) stays in force.
      ++stats_.gave_up;
      state_ = State::kIdle;
      ++xact_;
      return;
    }
    ++stats_.retries;
    transmit();
  });
}

void OperatorClient::accept_plan(const PlanAssignMsg& assign) {
  plan_ = assign;
  if (server_ != nullptr) {
    (void)server_->adopt_plan(assign.master_epoch, assign.frequency_offset,
                              assign.channels);
  }
}

void OperatorClient::on_message(const EndpointId& /*from*/,
                                std::vector<std::uint8_t> payload) {
  const auto msg = decode_message(payload);
  if (!msg) {
    // Corrupted/truncated reply: ignore; the timeout path retries.
    ++stats_.malformed_ignored;
    return;
  }
  if (const auto* ack = std::get_if<RegisterAckMsg>(&*msg)) {
    if (ack->operator_id != id_) return;
    if (state_ != State::kRegistering) {
      // A duplicated or late ack for an exchange we already completed.
      ++stats_.duplicates_ignored;
      return;
    }
    registered_ = true;
    state_ = State::kRequesting;
    attempt_ = 0;
    ++xact_;
    transmit();
  } else if (const auto* assign = std::get_if<PlanAssignMsg>(&*msg)) {
    if (assign->operator_id != id_) return;
    if (plan_ && assign->master_epoch < plan_->master_epoch) {
      // Stale epoch: a delayed/duplicated assignment computed before the
      // plan we already hold. Never roll back.
      ++stats_.stale_plans_ignored;
      return;
    }
    if (state_ != State::kRequesting) {
      // Duplicate of an assignment we already accepted. Same or newer
      // epoch content is idempotent to re-apply; count and keep the newer.
      ++stats_.duplicates_ignored;
      if (!plan_ || assign->master_epoch > plan_->master_epoch) {
        accept_plan(*assign);
      }
      return;
    }
    accept_plan(*assign);
    state_ = State::kIdle;
    ++xact_;
  } else if (const auto* error = std::get_if<ErrorMsg>(&*msg)) {
    ++stats_.errors_received;
    if (state_ == State::kRequesting && error->code == 1) {
      // "operator not registered": the Master lost us (or a plan request
      // raced ahead of registration). Fall back to registering.
      registered_ = false;
      state_ = State::kRegistering;
      attempt_ = 0;
      ++xact_;
      transmit();
    }
  }
}

}  // namespace alphawan
