#include "core/traffic_estimator.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace alphawan {

std::map<NodeId, double> TrafficEstimator::estimate(
    const std::map<NodeId, std::vector<std::size_t>>& series) const {
  std::map<NodeId, double> demand;
  for (const auto& [node, counts] : series) {
    if (counts.empty()) continue;
    std::vector<double> samples;
    samples.reserve(counts.size());
    for (const auto c : counts) samples.push_back(static_cast<double>(c));
    const double q = percentile(samples, config_.demand_quantile);
    demand[node] =
        std::max(config_.min_traffic, q * config_.safety_factor);
  }
  return demand;
}

}  // namespace alphawan
