// Table 4 reproduction: theoretical vs practical concurrent capacity of
// commercial COTS gateways. Each profile is hit with a burst exceeding its
// theoretical capacity; the delivered count must equal its decoder pool.
#include "harness.hpp"

#include "net/sync_word.hpp"
#include "radio/gateway_radio.hpp"

using namespace alphawan;
using namespace alphawan::bench;

namespace {

std::size_t practical_capacity(const GatewayProfile& profile) {
  // Spectrum sized to the radio (grid channels across its Rx bandwidth).
  const Spectrum spec{Hz{923.0e6}, profile.rx_spectrum};
  GatewayRadio radio(profile, 0, kPublicSyncWord);
  std::vector<Channel> channels;
  for (int i = 0; i < std::min(profile.data_rx_chains, spec.grid_size());
       ++i) {
    channels.push_back(spec.grid_channel(i));
  }
  radio.configure_channels(channels);

  // One packet per orthogonal (channel, SF) pair of the monitored
  // spectrum, lock-ons staggered tightly (0.2 ms) so even the shortest
  // SF7 packets are still on the air when the last one locks on.
  std::vector<RxEvent> events;
  const int total = static_cast<int>(channels.size()) * kNumSpreadingFactors;
  for (int i = 0; i < total; ++i) {
    Transmission tx;
    tx.id = static_cast<PacketId>(i + 1);
    tx.node = static_cast<NodeId>(i + 1);
    tx.channel = channels[static_cast<std::size_t>(i) % channels.size()];
    tx.params.sf =
        sf_from_index((i / static_cast<int>(channels.size())) % 6);
    tx.start = Seconds{0.0002 * (i + 1)} - preamble_duration(tx.params);
    events.push_back(RxEvent{tx, Dbm{-80.0}});
  }
  const auto outcomes = radio.process(events);
  std::size_t delivered = 0;
  for (const auto& out : outcomes) {
    if (out.disposition == RxDisposition::kDelivered) ++delivered;
  }
  return delivered;
}

}  // namespace

int main() {
  print_header(
      "Table 4 — concurrent capacity of commercial gateways\n"
      "(theory = monitored channels x 6 SFs; practical = decoder pool)");
  std::printf("  %-24s %-8s %-10s %-8s %-8s %-8s %-10s\n", "product",
              "chipset", "spectrum", "chains", "theory", "paper", "measured");
  for (const auto& profile : all_profiles()) {
    const std::size_t measured = practical_capacity(profile);
    std::printf("  %-24s %-8s %-10.1f %d+%-6d %-8d %-8d %-10zu\n",
                std::string(profile.product).c_str(),
                std::string(chipset_name(profile.chipset)).c_str(),
                profile.rx_spectrum.value() / 1e6, profile.data_rx_chains,
                profile.service_rx_chains, profile.theory_capacity(),
                profile.practical_capacity(), measured);
  }
  print_note(
      "paper practical capacities: LPS8N/RAK7268 16, RAK7246G 8,\n"
      "  RAK7289CV2 32, Kerlink iBTS 8 — none reaches its theory capacity");
  return 0;
}
