#include "sim/scenario.hpp"

#include <algorithm>

#include "check/invariants.hpp"
#include "radio/detector.hpp"

namespace alphawan {
namespace {
constexpr std::uint64_t kGatewayKeyBase = 1ULL << 32;
// Substream domain tag separating fading draws from any future named
// substreams derived from the same runner seed.
constexpr std::uint64_t kFadingDomain = 0xFAD1'F0E5'7A7EULL;
}

Rng packet_link_rng(const Rng& root, GatewayId gateway, PacketId packet) {
  return root.substream(kFadingDomain ^ (static_cast<std::uint64_t>(gateway) << 40),
                        packet);
}

std::size_t WindowResult::total_delivered() const {
  std::size_t total = 0;
  for (const auto& [net, n] : delivered) total += n;
  return total;
}

std::size_t WindowResult::total_offered() const {
  std::size_t total = 0;
  for (const auto& [net, n] : offered) total += n;
  return total;
}

ScenarioRunner::ScenarioRunner(Deployment& deployment, std::uint64_t seed)
    : deployment_(deployment),
      rng_(seed),
      invariants_(invariants_from_env()) {}

WindowResult ScenarioRunner::run_window(const std::vector<Transmission>& txs) {
  WindowResult result;
  auto& channel = deployment_.channel_model();
  for (auto& network : deployment_.networks()) {
    result.offered[network.id()] = 0;
    result.delivered[network.id()] = 0;
    result.served_nodes[network.id()] = 0;
    // (Re)attach the checker every window: gateways may have been added
    // since the last one, and a null attach detaches a stale checker.
    for (auto& gw : network.gateways()) gw.set_observer(invariants_);
  }

  // Per own-network outcomes of each packet, keyed by its index in txs.
  std::vector<std::vector<RxOutcome>> own_outcomes(txs.size());
  std::map<PacketId, std::size_t> index_of;
  for (std::size_t i = 0; i < txs.size(); ++i) index_of[txs[i].id] = i;

  for (auto& network : deployment_.networks()) {
    std::vector<UplinkRecord> uplinks;
    for (auto& gw : network.gateways()) {
      // Build this gateway's view of the air.
      std::vector<RxEvent> events;
      events.reserve(txs.size());
      std::vector<std::size_t> event_tx_index;
      event_tx_index.reserve(txs.size());
      const Dbm floor =
          noise_floor_dbm(kLoRaBandwidth125k) - prune_margin_;
      for (std::size_t i = 0; i < txs.size(); ++i) {
        const auto& tx = txs[i];
        const Meters dist = distance(tx.origin, gw.position());
        Rng link_rng = packet_link_rng(rng_, gw.id(), tx.id);
        const Dbm rx_power =
            channel.received_power(tx.node, kGatewayKeyBase + gw.id(), dist,
                                   tx.tx_power, link_rng) +
            gw.antenna_gain_towards(tx.origin);
        if (rx_power < floor) continue;
        events.push_back(RxEvent{tx, rx_power});
        event_tx_index.push_back(i);
      }

      auto outcomes = gw.receive_window(events, uplinks);
      if (post_) {
        post_(gw, events, outcomes);
        // Post-processors may promote outcomes to kDelivered; forward
        // newly delivered packets to the server like the radio would.
        for (std::size_t e = 0; e < outcomes.size(); ++e) {
          const auto& out = outcomes[e];
          if (out.disposition != RxDisposition::kDelivered) continue;
          const bool already = std::any_of(
              uplinks.begin(), uplinks.end(), [&](const UplinkRecord& r) {
                return r.packet == out.packet && r.gateway == gw.id();
              });
          if (already) continue;
          UplinkRecord rec;
          rec.packet = out.packet;
          rec.node = out.node;
          rec.gateway = gw.id();
          rec.network = network.id();
          rec.timestamp = events[e].tx.end();
          rec.channel = events[e].tx.channel;
          rec.dr = sf_to_dr(events[e].tx.params.sf);
          rec.snr = out.snr;
          uplinks.push_back(rec);
        }
      }
      for (std::size_t e = 0; e < outcomes.size(); ++e) {
        const auto& tx_ref = events[e].tx;
        if (tx_ref.network != network.id()) continue;  // foreign at this GW
        own_outcomes[event_tx_index[e]].push_back(outcomes[e]);
      }
    }
    network.server().ingest(uplinks);
  }

  // Classify every offered packet against its own network's gateways.
  std::map<NetworkId, std::set<NodeId>> served;
  result.fates.reserve(txs.size());
  for (std::size_t i = 0; i < txs.size(); ++i) {
    PacketFate fate = classify_packet(txs[i], own_outcomes[i]);
    ++result.offered[fate.network];
    if (fate.delivered) {
      ++result.delivered[fate.network];
      served[fate.network].insert(fate.node);
    }
    result.fates.push_back(std::move(fate));
  }
  for (const auto& [net, nodes] : served) {
    result.served_nodes[net] = nodes.size();
  }
  if (invariants_ != nullptr) invariants_->check_window(result);
  return result;
}

WindowResult ScenarioRunner::run_window(const std::vector<Transmission>& txs,
                                        MetricsCollector& metrics) {
  WindowResult result = run_window(txs);
  for (const auto& fate : result.fates) metrics.record(fate);
  return result;
}

}  // namespace alphawan
