#include "net/network_server.hpp"

#include <algorithm>

namespace alphawan {

Db LinkProfile::best_snr() const {
  Db best{-1e9};
  for (const auto& [gw, snr] : gateway_snr) best = std::max(best, snr);
  return best;
}

bool NetworkServer::adopt_plan(std::uint32_t epoch, Hz frequency_offset,
                               std::vector<Channel> channels) {
  if (plan_ && epoch < plan_->epoch) {
    ++stale_plans_ignored_;
    return false;
  }
  plan_ = AdoptedPlan{epoch, frequency_offset, std::move(channels)};
  return true;
}

void NetworkServer::ingest(const std::vector<UplinkRecord>& records) {
  for (const auto& rec : records) {
    log_.push_back(rec);
    auto& profile = link_profiles_[rec.node];
    auto [it, inserted] = profile.gateway_snr.try_emplace(rec.gateway, rec.snr);
    if (!inserted) it->second = std::max(it->second, rec.snr);
    ++profile.uplinks;
    if (delivered_.insert(rec.packet).second) {
      ++per_node_delivered_[rec.node];
    }
  }
}

void NetworkServer::clear() {
  log_.clear();
  delivered_.clear();
  link_profiles_.clear();
  per_node_delivered_.clear();
}

}  // namespace alphawan
