#include "core/greedy_seed.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace alphawan {
namespace {

// 15 gateways x 16 decoders, 24 channels, 144 full-reach nodes: the
// Fig. 12a setting (ample decoders for the oracle capacity).
CpInstance fig12_instance(std::size_t num_gw = 15, std::size_t num_nodes = 144) {
  CpInstance inst;
  inst.spectrum = Spectrum{Hz{916.8e6}, Hz{4.8e6}};
  inst.num_channels = 24;
  for (std::size_t j = 0; j < num_gw; ++j) {
    inst.gateways.push_back(
        {static_cast<GatewayId>(j + 1), 16, 8, 8});
  }
  for (std::size_t i = 0; i < num_nodes; ++i) {
    CpNode node;
    node.id = static_cast<NodeId>(1000 + i);
    node.traffic = 1.0;
    node.min_level.assign(num_gw, 0);
    inst.nodes.push_back(node);
  }
  return inst;
}

TEST(GreedySeed, ProducesFeasibleSolution) {
  const auto inst = fig12_instance();
  const auto seed = greedy_seed(inst);
  EXPECT_TRUE(feasible(inst, seed));
}

TEST(GreedySeed, DefaultWidthTracksDecoderBudget) {
  // 16 decoders / 6 SFs ~ 3 channels per gateway (Strategy 1).
  const auto inst = fig12_instance();
  const auto seed = greedy_seed(inst);
  for (const auto& chans : seed.gateway_channels) {
    EXPECT_GE(chans.size(), 2u);
    EXPECT_LE(chans.size(), 4u);
  }
}

TEST(GreedySeed, ForcedChannelCountHonored) {
  const auto inst = fig12_instance();
  GreedyOptions options;
  options.forced_channel_count = 8;
  const auto seed = greedy_seed(inst, options);
  for (const auto& chans : seed.gateway_channels) {
    EXPECT_EQ(chans.size(), 8u);
  }
}

TEST(GreedySeed, CoversAllChannelsWithEnoughGateways) {
  // 15 gateways x ~3 channels should blanket all 24 channels (Strategy 2).
  const auto inst = fig12_instance();
  const auto seed = greedy_seed(inst);
  std::set<std::int32_t> covered;
  for (const auto& chans : seed.gateway_channels) {
    covered.insert(chans.begin(), chans.end());
  }
  EXPECT_EQ(covered.size(), 24u);
}

TEST(GreedySeed, LowRiskWhenCapacitySuffices) {
  const auto inst = fig12_instance();
  const auto eval = evaluate(inst, greedy_seed(inst));
  // 240 decoders vs 144 users with full reach: nobody disconnected, and
  // the residual risk (from multi-gateway double counting) must be small
  // relative to the naive homogeneous plan (every user at risk ~128).
  EXPECT_DOUBLE_EQ(eval.disconnected, 0.0);
  EXPECT_LT(eval.overload_risk, 0.05 * 144.0 * 128.0);
  // A narrower (2-channel) greedy eliminates the double counting fully.
  GreedyOptions narrow;
  narrow.forced_channel_count = 2;
  const auto eval2 = evaluate(inst, greedy_seed(inst, narrow));
  EXPECT_DOUBLE_EQ(eval2.disconnected, 0.0);
}

TEST(GreedySeed, SpreadsAcrossDataRates) {
  const auto inst = fig12_instance();
  const auto seed = greedy_seed(inst);
  std::set<std::int32_t> levels(seed.node_level.begin(),
                                seed.node_level.end());
  // 144 nodes over 24 channels require all 6 levels in use.
  EXPECT_EQ(levels.size(), static_cast<std::size_t>(kNumLevels));
}

TEST(GreedySeed, RespectsReachability) {
  CpInstance inst = fig12_instance(2, 10);
  // Nodes 0-4 reach only gateway 1; nodes 5-9 only gateway 2.
  for (std::size_t i = 0; i < inst.nodes.size(); ++i) {
    inst.nodes[i].min_level = i < 5
                                  ? std::vector<std::uint8_t>{0, kUnreachable}
                                  : std::vector<std::uint8_t>{kUnreachable, 0};
  }
  const auto seed = greedy_seed(inst);
  const auto eval = evaluate(inst, seed);
  EXPECT_DOUBLE_EQ(eval.disconnected, 0.0);
}

TEST(GreedySeed, HandlesUnreachableNode) {
  CpInstance inst = fig12_instance(1, 2);
  inst.nodes[1].min_level = {kUnreachable};
  const auto seed = greedy_seed(inst);
  EXPECT_TRUE(feasible(inst, seed));
  const auto eval = evaluate(inst, seed);
  EXPECT_DOUBLE_EQ(eval.disconnected, 1.0);  // honestly reported
}

TEST(GreedySeed, HeavyTrafficNodesPlacedFirst) {
  CpInstance inst = fig12_instance(2, 20);
  inst.gateways[0].decoders = 4;
  inst.gateways[1].decoders = 4;
  for (std::size_t i = 0; i < 4; ++i) inst.nodes[i].traffic = 5.0;
  const auto seed = greedy_seed(inst);
  EXPECT_TRUE(feasible(inst, seed));
}

}  // namespace
}  // namespace alphawan
