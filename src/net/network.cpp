#include "net/network.hpp"

#include <algorithm>

namespace alphawan {

Network::Network(NetworkId id, std::string name)
    : id_(id),
      name_(std::move(name)),
      sync_word_(sync_word_for_network(id)),
      server_(id) {}

Gateway& Network::add_gateway(GatewayId id, Point position,
                              const GatewayProfile& profile) {
  gateways_.emplace_back(id, id_, position, profile, sync_word_);
  return gateways_.back();
}

EndNode& Network::add_node(NodeId id, Point position,
                           const NodeRadioConfig& config) {
  nodes_.emplace_back(id, id_, position, config);
  return nodes_.back();
}

Gateway* Network::find_gateway(GatewayId id) {
  const auto it =
      std::find_if(gateways_.begin(), gateways_.end(),
                   [&](const Gateway& gw) { return gw.id() == id; });
  return it == gateways_.end() ? nullptr : &*it;
}

EndNode* Network::find_node(NodeId id) {
  const auto it = std::find_if(nodes_.begin(), nodes_.end(),
                               [&](const EndNode& n) { return n.id() == id; });
  return it == nodes_.end() ? nullptr : &*it;
}

const Gateway* Network::find_gateway(GatewayId id) const {
  return const_cast<Network*>(this)->find_gateway(id);
}

const EndNode* Network::find_node(NodeId id) const {
  return const_cast<Network*>(this)->find_node(id);
}

void Network::apply_config(const NetworkChannelConfig& config) {
  for (const auto& [gw_id, gw_cfg] : config.gateways) {
    if (Gateway* gw = find_gateway(gw_id)) gw->apply_channels(gw_cfg);
  }
  for (const auto& [node_id, node_cfg] : config.nodes) {
    if (EndNode* node = find_node(node_id)) node->apply_config(node_cfg);
  }
}

NetworkChannelConfig Network::current_config() const {
  NetworkChannelConfig config;
  for (const auto& gw : gateways_) {
    config.gateways[gw.id()] = GatewayChannelConfig{gw.channels()};
  }
  for (const auto& node : nodes_) {
    config.nodes[node.id()] = node.config();
  }
  return config;
}

}  // namespace alphawan
