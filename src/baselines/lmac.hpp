// Baseline: LMAC-style carrier-sense MAC for LoRa (Gamage et al.,
// SIGCOMM'20). Nodes perform channel-activity detection before
// transmitting and defer while their channel is busy, trading latency for
// fewer RF collisions. Decoder contention is untouched — which is exactly
// why LMAC saturates at ~6k users in Fig. 13.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "radio/transmission.hpp"

namespace alphawan {

struct LmacOptions {
  // Maximum total deferral before a node gives up waiting and transmits
  // anyway (regulatory/application latency bound).
  Seconds max_defer{5.0};
  // Random inter-frame gap inserted after a busy channel clears.
  Seconds min_gap{5e-3};
  Seconds max_gap{30e-3};
  // Carrier sensing range: transmitters farther apart than this cannot
  // hear each other (hidden terminals persist, as in real LMAC).
  Meters sense_range{1500.0};
};

// Reschedule transmissions according to carrier-sense rules. Returns a new
// schedule (same packets, possibly deferred starts).
[[nodiscard]] std::vector<Transmission> lmac_schedule(
    std::vector<Transmission> txs, Rng& rng,
    const LmacOptions& options = LmacOptions{});

}  // namespace alphawan
