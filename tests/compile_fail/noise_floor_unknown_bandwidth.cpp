// Compile-fail case: noise floor for a bandwidth that is not one of the
// three named kLoRaBandwidth* constants.
//
// Without CF_MISUSE this file must compile (positive control proving the
// harness sees a working translation unit). With -DCF_MISUSE it must NOT
// compile — ctest runs both variants (see CMakeLists.txt).
#include "common/types.hpp"

using namespace alphawan;

constexpr Dbm ok = noise_floor_dbm(kLoRaBandwidth250k);
#ifdef CF_MISUSE
// 300 kHz is not a LoRa bandwidth: the constexpr evaluation reaches the
// non-constexpr abort() helper and the initializer is ill-formed.
constexpr Dbm bad = noise_floor_dbm(Hz{300e3});
#endif

int main() { return 0; }
