// The batched-kernel differential harness (the ALPHAWAN_BATCH switch,
// sim/batch.hpp): the batched PHY receive kernels must be bit-identical to
// the scalar reference pipeline on every world — not just on average, not
// just statistically. Three layers:
//   - across >= 100 random worlds, the window fate digest of the batched
//     mode equals the scalar (threads=1, shards=1) digest at every
//     (shards, threads) in {1,8} x {1,8} — batching composes with
//     sharding and the thread fan-out without perturbing a single fate;
//   - every registered baseline scheme (MAC side and capture side,
//     including the policy schemes cic / ss5g / curvinglora whose
//     resolve() reads the columnar CaptureContext) produces identical
//     digests in both modes on randomized worlds;
//   - a same-seed batched rerun replays bit-for-bit (all randomness flows
//     through keyed substreams, never iteration order).
#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "check/digest.hpp"
#include "proptest.hpp"

namespace alphawan {
namespace {

using prop::CaseParams;

std::uint64_t window_digest(const CaseParams& params, int batch, int threads,
                            int shards) {
  prop::World world = prop::build_world(params);
  RunOptions options;
  options.batch = batch;
  options.threads = threads;
  options.shards = shards;
  ScenarioRunner runner(*world.deployment, params.seed, options);
  return fate_digest(runner.run_window(world.txs).fates);
}

TEST(BatchDifferential, BatchedEqualsScalarAcrossRandomWorlds) {
  CaseParams lo;
  lo.networks = 1;
  lo.gateways_per_net = 1;
  lo.nodes_per_net = 4;
  lo.plan_channels = 2;
  lo.decoders = 4;
  CaseParams hi;
  hi.networks = 3;
  hi.gateways_per_net = 4;
  hi.nodes_per_net = 40;
  hi.plan_channels = 8;
  hi.decoders = 16;
  prop::check_property(
      "batched kernels are bit-identical to the scalar reference",
      /*cases=*/100, /*seed=*/20260811, lo, hi,
      [](const CaseParams& params) -> std::optional<std::string> {
        const std::uint64_t scalar = window_digest(params, /*batch=*/0,
                                                   /*threads=*/1,
                                                   /*shards=*/1);
        for (const int shards : {1, 8}) {
          for (const int threads : {1, 8}) {
            const std::uint64_t batched =
                window_digest(params, /*batch=*/1, threads, shards);
            if (batched != scalar) {
              return "batched digest " + digest_hex(batched) + " at shards=" +
                     std::to_string(shards) + " threads=" +
                     std::to_string(threads) + " != scalar digest " +
                     digest_hex(scalar);
            }
          }
        }
        return std::nullopt;
      });
}

TEST(BatchDifferential, SameSeedBatchedRunReplaysIdentically) {
  CaseParams lo;
  lo.networks = 1;
  lo.gateways_per_net = 1;
  lo.nodes_per_net = 4;
  lo.plan_channels = 2;
  lo.decoders = 4;
  CaseParams hi;
  hi.networks = 2;
  hi.gateways_per_net = 3;
  hi.nodes_per_net = 24;
  hi.plan_channels = 8;
  hi.decoders = 16;
  prop::check_property(
      "same-seed batched window replays identically", /*cases=*/20,
      /*seed=*/20260812, lo, hi,
      [](const CaseParams& params) -> std::optional<std::string> {
        const std::uint64_t first = window_digest(params, /*batch=*/1,
                                                  /*threads=*/8, /*shards=*/8);
        const std::uint64_t replay = window_digest(params, /*batch=*/1,
                                                   /*threads=*/8,
                                                   /*shards=*/8);
        if (first != replay) {
          return "replay digest " + digest_hex(replay) + " != first run " +
                 digest_hex(first);
        }
        return std::nullopt;
      });
}

// ---- every scheme, both modes --------------------------------------------

// Registry tuning sized for property cheapness (same shape as
// test_prop_baselines.cpp).
BaselineTuning cheap_tuning() {
  BaselineTuning tuning;
  tuning.alphawan.controller.planner.ga.population = 8;
  tuning.alphawan.controller.planner.ga.generations = 2;
  tuning.alphawan.demand_per_node = 0.05;
  return tuning;
}

struct SchemeWorld {
  std::unique_ptr<Deployment> deployment;
  std::vector<Transmission> txs;
};

SchemeWorld build_scheme_world(const BaselineScheme& scheme,
                               const CaseParams& p) {
  SchemeWorld world;
  world.deployment = std::make_unique<Deployment>(
      Region{Meters{1000.0}, Meters{1000.0}}, spectrum_1m6(),
      ChannelModelConfig{});
  auto& network = world.deployment->add_network("op");
  GatewayProfile profile = default_profile();
  profile.decoders = p.decoders;
  Rng rng(p.seed);
  world.deployment->place_gateways(network, p.gateways_per_net, profile, rng);
  world.deployment->place_nodes(network, p.nodes_per_net, rng);
  scheme.configure(*world.deployment, network, rng);

  std::vector<EndNode*> nodes;
  for (auto& node : network.nodes()) nodes.push_back(&node);
  PacketIdSource ids;
  Rng traffic_rng = Rng(p.seed).substream("traffic");
  world.txs = p.burst
                  ? concurrent_burst(nodes, Seconds{0.0}, ids)
                  : poisson_traffic(nodes, Seconds{0.8}, 1.5, traffic_rng, ids);
  Rng shape_rng = Rng(p.seed).substream("mac-shape");
  world.txs = scheme.shape_window(std::move(world.txs), shape_rng);
  return world;
}

std::uint64_t scheme_digest(const BaselineScheme& scheme, const CaseParams& p,
                            int batch) {
  SchemeWorld world = build_scheme_world(scheme, p);
  RunOptions options;
  options.capture_policy = scheme.capture;
  options.batch = batch;
  ScenarioRunner runner(*world.deployment, p.seed, std::move(options));
  return fate_digest(runner.run_window(world.txs).fates);
}

TEST(BatchDifferential, EveryRegisteredSchemeBitIdenticalAcrossModes) {
  // Dense burst worlds differentiate the capture policies: heavy
  // collisions give cic / ss5g / curvinglora packets to rescue, so a
  // context-column mismatch between the pipelines would flip fates.
  CaseParams lo;
  lo.networks = 1;
  lo.gateways_per_net = 1;
  lo.nodes_per_net = 8;
  lo.plan_channels = 2;
  lo.decoders = 4;
  CaseParams hi;
  hi.networks = 1;
  hi.gateways_per_net = 3;
  hi.nodes_per_net = 32;
  hi.plan_channels = 6;
  hi.decoders = 12;
  for (const auto& name : BaselineRegistry::instance().names()) {
    const BaselineScheme scheme =
        BaselineRegistry::instance().make(name, cheap_tuning());
    prop::check_property(
        ("scheme '" + name + "' is batch-mode invariant").c_str(),
        /*cases=*/5, /*seed=*/20260813, lo, hi,
        [&scheme](const CaseParams& params) -> std::optional<std::string> {
          const std::uint64_t scalar = scheme_digest(scheme, params, 0);
          const std::uint64_t batched = scheme_digest(scheme, params, 1);
          if (batched != scalar) {
            return "batched digest " + digest_hex(batched) +
                   " != scalar digest " + digest_hex(scalar);
          }
          return std::nullopt;
        });
  }
}

}  // namespace
}  // namespace alphawan
