// Window-invariant link-gain matrix. Everything about a (node, gateway)
// link that does not change between packets — mean path loss, the frozen
// shadowing draw, and the receive antenna gain toward the node — is
// precomputed once into flat per-gateway columns, so the per-packet cost in
// ScenarioRunner::run_window collapses to one array load plus the
// fast-fading draw (docs/performance.md).
//
// The two static terms are stored separately (not pre-summed) so the runner
// can replay the exact floating-point operation order of the uncached path:
//   rx = ((tx_power - path_loss) + fading) + antenna_gain
// which is what keeps the cached pipeline bit-identical to the original.
//
// The cache also derives per-row *candidate gateway lists*: the columns
// whose best-case static gain could let any transmission clear a prune
// floor, assuming the strongest legal tx power and the largest fast-fading
// draw the Rng can produce (kNormalTailSigmas). Pruning against them is a
// conservative superset filter — a skipped (row, column) pair is guaranteed
// to fall below the floor for every possible draw, so event lists are
// unchanged.
//
// Mutation (upsert_gateway / ensure_row) is not thread-safe; the runner
// performs all registration in a serial prepass and the parallel gateway
// fan-out only reads.
//
// For city-scale worlds the cache is partitioned: a ShardedLinkCache holds
// one independent slice per spatial shard, each covering a subset of the
// gateway columns, and rows are materialized per slice only when the node
// is audible there (ensure_row_if_audible). Memory follows the live
// (audible) links instead of the full node x gateway cross product, and
// every slice computes the same LinkGain values a monolithic cache would,
// so any partition of the columns is bit-identical (docs/sharding.md).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/geometry.hpp"
#include "phy/channel_model.hpp"

namespace alphawan {

// The frozen static terms of one (node, gateway) link.
struct LinkGain {
  Db path_loss{0.0};     // mean path loss + frozen shadowing
  Db antenna_gain{0.0};  // receive antenna gain toward the node
};

class LinkCache {
 public:
  // Queried for the receive antenna gain toward a transmitter position
  // whenever a column is (re)built; must stay valid until the gateway is
  // re-upserted or the cache destroyed (gateways live in stable deques).
  using AntennaGainFn = std::function<Db(const Point&)>;

  explicit LinkCache(ChannelModel& model) : model_(&model) {}

  // Register a gateway column, or refresh its antenna gains when
  // `antenna_epoch` advanced since the last upsert (Gateway::set_antenna
  // bumps the epoch). Gateway positions are immutable. Returns the column
  // index, stable for the lifetime of the cache.
  std::size_t upsert_gateway(GatewayId id, std::uint64_t rx_key,
                             const Point& position,
                             std::uint64_t antenna_epoch,
                             AntennaGainFn antenna_gain);

  // Register a transmitter row (idempotent), extending every column with
  // the link's static terms. A registered id whose origin later differs —
  // a traffic generator reusing virtual ids for different positions — is
  // recomputed in place. Returns the row index.
  std::uint32_t ensure_row(NodeId node, const Point& origin);

  // Like ensure_row, but materializes the row only if the node is audible
  // here — some column's static gain clears the same conservative bound
  // candidate_columns prunes against (so a rejected node has no candidate
  // columns in this cache and skipping it drops no events). Returns
  // kInvalidRow on rejection; rejections are memoized per (origin,
  // column-structure) so steady-state windows don't re-probe. A row that
  // already exists is refreshed like ensure_row and kept resident.
  static constexpr std::uint32_t kInvalidRow = ~0U;
  // ALPHAWAN-LINT-ALLOW(units-swappable-pair: (floor, power_bound) is
  // floor-first at every audibility call site, as below)
  std::uint32_t ensure_row_if_audible(NodeId node, const Point& origin,
                                      Dbm floor, Dbm power_bound);

  // Row index of a registered transmitter id; kInvalidRow if absent.
  [[nodiscard]] std::uint32_t row_of(NodeId node) const;

  // Bumped whenever the column set or an antenna changes — anything that
  // can turn an inaudible node audible invalidates rejection memos.
  [[nodiscard]] std::uint64_t structure_epoch() const {
    return structure_epoch_;
  }

  [[nodiscard]] std::size_t row_count() const { return row_origin_.size(); }
  [[nodiscard]] std::size_t column_count() const { return columns_.size(); }

  // Column index for a registered gateway id; kInvalidColumn if absent.
  static constexpr std::uint32_t kInvalidColumn = ~0U;
  [[nodiscard]] std::uint32_t column_of(GatewayId id) const;

  // The per-row static link terms of one gateway column (size row_count()).
  [[nodiscard]] std::span<const LinkGain> gains(std::size_t column) const {
    return columns_[column].gains;
  }

  // Columns whose best-case received power — tx power <= `power_bound`,
  // fading up to kNormalTailSigmas * fast_fading_sigma, plus a 1 dB slack
  // absorbing floating-point reassociation — can clear `floor` from `row`.
  // Built lazily for the (floor, power_bound) in use and kept incrementally
  // as rows are added; any gateway change rebuilds from scratch.
  // ALPHAWAN-LINT-ALLOW(units-swappable-pair: (floor, power_bound) is
  // floor-first at every audibility call site)
  [[nodiscard]] std::span<const std::uint32_t> candidate_columns(
      std::uint32_t row, Dbm floor, Dbm power_bound);

  // candidate_columns as a bitmask (bit c == column c). Only meaningful
  // when column_count() <= 64 — the dense-deployment fast path that lets
  // the runner test candidacy with one AND instead of materializing
  // per-column transmission lists.
  // ALPHAWAN-LINT-ALLOW(units-swappable-pair: (floor, power_bound) is
  // floor-first at every audibility call site)
  [[nodiscard]] std::uint64_t candidate_mask(std::uint32_t row, Dbm floor,
                                             Dbm power_bound);

 private:
  struct Column {
    GatewayId id = kInvalidGateway;
    std::uint64_t rx_key = 0;
    Point position{};
    std::uint64_t antenna_epoch = 0;
    AntennaGainFn antenna_gain;
    std::vector<LinkGain> gains;  // indexed by row
  };

  [[nodiscard]] LinkGain compute_gain(const Column& column, NodeId node,
                                      const Point& origin);
  // Static-gain threshold below which a (row, column) pair can never clear
  // `floor` for tx powers up to `power_bound` — the shared bound behind
  // both candidate pruning and audibility gating.
  // ALPHAWAN-LINT-ALLOW(units-swappable-pair: (floor, power_bound) is
  // floor-first at every audibility call site)
  [[nodiscard]] double audible_threshold(Dbm floor, Dbm power_bound) const;
  [[nodiscard]] double candidate_threshold() const;
  void append_candidates_for_row(std::uint32_t row);
  // ALPHAWAN-LINT-ALLOW(units-swappable-pair: (floor, power_bound) is
  // floor-first at every audibility call site)
  void rebuild_candidates(Dbm floor, Dbm power_bound);

  ChannelModel* model_;
  std::vector<Column> columns_;
  // ALPHAWAN-LINT-ALLOW(determinism-unordered-member: keyed lookups only;
  // all iteration runs over the index-ordered columns_ vector)
  std::unordered_map<GatewayId, std::uint32_t> column_of_;

  std::vector<NodeId> row_node_;
  std::vector<Point> row_origin_;
  // ALPHAWAN-LINT-ALLOW(determinism-unordered-member: keyed lookups only;
  // all iteration runs over the row_node_/row_origin_ vectors)
  std::unordered_map<NodeId, std::uint32_t> row_of_;

  // Rejection memo for ensure_row_if_audible: valid while the node's
  // origin, the column structure, and the audibility bound all match.
  struct Rejection {
    Point origin{};
    std::uint64_t epoch = 0;
    Dbm floor{0.0};
    Dbm power_bound{0.0};
  };
  // ALPHAWAN-LINT-ALLOW(determinism-unordered-member: memo is probed per
  // node id and never iterated, so its order cannot reach any digest)
  std::unordered_map<NodeId, Rejection> rejected_;
  std::uint64_t structure_epoch_ = 0;
  std::vector<LinkGain> probe_gains_;  // scratch for the audibility probe

  // Flat candidate storage: per-row [begin, end) ranges into one vector.
  bool candidates_valid_ = false;
  Dbm candidate_floor_{0.0};
  Dbm candidate_power_bound_{0.0};
  std::vector<std::uint32_t> candidate_flat_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> candidate_range_;
};

// A set of independent LinkCache slices over one channel model, one per
// spatial shard. The phy layer knows nothing about shard geometry — the sim
// layer decides which slice a gateway column lives in (sim/shard.hpp); this
// class only guarantees slice independence: every slice computes the same
// LinkGain values a monolithic cache would (the model is a pure function of
// the link key), so any partition of the columns yields bit-identical
// physics while each slice's memory tracks only the links audible there.
class ShardedLinkCache {
 public:
  explicit ShardedLinkCache(ChannelModel& model) : model_(&model) {}

  // Drop every slice and start over with `count` empty ones. Gains are
  // recomputed on the next refresh, so re-partitioning mid-run is safe —
  // and bit-stable, since values depend only on the model.
  void reset(std::size_t count) {
    slices_.clear();
    slices_.reserve(count);
    for (std::size_t s = 0; s < count; ++s) slices_.emplace_back(*model_);
  }

  [[nodiscard]] std::size_t shard_count() const { return slices_.size(); }
  [[nodiscard]] LinkCache& slice(std::size_t shard) { return slices_[shard]; }
  [[nodiscard]] const LinkCache& slice(std::size_t shard) const {
    return slices_[shard];
  }

 private:
  ChannelModel* model_;
  std::vector<LinkCache> slices_;
};

}  // namespace alphawan
