#include "net/mac_commands.hpp"

#include <gtest/gtest.h>

#include "net/channel_plan.hpp"

namespace alphawan {
namespace {

TEST(MacCommands, LinkAdrReqRoundTrip) {
  LinkAdrReq req;
  req.data_rate = 5;
  req.tx_power = 3;
  req.ch_mask = 0b0000000010110001;
  req.ch_mask_cntl = 2;
  req.nb_trans = 1;
  const auto bytes = encode_downlink_commands({{req}});
  EXPECT_EQ(bytes.size(), 5u);  // CID + DataRate_TXPower + ChMask(2) + Redundancy
  const auto decoded = decode_downlink_commands(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_EQ(std::get<LinkAdrReq>((*decoded)[0]), req);
}

TEST(MacCommands, NewChannelReqRoundTripPreservesMisalignedFrequency) {
  NewChannelReq req;
  req.ch_index = 4;
  req.frequency = Hz{923.3e6 + 37.5e3};  // an AlphaWAN off-grid channel
  req.min_dr = 0;
  req.max_dr = 5;
  const auto bytes = encode_downlink_commands({{req}});
  EXPECT_EQ(bytes.size(), 6u);
  const auto decoded = decode_downlink_commands(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<NewChannelReq>((*decoded)[0]), req);
}

TEST(MacCommands, MultipleCommandsInOneFOpts) {
  NewChannelReq nc;
  nc.ch_index = 1;
  nc.frequency = Hz{923.5e6};
  LinkAdrReq adr;
  adr.data_rate = 3;
  const auto bytes = encode_downlink_commands({{nc, adr, DevStatusReq{}}});
  EXPECT_EQ(bytes.size(), 6u + 5u + 1u);
  EXPECT_LE(bytes.size(), 15u);  // still fits FOpts
  const auto decoded = decode_downlink_commands(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_TRUE(std::holds_alternative<NewChannelReq>((*decoded)[0]));
  EXPECT_TRUE(std::holds_alternative<LinkAdrReq>((*decoded)[1]));
  EXPECT_TRUE(std::holds_alternative<DevStatusReq>((*decoded)[2]));
}

TEST(MacCommands, TruncatedStreamRejected) {
  LinkAdrReq req;
  auto bytes = encode_downlink_commands({{req}});
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_FALSE(decode_downlink_commands(prefix).has_value());
  }
}

TEST(MacCommands, UnknownCidRejected) {
  const std::vector<std::uint8_t> junk = {0x7F, 0x00};
  EXPECT_FALSE(decode_downlink_commands(junk).has_value());
  EXPECT_FALSE(decode_uplink_commands(junk).has_value());
}

TEST(MacCommands, UplinkAnswersRoundTrip) {
  LinkAdrAns adr{true, false, true};
  DevStatusAns status{180, -12};
  NewChannelAns nc{true, true};
  const auto bytes =
      encode_uplink_commands({{adr, DutyCycleAns{}, status, nc}});
  const auto decoded = decode_uplink_commands(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 4u);
  EXPECT_EQ(std::get<LinkAdrAns>((*decoded)[0]), adr);
  EXPECT_EQ(std::get<DevStatusAns>((*decoded)[2]), status);
  EXPECT_EQ(std::get<NewChannelAns>((*decoded)[3]), nc);
}

TEST(MacCommands, DevStatusMarginSignSurvives) {
  for (int margin : {-32, -12, -1, 0, 5, 31}) {
    DevStatusAns ans{100, static_cast<std::int8_t>(margin)};
    const auto bytes = encode_uplink_commands({{ans}});
    const auto decoded = decode_uplink_commands(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(std::get<DevStatusAns>((*decoded)[0]).margin, margin);
  }
}

TEST(MacCommands, TxPowerIndexLadder) {
  EXPECT_EQ(tx_power_index(Dbm{20.0}), 0);
  EXPECT_EQ(tx_power_index(Dbm{14.0}), 3);
  EXPECT_EQ(tx_power_index(Dbm{8.0}), 6);
  EXPECT_EQ(tx_power_index(Dbm{2.0}), 7);  // clamped to the deepest step
  EXPECT_DOUBLE_EQ(tx_power_from_index(0).value(), 20.0);
  EXPECT_DOUBLE_EQ(tx_power_from_index(3).value(), 14.0);
  EXPECT_DOUBLE_EQ(tx_power_from_index(9).value(), 6.0);  // out-of-range clamps
}

TEST(MacCommands, ConfigChangeEmitsChannelThenAdr) {
  NodeRadioConfig current;
  current.channel = Channel{Hz{923.3e6}, Hz{125e3}};
  current.dr = DataRate::kDR0;
  current.tx_power = Dbm{14.0};
  NodeRadioConfig next = current;
  next.channel = Channel{Hz{923.3e6 + 75e3}, Hz{125e3}};  // misaligned target
  next.dr = DataRate::kDR4;
  next.tx_power = Dbm{8.0};
  const auto cmds = commands_for_config_change(current, next, 3);
  ASSERT_EQ(cmds.commands.size(), 2u);
  const auto& nc = std::get<NewChannelReq>(cmds.commands[0]);
  EXPECT_EQ(nc.ch_index, 3);
  EXPECT_NEAR(nc.frequency.value(), next.channel.center.value(), 100.0);
  const auto& adr = std::get<LinkAdrReq>(cmds.commands[1]);
  EXPECT_EQ(adr.data_rate, 4);
  EXPECT_EQ(adr.ch_mask, 1u << 3);
  EXPECT_EQ(cmds.bytes, 11u);
}

TEST(MacCommands, NoChangeNoCommands) {
  NodeRadioConfig cfg;
  const auto cmds = commands_for_config_change(cfg, cfg, 0);
  EXPECT_TRUE(cmds.commands.empty());
  EXPECT_EQ(cmds.bytes, 0u);
}

TEST(MacCommands, DrOnlyChangeSkipsNewChannel) {
  NodeRadioConfig current;
  NodeRadioConfig next = current;
  next.dr = DataRate::kDR5;
  const auto cmds = commands_for_config_change(current, next, 0);
  ASSERT_EQ(cmds.commands.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<LinkAdrReq>(cmds.commands[0]));
}

}  // namespace
}  // namespace alphawan
