// Compile-fail case: passing a frequency where a power is expected
//
// Without CF_MISUSE this file must compile (positive control proving the
// harness sees a working translation unit). With -DCF_MISUSE it must NOT
// compile — ctest runs both variants (see CMakeLists.txt).
#include "common/units.hpp"

using namespace alphawan;

constexpr Dbm floor_for(Dbm sensitivity) { return sensitivity; }
constexpr Dbm ok = floor_for(Dbm{-120.0});
#ifdef CF_MISUSE
constexpr Dbm bad = floor_for(Hz{868.1e6});  // wrong physical quantity
#endif

int main() { return 0; }
