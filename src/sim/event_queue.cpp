#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace alphawan {

void EventQueue::push(Seconds when, Action action) {
  heap_.push(Entry{when, next_seq_++, std::move(action)});
}

Seconds EventQueue::next_time() const {
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::next_time on empty queue");
  }
  return heap_.top().when;
}

EventQueue::Action EventQueue::pop(Seconds& now) {
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::pop on empty queue");
  }
  // priority_queue::top() is const; move is safe because we pop right away.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now = entry.when;
  return std::move(entry.action);
}

void EventQueue::clear() {
  heap_ = {};
  next_seq_ = 0;
}

}  // namespace alphawan
