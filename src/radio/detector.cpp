#include "radio/detector.hpp"

namespace alphawan {

std::optional<Detection> detect(const Transmission& tx, Db snr) {
  if (snr < demod_snr_threshold(tx.params.sf) + kDetectionMargin) {
    return std::nullopt;
  }
  return Detection{tx.lock_on(), snr};
}

Db packet_snr(Dbm rx_power, Hz bandwidth) {
  return rx_power - noise_floor_dbm(bandwidth);
}

}  // namespace alphawan
