// Basic identifiers, physical-unit aliases, and constants shared by all
// AlphaWAN subsystems.
#pragma once

#include <cstdint>
#include <limits>

namespace alphawan {

// ---- identifiers ---------------------------------------------------------
using NodeId = std::uint32_t;
using GatewayId = std::uint32_t;
using NetworkId = std::uint16_t;
using ChannelIndex = std::int32_t;  // index into a band plan's channel grid
using PacketId = std::uint64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr GatewayId kInvalidGateway =
    std::numeric_limits<GatewayId>::max();
inline constexpr ChannelIndex kInvalidChannel = -1;

// ---- physical units ------------------------------------------------------
// Plain double aliases with unit-bearing names. All frequencies in Hz, all
// powers in dBm (or dB for ratios), all times in seconds unless a name says
// otherwise.
using Hz = double;
using Dbm = double;
using Db = double;
using Seconds = double;
using Meters = double;

inline constexpr Hz kLoRaBandwidth125k = 125e3;
inline constexpr Hz kLoRaBandwidth250k = 250e3;
inline constexpr Hz kLoRaBandwidth500k = 500e3;

// Standard LoRaWAN channel spacing used throughout the paper's testbed
// (8 channels per 1.6 MHz of spectrum).
inline constexpr Hz kChannelSpacing = 200e3;

// Thermal noise floor for a 125 kHz LoRa channel: -174 dBm/Hz + 10log10(BW)
// + typical 6 dB receiver noise figure.
[[nodiscard]] constexpr Dbm noise_floor_dbm(Hz bandwidth) {
  // constexpr-friendly log10 for the three bandwidths we use.
  double log_bw = 0.0;
  if (bandwidth >= 499e3) {
    log_bw = 56.99;  // 10*log10(500e3)
  } else if (bandwidth >= 249e3) {
    log_bw = 53.98;  // 10*log10(250e3)
  } else {
    log_bw = 50.97;  // 10*log10(125e3)
  }
  return -174.0 + log_bw + 6.0;
}

}  // namespace alphawan
