// SimInvariants: the machine-checked guarantees behind the paper's loss
// attribution. Every claim in Figs. 4/12/13 is a sum over per-packet fates,
// so the harness asserts — per event and per run — that:
//
//   * offered == delivered + Σ(loss causes), per network and in total;
//   * no decoder pool ever exceeds its capacity, double-acquires a packet,
//     or releases a decoder it does not hold (double-free);
//   * FCFS dispatch respects lock-on order, and no packet locks on before
//     it arrived;
//   * MetricsCollector totals match the per-network sums and the recorded
//     fate stream.
//
// Attach a checker with ScenarioRunner::set_invariants (tests), or export
// ALPHAWAN_CHECK=1 to arm a fail-fast process-wide checker in any binary
// (benches, examples) without code changes.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "check/hooks.hpp"
#include "sim/scenario.hpp"

namespace alphawan {

class SimInvariants final : public SimObserver {
 public:
  // When fail-fast, the first violation throws std::logic_error instead of
  // being collected — the mode the env-armed bench checker uses.
  void set_fail_fast(bool fail_fast) { fail_fast_ = fail_fast; }

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  // Throws std::logic_error listing all violations unless ok().
  void require_clean() const;
  void clear();

  [[nodiscard]] std::size_t windows_checked() const {
    return windows_checked_;
  }
  [[nodiscard]] std::size_t events_observed() const {
    return events_observed_;
  }

  // ---- SimObserver hooks (called by instrumented components) ----
  void on_pool_reset(const DecoderPool& pool) override;
  // (now, until) mirrors DecoderPool::try_acquire's interval order.
  // ALPHAWAN-LINT-ALLOW(units-swappable-pair: (now, until) interval)
  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
  void on_pool_acquire(const DecoderPool& pool, Seconds now, Seconds until,
                       NetworkId network, PacketId packet) override;
  void on_pool_release(const DecoderPool& pool, PacketId packet,
                       bool was_held) override;
  void on_pool_refusal(const DecoderPool& pool, Seconds now,
                       NetworkId network, PacketId packet) override;
  void on_radio_window_begin() override;
  // arrival precedes lock_on chronologically (preamble detection).
  // ALPHAWAN-LINT-ALLOW(units-swappable-pair: chronological order is
  // checked at runtime by the dispatch-monotonicity invariant)
  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
  void on_dispatch(Seconds arrival, Seconds lock_on, PacketId packet) override;

  // ---- aggregate checks ----
  // Verify a window result: per-network offered/delivered maps agree with
  // the fate stream, and delivered flags agree with causes.
  void check_window(const WindowResult& result);
  // Verify a metrics collector: totals equal per-network sums and
  // offered == delivered + Σ(losses) at every level.
  void check_metrics(const MetricsCollector& metrics);

 private:
  void violate(std::string message);

  struct PoolState {
    std::set<PacketId> held;
  };

  // ALPHAWAN-LINT-ALLOW(ordering-pointer-key: lookup-only — nothing
  // iterates pools_, so allocation-order keys never reach any output)
  std::map<const DecoderPool*, PoolState> pools_;
  Seconds last_lock_on_{-1e300};
  bool in_window_ = false;
  std::vector<std::string> violations_;
  bool fail_fast_ = false;
  std::size_t windows_checked_ = 0;
  std::size_t events_observed_ = 0;
};

// Process-wide fail-fast checker armed by the ALPHAWAN_CHECK environment
// variable (any value except empty/"0"). Returns nullptr when disabled.
// ScenarioRunner consults this at construction, so exporting the variable
// turns the harness on in every bench and example at ~zero cost otherwise.
[[nodiscard]] SimInvariants* invariants_from_env();

}  // namespace alphawan
