#include "net/channel_plan.hpp"

#include <algorithm>

namespace alphawan {

ConfigDelta diff_config(const NetworkChannelConfig& current,
                        const NetworkChannelConfig& proposed) {
  ConfigDelta delta;
  for (const auto& [gw, cfg] : proposed.gateways) {
    const auto it = current.gateways.find(gw);
    if (it == current.gateways.end() || !(it->second == cfg)) {
      ++delta.gateways_changed;
    }
  }
  for (const auto& [node, cfg] : proposed.nodes) {
    const auto it = current.nodes.find(node);
    if (it == current.nodes.end() || !(it->second == cfg)) {
      ++delta.nodes_changed;
    }
  }
  return delta;
}

bool valid_for_profile(const GatewayChannelConfig& config,
                       const GatewayProfile& profile) {
  if (config.channels.empty()) return false;
  if (static_cast<int>(config.channels.size()) > profile.data_rx_chains) {
    return false;
  }
  auto [lo, hi] = std::minmax_element(
      config.channels.begin(), config.channels.end(),
      [](const Channel& a, const Channel& b) { return a.center < b.center; });
  return hi->high() - lo->low() <= profile.rx_spectrum + Hz{1.0};
}

NetworkChannelConfig homogeneous_standard_config(
    const Spectrum& spectrum, const std::vector<GatewayId>& gateways,
    bool spread_across_plans) {
  NetworkChannelConfig config;
  const int plans = std::max(1, num_standard_plans(spectrum));
  int next_plan = 0;
  for (const GatewayId gw : gateways) {
    const int plan_index = spread_across_plans ? (next_plan++ % plans) : 0;
    config.gateways[gw] =
        GatewayChannelConfig{standard_plan(spectrum, plan_index).channels};
  }
  return config;
}

}  // namespace alphawan
