#include "sim/engine.hpp"

#include <stdexcept>

namespace alphawan {

void Engine::schedule_in(Seconds delay, EventQueue::Action action) {
  if (delay < Seconds{0.0}) {
    throw std::invalid_argument("Engine::schedule_in: negative delay");
  }
  queue_.push(now_ + delay, std::move(action));
}

void Engine::schedule_at(Seconds when, EventQueue::Action action) {
  if (when < now_) {
    throw std::invalid_argument("Engine::schedule_at: time in the past");
  }
  queue_.push(when, std::move(action));
}

bool Engine::step(std::optional<Seconds> horizon) {
  if (queue_.empty()) return false;
  if (horizon && queue_.next_time() > *horizon) return false;
  auto action = queue_.pop(now_);
  action();
  return true;
}

std::size_t Engine::run(std::optional<Seconds> horizon) {
  std::size_t executed = 0;
  while (step(horizon)) ++executed;
  if (horizon && !queue_.empty() && queue_.next_time() > *horizon &&
      now_ < *horizon) {
    now_ = *horizon;
  }
  return executed;
}

void Engine::reset() {
  now_ = Seconds{0.0};
  queue_.clear();
}

}  // namespace alphawan
