#include "net/end_node.hpp"

#include <gtest/gtest.h>

#include "phy/airtime.hpp"

namespace alphawan {
namespace {

NodeRadioConfig test_config() {
  NodeRadioConfig cfg;
  cfg.channel = Channel{Hz{915.1e6}, Hz{125e3}};
  cfg.dr = DataRate::kDR4;  // SF8
  cfg.tx_power = Dbm{11.0};
  return cfg;
}

TEST(EndNode, TransmissionCarriesRadioSettings) {
  EndNode node(7, 2, Point{Meters{100}, Meters{200}}, test_config());
  const auto tx = node.make_transmission(Seconds{5.0}, 10, 99);
  EXPECT_EQ(tx.id, 99u);
  EXPECT_EQ(tx.node, 7u);
  EXPECT_EQ(tx.network, 2);
  EXPECT_EQ(tx.channel, test_config().channel);
  EXPECT_EQ(tx.params.sf, SpreadingFactor::kSF8);
  EXPECT_DOUBLE_EQ(tx.tx_power.value(), 11.0);
  EXPECT_DOUBLE_EQ(tx.start.value(), 5.0);
  EXPECT_EQ(tx.origin, (Point{Meters{100}, Meters{200}}));
  EXPECT_EQ(tx.sync_word, sync_word_for_network(2));
}

TEST(EndNode, TimingConsistency) {
  EndNode node(1, 0, {}, test_config());
  const auto tx = node.make_transmission(Seconds{1.0}, 10, 1);
  EXPECT_DOUBLE_EQ(tx.lock_on().value(),
                   1.0 + preamble_duration(tx.params).value());
  EXPECT_DOUBLE_EQ(tx.end().value(), 1.0 + time_on_air(tx.params, 10).value());
  EXPECT_GT(tx.end(), tx.lock_on());
}

TEST(EndNode, FrameCounterIncrements) {
  EndNode node(1, 0, {}, test_config());
  EXPECT_EQ(node.fcnt(), 0);
  (void)node.make_transmission(Seconds{0.0}, 10, 1);
  (void)node.make_transmission(Seconds{1.0}, 10, 2);
  EXPECT_EQ(node.fcnt(), 2);
}

TEST(EndNode, ApplyConfigTakesEffect) {
  EndNode node(1, 0, {}, test_config());
  NodeRadioConfig next = test_config();
  next.dr = DataRate::kDR0;
  next.tx_power = Dbm{20.0};
  node.apply_config(next);
  const auto tx = node.make_transmission(Seconds{0.0}, 10, 1);
  EXPECT_EQ(tx.params.sf, SpreadingFactor::kSF12);
  EXPECT_DOUBLE_EQ(tx.tx_power.value(), 20.0);
}

TEST(EndNode, DutyCycleGate) {
  EndNode node(1, 0, {}, test_config());
  EXPECT_DOUBLE_EQ(node.next_allowed_start(0.01).value(), 0.0);  // never transmitted
  const auto tx = node.make_transmission(Seconds{0.0}, 10, 1);
  const Seconds airtime = time_on_air(tx.params, 10);
  // 1% duty cycle: off-time = 99x airtime after the packet ends.
  EXPECT_NEAR(node.next_allowed_start(0.01).value(),
              (tx.end() + 99.0 * airtime).value(), 1e-9);
  // 100% duty cycle: no wait.
  EXPECT_DOUBLE_EQ(node.next_allowed_start(1.0).value(), 0.0);
}

TEST(EndNode, DistinctSessionKeysPerDevice) {
  EndNode a(1, 0, {}, test_config());
  EndNode b(2, 0, {}, test_config());
  EXPECT_NE(a.keys().nwk_skey, b.keys().nwk_skey);
  EXPECT_NE(a.keys().app_skey, b.keys().app_skey);
  EXPECT_NE(a.dev_addr(), b.dev_addr());
}

TEST(EndNode, EncodeUplinkDecodable) {
  EndNode node(1, 3, {}, test_config());
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  const auto raw = node.encode_uplink(payload);
  const auto decoded = decode_frame(raw, node.keys());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.frame->frm_payload, payload);
  EXPECT_EQ(decoded.frame->fhdr.dev_addr, node.dev_addr());
  EXPECT_EQ(nwk_id(node.dev_addr()), 3);
}

}  // namespace
}  // namespace alphawan
