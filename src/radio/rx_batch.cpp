#include "radio/rx_batch.hpp"

namespace alphawan {

const WindowTxTable::AirtimeMemo& WindowTxTable::airtime_for(
    const Transmission& tx) {
  for (const auto& memo : memo_) {
    if (memo.payload_bytes == tx.payload_bytes && memo.params == tx.params) {
      return memo;
    }
  }
  memo_.push_back(AirtimeMemo{tx.params, tx.payload_bytes,
                              time_on_air(tx.params, tx.payload_bytes),
                              preamble_duration(tx.params)});
  return memo_.back();
}

void WindowTxTable::build(const std::vector<Transmission>& txs) {
  const std::size_t n = txs.size();
  start.resize(n);
  end.resize(n);
  lock_on.resize(n);
  channel.resize(n);
  sf.resize(n);
  net.resize(n);
  tx_power.resize(n);
  packet.resize(n);
  node.resize(n);
  sync.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    const auto& tx = txs[t];
    const auto& airtime = airtime_for(tx);
    start[t] = tx.start;
    // Term for term the sums Transmission::end()/lock_on() compute, through
    // the memoized airtime — the same construction GatewayRadio's scalar
    // phase 1 uses, so the cached instants are bit-identical to both.
    end[t] = tx.start + airtime.airtime;
    lock_on[t] = tx.start + airtime.preamble;
    channel[t] = tx.channel;
    sf[t] = tx.params.sf;
    net[t] = tx.network;
    tx_power[t] = tx.tx_power;
    packet[t] = tx.id;
    node[t] = tx.node;
    sync[t] = tx.sync_word;
  }
}

}  // namespace alphawan
