// End-to-end reproductions (small scale) of the paper's headline
// observations: the 16-user ceiling, the no-gain-from-extra-gateways
// pathology, the cross-network capacity cap, and AlphaWAN lifting all
// three.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "baselines/standard_lorawan.hpp"
#include "core/controller.hpp"
#include "core/traffic_estimator.hpp"
#include "sim/scenario.hpp"
#include "sim/traffic.hpp"

namespace alphawan {
namespace {

ChannelModelConfig quiet_channel() {
  // The paper's controlled capacity experiments use stable links (fixed
  // node placements, clear margins); heavy shadowing would conflate
  // decoder contention with RF capture losses.
  ChannelModelConfig cfg;
  cfg.shadowing_sigma_db = Db{0.3};
  cfg.fast_fading_sigma_db = Db{0.1};
  return cfg;
}

// Place nodes with explicitly orthogonal (channel, SF) pairs on a ring
// around the region center, so received powers are balanced and there are
// no RF collisions or coverage misses — the paper's controlled capacity
// experiments do the same ("without packet collisions among the nodes").
// The only bottleneck left is the decoder pool.
std::vector<EndNode*> add_orthogonal_users(Deployment& deployment,
                                           Network& network, int count,
                                           Rng& rng, int pair_offset = 0) {
  std::vector<EndNode*> nodes;
  const auto channels = deployment.spectrum().grid_channels();
  const Point center = deployment.region().center();
  const double radius = 140.0;
  for (int k = 0; k < count; ++k) {
    const int i = k + pair_offset;
    NodeRadioConfig cfg;
    cfg.channel = channels[i % channels.size()];
    cfg.dr = static_cast<DataRate>((i / channels.size()) % kNumDataRates);
    cfg.tx_power = Dbm{14.0};
    const double angle = 2.0 * std::numbers::pi *
                         (static_cast<double>(k) + rng.uniform(0.0, 0.5)) /
                         static_cast<double>(count);
    const Point pos{Meters{center.x.value() + radius * std::cos(angle)},
                    Meters{center.y.value() + radius * std::sin(angle)}};
    nodes.push_back(
        &network.add_node(deployment.next_node_id(), pos, cfg));
  }
  return nodes;
}

// Colocate gateways in a tight cluster at the region center, mirroring the
// paper's lab-bench strategy studies (Fig. 5): every gateway sees every
// node at a similar power, so orthogonal settings stay collision-free and
// the decoder pool is the only bottleneck.
void place_clustered_gateways(Deployment& deployment, Network& network,
                              int count) {
  const Point center = deployment.region().center();
  const auto plan0 = standard_plan(deployment.spectrum(), 0);
  for (int i = 0; i < count; ++i) {
    const Point pos{Meters{center.x.value() + 15.0 * i - 7.5 * (count - 1)},
                    Meters{center.y.value() + 10.0 * (i % 2)}};
    auto& gw = network.add_gateway(deployment.next_gateway_id(), pos,
                                   default_profile());
    gw.apply_channels(GatewayChannelConfig{plan0.channels});
  }
}

std::size_t run_concurrent(Deployment& deployment,
                           std::vector<EndNode*> nodes, Seconds at,
                           PacketIdSource& ids, NetworkId network_id,
                           std::uint64_t seed = 7) {
  ScenarioRunner runner(deployment, seed);
  const auto txs = staggered_by_lock_on(std::move(nodes), at, Seconds{0.0004}, ids);
  const auto result = runner.run_window(txs);
  const auto it = result.delivered.find(network_id);
  return it == result.delivered.end() ? 0 : it->second;
}

TEST(EndToEnd, SixteenUserCeilingSingleGateway) {
  Deployment deployment{Region{Meters{600}, Meters{600}}, spectrum_1m6(), quiet_channel()};
  auto& network = deployment.add_network("ttn");
  Rng rng(1);
  deployment.place_gateways(network, 1, default_profile(), rng);
  auto nodes = add_orthogonal_users(deployment, network, 48, rng);
  PacketIdSource ids;
  EXPECT_EQ(run_concurrent(deployment, nodes, Seconds{0.0}, ids, network.id()), 16u);
}

TEST(EndToEnd, ExtraHomogeneousGatewaysDoNotHelp) {
  // Fig. 2a: 3 gateways on the same standard plan still deliver 16.
  Deployment deployment{Region{Meters{600}, Meters{600}}, spectrum_1m6(), quiet_channel()};
  auto& network = deployment.add_network("ttn");
  Rng rng(2);
  deployment.place_gateways(network, 3, default_profile(), rng);
  StandardLorawanPolicy().configure(deployment, network, rng);  // homogeneous plans
  auto nodes = add_orthogonal_users(deployment, network, 48, rng);
  PacketIdSource ids;
  const auto delivered =
      run_concurrent(deployment, nodes, Seconds{0.0}, ids, network.id());
  EXPECT_EQ(delivered, 16u);
}

TEST(EndToEnd, CoexistingNetworksShareTheSixteen) {
  // Fig. 2b: two networks on the same spectrum; total received ~ 16.
  Deployment deployment{Region{Meters{600}, Meters{600}}, spectrum_1m6(), quiet_channel()};
  auto& ttn = deployment.add_network("ttn");
  auto& local = deployment.add_network("local");
  Rng rng(3);
  deployment.place_gateways(ttn, 1, default_profile(), rng);
  deployment.place_gateways(local, 1, default_profile(), rng);
  // The paper schedules the two networks' nodes on distinct sub-channel /
  // data-rate combinations (no RF collisions between them).
  auto ttn_nodes = add_orthogonal_users(deployment, ttn, 24, rng, 0);
  auto local_nodes = add_orthogonal_users(deployment, local, 24, rng, 24);

  // Interleave the two populations in lock-on time.
  std::vector<EndNode*> all;
  for (int i = 0; i < 24; ++i) {
    all.push_back(ttn_nodes[static_cast<std::size_t>(i)]);
    all.push_back(local_nodes[static_cast<std::size_t>(i)]);
  }
  PacketIdSource ids;
  ScenarioRunner runner(deployment, 7);
  const auto txs = staggered_by_lock_on(all, Seconds{0.0}, Seconds{0.0004}, ids);
  const auto result = runner.run_window(txs);
  const std::size_t total = result.total_delivered();
  EXPECT_EQ(total, 16u);
  // Both networks get some share, neither gets all.
  EXPECT_GT(result.delivered.at(ttn.id()), 0u);
  EXPECT_GT(result.delivered.at(local.id()), 0u);
}

TEST(EndToEnd, AlphaWanTriplesCapacityWithFiveGateways) {
  // Fig. 5a / Sec. 1: same spectrum and users, AlphaWAN-planned gateways
  // reach the 48-user oracle (3x standard LoRaWAN's 16).
  Deployment deployment{Region{Meters{600}, Meters{600}}, spectrum_1m6(), quiet_channel()};
  auto& network = deployment.add_network("alpha");
  Rng rng(4);
  place_clustered_gateways(deployment, network, 5);
  auto nodes = add_orthogonal_users(deployment, network, 48, rng);

  LatencyModel latency{LatencyModelConfig{}, 5};
  AlphaWanConfig cfg;
  cfg.strategy8_spectrum_sharing = false;
  cfg.planner.ga.population = 24;
  cfg.planner.ga.generations = 40;
  AlphaWanController controller(cfg, latency);
  const auto links = oracle_link_estimates(deployment, network);
  (void)controller.upgrade(network, deployment.spectrum(), links,
                           uniform_traffic(network));

  PacketIdSource ids;
  const auto delivered =
      run_concurrent(deployment, nodes, Seconds{0.0}, ids, network.id());
  EXPECT_GE(delivered, 44u);  // near-oracle (paper reaches the bound)
}

TEST(EndToEnd, SpectrumSharingIsolatesTwoNetworks) {
  // Two coexisting 24-user networks, each with 3 gateways: with Master
  // coordination both should comfortably beat the 16-packet shared
  // ceiling of the standard setup.
  Deployment deployment{Region{Meters{600}, Meters{600}}, spectrum_1m6(), quiet_channel()};
  auto& op1 = deployment.add_network("op1");
  auto& op2 = deployment.add_network("op2");
  Rng rng(5);
  place_clustered_gateways(deployment, op1, 3);
  place_clustered_gateways(deployment, op2, 3);
  auto nodes1 = add_orthogonal_users(deployment, op1, 24, rng, 0);
  auto nodes2 = add_orthogonal_users(deployment, op2, 24, rng, 24);

  LatencyModel latency{LatencyModelConfig{}, 6};
  MasterNode master(MasterConfig{deployment.spectrum(), 0.4, 2});
  AlphaWanConfig cfg;
  cfg.planner.ga.population = 24;
  cfg.planner.ga.generations = 40;
  AlphaWanController c1(cfg, latency), c2(cfg, latency);
  const auto links1 = oracle_link_estimates(deployment, op1);
  const auto links2 = oracle_link_estimates(deployment, op2);
  (void)c1.upgrade(op1, deployment.spectrum(), links1, uniform_traffic(op1),
                   &master);
  (void)c2.upgrade(op2, deployment.spectrum(), links2, uniform_traffic(op2),
                   &master);

  std::vector<EndNode*> all;
  for (int i = 0; i < 24; ++i) {
    all.push_back(nodes1[static_cast<std::size_t>(i)]);
    all.push_back(nodes2[static_cast<std::size_t>(i)]);
  }
  PacketIdSource ids;
  ScenarioRunner runner(deployment, 8);
  const auto txs = staggered_by_lock_on(all, Seconds{0.0}, Seconds{0.0004}, ids);
  const auto result = runner.run_window(txs);
  EXPECT_GT(result.delivered.at(op1.id()), 18u);
  EXPECT_GT(result.delivered.at(op2.id()), 18u);
  EXPECT_GT(result.total_delivered(), 36u);
}

TEST(EndToEnd, MeasurementDrivenPlanningPipeline) {
  // The full log-driven path: run light traffic, parse server logs,
  // estimate traffic, plan, and verify the plan applies. This exercises
  // log_parser + traffic_estimator + planner together (no oracle data).
  Deployment deployment{Region{Meters{800}, Meters{800}}, spectrum_1m6()};
  auto& network = deployment.add_network("op");
  Rng rng(6);
  deployment.place_gateways(network, 3, default_profile(), rng);
  deployment.place_nodes(network, 20, rng);

  // Measurement campaign: 5 sequential windows of sparse traffic.
  ScenarioRunner runner(deployment, 9);
  PacketIdSource ids;
  std::vector<EndNode*> nodes;
  for (auto& n : network.nodes()) nodes.push_back(&n);
  for (int w = 0; w < 5; ++w) {
    Rng traffic_rng(100 + static_cast<std::uint64_t>(w));
    auto txs = poisson_traffic(nodes, Seconds{60.0}, 0.01, traffic_rng, ids, 1.0);
    for (auto& tx : txs) tx.start += Seconds{w * 60.0};
    (void)runner.run_window(txs);
  }

  const auto& log = network.server().log();
  ASSERT_FALSE(log.empty());
  const auto links = parse_links(log);
  EXPECT_FALSE(links.empty());
  const auto series = per_window_counts(log, Seconds{60.0}, 5);
  TrafficEstimator estimator;
  const auto demand = estimator.estimate(series);
  EXPECT_FALSE(demand.empty());

  IntraPlannerConfig cfg;
  cfg.ga.population = 12;
  cfg.ga.generations = 15;
  IntraPlanner planner(cfg);
  const auto outcome =
      planner.plan(network, deployment.spectrum(), links, demand);
  EXPECT_NO_THROW(network.apply_config(outcome.config));
  EXPECT_DOUBLE_EQ(outcome.eval.disconnected, 0.0);
}

}  // namespace
}  // namespace alphawan
