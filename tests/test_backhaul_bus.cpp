#include "backhaul/bus.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace alphawan {
namespace {

struct BusFixture : ::testing::Test {
  Engine engine;
  LatencyModel latency{LatencyModelConfig{}, 3};
  MessageBus bus{engine, latency};
};

TEST_F(BusFixture, DeliversToAttachedEndpoint) {
  std::vector<std::uint8_t> received;
  EndpointId from_seen;
  bus.attach("server", [&](const EndpointId& from,
                           std::vector<std::uint8_t> data) {
    from_seen = from;
    received = std::move(data);
  });
  bus.send("gw-1", "server", {1, 2, 3});
  engine.run();
  EXPECT_EQ(received, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(from_seen, "gw-1");
}

TEST_F(BusFixture, LanDeliveryTakesPositiveTime) {
  bool delivered = false;
  bus.attach("a", [&](const EndpointId&, std::vector<std::uint8_t>) {
    delivered = true;
  });
  bus.send("b", "a", std::vector<std::uint8_t>(1000, 0));
  EXPECT_FALSE(delivered);
  engine.run();
  EXPECT_TRUE(delivered);
  EXPECT_GT(engine.now(), Seconds{0.0});
  EXPECT_LT(engine.now(), Seconds{0.1});  // LAN: sub-100ms
}

TEST_F(BusFixture, WanSlowerThanLan) {
  bus.attach("x", [](const EndpointId&, std::vector<std::uint8_t>) {});
  bus.send("y", "x", {1});
  engine.run();
  const Seconds lan_duration = engine.now();
  bus.send("y", "x", {1}, /*wan=*/true);
  engine.run();
  const Seconds wan_duration = engine.now() - lan_duration;
  EXPECT_GT(wan_duration, Seconds{0.02});  // WAN ~55 ms one way
  EXPECT_GT(wan_duration, 10.0 * lan_duration);
}

TEST_F(BusFixture, UnknownEndpointCountsDropped) {
  bus.send("a", "nowhere", {1});
  engine.run();
  EXPECT_EQ(bus.dropped(), 1u);
}

TEST_F(BusFixture, StatsAccumulate) {
  bus.attach("s", [](const EndpointId&, std::vector<std::uint8_t>) {});
  bus.send("c", "s", std::vector<std::uint8_t>(10, 0));
  bus.send("c", "s", std::vector<std::uint8_t>(20, 0));
  EXPECT_EQ(bus.stats().messages, 2u);
  EXPECT_EQ(bus.stats().bytes, 30u);
}

TEST_F(BusFixture, DetachStopsDelivery) {
  int hits = 0;
  bus.attach("s", [&](const EndpointId&, std::vector<std::uint8_t>) {
    ++hits;
  });
  bus.send("c", "s", {1});
  engine.run();
  bus.detach("s");
  EXPECT_FALSE(bus.attached("s"));
  bus.send("c", "s", {1});
  engine.run();
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(bus.dropped(), 1u);
}

TEST_F(BusFixture, DetachWhileInFlightDropsAndCounts) {
  // Delivery semantics: attachment is checked when the delivery event
  // fires, not at send time. A message racing a detach is dropped and
  // counted — never delivered to a dead handler.
  int hits = 0;
  bus.attach("s", [&](const EndpointId&, std::vector<std::uint8_t>) {
    ++hits;
  });
  bus.send("c", "s", {1});  // in flight...
  bus.detach("s");          // ...and the endpoint goes away before delivery
  engine.run();
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(bus.stats().dropped, 1u);
}

TEST_F(BusFixture, DownEndpointDropsAtDeliveryTime) {
  int hits = 0;
  bus.attach("s", [&](const EndpointId&, std::vector<std::uint8_t>) {
    ++hits;
  });
  bus.send("c", "s", {1});
  bus.set_down("s", true);  // crash while the message is in flight
  engine.run();
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(bus.dropped(), 1u);

  bus.set_down("s", false);  // handler survived the outage
  bus.send("c", "s", {1});
  engine.run();
  EXPECT_EQ(hits, 1);
}

TEST_F(BusFixture, DownSourceDropsAtSendTime) {
  int hits = 0;
  bus.attach("s", [&](const EndpointId&, std::vector<std::uint8_t>) {
    ++hits;
  });
  bus.set_down("c", true);
  bus.send("c", "s", {1});
  engine.run();
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(bus.dropped(), 1u);
}

TEST(RetryPolicyTest, BackoffIsExponentialAndCapped) {
  RetryPolicy policy;  // 0.25 s * 2^k, cap 4 s
  EXPECT_DOUBLE_EQ(policy.timeout_for_attempt(0).value(), 0.25);
  EXPECT_DOUBLE_EQ(policy.timeout_for_attempt(1).value(), 0.5);
  EXPECT_DOUBLE_EQ(policy.timeout_for_attempt(2).value(), 1.0);
  EXPECT_DOUBLE_EQ(policy.timeout_for_attempt(5).value(), 4.0);
  EXPECT_DOUBLE_EQ(policy.timeout_for_attempt(50).value(), 4.0);
}

TEST(LatencyModelTest, RebootNearPaperMean) {
  LatencyModel latency{LatencyModelConfig{}, 11};
  RunningStats stats;
  for (int i = 0; i < 500; ++i) stats.add(latency.gateway_reboot().value());
  EXPECT_NEAR(stats.mean(), 4.62, 0.15);  // paper: 4.62 s average
  EXPECT_GT(stats.min(), 0.4);
}

TEST(LatencyModelTest, MasterRoundTripInPaperRange) {
  // Paper Fig. 17: the two operator-to-Master exchanges of an upgrade add
  // 0.17-0.28 s, i.e. ~0.1 s per round trip.
  LatencyModel latency{LatencyModelConfig{}, 13};
  for (int i = 0; i < 200; ++i) {
    const Seconds rtt = latency.master_round_trip();
    EXPECT_GT(rtt, Seconds{0.05});
    EXPECT_LT(rtt, Seconds{0.25});
  }
}

TEST(LatencyModelTest, LanTransferScalesWithBytes) {
  LatencyModel latency{LatencyModelConfig{}, 15};
  EXPECT_LT(latency.lan_transfer(100), latency.lan_transfer(100'000'000));
}

}  // namespace
}  // namespace alphawan
