#include "net/frame.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace alphawan {
namespace {

SessionKeys test_keys() {
  SessionKeys keys;
  keys.nwk_skey.fill(0xA1);
  keys.app_skey.fill(0xB2);
  return keys;
}

DataFrame sample_frame() {
  DataFrame f;
  f.mtype = MType::kUnconfirmedDataUp;
  f.fhdr.dev_addr = make_dev_addr(3, 0x1234);
  f.fhdr.fcnt = 42;
  f.fhdr.fctrl.adr = true;
  f.fport = 1;
  f.frm_payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06};
  return f;
}

TEST(Frame, EncodeDecodeRoundTrip) {
  const auto keys = test_keys();
  const auto raw = encode_frame(sample_frame(), keys);
  const auto result = decode_frame(raw, keys);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.frame->fhdr.dev_addr, make_dev_addr(3, 0x1234));
  EXPECT_EQ(result.frame->fhdr.fcnt, 42);
  EXPECT_TRUE(result.frame->fhdr.fctrl.adr);
  EXPECT_EQ(result.frame->fport, 1);
  EXPECT_EQ(result.frame->frm_payload, sample_frame().frm_payload);
}

TEST(Frame, PayloadIsEncryptedOnTheWire) {
  const auto keys = test_keys();
  const auto frame = sample_frame();
  const auto raw = encode_frame(frame, keys);
  // The plaintext must not appear in the encoded bytes.
  const auto& plain = frame.frm_payload;
  const auto it = std::search(raw.begin(), raw.end(), plain.begin(),
                              plain.end());
  EXPECT_EQ(it, raw.end());
}

TEST(Frame, WrongNetworkKeyFailsMic) {
  // The paper's decode-then-filter property: another network's key cannot
  // verify the packet; identity is only known after full decode.
  const auto raw = encode_frame(sample_frame(), test_keys());
  SessionKeys other = test_keys();
  other.nwk_skey.fill(0xEE);
  const auto result = decode_frame(raw, other);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, DecodeError::kBadMic);
}

TEST(Frame, CorruptedByteFailsMic) {
  const auto keys = test_keys();
  auto raw = encode_frame(sample_frame(), keys);
  raw[raw.size() / 2] ^= 0x01;
  EXPECT_EQ(decode_frame(raw, keys).error, DecodeError::kBadMic);
}

TEST(Frame, TruncatedTooShort) {
  const std::vector<std::uint8_t> tiny = {0x40, 0x01, 0x02};
  EXPECT_EQ(decode_frame(tiny, test_keys()).error, DecodeError::kTooShort);
}

TEST(Frame, JoinRequestMTypeRejectedByDataDecoder) {
  const auto keys = test_keys();
  auto raw = encode_frame(sample_frame(), keys);
  raw[0] = 0x00;  // JoinRequest MHDR
  EXPECT_EQ(decode_frame(raw, keys).error, DecodeError::kBadMType);
}

TEST(Frame, NoPayloadFrame) {
  const auto keys = test_keys();
  DataFrame f;
  f.mtype = MType::kUnconfirmedDataUp;
  f.fhdr.dev_addr = 77;
  f.fhdr.fcnt = 1;
  const auto raw = encode_frame(f, keys);
  const auto result = decode_frame(raw, keys);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.frame->fport.has_value());
  EXPECT_TRUE(result.frame->frm_payload.empty());
}

TEST(Frame, FOptsCarriedThrough) {
  const auto keys = test_keys();
  DataFrame f = sample_frame();
  f.fhdr.fopts = {0x03, 0x51, 0x07};  // e.g. a LinkADRAns
  const auto raw = encode_frame(f, keys);
  const auto result = decode_frame(raw, keys);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.frame->fhdr.fopts, f.fhdr.fopts);
}

TEST(Frame, FOptsTooLongThrows) {
  DataFrame f = sample_frame();
  f.fhdr.fopts.assign(16, 0x00);
  EXPECT_THROW(encode_frame(f, test_keys()), std::invalid_argument);
}

TEST(Frame, PayloadWithoutFportThrows) {
  DataFrame f = sample_frame();
  f.fport.reset();
  EXPECT_THROW(encode_frame(f, test_keys()), std::invalid_argument);
}

TEST(Frame, PeekHeaderWithoutKeys) {
  const auto raw = encode_frame(sample_frame(), test_keys());
  const auto header = peek_header(raw);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->dev_addr, make_dev_addr(3, 0x1234));
  EXPECT_EQ(header->fcnt, 42);
}

TEST(Frame, NwkIdExtraction) {
  EXPECT_EQ(nwk_id(make_dev_addr(5, 123)), 5);
  EXPECT_EQ(nwk_id(make_dev_addr(127, 0x01FFFFFF)), 127);
}

TEST(Frame, DownlinkDirectionAffectsMic) {
  const auto keys = test_keys();
  DataFrame up = sample_frame();
  DataFrame down = up;
  down.mtype = MType::kUnconfirmedDataDown;
  EXPECT_NE(encode_frame(up, keys), encode_frame(down, keys));
}

TEST(Frame, RandomBytesNeverCrash) {
  const auto keys = test_keys();
  Rng rng(77);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    const auto result = decode_frame(junk, keys);
    // Overwhelmingly these must fail; the API contract is just "no crash,
    // error reported".
    if (!result.ok()) {
      EXPECT_TRUE(result.error.has_value());
    }
  }
}

TEST(Frame, Port0UsesNetworkKey) {
  const auto keys = test_keys();
  DataFrame f = sample_frame();
  f.fport = 0;  // MAC commands: encrypted under NwkSKey
  const auto raw = encode_frame(f, keys);
  const auto result = decode_frame(raw, keys);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.frame->frm_payload, f.frm_payload);
}

class FramePayloadSweep : public ::testing::TestWithParam<int> {};

TEST_P(FramePayloadSweep, RoundTripAtEverySize) {
  const auto keys = test_keys();
  DataFrame f;
  f.mtype = MType::kUnconfirmedDataUp;
  f.fhdr.dev_addr = make_dev_addr(2, 1234);
  f.fhdr.fcnt = static_cast<std::uint16_t>(GetParam());
  const int size = GetParam();
  if (size > 0) {
    f.fport = 7;
    f.frm_payload.resize(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i) {
      f.frm_payload[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(i * 13 + 5);
    }
  }
  const auto raw = encode_frame(f, keys);
  // PHYPayload size = MHDR(1)+FHDR(7)+[FPort(1)+payload]+MIC(4).
  EXPECT_EQ(raw.size(), 12u + (size > 0 ? 1u + size : 0u));
  const auto decoded = decode_frame(raw, keys);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.frame->frm_payload, f.frm_payload);
  EXPECT_EQ(decoded.frame->fhdr.fcnt, f.fhdr.fcnt);
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, FramePayloadSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 51,
                                           64, 100, 128, 200, 222));

}  // namespace
}  // namespace alphawan
