#include "net/network_server.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

UplinkRecord record(PacketId packet, NodeId node, GatewayId gateway, Db snr) {
  UplinkRecord r;
  r.packet = packet;
  r.node = node;
  r.gateway = gateway;
  r.network = 3;
  r.snr = snr;
  return r;
}

TEST(NetworkServer, DeduplicatesMultiGatewayReceptions) {
  NetworkServer server(3);
  // Packet 10 heard by two gateways; packet 11 by one.
  server.ingest({record(10, 1, 100, Db{5.0}), record(10, 1, 101, Db{-2.0}),
                 record(11, 1, 100, Db{1.0})});
  EXPECT_EQ(server.delivered_packets(), 2u);
  EXPECT_TRUE(server.was_delivered(10));
  EXPECT_TRUE(server.was_delivered(11));
  EXPECT_FALSE(server.was_delivered(12));
  // The raw log still keeps every reception.
  EXPECT_EQ(server.log().size(), 3u);
}

TEST(NetworkServer, DeduplicatesAcrossWindows) {
  NetworkServer server(3);
  server.ingest({record(10, 1, 100, Db{5.0})});
  server.ingest({record(10, 1, 101, Db{6.0})});
  EXPECT_EQ(server.delivered_packets(), 1u);
  EXPECT_EQ(server.per_node_delivered().at(1), 1u);
}

TEST(NetworkServer, LinkProfileTracksBestSnrPerGateway) {
  NetworkServer server(3);
  server.ingest({record(10, 7, 100, Db{-3.0}), record(11, 7, 100, Db{4.0}),
                 record(12, 7, 101, Db{1.0})});
  const auto& profiles = server.link_profiles();
  ASSERT_TRUE(profiles.contains(7));
  const LinkProfile& profile = profiles.at(7);
  EXPECT_EQ(profile.gateway_count(), 2u);
  EXPECT_EQ(profile.uplinks, 3u);
  EXPECT_DOUBLE_EQ(profile.gateway_snr.at(100).value(), 4.0);  // best of -3 and 4
  EXPECT_DOUBLE_EQ(profile.gateway_snr.at(101).value(), 1.0);
  EXPECT_DOUBLE_EQ(profile.best_snr().value(), 4.0);
}

TEST(NetworkServer, PerNodeDeliveredCountsUniquePackets) {
  NetworkServer server(3);
  server.ingest({record(10, 1, 100, Db{0.0}), record(10, 1, 101, Db{0.0}),
                 record(11, 2, 100, Db{0.0}), record(12, 2, 100, Db{0.0})});
  EXPECT_EQ(server.per_node_delivered().at(1), 1u);
  EXPECT_EQ(server.per_node_delivered().at(2), 2u);
}

TEST(NetworkServer, ClearResetsAllState) {
  NetworkServer server(3);
  server.ingest({record(10, 1, 100, Db{0.0})});
  server.clear();
  EXPECT_EQ(server.delivered_packets(), 0u);
  EXPECT_TRUE(server.log().empty());
  EXPECT_TRUE(server.link_profiles().empty());
  EXPECT_TRUE(server.per_node_delivered().empty());
  EXPECT_FALSE(server.was_delivered(10));
  EXPECT_EQ(server.network(), 3u);  // identity survives
}

}  // namespace
}  // namespace alphawan
