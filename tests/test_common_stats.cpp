#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, Reset) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v = {3.0, 1.0, 2.0, 5.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Percentile, ClampsQuantile) {
  std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 2.0);
}

TEST(EmpiricalCdf, Basics) {
  const auto cdf = empirical_cdf({1.0, 2.0, 3.0, 4.0}, {0.0, 2.0, 2.5, 10.0});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.5);
  EXPECT_DOUBLE_EQ(cdf[2], 0.5);
  EXPECT_DOUBLE_EQ(cdf[3], 1.0);
}

TEST(JainFairness, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness({3.0, 3.0, 3.0}), 1.0);
}

TEST(JainFairness, MaximallyUnfair) {
  EXPECT_NEAR(jain_fairness({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainFairness, EmptyAndZero) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
}

TEST(HistogramTest, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(9.99);
  h.add(5.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bins()[0], 1u);
  EXPECT_EQ(h.bins()[2], 1u);
  EXPECT_EQ(h.bins()[4], 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
}

TEST(HistogramTest, OutOfRangeClamped) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.bins()[0], 1u);
  EXPECT_EQ(h.bins()[1], 1u);
}

TEST(HistogramTest, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(TallyTest, CountsAndTotal) {
  Tally<int> t;
  t.add(1);
  t.add(1, 2);
  t.add(7);
  EXPECT_EQ(t.get(1), 3u);
  EXPECT_EQ(t.get(7), 1u);
  EXPECT_EQ(t.get(99), 0u);
  EXPECT_EQ(t.total(), 4u);
  t.clear();
  EXPECT_EQ(t.total(), 0u);
}

}  // namespace
}  // namespace alphawan
