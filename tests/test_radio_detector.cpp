#include "radio/detector.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

Transmission make_tx(SpreadingFactor sf) {
  Transmission tx;
  tx.id = 1;
  tx.params.sf = sf;
  tx.start = Seconds{2.5};
  return tx;
}

TEST(Detector, LocksOnAboveThreshold) {
  const Transmission tx = make_tx(SpreadingFactor::kSF9);
  const Db threshold =
      demod_snr_threshold(SpreadingFactor::kSF9) + kDetectionMargin;
  const auto detection = detect(tx, threshold + Db{0.1});
  ASSERT_TRUE(detection.has_value());
  EXPECT_DOUBLE_EQ(detection->lock_on.value(), tx.lock_on().value());
  EXPECT_DOUBLE_EQ(detection->snr.value(), (threshold + Db{0.1}).value());
}

TEST(Detector, RejectsBelowThreshold) {
  const Transmission tx = make_tx(SpreadingFactor::kSF9);
  const Db threshold =
      demod_snr_threshold(SpreadingFactor::kSF9) + kDetectionMargin;
  EXPECT_FALSE(detect(tx, threshold - Db{0.1}).has_value());
}

TEST(Detector, ThresholdAtExactBoundaryLocks) {
  const Transmission tx = make_tx(SpreadingFactor::kSF12);
  const Db threshold =
      demod_snr_threshold(SpreadingFactor::kSF12) + kDetectionMargin;
  EXPECT_TRUE(detect(tx, threshold).has_value());
}

TEST(Detector, SlowerSpreadingFactorsLockDeeperInNoise) {
  // SF12 demodulates far below SF7's floor — the range/rate trade-off.
  EXPECT_LT(demod_snr_threshold(SpreadingFactor::kSF12),
            demod_snr_threshold(SpreadingFactor::kSF7));
  const Db deep = demod_snr_threshold(SpreadingFactor::kSF12) + Db{0.5};
  EXPECT_TRUE(detect(make_tx(SpreadingFactor::kSF12), deep).has_value());
  EXPECT_FALSE(detect(make_tx(SpreadingFactor::kSF7), deep).has_value());
}

TEST(Detector, LockOnIsPreambleEndNotPacketStart) {
  const Transmission tx = make_tx(SpreadingFactor::kSF7);
  const auto detection =
      detect(tx, demod_snr_threshold(SpreadingFactor::kSF7) + Db{10.0});
  ASSERT_TRUE(detection.has_value());
  EXPECT_GT(detection->lock_on, tx.start);
  EXPECT_LT(detection->lock_on, tx.end());
}

TEST(Detector, HigherSfLocksLater) {
  // Same start: a longer preamble (higher SF) commits the decoder later.
  const Transmission fast = make_tx(SpreadingFactor::kSF7);
  const Transmission slow = make_tx(SpreadingFactor::kSF12);
  EXPECT_LT(fast.lock_on(), slow.lock_on());
}

TEST(Detector, PacketSnrIsRelativeToNoiseFloor) {
  const Hz bw = kLoRaBandwidth125k;
  EXPECT_DOUBLE_EQ(packet_snr(noise_floor_dbm(bw), bw).value(), 0.0);
  EXPECT_DOUBLE_EQ(packet_snr(noise_floor_dbm(bw) + Db{12.5}, bw).value(),
                   12.5);
}

}  // namespace
}  // namespace alphawan
