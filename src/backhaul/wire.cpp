#include "backhaul/wire.hpp"

#include <array>
#include <cstring>

namespace alphawan {

void BufferWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void BufferWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void BufferWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void BufferWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void BufferWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void BufferWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BufferWriter::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

bool BufferReader::take(std::size_t n) {
  if (failed_ || pos_ + n > data_.size()) {
    failed_ = true;
    return false;
  }
  return true;
}

std::optional<std::uint8_t> BufferReader::u8() {
  if (!take(1)) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint16_t> BufferReader::u16() {
  if (!take(2)) return std::nullopt;
  const auto v = static_cast<std::uint16_t>(data_[pos_] |
                                            (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::optional<std::uint32_t> BufferReader::u32() {
  if (!take(4)) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> BufferReader::u64() {
  if (!take(8)) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::optional<double> BufferReader::f64() {
  const auto bits = u64();
  if (!bits) return std::nullopt;
  double v;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

std::optional<std::string> BufferReader::str() {
  const auto len = u32();
  if (!len || !take(*len)) return std::nullopt;
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), *len);
  pos_ += *len;
  return s;
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> seal_payload(std::vector<std::uint8_t> body) {
  const std::uint32_t check = crc32(body);
  for (int i = 0; i < 4; ++i) {
    body.push_back(static_cast<std::uint8_t>(check >> (8 * i)));
  }
  return body;
}

std::optional<std::span<const std::uint8_t>> open_payload(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 4) return std::nullopt;
  const std::span<const std::uint8_t> body = payload.first(payload.size() - 4);
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(payload[body.size() +
                                                 static_cast<std::size_t>(i)])
              << (8 * i);
  }
  if (crc32(body) != stored) return std::nullopt;
  return body;
}

std::vector<std::uint8_t> frame_message(std::span<const std::uint8_t> payload) {
  BufferWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload);
  return w.take();
}

bool FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (poisoned_) return false;
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  return true;
}

std::optional<std::vector<std::uint8_t>> FrameDecoder::next() {
  if (poisoned_ || buf_.size() < 4) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(buf_[static_cast<std::size_t>(i)])
           << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    poisoned_ = true;
    return std::nullopt;
  }
  if (buf_.size() < 4u + len) return std::nullopt;
  std::vector<std::uint8_t> payload(buf_.begin() + 4, buf_.begin() + 4 + len);
  buf_.erase(buf_.begin(), buf_.begin() + 4 + len);
  return payload;
}

}  // namespace alphawan
