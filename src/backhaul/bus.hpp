// In-process message bus with simulated delivery latency: the backhaul
// substrate carrying operator <-> Master traffic and server -> gateway
// config pushes. Endpoints exchange framed byte payloads; delivery is
// scheduled on a discrete-event Engine so end-to-end latencies (Fig. 17)
// are measurable.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "backhaul/latency_model.hpp"
#include "sim/engine.hpp"

namespace alphawan {

using EndpointId = std::string;

struct BusStats {
  std::size_t messages = 0;
  std::size_t bytes = 0;
};

class MessageBus {
 public:
  using Handler =
      std::function<void(const EndpointId& from, std::vector<std::uint8_t>)>;

  MessageBus(Engine& engine, LatencyModel& latency)
      : engine_(engine), latency_(latency) {}

  // Register (or replace) an endpoint's receive handler.
  void attach(const EndpointId& id, Handler handler);
  void detach(const EndpointId& id);
  [[nodiscard]] bool attached(const EndpointId& id) const {
    return handlers_.contains(id);
  }

  // Send a payload; `wan` selects the WAN (operator<->Master) latency
  // distribution instead of the LAN one. Messages to unknown endpoints are
  // dropped (counted in `dropped()`).
  void send(const EndpointId& from, const EndpointId& to,
            std::vector<std::uint8_t> payload, bool wan = false);

  [[nodiscard]] const BusStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

 private:
  Engine& engine_;
  LatencyModel& latency_;
  std::map<EndpointId, Handler> handlers_;
  BusStats stats_;
  std::size_t dropped_ = 0;
};

}  // namespace alphawan
