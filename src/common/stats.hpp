// Small statistics helpers used by the metrics collector and benches.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

namespace alphawan {

// Online mean / variance (Welford). Cheap enough to keep per metric.
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  // sample variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  void reset();

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample set (linear interpolation between order
// statistics). `q` in [0, 1]. Returns 0 for an empty sample.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

// Empirical CDF evaluated on a sorted copy of `samples` at the given
// thresholds: fraction of samples <= threshold.
[[nodiscard]] std::vector<double> empirical_cdf(
    std::vector<double> samples, const std::vector<double>& thresholds);

// Jain's fairness index: (sum x)^2 / (n * sum x^2). 1.0 = perfectly fair.
[[nodiscard]] double jain_fairness(const std::vector<double>& xs);

// Simple fixed-bin histogram over [lo, hi).
class Histogram {
 public:
  // (lo, hi) interval order, as in Rng::uniform.
  // ALPHAWAN-LINT-ALLOW(units-swappable-pair: (lo, hi) interval order)
  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  [[nodiscard]] const std::vector<std::size_t>& bins() const { return bins_; }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> bins_;
  std::size_t total_ = 0;
};

// Counter keyed by an enum/int, convenient for loss-cause tallies.
template <typename Key>
class Tally {
 public:
  void add(Key k, std::size_t n = 1) { counts_[k] += n; }
  [[nodiscard]] std::size_t get(Key k) const {
    auto it = counts_.find(k);
    return it == counts_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::size_t total() const {
    std::size_t sum = 0;
    for (const auto& [k, v] : counts_) sum += v;
    return sum;
  }
  [[nodiscard]] const std::map<Key, std::size_t>& counts() const {
    return counts_;
  }
  void clear() { counts_.clear(); }

 private:
  std::map<Key, std::size_t> counts_;
};

}  // namespace alphawan
