// Minimal leveled logger (printf-style; gcc 12 has no <format>). Off by
// default so simulations stay quiet; benches and examples can raise the
// level for narrative output.
#pragma once

#include <string_view>

namespace alphawan {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

// printf-style logging; no-op when `level` is below the global level.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void logf(LogLevel level, const char* fmt, ...);

}  // namespace alphawan
