#include "core/ga_solver.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace alphawan {
namespace {

CpInstance make_instance(std::size_t num_gw, std::size_t num_nodes,
                         int decoders = 16, int num_channels = 8) {
  CpInstance inst;
  inst.spectrum = Spectrum{Hz{923.2e6}, num_channels * kChannelSpacing};
  inst.num_channels = num_channels;
  for (std::size_t j = 0; j < num_gw; ++j) {
    inst.gateways.push_back(
        {static_cast<GatewayId>(j + 1), decoders, 8, 8});
  }
  for (std::size_t i = 0; i < num_nodes; ++i) {
    CpNode node;
    node.id = static_cast<NodeId>(i + 1);
    node.traffic = 1.0;
    node.min_level.assign(num_gw, 0);
    inst.nodes.push_back(node);
  }
  return inst;
}

GaConfig fast_config() {
  GaConfig cfg;
  cfg.population = 16;
  cfg.generations = 30;
  cfg.seed = 9;
  return cfg;
}

TEST(GaSolver, InvalidInstanceThrows) {
  CpInstance bad;
  EXPECT_THROW(solve_cp(bad), std::invalid_argument);
}

// The deprecated freeze_nodes + initial pair must keep working for one
// release — including the runtime validation the typed API made
// unrepresentable.
TEST(GaSolver, LegacyFreezeShimStillValidatesAndFreezes) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  GaConfig cfg = fast_config();
  cfg.freeze_nodes = true;
  EXPECT_THROW(solve_cp(make_instance(1, 1), cfg), std::invalid_argument);

  const auto inst = make_instance(3, 20);
  const CpSolution initial = greedy_seed(inst);
  cfg.initial = initial;
  const auto result = solve_cp(inst, cfg);
  EXPECT_EQ(result.best.node_channel, initial.node_channel);
  EXPECT_EQ(result.best.node_level, initial.node_level);
#pragma GCC diagnostic pop
}

TEST(GaSolver, SolutionAlwaysFeasible) {
  const auto inst = make_instance(3, 40);
  const auto result = solve_cp(inst, fast_config());
  EXPECT_TRUE(feasible(inst, result.best));
}

TEST(GaSolver, PerfectPlanForOracleScenario) {
  // 5 GW x 16 decoders = 80 decoders for 48 users over 8 channels: the
  // Fig. 5a setting. The solver should find a zero-risk plan.
  const auto inst = make_instance(5, 48);
  const auto result = solve_cp(inst, fast_config());
  EXPECT_DOUBLE_EQ(result.best_eval.overload_risk, 0.0);
  EXPECT_DOUBLE_EQ(result.best_eval.disconnected, 0.0);
  EXPECT_DOUBLE_EQ(result.best_eval.pair_overload, 0.0);
}

TEST(GaSolver, NeverWorseThanGreedySeed) {
  const auto inst = make_instance(4, 60, /*decoders=*/8);
  const auto greedy_eval = evaluate(inst, greedy_seed(inst));
  const auto result = solve_cp(inst, fast_config());
  EXPECT_LE(result.best_eval.objective, greedy_eval.objective + 1e-9);
}

TEST(GaSolver, DeterministicUnderSeed) {
  const auto inst = make_instance(3, 30);
  const auto a = solve_cp(inst, fast_config());
  const auto b = solve_cp(inst, fast_config());
  EXPECT_DOUBLE_EQ(a.best_eval.objective, b.best_eval.objective);
  EXPECT_EQ(a.best.node_channel, b.best.node_channel);
}

TEST(GaSolver, EarlyStopOnPerfectPlan) {
  const auto inst = make_instance(5, 10);
  GaConfig cfg = fast_config();
  cfg.generations = 1000;
  const auto result = solve_cp(inst, cfg);
  EXPECT_LT(result.generations_run, 1000);
  EXPECT_DOUBLE_EQ(result.best_eval.objective,
                   evaluate(inst, result.best).objective);
}

TEST(GaSolver, ForcedChannelCountPropagates) {
  const auto inst = make_instance(3, 20);
  GaConfig cfg = fast_config();
  cfg.forced_channel_count = 8;
  const auto result = solve_cp(inst, cfg);
  for (const auto& chans : result.best.gateway_channels) {
    EXPECT_EQ(chans.size(), 8u);
  }
}

TEST(GaSolver, FrozenNodesKeepsAssignments) {
  const auto inst = make_instance(3, 20);
  CpSolution initial = greedy_seed(inst);
  GaConfig cfg = fast_config();
  cfg.frozen_nodes = FrozenNodes{initial};
  const auto result = solve_cp(inst, cfg);
  EXPECT_EQ(result.best.node_channel, initial.node_channel);
  EXPECT_EQ(result.best.node_level, initial.node_level);
}

TEST(GaSolver, OverloadedInstanceReportsResidualRisk) {
  // 100 users, 1 gateway x 16 decoders: whatever the plan, most packets
  // are at risk (phi ~ (k-16)/k for every connected user) or nodes are
  // disconnected outright.
  const auto inst = make_instance(1, 100);
  const auto result = solve_cp(inst, fast_config());
  EXPECT_GT(result.best_eval.objective, 10.0);
}

TEST(GaSolver, EvaluationCountTracked) {
  const auto inst = make_instance(2, 10);
  GaConfig cfg = fast_config();
  cfg.early_stop = false;
  const auto result = solve_cp(inst, cfg);
  EXPECT_GE(result.evaluations,
            static_cast<std::size_t>(cfg.population));
}

// Property sweep: for random instance shapes, the solver's best solution
// is always structurally feasible and its reported evaluation is exactly
// reproducible by re-evaluating the solution.
class GaRandomInstances : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GaRandomInstances, FeasibleAndSelfConsistent) {
  Rng rng(GetParam());
  CpInstance inst;
  const int num_channels = static_cast<int>(rng.uniform_int(4, 32));
  inst.spectrum = Spectrum{Hz{916.8e6}, num_channels * kChannelSpacing};
  inst.num_channels = num_channels;
  const int num_gw = static_cast<int>(rng.uniform_int(1, 8));
  for (int j = 0; j < num_gw; ++j) {
    CpGateway gw;
    gw.id = static_cast<GatewayId>(j + 1);
    gw.decoders = static_cast<int>(rng.uniform_int(4, 32));
    gw.max_channels = static_cast<int>(rng.uniform_int(1, 8));
    gw.max_span_channels = static_cast<int>(rng.uniform_int(2, 16));
    inst.gateways.push_back(gw);
  }
  const int num_nodes = static_cast<int>(rng.uniform_int(1, 120));
  for (int i = 0; i < num_nodes; ++i) {
    CpNode node;
    node.id = static_cast<NodeId>(i + 1);
    node.traffic = rng.uniform(0.2, 3.0);
    node.min_level.resize(static_cast<std::size_t>(num_gw));
    for (auto& level : node.min_level) {
      const auto roll = rng.uniform_int(0, 7);
      level = roll >= 6 ? kUnreachable : static_cast<std::uint8_t>(roll);
    }
    inst.nodes.push_back(std::move(node));
  }
  GaConfig cfg;
  cfg.population = 12;
  cfg.generations = 10;
  cfg.seed = GetParam() * 3 + 1;
  const auto result = solve_cp(inst, cfg);
  EXPECT_TRUE(feasible(inst, result.best));
  const auto re_eval = evaluate(inst, result.best);
  EXPECT_DOUBLE_EQ(re_eval.objective, result.best_eval.objective);
  EXPECT_GE(result.best_eval.disconnected, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GaRandomInstances,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace alphawan
