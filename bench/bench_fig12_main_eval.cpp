// Figure 12 reproduction — AlphaWAN's headline evaluation.
// (a) capacity vs number of gateways (1..15), 144 users, 4.8 MHz
// (b) capacity and per-MHz efficiency vs operating spectrum (15 GWs)
// (c) contention management: full vs no-node-side vs standard LoRaWAN
// (d,e) spectrum sharing across 1..6 coexisting networks
// (f) the scheme x decoder-pool grid: every registered baseline measured
//     under shrunken/grown decoder pools (extension beyond the paper)
// All per-network schemes are pulled from the baseline registry
// (baselines/registry.hpp); ALPHAWAN_BASELINE restricts the (f) grid.
#include "harness.hpp"

#include "baselines/registry.hpp"

using namespace alphawan;
using namespace alphawan::bench;

namespace {

AlphaWanConfig fast_alphawan(bool strategy1, bool node_side = true) {
  AlphaWanConfig cfg;
  cfg.strategy8_spectrum_sharing = false;
  cfg.planner.strategy1_adapt_channel_count = strategy1;
  cfg.planner.strategy7_node_side = node_side;
  cfg.planner.ga.population = 24;
  cfg.planner.ga.generations = 50;
  cfg.planner.ga.seed = 77;
  return cfg;
}

// Tuning for the pre-orthogonalized burst experiments (12a/12b/12de):
// the users already hold globally orthogonal (channel, SF) pairs, so every
// scheme provisions gateways only and leaves node configs alone.
BaselineTuning gateway_side_tuning() {
  BaselineTuning tuning;
  tuning.node_side.configure_nodes = false;
  return tuning;
}

BaselineTuning alphawan_tuning(bool strategy1, bool node_side = true) {
  BaselineTuning tuning = gateway_side_tuning();
  tuning.alphawan.controller = fast_alphawan(strategy1, node_side);
  // Orthogonal burst users: one packet per window each.
  tuning.alphawan.demand_per_node = 1.0;
  return tuning;
}

// Build a clustered-gateway deployment with `users` orthogonal ring users
// and measure burst capacity under a registry scheme: configure, shape the
// burst through the scheme's MAC policy, resolve captures through its
// gateway-side policy. `decoders` > 0 overrides the per-gateway pool size.
std::size_t capacity_of(const Spectrum& spectrum, int gateways, int users,
                        const BaselineScheme& scheme, std::uint64_t cfg_seed,
                        std::uint64_t seed = 7, int decoders = 0,
                        PerfAccumulator* perf = nullptr) {
  Deployment deployment{Region{Meters{600}, Meters{600}}, spectrum,
                        quiet_channel()};
  auto& network = deployment.add_network("op");
  GatewayProfile profile = default_profile();
  if (decoders > 0) profile.decoders = decoders;
  place_clustered_gateways(deployment, network, gateways, profile);
  Rng rng(seed);
  auto nodes = add_orthogonal_users(deployment, network, users, rng);
  Rng cfg_rng(cfg_seed);
  scheme.configure(deployment, network, cfg_rng);
  PacketIdSource ids;
  auto txs =
      staggered_by_lock_on(std::move(nodes), Seconds{0.0}, Seconds{0.0004}, ids);
  Rng shape_rng = cfg_rng.substream("mac-shape");
  txs = scheme.shape_window(std::move(txs), shape_rng);
  RunOptions options;
  options.capture_policy = scheme.capture;
  ScenarioRunner runner(deployment, seed, std::move(options));
  if (perf != nullptr) {
    return perf->time(txs.size(), [&] { return runner.run_window(txs); })
        .total_delivered();
  }
  return runner.run_window(txs).total_delivered();
}

std::size_t capacity_of(const Spectrum& spectrum, int gateways, int users,
                        const std::string& scheme_name,
                        const BaselineTuning& tuning, std::uint64_t cfg_seed,
                        std::uint64_t seed = 7) {
  return capacity_of(spectrum, gateways, users,
                     BaselineRegistry::instance().make(scheme_name, tuning),
                     cfg_seed, seed);
}

void figure_12a() {
  print_header(
      "Fig. 12a — max concurrent users vs #gateways (4.8 MHz, 144 users)\n"
      "paper: standard ~48 flat; AlphaWAN w/o S1 +143%; full version grows\n"
      "linearly and reaches the 144 oracle at ~9 gateways");
  std::printf("  %-6s %-8s %-10s %-12s %-14s %-12s\n", "GWs", "oracle",
              "standard", "random-CP", "alpha-no-S1", "alpha-full");
  const Spectrum spec = spectrum_4m8();
  for (int gws : {1, 3, 5, 7, 9, 11, 13, 15}) {
    const std::size_t std_cap =
        capacity_of(spec, gws, 144, "standard", gateway_side_tuning(), 7);
    const std::size_t rnd_cap = capacity_of(
        spec, gws, 144, "random-cp", gateway_side_tuning(),
        100 + static_cast<std::uint64_t>(gws));
    const std::size_t no_s1 = capacity_of(
        spec, gws, 144, "alphawan", alphawan_tuning(/*strategy1=*/false), 7);
    const std::size_t full = capacity_of(
        spec, gws, 144, "alphawan", alphawan_tuning(/*strategy1=*/true), 7);
    std::printf("  %-6d %-8d %-10zu %-12zu %-14zu %-12zu\n", gws, 144,
                std_cap, rnd_cap, no_s1, full);
  }
}

void figure_12b() {
  print_header(
      "Fig. 12b — capacity and per-MHz efficiency vs spectrum (15 GWs)\n"
      "paper: standard 16 @1.6MHz / 64 @6.4MHz; AlphaWAN full reaches the\n"
      "oracle and the highest per-MHz capacity (+292% vs standard)");
  std::printf("  %-10s %-8s %-10s %-12s %-12s %-14s %-14s\n", "MHz",
              "oracle", "standard", "alpha-full", "random-CP", "std/MHz",
              "alpha/MHz");
  for (double mhz : {1.6, 3.2, 4.8, 6.4}) {
    const Spectrum spec{Hz{916.8e6}, Hz{mhz * 1e6}};
    const int users = oracle_capacity(spec);
    const std::size_t std_cap =
        capacity_of(spec, 15, users, "standard", gateway_side_tuning(), 7);
    const std::size_t rnd_cap =
        capacity_of(spec, 15, users, "random-cp", gateway_side_tuning(), 55);
    const std::size_t full =
        capacity_of(spec, 15, users, "alphawan", alphawan_tuning(true), 7);
    std::printf("  %-10.1f %-8d %-10zu %-12zu %-12zu %-14.1f %-14.1f\n", mhz,
                users, std_cap, full, rnd_cap,
                static_cast<double>(std_cap) / mhz,
                static_cast<double>(full) / mhz);
  }
}

void figure_12c() {
  print_header(
      "Fig. 12c — contention management (144 realistic users, 15 GWs)\n"
      "paper means: standard 42, AlphaWAN w/o node side 57, full 68");
  // Realistic population: random placement, standard-ADR settings — the
  // node mix AlphaWAN has to manage rather than a pre-orthogonalized one.
  // The alphawan scheme's configure() applies the same standard-ADR
  // provisioning first, so all three variants share node settings.
  const auto& registry = BaselineRegistry::instance();
  RunningStats std_stats, gw_only_stats, full_stats;
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    for (int variant = 0; variant < 3; ++variant) {
      Deployment deployment{Region{Meters{2100}, Meters{1600}}, spectrum_4m8(),
                            urban_channel(trial + 40)};
      auto& network = deployment.add_network("op");
      Rng rng(trial * 13 + 1);
      deployment.place_gateways(network, 15, default_profile(), rng);
      deployment.place_nodes(network, 144, rng);
      BaselineTuning tuning;  // node side fully provisioned this time
      tuning.alphawan.controller =
          fast_alphawan(true, /*node_side=*/variant == 2);
      tuning.alphawan.demand_per_node = 1.0;
      const BaselineScheme scheme =
          registry.make(variant == 0 ? "standard" : "alphawan", tuning);
      scheme.configure(deployment, network, rng);
      std::vector<EndNode*> nodes;
      for (auto& n : network.nodes()) nodes.push_back(&n);
      PacketIdSource ids;
      const auto delivered =
          run_burst(deployment, nodes, Seconds{0.0}, ids, trial).total_delivered();
      (variant == 0   ? std_stats
       : variant == 1 ? gw_only_stats
                      : full_stats)
          .add(static_cast<double>(delivered));
    }
  }
  print_row("standard LoRaWAN (mean users)", 42.0, std_stats.mean());
  print_row("AlphaWAN w/o node side (mean)", 57.0, gw_only_stats.mean());
  print_row("AlphaWAN full version (mean)", 68.0, full_stats.mean());
  std::printf(
      "  ranges: std [%.0f, %.0f]  gw-only [%.0f, %.0f]  full [%.0f, %.0f]\n",
      std_stats.min(), std_stats.max(), gw_only_stats.min(),
      gw_only_stats.max(), full_stats.min(), full_stats.max());
}

void figure_12de() {
  print_header(
      "Fig. 12d/12e — spectrum sharing among 1..6 coexisting networks\n"
      "(1.6 MHz, 3 GWs + 24 users per network)\n"
      "paper: standard collapses with density; AlphaWAN holds >= 20-23\n"
      "users per network; per-MHz gain 158.9% - 778.1%");
  std::printf("  %-9s %-22s %-22s %-12s %-12s\n", "networks",
              "std per-net (min..max)", "alpha per-net (min..max)", "std/MHz",
              "alpha/MHz");
  // The standard mode runs through the registry; the AlphaWAN mode keeps
  // its multi-network Master wiring inline — strategy-8 spectrum sharing
  // spans networks, outside the per-network scheme interface.
  const BaselineScheme standard =
      BaselineRegistry::instance().make("standard", gateway_side_tuning());
  for (int count = 1; count <= 6; ++count) {
    std::size_t std_total = 0, alpha_total = 0;
    std::size_t std_min = 1e9, std_max = 0, alpha_min = 1e9, alpha_max = 0;
    for (int mode = 0; mode < 2; ++mode) {
      Deployment deployment{Region{Meters{600}, Meters{600}}, spectrum_1m6(), quiet_channel()};
      Rng rng(61 + count);
      std::vector<Network*> nets;
      std::vector<std::vector<EndNode*>> net_nodes;
      for (int n = 0; n < count; ++n) {
        auto& net = deployment.add_network("op" + std::to_string(n));
        place_clustered_gateways(deployment, net, 3);
        // Real coexisting operators differ in settings and path loss.
        net_nodes.push_back(add_orthogonal_users(deployment, net, 24, rng,
                                                 /*offset=*/n * 12,
                                                 /*radius=*/110.0 + 25.0 * n));
        nets.push_back(&net);
      }
      if (mode == 1) {
        MasterNode master(
            MasterConfig{deployment.spectrum(), 0.4, count});
        LatencyModel latency{LatencyModelConfig{}, 3};
        for (auto* net : nets) {
          AlphaWanConfig cfg = fast_alphawan(true);
          cfg.strategy8_spectrum_sharing = true;
          AlphaWanController controller(cfg, latency);
          const auto links = oracle_link_estimates(deployment, *net);
          (void)controller.upgrade(*net, deployment.spectrum(), links,
                                   uniform_traffic(*net), &master);
        }
      } else {
        for (auto* net : nets) standard.configure(deployment, *net, rng);
      }
      // Joint burst: all networks interleaved in lock-on order.
      std::vector<EndNode*> all;
      for (int i = 0; i < 24; ++i) {
        for (auto& nodes : net_nodes) all.push_back(nodes[i]);
      }
      PacketIdSource ids;
      const auto result = run_burst(deployment, all, Seconds{0.0}, ids, 9);
      for (auto* net : nets) {
        const std::size_t d = result.delivered.at(net->id());
        if (mode == 0) {
          std_total += d;
          std_min = std::min(std_min, d);
          std_max = std::max(std_max, d);
        } else {
          alpha_total += d;
          alpha_min = std::min(alpha_min, d);
          alpha_max = std::max(alpha_max, d);
        }
      }
    }
    char std_range[32], alpha_range[32];
    std::snprintf(std_range, sizeof(std_range), "%zu..%zu", std_min, std_max);
    std::snprintf(alpha_range, sizeof(alpha_range), "%zu..%zu", alpha_min,
                  alpha_max);
    std::printf("  %-9d %-22s %-22s %-12.1f %-12.1f\n", count, std_range,
                alpha_range, static_cast<double>(std_total) / 1.6,
                static_cast<double>(alpha_total) / 1.6);
  }
}

// Fig. 12f (extension beyond the paper): every registered scheme, measured
// over a contended burst at three decoder-pool sizes. One perf row per
// scheme ("fig12_policy.<name>") lands in the bench JSON so CI's perf
// smoke tracks each policy's receive-pipeline cost individually. This is
// the section perf-smoke mode runs.
void figure_12f() {
  const auto schemes =
      baselines_from_env(BaselineRegistry::instance().names());
  print_header(
      "Fig. 12f — delivered packets vs decoder-pool size, per scheme\n"
      "(4.8 MHz, 5 GWs, 96 contended users; extension beyond the paper)");
  const std::vector<int> pools = {4, 8, 16};
  // Contended population: more users than orthogonal pairs at this
  // spectrum, so capture policies actually have collisions to resolve.
  BaselineTuning tuning = gateway_side_tuning();
  tuning.alphawan.controller = fast_alphawan(true);
  tuning.alphawan.controller.planner.ga.generations = 12;  // grid budget
  tuning.alphawan.demand_per_node = 1.0;
  std::printf("  %-14s", "scheme");
  for (int p : pools) std::printf(" %8d", p);
  std::printf("\n");
  std::vector<PerfAccumulator> perf;
  perf.reserve(schemes.size());
  for (const auto& name : schemes) {
    perf.emplace_back("fig12_policy." + name);
  }
  for (std::size_t si = 0; si < schemes.size(); ++si) {
    const BaselineScheme scheme =
        BaselineRegistry::instance().make(schemes[si], tuning);
    std::printf("  %-14s", schemes[si].c_str());
    for (const int pool : pools) {
      const std::size_t delivered = capacity_of(
          spectrum_4m8(), 5, 96, scheme, /*cfg_seed=*/23, /*seed=*/7, pool,
          &perf[si]);
      std::printf(" %8zu", delivered);
    }
    std::printf("\n");
  }
  for (const auto& acc : perf) acc.report();
}

}  // namespace

int main() {
  // Perf-smoke mode (ALPHAWAN_BENCH_SMOKE=1) runs only the per-scheme
  // decoder-pool grid: one JSON row per registered policy, cheap enough
  // for CI while still driving every capture/MAC implementation.
  if (!perf_smoke_mode()) {
    figure_12a();
    figure_12b();
    figure_12c();
    figure_12de();
  }
  figure_12f();
  return 0;
}
