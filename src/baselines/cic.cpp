#include "baselines/cic.hpp"

#include "baselines/overlap_index.hpp"
#include "phy/sensitivity.hpp"

namespace alphawan {

void CicCapturePolicy::resolve(const CaptureContext& context,
                               std::vector<RxOutcome>& outcomes) const {
  const CicOptions& options = options_;
  const OverlapIndex index(context);

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    auto& out = outcomes[i];
    if (out.disposition != RxDisposition::kDroppedCollision) continue;
    // Count simultaneous transmissions on (nearly) the same channel.
    int overlapping = 0;
    index.for_each_cochannel_overlap(i, [&](std::size_t /*j*/) {
      return ++overlapping < options.max_resolvable;
    });
    if (overlapping >= options.max_resolvable) continue;
    // CIC needs workable SNR to pick apart sub-band spectra.
    if (out.snr <
        demod_snr_threshold(context.sf[i]) + options.snr_headroom) {
      continue;
    }
    out.disposition = context.tx_sync[i] == context.sync_word
                          ? RxDisposition::kDelivered
                          : RxDisposition::kDecodedForeign;
  }
}

}  // namespace alphawan
