// Deterministic, seedable random number generation.
//
// All stochastic components of the simulator draw from an explicitly seeded
// Rng so that every experiment is exactly reproducible. The generator is
// xoshiro256** (public domain, Blackman & Vigna) seeded via SplitMix64.
#pragma once

#include <array>
#include <cstdint>

namespace alphawan {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Standard normal via Box-Muller (cached second sample).
  double normal();
  // Normal with given mean / standard deviation.
  double normal(double mean, double stddev);
  // Exponential with given rate (lambda > 0).
  double exponential(double rate);
  // Bernoulli trial.
  bool chance(double p);

  // Derive an independent child stream (for per-entity generators).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace alphawan
