#include "net/mac_commands.hpp"

#include <cmath>

#include "net/channel_plan.hpp"

namespace alphawan {
namespace {

void put_u24_freq(std::vector<std::uint8_t>& out, Hz freq) {
  const auto units = static_cast<std::uint32_t>(std::llround(freq.value() / 100.0));
  out.push_back(static_cast<std::uint8_t>(units));
  out.push_back(static_cast<std::uint8_t>(units >> 8));
  out.push_back(static_cast<std::uint8_t>(units >> 16));
}

Hz get_u24_freq(std::span<const std::uint8_t> bytes, std::size_t offset) {
  const std::uint32_t units =
      static_cast<std::uint32_t>(bytes[offset]) |
      (static_cast<std::uint32_t>(bytes[offset + 1]) << 8) |
      (static_cast<std::uint32_t>(bytes[offset + 2]) << 16);
  return Hz{100.0 * static_cast<double>(units)};
}

}  // namespace

std::vector<std::uint8_t> encode_downlink_commands(
    std::span<const DownlinkMacCommand> commands) {
  std::vector<std::uint8_t> out;
  for (const auto& command : commands) {
    std::visit(
        [&](const auto& c) {
          using T = std::decay_t<decltype(c)>;
          if constexpr (std::is_same_v<T, LinkAdrReq>) {
            out.push_back(static_cast<std::uint8_t>(MacCid::kLinkAdrReq));
            out.push_back(static_cast<std::uint8_t>((c.data_rate << 4) |
                                                    (c.tx_power & 0x0F)));
            out.push_back(static_cast<std::uint8_t>(c.ch_mask));
            out.push_back(static_cast<std::uint8_t>(c.ch_mask >> 8));
            out.push_back(static_cast<std::uint8_t>(
                ((c.ch_mask_cntl & 0x07) << 4) | (c.nb_trans & 0x0F)));
          } else if constexpr (std::is_same_v<T, DutyCycleReq>) {
            out.push_back(static_cast<std::uint8_t>(MacCid::kDutyCycleReq));
            out.push_back(static_cast<std::uint8_t>(c.max_duty_cycle & 0x0F));
          } else if constexpr (std::is_same_v<T, DevStatusReq>) {
            out.push_back(static_cast<std::uint8_t>(MacCid::kDevStatusReq));
          } else if constexpr (std::is_same_v<T, NewChannelReq>) {
            out.push_back(static_cast<std::uint8_t>(MacCid::kNewChannelReq));
            out.push_back(c.ch_index);
            put_u24_freq(out, c.frequency);
            out.push_back(static_cast<std::uint8_t>((c.max_dr << 4) |
                                                    (c.min_dr & 0x0F)));
          }
        },
        command);
  }
  return out;
}

std::vector<std::uint8_t> encode_uplink_commands(
    std::span<const UplinkMacCommand> commands) {
  std::vector<std::uint8_t> out;
  for (const auto& command : commands) {
    std::visit(
        [&](const auto& c) {
          using T = std::decay_t<decltype(c)>;
          if constexpr (std::is_same_v<T, LinkAdrAns>) {
            out.push_back(static_cast<std::uint8_t>(MacCid::kLinkAdrAns));
            out.push_back(static_cast<std::uint8_t>(
                (c.power_ack ? 0x04 : 0) | (c.data_rate_ack ? 0x02 : 0) |
                (c.channel_mask_ack ? 0x01 : 0)));
          } else if constexpr (std::is_same_v<T, DutyCycleAns>) {
            out.push_back(static_cast<std::uint8_t>(MacCid::kDutyCycleAns));
          } else if constexpr (std::is_same_v<T, DevStatusAns>) {
            out.push_back(static_cast<std::uint8_t>(MacCid::kDevStatusAns));
            out.push_back(c.battery);
            out.push_back(static_cast<std::uint8_t>(c.margin & 0x3F));
          } else if constexpr (std::is_same_v<T, NewChannelAns>) {
            out.push_back(static_cast<std::uint8_t>(MacCid::kNewChannelAns));
            out.push_back(static_cast<std::uint8_t>((c.dr_ok ? 0x02 : 0) |
                                                    (c.freq_ok ? 0x01 : 0)));
          }
        },
        command);
  }
  return out;
}

std::optional<std::vector<DownlinkMacCommand>> decode_downlink_commands(
    std::span<const std::uint8_t> bytes) {
  std::vector<DownlinkMacCommand> out;
  std::size_t i = 0;
  while (i < bytes.size()) {
    const auto cid = static_cast<MacCid>(bytes[i]);
    switch (cid) {
      case MacCid::kLinkAdrReq: {
        if (i + 5 > bytes.size()) return std::nullopt;
        LinkAdrReq c;
        c.data_rate = bytes[i + 1] >> 4;
        c.tx_power = bytes[i + 1] & 0x0F;
        c.ch_mask = static_cast<std::uint16_t>(bytes[i + 2] |
                                               (bytes[i + 3] << 8));
        c.ch_mask_cntl = (bytes[i + 4] >> 4) & 0x07;
        c.nb_trans = bytes[i + 4] & 0x0F;
        out.push_back(c);
        i += 5;
        break;
      }
      case MacCid::kDutyCycleReq: {
        if (i + 2 > bytes.size()) return std::nullopt;
        out.push_back(DutyCycleReq{bytes[i + 1]});
        i += 2;
        break;
      }
      case MacCid::kDevStatusReq: {
        out.push_back(DevStatusReq{});
        i += 1;
        break;
      }
      case MacCid::kNewChannelReq: {
        if (i + 6 > bytes.size()) return std::nullopt;
        NewChannelReq c;
        c.ch_index = bytes[i + 1];
        c.frequency = get_u24_freq(bytes, i + 2);
        c.max_dr = bytes[i + 5] >> 4;
        c.min_dr = bytes[i + 5] & 0x0F;
        out.push_back(c);
        i += 6;
        break;
      }
      default:
        return std::nullopt;  // unknown CID: discard the remainder
    }
  }
  return out;
}

std::optional<std::vector<UplinkMacCommand>> decode_uplink_commands(
    std::span<const std::uint8_t> bytes) {
  std::vector<UplinkMacCommand> out;
  std::size_t i = 0;
  while (i < bytes.size()) {
    const auto cid = static_cast<MacCid>(bytes[i]);
    switch (cid) {
      case MacCid::kLinkAdrAns: {
        if (i + 2 > bytes.size()) return std::nullopt;
        LinkAdrAns c;
        c.power_ack = (bytes[i + 1] & 0x04) != 0;
        c.data_rate_ack = (bytes[i + 1] & 0x02) != 0;
        c.channel_mask_ack = (bytes[i + 1] & 0x01) != 0;
        out.push_back(c);
        i += 2;
        break;
      }
      case MacCid::kDutyCycleAns: {
        out.push_back(DutyCycleAns{});
        i += 1;
        break;
      }
      case MacCid::kDevStatusAns: {
        if (i + 3 > bytes.size()) return std::nullopt;
        DevStatusAns c;
        c.battery = bytes[i + 1];
        // 6-bit two's-complement margin.
        std::uint8_t raw = bytes[i + 2] & 0x3F;
        c.margin = raw >= 32 ? static_cast<std::int8_t>(raw - 64)
                             : static_cast<std::int8_t>(raw);
        out.push_back(c);
        i += 3;
        break;
      }
      case MacCid::kNewChannelAns: {
        if (i + 2 > bytes.size()) return std::nullopt;
        NewChannelAns c;
        c.dr_ok = (bytes[i + 1] & 0x02) != 0;
        c.freq_ok = (bytes[i + 1] & 0x01) != 0;
        out.push_back(c);
        i += 2;
        break;
      }
      default:
        return std::nullopt;
    }
  }
  return out;
}

std::uint8_t tx_power_index(Dbm dbm) {
  // LoRaWAN TXPower: index 0 = MaxEIRP (20 dBm here), each step -2 dB.
  const double steps = (20.0 - dbm.value()) / 2.0;
  const auto idx = static_cast<int>(std::lround(steps));
  return static_cast<std::uint8_t>(std::clamp(idx, 0, 7));
}

Dbm tx_power_from_index(std::uint8_t index) {
  return Dbm{20.0 - 2.0 * static_cast<double>(std::min<int>(index, 7))};
}

NodeConfigCommands commands_for_config_change(const NodeRadioConfig& current,
                                              const NodeRadioConfig& next,
                                              std::uint8_t ch_index) {
  NodeConfigCommands result;
  if (!(current.channel == next.channel)) {
    NewChannelReq req;
    req.ch_index = ch_index;
    req.frequency = next.channel.center;
    req.min_dr = 0;
    req.max_dr = kNumDataRates - 1;
    result.commands.push_back(req);
  }
  if (current.dr != next.dr || current.tx_power != next.tx_power ||
      !(current.channel == next.channel)) {
    LinkAdrReq adr;
    adr.data_rate = static_cast<std::uint8_t>(dr_value(next.dr));
    adr.tx_power = tx_power_index(next.tx_power);
    adr.ch_mask = static_cast<std::uint16_t>(1u << (ch_index & 0x0F));
    adr.nb_trans = 1;
    result.commands.push_back(adr);
  }
  result.bytes = encode_downlink_commands(result.commands).size();
  return result;
}

}  // namespace alphawan
