#include "baselines/lmac.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/geometry.hpp"
#include "phy/overlap.hpp"
#include "sim/traffic.hpp"

namespace alphawan {
namespace {

// Channels are bucketed by a coarse frequency key so partially-overlapping
// channels land in neighbouring buckets and are both checked.
std::int64_t freq_bucket(Hz center) {
  return static_cast<std::int64_t>(center / kChannelSpacing);
}

}  // namespace

std::vector<Transmission> LmacPolicy::shape_window(
    std::vector<Transmission> txs, Rng& rng) const {
  const LmacOptions& options = options_;
  sort_by_start(txs);
  // Per frequency bucket: transmissions still on the air (pruned lazily).
  std::map<std::int64_t, std::vector<Transmission>> active;

  std::vector<Transmission> scheduled;
  scheduled.reserve(txs.size());
  for (auto& tx : txs) {
    const Seconds duration = tx.end() - tx.start;
    const Seconds deadline = tx.start + options.max_defer;
    const std::int64_t bucket = freq_bucket(tx.channel.center);

    Seconds start = tx.start;
    bool moved = true;
    while (moved && start <= deadline) {
      moved = false;
      for (std::int64_t b = bucket - 1; b <= bucket + 1; ++b) {
        const auto it = active.find(b);
        if (it == active.end()) continue;
        auto& list = it->second;
        // Lazy prune: drop transmissions that ended before our window.
        list.erase(std::remove_if(list.begin(), list.end(),
                                  [&](const Transmission& other) {
                                    return other.end() <= tx.start;
                                  }),
                   list.end());
        for (const auto& other : list) {
          if (other.end() <= start || other.start >= start + duration) {
            continue;
          }
          if (overlap_ratio(other.channel, tx.channel) <= 0.0) continue;
          if (distance(other.origin, tx.origin) > options.sense_range) {
            continue;  // hidden terminal: cannot be sensed
          }
          const Seconds candidate =
              other.end() +
              Seconds{rng.uniform(options.min_gap.value(), options.max_gap.value())};
          if (candidate > start) {
            start = candidate;
            moved = true;
          }
        }
      }
    }
    tx.start = std::min(start, deadline);
    active[bucket].push_back(tx);
    scheduled.push_back(tx);
  }
  sort_by_start(scheduled);
  return scheduled;
}

}  // namespace alphawan
