// Conversion of CP solutions into deployable LoRaWAN channel
// configurations, including the inter-network frequency offset assigned by
// the AlphaWAN Master (Strategy 8): every channel of the network — gateway
// and node side alike — is shifted off the standard grid by the same
// offset, creating the misalignment that isolates coexisting networks.
#pragma once

#include <string>

#include "core/cp_problem.hpp"
#include "net/channel_plan.hpp"

namespace alphawan {

// Materialize a solution as gateway/node radio configurations.
// `frequency_offset` displaces all channels from the standard grid.
[[nodiscard]] NetworkChannelConfig to_network_config(
    const CpInstance& instance, const CpSolution& solution,
    Hz frequency_offset = Hz{0.0});

// Transmit power for a distance level (paper: derived from the required
// transmission distance via a mapping table).
[[nodiscard]] Dbm level_tx_power(int level);

// Human-readable summary for logs and examples.
[[nodiscard]] std::string describe_solution(const CpInstance& instance,
                                            const CpSolution& solution,
                                            const CpEvaluation& eval);

}  // namespace alphawan
