// Appendix D / Figure 21 reproduction: a 53-week trace-driven simulation
// of network growth. The network starts at 1,180 users and gains ~150 per
// week; week 13 brings a 7k-user application (both operators add 5
// gateways); week 27 expands the spectrum by 1.6 MHz; week 43 a second
// operator deploys 5 gateways + 3,430 users in the same band.
// Paper: AlphaWAN sustains PRR > 90% throughout; standard LoRaWAN decays
// below 50%.
#include "harness.hpp"

#include <memory>

using namespace alphawan;
using namespace alphawan::bench;

namespace {

constexpr Seconds kWindow{30.0};
// One packet per ~36 s per user: a busy metering fleet.
constexpr double kPacketRate = 1.0 / 36.0;

struct World {
  bool alphawan;
  Deployment deployment{Region{Meters{2100}, Meters{1600}}, spectrum_4m8(), urban_channel(3)};
  Network* op1 = nullptr;
  Network* op2 = nullptr;
  Rng rng;
  PacketIdSource ids;
  Seconds now{0.0};

  explicit World(bool use_alphawan, std::uint64_t seed)
      : alphawan(use_alphawan), rng(seed) {
    op1 = &deployment.add_network("op1");
    deployment.place_gateways(*op1, 10, default_profile(), rng);
  }

  void grow(Network& net, std::size_t count) {
    const auto added = deployment.place_nodes(net, count, rng);
    // New users join onto channels the operator's gateways monitor (the
    // standard join flow distributes the current channel mask).
    std::vector<Channel> monitored;
    for (const auto& gw : net.gateways()) {
      for (const auto& ch : gw.channels()) {
        if (std::find(monitored.begin(), monitored.end(), ch) ==
            monitored.end()) {
          monitored.push_back(ch);
        }
      }
    }
    if (monitored.empty()) return;
    for (const NodeId id : added) {
      EndNode* node = net.find_node(id);
      NodeRadioConfig cfg = node->config();
      cfg.channel = monitored[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(monitored.size()) - 1))];
      node->apply_config(cfg);
    }
  }

  std::unique_ptr<MasterNode> master;

  void apply_strategy(const Spectrum& active_spectrum, int expected_ops) {
    if (alphawan) {
      const bool sharing = op2 != nullptr;
      if (sharing && !master) {
        master = std::make_unique<MasterNode>(
            MasterConfig{active_spectrum, 0.4, expected_ops});
      }
      LatencyModel latency{LatencyModelConfig{}, 9};
      for (Network* net : {op1, op2}) {
        if (net == nullptr) continue;
        AlphaWanConfig cfg;
        cfg.strategy8_spectrum_sharing = sharing;
        cfg.planner.ga.population = 20;
        cfg.planner.ga.generations = 25;
        // Demand and pair capacity in Erlangs (offered airtime utilization)
        // so decoder budgets C_j and RF pair loads share units.
        cfg.planner.pair_capacity = 0.08;
        AlphaWanController controller(cfg, latency);
        const auto links = oracle_link_estimates(deployment, *net);
        std::map<NodeId, double> traffic;
        for (const auto& node : net->nodes()) {
          traffic[node.id()] =
              kPacketRate * time_on_air(node.tx_params(), 10).value();
        }
        (void)controller.upgrade(*net, active_spectrum, links, traffic,
                                 sharing ? master.get() : nullptr);
      }
    } else {
      for (Network* net : {op1, op2}) {
        if (net == nullptr) continue;
        // TTN-style homogeneous operation (paper Sec. 3.2).
        StandardLorawanOptions options;
        options.spread_gateways_across_plans = false;
        StandardLorawanPolicy(options).configure(deployment, *net, rng);
      }
    }
  }

  double weekly_prr(const Spectrum&) {
    std::vector<EndNode*> nodes;
    for (Network* net : {op1, op2}) {
      if (net == nullptr) continue;
      for (auto& n : net->nodes()) nodes.push_back(&n);
    }
    Rng traffic_rng(rng.next());
    auto txs = poisson_traffic(nodes, kWindow, kPacketRate, traffic_rng, ids,
                               0.01);
    for (auto& tx : txs) tx.start += now;
    now += kWindow + Seconds{10.0};
    ScenarioRunner runner(deployment, 5);
    MetricsCollector metrics;
    (void)runner.run_window(txs, metrics);
    // Report op1's PRR (the long-running operator the paper tracks).
    return metrics.prr(op1->id());
  }
};

}  // namespace

int main() {
  print_header(
      "Fig. 21 — 53-week growth simulation (weekly PRR of operator 1)\n"
      "events: wk13 +7k users & +5 GWs; wk27 +1.6 MHz; wk43 operator 2\n"
      "paper: AlphaWAN stays > 0.9; standard LoRaWAN decays below 0.5");

  World alpha(true, 101);
  World standard(false, 101);
  Spectrum active{Hz{916.8e6}, Hz{4.8e6}};

  std::size_t users = 1180;
  alpha.grow(*alpha.op1, users);
  standard.grow(*standard.op1, users);
  alpha.apply_strategy(active, 1);
  standard.apply_strategy(active, 1);

  std::printf("  %-6s %-8s %-12s %-12s\n", "week", "users", "alphawan",
              "standard");
  for (int week = 1; week <= 53; ++week) {
    if (week == 13) {
      // New IoT application: 7,000 users; both operators add 5 gateways.
      for (World* w : {&alpha, &standard}) {
        Rng r(500);
        w->deployment.place_gateways(*w->op1, 5, default_profile(), r);
        w->grow(*w->op1, 7000);
      }
      users += 7000;
      alpha.apply_strategy(active, 1);
      standard.apply_strategy(active, 1);
    }
    if (week == 27) {
      // Regulator grants 1.6 MHz of additional spectrum: AlphaWAN replans
      // over the wider band (standard plans stay within the legacy band).
      active = Spectrum{Hz{916.8e6}, Hz{6.4e6}};
      alpha.apply_strategy(active, 1);
      standard.apply_strategy(active, 1);
    }
    if (week == 43) {
      for (World* w : {&alpha, &standard}) {
        w->op2 = &w->deployment.add_network("op2");
        Rng r(700);
        w->deployment.place_gateways(*w->op2, 5, default_profile(), r);
        w->grow(*w->op2, 3430);
      }
      alpha.apply_strategy(active, 2);
      standard.apply_strategy(active, 2);
    }
    if (week != 13 && week != 27 && week != 43) {
      // Organic growth: ~150 users join per week.
      alpha.grow(*alpha.op1, 150);
      standard.grow(*standard.op1, 150);
      users += 150;
      if (week % 2 == 1) {  // re-plan every other week
        alpha.apply_strategy(active, alpha.op2 ? 2 : 1);
        standard.apply_strategy(active, standard.op2 ? 2 : 1);
      }
    }
    const double prr_alpha = alpha.weekly_prr(active);
    const double prr_std = standard.weekly_prr(active);
    std::printf("  %-6d %-8zu %-12.3f %-12.3f\n", week,
                alpha.op1->nodes().size(), prr_alpha, prr_std);
  }
  return 0;
}
