#include "baselines/curvinglora.hpp"

#include "baselines/overlap_index.hpp"
#include "phy/sensitivity.hpp"

namespace alphawan {

void CurvingLoraCapturePolicy::resolve(const CaptureContext& context,
                                       std::vector<RxOutcome>& outcomes) const {
  const CurvingLoraOptions& options = options_;
  const OverlapIndex index(context);

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    auto& out = outcomes[i];
    if (out.disposition != RxDisposition::kDroppedCollision) continue;
    const SpreadingFactor sf = context.sf[i];
    const int wanted_curvature = curvature_of(context.node[i]);

    // Despreading with the wanted packet's curvature suppresses every
    // same-SF interferer on a *different* curvature; a same-curvature
    // interferer (or any cross-SF overlapper — curvature families are
    // defined within one SF) keeps the collision fatal.
    bool orthogonal = true;
    index.for_each_cochannel_overlap(i, [&](std::size_t j) {
      if (context.sf[j] != sf ||
          curvature_of(context.node[j]) == wanted_curvature) {
        orthogonal = false;
        return false;
      }
      return true;
    });
    if (!orthogonal) continue;
    if (out.snr < demod_snr_threshold(sf) + options.snr_headroom) {
      continue;
    }
    out.disposition = context.tx_sync[i] == context.sync_word
                          ? RxDisposition::kDelivered
                          : RxDisposition::kDecodedForeign;
  }
}

}  // namespace alphawan
