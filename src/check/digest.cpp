#include "check/digest.hpp"

#include <cstring>

namespace alphawan {
namespace {

std::uint64_t fold_u64(std::uint64_t value, std::uint64_t state) {
  for (int i = 0; i < 8; ++i) {
    state ^= (value >> (8 * i)) & 0xFF;
    state *= kFnv1aPrime;
  }
  return state;
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t state) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    state ^= bytes[i];
    state *= kFnv1aPrime;
  }
  return state;
}

std::uint64_t fold_fate(const PacketFate& fate, std::uint64_t state) {
  state = fold_u64(fate.packet, state);
  state = fold_u64(fate.node, state);
  state = fold_u64(fate.network, state);
  state = fold_u64(fate.delivered ? 1 : 0, state);
  state = fold_u64(static_cast<std::uint64_t>(fate.cause), state);
  state = fold_u64(fate.payload_bytes, state);
  state = fold_u64(static_cast<std::uint64_t>(fate.dr), state);
  return state;
}

std::uint64_t fate_digest(const std::vector<PacketFate>& fates) {
  std::uint64_t state = kFnv1aOffset;
  for (const auto& fate : fates) state = fold_fate(fate, state);
  return state;
}

std::string digest_hex(std::uint64_t digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[digest & 0xF];
    digest >>= 4;
  }
  return out;
}

}  // namespace alphawan
