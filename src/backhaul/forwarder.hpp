// Gateway <-> network-server forwarding protocol, modeled on the Semtech
// UDP packet forwarder that real LoRaWAN gateways run: PUSH_DATA carries
// uplink receptions (with rx metadata), PULL_DATA keeps the downlink path
// alive, PULL_RESP carries downlink payloads / configuration updates, and
// every datagram is acknowledged with a token echo.
//
// The wire format here is the library's binary codec rather than Semtech's
// JSON, but the protocol state machine (tokens, acks, keepalive) is the
// same — it is what the AlphaWAN agents on gateways ride on.
//
// Fault hardening (docs/robustness.md): every frame carries a CRC-32
// trailer (wire.hpp seal/open), PUSH_DATA is retried with exponential
// backoff until acked, the server dedups retried batches by
// (gateway, token), config pushes carry a monotonically increasing
// version the gateway uses to ignore duplicated/reordered pushes, and an
// unacked config is re-pushed when the gateway's PULL_DATA reopens the
// downlink path after an outage.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <variant>

#include "backhaul/bus.hpp"
#include "backhaul/wire.hpp"
#include "net/gateway.hpp"
#include "net/network_server.hpp"

namespace alphawan {

enum class ForwarderOp : std::uint8_t {
  kPushData = 0x00,
  kPushAck = 0x01,
  kPullData = 0x02,
  kPullResp = 0x03,
  kPullAck = 0x04,
};

struct PushDataMsg {
  std::uint16_t token = 0;
  GatewayId gateway = kInvalidGateway;
  std::vector<UplinkRecord> uplinks;

  [[nodiscard]] bool operator==(const PushDataMsg&) const = default;
};

struct PushAckMsg {
  std::uint16_t token = 0;

  [[nodiscard]] bool operator==(const PushAckMsg&) const = default;
};

struct PullDataMsg {
  std::uint16_t token = 0;
  GatewayId gateway = kInvalidGateway;

  [[nodiscard]] bool operator==(const PullDataMsg&) const = default;
};

struct PullRespMsg {
  std::uint16_t token = 0;
  GatewayId gateway = kInvalidGateway;
  // Monotonically increasing per-gateway config version; the gateway
  // applies a push only when the version is strictly newer than the one
  // in force (duplicates/reorders are acked but not re-applied).
  std::uint32_t config_version = 0;
  // Channel configuration push (the AlphaWAN agent applies it and reboots).
  std::vector<Channel> channels;

  [[nodiscard]] bool operator==(const PullRespMsg&) const = default;
};

struct PullAckMsg {
  std::uint16_t token = 0;

  [[nodiscard]] bool operator==(const PullAckMsg&) const = default;
};

using ForwarderMessage = std::variant<PushDataMsg, PushAckMsg, PullDataMsg,
                                      PullRespMsg, PullAckMsg>;

// Frames carry a CRC-32 trailer: decode_forwarder rejects (nullopt) any
// truncation or bit corruption instead of mis-parsing it.
[[nodiscard]] std::vector<std::uint8_t> encode_forwarder(
    const ForwarderMessage& msg);
[[nodiscard]] std::optional<ForwarderMessage> decode_forwarder(
    std::span<const std::uint8_t> payload);

// Fault-handling telemetry for the gateway-side agent.
struct GatewayForwarderStats {
  std::size_t push_retries = 0;
  std::size_t pushes_abandoned = 0;
  std::size_t duplicate_configs = 0;  // acked but not re-applied
  std::size_t malformed_ignored = 0;
};

// The gateway-side agent: forwards uplink batches (with retry until
// acked), answers PULL_RESP configuration pushes by reconfiguring its
// gateway (version-deduped), tracks ack state.
//
// Lifetime: retry timers capture `this` on the bus's engine; keep the
// forwarder alive until the engine drains.
class GatewayForwarder {
 public:
  GatewayForwarder(Gateway& gateway, MessageBus& bus, EndpointId server,
                   RetryPolicy policy = RetryPolicy{});
  ~GatewayForwarder();
  GatewayForwarder(const GatewayForwarder&) = delete;
  GatewayForwarder& operator=(const GatewayForwarder&) = delete;

  [[nodiscard]] EndpointId endpoint() const;

  // Send one batch of uplinks (PUSH_DATA); retried with backoff until the
  // PUSH_ACK arrives (or RetryPolicy::max_attempts runs out). Returns the
  // token used.
  std::uint16_t push_uplinks(std::vector<UplinkRecord> uplinks);
  // Send a keepalive (PULL_DATA) so the server can address us. Also the
  // reconnect signal: the server re-pushes any unacked config in response.
  std::uint16_t pull();

  [[nodiscard]] std::size_t unacked_pushes() const {
    return pending_push_.size();
  }
  [[nodiscard]] std::size_t configs_applied() const {
    return configs_applied_;
  }
  [[nodiscard]] const GatewayForwarderStats& stats() const { return stats_; }

 private:
  struct PendingPush {
    std::vector<std::uint8_t> payload;  // sealed frame, resent verbatim
    int attempt = 0;
  };

  void on_message(const EndpointId& from, std::vector<std::uint8_t> payload);
  void arm_push_timer(std::uint16_t token, int attempt);

  Gateway& gateway_;
  MessageBus& bus_;
  EndpointId server_;
  RetryPolicy policy_;
  std::uint16_t next_token_ = 1;
  std::map<std::uint16_t, PendingPush> pending_push_;
  std::size_t configs_applied_ = 0;
  bool detached_ = false;
  GatewayForwarderStats stats_;
};

// Fault-handling telemetry for the server-side endpoint.
struct ForwarderServerStats {
  std::size_t duplicate_batches = 0;  // retried PUSH_DATA, re-acked only
  std::size_t config_repushes = 0;    // unacked config resent on PULL_DATA
  std::size_t malformed_ignored = 0;
};

// The server-side endpoint: ingests PUSH_DATA into a NetworkServer
// (deduping retried batches by (gateway, token)), acks everything, and
// pushes versioned channel configurations to gateways that have pulled at
// least once — re-pushing unacked configs when the gateway reconnects.
class ForwarderServer {
 public:
  ForwarderServer(NetworkServer& server, MessageBus& bus,
                  EndpointId endpoint = "nss");

  [[nodiscard]] const EndpointId& endpoint() const { return endpoint_; }
  // Gateways that have an open downlink path (sent PULL_DATA).
  [[nodiscard]] const std::map<GatewayId, EndpointId>& pull_paths() const {
    return pull_paths_;
  }

  // Push a channel configuration to a gateway (must have pulled). Each
  // call stamps a fresh (per-gateway monotonic) version; the config is
  // kept and re-pushed on reconnect until the gateway acks it.
  // Returns false when no downlink path is known.
  bool push_config(GatewayId gateway, std::vector<Channel> channels);

  // True when the last pushed config for `gateway` has been acked.
  [[nodiscard]] bool config_acked(GatewayId gateway) const;
  [[nodiscard]] std::uint32_t config_version(GatewayId gateway) const;

  [[nodiscard]] std::size_t uplink_batches() const { return batches_; }
  [[nodiscard]] const ForwarderServerStats& stats() const { return stats_; }

 private:
  struct ConfigState {
    std::uint32_t version = 0;
    std::vector<Channel> channels;
    std::uint16_t token = 0;  // token of the last PULL_RESP sent
    bool acked = false;
  };

  void on_message(const EndpointId& from, std::vector<std::uint8_t> payload);
  void send_config(GatewayId gateway, const EndpointId& to);

  NetworkServer& server_;
  MessageBus& bus_;
  EndpointId endpoint_;
  std::map<GatewayId, EndpointId> pull_paths_;
  std::map<GatewayId, std::set<std::uint16_t>> seen_push_tokens_;
  std::map<GatewayId, ConfigState> configs_;
  std::uint16_t next_token_ = 1;
  std::size_t batches_ = 0;
  ForwarderServerStats stats_;
};

}  // namespace alphawan
