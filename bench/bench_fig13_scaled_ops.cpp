// Figure 13 reproduction: LoRaWAN at scale (2k-12k duty-cycled users,
// 15 gateways, 4.8 MHz) — AlphaWAN vs the state of the art.
//   (a) aggregate network throughput  (b) packet reception ratio
//   (c) loss-factor breakdown at 6k users
//   (d) spectrum utilization (per-DR delivered share)
//   (e) decoder-pool grid: every scheme x pool size at the 6k-user scale
// Schemes come from the baseline registry (baselines/registry.hpp) — no
// per-baseline wiring here. ALPHAWAN_BASELINE=lmac,cic,... restricts the
// grid to a comma-separated subset of registered schemes.
#include "harness.hpp"

#include "baselines/registry.hpp"

using namespace alphawan;
using namespace alphawan::bench;

namespace {

constexpr Seconds kWindow{30.0};
// Per-user airtime utilization (half the regulatory 1% duty budget).
constexpr double kUserUtilization = 0.005;
constexpr std::size_t kPhysicalNodes = 144;

// Receive-pipeline throughput across every measured window, aggregated
// over all (scheme, scale) runs: the scaled-ops hot-path metric tracked
// in BENCH_PR4.json onward (planning/GA time deliberately excluded).
PerfAccumulator window_perf("fig13_scaled_ops.window");

const char* display_name(const std::string& scheme) {
  if (scheme == "standard-no-adr") return "LoRaWAN w/o ADR";
  if (scheme == "standard") return "LoRaWAN w/ ADR";
  if (scheme == "lmac") return "LMAC";
  if (scheme == "cic") return "CIC";
  if (scheme == "random-cp") return "Random CP";
  if (scheme == "saloha") return "sALOHA";
  if (scheme == "ss5g") return "SS5G";
  if (scheme == "curvinglora") return "CurvingLoRa";
  if (scheme == "alphawan") return "AlphaWAN";
  return scheme.c_str();
}

struct Result {
  double throughput_bps = 0;
  double prr = 0;
  double dec = 0, chan = 0, other = 0;
  std::array<double, kNumDataRates> dr_share{};
};

// The registry tuning every scheme in this bench shares: commercial
// operators run homogeneous plans (paper Sec. 3.2) with conservative ADR;
// AlphaWAN's planner gets the fig13 GA budget and the per-node demand the
// emulated user population offers.
BaselineTuning fig13_tuning(std::size_t users) {
  BaselineTuning tuning;
  tuning.node_side.spread_gateways_across_plans = false;
  tuning.node_side.adr.installation_margin = Db{10.0};  // keep links robust
  tuning.node_side.adr.min_tx_power = Dbm{8.0};
  tuning.alphawan.controller.planner.ga.population = 24;
  tuning.alphawan.controller.planner.ga.generations = 40;
  // Demand in Erlangs (offered airtime utilization): each physical node
  // hosts users/144 virtual users at kUserUtilization each. Decoder
  // capacities C_j are concurrency limits, so Erlang units line up.
  tuning.alphawan.controller.planner.pair_capacity = 0.08;
  tuning.alphawan.demand_per_node =
      static_cast<double>(users) / kPhysicalNodes * kUserUtilization;
  return tuning;
}

Result run(const std::string& scheme_name, std::size_t users,
           std::uint64_t seed, int decoders = 0) {
  Deployment deployment{Region{Meters{2100}, Meters{1600}}, spectrum_4m8(),
                        urban_channel(seed)};
  auto& network = deployment.add_network("op");
  Rng rng(seed);
  GatewayProfile profile = default_profile();
  if (decoders > 0) profile.decoders = decoders;
  deployment.place_gateways(network, 15, profile, rng);
  deployment.place_nodes(network, kPhysicalNodes, rng);

  const BaselineScheme scheme =
      BaselineRegistry::instance().make(scheme_name, fig13_tuning(users));
  scheme.configure(deployment, network, rng);

  // Emulated duty-cycled users (paper Sec. 5.2.1): each physical node
  // hosts users/144 virtual users, each filling kUserUtilization of its
  // data rate's airtime.
  PacketIdSource ids;
  Rng traffic_rng(seed * 7 + 1);
  std::vector<Transmission> txs;
  const std::size_t users_per_node =
      std::max<std::size_t>(1, users / kPhysicalNodes);
  NodeId virtual_base = 1'000'000;
  for (auto& node : network.nodes()) {
    const Seconds airtime = time_on_air(node.tx_params(), 10);
    const double rate = kUserUtilization / airtime.value();
    std::vector<EndNode*> one = {&node};
    auto node_txs = emulated_user_traffic(one, users_per_node, kWindow, rate,
                                          traffic_rng, ids, virtual_base);
    virtual_base += users_per_node;
    txs.insert(txs.end(), node_txs.begin(), node_txs.end());
  }
  sort_by_start(txs);
  Rng shape_rng = rng.substream("mac-shape");
  txs = scheme.shape_window(std::move(txs), shape_rng);

  RunOptions options;
  options.capture_policy = scheme.capture;
  ScenarioRunner runner(deployment, seed, std::move(options));
  MetricsCollector metrics;
  (void)window_perf.time(txs.size(),
                         [&] { return runner.run_window(txs, metrics); });

  Result result;
  result.prr = metrics.total_prr();
  result.throughput_bps =
      8.0 * static_cast<double>(metrics.total_delivered_bytes()) /
      kWindow.value();
  result.dec = metrics.loss_fraction(LossCause::kDecoderContentionIntra) +
               metrics.loss_fraction(LossCause::kDecoderContentionInter);
  result.chan = metrics.loss_fraction(LossCause::kChannelContentionIntra) +
                metrics.loss_fraction(LossCause::kChannelContentionInter);
  result.other = metrics.loss_fraction(LossCause::kOther);
  // Fig. 13d — spectrum utilization: delivered traffic share per DR,
  // straight from the streaming per-DR aggregate (the full fate history is
  // no longer retained).
  const auto delivered_total = static_cast<double>(metrics.total_delivered());
  for (const DataRate dr : kAllDataRates) {
    result.dr_share[static_cast<std::size_t>(dr_value(dr))] =
        static_cast<double>(metrics.delivered_by_dr(dr));
  }
  if (delivered_total > 0) {
    for (auto& share : result.dr_share) share /= delivered_total;
  }
  return result;
}

}  // namespace

int main() {
  // Smoke mode (ALPHAWAN_BENCH_SMOKE=1): two scales, the two cheap
  // schemes — enough windows to track receive-pipeline throughput in CI
  // without paying for the GA planner at every scale.
  const std::vector<std::size_t> scales =
      perf_smoke_mode() ? std::vector<std::size_t>{2000, 6000}
                        : std::vector<std::size_t>{2000, 4000, 6000, 8000,
                                                   10000, 12000};
  const std::vector<std::string> schemes = baselines_from_env(
      perf_smoke_mode()
          ? std::vector<std::string>{"standard-no-adr", "standard"}
          : std::vector<std::string>{"standard-no-adr", "standard", "lmac",
                                     "cic", "saloha", "ss5g", "curvinglora",
                                     "random-cp", "alphawan"});

  print_header(
      "Fig. 13a/13b — throughput (kbps) and PRR vs user scale\n"
      "paper: w/o-ADR, LMAC, CIC saturate at ~6k users (decoder bound);\n"
      "AlphaWAN keeps PRR > 85% at 12k users");
  std::printf("  %-18s", "scheme");
  for (auto s : scales) std::printf(" %8zu", s);
  std::printf("\n");
  std::vector<Result> at_6k(schemes.size());
  for (std::size_t si = 0; si < schemes.size(); ++si) {
    std::vector<Result> row;
    for (std::size_t sc = 0; sc < scales.size(); ++sc) {
      row.push_back(run(schemes[si], scales[sc], 900 + sc));
      if (scales[sc] == 6000) at_6k[si] = row.back();
    }
    std::printf("  %-18s", display_name(schemes[si]));
    for (const auto& r : row) std::printf(" %8.1f", r.throughput_bps / 1e3);
    std::printf("  kbps\n");
    std::printf("  %-18s", "");
    for (const auto& r : row) std::printf(" %8.2f", r.prr);
    std::printf("  PRR\n");
  }

  print_header(
      "Fig. 13c — loss factors at the 6k-user scale\n"
      "paper: decoder contention dominates for the non-planning baselines");
  std::printf("  %-18s %-10s %-10s %-10s\n", "scheme", "decoder",
              "channel", "other");
  for (std::size_t si = 0; si < schemes.size(); ++si) {
    std::printf("  %-18s %-10.3f %-10.3f %-10.3f\n",
                display_name(schemes[si]), at_6k[si].dec, at_6k[si].chan,
                at_6k[si].other);
  }

  print_header(
      "Fig. 13d — spectrum utilization at 6k users: delivered share per DR\n"
      "paper: ADR piles traffic on DR5; AlphaWAN uses all data rates");
  std::printf("  %-18s", "scheme");
  for (int dr = 0; dr < kNumDataRates; ++dr) std::printf("   DR%d ", dr);
  std::printf("\n");
  for (std::size_t si = 0; si < schemes.size(); ++si) {
    std::printf("  %-18s", display_name(schemes[si]));
    for (int dr = 0; dr < kNumDataRates; ++dr) {
      std::printf(" %5.2f ", at_6k[si].dr_share[static_cast<std::size_t>(dr)]);
    }
    std::printf("\n");
  }

  // Fig. 13e (extension beyond the paper): the decoder-pool grid. Every
  // scheme re-run at the 6k-user scale with shrunken/grown pools — the
  // first measurement of sALOHA / SS5G / CurvingLoRa when decoders, not
  // collisions, are scarce. Skipped in smoke mode (fig12 carries the
  // per-scheme smoke rows).
  if (!perf_smoke_mode()) {
    print_header(
        "Fig. 13e — PRR at 6k users vs decoder-pool size (per gateway)\n"
        "extension: collision-resolution schemes were designed assuming RF\n"
        "collisions dominate; shrinking the pool exposes the decoder bound");
    const std::vector<int> pools = {4, 8, 16, 32};
    std::printf("  %-18s", "scheme");
    for (int p : pools) std::printf(" %8d", p);
    std::printf("\n");
    for (const auto& scheme : schemes) {
      std::printf("  %-18s", display_name(scheme));
      for (const int pool : pools) {
        const Result r = run(scheme, 6000, 900 + 2, pool);
        std::printf(" %8.2f", r.prr);
      }
      std::printf("  PRR\n");
    }
  }
  window_perf.report();
  return 0;
}
