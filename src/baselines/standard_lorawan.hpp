// Baseline: standard LoRaWAN operation. Gateways are uniformly configured
// from the standard channel plans (homogeneous reception — the paper's
// root inefficiency); nodes pick random channels; data rates come either
// from the default long-range setting (ADR off) or from the greedy
// standard ADR (ADR on).
#pragma once

#include "net/adr.hpp"
#include "sim/topology.hpp"

namespace alphawan {

struct StandardLorawanOptions {
  bool use_adr = true;
  // Spread gateways across the available standard plans (operators with
  // more gateways than one plan covers do this for spectrum coverage).
  bool spread_gateways_across_plans = true;
  AdrConfig adr{};
};

// Configure a network the way commercial operators run LoRaWAN today.
// Node data rates use `deployment` geometry as a stand-in for the ADR
// feedback loop (the strongest-gateway SNR standard ADR would converge to).
void apply_standard_lorawan(Deployment& deployment, Network& network,
                            Rng& rng, const StandardLorawanOptions& options =
                                          StandardLorawanOptions{});

}  // namespace alphawan
