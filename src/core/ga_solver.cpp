#include "core/ga_solver.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace alphawan {
namespace {

// Rebuild any gateway channel set whose size drifted away from a forced
// width (mutation clamping can collapse windows at the spectrum edges).
void enforce_forced_width(const CpInstance& instance, int width,
                          CpSolution& s) {
  for (std::size_t j = 0; j < instance.gateways.size(); ++j) {
    auto& chans = s.gateway_channels[j];
    const auto& gw = instance.gateways[j];
    const int w = std::clamp(width, 1,
                             std::min({gw.max_channels, gw.max_span_channels,
                                       instance.num_channels}));
    if (static_cast<int>(chans.size()) == w) continue;
    const int anchor =
        chans.empty() ? 0
                      : std::min(chans.front(), instance.num_channels - w);
    chans.clear();
    for (int c = anchor; c < anchor + w; ++c) chans.push_back(c);
  }
}

struct Individual {
  CpSolution solution;
  CpEvaluation eval;
  bool evaluated = false;
};

// Reachable gateway list per node (any level).
std::vector<std::vector<std::int32_t>> reachable_gateways(
    const CpInstance& instance) {
  std::vector<std::vector<std::int32_t>> reach(instance.nodes.size());
  for (std::size_t i = 0; i < instance.nodes.size(); ++i) {
    for (std::size_t j = 0; j < instance.gateways.size(); ++j) {
      if (instance.nodes[i].min_level[j] != kUnreachable) {
        reach[i].push_back(static_cast<std::int32_t>(j));
      }
    }
  }
  return reach;
}

void randomize_gateway(const CpInstance& instance, const GaConfig& config,
                       CpSolution& s, std::size_t j, Rng& rng) {
  const auto& gw = instance.gateways[j];
  int width = config.forced_channel_count.value_or(static_cast<int>(
      rng.uniform_int(1, std::min(gw.max_channels, gw.max_span_channels))));
  width = std::clamp(width, 1,
                     std::min({gw.max_channels, gw.max_span_channels,
                               instance.num_channels}));
  const int max_start = instance.num_channels - width;
  const int start = static_cast<int>(rng.uniform_int(0, max_start));
  auto& chans = s.gateway_channels[j];
  chans.clear();
  for (int c = start; c < start + width; ++c) chans.push_back(c);
}

void mutate(const CpInstance& instance, const GaConfig& config,
            const std::vector<std::vector<std::int32_t>>& reach,
            bool nodes_frozen, CpSolution& s, Rng& rng) {
  // Gateway genes.
  for (std::size_t j = 0; j < instance.gateways.size(); ++j) {
    if (!rng.chance(config.mutation_rate * 10.0)) continue;
    const double op = rng.uniform();
    auto& chans = s.gateway_channels[j];
    if (op < 0.4) {
      // Shift the whole window by +-1..2 channels.
      const int shift = static_cast<int>(rng.uniform_int(-2, 2));
      for (auto& c : chans) {
        c = std::clamp(c + shift, 0, instance.num_channels - 1);
      }
    } else if (op < 0.7 && !config.forced_channel_count) {
      // Grow or shrink the channel set by one.
      if (rng.chance(0.5) && chans.size() > 1) {
        chans.erase(chans.begin() +
                    static_cast<std::ptrdiff_t>(rng.uniform_int(
                        0, static_cast<std::int64_t>(chans.size()) - 1)));
      } else {
        chans.push_back(static_cast<std::int32_t>(
            rng.uniform_int(0, instance.num_channels - 1)));
      }
    } else {
      randomize_gateway(instance, config, s, j, rng);
    }
  }
  // Node genes.
  if (!nodes_frozen) {
    for (std::size_t i = 0; i < instance.nodes.size(); ++i) {
      if (!rng.chance(config.mutation_rate)) continue;
      if (reach[i].empty()) continue;
      const auto j = static_cast<std::size_t>(reach[i][static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(reach[i].size()) - 1))]);
      const auto& gw_chans = s.gateway_channels[j];
      if (!gw_chans.empty() && rng.chance(0.7)) {
        s.node_channel[i] = gw_chans[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(gw_chans.size()) - 1))];
      } else {
        s.node_channel[i] = static_cast<std::int32_t>(
            rng.uniform_int(0, instance.num_channels - 1));
      }
      const int min_l = instance.nodes[i].min_level[j];
      s.node_level[i] =
          static_cast<std::int32_t>(rng.uniform_int(min_l, kNumLevels - 1));
    }
  }
}

CpSolution crossover(const CpInstance& instance, bool nodes_frozen,
                     const CpSolution& a, const CpSolution& b, Rng& rng) {
  CpSolution child = a;
  for (std::size_t j = 0; j < instance.gateways.size(); ++j) {
    if (rng.chance(0.5)) child.gateway_channels[j] = b.gateway_channels[j];
  }
  if (!nodes_frozen) {
    for (std::size_t i = 0; i < instance.nodes.size(); ++i) {
      if (rng.chance(0.5)) {
        child.node_channel[i] = b.node_channel[i];
        child.node_level[i] = b.node_level[i];
      }
    }
  }
  return child;
}

}  // namespace

GaResult solve_cp(const CpInstance& instance, const GaConfig& config) {
  if (!instance.valid()) {
    throw std::invalid_argument("solve_cp: invalid CP instance");
  }
  // Resolve the node-freezing request: the typed frozen_nodes field, or the
  // deprecated freeze_nodes + initial pair (still validated at runtime for
  // external callers on the old API).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const bool legacy_freeze = config.freeze_nodes;
#pragma GCC diagnostic pop
  const CpSolution* frozen = nullptr;
  if (config.frozen_nodes) {
    frozen = &config.frozen_nodes->solution;
  } else if (legacy_freeze) {
    if (!config.initial) {
      throw std::invalid_argument(
          "solve_cp: freeze_nodes requires an initial solution");
    }
    frozen = &*config.initial;
  }
  const bool nodes_frozen = frozen != nullptr;
  // Population seed: an explicit initial wins; a frozen solution doubles as
  // the seed otherwise.
  const CpSolution* seed_solution =
      config.initial ? &*config.initial : frozen;

  Rng rng(config.seed);
  const auto reach = reachable_gateways(instance);
  GaResult result;

  // Prepare + score one individual. Pure in the individual given the
  // instance and config — the precondition that lets a batch fan out.
  auto evaluate_individual = [&](Individual& ind) {
    repair(instance, ind.solution);
    if (config.forced_channel_count) {
      enforce_forced_width(instance, *config.forced_channel_count,
                           ind.solution);
    }
    if (nodes_frozen) {
      ind.solution.node_channel = frozen->node_channel;
      ind.solution.node_level = frozen->node_level;
    }
    ind.eval = evaluate(instance, ind.solution, config.weights);
    ind.evaluated = true;
  };
  // Evaluate every not-yet-scored individual concurrently. Results land in
  // each individual's own slot and the count is exact, so GaResult is
  // identical at any thread count.
  auto evaluate_pending = [&](std::vector<Individual>& group) {
    std::vector<Individual*> pending;
    pending.reserve(group.size());
    for (auto& ind : group) {
      if (!ind.evaluated) pending.push_back(&ind);
    }
    parallel_for(
        pending.size(), [&](std::size_t i) { evaluate_individual(*pending[i]); },
        config.threads);
    result.evaluations += pending.size();
  };

  // ---- initial population -------------------------------------------
  std::vector<Individual> population;
  population.reserve(static_cast<std::size_t>(config.population));
  {
    Individual seed;
    GreedyOptions greedy_opts;
    greedy_opts.forced_channel_count = config.forced_channel_count;
    seed.solution = seed_solution != nullptr ? *seed_solution
                                             : greedy_seed(instance, greedy_opts);
    population.push_back(seed);
    // If both an explicit initial and a greedy seed make sense, add the
    // greedy one too.
    if (config.initial && !nodes_frozen) {
      Individual greedy;
      greedy.solution = greedy_seed(instance, greedy_opts);
      population.push_back(greedy);
    }
    // Seed a few structurally different greedy plans (channel widths 1-4):
    // multi-gateway coverage overlap makes the ideal width instance-specific.
    if (!config.forced_channel_count && !nodes_frozen) {
      for (int width = 1;
           width <= 4 &&
           population.size() + 1 < static_cast<std::size_t>(config.population);
           ++width) {
        Individual ind;
        GreedyOptions opts;
        opts.forced_channel_count = width;
        ind.solution = greedy_seed(instance, opts);
        population.push_back(std::move(ind));
      }
    }
  }
  // Score the seeds first: the random fill below perturbs the REPAIRED
  // front-of-population solution, as the serial algorithm always has.
  evaluate_pending(population);
  while (population.size() < static_cast<std::size_t>(config.population)) {
    Individual ind;
    ind.solution = population.front().solution;
    for (std::size_t j = 0; j < instance.gateways.size(); ++j) {
      if (rng.chance(0.5)) {
        randomize_gateway(instance, config, ind.solution, j, rng);
      }
    }
    mutate(instance, config, reach, nodes_frozen, ind.solution, rng);
    population.push_back(std::move(ind));
  }
  evaluate_pending(population);

  auto better = [](const Individual& a, const Individual& b) {
    return a.eval.objective < b.eval.objective;
  };
  auto tournament_pick = [&]() -> const Individual& {
    const Individual* best = nullptr;
    for (int t = 0; t < config.tournament; ++t) {
      const auto& cand = population[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(population.size()) - 1))];
      if (!best || better(cand, *best)) best = &cand;
    }
    return *best;
  };

  // ---- generations ----------------------------------------------------
  // Offspring are constructed serially (every rng draw happens here, in a
  // fixed order), then the batch of new individuals is scored in parallel.
  for (int gen = 0; gen < config.generations; ++gen) {
    std::sort(population.begin(), population.end(), better);
    if (config.early_stop &&
        population.front().eval.hard_objective() <= 1e-9) {
      break;
    }

    std::vector<Individual> next;
    next.reserve(population.size());
    for (int e = 0; e < config.elites &&
                    e < static_cast<int>(population.size());
         ++e) {
      next.push_back(population[static_cast<std::size_t>(e)]);
    }
    while (next.size() < population.size()) {
      const Individual& p1 = tournament_pick();
      Individual child;
      if (rng.chance(config.crossover_rate)) {
        const Individual& p2 = tournament_pick();
        child.solution =
            crossover(instance, nodes_frozen, p1.solution, p2.solution, rng);
      } else {
        child.solution = p1.solution;
      }
      mutate(instance, config, reach, nodes_frozen, child.solution, rng);
      next.push_back(std::move(child));
    }
    evaluate_pending(next);
    population = std::move(next);
    ++result.generations_run;
  }

  std::sort(population.begin(), population.end(), better);
  result.best = population.front().solution;
  result.best_eval = population.front().eval;
  return result;
}

}  // namespace alphawan
