// Packet-fate classification and metric aggregation. Every lost packet is
// attributed to a cause, which is what lets the Fig. 4 / Fig. 13c loss
// breakdowns be direct queries on the simulation rather than guesses.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "radio/transmission.hpp"

namespace alphawan {

enum class LossCause : std::uint8_t {
  kDelivered,
  kDecoderContentionIntra,  // dropped at lock-on, all occupants own-network
  kDecoderContentionInter,  // dropped at lock-on, foreign packets held decoders
  kChannelContentionIntra,  // RF collision with an own-network packet
  kChannelContentionInter,  // RF collision with a foreign packet
  kOther,                   // low SNR, out of range, front-end rejected
};

[[nodiscard]] std::string_view loss_cause_name(LossCause cause);

struct PacketFate {
  PacketId packet = 0;
  NodeId node = kInvalidNode;
  NetworkId network = 0;
  bool delivered = false;
  LossCause cause = LossCause::kOther;
  std::uint32_t payload_bytes = 0;
  DataRate dr = DataRate::kDR0;  // data rate the packet used
};

// Classify a packet from its outcomes at the gateways OF ITS OWN NETWORK.
// Delivery by any gateway wins; otherwise the "most actionable" cause is
// chosen: decoder contention > channel contention > other. Inline: this
// runs once per offered packet inside the window merge loop.
[[nodiscard]] inline PacketFate classify_packet(
    const Transmission& tx, std::span<const RxOutcome> own_gateway_outcomes) {
  PacketFate fate;
  fate.packet = tx.id;
  fate.node = tx.node;
  fate.network = tx.network;
  fate.payload_bytes = tx.payload_bytes;
  fate.dr = sf_to_dr(tx.params.sf);

  bool decoder_drop = false;
  bool decoder_drop_foreign = false;
  bool collision = false;
  bool collision_foreign = false;
  for (const auto& out : own_gateway_outcomes) {
    switch (out.disposition) {
      case RxDisposition::kDelivered:
        fate.delivered = true;
        fate.cause = LossCause::kDelivered;
        return fate;
      case RxDisposition::kDroppedDecoderBusy:
        decoder_drop = true;
        decoder_drop_foreign |= out.foreign_among_occupants;
        break;
      case RxDisposition::kDroppedCollision:
        collision = true;
        collision_foreign |= out.foreign_interferer;
        break;
      default:
        break;
    }
  }
  if (decoder_drop) {
    fate.cause = decoder_drop_foreign ? LossCause::kDecoderContentionInter
                                      : LossCause::kDecoderContentionIntra;
  } else if (collision) {
    fate.cause = collision_foreign ? LossCause::kChannelContentionInter
                                   : LossCause::kChannelContentionIntra;
  } else {
    fate.cause = LossCause::kOther;
  }
  return fate;
}

[[nodiscard]] inline PacketFate classify_packet(
    const Transmission& tx, std::initializer_list<RxOutcome> outcomes) {
  return classify_packet(
      tx, std::span<const RxOutcome>(outcomes.begin(), outcomes.size()));
}

class MetricsCollector {
 public:
  void record(const PacketFate& fate);

  [[nodiscard]] std::size_t offered(NetworkId network) const;
  [[nodiscard]] std::size_t delivered(NetworkId network) const;
  [[nodiscard]] std::size_t total_offered() const { return total_offered_; }
  [[nodiscard]] std::size_t total_delivered() const { return total_delivered_; }

  [[nodiscard]] double prr(NetworkId network) const;
  [[nodiscard]] double total_prr() const;

  // Fraction of OFFERED packets lost to each cause (sums with PRR to 1).
  [[nodiscard]] double loss_fraction(LossCause cause) const;
  [[nodiscard]] double loss_fraction(NetworkId network, LossCause cause) const;

  // Exact loss counts per cause (what the invariant checker sums against
  // offered/delivered — fractions would hide off-by-one bugs in rounding).
  [[nodiscard]] std::size_t losses(LossCause cause) const {
    return total_causes_.get(cause);
  }
  [[nodiscard]] std::size_t losses(NetworkId network, LossCause cause) const;

  // Ids of every network with at least one recorded fate.
  [[nodiscard]] std::vector<NetworkId> networks() const;

  // Delivered application bytes (for throughput = bytes / window).
  [[nodiscard]] std::size_t delivered_bytes(NetworkId network) const;
  [[nodiscard]] std::size_t total_delivered_bytes() const {
    return total_delivered_bytes_;
  }

  // Distinct nodes with >= 1 delivered packet (the paper's "concurrent
  // users supported" when each node offers one packet).
  [[nodiscard]] std::size_t served_nodes(NetworkId network) const;
  [[nodiscard]] std::size_t total_served_nodes() const;

  [[nodiscard]] const std::vector<PacketFate>& fates() const { return fates_; }

  void clear();

 private:
  struct PerNetwork {
    NetworkId id = 0;
    std::size_t offered = 0;
    std::size_t delivered = 0;
    std::size_t delivered_bytes = 0;
    Tally<LossCause> causes;
    // One entry per delivered packet; deduplicated lazily by the
    // served_nodes() queries. Keeps record() — called once per offered
    // packet — free of per-call map inserts.
    std::vector<NodeId> served;
  };

  // Flat per-network table (deployments have a handful of networks): a
  // short linear scan beats a std::map node walk in the per-packet
  // record() path.
  [[nodiscard]] PerNetwork& slot(NetworkId network);
  [[nodiscard]] const PerNetwork* find(NetworkId network) const;
  [[nodiscard]] static std::size_t distinct(std::vector<NodeId> nodes);

  std::vector<PerNetwork> per_network_;
  std::vector<PacketFate> fates_;
  std::size_t total_offered_ = 0;
  std::size_t total_delivered_ = 0;
  std::size_t total_delivered_bytes_ = 0;
  Tally<LossCause> total_causes_;
};

}  // namespace alphawan
