// The COTS gateway radio model: front-end chains with frequency
// selectivity, SNR-based preamble detection, FCFS dispatch into a finite
// decoder pool, interference-aware decoding, and post-decode sync-word
// filtering. Reproduces the reception pipeline of paper Appendix C.
//
// The radio processes a *batch* of transmissions (one simulation window):
// internally it is event-ordered (lock-on sorted), so batch processing is
// exact as long as no packet straddles the window boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/batch_kernels.hpp"
#include "phy/overlap.hpp"
#include "radio/capture_policy.hpp"
#include "radio/decoder_pool.hpp"
#include "radio/dispatcher.hpp"
#include "radio/profiles.hpp"
#include "radio/rx_chain.hpp"
#include "radio/rx_batch.hpp"
#include "radio/transmission.hpp"

namespace alphawan {

class GatewayRadio {
 public:
  GatewayRadio(GatewayProfile profile, NetworkId network,
               std::uint16_t sync_word);

  // Configure the operating channels. Throws std::invalid_argument if more
  // channels than data Rx chains or if the frequency span exceeds the
  // radio bandwidth B_j (paper's gateway radio constraints, Sec. 4.3.1).
  void configure_channels(std::vector<Channel> channels);

  [[nodiscard]] const GatewayProfile& profile() const { return profile_; }
  [[nodiscard]] const std::vector<RxChain>& chains() const { return chains_; }
  [[nodiscard]] NetworkId network() const { return network_; }
  [[nodiscard]] std::uint16_t sync_word() const { return sync_word_; }

  // Attach a correctness observer: notified of window starts, every FCFS
  // dispatch, and (via the pool) every decoder acquire/release/refusal.
  // Pass nullptr to detach.
  void set_observer(SimObserver* observer);

  // Attach a capture policy invoked at the end of process() (nullptr =
  // stock pipeline only, bit-identical to the pre-policy code path). The
  // policy is not owned; the caller keeps it alive across windows. After
  // resolve(), process() verifies the policy only rewrote outcomes whose
  // packet already held a decoder (consumed_decoder) and throws
  // std::logic_error otherwise — see capture_policy.hpp.
  void set_capture_policy(const CapturePolicy* policy);
  [[nodiscard]] const CapturePolicy* capture_policy() const {
    return capture_policy_;
  }

  // Process one window of transmissions observed at this gateway. Events
  // may arrive unsorted. Returns one outcome per input event (same order).
  [[nodiscard]] std::vector<RxOutcome> process(
      const std::vector<RxEvent>& events);

  // Batched-mode variant (ALPHAWAN_BATCH=1, sim/batch.hpp): same pipeline
  // driven off the window's shared WindowTxTable columns through the
  // batched kernels (phy/batch_kernels.hpp), returning outcomes
  // bit-identical to process() on the equivalent RxEvent list
  // (tests/property/test_prop_kernels.cpp). Capture policies read the
  // columnar CaptureContext, filled from the same per-event scratch
  // columns in both pipelines, so no RxEvent list is ever materialized.
  [[nodiscard]] std::vector<RxOutcome> process(const RxEventView& view);

  // In-place form of the batched variant: fills `outcomes` (resized to
  // view.count) instead of returning a fresh vector, so a caller-owned
  // buffer keeps its capacity across windows.
  void process_into(const RxEventView& view, std::vector<RxOutcome>& outcomes);

 private:
  // Reusable per-window working storage (docs/performance.md): allocated
  // once, capacity retained across windows, so a steady-state window does
  // no per-window heap allocation inside process(). The flat sorted bucket
  // index replaces the per-window std::map frequency buckets.
  struct RxScratch {
    std::vector<DispatchEntry> queue;
    std::vector<int> chain_of;          // event -> rx chain (-1 = rejected)
    std::vector<Seconds> end_of;        // cached tx.end() per event
    std::vector<double> lin_power;      // cached dBm->linear rx power
    std::vector<std::size_t> decoding;  // event indices holding a decoder
    // Hot per-event fields mirrored into flat arrays in phase 1, so the
    // interferer scan reads small contiguous vectors instead of doing one
    // wide scattered RxEvent load per candidate pair.
    std::vector<Seconds> start_of;
    std::vector<Channel> channel_of;
    std::vector<Dbm> power_of;
    std::vector<SpreadingFactor> sf_of;
    std::vector<NetworkId> net_of;
    // Capture-policy columns (node + per-tx sync word), filled only when a
    // policy is installed — the columnar CaptureContext points into these
    // plus the hot columns above.
    std::vector<NodeId> node_of;
    std::vector<std::uint16_t> sync_of;
    struct Bucket {
      std::int64_t id = 0;      // coarse frequency bucket
      std::uint32_t begin = 0;  // [begin, end) range into `order`
      std::uint32_t end = 0;
      Seconds max_duration{0.0};
      // When every event in the bucket shares one exact channel, a single
      // overlap test against the wanted chain covers the whole bucket —
      // and zero overlap skips its entire scan range.
      bool uniform = true;
      Channel channel{};
      // Batched mode only: [groups_begin, groups_end) into sf_groups for a
      // uniform bucket's stable SF grouping (empty for mixed buckets).
      std::uint32_t groups_begin = 0;
      std::uint32_t groups_end = 0;
    };
    std::vector<std::int64_t> bucket_id;     // per-event coarse bucket
    std::vector<std::uint32_t> bucket_count; // counting-sort workspace
    std::vector<std::pair<std::int64_t, std::uint32_t>> keyed;
    std::vector<std::uint32_t> order;  // event indices grouped by bucket
    // Per-bucket (start, index) staging for the start-time sort.
    std::vector<std::pair<Seconds, std::uint32_t>> start_idx;
    std::vector<Bucket> buckets;       // sorted by bucket id
    struct ChainMemo {
      Hz center{};
      Hz bandwidth{};
      int chain = -1;
    };
    // best_chain result per distinct packet channel; valid until the
    // channel set changes (cleared by configure_channels).
    std::vector<ChainMemo> chain_memo;
    struct AirtimeMemo {
      TxParams params{};
      std::uint32_t payload_bytes = 0;
      Seconds airtime{0.0};
      Seconds preamble{0.0};
    };
    // time_on_air/preamble_duration per distinct (params, payload): a
    // window draws from a handful of radio settings, so the full airtime
    // formula runs once per setting instead of once per event.
    std::vector<AirtimeMemo> airtime_memo;
    // Pre-resolve disposition snapshot for the capture-policy budget check
    // (only filled when a policy is installed).
    std::vector<RxDisposition> pre_policy;
    // Batched-mode extras, filled by build_sf_groups_and_memos: every
    // uniform bucket's events stably regrouped by SF (order_sf, with
    // pos_sf the bucket rank of each entry), the flat SF-group ranges, and
    // the per-(bucket, chain) overlap/coupling memo — values the scalar
    // scan recomputes identically per decoded event.
    std::vector<std::uint32_t> order_sf;
    std::vector<std::uint32_t> pos_sf;
    std::vector<SfGroup> sf_groups;
    // Monotone window-start cursors (one per SF group / per bucket): the
    // batched scan walks decoded events in ascending start order, so each
    // kernel's lower window edge only ever advances (phy/batch_kernels.hpp).
    std::vector<std::uint32_t> group_cursor;
    std::vector<std::uint32_t> bucket_cursor;
    struct BucketChainMemo {
      double rho = 0.0;
      Db coupling{-400.0};
    };
    std::vector<BucketChainMemo> bucket_chain;  // bucket * n_chains + chain
  };

  // Memoized best_chain: the chain index for a packet channel, or -1 when
  // every chain's filter truncates it.
  [[nodiscard]] int chain_for(const Channel& packet_channel);

  // Memoized airtime terms for one transmission's radio settings.
  [[nodiscard]] const RxScratch::AirtimeMemo& airtime_for(
      const Transmission& tx);

  // Phase 2: FCFS dispatch of the filled queue into the decoder pool.
  // `already_sorted` skips sort_fcfs when the caller proved the queue
  // strictly ascending by (lock_on, packet) — any comparison sort is the
  // identity there, so skipping cannot change the dispatch order.
  void dispatch_queue(std::vector<RxOutcome>& outcomes, bool already_sorted);
  // Phase 3a: coarse frequency bucketing + per-bucket start-time sort over
  // the phase-1 scratch columns (shared verbatim by both pipelines).
  void build_bucket_index(std::size_t count);
  // Batched phase-3 prep: stable SF grouping of every uniform bucket and
  // the per-(bucket, chain) overlap/coupling memos.
  void build_sf_groups_and_memos(std::size_t count);
  // Phase 4: pluggable capture resolution + the decoder-budget check.
  // Builds the columnar CaptureContext over the first `count` entries of
  // the per-event scratch columns (both pipelines fill the same columns).
  void apply_capture_policy(std::size_t count,
                            std::vector<RxOutcome>& outcomes);

  GatewayProfile profile_;
  NetworkId network_;
  std::uint16_t sync_word_;
  std::vector<RxChain> chains_;
  DecoderPool pool_;
  SimObserver* observer_ = nullptr;
  const CapturePolicy* capture_policy_ = nullptr;
  RxScratch scratch_;
};

}  // namespace alphawan
