#include "phy/overlap.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

Channel ch(Hz center) { return Channel{center, kLoRaBandwidth125k}; }

TEST(Overlap, IdenticalChannelsFullOverlap) {
  EXPECT_DOUBLE_EQ(overlap_ratio(ch(Hz{915e6}), ch(Hz{915e6})), 1.0);
}

TEST(Overlap, DisjointChannelsZero) {
  EXPECT_DOUBLE_EQ(overlap_ratio(ch(Hz{915e6}), ch(Hz{915.2e6})), 0.0);
}

TEST(Overlap, HalfOverlap) {
  EXPECT_NEAR(overlap_ratio(ch(Hz{915e6}), ch(Hz{915e6 + 62.5e3})), 0.5, 1e-9);
}

TEST(Overlap, Symmetric) {
  const auto a = ch(Hz{915e6});
  const auto b = ch(Hz{915.05e6});
  EXPECT_DOUBLE_EQ(overlap_ratio(a, b), overlap_ratio(b, a));
}

TEST(Overlap, MixedBandwidthsUseNarrower) {
  Channel wide{Hz{915e6}, Hz{500e3}};
  Channel narrow{Hz{915e6}, Hz{125e3}};
  EXPECT_DOUBLE_EQ(overlap_ratio(wide, narrow), 1.0);
}

TEST(Overlap, DetectableOnlyWhenNearlyAligned) {
  EXPECT_TRUE(detectable(ch(Hz{915e6}), ch(Hz{915e6})));
  EXPECT_TRUE(detectable(ch(Hz{915e6}), ch(Hz{915e6 + 3e3})));
  // 40% misalignment (Strategy 8) must be rejected by the front-end.
  EXPECT_FALSE(detectable(ch(Hz{915e6}), ch(Hz{915e6 + 50e3})));
  EXPECT_FALSE(detectable(ch(Hz{915e6}), ch(Hz{915.2e6})));
}

TEST(Overlap, CouplingZeroAtFullOverlap) {
  EXPECT_NEAR(coupling_db(ch(Hz{915e6}), ch(Hz{915e6})).value(), 0.0, 1e-9);
}

TEST(Overlap, CouplingMonotoneInOverlap) {
  Db prev{-1e9};
  for (Hz offset{120e3}; offset >= Hz{0.0}; offset -= Hz{10e3}) {
    const Db c = coupling_db(ch(Hz{915e6 + offset.value()}), ch(Hz{915e6}));
    EXPECT_GT(c, prev) << "offset " << offset;
    prev = c;
  }
}

TEST(Overlap, CouplingFloorForDisjoint) {
  EXPECT_LE(coupling_db(ch(Hz{915e6}), ch(Hz{916e6})), Db{-399.0});
  EXPECT_LE(effective_interference_dbm(Dbm{0.0}, ch(Hz{915e6}), ch(Hz{916e6})),
            Dbm{-399.0});
}

TEST(Overlap, EffectiveInterferenceAppliesCoupling) {
  const Channel src = ch(Hz{915e6 + 62.5e3});  // 50% overlap
  const Channel dst = ch(Hz{915e6});
  const Dbm eff = effective_interference_dbm(Dbm{-80.0}, src, dst);
  // 10log10(0.5) - 0.5*35 = -3.01 - 17.5 = -20.5 dB below source power.
  EXPECT_NEAR(eff.value(), -80.0 - 20.5, 0.1);
}

TEST(Overlap, StrategyEightIsolationWindow) {
  // Paper Sec. 4.3.2: <70% overlap (>30% misalignment) gives satisfactory
  // isolation. At 60% overlap the coupling should already exceed 15 dB of
  // suppression.
  const Channel dst = ch(Hz{915e6});
  const Channel src60 = ch(Hz{915e6 + 0.4 * kLoRaBandwidth125k.value()});
  EXPECT_LT(coupling_db(src60, dst), Db{-15.0});
  // And at 20% overlap, more than 30 dB.
  const Channel src20 = ch(Hz{915e6 + 0.8 * kLoRaBandwidth125k.value()});
  EXPECT_LT(coupling_db(src20, dst), Db{-30.0});
}

}  // namespace
}  // namespace alphawan
