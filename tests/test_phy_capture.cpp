#include "phy/capture.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace alphawan {
namespace {

TEST(Capture, SameSfRequiresPositiveMargin) {
  for (const auto sf : kAllSpreadingFactors) {
    EXPECT_GT(capture_sir_threshold(sf, sf), Db{0.0});
  }
}

TEST(Capture, CrossSfToleratesStrongerInterferer) {
  for (const auto a : kAllSpreadingFactors) {
    for (const auto b : kAllSpreadingFactors) {
      if (a == b) continue;
      EXPECT_LT(capture_sir_threshold(a, b), Db{0.0})
          << sf_name(a) << " vs " << sf_name(b);
    }
  }
}

TEST(Capture, HigherSfIsMoreRobust) {
  // SF12 tolerates stronger SF7 interference than SF8 does.
  EXPECT_LT(capture_sir_threshold(SpreadingFactor::kSF12,
                                  SpreadingFactor::kSF7),
            capture_sir_threshold(SpreadingFactor::kSF8,
                                  SpreadingFactor::kSF7));
}

TEST(Capture, SurvivesEquallyStrongOrthogonal) {
  EXPECT_TRUE(survives_interference(SpreadingFactor::kSF9, Dbm{-100.0},
                                    SpreadingFactor::kSF7, Dbm{-100.0}));
}

TEST(Capture, DiesToEquallyStrongSameSf) {
  EXPECT_FALSE(survives_interference(SpreadingFactor::kSF9, Dbm{-100.0},
                                     SpreadingFactor::kSF9, Dbm{-100.0}));
}

TEST(Capture, CaptureEffectWithStrongWanted) {
  EXPECT_TRUE(survives_interference(SpreadingFactor::kSF9, Dbm{-90.0},
                                    SpreadingFactor::kSF9, Dbm{-100.0}));
}

TEST(Capture, CombinePowersDoublesEnergy) {
  EXPECT_NEAR(combine_powers_dbm(Dbm{-100.0}, Dbm{-100.0}).value(), -96.99,
              0.02);
}

TEST(Capture, CombinePowersDominatedByStronger) {
  EXPECT_NEAR(combine_powers_dbm(Dbm{-80.0}, Dbm{-120.0}).value(), -80.0,
              0.01);
}

class CaptureSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CaptureSweep, ThresholdConsistentWithSurvival) {
  const auto [wi, ii] = GetParam();
  const auto wanted = sf_from_index(wi);
  const auto interferer = sf_from_index(ii);
  const Db threshold = capture_sir_threshold(wanted, interferer);
  const Dbm base{-100.0};
  EXPECT_TRUE(survives_interference(wanted, base + threshold + Db{0.1},
                                    interferer, base));
  EXPECT_FALSE(survives_interference(wanted, base + threshold - Db{0.1},
                                     interferer, base));
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, CaptureSweep,
    ::testing::Combine(::testing::Range(0, kNumSpreadingFactors),
                       ::testing::Range(0, kNumSpreadingFactors)));

}  // namespace
}  // namespace alphawan
