// Intra-network channel planning (paper Sec. 4.3.1): builds a CP instance
// from a network's link estimates and traffic demand, solves it with the
// evolutionary algorithm, and emits a deployable NetworkChannelConfig.
// Implements Strategies 1 (adaptive channel count), 2 (heterogeneous
// gateway channels) and 7 (joint node-side steering).
#pragma once

#include <map>

#include "common/clock.hpp"
#include "core/cp_solution.hpp"
#include "core/ga_solver.hpp"
#include "core/log_parser.hpp"
#include "net/network.hpp"
#include "sim/topology.hpp"

namespace alphawan {

struct IntraPlannerConfig {
  // Strategy 1: adapt the number of operating channels per gateway.
  bool strategy1_adapt_channel_count = true;
  // Strategy 7: steer node channels / data rates / powers.
  bool strategy7_node_side = true;
  // SNR headroom required when declaring a (node, gateway, level)
  // combination reachable.
  Db reach_margin{3.0};
  // Capacity of a (channel, DR) pair in packets per window (1.0 for pure
  // concurrency planning).
  double pair_capacity = 1.0;
  GaConfig ga{};
  // Clock for the solve_seconds telemetry (never simulation state).
  // Null means the process steady clock; tests inject a ManualClock to
  // keep PlanOutcome fully deterministic.
  const MonotonicClock* clock = nullptr;
};

struct PlanOutcome {
  NetworkChannelConfig config;
  CpEvaluation eval;
  CpInstance instance;
  int ga_generations = 0;
  Seconds solve_seconds{0.0};  // measured wall-clock of the CP solve
};

class IntraPlanner {
 public:
  explicit IntraPlanner(IntraPlannerConfig config = {}) : config_(config) {}

  // Build the CP instance for a network. Nodes absent from `links` (never
  // heard) are skipped and keep their configuration.
  [[nodiscard]] CpInstance build_instance(
      const Network& network, const Spectrum& spectrum,
      const LinkEstimates& links,
      const std::map<NodeId, double>& traffic) const;

  // Full plan: build, solve, convert. `frequency_offset` is the Master's
  // inter-network misalignment (0 when not sharing spectrum).
  [[nodiscard]] PlanOutcome plan(const Network& network,
                                 const Spectrum& spectrum,
                                 const LinkEstimates& links,
                                 const std::map<NodeId, double>& traffic,
                                 Hz frequency_offset = Hz{0.0}) const;

  [[nodiscard]] const IntraPlannerConfig& config() const { return config_; }

 private:
  // Smallest level at which a node reaches a gateway given measured SNR.
  [[nodiscard]] std::uint8_t min_reach_level(Db measured_snr,
                                             Dbm measured_power) const;

  // Current node assignments as a CpSolution (seed / frozen genes).
  [[nodiscard]] CpSolution snapshot_solution(const Network& network,
                                             const CpInstance& instance) const;

  IntraPlannerConfig config_;
};

// Ground-truth link estimates straight from deployment geometry: what an
// operator's long-running logs converge to. Benches use this to skip the
// measurement campaign; the end-to-end tests exercise the log-driven path.
[[nodiscard]] LinkEstimates oracle_link_estimates(Deployment& deployment,
                                                  const Network& network);

// Uniform traffic demand (u_i = `packets_per_window` for every node).
[[nodiscard]] std::map<NodeId, double> uniform_traffic(
    const Network& network, double packets_per_window = 1.0);

}  // namespace alphawan
