// Deployment: the complete simulated world — region, spectrum, propagation
// model, and one or more coexisting networks — plus placement helpers that
// mirror how the paper's testbed was provisioned.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "net/network.hpp"
#include "phy/band_plan.hpp"
#include "phy/channel_model.hpp"
#include "phy/link_cache.hpp"
#include "sim/shard.hpp"

namespace alphawan {

class Deployment {
 public:
  Deployment(Region region, Spectrum spectrum,
             ChannelModelConfig channel_config = {});

  [[nodiscard]] const Region& region() const { return region_; }
  [[nodiscard]] const Spectrum& spectrum() const { return spectrum_; }
  [[nodiscard]] ChannelModel& channel_model() { return channel_model_; }

  Network& add_network(const std::string& name);
  // Networks live in a deque: references returned by add_network stay
  // valid as more networks are added.
  [[nodiscard]] std::deque<Network>& networks() { return networks_; }
  [[nodiscard]] const std::deque<Network>& networks() const {
    return networks_;
  }
  [[nodiscard]] Network* find_network(NetworkId id);

  // Globally unique id allocation across networks.
  [[nodiscard]] NodeId next_node_id() { return next_node_id_++; }
  [[nodiscard]] GatewayId next_gateway_id() { return next_gateway_id_++; }

  // Place `count` gateways on a jittered coverage grid, all running the
  // given profile, initially configured with standard plan #0. Returns
  // their ids.
  std::vector<GatewayId> place_gateways(Network& network, std::size_t count,
                                        const GatewayProfile& profile,
                                        Rng& rng);

  // Place `count` nodes uniformly at random with round-robin grid channels
  // and a data rate feasible for the node's nearest gateway (DR0 if weak).
  std::vector<NodeId> place_nodes(Network& network, std::size_t count,
                                  Rng& rng);

  // Lowest data rate is always feasible; pick the fastest DR whose demod
  // threshold the node's best mean gateway SNR clears with `margin` dB.
  [[nodiscard]] DataRate feasible_dr(const EndNode& node,
                                     const Network& network, Db margin = Db{5.0});

  // Mean link SNR between a node position and a gateway (deterministic
  // part + frozen shadowing; no fast fading).
  [[nodiscard]] Db mean_snr(const EndNode& node, const Gateway& gw);

  // The window-invariant link-gain matrix over this deployment's gateways,
  // partitioned into one LinkCache slice per spatial shard (sim/shard.hpp;
  // shards == 1 is the monolithic cache). Each call re-partitions if the
  // shard count changed and refreshes every gateway's column in its home
  // slice — newly placed gateways get a column, antenna swaps recompute
  // theirs. Transmitter rows are registered lazily by the runner as traffic
  // mentions them, and only in the slices where the node is audible.
  [[nodiscard]] ShardedLinkCache& shard_caches(int shards);

  // The stripe layout used to home gateways (and transmitters) to shards.
  [[nodiscard]] ShardLayout shard_layout(int shards) const {
    return ShardLayout(region_, shards);
  }

 private:
  Region region_;
  Spectrum spectrum_;
  ChannelModel channel_model_;
  ShardedLinkCache shard_caches_{channel_model_};
  std::deque<Network> networks_;
  NodeId next_node_id_ = 1;
  GatewayId next_gateway_id_ = 1;
  NetworkId next_network_id_ = 0;
};

}  // namespace alphawan
