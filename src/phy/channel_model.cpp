#include "phy/channel_model.hpp"

#include <cmath>

namespace alphawan {
namespace {

// SplitMix64 finalizer: a full-avalanche 64-bit mix.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Collision-resistant (tx, rx) -> key combine. The previous
// `(tx_id << 20) ^ rx_id` scheme aliased as soon as rx ids carried bits
// >= 20 — which the runner's gateway keyspace (kGatewayKeyBase = 1 << 32)
// guarantees — silently giving distinct links the same shadowing draw.
constexpr std::uint64_t link_key(std::uint64_t tx_id, std::uint64_t rx_id) {
  return mix64(mix64(tx_id ^ 0x9E3779B97F4A7C15ULL) ^ rx_id);
}

}  // namespace

ChannelModel::ChannelModel(ChannelModelConfig config)
    : config_(config), shadow_seed_(config.seed * 0xA24BAED4963EE407ULL + 1) {}

Db ChannelModel::mean_path_loss(Meters dist) const {
  const Meters d = std::max(dist, config_.reference_distance);
  return config_.reference_loss_db +
         Db{10.0 * config_.path_loss_exponent *
            std::log10(d / config_.reference_distance)};
}

Db ChannelModel::shadowing(std::uint64_t tx_id, std::uint64_t rx_id) const {
  // Pure in the key alone: any caller, on any thread, recomputes the
  // identical draw, so there is nothing worth memoizing here — the
  // LinkCache holds the composite static terms for hot links.
  const std::uint64_t key = link_key(tx_id, rx_id);
  Rng link_rng(shadow_seed_ ^ (key * 0x9E3779B97F4A7C15ULL));
  return Db{link_rng.normal(0.0, config_.shadowing_sigma_db.value())};
}

Db ChannelModel::link_path_loss(std::uint64_t tx_id, std::uint64_t rx_id,
                                Meters dist) const {
  return mean_path_loss(dist) + shadowing(tx_id, rx_id);
}

Dbm ChannelModel::received_power(std::uint64_t tx_id, std::uint64_t rx_id,
                                 Meters dist, Dbm tx_power,
                                 Rng& packet_rng) const {
  const Db fading{packet_rng.normal(0.0, config_.fast_fading_sigma_db.value())};
  return tx_power - link_path_loss(tx_id, rx_id, dist) + fading;
}

Db ChannelModel::mean_link_snr(std::uint64_t tx_id, std::uint64_t rx_id,
                               Meters dist, Dbm tx_power, Hz bandwidth) const {
  return tx_power - link_path_loss(tx_id, rx_id, dist) -
         noise_floor_dbm(bandwidth);
}

Meters ChannelModel::range_for_snr(Db snr, Dbm tx_power, Hz bandwidth) const {
  const Db allowed_loss = tx_power - (snr + noise_floor_dbm(bandwidth));
  const Db excess = allowed_loss - config_.reference_loss_db;
  if (excess <= Db{0.0}) return config_.reference_distance;
  return config_.reference_distance *
         std::pow(10.0, excess.value() / (10.0 * config_.path_loss_exponent));
}

}  // namespace alphawan
