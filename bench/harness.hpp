// Shared scaffolding for the reproduction benches: canonical deployments
// (lab-bench clustered gateways, testbed-style grids), orthogonal user
// populations, and table printing. Each bench binary regenerates one table
// or figure of the paper and prints the paper's reported values alongside
// the measured ones (see EXPERIMENTS.md).
#pragma once

#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <numbers>
#include <string>
#include <type_traits>
#include <vector>

#include "baselines/standard_lorawan.hpp"
#include "common/parallel.hpp"
#include "core/controller.hpp"
#include "sim/scenario.hpp"
#include "sim/traffic.hpp"

namespace alphawan::bench {

// Evaluate one independent data point per input concurrently and return
// the results in input order. Sweep bodies must be self-contained: build a
// fresh Deployment (and runner, id source, rng) per point — points share
// nothing, so any ALPHAWAN_THREADS value yields the same table.
template <typename Input, typename Fn>
auto parallel_sweep(const std::vector<Input>& inputs, Fn&& fn) {
  using Result = std::decay_t<std::invoke_result_t<Fn&, const Input&>>;
  std::vector<Result> out(inputs.size());
  parallel_for(inputs.size(),
               [&](std::size_t i) { out[i] = fn(inputs[i]); });
  return out;
}

// Stable links: the paper's controlled capacity experiments pick placements
// with clear margins, so decoder contention is not confounded by fading.
inline ChannelModelConfig quiet_channel() {
  ChannelModelConfig cfg;
  cfg.shadowing_sigma_db = Db{0.3};
  cfg.fast_fading_sigma_db = Db{0.1};
  return cfg;
}

// Urban channel for the at-scale studies (Figs. 4, 13, 21).
inline ChannelModelConfig urban_channel(std::uint64_t seed = 1) {
  ChannelModelConfig cfg;
  cfg.shadowing_sigma_db = Db{3.0};
  cfg.fast_fading_sigma_db = Db{0.8};
  cfg.seed = seed;
  return cfg;
}

// Colocated gateway cluster (lab-style; every gateway hears every node at
// similar power). Initial channels: standard plan 0.
inline void place_clustered_gateways(Deployment& deployment, Network& network,
                                     int count,
                                     GatewayProfile profile = default_profile()) {
  const Point center = deployment.region().center();
  const auto plan0 = standard_plan(deployment.spectrum(), 0);
  for (int i = 0; i < count; ++i) {
    const Point pos{Meters{center.x.value() + 15.0 * i - 7.5 * (count - 1)},
                    Meters{center.y.value() + 10.0 * (i % 2)}};
    auto& gw = network.add_gateway(deployment.next_gateway_id(), pos, profile);
    gw.apply_channels(GatewayChannelConfig{plan0.channels});
  }
}

// Ring of users with globally orthogonal (channel, SF) pairs starting at
// `pair_offset`; balanced received powers, no RF collisions by design.
inline std::vector<EndNode*> add_orthogonal_users(Deployment& deployment,
                                                  Network& network, int count,
                                                  Rng& rng,
                                                  int pair_offset = 0,
                                                  double radius = 140.0) {
  std::vector<EndNode*> nodes;
  const auto channels = deployment.spectrum().grid_channels();
  const Point center = deployment.region().center();
  for (int k = 0; k < count; ++k) {
    const int i = k + pair_offset;
    NodeRadioConfig cfg;
    cfg.channel = channels[static_cast<std::size_t>(i) % channels.size()];
    cfg.dr = static_cast<DataRate>(
        (i / static_cast<int>(channels.size())) % kNumDataRates);
    cfg.tx_power = Dbm{14.0};
    const double angle = 2.0 * std::numbers::pi *
                         (static_cast<double>(k) + rng.uniform(0.0, 0.5)) /
                         static_cast<double>(count);
    const Point pos{Meters{center.x.value() + radius * std::cos(angle)},
                    Meters{center.y.value() + radius * std::sin(angle)}};
    nodes.push_back(&network.add_node(deployment.next_node_id(), pos, cfg));
  }
  return nodes;
}

// Run one concurrent burst (lock-on staggered) and return delivered count
// per network.
inline WindowResult run_burst(Deployment& deployment,
                              std::vector<EndNode*> nodes, Seconds at,
                              PacketIdSource& ids, std::uint64_t seed = 7) {
  ScenarioRunner runner(deployment, seed);
  const auto txs = staggered_by_lock_on(std::move(nodes), at, Seconds{0.0004}, ids);
  return runner.run_window(txs);
}

// Max concurrent users supported: largest N (<= limit) such that a burst
// of N orthogonal users is fully (>= threshold) delivered. The paper's
// "maximum number of concurrent users" metric.
inline std::size_t max_concurrent_users(Deployment& deployment,
                                        const std::vector<EndNode*>& nodes,
                                        PacketIdSource& ids,
                                        double threshold = 0.95) {
  std::size_t best = 0;
  Seconds at{0.0};
  for (std::size_t n = 1; n <= nodes.size(); ++n) {
    std::vector<EndNode*> subset(nodes.begin(),
                                 nodes.begin() + static_cast<std::ptrdiff_t>(n));
    const auto result = run_burst(deployment, subset, at, ids);
    at += Seconds{100.0};  // separate bursts in time
    if (static_cast<double>(result.total_delivered()) >=
        threshold * static_cast<double>(n)) {
      // The metric is the user count N, not the delivered count of the
      // burst (with threshold < 1 a passing burst may deliver fewer).
      best = n;
    }
  }
  return best;
}

// A service session: the users transmit repeatedly across `bursts`
// concurrent rounds with a re-shuffled lock-on order each round (as in a
// live network, where dispatch order rotates). Returns the set of users
// whose packets were received at least once — the paper's "service ratio"
// numerator (Fig. 15).
inline std::map<NetworkId, std::set<NodeId>> run_service_session(
    Deployment& deployment, std::vector<EndNode*> all, int bursts,
    std::uint64_t seed) {
  std::map<NetworkId, std::set<NodeId>> served;
  PacketIdSource ids;
  Rng rng(seed);
  ScenarioRunner runner(deployment, seed);
  Seconds at{0.0};
  for (int round = 0; round < bursts; ++round) {
    // Fisher-Yates shuffle of the lock-on order.
    for (std::size_t i = all.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(all[i - 1], all[j]);
    }
    const auto txs = staggered_by_lock_on(all, at, Seconds{0.0004}, ids);
    const auto result = runner.run_window(txs);
    for (const auto& fate : result.fates) {
      if (fate.delivered) served[fate.network].insert(fate.node);
    }
    at += Seconds{120.0};
  }
  return served;
}

// ---- printing -------------------------------------------------------------

inline void print_header(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void print_row(const char* label, double paper, double measured,
                      const char* unit = "") {
  std::printf("  %-44s paper=%8.1f  measured=%8.1f %s\n", label, paper,
              measured, unit);
}

inline void print_note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

}  // namespace alphawan::bench
