// alphawan-lint fixture: determinism family, negative cases.
// Linted as-if at src/sim/determinism_negative.cpp; must stay silent.
#include <chrono>
#include <cstdint>
#include <map>
#include <unordered_map>

namespace alphawan {

struct Quantized {
  // ALPHAWAN-LINT-ALLOW(determinism-unordered-member: keyed lookup only,
  // never iterated; digest order cannot observe it)
  std::unordered_map<std::uint64_t, std::uint32_t> index_of_;

  std::uint32_t lookup(std::uint64_t key) const {
    const auto it = index_of_.find(key);  // lookup, not iteration
    return it == index_of_.end() ? 0U : it->second;
  }
};

inline double telemetry_now_seconds() {
  // Annotations cover their own line plus the comment run directly above
  // the finding (NOLINT-style), so this one sits on the clock call itself.
  // ALPHAWAN-LINT-ALLOW(determinism-wallclock: telemetry only — the value
  // never feeds simulation state or digests)
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

inline double fold_sorted(const std::map<int, double>& gains) {
  double sum = 0.0;
  for (const auto& [node, gain] : gains) {  // sorted container: fine
    sum += gain;
  }
  return sum;
}

// Mentioning std::unordered_map in a comment or string must not fire.
inline const char* doc() { return "prefer std::map over std::unordered_map"; }

}  // namespace alphawan
