#include "core/cp_problem.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace alphawan {
namespace {

// Instance: 2 gateways (4 decoders each), 8 channels, 6 nodes.
CpInstance small_instance() {
  CpInstance inst;
  inst.spectrum = Spectrum{Hz{923.2e6}, Hz{1.6e6}};
  inst.num_channels = 8;
  inst.gateways = {{1, 4, 8, 8}, {2, 4, 8, 8}};
  for (int i = 0; i < 6; ++i) {
    CpNode node;
    node.id = static_cast<NodeId>(100 + i);
    node.traffic = 1.0;
    node.min_level = {0, 0};  // reaches both gateways at any level
    inst.nodes.push_back(node);
  }
  return inst;
}

CpSolution trivial_solution(const CpInstance& inst) {
  CpSolution s = CpSolution::empty_for(inst);
  for (auto& chans : s.gateway_channels) chans = {0, 1, 2, 3};
  for (std::size_t i = 0; i < inst.nodes.size(); ++i) {
    s.node_channel[i] = static_cast<std::int32_t>(i % 4);
    s.node_level[i] = static_cast<std::int32_t>(i % kNumLevels);
  }
  return s;
}

TEST(CpProblem, ValidInstance) {
  EXPECT_TRUE(small_instance().valid());
  CpInstance bad = small_instance();
  bad.nodes[0].min_level.pop_back();
  EXPECT_FALSE(bad.valid());
  CpInstance no_gw = small_instance();
  no_gw.gateways.clear();
  EXPECT_FALSE(no_gw.valid());
}

TEST(CpProblem, Totals) {
  const auto inst = small_instance();
  EXPECT_DOUBLE_EQ(inst.total_decoders(), 8.0);
  EXPECT_DOUBLE_EQ(inst.total_traffic(), 6.0);
}

TEST(CpProblem, FeasibleAcceptsValidSolution) {
  const auto inst = small_instance();
  EXPECT_TRUE(feasible(inst, trivial_solution(inst)));
}

TEST(CpProblem, FeasibleRejectsViolations) {
  const auto inst = small_instance();
  auto too_many = trivial_solution(inst);
  too_many.gateway_channels[0] = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_TRUE(feasible(inst, too_many));  // 8 channels allowed
  CpInstance narrow = inst;
  narrow.gateways[0].max_channels = 2;
  EXPECT_FALSE(feasible(narrow, too_many));

  auto out_of_range = trivial_solution(inst);
  out_of_range.node_channel[0] = 99;
  EXPECT_FALSE(feasible(inst, out_of_range));

  auto unsorted = trivial_solution(inst);
  unsorted.gateway_channels[0] = {3, 1};
  EXPECT_FALSE(feasible(inst, unsorted));

  auto duplicate = trivial_solution(inst);
  duplicate.gateway_channels[0] = {1, 1};
  EXPECT_FALSE(feasible(inst, duplicate));

  auto bad_level = trivial_solution(inst);
  bad_level.node_level[0] = 6;
  EXPECT_FALSE(feasible(inst, bad_level));
}

TEST(CpProblem, SpanConstraint) {
  CpInstance inst = small_instance();
  inst.num_channels = 24;
  inst.gateways[0].max_span_channels = 8;
  auto s = trivial_solution(inst);
  s.gateway_channels[0] = {0, 10};  // span 11 > 8
  EXPECT_FALSE(feasible(inst, s));
  s.gateway_channels[0] = {0, 7};
  EXPECT_TRUE(feasible(inst, s));
}

TEST(CpProblem, RepairProducesFeasible) {
  Rng rng(3);
  CpInstance inst = small_instance();
  inst.num_channels = 24;
  for (int trial = 0; trial < 200; ++trial) {
    CpSolution s = CpSolution::empty_for(inst);
    for (auto& chans : s.gateway_channels) {
      const int n = static_cast<int>(rng.uniform_int(0, 12));
      for (int k = 0; k < n; ++k) {
        chans.push_back(static_cast<std::int32_t>(rng.uniform_int(-5, 30)));
      }
    }
    for (std::size_t i = 0; i < inst.nodes.size(); ++i) {
      s.node_channel[i] = static_cast<std::int32_t>(rng.uniform_int(-5, 30));
      s.node_level[i] = static_cast<std::int32_t>(rng.uniform_int(-2, 9));
    }
    repair(inst, s);
    EXPECT_TRUE(feasible(inst, s)) << "trial " << trial;
  }
}

TEST(CpProblem, EvaluateZeroWithDisjointGatewayChannels) {
  // With disjoint gateway channel sets no packet is double-counted:
  // gw1 {0..3} serves 4 nodes, gw2 {4..7} serves 2 -> no overload.
  const auto inst = small_instance();
  CpSolution s = CpSolution::empty_for(inst);
  s.gateway_channels[0] = {0, 1, 2, 3};
  s.gateway_channels[1] = {4, 5, 6, 7};
  for (std::size_t i = 0; i < inst.nodes.size(); ++i) {
    s.node_channel[i] = static_cast<std::int32_t>(i);
    s.node_level[i] = static_cast<std::int32_t>(i % kNumLevels);
  }
  const auto eval = evaluate(inst, s);
  EXPECT_DOUBLE_EQ(eval.overload_risk, 0.0);
  EXPECT_DOUBLE_EQ(eval.disconnected, 0.0);
  EXPECT_DOUBLE_EQ(eval.pair_overload, 0.0);
  EXPECT_DOUBLE_EQ(eval.gateway_load[0], 4.0);
  EXPECT_DOUBLE_EQ(eval.gateway_load[1], 2.0);
}

TEST(CpProblem, OverlappingCoverageDoubleCountsLoad) {
  // Both gateways operate channels 0-3 and every node reaches both: each
  // packet contends at BOTH gateways (the paper's one-to-many reception),
  // so k_j = 6 > C_j = 4 and every node carries risk phi = 2.
  const auto inst = small_instance();
  const auto s = trivial_solution(inst);
  const auto eval = evaluate(inst, s);
  EXPECT_DOUBLE_EQ(eval.gateway_load[0], 6.0);
  EXPECT_DOUBLE_EQ(eval.gateway_load[1], 6.0);
  EXPECT_DOUBLE_EQ(eval.overload_risk, 6.0 * (2.0 / 6.0));
  EXPECT_DOUBLE_EQ(eval.disconnected, 0.0);
}

TEST(CpProblem, EvaluateDetectsOverload) {
  CpInstance inst = small_instance();
  inst.gateways = {{1, 2, 8, 8}};  // one gateway, 2 decoders
  for (auto& node : inst.nodes) node.min_level = {0};
  CpSolution s = CpSolution::empty_for(inst);
  s.gateway_channels[0] = {0};
  for (std::size_t i = 0; i < inst.nodes.size(); ++i) {
    s.node_channel[i] = 0;
    s.node_level[i] = static_cast<std::int32_t>(i % kNumLevels);
  }
  const auto eval = evaluate(inst, s);
  // k = 6 vs C = 2 -> phi = 4/6 expected loss fraction per packet.
  EXPECT_DOUBLE_EQ(eval.gateway_load[0], 6.0);
  EXPECT_DOUBLE_EQ(eval.overload_risk, 6.0 * (4.0 / 6.0));
}

TEST(CpProblem, EvaluateDetectsDisconnection) {
  CpInstance inst = small_instance();
  CpSolution s = trivial_solution(inst);
  // Put node 0 on a channel no gateway operates.
  s.node_channel[0] = 7;
  for (auto& chans : s.gateway_channels) chans = {0, 1, 2, 3};
  const auto eval = evaluate(inst, s);
  EXPECT_DOUBLE_EQ(eval.disconnected, 1.0);
  EXPECT_GT(eval.objective, 1.0);  // certain-loss penalty applied
}

TEST(CpProblem, EvaluateDetectsPairOverload) {
  CpInstance inst = small_instance();
  CpSolution s = trivial_solution(inst);
  // Two nodes on the same (channel, level): RF contention.
  s.node_channel[0] = s.node_channel[1] = 0;
  s.node_level[0] = s.node_level[1] = 0;
  const auto eval = evaluate(inst, s);
  EXPECT_DOUBLE_EQ(eval.pair_overload, 1.0);
}

TEST(CpProblem, UnreachableLevelBlocksLink) {
  CpInstance inst = small_instance();
  // Node 0 reaches gateway 1 only at level >= 3.
  inst.nodes[0].min_level = {3, kUnreachable};
  CpSolution s = trivial_solution(inst);
  s.node_channel[0] = 0;
  s.node_level[0] = 2;  // below the min level: disconnected
  auto eval = evaluate(inst, s);
  EXPECT_DOUBLE_EQ(eval.disconnected, 1.0);
  s.node_level[0] = 3;
  eval = evaluate(inst, s);
  EXPECT_DOUBLE_EQ(eval.disconnected, 0.0);
}

TEST(CpProblem, LevelDrMapping) {
  EXPECT_EQ(level_to_dr(0), DataRate::kDR5);
  EXPECT_EQ(level_to_dr(5), DataRate::kDR0);
  for (int l = 0; l < kNumLevels; ++l) {
    EXPECT_EQ(dr_to_level(level_to_dr(l)), l);
  }
}

}  // namespace
}  // namespace alphawan
