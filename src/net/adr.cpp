#include "net/adr.hpp"

#include <algorithm>
#include <cmath>

#include "phy/sensitivity.hpp"

namespace alphawan {

std::optional<NodeRadioConfig> standard_adr(const NodeRadioConfig& current,
                                            const LinkProfile& profile,
                                            const AdrConfig& adr) {
  if (profile.uplinks == 0) return std::nullopt;
  const Db snr = profile.best_snr();
  const Db required = demod_snr_threshold(dr_to_sf(current.dr));
  Db margin = snr - required - adr.installation_margin;
  int steps = static_cast<int>(std::floor(margin / adr.step_db));

  NodeRadioConfig next = current;
  // Raise data rate while steps remain (each DR step needs one margin
  // step); DR5 is the ceiling.
  while (steps > 0 && next.dr != DataRate::kDR5) {
    next.dr = static_cast<DataRate>(dr_value(next.dr) + 1);
    --steps;
  }
  // Remaining steps reduce transmit power.
  while (steps > 0 && next.tx_power - adr.step_db >= adr.min_tx_power) {
    next.tx_power -= adr.step_db;
    --steps;
  }
  // Negative margin: back the data rate off / restore power.
  while (steps < 0 && next.tx_power + adr.step_db <= adr.max_tx_power) {
    next.tx_power += adr.step_db;
    ++steps;
  }
  while (steps < 0 && next.dr != DataRate::kDR0) {
    next.dr = static_cast<DataRate>(dr_value(next.dr) - 1);
    ++steps;
  }
  return next;
}

std::map<NodeId, NodeRadioConfig> standard_adr_all(
    const std::map<NodeId, NodeRadioConfig>& current,
    const NetworkServer& server, const AdrConfig& adr) {
  std::map<NodeId, NodeRadioConfig> out;
  for (const auto& [node, cfg] : current) {
    const auto it = server.link_profiles().find(node);
    if (it == server.link_profiles().end()) {
      out.emplace(node, cfg);
      continue;
    }
    const auto next = standard_adr(cfg, it->second, adr);
    out.emplace(node, next.value_or(cfg));
  }
  return out;
}

}  // namespace alphawan
