// Figure 15 reproduction: fairness between two coexisting AlphaWAN
// networks under asymmetric load. Network 1 offers a fixed 48 concurrent
// users (the 1.6 MHz theoretical maximum); network 2 ramps 16 -> 80.
// Paper: both keep service ratios > 90% up to 48; beyond 48, network 2's
// own channel contention hurts network 2 while network 1 stays > 80%.
#include "harness.hpp"

using namespace alphawan;
using namespace alphawan::bench;

int main() {
  print_header(
      "Fig. 15 — service ratios of two coexisting networks (40% overlap)\n"
      "network 1 fixed at 48 users; network 2 varies 16..80");
  std::printf("  %-14s %-14s %-14s %-10s\n", "net2 users", "net1 ratio",
              "net2 ratio", "Jain");

  for (int net2_users : {16, 32, 48, 64, 80}) {
    Deployment deployment{Region{Meters{600}, Meters{600}}, spectrum_1m6(), quiet_channel()};
    auto& op1 = deployment.add_network("op1");
    auto& op2 = deployment.add_network("op2");
    Rng rng(91);
    place_clustered_gateways(deployment, op1, 3);
    place_clustered_gateways(deployment, op2, 3);
    auto nodes1 = add_orthogonal_users(deployment, op1, 48, rng);
    // Network 2: beyond 48 users the orthogonal pairs run out and users
    // must reuse settings (the paper's channel-contention regime).
    auto nodes2 =
        add_orthogonal_users(deployment, op2, std::min(net2_users, 48), rng);
    if (net2_users > 48) {
      auto extra = add_orthogonal_users(deployment, op2, net2_users - 48, rng,
                                        /*pair_offset=*/0, /*radius=*/150.0);
      nodes2.insert(nodes2.end(), extra.begin(), extra.end());
    }

    MasterNode master(MasterConfig{deployment.spectrum(), 0.4, 2});
    LatencyModel latency{LatencyModelConfig{}, 3};
    for (Network* net : {&op1, &op2}) {
      AlphaWanConfig cfg;
      cfg.strategy8_spectrum_sharing = true;
      cfg.planner.ga.population = 24;
      cfg.planner.ga.generations = 40;
      AlphaWanController controller(cfg, latency);
      const auto links = oracle_link_estimates(deployment, *net);
      (void)controller.upgrade(*net, deployment.spectrum(), links,
                               uniform_traffic(*net), &master);
    }

    std::vector<EndNode*> all;
    const std::size_t n_max = std::max(nodes1.size(), nodes2.size());
    for (std::size_t i = 0; i < n_max; ++i) {
      if (i < nodes1.size()) all.push_back(nodes1[i]);
      if (i < nodes2.size()) all.push_back(nodes2[i]);
    }
    // Service ratio over a session of repeated rounds: a user counts as
    // served once any of its packets gets through (drops rotate with the
    // FCFS order round to round).
    const auto served = run_service_session(deployment, all, 10, 5);
    const double ratio1 =
        static_cast<double>(served.at(op1.id()).size()) / 48.0;
    const double ratio2 = static_cast<double>(served.at(op2.id()).size()) /
                          static_cast<double>(net2_users);
    const double fairness = jain_fairness({ratio1, ratio2});
    std::printf("  %-14d %-14.2f %-14.2f %-10.3f\n", net2_users, ratio1,
                ratio2, fairness);
  }
  print_note(
      "paper: >0.9/>0.9 up to 48 users each; net2 drops past 48 (its own\n"
      "  channel contention) while net1 keeps >0.8");
  return 0;
}
