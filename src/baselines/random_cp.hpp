// Baseline: randomized channel planning (paper Sec. 5.1.1). Follows
// Strategy 1 — each gateway operates a reduced, random number of channels
// — but picks the channels at random instead of optimizing coverage, and
// leaves the node side to standard ADR. Isolates how much of AlphaWAN's
// gain comes from optimization rather than from merely diversifying.
#pragma once

#include "sim/topology.hpp"

namespace alphawan {

struct RandomCpOptions {
  int min_channels_per_gateway = 2;
  int max_channels_per_gateway = 4;
};

void apply_random_cp(Deployment& deployment, Network& network, Rng& rng,
                     const RandomCpOptions& options = RandomCpOptions{});

}  // namespace alphawan
