#include "backhaul/faults.hpp"

#include <algorithm>
#include <utility>

namespace alphawan {

FaultInjector::FaultInjector(MessageBus& bus, FaultPlan plan)
    : bus_(bus), plan_(std::move(plan)), root_(plan_.seed) {
  active_ = plan_.any_message_faults();
  bus_.set_fault_injector(this);
}

FaultInjector::~FaultInjector() { bus_.set_fault_injector(nullptr); }

void FaultInjector::arm_outages() {
  for (const auto& outage : plan_.outages) {
    bus_.engine().schedule_at(outage.start, [this, endpoint = outage.endpoint] {
      bus_.set_down(endpoint, true);
      ++stats_.crashes;
    });
    bus_.engine().schedule_at(
        outage.start + outage.duration, [this, endpoint = outage.endpoint] {
          bus_.set_down(endpoint, false);
          ++stats_.restarts;
          if (restart_hook_) restart_hook_(endpoint);
        });
  }
}

const FaultSpec* FaultInjector::rule_for(const EndpointId& endpoint,
                                         FaultDirection direction) const {
  for (const auto& rule : plan_.rules) {
    if (rule.direction == direction && rule.endpoint == endpoint) {
      return &rule.spec;
    }
  }
  return nullptr;
}

void FaultInjector::route(const EndpointId& from, const EndpointId& to,
                          Seconds base_delay,
                          std::vector<std::uint8_t> payload) {
  ++stats_.messages_seen;
  if (!active_) {
    bus_.schedule_delivery(from, to, base_delay, std::move(payload));
    return;
  }
  // Every decision about this message comes from a substream keyed by the
  // message index, so the fault pattern is a pure function of
  // (plan seed, send sequence) — replays are bit-identical and one
  // message's faults never perturb another's.
  Rng rng = root_.substream(message_index_++);

  const FaultSpec* specs[3] = {&plan_.everywhere,
                               rule_for(from, FaultDirection::kTx),
                               rule_for(to, FaultDirection::kRx)};
  int copies = 1;
  Seconds extra_delay{0.0};
  bool truncate = false;
  bool corrupt = false;
  for (const FaultSpec* spec : specs) {
    if (spec == nullptr) continue;
    if (spec->drop_prob > 0.0 && rng.chance(spec->drop_prob)) {
      ++stats_.dropped;
      return;
    }
    if (spec->duplicate_prob > 0.0 && rng.chance(spec->duplicate_prob)) {
      ++copies;
    }
    if (spec->delay_prob > 0.0 && rng.chance(spec->delay_prob)) {
      extra_delay +=
          Seconds{rng.uniform(spec->delay_min.value(), spec->delay_max.value())};
    }
    if (spec->truncate_prob > 0.0 && rng.chance(spec->truncate_prob)) {
      truncate = true;
    }
    if (spec->corrupt_prob > 0.0 && rng.chance(spec->corrupt_prob)) {
      corrupt = true;
    }
  }
  if (copies > 1) stats_.duplicated += static_cast<std::size_t>(copies - 1);
  if (extra_delay > Seconds{0.0}) ++stats_.delayed;
  if (truncate && !payload.empty()) {
    ++stats_.truncated;
    payload.resize(static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(payload.size()) - 1)));
  }
  if (corrupt && !payload.empty()) {
    ++stats_.corrupted;
    int flip_budget = 1;
    for (const FaultSpec* spec : specs) {
      if (spec != nullptr) flip_budget = std::max(flip_budget, spec->max_bit_flips);
    }
    const auto flips = rng.uniform_int(1, flip_budget);
    for (std::int64_t f = 0; f < flips; ++f) {
      const auto bit = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(payload.size()) * 8 - 1));
      payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
  }
  // Each duplicate takes its own extra delay draw on top of the shared
  // one, so duplicates interleave (and reorder) with other traffic.
  for (int c = 0; c < copies; ++c) {
    Seconds copy_delay = base_delay + extra_delay;
    if (c > 0) {
      copy_delay += Seconds{rng.uniform(0.0, extra_delay.value() + 0.05)};
    }
    bus_.schedule_delivery(from, to, copy_delay, payload);
  }
}

}  // namespace alphawan
