// Properties of every registered baseline scheme, MAC side and capture
// side alike:
//   - packet conservation and the invariant checker stay clean under any
//     random world the scheme provisions;
//   - the window fate digest is shard- and thread-count invariant
//     (shards {1,2,8} x threads {1,8}), so no scheme smuggles in
//     engine-order- or partition-dependent state;
//   - a same-seed rerun reproduces the digest bit-for-bit (all randomness
//     flows through the caller's Rng and its keyed substreams);
// plus a golden per-scheme digest pin for one fixed world
// (tests/golden/baseline_digests.txt; re-bless per docs/testing.md).
#include <fstream>
#include <map>

#include "baselines/registry.hpp"
#include "check/digest.hpp"
#include "proptest.hpp"

namespace alphawan {
namespace {

using prop::CaseParams;

// Registry tuning for the property worlds: real GA planning, sized down so
// the alphawan scheme stays property-test cheap.
BaselineTuning cheap_tuning() {
  BaselineTuning tuning;
  tuning.alphawan.controller.planner.ga.population = 8;
  tuning.alphawan.controller.planner.ga.generations = 2;
  tuning.alphawan.demand_per_node = 0.05;
  return tuning;
}

struct SchemeWorld {
  std::unique_ptr<Deployment> deployment;
  std::vector<Transmission> txs;
};

// A random world provisioned by the scheme itself: place, configure
// (which may rewrite gateway plans and node configs), then generate
// traffic from the post-configuration node settings and run it through
// the scheme's MAC shaping. Every draw derives from p.seed.
SchemeWorld build_scheme_world(const BaselineScheme& scheme,
                               const CaseParams& p) {
  SchemeWorld world;
  world.deployment = std::make_unique<Deployment>(
      Region{Meters{1000.0}, Meters{1000.0}}, spectrum_1m6(),
      ChannelModelConfig{});
  auto& network = world.deployment->add_network("op");
  GatewayProfile profile = default_profile();
  profile.decoders = p.decoders;
  Rng rng(p.seed);
  world.deployment->place_gateways(network, p.gateways_per_net, profile, rng);
  world.deployment->place_nodes(network, p.nodes_per_net, rng);
  scheme.configure(*world.deployment, network, rng);

  std::vector<EndNode*> nodes;
  for (auto& node : network.nodes()) nodes.push_back(&node);
  PacketIdSource ids;
  Rng traffic_rng = Rng(p.seed).substream("traffic");
  world.txs = p.burst
                  ? concurrent_burst(nodes, Seconds{0.0}, ids)
                  : poisson_traffic(nodes, Seconds{0.8}, 1.5, traffic_rng, ids);
  Rng shape_rng = Rng(p.seed).substream("mac-shape");
  world.txs = scheme.shape_window(std::move(world.txs), shape_rng);
  return world;
}

std::uint64_t scheme_digest(const BaselineScheme& scheme, const CaseParams& p,
                            int threads, int shards) {
  SchemeWorld world = build_scheme_world(scheme, p);
  RunOptions options;
  options.capture_policy = scheme.capture;
  options.threads = threads;
  options.shards = shards;
  ScenarioRunner runner(*world.deployment, p.seed, std::move(options));
  return fate_digest(runner.run_window(world.txs).fates);
}

std::optional<std::string> conservation_holds(const BaselineScheme& scheme,
                                              const CaseParams& p) {
  SchemeWorld world = build_scheme_world(scheme, p);
  SimInvariants checker;
  RunOptions options;
  options.capture_policy = scheme.capture;
  ScenarioRunner runner(*world.deployment, p.seed ^ 0xBEEF,
                        std::move(options));
  runner.set_invariants(&checker);
  MetricsCollector metrics;
  const auto result = runner.run_window(world.txs, metrics);
  checker.check_metrics(metrics);
  if (result.total_offered() != world.txs.size()) {
    return "offered != generated transmissions";
  }
  std::size_t losses = 0;
  for (const auto cause :
       {LossCause::kDecoderContentionIntra, LossCause::kDecoderContentionInter,
        LossCause::kChannelContentionIntra, LossCause::kChannelContentionInter,
        LossCause::kOther}) {
    losses += metrics.losses(cause);
  }
  if (metrics.total_offered() != metrics.total_delivered() + losses) {
    return "offered != delivered + sum(loss causes)";
  }
  if (!checker.ok()) {
    std::string joined;
    for (const auto& v : checker.violations()) {
      if (!joined.empty()) joined += "; ";
      joined += v;
    }
    return joined;
  }
  return std::nullopt;
}

std::optional<std::string> digests_invariant(const BaselineScheme& scheme,
                                             const CaseParams& p) {
  const std::uint64_t mono = scheme_digest(scheme, p, 1, 1);
  // Same seed, fresh world, monolithic rerun: replay equality.
  if (const std::uint64_t rerun = scheme_digest(scheme, p, 1, 1);
      rerun != mono) {
    return "same-seed rerun digest " + digest_hex(rerun) + " != " +
           digest_hex(mono);
  }
  for (const int shards : {2, 8}) {
    for (const int threads : {1, 8}) {
      const std::uint64_t sharded = scheme_digest(scheme, p, threads, shards);
      if (sharded != mono) {
        return "digest " + digest_hex(sharded) + " at shards=" +
               std::to_string(shards) + " threads=" +
               std::to_string(threads) + " != monolithic " + digest_hex(mono);
      }
    }
  }
  return std::nullopt;
}

// Bounds sized for breadth: enough gateways for sharding to matter, node
// counts that force decoder and channel contention.
const CaseParams kLo{1, 1, 4, 2, 2, false, 0};
const CaseParams kHi{1, 4, 24, 8, 16, false, 0};

class BaselineProperty : public testing::TestWithParam<std::string> {};

TEST_P(BaselineProperty, ConservationAndInvariantsHold) {
  const BaselineScheme scheme =
      BaselineRegistry::instance().make(GetParam(), cheap_tuning());
  prop::check_property(
      ("conservation[" + GetParam() + "]").c_str(), /*cases=*/25,
      /*seed=*/0xC0FFEE ^ std::hash<std::string>{}(GetParam()), kLo, kHi,
      [&](const CaseParams& p) { return conservation_holds(scheme, p); });
}

TEST_P(BaselineProperty, DigestInvariantAcrossShardsThreadsAndReruns) {
  const BaselineScheme scheme =
      BaselineRegistry::instance().make(GetParam(), cheap_tuning());
  prop::check_property(
      ("digest-invariance[" + GetParam() + "]").c_str(), /*cases=*/25,
      /*seed=*/0xD16E57 ^ std::hash<std::string>{}(GetParam()), kLo, kHi,
      [&](const CaseParams& p) { return digests_invariant(scheme, p); });
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, BaselineProperty,
    testing::ValuesIn(BaselineRegistry::instance().names()),
    [](const testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Golden digest pin: one fixed world per scheme. A mismatch means the
// scheme's provisioning, shaping, or capture behaviour changed — if
// intentional, update tests/golden/baseline_digests.txt with the digest
// printed below (same re-bless flow as digests.txt, docs/testing.md).
TEST(BaselineGoldenDigest, FixedWorldDigestsMatchCheckedIn) {
  std::ifstream in(std::string(ALPHAWAN_GOLDEN_DIR) +
                   "/baseline_digests.txt");
  ASSERT_TRUE(in.good()) << "missing tests/golden/baseline_digests.txt";
  std::map<std::string, std::string> golden;
  std::string name, hex;
  while (in >> name >> hex) golden[name] = hex;

  // A concurrent burst over few decoders: enough same-channel same-SF
  // overlap that every scheme's signature actually shows (capture rescues,
  // CSMA deferrals, slot alignment, planner re-homing).
  CaseParams p;
  p.gateways_per_net = 3;
  p.nodes_per_net = 24;
  p.decoders = 4;
  p.burst = true;
  p.seed = 0x5EED;
  for (const auto& scheme_name : BaselineRegistry::instance().names()) {
    const BaselineScheme scheme =
        BaselineRegistry::instance().make(scheme_name, cheap_tuning());
    const std::string digest = digest_hex(scheme_digest(scheme, p, 1, 1));
    const auto it = golden.find(scheme_name);
    ASSERT_NE(it, golden.end())
        << "no golden digest for scheme '" << scheme_name
        << "' — add: " << scheme_name << " " << digest;
    EXPECT_EQ(digest, it->second)
        << "behaviour change in baseline '" << scheme_name
        << "' — if intentional, re-bless with: " << scheme_name << " "
        << digest;
  }
}

}  // namespace
}  // namespace alphawan
