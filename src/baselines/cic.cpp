#include "baselines/cic.hpp"

#include <algorithm>
#include <map>

#include "phy/overlap.hpp"
#include "phy/sensitivity.hpp"

namespace alphawan {
namespace {

std::int64_t freq_bucket(Hz center) {
  return static_cast<std::int64_t>(center / kChannelSpacing);
}

}  // namespace

RxPostProcessor make_cic_processor(CicOptions options) {
  return [options](const Gateway& gw, const std::vector<RxEvent>& events,
                   std::vector<RxOutcome>& outcomes) {
    // Index events by coarse frequency and start time so the
    // overlapping-transmission count is a windowed scan, not O(n) per
    // packet.
    std::map<std::int64_t, std::vector<std::size_t>> by_bucket;
    for (std::size_t i = 0; i < events.size(); ++i) {
      by_bucket[freq_bucket(events[i].tx.channel.center)].push_back(i);
    }
    std::map<std::int64_t, Seconds> longest;
    for (auto& [bucket, indices] : by_bucket) {
      std::sort(indices.begin(), indices.end(),
                [&](std::size_t a, std::size_t b) {
                  return events[a].tx.start < events[b].tx.start;
                });
      Seconds max_dur{0.0};
      for (const auto idx : indices) {
        max_dur =
            std::max(max_dur, events[idx].tx.end() - events[idx].tx.start);
      }
      longest[bucket] = max_dur;
    }

    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      auto& out = outcomes[i];
      if (out.disposition != RxDisposition::kDroppedCollision) continue;
      const auto& ev = events[i];
      // Count simultaneous transmissions on (nearly) the same channel.
      int overlapping = 0;
      const std::int64_t center = freq_bucket(ev.tx.channel.center);
      for (std::int64_t bucket = center - 1;
           bucket <= center + 1 && overlapping < options.max_resolvable;
           ++bucket) {
        const auto it = by_bucket.find(bucket);
        if (it == by_bucket.end()) continue;
        const auto& indices = it->second;
        const auto first = std::lower_bound(
            indices.begin(), indices.end(), ev.tx.start - longest[bucket],
            [&](std::size_t idx, Seconds t) {
              return events[idx].tx.start < t;
            });
        for (auto jt = first; jt != indices.end(); ++jt) {
          const std::size_t j = *jt;
          if (events[j].tx.start >= ev.tx.end()) break;
          if (j == i) continue;
          const auto& other = events[j];
          if (!ev.tx.overlaps_in_time(other.tx)) continue;
          if (overlap_ratio(other.tx.channel, ev.tx.channel) <
              kDetectOverlapThreshold) {
            continue;
          }
          if (++overlapping >= options.max_resolvable) break;
        }
      }
      if (overlapping >= options.max_resolvable) continue;
      // CIC needs workable SNR to pick apart sub-band spectra.
      if (out.snr <
          demod_snr_threshold(ev.tx.params.sf) + options.snr_headroom) {
        continue;
      }
      out.disposition = ev.tx.sync_word == gw.radio().sync_word()
                            ? RxDisposition::kDelivered
                            : RxDisposition::kDecodedForeign;
    }
  };
}

}  // namespace alphawan
