#include "radio/decoder_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace alphawan {

DecoderPool::DecoderPool(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("DecoderPool: capacity must be > 0");
  }
  busy_slots_.reserve(capacity);
}

void DecoderPool::release_expired(Seconds now) {
  // busy_slots_ is sorted by release_at; drop the prefix that has expired.
  auto it = std::upper_bound(
      busy_slots_.begin(), busy_slots_.end(), now,
      [](Seconds t, const Slot& s) { return t < s.release_at; });
  busy_slots_.erase(busy_slots_.begin(), it);
}

std::size_t DecoderPool::busy(Seconds now) {
  release_expired(now);
  return busy_slots_.size();
}

bool DecoderPool::try_acquire(Seconds now, Seconds until, NetworkId network,
                              PacketId packet) {
  release_expired(now);
  if (busy_slots_.size() >= capacity_) return false;
  Slot slot{until, network, packet};
  const auto pos = std::upper_bound(
      busy_slots_.begin(), busy_slots_.end(), slot,
      [](const Slot& a, const Slot& b) { return a.release_at < b.release_at; });
  busy_slots_.insert(pos, slot);
  return true;
}

bool DecoderPool::any_foreign_occupant(NetworkId network) const {
  return std::any_of(busy_slots_.begin(), busy_slots_.end(),
                     [&](const Slot& s) { return s.network != network; });
}

std::vector<PacketId> DecoderPool::occupants() const {
  std::vector<PacketId> ids;
  ids.reserve(busy_slots_.size());
  for (const auto& s : busy_slots_) ids.push_back(s.packet);
  return ids;
}

void DecoderPool::reset() { busy_slots_.clear(); }

}  // namespace alphawan
