// Deterministic, seed-driven fault injection for the backhaul: a layer
// between MessageBus and the Engine that can drop, duplicate, delay
// (and thereby reorder), truncate, and bit-corrupt payloads per
// (endpoint, direction), plus crash/restart endpoints for a configured
// outage window. Chaos is replayable: every per-message decision derives
// from (FaultPlan::seed, message index), so the same (world seed,
// FaultPlan) always produces the same event sequence — the chaos property
// suite (tests/property/test_prop_chaos.cpp) depends on this.
//
// The injector is OFF unless explicitly attached to a bus
// (`MessageBus::set_fault_injector`); the detached fast path is a single
// pointer branch in `MessageBus::send`. See docs/robustness.md for the
// FaultPlan schema and the recovery guarantees the control plane layers
// on top.
#pragma once

#include <cstdint>
#include <vector>

#include "backhaul/bus.hpp"
#include "common/rng.hpp"

namespace alphawan {

// Which leg of a message a rule applies to: kTx matches the rule's
// endpoint as the SENDER, kRx as the RECEIVER.
enum class FaultDirection : std::uint8_t { kTx, kRx };

// Per-message fault probabilities. Each applicable spec is evaluated
// independently (see FaultPlan), so effective rates compose.
struct FaultSpec {
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;   // one extra copy per triggering spec
  double delay_prob = 0.0;       // extra latency => reordering
  Seconds delay_min{0.01};
  Seconds delay_max{0.5};
  double truncate_prob = 0.0;    // cut to a random prefix (possibly empty)
  double corrupt_prob = 0.0;     // flip 1..max_bit_flips random bits
  int max_bit_flips = 4;

  [[nodiscard]] bool any() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 || delay_prob > 0.0 ||
           truncate_prob > 0.0 || corrupt_prob > 0.0;
  }
};

// A spec scoped to one endpoint and one direction.
struct FaultRule {
  EndpointId endpoint;
  FaultDirection direction = FaultDirection::kRx;
  FaultSpec spec;
};

// Crash `endpoint` at `start` and restore it `duration` later
// (MessageBus::set_down both ways). While down the endpoint neither
// sends nor receives; in-flight deliveries drop and are counted.
struct OutageSpec {
  EndpointId endpoint;
  Seconds start{0.0};
  Seconds duration{1.0};
};

// Declarative chaos schedule. For each message the injector evaluates, in
// order: `everywhere` (once), then the first matching (sender, kTx) rule,
// then the first matching (receiver, kRx) rule. Drop short-circuits;
// duplicate/delay/truncate/corrupt decisions accumulate across specs.
struct FaultPlan {
  std::uint64_t seed = 1;
  FaultSpec everywhere;
  std::vector<FaultRule> rules;
  std::vector<OutageSpec> outages;

  [[nodiscard]] bool any_message_faults() const {
    if (everywhere.any()) return true;
    for (const auto& rule : rules) {
      if (rule.spec.any()) return true;
    }
    return false;
  }
};

// Counters for everything the injector did; part of the deterministic
// replay surface (the chaos digest folds them in).
struct FaultStats {
  std::size_t messages_seen = 0;
  std::size_t dropped = 0;
  std::size_t duplicated = 0;
  std::size_t delayed = 0;
  std::size_t truncated = 0;
  std::size_t corrupted = 0;
  std::size_t crashes = 0;
  std::size_t restarts = 0;
};

class FaultInjector {
 public:
  using RestartHook = std::function<void(const EndpointId&)>;

  // Attaches itself to `bus`; the injector must outlive the bus traffic
  // (detaches again on destruction).
  FaultInjector(MessageBus& bus, FaultPlan plan);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedule the plan's outage windows on the bus's engine. Call once,
  // before running the engine past the first outage start.
  void arm_outages();

  // Invoked (after the bus endpoint is restored) at the end of every
  // outage window — the hook endpoints use to re-sync ("re-request on
  // reconnect"). Runs inside the engine's restore event.
  void set_restart_hook(RestartHook hook) { restart_hook_ = std::move(hook); }

  // Called by MessageBus::send for every message while attached. Applies
  // the plan and re-enters MessageBus::schedule_delivery for each
  // surviving copy.
  void route(const EndpointId& from, const EndpointId& to, Seconds base_delay,
             std::vector<std::uint8_t> payload);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

 private:
  [[nodiscard]] const FaultSpec* rule_for(const EndpointId& endpoint,
                                          FaultDirection direction) const;

  MessageBus& bus_;
  FaultPlan plan_;
  bool active_ = false;  // any_message_faults(), precomputed
  Rng root_;
  std::uint64_t message_index_ = 0;
  FaultStats stats_;
  RestartHook restart_hook_;
};

}  // namespace alphawan
