#!/usr/bin/env python3
"""Compare a bench telemetry JSON against the committed baseline.

Both files follow the alphawan-bench-v1 schema written by
bench/harness.hpp's PerfRecorder: a list of {name, packets, wall_s,
packets_per_sec, threads} records.

The check compares the packets_per_sec RATIO current/baseline per
benchmark name, never absolute wall seconds: the baseline was recorded on
a different machine, and within one machine wall time scales with how
much work the bench ran (smoke vs full mode), while sustained throughput
for the same hot path is comparable. A ratio below (1 - tolerance) for
any benchmark present in both files fails the check (exit 1); benchmarks
present on only one side are reported but never fail it.

Usage:
  scripts/check_bench_regression.py CURRENT.json [BASELINE.json] [--tolerance 0.30]

When BASELINE.json is omitted, the latest committed BENCH_PR<N>.json in the
repository root (highest N) is used, so the CI gate follows the perf
trajectory without a hardcoded filename to forget on each PR.
"""

import argparse
import json
import re
import sys
from pathlib import Path


def latest_committed_baseline():
    """The repo-root BENCH_PR<N>.json with the highest N, or None."""
    repo_root = Path(__file__).resolve().parent.parent
    best = None
    best_n = -1
    for path in repo_root.glob("BENCH_PR*.json"):
        match = re.fullmatch(r"BENCH_PR(\d+)\.json", path.name)
        if match and int(match.group(1)) > best_n:
            best_n = int(match.group(1))
            best = path
    return best


def load_records(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "alphawan-bench-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    records = {}
    for rec in doc.get("benchmarks", []):
        records[rec["name"]] = float(rec["packets_per_sec"])
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=None,
        help="baseline JSON (default: latest committed BENCH_PR<N>.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="maximum allowed fractional throughput drop (default 0.30)",
    )
    args = parser.parse_args()

    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = latest_committed_baseline()
        if baseline_path is None:
            sys.exit("no BENCH_PR<N>.json baseline found in the repo root")
        print(f"  baseline: {baseline_path.name} (latest committed)")

    current = load_records(args.current)
    baseline = load_records(baseline_path)

    failed = False
    for name in sorted(current.keys() | baseline.keys()):
        cur = current.get(name)
        base = baseline.get(name)
        if cur is None or base is None:
            side = "baseline" if cur is None else "current"
            print(f"  {name}: only in {side} run, skipped")
            continue
        if base <= 0:
            print(f"  {name}: baseline throughput is zero, skipped")
            continue
        ratio = cur / base
        verdict = "ok"
        if ratio < 1.0 - args.tolerance:
            verdict = f"REGRESSION (>{args.tolerance:.0%} drop)"
            failed = True
        print(
            f"  {name}: {cur:,.0f} vs baseline {base:,.0f} pkts/s "
            f"(x{ratio:.2f}) {verdict}"
        )

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
