#include "radio/dispatcher.hpp"

#include <algorithm>

namespace alphawan {

void sort_fcfs(std::vector<DispatchEntry>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const DispatchEntry& a, const DispatchEntry& b) {
              if (a.lock_on != b.lock_on) return a.lock_on < b.lock_on;
              return a.packet < b.packet;
            });
}

DispatchResult dispatch(DecoderPool& pool, const DispatchEntry& entry) {
  DispatchResult result;
  pool.release_expired(entry.lock_on);
  // Record occupancy mix before attempting, so a refusal can be attributed
  // to intra- vs inter-network contention.
  const bool foreign = pool.any_foreign_occupant(entry.network);
  result.acquired =
      pool.try_acquire(entry.lock_on, entry.end, entry.network, entry.packet);
  result.foreign_among_occupants = !result.acquired && foreign;
  return result;
}

}  // namespace alphawan
