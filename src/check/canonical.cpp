#include "check/canonical.hpp"

#include <stdexcept>

namespace alphawan {
namespace {

ChannelModelConfig quiet_channel() {
  ChannelModelConfig cfg;
  cfg.shadowing_sigma_db = Db{0.3};
  cfg.fast_fading_sigma_db = Db{0.1};
  return cfg;
}

ChannelModelConfig urban_channel() {
  ChannelModelConfig cfg;
  cfg.shadowing_sigma_db = Db{3.0};
  cfg.fast_fading_sigma_db = Db{0.8};
  cfg.seed = 11;
  return cfg;
}

EndNode& add_node(Deployment& deployment, Network& network, int grid_channel,
                  DataRate dr, Point pos) {
  NodeRadioConfig cfg;
  cfg.channel = deployment.spectrum().grid_channel(grid_channel);
  cfg.dr = dr;
  cfg.tx_power = Dbm{14.0};
  return network.add_node(deployment.next_node_id(), pos, cfg);
}

Gateway& add_gateway(Deployment& deployment, Network& network, Point pos) {
  auto& gw = network.add_gateway(deployment.next_gateway_id(), pos,
                                 default_profile());
  gw.apply_channels(
      GatewayChannelConfig{standard_plan(deployment.spectrum(), 0).channels});
  return gw;
}

// 30 nodes bursting concurrently at one gateway: decoder contention is the
// dominant loss (the Fig. 2 capacity-gap regime).
CanonicalScenario burst_one_network() {
  CanonicalScenario s;
  s.name = "burst-1net";
  s.seed = 7;
  s.deployment = std::make_unique<Deployment>(Region{Meters{800.0}, Meters{800.0}},
                                              spectrum_1m6(), quiet_channel());
  auto& network = s.deployment->add_network("op-a");
  add_gateway(*s.deployment, network, s.deployment->region().center());
  std::vector<EndNode*> nodes;
  for (int i = 0; i < 30; ++i) {
    nodes.push_back(&add_node(*s.deployment, network, i % 8,
                              static_cast<DataRate>(i % 6),
                              Point{Meters{360.0 + (i % 6) * 25.0}, Meters{370.0 + (i / 6) * 20.0}}));
  }
  PacketIdSource ids;
  s.txs = concurrent_burst(nodes, Seconds{0.0}, ids);
  return s;
}

// Two operators sharing the same standard plan: foreign packets claim
// decoders, so inter-network decoder contention appears (Fig. 4 regime).
CanonicalScenario coexist_two_networks() {
  CanonicalScenario s;
  s.name = "coexist-2net";
  s.seed = 21;
  s.deployment = std::make_unique<Deployment>(Region{Meters{900.0}, Meters{900.0}},
                                              spectrum_1m6(), quiet_channel());
  auto& net_a = s.deployment->add_network("op-a");
  auto& net_b = s.deployment->add_network("op-b");
  add_gateway(*s.deployment, net_a, Point{Meters{430.0}, Meters{450.0}});
  add_gateway(*s.deployment, net_b, Point{Meters{470.0}, Meters{450.0}});
  std::vector<EndNode*> nodes;
  for (int i = 0; i < 20; ++i) {
    nodes.push_back(&add_node(*s.deployment, net_a, i % 8,
                              static_cast<DataRate>(i % 6),
                              Point{Meters{380.0 + (i % 5) * 22.0}, Meters{400.0 + (i / 5) * 18.0}}));
  }
  for (int i = 0; i < 20; ++i) {
    nodes.push_back(&add_node(*s.deployment, net_b, i % 8,
                              static_cast<DataRate>((i + 3) % 6),
                              Point{Meters{460.0 + (i % 5) * 22.0}, Meters{420.0 + (i / 5) * 18.0}}));
  }
  PacketIdSource ids;
  s.txs = staggered_by_lock_on(nodes, Seconds{0.0}, Seconds{0.0008}, ids);
  return s;
}

// Urban fading, duplicated channels, and Poisson arrivals: channel
// contention joins decoder contention (the Fig. 13 at-scale regime,
// shrunk).
CanonicalScenario contention_heavy() {
  CanonicalScenario s;
  s.name = "contention-heavy";
  s.seed = 33;
  s.deployment = std::make_unique<Deployment>(Region{Meters{1200.0}, Meters{1200.0}},
                                              spectrum_1m6(), urban_channel());
  auto& network = s.deployment->add_network("op-a");
  // SX1301-class gateways (8 decoders, not 16): with ~16 packets in flight
  // on average the pool is the bottleneck, so decoder-contention losses are
  // guaranteed alongside the channel-contention ones.
  GatewayProfile profile = default_profile();
  profile.decoders = 8;
  for (const Point pos : {Point{Meters{500.0}, Meters{600.0}}, Point{Meters{700.0}, Meters{600.0}}}) {
    auto& gw = network.add_gateway(s.deployment->next_gateway_id(), pos,
                                   profile);
    gw.apply_channels(GatewayChannelConfig{
        standard_plan(s.deployment->spectrum(), 0).channels});
  }
  std::vector<EndNode*> nodes;
  for (int i = 0; i < 48; ++i) {
    // Only 4 distinct channels for 48 nodes: forced co-channel overlap.
    nodes.push_back(&add_node(*s.deployment, network, i % 4,
                              static_cast<DataRate>(i % 6),
                              Point{Meters{420.0 + (i % 8) * 45.0}, Meters{480.0 + (i / 8) * 40.0}}));
  }
  PacketIdSource ids;
  // ALPHAWAN-LINT-ALLOW(rng-literal-seed: the canonical scenario is a
  // fixed cross-machine fixture; its seed is part of the digest contract)
  Rng traffic_rng(5);
  // A 1-second window at 2 pkt/s/node: ~50-80 packets crammed onto 4
  // channels, overlapping heavily given SF9-SF12 airtimes of 0.2-1.2 s.
  s.txs = poisson_traffic(nodes, Seconds{1.0}, 2.0, traffic_rng, ids);
  sort_by_start(s.txs);
  return s;
}

}  // namespace

const std::vector<std::string>& canonical_names() {
  static const std::vector<std::string> names = {
      "burst-1net", "coexist-2net", "contention-heavy"};
  return names;
}

CanonicalScenario make_canonical(std::string_view name) {
  if (name == "burst-1net") return burst_one_network();
  if (name == "coexist-2net") return coexist_two_networks();
  if (name == "contention-heavy") return contention_heavy();
  throw std::invalid_argument("unknown canonical scenario: " +
                              std::string(name));
}

std::uint64_t canonical_digest(std::string_view name) {
  CanonicalScenario s = make_canonical(name);
  ScenarioRunner runner(*s.deployment, s.seed);
  const WindowResult result = runner.run_window(s.txs);
  return fate_digest(result.fates);
}

}  // namespace alphawan
