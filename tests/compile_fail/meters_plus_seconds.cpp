// Compile-fail case: mixing distance with time
//
// Without CF_MISUSE this file must compile (positive control proving the
// harness sees a working translation unit). With -DCF_MISUSE it must NOT
// compile — ctest runs both variants (see CMakeLists.txt).
#include "common/units.hpp"

using namespace alphawan;

constexpr Meters ok = Meters{100.0} + Meters{50.0};
#ifdef CF_MISUSE
constexpr Meters bad = Meters{100.0} + Seconds{1.0};  // cross-unit addition
#endif

int main() { return 0; }
