#!/usr/bin/env python3
"""Baseline mechanics for alphawan-lint (run by ctest as
lint.baseline_mechanics).

Covers the suppression-file lifecycle end to end:
  1. --write-baseline over a file with findings, then a re-run against that
     baseline, must be clean (exit 0);
  2. fixing one finding makes its baseline entry STALE and the run fails --
     the baseline is shrink-only, it can never rot;
  3. scripts/check_lint_baseline.py accepts an unchanged/shrunk baseline
     and rejects a grown one.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.normpath(os.path.join(HERE, "..", ".."))
DRIVER = os.path.join(REPO, "tools", "lint", "alphawan_lint.py")
CHECKER = os.path.join(REPO, "scripts", "check_lint_baseline.py")
FIXTURE = os.path.join(HERE, "ordering_positive.cpp")


def run(*argv):
    proc = subprocess.run([sys.executable, *argv], capture_output=True,
                          text=True)
    return proc.returncode, proc.stdout + proc.stderr


def fail(msg, output=""):
    print(f"FAIL: {msg}\n{output}", file=sys.stderr)
    sys.exit(1)


def main():
    tmp = tempfile.mkdtemp(prefix="alphawan_lint_baseline_")
    try:
        # Stage the fixture inside a scratch tree shaped like the repo
        # (src/radio/...), and point the driver's --root at it so path
        # scoping applies without touching the real tree.
        baseline = os.path.join(tmp, "baseline.json")

        # Step 1: record, then re-run against the recording -> clean.
        code, out = run(DRIVER, "--fixture", FIXTURE,
                        "--as-path", "src/radio/ordering_positive.cpp")
        if code != 1:
            fail("fixture should have findings before baselining", out)

        staged_dir = os.path.join(tmp, "src", "radio")
        os.makedirs(staged_dir)
        staged = os.path.join(staged_dir, "ordering_probe.hpp")
        shutil.copyfile(FIXTURE, staged)

        code, out = run(DRIVER, "--root", tmp, staged,
                        "--baseline", baseline, "--write-baseline")
        if code != 0:
            fail("--write-baseline should exit 0", out)
        with open(baseline, encoding="utf-8") as fh:
            entries = json.load(fh)["entries"]
        if len(entries) != 2:
            fail(f"expected 2 baseline entries, got {len(entries)}")
        code, out = run(DRIVER, "--root", tmp, staged, "--baseline", baseline)
        if code != 0:
            fail("baselined findings must not fail the run", out)

        # Step 2: fix one finding -> its entry is stale -> exit 1.
        with open(staged, encoding="utf-8") as fh:
            text = fh.read()
        with open(staged, "w", encoding="utf-8") as fh:
            fh.write(text.replace("std::set<DecoderPool*> active_pools;",
                                  "int active_pool_count = 0;"))
        code, out = run(DRIVER, "--root", tmp, staged, "--baseline", baseline)
        if code != 1 or "stale baseline entry" not in out:
            fail("stale baseline entry must fail the run", out)

        # Step 3: growth gate.
        shrunk = os.path.join(tmp, "shrunk.json")
        grown = os.path.join(tmp, "grown.json")
        with open(baseline, encoding="utf-8") as fh:
            data = json.load(fh)
        with open(shrunk, "w", encoding="utf-8") as fh:
            json.dump({"version": 1, "entries": data["entries"][:1]}, fh)
        with open(grown, "w", encoding="utf-8") as fh:
            json.dump({"version": 1, "entries": data["entries"] + [
                {"file": "src/x.cpp", "check": "determinism-wallclock",
                 "context": "steady_clock::now();", "count": 1}]}, fh)

        code, out = run(CHECKER, "--baseline", shrunk, "--against-file",
                        baseline)
        if code != 0:
            fail("shrinking the baseline must pass", out)
        code, out = run(CHECKER, "--baseline", grown, "--against-file",
                        baseline)
        if code != 1:
            fail("growing the baseline must fail", out)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    print("lint.baseline_mechanics OK")


if __name__ == "__main__":
    main()
