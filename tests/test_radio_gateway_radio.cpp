// Tests of the COTS gateway radio model against the black-box behaviours
// the paper measured in Sec. 3.1 (Figs. 3a-3f) and Appendix C.
#include "radio/gateway_radio.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "phy/band_plan.hpp"
#include "phy/capture.hpp"
#include "phy/overlap.hpp"
#include "net/sync_word.hpp"
#include "common/rng.hpp"

namespace alphawan {
namespace {

const Spectrum kSpec = spectrum_1m6();

GatewayRadio make_radio(NetworkId network = 0, int num_channels = 8) {
  GatewayRadio radio(default_profile(), network,
                     sync_word_for_network(network));
  std::vector<Channel> channels;
  for (int i = 0; i < num_channels; ++i) {
    channels.push_back(kSpec.grid_channel(i));
  }
  radio.configure_channels(channels);
  return radio;
}

Transmission make_tx(PacketId id, int channel, SpreadingFactor sf,
                     Seconds start, NetworkId network = 0) {
  Transmission tx;
  tx.id = id;
  tx.node = static_cast<NodeId>(id);
  tx.network = network;
  tx.sync_word = sync_word_for_network(network);
  tx.channel = kSpec.grid_channel(channel);
  tx.params.sf = sf;
  tx.start = start;
  return tx;
}

// 20 concurrent packets on orthogonal (channel, SF) pairs, staggered so
// lock-on order equals packet order (the paper's Scheme (b)).
std::vector<RxEvent> twenty_orthogonal(NetworkId network = 0,
                                       Dbm power = Dbm{-80.0}) {
  std::vector<RxEvent> events;
  for (int i = 0; i < 20; ++i) {
    const int channel = i % 8;
    const auto sf = sf_from_index((i / 8) % kNumSpreadingFactors);
    Transmission tx = make_tx(static_cast<PacketId>(i + 1), channel, sf,
                              Seconds{0.0}, network);
    // Shift start so lock-on lands at slot i (1 ms slots).
    tx.start = Seconds{0.001 * (i + 1)} - preamble_duration(tx.params);
    events.push_back(RxEvent{tx, power});
  }
  return events;
}

std::size_t count(const std::vector<RxOutcome>& outcomes, RxDisposition d) {
  return static_cast<std::size_t>(
      std::count_if(outcomes.begin(), outcomes.end(),
                    [&](const RxOutcome& o) { return o.disposition == d; }));
}

TEST(GatewayRadio, ConfigRejectsTooManyChannels) {
  GatewayRadio radio(default_profile(), 0, kPublicSyncWord);
  std::vector<Channel> nine;
  for (int i = 0; i < 8; ++i) nine.push_back(kSpec.grid_channel(i));
  nine.push_back(Channel{kSpec.grid_center(7) + Hz{10e3}, kLoRaBandwidth125k});
  EXPECT_THROW(radio.configure_channels(nine), std::invalid_argument);
}

TEST(GatewayRadio, ConfigRejectsExcessiveSpan) {
  GatewayRadio radio(default_profile(), 0, kPublicSyncWord);
  const Spectrum wide = spectrum_4m8();
  // Two channels 4.6 MHz apart exceed the 1.6 MHz radio bandwidth.
  EXPECT_THROW(radio.configure_channels(
                   {wide.grid_channel(0), wide.grid_channel(23)}),
               std::invalid_argument);
}

TEST(GatewayRadio, ConfigRejectsEmpty) {
  GatewayRadio radio(default_profile(), 0, kPublicSyncWord);
  EXPECT_THROW(radio.configure_channels({}), std::invalid_argument);
}

TEST(GatewayRadio, SixteenDecoderLimit) {
  // The paper's headline observation: 20 collision-free concurrent packets,
  // only 16 received (Fig. 3b).
  auto radio = make_radio();
  const auto outcomes = radio.process(twenty_orthogonal());
  EXPECT_EQ(count(outcomes, RxDisposition::kDelivered), 16u);
  EXPECT_EQ(count(outcomes, RxDisposition::kDroppedDecoderBusy), 4u);
}

TEST(GatewayRadio, FcfsDropsTheLateLockOns) {
  // Scheme (b): lock-on order == node order, so exactly nodes 17-20 drop.
  auto radio = make_radio();
  const auto outcomes = radio.process(twenty_orthogonal());
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(outcomes[static_cast<std::size_t>(i)].disposition,
              RxDisposition::kDelivered)
        << "node " << i + 1;
  }
  for (int i = 16; i < 20; ++i) {
    EXPECT_EQ(outcomes[static_cast<std::size_t>(i)].disposition,
              RxDisposition::kDroppedDecoderBusy)
        << "node " << i + 1;
  }
}

TEST(GatewayRadio, SchemeADropsByLockOnNotStartOrder) {
  // Scheme (a): *starts* are ordered, but SF12 preambles are ~32x longer
  // than SF7 ones, so lock-on order differs from start order. The set of
  // dropped packets must follow lock-on order.
  auto radio = make_radio();
  std::vector<RxEvent> events;
  for (int i = 0; i < 20; ++i) {
    const int channel = i % 8;
    // Mix of SFs so preamble lengths differ wildly.
    const auto sf = sf_from_index((i * 5) % kNumSpreadingFactors);
    Transmission tx = make_tx(static_cast<PacketId>(i + 1), channel, sf,
                              Seconds{0.001 * (i + 1)});
    events.push_back(RxEvent{tx, Dbm{-80.0}});
  }
  const auto outcomes = radio.process(events);
  // Mixed preamble lengths scramble lock-on order relative to start order,
  // and short packets can release decoders before long preambles finish —
  // so the count can exceed 16, never fall below.
  EXPECT_GE(count(outcomes, RxDisposition::kDelivered), 16u);
  // FCFS invariant: a packet is dropped iff 16 decoders were held at its
  // lock-on instant; held = an earlier-locking, still-airing packet that
  // did consume a decoder.
  auto held_at = [&](Seconds t) {
    std::size_t held = 0;
    for (std::size_t j = 0; j < events.size(); ++j) {
      if (!consumed_decoder(outcomes[j].disposition)) continue;
      if (events[j].tx.lock_on() < t && events[j].tx.end() > t) ++held;
    }
    return held;
  };
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Seconds lock = events[i].tx.lock_on();
    if (outcomes[i].disposition == RxDisposition::kDroppedDecoderBusy) {
      EXPECT_GE(held_at(lock), 16u) << "packet " << i;
    } else {
      ASSERT_TRUE(consumed_decoder(outcomes[i].disposition));
      EXPECT_LT(held_at(lock), 16u) << "packet " << i;
    }
  }
}

TEST(GatewayRadio, NoSnrPriority) {
  // Fig. 3c: low-SNR (but decodable) packets are not preempted by strong
  // ones — only lock-on order matters.
  auto radio = make_radio();
  auto events = twenty_orthogonal();
  // Make the first 16 arrivals weaker and the last 4 stronger (within the
  // cross-SF orthogonality tolerance, as in the paper's controlled SNR
  // experiment).
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].rx_power = i < 16 ? Dbm{-86.0} : Dbm{-80.0};
  }
  const auto outcomes = radio.process(events);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(outcomes[i].disposition, RxDisposition::kDelivered);
  }
  for (std::size_t i = 16; i < 20; ++i) {
    EXPECT_EQ(outcomes[i].disposition, RxDisposition::kDroppedDecoderBusy);
  }
}

TEST(GatewayRadio, ChannelFairness) {
  // Fig. 3d: packets from crowded channels and idle channels are treated
  // alike; drops depend only on lock-on rank.
  auto radio = make_radio();
  std::vector<RxEvent> events;
  // 15 packets crowd channels 0-2; 5 packets sit alone on channels 3-7.
  for (int i = 0; i < 20; ++i) {
    const int channel = i < 15 ? i % 3 : 3 + (i - 15);
    const auto sf = sf_from_index(i % kNumSpreadingFactors);
    Transmission tx = make_tx(static_cast<PacketId>(i + 1), channel, sf,
                              Seconds{0.0});
    tx.start = Seconds{0.001 * (i + 1)} - preamble_duration(tx.params);
    events.push_back(RxEvent{tx, Dbm{-80.0}});
  }
  const auto outcomes = radio.process(events);
  // Lock-on order is the index order; last 4 drop regardless of channel.
  for (std::size_t i = 16; i < 20; ++i) {
    EXPECT_EQ(outcomes[i].disposition, RxDisposition::kDroppedDecoderBusy);
  }
}

TEST(GatewayRadio, ForeignPacketsConsumeDecoders) {
  // Figs. 3e/3f: packets of another network are decoded (occupying
  // decoders) and only then filtered by sync word.
  auto radio = make_radio(/*network=*/0);
  // 20 mutually orthogonal (channel, SF) pairs; the 10 with the earliest
  // lock-ons belong to the foreign network.
  auto events = twenty_orthogonal();
  for (std::size_t i = 0; i < 10; ++i) {
    events[i].tx.network = 1;
    events[i].tx.sync_word = sync_word_for_network(1);
  }
  const auto outcomes = radio.process(events);
  EXPECT_EQ(count(outcomes, RxDisposition::kDecodedForeign), 10u);
  // Only 6 decoders remain for the 10 own packets.
  EXPECT_EQ(count(outcomes, RxDisposition::kDelivered), 6u);
  EXPECT_EQ(count(outcomes, RxDisposition::kDroppedDecoderBusy), 4u);
  // The drops must be flagged as inter-network contention.
  for (const auto& out : outcomes) {
    if (out.disposition == RxDisposition::kDroppedDecoderBusy) {
      EXPECT_TRUE(out.foreign_among_occupants);
    }
  }
}

TEST(GatewayRadio, FrontEndRejectsMisalignedChannels) {
  // Strategy 8: a packet 40% misaligned from every operating channel never
  // consumes a decoder.
  auto radio = make_radio();
  Transmission tx = make_tx(1, 0, SpreadingFactor::kSF7, Seconds{0.0});
  tx.channel.center += 0.4 * kLoRaBandwidth125k + Hz{20e3};
  const auto outcomes = radio.process({RxEvent{tx, Dbm{-60.0}}});
  EXPECT_EQ(outcomes[0].disposition, RxDisposition::kRejectedFrontEnd);
}

TEST(GatewayRadio, WeakPacketNotDetected) {
  auto radio = make_radio();
  Transmission tx = make_tx(1, 0, SpreadingFactor::kSF7, Seconds{0.0});
  // SF7 threshold is -7.5 dB SNR; noise floor ~-117 dBm -> -130 dBm is
  // undetectable.
  const auto outcomes = radio.process({RxEvent{tx, Dbm{-130.0}}});
  EXPECT_EQ(outcomes[0].disposition, RxDisposition::kNotDetected);
}

TEST(GatewayRadio, SubNoisePacketStillReceivedAtHighSf) {
  // LoRa's signature: SF12 decodes ~20 dB below noise. This is why
  // directional antennas cannot silence off-axis users (Fig. 7).
  auto radio = make_radio();
  Transmission tx = make_tx(1, 0, SpreadingFactor::kSF12, Seconds{0.0});
  const auto outcomes = radio.process({RxEvent{tx, Dbm{-133.0}}});  // SNR ~-16
  EXPECT_EQ(outcomes[0].disposition, RxDisposition::kDelivered);
}

TEST(GatewayRadio, SameSfSameChannelCollision) {
  auto radio = make_radio();
  std::vector<RxEvent> events;
  for (int i = 0; i < 2; ++i) {
    Transmission tx = make_tx(static_cast<PacketId>(i + 1), 0,
                              SpreadingFactor::kSF9, Seconds{0.0});
    events.push_back(RxEvent{tx, Dbm{-90.0}});
  }
  const auto outcomes = radio.process(events);
  EXPECT_EQ(count(outcomes, RxDisposition::kDroppedCollision), 2u);
}

TEST(GatewayRadio, CaptureStrongerSameSfPacket) {
  auto radio = make_radio();
  Transmission strong = make_tx(1, 0, SpreadingFactor::kSF9, Seconds{0.0});
  Transmission weak = make_tx(2, 0, SpreadingFactor::kSF9, Seconds{0.0});
  const auto outcomes =
      radio.process({RxEvent{strong, Dbm{-80.0}}, RxEvent{weak, Dbm{-95.0}}});
  EXPECT_EQ(outcomes[0].disposition, RxDisposition::kDelivered);
  EXPECT_EQ(outcomes[1].disposition, RxDisposition::kDroppedCollision);
}

TEST(GatewayRadio, OrthogonalSfShareChannel) {
  auto radio = make_radio();
  std::vector<RxEvent> events;
  for (int i = 0; i < kNumSpreadingFactors; ++i) {
    Transmission tx = make_tx(static_cast<PacketId>(i + 1), 0,
                              sf_from_index(i), Seconds{0.0});
    events.push_back(RxEvent{tx, Dbm{-85.0}});
  }
  const auto outcomes = radio.process(events);
  EXPECT_EQ(count(outcomes, RxDisposition::kDelivered), 6u);
}

TEST(GatewayRadio, FewerChannelsKeepAllDecoders) {
  // Strategy 1 mechanics: with 2 operating channels the same 16 decoders
  // serve far fewer contenders per spectrum slice.
  auto radio = make_radio(0, /*num_channels=*/2);
  std::vector<RxEvent> events;
  // 12 packets on the 2 channels (6 SFs each): all should be received.
  for (int i = 0; i < 12; ++i) {
    Transmission tx = make_tx(static_cast<PacketId>(i + 1), i % 2,
                              sf_from_index(i / 2 % 6), Seconds{0.0});
    tx.start = Seconds{0.0005 * i};
    events.push_back(RxEvent{tx, Dbm{-80.0}});
  }
  const auto outcomes = radio.process(events);
  EXPECT_EQ(count(outcomes, RxDisposition::kDelivered), 12u);
}

TEST(GatewayRadio, Sx1308ProfileHasEightDecoders) {
  GatewayRadio radio(profile_rak7246g(), 0, kPublicSyncWord);
  std::vector<Channel> channels;
  for (int i = 0; i < 8; ++i) channels.push_back(kSpec.grid_channel(i));
  radio.configure_channels(channels);
  const auto outcomes = radio.process(twenty_orthogonal());
  EXPECT_EQ(count(outcomes, RxDisposition::kDelivered), 8u);
}

TEST(GatewayRadio, MisalignedStrongInterfererActsAsNoiseNotCollision) {
  // Strategy 8 physics: a same-SF interferer 15 dB stronger on a channel
  // misaligned by 40% is filter-truncated — it neither collides with nor
  // preempts the wanted packet (an aligned one would destroy it).
  auto radio = make_radio();
  Transmission wanted = make_tx(1, 0, SpreadingFactor::kSF8, Seconds{0.0});
  Transmission foreign = make_tx(2, 0, SpreadingFactor::kSF8, Seconds{0.0}, 1);
  foreign.channel.center += 0.4 * kLoRaBandwidth125k;
  auto outcomes =
      radio.process({RxEvent{wanted, Dbm{-100.0}}, RxEvent{foreign, Dbm{-85.0}}});
  EXPECT_EQ(outcomes[0].disposition, RxDisposition::kDelivered);
  EXPECT_EQ(outcomes[1].disposition, RxDisposition::kRejectedFrontEnd);

  // Control: the same interferer aligned destroys the wanted packet.
  auto radio2 = make_radio();
  Transmission aligned = foreign;
  aligned.channel = wanted.channel;
  outcomes =
      radio2.process({RxEvent{wanted, Dbm{-100.0}}, RxEvent{aligned, Dbm{-85.0}}});
  EXPECT_EQ(outcomes[0].disposition, RxDisposition::kDroppedCollision);
  EXPECT_TRUE(outcomes[0].foreign_interferer);
}

TEST(GatewayRadio, BucketedScanMatchesBruteForce) {
  // Property: the frequency-bucketed interferer scan must agree with a
  // brute-force reference on the *set of delivered packets* for random
  // traffic. The reference here is an independent collision predicate.
  Rng rng(99);
  auto radio = make_radio();
  std::vector<RxEvent> events;
  for (int i = 0; i < 150; ++i) {
    Transmission tx = make_tx(static_cast<PacketId>(i + 1),
                              static_cast<int>(rng.uniform_int(0, 7)),
                              sf_from_index(static_cast<int>(
                                  rng.uniform_int(0, 5))),
                              Seconds{rng.uniform(0.0, 5.0)});
    events.push_back(RxEvent{tx, Dbm{rng.uniform(-95.0, -75.0)}});
  }
  const auto outcomes = radio.process(events);
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (outcomes[i].disposition != RxDisposition::kDelivered) continue;
    // Brute force: no aligned interferer may beat the capture threshold.
    for (std::size_t j = 0; j < events.size(); ++j) {
      if (j == i) continue;
      if (!events[i].tx.overlaps_in_time(events[j].tx)) continue;
      if (overlap_ratio(events[j].tx.channel, events[i].tx.channel) <
          kDetectOverlapThreshold) {
        continue;
      }
      EXPECT_TRUE(survives_interference(
          events[i].tx.params.sf, events[i].rx_power,
          events[j].tx.params.sf, events[j].rx_power))
          << "delivered packet " << i << " should have collided with " << j;
    }
  }
}

TEST(GatewayRadio, AdjacentBucketInterfererIsScanned) {
  // The interferer scan buckets events by coarse frequency
  // (kChannelSpacing) and only walks the wanted packet's own bucket plus
  // its two neighbours. A misaligned interferer whose center falls in the
  // *adjacent* bucket but whose band still grazes the wanted channel must
  // be found there: its filter-truncated energy degrades SNR.
  Transmission wanted = make_tx(1, 0, SpreadingFactor::kSF8, Seconds{0.0});
  Transmission intf = make_tx(2, 0, SpreadingFactor::kSF8, Seconds{0.0}, 1);
  // +120 kHz crosses the 200 kHz bucket boundary (grid centers sit
  // mid-bucket, 100 kHz below it) while 5 kHz of band still overlaps.
  intf.channel.center += Hz{120e3};
  const auto bucket = [](Hz center) {
    return static_cast<std::int64_t>(center / kChannelSpacing);
  };
  ASSERT_NE(bucket(wanted.channel.center), bucket(intf.channel.center));
  ASSERT_GT(overlap_ratio(intf.channel, wanted.channel), 0.0);

  // Control: alone, the wanted packet is received.
  auto alone = make_radio();
  EXPECT_EQ(alone.process({RxEvent{wanted, Dbm{-100.0}}})[0].disposition,
            RxDisposition::kDelivered);

  // With the strong cross-bucket interferer, residual in-band energy
  // swamps the SNR. The interferer itself is front-end rejected — its RF
  // energy interferes anyway.
  auto radio = make_radio();
  const auto outcomes =
      radio.process({RxEvent{wanted, Dbm{-100.0}}, RxEvent{intf, Dbm{-30.0}}});
  EXPECT_EQ(outcomes[1].disposition, RxDisposition::kRejectedFrontEnd);
  EXPECT_EQ(outcomes[0].disposition, RxDisposition::kDroppedLowSnr);
}

TEST(GatewayRadio, LookbackBoundaryInterfererEndingAtStartIsHarmless) {
  // The scan's lower_bound starts at exactly ev.start - lookback, where
  // lookback is the bucket's longest airtime. An interferer sitting
  // precisely on that boundary ends exactly at ev.start: it must be
  // scanned (lower_bound includes the equal key) yet cause nothing —
  // airtime intervals are half-open, touching is not overlapping.
  Transmission wanted = make_tx(1, 0, SpreadingFactor::kSF9, Seconds{10.0});
  Transmission intf = make_tx(2, 0, SpreadingFactor::kSF9, Seconds{0.0});
  const Seconds duration = intf.end() - intf.start;
  intf.start = wanted.start - duration;  // intf.end() == wanted.start
  {
    auto radio = make_radio();
    const auto outcomes =
        radio.process({RxEvent{wanted, Dbm{-90.0}}, RxEvent{intf, Dbm{-60.0}}});
    EXPECT_EQ(outcomes[0].disposition, RxDisposition::kDelivered);
    EXPECT_EQ(outcomes[1].disposition, RxDisposition::kDelivered);
  }
  // One millisecond later the same interferer genuinely overlaps and its
  // 30 dB advantage destroys the wanted packet.
  intf.start = intf.start + Seconds{0.001};
  {
    auto radio = make_radio();
    const auto outcomes =
        radio.process({RxEvent{wanted, Dbm{-90.0}}, RxEvent{intf, Dbm{-60.0}}});
    EXPECT_EQ(outcomes[0].disposition, RxDisposition::kDroppedCollision);
    EXPECT_EQ(outcomes[1].disposition, RxDisposition::kDelivered);
  }
}

TEST(GatewayRadio, ForwardScanStopsAtEventsStartingAtWantedEnd) {
  // Mirror boundary: the forward scan breaks at the first event whose
  // start reaches ev.end. An interferer starting exactly there shares no
  // airtime; one starting a millisecond earlier collides.
  Transmission wanted = make_tx(1, 0, SpreadingFactor::kSF9, Seconds{0.0});
  Transmission intf = make_tx(2, 0, SpreadingFactor::kSF9, wanted.end());
  {
    auto radio = make_radio();
    const auto outcomes =
        radio.process({RxEvent{wanted, Dbm{-90.0}}, RxEvent{intf, Dbm{-60.0}}});
    EXPECT_EQ(outcomes[0].disposition, RxDisposition::kDelivered);
    EXPECT_EQ(outcomes[1].disposition, RxDisposition::kDelivered);
  }
  intf.start = wanted.end() - Seconds{0.001};
  {
    auto radio = make_radio();
    const auto outcomes =
        radio.process({RxEvent{wanted, Dbm{-90.0}}, RxEvent{intf, Dbm{-60.0}}});
    EXPECT_EQ(outcomes[0].disposition, RxDisposition::kDroppedCollision);
    EXPECT_EQ(outcomes[1].disposition, RxDisposition::kDelivered);
  }
}

TEST(GatewayRadio, DecoderFreedAfterPacketEnd) {
  // Sequential (non-overlapping) packets never contend, regardless of
  // count.
  auto radio = make_radio();
  std::vector<RxEvent> events;
  Seconds t{0.0};
  for (int i = 0; i < 40; ++i) {
    Transmission tx = make_tx(static_cast<PacketId>(i + 1), i % 8,
                              SpreadingFactor::kSF7, t);
    t = tx.end() + Seconds{0.001};
    events.push_back(RxEvent{tx, Dbm{-80.0}});
  }
  const auto outcomes = radio.process(events);
  EXPECT_EQ(count(outcomes, RxDisposition::kDelivered), 40u);
}

}  // namespace
}  // namespace alphawan
