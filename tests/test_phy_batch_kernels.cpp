// Kernel-level differential tests of the batched PHY receive kernels
// (phy/batch_kernels.hpp) against their scalar references, on synthetic
// SoA buckets the tests control exactly — the property suite
// (tests/property/test_prop_kernels.cpp) covers whole-pipeline worlds;
// here each kernel is driven in isolation, including the edge shapes:
// empty buckets, a single event, and the monotone-cursor protocol.
#include "phy/batch_kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "phy/band_plan.hpp"
#include "phy/lora_params.hpp"

namespace alphawan {
namespace {

const Spectrum kSpec = spectrum_1m6();

// ---- keyed substream batching --------------------------------------------

TEST(SubstreamBatch, MatchesTwoKeySubstreamBitForBit) {
  const Rng root(0xFEED5EEDULL);
  const std::uint64_t a = 0xFAD1'F0E5'7A7EULL ^ (std::uint64_t{7} << 40);
  const SubstreamBatch batch(root, a);
  for (const std::uint64_t b : {0ULL, 1ULL, 42ULL, 0xFFFF'FFFF'FFFFULL}) {
    Rng direct = root.substream(a, b);
    Rng batched = batch.at(b);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(direct.next(), batched.next()) << "key " << b << " draw " << i;
    }
  }
}

TEST(BatchFadingDraws, MatchesScalarNormalOnceDraws) {
  const Rng root(20260808ULL);
  const std::uint64_t domain = 0xFAD1'F0E5'7A7EULL ^ (std::uint64_t{3} << 40);
  const SubstreamBatch stream(root, domain);
  const double sigma = 2.5;

  std::vector<PacketId> packets = {901, 17, 17, 5000, 1, 902};
  std::vector<std::uint32_t> tx_index = {5, 0, 2, 3};  // arbitrary subset
  std::vector<double> out(tx_index.size());
  batch_fading_draws(stream, packets.data(), tx_index.data(), tx_index.size(),
                     sigma, out.data());
  for (std::size_t k = 0; k < tx_index.size(); ++k) {
    Rng scalar = root.substream(domain, packets[tx_index[k]]);
    EXPECT_EQ(out[k], scalar.normal_once(0.0, sigma)) << "draw " << k;
  }
}

TEST(BatchFadingDraws, EmptyBatchWritesNothing) {
  const Rng root(1ULL);
  const SubstreamBatch stream(root, 99);
  double sentinel = 123.0;
  batch_fading_draws(stream, nullptr, nullptr, 0, 1.0, &sentinel);
  EXPECT_EQ(sentinel, 123.0);
}

// ---- candidate rx-power filter -------------------------------------------

TEST(BatchRxPowerFilter, MatchesScalarExpressionAndCompacts) {
  std::vector<LinkGain> gains = {
      LinkGain{Db{70.0}, Db{2.0}},
      LinkGain{Db{120.0}, Db{0.0}},
      LinkGain{Db{95.5}, Db{-1.5}},
  };
  std::vector<std::uint32_t> row_of_tx = {0, 1, 2, 1, 0};
  std::vector<Dbm> tx_power = {Dbm{14.0}, Dbm{14.0}, Dbm{12.0}, Dbm{20.0},
                               Dbm{2.0}};
  std::vector<std::uint32_t> idx = {0, 1, 2, 3, 4};
  std::vector<double> fading = {0.5, -3.0, 1.25, 4.0, -0.75};
  const Dbm floor{-100.0};

  std::vector<std::uint32_t> expect_idx;
  std::vector<Dbm> expect_power;
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const LinkGain g = gains[row_of_tx[idx[k]]];
    const Dbm rx =
        tx_power[idx[k]] - g.path_loss + Db{fading[k]} + g.antenna_gain;
    if (rx < floor) continue;
    expect_idx.push_back(idx[k]);
    expect_power.push_back(rx);
  }
  ASSERT_FALSE(expect_idx.empty());
  ASSERT_LT(expect_idx.size(), idx.size());  // the case exercises both fates

  std::vector<Dbm> out_power(idx.size(), Dbm{-400.0});
  const std::size_t kept = batch_rx_power_filter(
      gains, row_of_tx.data(), tx_power.data(), fading.data(), floor,
      idx.data(), idx.size(), out_power.data());
  ASSERT_EQ(kept, expect_idx.size());
  for (std::size_t k = 0; k < kept; ++k) {
    EXPECT_EQ(idx[k], expect_idx[k]);
    EXPECT_EQ(out_power[k].value(), expect_power[k].value());
  }
}

TEST(BatchRxPowerFilter, EmptyBatchKeepsNothing) {
  std::vector<LinkGain> gains = {LinkGain{}};
  EXPECT_EQ(batch_rx_power_filter(gains, nullptr, nullptr, nullptr,
                                  Dbm{-100.0}, nullptr, 0, nullptr),
            0u);
}

// ---- synthetic uniform buckets for the scan kernels ----------------------

struct SyntheticBucket {
  std::vector<Seconds> start;
  std::vector<Seconds> end;
  std::vector<double> lin_power;
  std::vector<Channel> channel;
  std::vector<Dbm> power;
  std::vector<SpreadingFactor> sf;
  std::vector<NetworkId> net;
  std::vector<std::uint32_t> order;     // start-sorted event indices
  std::vector<std::uint32_t> order_sf;  // stable SF regrouping of `order`
  std::vector<std::uint32_t> pos_sf;    // bucket rank of each order_sf entry
  std::vector<SfGroup> groups;
  Seconds lookback{0.0};

  [[nodiscard]] RxScanSoA soa() const {
    return RxScanSoA{start.data(), end.data(),   lin_power.data(),
                     channel.data(), power.data(), sf.data(),
                     net.data()};
  }
};

// A random uniform-channel bucket, grouped exactly the way
// GatewayRadio::build_sf_groups_and_memos does it (stable counting sort by
// SF over the start-sorted order).
SyntheticBucket make_bucket(Rng& rng, std::size_t count, const Channel& ch) {
  SyntheticBucket b;
  for (std::size_t i = 0; i < count; ++i) {
    const Seconds start{rng.uniform(0.0, 0.8)};
    const Seconds dur{rng.uniform(0.02, 0.2)};
    const Dbm power{rng.uniform(-135.0, -55.0)};
    b.start.push_back(start);
    b.end.push_back(start + dur);
    b.power.push_back(power);
    b.lin_power.push_back(batch_detail::dbm_to_lin(power));
    b.channel.push_back(ch);
    b.sf.push_back(sf_from_index(
        static_cast<int>(rng.uniform_int(0, kNumSpreadingFactors - 1))));
    b.net.push_back(static_cast<NetworkId>(rng.uniform_int(0, 2)));
  }
  b.order.resize(count);
  std::iota(b.order.begin(), b.order.end(), 0u);
  std::sort(b.order.begin(), b.order.end(),
            [&](std::uint32_t x, std::uint32_t y) {
              if (b.start[x] != b.start[y]) return b.start[x] < b.start[y];
              return x < y;
            });
  Seconds longest{0.0};
  for (std::size_t i = 0; i < count; ++i) {
    longest = std::max(longest, b.end[i] - b.start[i]);
  }
  b.lookback = longest;

  // Stable counting sort by SF, mirroring build_sf_groups_and_memos.
  std::uint32_t counts[kNumSpreadingFactors] = {};
  Dbm max_power[kNumSpreadingFactors];
  for (auto& p : max_power) p = Dbm{-400.0};
  for (const std::uint32_t j : b.order) {
    const int s = sf_index(b.sf[j]);
    ++counts[s];
    if (b.power[j] > max_power[s]) max_power[s] = b.power[j];
  }
  std::uint32_t cursor[kNumSpreadingFactors];
  std::uint32_t running = 0;
  for (int s = 0; s < kNumSpreadingFactors; ++s) {
    cursor[s] = running;
    if (counts[s] > 0) {
      b.groups.push_back(
          SfGroup{running, running + counts[s], sf_from_index(s), max_power[s]});
    }
    running += counts[s];
  }
  b.order_sf.resize(count);
  b.pos_sf.resize(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    const std::uint32_t j = b.order[k];
    auto& cur = cursor[sf_index(b.sf[j])];
    b.order_sf[cur] = j;
    b.pos_sf[cur] = k;
    ++cur;
  }
  return b;
}

// Decoded events in ascending (start, index) order — the visit order the
// batched pipeline guarantees the cursor kernels.
std::vector<std::uint32_t> decoded_ascending(const SyntheticBucket& b) {
  std::vector<std::uint32_t> decoded(b.start.size());
  std::iota(decoded.begin(), decoded.end(), 0u);
  std::sort(decoded.begin(), decoded.end(),
            [&](std::uint32_t x, std::uint32_t y) {
              if (b.start[x] != b.start[y]) return b.start[x] < b.start[y];
              return x < y;
            });
  return decoded;
}

ScanEvent event_of(const SyntheticBucket& b, std::uint32_t i,
                   const Channel& rx_ch) {
  return ScanEvent{i,        b.start[i], b.end[i], b.power[i],
                   b.sf[i],  b.net[i],   rx_ch};
}

// Scalar-vs-batched comparison contract: the collision verdict and its
// attribution always match; the interference sums only while no collision
// occurred (they are dead values afterwards — the pipeline drops the event
// before reading them, and the batched kernels stop maintaining them).
void expect_equivalent(const ScanAccum& scalar, const ScanAccum& batched,
                       std::uint32_t i) {
  ASSERT_EQ(scalar.collided, batched.collided) << "event " << i;
  if (scalar.collided) {
    EXPECT_EQ(scalar.foreign_fatal, batched.foreign_fatal) << "event " << i;
  } else {
    EXPECT_EQ(scalar.aligned_same_sf_lin, batched.aligned_same_sf_lin)
        << "event " << i;
    EXPECT_EQ(scalar.misaligned_intf_lin, batched.misaligned_intf_lin)
        << "event " << i;
  }
}

TEST(ScanBucketAligned, MatchesScalarOnRandomBuckets) {
  Rng rng(0xA11C0DEULL);
  const Channel ch = kSpec.grid_channel(0);
  for (int trial = 0; trial < 50; ++trial) {
    const auto count = static_cast<std::size_t>(rng.uniform_int(1, 80));
    SyntheticBucket b = make_bucket(rng, count, ch);
    std::vector<std::uint32_t> cursors;
    for (const auto& g : b.groups) cursors.push_back(g.begin);
    for (const std::uint32_t i : decoded_ascending(b)) {
      const ScanEvent ev = event_of(b, i, ch);
      ScanAccum scalar;
      scan_bucket_scalar(b.soa(), b.order.data(),
                         b.order.data() + b.order.size(), /*uniform=*/true,
                         /*rho_uniform=*/1.0, b.lookback, ev, scalar);
      ScanAccum batched;
      scan_bucket_aligned_grouped(b.soa(), b.order_sf.data(), b.pos_sf.data(),
                                  b.groups.data(),
                                  b.groups.data() + b.groups.size(),
                                  cursors.data(), b.lookback, ev, batched);
      expect_equivalent(scalar, batched, i);
    }
  }
}

TEST(ScanBucketAligned, SingleEventBucketSeesNoInterferer) {
  Rng rng(7ULL);
  const Channel ch = kSpec.grid_channel(1);
  SyntheticBucket b = make_bucket(rng, 1, ch);
  std::vector<std::uint32_t> cursors = {b.groups[0].begin};
  const ScanEvent ev = event_of(b, 0, ch);
  ScanAccum acc;
  scan_bucket_aligned_grouped(b.soa(), b.order_sf.data(), b.pos_sf.data(),
                              b.groups.data(), b.groups.data() + 1,
                              cursors.data(), b.lookback, ev, acc);
  EXPECT_FALSE(acc.collided);
  EXPECT_EQ(acc.aligned_same_sf_lin, 0.0);
  EXPECT_EQ(acc.misaligned_intf_lin, 0.0);
}

TEST(ScanBucketAligned, EmptyGroupSpanIsANoOp) {
  Rng rng(8ULL);
  const Channel ch = kSpec.grid_channel(2);
  SyntheticBucket b = make_bucket(rng, 4, ch);
  const ScanEvent ev = event_of(b, 0, ch);
  ScanAccum acc;
  // groups_begin == groups_end: the mixed-bucket / empty-bucket shape.
  scan_bucket_aligned_grouped(b.soa(), b.order_sf.data(), b.pos_sf.data(),
                              b.groups.data(), b.groups.data(), nullptr,
                              b.lookback, ev, acc);
  EXPECT_FALSE(acc.collided);
  EXPECT_EQ(acc.aligned_same_sf_lin, 0.0);
}

TEST(ScanBucketMisaligned, MatchesScalarOnPartialOverlapBuckets) {
  Rng rng(0xB0B0ULL);
  const Channel bucket_ch = kSpec.grid_channel(0);
  // A receive chain whose channel partially overlaps the bucket's: shift
  // the center by 60% of the bandwidth, keeping 0 < rho < threshold.
  const Channel rx_ch{bucket_ch.center + Hz{0.6 * bucket_ch.bandwidth.value()},
                      bucket_ch.bandwidth};
  const double rho = overlap_ratio(bucket_ch, rx_ch);
  ASSERT_GT(rho, 0.0);
  ASSERT_LT(rho, kDetectOverlapThreshold);
  const Db coupling = coupling_db(bucket_ch, rx_ch);

  for (int trial = 0; trial < 20; ++trial) {
    const auto count = static_cast<std::size_t>(rng.uniform_int(1, 60));
    SyntheticBucket b = make_bucket(rng, count, bucket_ch);
    std::uint32_t cursor = 0;
    for (const std::uint32_t i : decoded_ascending(b)) {
      const ScanEvent ev = event_of(b, i, rx_ch);
      ScanAccum scalar;
      scan_bucket_scalar(b.soa(), b.order.data(),
                         b.order.data() + b.order.size(), /*uniform=*/true,
                         rho, b.lookback, ev, scalar);
      ScanAccum batched;
      scan_bucket_misaligned_uniform(b.soa(), b.order.data(),
                                     b.order.data() + b.order.size(), cursor,
                                     b.lookback, coupling, ev, batched);
      expect_equivalent(scalar, batched, i);
    }
  }
}

TEST(ScanBucketMisaligned, ParkedCursorStaysSoundAfterSkippedScans) {
  Rng rng(0xCAFEULL);
  const Channel bucket_ch = kSpec.grid_channel(3);
  const Channel rx_ch{bucket_ch.center + Hz{0.6 * bucket_ch.bandwidth.value()},
                      bucket_ch.bandwidth};
  const double rho = overlap_ratio(bucket_ch, rx_ch);
  const Db coupling = coupling_db(bucket_ch, rx_ch);
  SyntheticBucket b = make_bucket(rng, 40, bucket_ch);
  std::uint32_t cursor = 0;
  bool skipped_one = false;
  for (const std::uint32_t i : decoded_ascending(b)) {
    const ScanEvent ev = event_of(b, i, rx_ch);
    // Every other decoded event arrives already-collided: the kernel must
    // return untouched (dead sum) and leave the cursor parked without
    // corrupting later live scans.
    if (!skipped_one) {
      ScanAccum dead;
      dead.collided = true;
      const std::uint32_t before = cursor;
      scan_bucket_misaligned_uniform(b.soa(), b.order.data(),
                                     b.order.data() + b.order.size(), cursor,
                                     b.lookback, coupling, ev, dead);
      EXPECT_EQ(cursor, before);
      EXPECT_EQ(dead.misaligned_intf_lin, 0.0);
      skipped_one = true;
      continue;
    }
    ScanAccum scalar;
    scan_bucket_scalar(b.soa(), b.order.data(),
                       b.order.data() + b.order.size(), /*uniform=*/true, rho,
                       b.lookback, ev, scalar);
    ScanAccum batched;
    scan_bucket_misaligned_uniform(b.soa(), b.order.data(),
                                   b.order.data() + b.order.size(), cursor,
                                   b.lookback, coupling, ev, batched);
    expect_equivalent(scalar, batched, i);
    skipped_one = false;
  }
}

}  // namespace
}  // namespace alphawan
