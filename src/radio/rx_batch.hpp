// Window-level SoA views for the batched receive pipeline (ALPHAWAN_BATCH,
// sim/batch.hpp).
//
// The scalar runner hands each gateway a vector of wide RxEvent structs; the
// batched runner instead builds ONE WindowTxTable per window — the per-field
// columns of the shared transmission list, with the airtime-derived times
// (lock_on / end) memoized once per radio setting — and hands each gateway a
// thin RxEventView: indices into that table plus the per-gateway received
// powers. Every per-event quantity a gateway reads is either a table column
// (shared, computed once per window instead of once per (gateway, event))
// or a view column, so the batched GatewayRadio::process never touches a
// Transmission struct on its hot path.
//
// Bit-exactness: the table columns hold exactly the values the scalar path
// computes from the structs — end[t] is start + time_on_air(...) through the
// same memoized pure function GatewayRadio::airtime_for evaluates, lock_on[t]
// likewise — so both pipelines feed identical doubles into identical
// expressions (tests/property/test_prop_kernels.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "radio/transmission.hpp"

namespace alphawan {

// Per-field columns of one window's transmission list. build() may be called
// every window; the airtime memo persists across builds (time_on_air /
// preamble_duration are pure functions of the radio settings).
struct WindowTxTable {
  std::vector<Seconds> start;
  std::vector<Seconds> end;      // start + time_on_air (== Transmission::end)
  std::vector<Seconds> lock_on;  // start + preamble   (== Transmission::lock_on)
  std::vector<Channel> channel;
  std::vector<SpreadingFactor> sf;
  std::vector<NetworkId> net;
  std::vector<Dbm> tx_power;
  std::vector<PacketId> packet;
  std::vector<NodeId> node;
  std::vector<std::uint16_t> sync;

  void build(const std::vector<Transmission>& txs);
  [[nodiscard]] std::size_t size() const { return start.size(); }

 private:
  // time_on_air/preamble_duration per distinct (params, payload) — the same
  // memo shape as GatewayRadio::RxScratch::AirtimeMemo, evaluated through
  // the same pure formulas, so the cached terms are bit-identical.
  struct AirtimeMemo {
    TxParams params{};
    std::uint32_t payload_bytes = 0;
    Seconds airtime{0.0};
    Seconds preamble{0.0};
  };
  [[nodiscard]] const AirtimeMemo& airtime_for(const Transmission& tx);
  std::vector<AirtimeMemo> memo_;
};

// One gateway's view of a window: `count` events, where event k is
// transmission tx_index[k] received at power rx_power[k]. Both arrays are
// owned by the caller (the runner's per-task arenas) and must outlive the
// process() call. Indices ascend in transmission order — the same order the
// scalar path pushes RxEvents — so every downstream accumulation order is
// identical.
struct RxEventView {
  const WindowTxTable* table = nullptr;
  const std::uint32_t* tx_index = nullptr;
  const Dbm* rx_power = nullptr;
  std::size_t count = 0;
};

}  // namespace alphawan
