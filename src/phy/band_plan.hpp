// Spectrum, channel grid, and standard LoRaWAN channel plans.
//
// A Channel is identified by its center frequency and bandwidth. Standard
// plans sit on a 200 kHz grid (8 channels per 1.6 MHz, as in the paper's
// testbed); AlphaWAN's inter-network plans deliberately place channels at
// fractional offsets of that grid (frequency misalignment, Strategy 8), so
// channels are represented by real center frequencies rather than indices.
#pragma once

#include <string>
#include <vector>

#include "phy/lora_params.hpp"

namespace alphawan {

struct Channel {
  Hz center{};
  Hz bandwidth = kLoRaBandwidth125k;

  [[nodiscard]] Hz low() const { return center - bandwidth / 2; }
  [[nodiscard]] Hz high() const { return center + bandwidth / 2; }

  friend bool operator==(const Channel&, const Channel&) = default;
};

// A contiguous block of ISM spectrum available to the deployment.
struct Spectrum {
  Hz base{916.8e6};  // paper Sec 5.1.1: 916.8-921.6 MHz
  Hz width{4.8e6};

  [[nodiscard]] Hz high() const { return base + width; }
  // Number of standard grid channels that fit.
  [[nodiscard]] int grid_size() const {
    return static_cast<int>(width / kChannelSpacing);
  }
  // Center frequency of grid channel `index` (0-based).
  [[nodiscard]] Hz grid_center(int index) const {
    return base + kChannelSpacing / 2 + kChannelSpacing * index;
  }
  [[nodiscard]] Channel grid_channel(int index) const {
    return Channel{grid_center(index), kLoRaBandwidth125k};
  }
  // All grid channels.
  [[nodiscard]] std::vector<Channel> grid_channels() const;
  // True if the channel lies entirely inside the spectrum.
  [[nodiscard]] bool contains(const Channel& ch) const;
  // Grid index nearest to the given channel center (may be out of range).
  [[nodiscard]] int nearest_grid_index(Hz center) const;
};

// A channel plan: the set of channels a gateway (or network) operates on.
struct ChannelPlan {
  std::string name;
  std::vector<Channel> channels;

  [[nodiscard]] std::size_t size() const { return channels.size(); }
  [[nodiscard]] bool empty() const { return channels.empty(); }
  // Frequency span from lowest channel low edge to highest high edge.
  [[nodiscard]] Hz span() const;
};

// Standard LoRaWAN channel plan #n: grid channels [8n, 8n+8) of the
// spectrum (Appendix B, Fig. 19). Throws if the plan exceeds the spectrum.
[[nodiscard]] ChannelPlan standard_plan(const Spectrum& spectrum, int plan_index);

// Number of complete standard plans the spectrum holds.
[[nodiscard]] int num_standard_plans(const Spectrum& spectrum);

// Theoretical ("Oracle") concurrent-user capacity of a spectrum: one user
// per (grid channel x spreading factor) pair, 6 SFs per channel.
[[nodiscard]] int oracle_capacity(const Spectrum& spectrum);

// Regional presets used by tests/examples.
[[nodiscard]] Spectrum spectrum_1m6();  // 1.6 MHz / 8 channels (Figs. 2, 5, 12d)
[[nodiscard]] Spectrum spectrum_4m8();  // 4.8 MHz / 24 channels (Figs. 12a, 13)
[[nodiscard]] Spectrum spectrum_6m4();  // 6.4 MHz / 32 channels (Fig. 12b)

}  // namespace alphawan
