#include "net/crypto.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

AesKey key_from(const std::uint8_t (&bytes)[16]) {
  AesKey k;
  std::copy(std::begin(bytes), std::end(bytes), k.begin());
  return k;
}

TEST(Aes, Fips197Vector) {
  const AesKey key = key_from({0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                               0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e,
                               0x0f});
  AesBlock plain = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                    0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const AesBlock expected = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                             0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  EXPECT_EQ(Aes128(key).encrypt(plain), expected);
}

const AesKey kRfc4493Key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                            0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

TEST(Cmac, Rfc4493EmptyMessage) {
  const AesBlock expected = {0xbb, 0x1d, 0x69, 0x29, 0xe9, 0x59, 0x37, 0x28,
                             0x7f, 0xa3, 0x7d, 0x12, 0x9b, 0x75, 0x67, 0x46};
  EXPECT_EQ(aes_cmac(kRfc4493Key, {}), expected);
}

TEST(Cmac, Rfc4493SixteenBytes) {
  const std::uint8_t msg[16] = {0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f,
                                0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
                                0x17, 0x2a};
  const AesBlock expected = {0x07, 0x0a, 0x16, 0xb4, 0x6b, 0x4d, 0x41, 0x44,
                             0xf7, 0x9b, 0xdd, 0x9d, 0xd0, 0x4a, 0x28, 0x7c};
  EXPECT_EQ(aes_cmac(kRfc4493Key, msg), expected);
}

TEST(Cmac, Rfc4493FortyBytes) {
  const std::uint8_t msg[40] = {
      0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d,
      0x7e, 0x11, 0x73, 0x93, 0x17, 0x2a, 0xae, 0x2d, 0x8a, 0x57,
      0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf,
      0x8e, 0x51, 0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11};
  const AesBlock expected = {0xdf, 0xa6, 0x67, 0x47, 0xde, 0x9a, 0xe6, 0x30,
                             0x30, 0xca, 0x32, 0x61, 0x14, 0x97, 0xc8, 0x27};
  EXPECT_EQ(aes_cmac(kRfc4493Key, msg), expected);
}

TEST(LorawanCrypto, PayloadEncryptionIsInvolution) {
  AesKey key{};
  key.fill(0x42);
  std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                       11, 12, 13, 14, 15, 16, 17, 18};
  const auto cipher = lorawan_encrypt_payload(key, 0x1234, 7, 0, payload);
  EXPECT_NE(cipher, payload);
  const auto plain = lorawan_encrypt_payload(key, 0x1234, 7, 0, cipher);
  EXPECT_EQ(plain, payload);
}

TEST(LorawanCrypto, KeystreamDependsOnFcnt) {
  AesKey key{};
  key.fill(0x42);
  const std::vector<std::uint8_t> payload(16, 0);
  EXPECT_NE(lorawan_encrypt_payload(key, 1, 1, 0, payload),
            lorawan_encrypt_payload(key, 1, 2, 0, payload));
}

TEST(LorawanCrypto, KeystreamDependsOnDirection) {
  AesKey key{};
  key.fill(0x42);
  const std::vector<std::uint8_t> payload(16, 0);
  EXPECT_NE(lorawan_encrypt_payload(key, 1, 1, 0, payload),
            lorawan_encrypt_payload(key, 1, 1, 1, payload));
}

TEST(LorawanCrypto, EmptyPayload) {
  AesKey key{};
  EXPECT_TRUE(lorawan_encrypt_payload(key, 1, 1, 0, {}).empty());
}

TEST(LorawanCrypto, MicChangesWithAnyInput) {
  AesKey key{};
  key.fill(0x11);
  const std::vector<std::uint8_t> msg = {1, 2, 3};
  const auto base = lorawan_mic(key, 10, 20, 0, msg);
  EXPECT_NE(base, lorawan_mic(key, 11, 20, 0, msg));
  EXPECT_NE(base, lorawan_mic(key, 10, 21, 0, msg));
  EXPECT_NE(base, lorawan_mic(key, 10, 20, 1, msg));
  const std::vector<std::uint8_t> other = {1, 2, 4};
  EXPECT_NE(base, lorawan_mic(key, 10, 20, 0, other));
  AesKey key2{};
  key2.fill(0x12);
  EXPECT_NE(base, lorawan_mic(key2, 10, 20, 0, msg));
}

TEST(LorawanCrypto, MicDeterministic) {
  AesKey key{};
  key.fill(0x33);
  const std::vector<std::uint8_t> msg = {9, 9, 9, 9};
  EXPECT_EQ(lorawan_mic(key, 5, 6, 0, msg), lorawan_mic(key, 5, 6, 0, msg));
}

}  // namespace
}  // namespace alphawan
