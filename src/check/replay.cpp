#include "check/replay.hpp"

#include <sstream>

namespace alphawan {
namespace {

std::string_view disposition_name(RxDisposition d) {
  switch (d) {
    case RxDisposition::kDelivered: return "delivered";
    case RxDisposition::kDecodedForeign: return "decoded-foreign";
    case RxDisposition::kDroppedDecoderBusy: return "dropped-decoder-busy";
    case RxDisposition::kDroppedCollision: return "dropped-collision";
    case RxDisposition::kDroppedLowSnr: return "dropped-low-snr";
    case RxDisposition::kNotDetected: return "not-detected";
    case RxDisposition::kRejectedFrontEnd: return "rejected-front-end";
  }
  return "?";
}

}  // namespace

std::string ReplayReport::to_string() const {
  std::ostringstream out;
  if (!found) {
    out << "packet " << fate.packet << ": not present in this window\n";
    return out.str();
  }
  out << "packet " << tx.id << " node " << tx.node << " network " << tx.network
      << " sf " << sf_value(tx.params.sf) << " channel "
      << tx.channel.center.value() / 1e6 << " MHz start " << tx.start << " s lock-on "
      << tx.lock_on() << " s end " << tx.end() << " s\n";
  for (const auto& obs : observations) {
    out << "  gw " << obs.gateway << " (net " << obs.network
        << (obs.own_network ? ", own" : ", foreign") << "): ";
    if (obs.pruned) {
      out << "pruned (rx " << obs.rx_power << " dBm below floor)\n";
      continue;
    }
    out << "rx " << obs.rx_power << " dBm, snr " << obs.snr << " dB, "
        << disposition_name(obs.disposition);
    if (obs.chain_channel >= 0) out << ", chain " << obs.chain_channel;
    out << "\n";
  }
  out << "  fate: " << (fate.delivered ? "delivered" : "lost") << " ("
      << loss_cause_name(fate.cause) << ")\n";
  return out.str();
}

ReplayReport replay_packet(Deployment& deployment, std::uint64_t seed,
                           const std::vector<Transmission>& txs,
                           PacketId packet, Db prune_margin) {
  ReplayReport report;
  report.fate.packet = packet;
  const Transmission* target = nullptr;
  for (const auto& tx : txs) {
    if (tx.id == packet) {
      target = &tx;
      break;
    }
  }
  if (target == nullptr) return report;
  report.found = true;
  report.tx = *target;

  const Rng root(seed);
  auto& channel = deployment.channel_model();
  const Dbm floor = noise_floor_dbm(kLoRaBandwidth125k) - prune_margin;
  std::vector<RxOutcome> own_outcomes;

  for (auto& network : deployment.networks()) {
    for (auto& gw : network.gateways()) {
      // Rebuild this gateway's exact view of the window: every event, with
      // the same seed-keyed fading draw the original run used.
      std::vector<RxEvent> events;
      events.reserve(txs.size());
      std::size_t target_event = txs.size();
      Dbm target_power{-400.0};
      bool target_seen = false;
      for (const auto& tx : txs) {
        const Meters dist = distance(tx.origin, gw.position());
        Rng link_rng = packet_link_rng(root, gw.id(), tx.id);
        const Dbm rx_power =
            channel.received_power(tx.node, kGatewayKeyBase + gw.id(), dist,
                                   tx.tx_power, link_rng) +
            gw.antenna_gain_towards(tx.origin);
        if (tx.id == packet) {
          target_power = rx_power;
          target_seen = true;
        }
        if (rx_power < floor) continue;
        if (tx.id == packet) target_event = events.size();
        events.push_back(RxEvent{tx, rx_power});
      }

      GatewayObservation obs;
      obs.gateway = gw.id();
      obs.network = network.id();
      obs.own_network = network.id() == target->network;
      obs.rx_power = target_seen ? target_power : Dbm{-400.0};
      if (target_event == txs.size()) {
        obs.pruned = true;
        report.observations.push_back(obs);
        continue;
      }

      // Process on a copy: pools reset per window anyway, but the copy also
      // keeps observers and server state out of the replay.
      GatewayRadio radio = gw.radio();
      radio.set_observer(nullptr);
      const auto outcomes = radio.process(events);
      const auto& out = outcomes[target_event];
      obs.snr = out.snr;
      obs.disposition = out.disposition;
      obs.chain_channel = out.chain_channel;
      report.observations.push_back(obs);
      if (obs.own_network) own_outcomes.push_back(out);
    }
  }

  report.fate = classify_packet(*target, own_outcomes);
  return report;
}

}  // namespace alphawan
