#include "net/channel_plan.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

TEST(ChannelPlanConfig, DiffCountsChanges) {
  NetworkChannelConfig current;
  current.gateways[1] = {{Channel{Hz{915e6}, Hz{125e3}}}};
  current.nodes[10] = NodeRadioConfig{Channel{Hz{915e6}, Hz{125e3}},
                                      DataRate::kDR3, Dbm{14.0}};
  NetworkChannelConfig proposed = current;
  EXPECT_EQ(diff_config(current, proposed).gateways_changed, 0u);
  EXPECT_EQ(diff_config(current, proposed).nodes_changed, 0u);

  proposed.gateways[1] = {{Channel{Hz{915.2e6}, Hz{125e3}}}};
  proposed.nodes[10].dr = DataRate::kDR5;
  proposed.nodes[11] = NodeRadioConfig{};  // new node
  const auto delta = diff_config(current, proposed);
  EXPECT_EQ(delta.gateways_changed, 1u);
  EXPECT_EQ(delta.nodes_changed, 2u);
}

TEST(ChannelPlanConfig, DiffNewGatewayCounts) {
  NetworkChannelConfig current;
  NetworkChannelConfig proposed;
  proposed.gateways[5] = {{Channel{Hz{915e6}, Hz{125e3}}}};
  EXPECT_EQ(diff_config(current, proposed).gateways_changed, 1u);
}

TEST(ChannelPlanConfig, ValidForProfile) {
  const auto profile = default_profile();  // 8 chains, 1.6 MHz
  GatewayChannelConfig ok;
  for (int i = 0; i < 8; ++i) {
    ok.channels.push_back(Channel{Hz{915e6 + 200e3 * i}, Hz{125e3}});
  }
  EXPECT_TRUE(valid_for_profile(ok, profile));

  GatewayChannelConfig empty;
  EXPECT_FALSE(valid_for_profile(empty, profile));

  GatewayChannelConfig too_many = ok;
  too_many.channels.push_back(Channel{Hz{915e6 + 50e3}, Hz{125e3}});
  EXPECT_FALSE(valid_for_profile(too_many, profile));

  GatewayChannelConfig too_wide;
  too_wide.channels = {Channel{Hz{915e6}, Hz{125e3}}, Channel{Hz{917e6}, Hz{125e3}}};
  EXPECT_FALSE(valid_for_profile(too_wide, profile));
}

TEST(ChannelPlanConfig, HomogeneousStandardSpreadsPlans) {
  const Spectrum s = spectrum_4m8();  // 3 standard plans
  const auto config =
      homogeneous_standard_config(s, {1, 2, 3, 4}, /*spread=*/true);
  ASSERT_EQ(config.gateways.size(), 4u);
  // Gateways 1 and 4 share plan 0; 2 gets plan 1; 3 gets plan 2.
  EXPECT_EQ(config.gateways.at(1), config.gateways.at(4));
  EXPECT_NE(config.gateways.at(1), config.gateways.at(2));
  EXPECT_NE(config.gateways.at(2), config.gateways.at(3));
}

TEST(ChannelPlanConfig, HomogeneousStandardSinglePlan) {
  const Spectrum s = spectrum_1m6();
  const auto config =
      homogeneous_standard_config(s, {1, 2, 3}, /*spread=*/true);
  EXPECT_EQ(config.gateways.at(1), config.gateways.at(2));
  EXPECT_EQ(config.gateways.at(2), config.gateways.at(3));
  EXPECT_EQ(config.gateways.at(1).channels.size(), 8u);
}

}  // namespace
}  // namespace alphawan
