// Property: parallel execution is bit-identical to serial execution. For
// random worlds, the ordered fate stream of a window (its FNV-1a digest)
// and the GA solver's result must not depend on the thread count — the
// determinism contract of common/parallel.hpp (docs/parallelism.md).
#include <gtest/gtest.h>

#include "check/digest.hpp"
#include "core/ga_solver.hpp"
#include "proptest.hpp"

namespace alphawan {
namespace {

using prop::CaseParams;

std::uint64_t window_digest(const CaseParams& params, int threads) {
  prop::World world = prop::build_world(params);
  RunOptions options;
  options.threads = threads;
  ScenarioRunner runner(*world.deployment, params.seed, options);
  return fate_digest(runner.run_window(world.txs).fates);
}

TEST(ParallelDeterminism, WindowDigestIdenticalAcrossThreadCounts) {
  CaseParams lo;
  lo.networks = 1;
  lo.gateways_per_net = 1;
  lo.nodes_per_net = 4;
  lo.plan_channels = 2;
  lo.decoders = 4;
  CaseParams hi;
  hi.networks = 3;
  hi.gateways_per_net = 4;
  hi.nodes_per_net = 40;
  hi.plan_channels = 8;
  hi.decoders = 16;
  prop::check_property(
      "window digest is thread-count invariant", /*cases=*/50,
      /*seed=*/20250805, lo, hi,
      [](const CaseParams& params) -> std::optional<std::string> {
        const std::uint64_t serial = window_digest(params, 1);
        for (int threads : {2, 8}) {
          const std::uint64_t parallel = window_digest(params, threads);
          if (parallel != serial) {
            return "digest " + digest_hex(parallel) + " at threads=" +
                   std::to_string(threads) + " != serial digest " +
                   digest_hex(serial);
          }
        }
        return std::nullopt;
      });
}

CpInstance random_cp_instance(Rng& rng) {
  CpInstance inst;
  const int num_channels = static_cast<int>(rng.uniform_int(4, 16));
  inst.spectrum = Spectrum{Hz{916.8e6}, num_channels * kChannelSpacing};
  inst.num_channels = num_channels;
  const int num_gw = static_cast<int>(rng.uniform_int(1, 6));
  for (int j = 0; j < num_gw; ++j) {
    CpGateway gw;
    gw.id = static_cast<GatewayId>(j + 1);
    gw.decoders = static_cast<int>(rng.uniform_int(4, 24));
    gw.max_channels = static_cast<int>(rng.uniform_int(2, 8));
    gw.max_span_channels = static_cast<int>(rng.uniform_int(2, 16));
    inst.gateways.push_back(gw);
  }
  const int num_nodes = static_cast<int>(rng.uniform_int(5, 80));
  for (int i = 0; i < num_nodes; ++i) {
    CpNode node;
    node.id = static_cast<NodeId>(i + 1);
    node.traffic = rng.uniform(0.2, 3.0);
    node.min_level.resize(static_cast<std::size_t>(num_gw));
    for (auto& level : node.min_level) {
      const auto roll = rng.uniform_int(0, 7);
      level = roll >= 6 ? kUnreachable : static_cast<std::uint8_t>(roll);
    }
    inst.nodes.push_back(std::move(node));
  }
  return inst;
}

TEST(ParallelDeterminism, GaSolveIdenticalAcrossThreadCounts) {
  Rng meta(424242);
  for (int c = 0; c < 25; ++c) {
    const auto inst = random_cp_instance(meta);
    GaConfig cfg;
    cfg.population = 16;
    cfg.generations = 12;
    cfg.seed = meta.next();
    cfg.threads = 1;
    const auto serial = solve_cp(inst, cfg);
    for (int threads : {2, 8}) {
      cfg.threads = threads;
      const auto parallel = solve_cp(inst, cfg);
      ASSERT_EQ(parallel.best.node_channel, serial.best.node_channel)
          << "case " << c << " threads " << threads;
      ASSERT_EQ(parallel.best.node_level, serial.best.node_level)
          << "case " << c << " threads " << threads;
      ASSERT_EQ(parallel.best.gateway_channels, serial.best.gateway_channels)
          << "case " << c << " threads " << threads;
      ASSERT_DOUBLE_EQ(parallel.best_eval.objective,
                       serial.best_eval.objective)
          << "case " << c << " threads " << threads;
      // The batched evaluator must count exactly like the serial one.
      ASSERT_EQ(parallel.evaluations, serial.evaluations)
          << "case " << c << " threads " << threads;
      ASSERT_EQ(parallel.generations_run, serial.generations_run)
          << "case " << c << " threads " << threads;
    }
  }
}

}  // namespace
}  // namespace alphawan
