// Frame codec: why a gateway cannot filter foreign packets early.
//
// Encodes a real LoRaWAN 1.0.x uplink (AES-CTR payload encryption +
// AES-CMAC MIC), then shows that another network — even holding the raw
// bytes — learns nothing before a full decode + MIC check, which is the
// root of the inter-network decoder contention the paper identifies.
//
//   ./example_frame_codec
#include <cstdio>

#include "net/end_node.hpp"

using namespace alphawan;

namespace {
void hexdump(const char* label, std::span<const std::uint8_t> bytes) {
  std::printf("  %-12s", label);
  for (const auto b : bytes) std::printf("%02x", b);
  std::printf("  (%zu bytes)\n", bytes.size());
}
}  // namespace

int main() {
  NodeRadioConfig cfg;
  cfg.channel = Channel{Hz{923.3e6}, Hz{125e3}};
  cfg.dr = DataRate::kDR3;
  EndNode sensor(/*id=*/42, /*network=*/3, Point{Meters{100}, Meters{50}}, cfg);

  const std::vector<std::uint8_t> reading = {0x17, 0x03, 0x42, 0x01,
                                             0x99, 0xEE, 0x10, 0x00,
                                             0x25, 0x5C};
  std::printf("LoRaWAN uplink from DevAddr 0x%08X (NwkID %u):\n\n",
              sensor.dev_addr(), nwk_id(sensor.dev_addr()));
  hexdump("payload", reading);

  const auto raw = sensor.encode_uplink(reading);
  hexdump("PHYPayload", raw);
  std::printf("\n");

  // The owner network decodes it fine.
  const auto own = decode_frame(raw, sensor.keys());
  std::printf("own network decode: %s (FCnt %u, FPort %d, %zu bytes)\n",
              own.ok() ? "OK" : "FAILED", own.frame->fhdr.fcnt,
              *own.frame->fport, own.frame->frm_payload.size());

  // A coexisting network holds different session keys: the MIC fails, but
  // only AFTER the gateway spent a decoder receiving the whole packet.
  SessionKeys foreign;
  foreign.nwk_skey.fill(0x77);
  foreign.app_skey.fill(0x88);
  const auto other = decode_frame(raw, foreign);
  std::printf("foreign network decode: %s\n",
              other.error == DecodeError::kBadMic ? "rejected (bad MIC)"
                                                  : "unexpected");

  // Header peeking (what a network server does for routing) works without
  // keys — but only after the radio has fully received the frame.
  const auto header = peek_header(raw);
  std::printf(
      "\nheader peek (post-reception routing): DevAddr 0x%08X, FCnt %u\n",
      header->dev_addr, header->fcnt);
  std::printf(
      "\nThe network identifiers live INSIDE the frame: a COTS gateway\n"
      "must commit one of its 16 decoders for the packet's full airtime\n"
      "before it can tell the packet belongs to someone else (paper\n"
      "Sec. 3.1) — AlphaWAN's frequency misalignment filters foreign\n"
      "packets in the analog front-end instead.\n");
  return 0;
}
