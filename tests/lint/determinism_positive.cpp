// alphawan-lint fixture: determinism family, positive cases.
// Linted as-if at src/sim/determinism_positive.cpp (digest-affecting).
// Every marked line must be reported; see determinism_positive.expected.
#include <chrono>
#include <cstdlib>
#include <random>
#include <unordered_map>
#include <unordered_set>

namespace alphawan {

struct WindowState {
  // Unordered member in a digest subsystem without a no-iteration
  // annotation.
  std::unordered_map<int, double> gains_by_node_;  // finding: member
  std::unordered_set<int> seen_;                   // finding: member
};

inline double entropy_seed() {
  std::random_device device;  // finding: wallclock
  return static_cast<double>(device());
}

inline double legacy_draw() {
  std::srand(42);                        // finding: wallclock
  return std::rand() / 32768.0;          // finding: wallclock
}

inline double wall_now_seconds() {
  const auto now = std::chrono::system_clock::now();  // finding: wallclock
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

inline double mono_now_seconds() {
  const auto now = std::chrono::steady_clock::now();  // finding: wallclock
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

inline double fold_gains(const WindowState& state) {
  double sum = 0.0;
  std::unordered_map<int, double> local = state.gains_by_node_;  // finding
  for (const auto& [node, gain] : local) {  // finding: iteration
    sum += gain;
  }
  auto it = local.begin();  // finding: iteration
  if (it != local.end()) sum += it->second;
  return sum;
}

}  // namespace alphawan
