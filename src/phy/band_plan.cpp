#include "phy/band_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace alphawan {

std::vector<Channel> Spectrum::grid_channels() const {
  std::vector<Channel> out;
  const int n = grid_size();
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(grid_channel(i));
  return out;
}

bool Spectrum::contains(const Channel& ch) const {
  return ch.low() >= base - Hz{1.0} && ch.high() <= high() + Hz{1.0};
}

int Spectrum::nearest_grid_index(Hz center) const {
  return static_cast<int>(
      std::lround((center - base - kChannelSpacing / 2) / kChannelSpacing));
}

Hz ChannelPlan::span() const {
  if (channels.empty()) return Hz{0.0};
  auto [lo, hi] = std::minmax_element(
      channels.begin(), channels.end(),
      [](const Channel& a, const Channel& b) { return a.center < b.center; });
  return hi->high() - lo->low();
}

ChannelPlan standard_plan(const Spectrum& spectrum, int plan_index) {
  const int first = plan_index * 8;
  if (plan_index < 0 || first + 8 > spectrum.grid_size()) {
    throw std::out_of_range("standard_plan: plan #" +
                            std::to_string(plan_index) +
                            " does not fit in spectrum");
  }
  ChannelPlan plan;
  plan.name = "std-plan-" + std::to_string(plan_index);
  plan.channels.reserve(8);
  for (int i = 0; i < 8; ++i) {
    plan.channels.push_back(spectrum.grid_channel(first + i));
  }
  return plan;
}

int num_standard_plans(const Spectrum& spectrum) {
  return spectrum.grid_size() / 8;
}

int oracle_capacity(const Spectrum& spectrum) {
  return spectrum.grid_size() * kNumSpreadingFactors;
}

Spectrum spectrum_1m6() { return Spectrum{Hz{923.2e6}, Hz{1.6e6}}; }
Spectrum spectrum_4m8() { return Spectrum{Hz{916.8e6}, Hz{4.8e6}}; }
Spectrum spectrum_6m4() { return Spectrum{Hz{916.0e6}, Hz{6.4e6}}; }

}  // namespace alphawan
