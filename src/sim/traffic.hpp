// Traffic generation: from the paper's micro-benchmark bursts (N nodes
// transmitting concurrently in micro time slots) to duty-cycled Poisson
// traffic for the at-scale experiments, including the paper's
// emulated-user trick (Sec. 5.2.1: one physical node emulates up to ten
// users in distinct time slots).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "net/end_node.hpp"
#include "radio/transmission.hpp"

namespace alphawan {

inline constexpr std::uint32_t kDefaultPayloadBytes = 10;

// Monotonic packet-id source shared by generators.
class PacketIdSource {
 public:
  [[nodiscard]] PacketId next() { return next_++; }

 private:
  PacketId next_ = 1;
};

// All nodes start transmitting at `start` simultaneously (the paper's
// concurrency experiments schedule nodes on distinct channel/SF pairs so
// there are no RF collisions — only decoder contention).
[[nodiscard]] std::vector<Transmission> concurrent_burst(
    std::vector<EndNode*> nodes, Seconds start, PacketIdSource& ids,
    std::uint32_t payload_bytes = kDefaultPayloadBytes);

// Fig. 3 Scheme (a): the *first* preamble symbol of node i arrives in slot
// i (lock-on order then depends on each node's preamble length).
// ALPHAWAN-LINT-ALLOW(units-swappable-pair: start is an absolute
// instant, slot a duration — same unit, distinct documented roles)
// NOLINTNEXTLINE(bugprone-easily-swappable-parameters): start is an
// absolute instant, slot a duration — same unit, distinct roles.
[[nodiscard]] std::vector<Transmission> staggered_by_start(
    std::vector<EndNode*> nodes, Seconds start, Seconds slot,
    PacketIdSource& ids, std::uint32_t payload_bytes = kDefaultPayloadBytes);

// Fig. 3 Scheme (b): the *final* preamble symbol (= lock-on instant) of
// node i lands in slot i, so dispatch order equals node order.
// ALPHAWAN-LINT-ALLOW(units-swappable-pair: as staggered_by_start)
// NOLINTNEXTLINE(bugprone-easily-swappable-parameters): as above.
[[nodiscard]] std::vector<Transmission> staggered_by_lock_on(
    std::vector<EndNode*> nodes, Seconds start, Seconds slot,
    PacketIdSource& ids, std::uint32_t payload_bytes = kDefaultPayloadBytes);

// Poisson uplink traffic over [0, window): each node transmits with the
// given mean rate (packets/second), respecting the duty-cycle limit.
// Suitable for the at-scale experiments (Figs. 4, 13, 21).
[[nodiscard]] std::vector<Transmission> poisson_traffic(
    std::vector<EndNode*> nodes, Seconds window, double rate_per_node, Rng& rng,
    PacketIdSource& ids, double duty_cycle_limit = 0.01,
    std::uint32_t payload_bytes = kDefaultPayloadBytes);

// The paper's emulated-user expansion: each physical node emulates
// `users_per_node` virtual users, each with its own (virtual) node id and
// Poisson schedule, all transmitted from the physical node's position and
// radio settings. Virtual ids start at `virtual_id_base`.
[[nodiscard]] std::vector<Transmission> emulated_user_traffic(
    std::vector<EndNode*> nodes, std::size_t users_per_node, Seconds window,
    double rate_per_user, Rng& rng, PacketIdSource& ids,
    NodeId virtual_id_base = 1'000'000,
    std::uint32_t payload_bytes = kDefaultPayloadBytes);

// Sort transmissions by start time (generators may interleave nodes).
void sort_by_start(std::vector<Transmission>& txs);

}  // namespace alphawan
