// Deterministic parallel execution: a small fixed-size thread pool plus
// parallel_for / parallel_map helpers whose results never depend on thread
// scheduling.
//
// The determinism contract (docs/parallelism.md):
//   * work is split by STATIC index-based partitioning — chunk c of k always
//     covers the same contiguous index range, regardless of thread count or
//     scheduling;
//   * results are written to pre-sized, per-index slots — never accumulated
//     in completion order;
//   * a body must be a pure function of its index and of state that is
//     read-only for the duration of the region (shared caches it touches
//     must be internally synchronized AND value-deterministic).
// Under that contract a parallel run is bit-identical to the serial run,
// which the golden-digest property tests enforce.
//
// Thread count comes from ALPHAWAN_THREADS (default: hardware concurrency;
// `1` forces serial execution on the calling thread).
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace alphawan {

// Contiguous half-open index range [begin, end).
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

// Split [0, count) into at most `chunks` contiguous ranges, sizes differing
// by at most one, earlier chunks taking the remainder. Empty ranges are
// omitted, so the result has min(chunks, count) entries (none for count 0).
[[nodiscard]] std::vector<IndexRange> static_partition(std::size_t count,
                                                       int chunks);

// Parse an ALPHAWAN_THREADS-style value: a positive integer gives that many
// threads; null/empty/invalid falls back to hardware concurrency (>= 1).
[[nodiscard]] int parse_thread_count(const char* text);

// The process-wide thread budget: ALPHAWAN_THREADS if exported, hardware
// concurrency otherwise. Read once at first use.
[[nodiscard]] int default_thread_count();

class ThreadPool {
 public:
  // Spawns `threads - 1` workers; the thread calling parallel_for always
  // executes the first chunk itself, so `threads` is the true concurrency.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int threads() const { return threads_; }

  // Execute body(i) for every i in [0, count), partitioned into `chunks`
  // contiguous ranges (static_partition). Blocks until every index ran.
  // If any body throws, the exception from the LOWEST-indexed failing chunk
  // is rethrown after the region completes (deterministic error reporting).
  //
  // Reentrant calls from inside a worker run serially on that worker — the
  // partition stays the same, so results are unaffected.
  void parallel_for(std::size_t count, int chunks,
                    const std::function<void(std::size_t)>& body);

  // The process-wide pool, sized by default_thread_count().
  static ThreadPool& global();

 private:
  struct Task;
  void worker_loop();

  int threads_;
  struct Impl;
  Impl* impl_;
};

// Run body(i) for i in [0, count) on the global pool. `threads` overrides
// the partition/concurrency for this call: 0 uses the process default and
// 1 forces serial execution on the calling thread.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  int threads = 0);

// Map [0, count) through fn into a pre-sized vector, slot i receiving
// fn(i). Slot writes are index-keyed, so the output order never depends on
// scheduling.
template <typename Fn>
auto parallel_map(std::size_t count, Fn&& fn, int threads = 0) {
  using Result = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  std::vector<Result> out(count);
  parallel_for(
      count, [&](std::size_t i) { out[i] = fn(i); }, threads);
  return out;
}

}  // namespace alphawan
