// Packet-fate classification and metric aggregation. Every lost packet is
// attributed to a cause, which is what lets the Fig. 4 / Fig. 13c loss
// breakdowns be direct queries on the simulation rather than guesses.
//
// The collector aggregates in a streaming fashion: totals, per-cause and
// per-data-rate counters, and a deduplicated served-node set are updated per
// fate, while only a bounded ring of recent fates is retained for
// inspection. Memory is O(live state) — networks + distinct served nodes +
// the ring — never O(packet history), which is what lets a million-user
// city run (bench_city_1m) record every packet (docs/sharding.md).
#pragma once

#include <array>
#include <span>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "phy/lora_params.hpp"
#include "radio/transmission.hpp"

namespace alphawan {

enum class LossCause : std::uint8_t {
  kDelivered,
  kDecoderContentionIntra,  // dropped at lock-on, all occupants own-network
  kDecoderContentionInter,  // dropped at lock-on, foreign packets held decoders
  kChannelContentionIntra,  // RF collision with an own-network packet
  kChannelContentionInter,  // RF collision with a foreign packet
  kOther,                   // low SNR, out of range, front-end rejected
};

[[nodiscard]] std::string_view loss_cause_name(LossCause cause);

struct PacketFate {
  PacketId packet = 0;
  NodeId node = kInvalidNode;
  NetworkId network = 0;
  bool delivered = false;
  LossCause cause = LossCause::kOther;
  std::uint32_t payload_bytes = 0;
  DataRate dr = DataRate::kDR0;  // data rate the packet used
};

// Classify a packet from its outcomes at the gateways OF ITS OWN NETWORK.
// Delivery by any gateway wins; otherwise the "most actionable" cause is
// chosen: decoder contention > channel contention > other. Inline: this
// runs once per offered packet inside the window merge loop.
[[nodiscard]] inline PacketFate classify_packet(
    const Transmission& tx, std::span<const RxOutcome> own_gateway_outcomes) {
  PacketFate fate;
  fate.packet = tx.id;
  fate.node = tx.node;
  fate.network = tx.network;
  fate.payload_bytes = tx.payload_bytes;
  fate.dr = sf_to_dr(tx.params.sf);

  bool decoder_drop = false;
  bool decoder_drop_foreign = false;
  bool collision = false;
  bool collision_foreign = false;
  for (const auto& out : own_gateway_outcomes) {
    switch (out.disposition) {
      case RxDisposition::kDelivered:
        fate.delivered = true;
        fate.cause = LossCause::kDelivered;
        return fate;
      case RxDisposition::kDroppedDecoderBusy:
        decoder_drop = true;
        decoder_drop_foreign |= out.foreign_among_occupants;
        break;
      case RxDisposition::kDroppedCollision:
        collision = true;
        collision_foreign |= out.foreign_interferer;
        break;
      default:
        break;
    }
  }
  if (decoder_drop) {
    fate.cause = decoder_drop_foreign ? LossCause::kDecoderContentionInter
                                      : LossCause::kDecoderContentionIntra;
  } else if (collision) {
    fate.cause = collision_foreign ? LossCause::kChannelContentionInter
                                   : LossCause::kChannelContentionIntra;
  } else {
    fate.cause = LossCause::kOther;
  }
  return fate;
}

[[nodiscard]] inline PacketFate classify_packet(
    const Transmission& tx, std::initializer_list<RxOutcome> outcomes) {
  return classify_packet(
      tx, std::span<const RxOutcome>(outcomes.begin(), outcomes.size()));
}

class MetricsCollector {
 public:
  // `history_limit` bounds the retained recent-fate ring (0 = keep none).
  // Aggregates are exact regardless of the limit; only per-fate inspection
  // is windowed.
  static constexpr std::size_t kDefaultHistoryLimit = 65536;
  explicit MetricsCollector(std::size_t history_limit = kDefaultHistoryLimit)
      : history_limit_(history_limit) {}

  void record(const PacketFate& fate);

  [[nodiscard]] std::size_t offered(NetworkId network) const;
  [[nodiscard]] std::size_t delivered(NetworkId network) const;
  [[nodiscard]] std::size_t total_offered() const { return total_offered_; }
  [[nodiscard]] std::size_t total_delivered() const { return total_delivered_; }

  [[nodiscard]] double prr(NetworkId network) const;
  [[nodiscard]] double total_prr() const;

  // Fraction of OFFERED packets lost to each cause (sums with PRR to 1).
  [[nodiscard]] double loss_fraction(LossCause cause) const;
  [[nodiscard]] double loss_fraction(NetworkId network, LossCause cause) const;

  // Exact loss counts per cause (what the invariant checker sums against
  // offered/delivered — fractions would hide off-by-one bugs in rounding).
  [[nodiscard]] std::size_t losses(LossCause cause) const {
    return total_causes_.get(cause);
  }
  [[nodiscard]] std::size_t losses(NetworkId network, LossCause cause) const;

  // Ids of every network with at least one recorded fate.
  [[nodiscard]] std::vector<NetworkId> networks() const;

  // Delivered application bytes (for throughput = bytes / window).
  [[nodiscard]] std::size_t delivered_bytes(NetworkId network) const;
  [[nodiscard]] std::size_t total_delivered_bytes() const {
    return total_delivered_bytes_;
  }

  // Distinct nodes with >= 1 delivered packet (the paper's "concurrent
  // users supported" when each node offers one packet).
  [[nodiscard]] std::size_t served_nodes(NetworkId network) const;
  [[nodiscard]] std::size_t total_served_nodes() const;

  // Delivered packets that used `dr`, across all networks (Fig. 13d
  // spectrum-utilization shares — previously recomputed from the full fate
  // history).
  [[nodiscard]] std::size_t delivered_by_dr(DataRate dr) const {
    return delivered_by_dr_[static_cast<std::size_t>(dr_value(dr))];
  }

  // The rolling recent-fate window, oldest first. history_size() is
  // min(total_offered, history_limit); evicted() counts fates that aged out
  // of the ring — aggregates above still include them.
  [[nodiscard]] std::vector<PacketFate> recent_fates() const;
  [[nodiscard]] std::size_t history_size() const { return ring_.size(); }
  [[nodiscard]] std::size_t history_limit() const { return history_limit_; }
  [[nodiscard]] std::size_t evicted() const { return evicted_; }

  void clear();

 private:
  struct PerNetwork {
    NetworkId id = 0;
    std::size_t offered = 0;
    std::size_t delivered = 0;
    std::size_t delivered_bytes = 0;
    Tally<LossCause> causes;
    // Distinct served nodes in O(distinct) memory: a sorted unique base
    // plus an unsorted tail of recent deliveries, folded in (record() side
    // or lazily by the queries) once the tail outgrows the base — amortized
    // O(log n) per delivery instead of per-call map inserts.
    mutable std::vector<NodeId> served_sorted;
    mutable std::vector<NodeId> served_tail;
  };

  // Flat per-network table (deployments have a handful of networks): a
  // short linear scan beats a std::map node walk in the per-packet
  // record() path.
  [[nodiscard]] PerNetwork& slot(NetworkId network);
  [[nodiscard]] const PerNetwork* find(NetworkId network) const;
  static void fold_served(const PerNetwork& net);

  std::vector<PerNetwork> per_network_;
  std::size_t total_offered_ = 0;
  std::size_t total_delivered_ = 0;
  std::size_t total_delivered_bytes_ = 0;
  Tally<LossCause> total_causes_;
  std::array<std::size_t, kNumDataRates> delivered_by_dr_{};

  // Bounded recent-fate ring: once full, the oldest entry is overwritten
  // (ring_head_ marks it) and evicted_ advances.
  std::size_t history_limit_;
  std::vector<PacketFate> ring_;
  std::size_t ring_head_ = 0;
  std::size_t evicted_ = 0;
};

}  // namespace alphawan
