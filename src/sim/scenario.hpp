// ScenarioRunner: the glue that runs one window of traffic through every
// gateway of every coexisting network, feeds the network servers, and
// classifies packet fates. This is the top-level simulation API used by
// benches, examples, and AlphaWAN's measurement loop.
//
// Within a window, gateways are independent consumers of the shared
// transmission list, so run_window fans them out across the parallel
// executor (common/parallel.hpp) and merges per-gateway results in
// deployment order — bit-identical to the serial run (docs/parallelism.md).
//
// The world is additionally partitioned into spatial shards (sim/shard.hpp):
// each shard owns a LinkCache slice, its own scratch arenas, and an event
// queue that publishes the shard's window yields — boundary events included
// — at a deterministic barrier. Shard count never changes results
// (docs/sharding.md); it bounds memory to the live audible links.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/topology.hpp"

namespace alphawan {

class SimInvariants;

// Seed-stable per-(gateway, packet) generator for fast-fading draws. The
// stream depends only on the runner's root seed and the two ids — never on
// iteration order — so engine refactors cannot reshuffle draws and a single
// packet's reception can be replayed in isolation (check/replay.hpp).
[[nodiscard]] Rng packet_link_rng(const Rng& root, GatewayId gateway,
                                  PacketId packet);

// Optional per-gateway outcome post-processor (hook used by the CIC
// baseline to resolve collisions a stock gateway cannot). Receives the
// events the gateway saw and may rewrite outcome dispositions. May be
// invoked from concurrent gateway tasks, so it must not mutate state shared
// across gateways (see docs/parallelism.md).
using RxPostProcessor = std::function<void(
    const Gateway& gw, const std::vector<RxEvent>& events,
    std::vector<RxOutcome>& outcomes)>;

// Per-runner knobs, consolidated in one value so a runner is configured in
// a single statement instead of a pile of setters.
struct RunOptions {
  // Transmissions weaker than noise_floor - prune_margin at a gateway are
  // dropped from that gateway's event list (they can neither be received
  // nor meaningfully interfere).
  Db prune_margin{25.0};
  RxPostProcessor post_processor;
  // Pluggable gateway-side capture resolution (radio/capture_policy.hpp):
  // installed on every gateway each window, invoked inside
  // GatewayRadio::process so rescued packets flow through the normal
  // uplink-forwarding path. nullptr = stock COTS pipeline, bit-identical
  // to the pre-policy engine. The shared_ptr keeps registry-built schemes
  // alive for the lifetime of the options value.
  std::shared_ptr<const CapturePolicy> capture_policy;
  // Worker threads for the per-gateway fan-out: 0 = the ALPHAWAN_THREADS
  // process default, 1 = force serial.
  int threads = 0;
  // Spatial shards for the link-cache / event-queue partition: 0 = the
  // ALPHAWAN_SHARDS process default, >= 1 explicit. Any count produces
  // bit-identical results (docs/sharding.md).
  int shards = 0;
  // Batched PHY receive kernels (sim/batch.hpp): -1 = the ALPHAWAN_BATCH
  // process default, 0 = scalar reference, >= 1 = batched. Either mode
  // produces bit-identical results (docs/performance.md, enforced by
  // tests/property/test_prop_kernels.cpp).
  int batch = -1;
};

// Telemetry from the last window's shard partition: how many transmitter
// rows the slices held, and how much of the window crossed a shard border
// (a boundary row is a transmitter audible in a stripe other than the one
// holding its origin; a boundary event is a reception at such a gateway).
struct ShardWindowStats {
  int shards = 1;
  std::size_t resident_rows = 0;   // rows materialized across all slices
  std::size_t boundary_rows = 0;   // audible (tx, shard) pairs away from home
  std::size_t boundary_events = 0; // rx events that crossed a border
};

// Everything one gateway produces from a window, computed independently of
// every other gateway and merged in deployment order afterwards. Lives in
// the runner's scratch so the buffers (outcome lists above all) keep their
// capacity across windows instead of being reallocated every window.
struct GatewayYield {
  std::vector<RxOutcome> outcomes;
  std::vector<std::size_t> event_tx_index;
  std::vector<UplinkRecord> uplinks;
};

struct WindowResult {
  // Fate of every offered packet (across all networks).
  std::vector<PacketFate> fates;
  // Delivered unique packets per network in this window.
  std::map<NetworkId, std::size_t> delivered;
  std::map<NetworkId, std::size_t> offered;
  // Distinct nodes served per network.
  std::map<NetworkId, std::size_t> served_nodes;

  [[nodiscard]] std::size_t total_delivered() const;
  [[nodiscard]] std::size_t total_offered() const;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(Deployment& deployment, std::uint64_t seed = 7,
                          RunOptions options = {});

  void set_options(RunOptions options) { options_ = std::move(options); }
  [[nodiscard]] const RunOptions& options() const { return options_; }
  [[nodiscard]] Db prune_margin() const { return options_.prune_margin; }
  [[nodiscard]] std::uint64_t seed() const { return rng_.root_seed(); }

  // Deprecated setter shims, kept for one release for external callers.
  [[deprecated("pass RunOptions to the constructor or set_options")]]
  void set_prune_margin(Db margin) {
    options_.prune_margin = margin;
  }
  [[deprecated("pass RunOptions to the constructor or set_options")]]
  void set_post_processor(RxPostProcessor proc) {
    options_.post_processor = std::move(proc);
  }

  // Attach the correctness harness: every window is checked for packet
  // conservation, FCFS ordering, and decoder-pool discipline. Enabled
  // automatically (fail-fast) when ALPHAWAN_CHECK=1 is exported. Pass
  // nullptr to detach. The observer protocol is sequential, so an attached
  // checker forces the window to run serially.
  void set_invariants(SimInvariants* invariants) { invariants_ = invariants; }
  [[nodiscard]] SimInvariants* invariants() const { return invariants_; }

  // Run one window. Transmissions may belong to any network in the
  // deployment; every gateway observes every transmission in range
  // (including foreign ones — that is the point of the paper).
  WindowResult run_window(const std::vector<Transmission>& txs);

  // Convenience: run a window and add each fate to `metrics`.
  WindowResult run_window(const std::vector<Transmission>& txs,
                          MetricsCollector& metrics);

  // Shard telemetry from the most recent run_window call.
  [[nodiscard]] const ShardWindowStats& shard_stats() const {
    return shard_stats_;
  }

 private:
  // Per-window working storage, reused across windows so a steady-state
  // window allocates nothing in the prepass or the classification pass
  // (docs/performance.md). Makes concurrent run_window calls on one runner
  // invalid — they already were (network servers are shared state).
  //
  // Routing state (rows, candidate masks, per-column tx lists) lives per
  // shard: each shard's arenas reference only its own LinkCache slice, and
  // its Engine is the event queue that publishes the shard's yields at the
  // window barrier (docs/sharding.md).
  struct ShardScratch {
    std::vector<std::uint32_t> row_of_tx;  // tx index -> row in this slice
    std::vector<std::uint64_t> tx_mask;    // tx index -> candidate columns
    std::vector<std::vector<std::uint32_t>> gw_txs;  // per-column tx lists
                                                     // (> 64-column path)
    std::vector<std::size_t> tasks;  // global task indices homed here
    bool use_mask = true;            // slice fits the 64-column mask path
    Engine engine;  // shard-local queue; publishes yields at the barrier
  };

  struct RunScratch {
    std::vector<ShardScratch> shards;
    std::vector<std::uint32_t> task_col;    // task index -> column in slice
    std::vector<std::uint32_t> task_shard;  // task index -> home shard
    std::vector<std::uint32_t> task_slot;   // task index -> slot in shard
    std::vector<std::vector<RxEvent>> events;  // per-task event arena
    // Per-shard staging slots for the window's yields, plus the publish
    // pointers the barrier exchange fills (global task index -> staged
    // yield). Pointer publication replaces the old move-into-a-local-vector
    // exchange so the per-task buffers persist window to window.
    std::vector<std::vector<GatewayYield>> staged;
    std::vector<const GatewayYield*> yield_ptr;
    // Batched-mode arenas (ALPHAWAN_BATCH=1): the window's shared
    // transmission columns plus per-task candidate index / fading / power
    // buffers consumed by the batched kernels (phy/batch_kernels.hpp).
    // The RxEvent arenas above are then only materialized for tasks whose
    // gateway runs a post-processor or capture policy (both take events).
    WindowTxTable table;
    std::vector<std::vector<std::uint32_t>> task_idx;
    std::vector<std::vector<double>> task_fade;
    std::vector<std::vector<Dbm>> task_power;
    // Flat per-packet own-network outcome gather (count / prefix / fill).
    std::vector<std::uint32_t> own_count;
    std::vector<std::uint32_t> own_offset;
    std::vector<RxOutcome> own_flat;
    // Per-network uplink gather handed to NetworkServer::ingest.
    std::vector<UplinkRecord> uplinks;
    // Flat per-network classification counters (dense network index).
    std::vector<NetworkId> net_ids;
    std::vector<std::size_t> offered;
    std::vector<std::size_t> delivered;
    std::vector<std::vector<NodeId>> served;
  };

  Deployment& deployment_;
  Rng rng_;
  RunOptions options_;
  SimInvariants* invariants_ = nullptr;
  RunScratch scratch_;
  ShardWindowStats shard_stats_;
};

}  // namespace alphawan
