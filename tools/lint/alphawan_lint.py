#!/usr/bin/env python3
"""alphawan-lint: project-convention static analysis for the AlphaWAN tree.

Every guarantee this reproduction makes -- bit-identical digests across
thread and shard counts, exact chaos replay, golden-scenario stability --
rests on conventions (keyed Rng substreams, no wall clock in sim paths, no
digest-affecting iteration over unordered containers, Quantity<Tag> instead
of raw doubles) that used to be enforced only by review and by the property
suites happening to hit a violation.  This tool enforces them statically.

Two engines implement the same check catalogue:

  * this file -- a token-level engine over a real C++ lexer (comments,
    string/char literals and raw strings are blanked position-preservingly
    before any pattern runs).  It needs nothing beyond Python 3 and runs in
    every environment, so it is what ctest and the gating CI job execute.
  * tools/lint/alphawan_lint_clang.cpp -- a clang libTooling / AST-matcher
    checker built only where Clang development packages exist (see
    tools/lint/CMakeLists.txt).  Same check ids, same allow grammar.

Check catalogue (ids are what ALPHAWAN-LINT-ALLOW annotations name):

  determinism-wallclock        std::random_device, rand()/srand(),
                               system_clock, un-annotated steady_clock
                               anywhere under src/.
  determinism-unordered-iter   range-for / .begin() iteration over a
                               std::unordered_{map,set} variable inside the
                               digest-affecting subsystems (src/sim, src/phy,
                               src/radio, src/check).
  determinism-unordered-member declaration of a std::unordered_{map,set}
                               member/local in a digest-affecting subsystem
                               without an annotation documenting that it is
                               never iterated.
  rng-literal-seed             Rng constructed or reseeded from an integer
                               literal outside tests/ and bench/.
  rng-shared-capture           an Rng captured by reference into a lambda
                               handed to parallel_for/parallel_map and drawn
                               from inside the body (substream()/root_seed()
                               are const and exempt).
  units-raw-double             public function parameter or return typed raw
                               double/float whose name carries a unit suffix
                               (_dbm/_db/_hz/_seconds/_m) instead of the
                               Quantity<Tag> strong type.
  units-value-roundtrip        Quantity{x.value()} pure unwrap-then-rewrap.
  units-swappable-pair         adjacent same-unit (or same raw floating)
                               parameters in a header declaration -- the
                               silent-transposition hazard docs/units.md
                               documents.
  ordering-pointer-key         std::map/std::set keyed on a raw pointer
                               (iteration order = allocation order).

Suppression grammar, checked itself:

  // ALPHAWAN-LINT-ALLOW(<check-id>: <reason>)

on the finding's line or on the run of comment lines directly above it.
An annotation naming an unknown check id is reported as lint-allow-unknown;
an annotation that suppresses nothing is reported as lint-allow-unused (it
has expired and must be deleted); one missing the ": reason" part is
lint-allow-malformed.

Usage:
  alphawan_lint.py --compile-commands build/compile_commands.json \
      [--baseline tools/lint/lint_baseline.json] [--write-baseline]
  alphawan_lint.py --fixture tests/lint/foo.cpp --as-path src/sim/foo.cpp \
      [--expected tests/lint/foo.expected]
  alphawan_lint.py FILE...

Exit status: 0 clean (or fixture matches), 1 findings outside the baseline
(or fixture mismatch), 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
)

DIGEST_DIRS = ("src/sim/", "src/phy/", "src/radio/", "src/check/")
QUANTITY_TYPES = ("Hz", "Db", "Dbm", "Seconds", "Meters")
UNIT_SUFFIX = r"(?:_dbm|_db|_hz|_seconds|_m)"

CHECK_IDS = (
    "determinism-wallclock",
    "determinism-unordered-iter",
    "determinism-unordered-member",
    "rng-literal-seed",
    "rng-shared-capture",
    "units-raw-double",
    "units-value-roundtrip",
    "units-swappable-pair",
    "ordering-pointer-key",
)
META_CHECK_IDS = (
    "lint-allow-unknown",
    "lint-allow-unused",
    "lint-allow-malformed",
)


@dataclass
class Finding:
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    check: str
    message: str
    context: str = ""  # normalized source line, for baseline fingerprints

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.check}: {self.message}"


@dataclass
class Annotation:
    line: int
    check: str
    reason: str
    used: bool = False


@dataclass
class LexedFile:
    path: str  # repo-relative virtual path used for scoping
    raw_lines: list[str]
    code_lines: list[str]  # comments/strings blanked, positions preserved
    comment_lines: list[str]  # only comment text survives, rest blanked
    annotations: list[Annotation] = field(default_factory=list)
    malformed_allow: list[int] = field(default_factory=list)

    @property
    def code(self) -> str:
        return "\n".join(self.code_lines)


# --------------------------------------------------------------------------
# Lexer: blank comments and literals while preserving line/column positions.
# --------------------------------------------------------------------------

_ALLOW_RE = re.compile(
    r"ALPHAWAN-LINT-ALLOW\(\s*([A-Za-z0-9_-]+)\s*:\s*([^)]*?)\s*\)"
)
_ALLOW_ANY_RE = re.compile(r"ALPHAWAN-LINT-ALLOW")


def lex_file(path: str, text: str) -> LexedFile:
    """Split `text` into code-only and comment-only views, same shape."""
    n = len(text)
    code = list(text)
    comm = [c if c == "\n" else " " for c in text]
    i = 0
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = i
            while j < n and text[j] != "\n":
                comm[j] = text[j]
                code[j] = " "
                j += 1
            i = j
        elif c == "/" and nxt == "*":
            j = i
            end = text.find("*/", i + 2)
            end = n if end < 0 else end + 2
            while j < end:
                if text[j] != "\n":
                    comm[j] = text[j]
                    code[j] = " "
                j += 1
            i = end
        elif c == "R" and nxt == '"' and (i == 0 or not _ident_char(text[i - 1])):
            # Raw string literal R"delim( ... )delim"
            m = re.match(r'R"([^()\\ \t\n]{0,16})\(', text[i:])
            if m is None:
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            end = text.find(close, i + m.end())
            end = n if end < 0 else end + len(close)
            for j in range(i, end):
                if text[j] != "\n":
                    code[j] = " "
            # keep the R" prefix visible? no -- blank it all
            i = end
        elif c == '"' or c == "'":
            # Skip char/string literal with escapes.  Don't blank the
            # delimiters' positions' *content* semantics; blanking all is
            # fine for our checks.
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                elif text[j] == "\n":
                    break  # unterminated; bail at newline
                j += 1
            end = min(j + 1, n)
            for k in range(i, end):
                if text[k] != "\n":
                    code[k] = " "
            i = end
        else:
            i += 1

    code_lines = "".join(code).split("\n")
    comment_lines = "".join(comm).split("\n")
    raw_lines = text.split("\n")

    lf = LexedFile(path, raw_lines, code_lines, comment_lines)
    for lineno, ctext in enumerate(comment_lines, start=1):
        if "ALPHAWAN-LINT-ALLOW" not in ctext:
            continue
        # The 80-column limit forces long reasons onto continuation comment
        # lines; join comment-only lines until the annotation's parentheses
        # balance (or we run out of pure-comment lines).
        joined = ctext.strip()
        probe = lineno
        while (joined.count("(") > joined.count(")")
               and probe < len(comment_lines)
               and not code_lines[probe].strip()
               and comment_lines[probe].strip()):
            cont = comment_lines[probe].strip()
            joined += " " + cont.lstrip("/").strip()
            probe += 1
        matches = list(_ALLOW_RE.finditer(joined))
        for m in matches:
            lf.annotations.append(
                Annotation(lineno, m.group(1), m.group(2).strip())
            )
        n_markers = len(_ALLOW_ANY_RE.findall(joined))
        if len(matches) < n_markers or any(
            not m.group(2).strip() for m in matches
        ):
            lf.malformed_allow.append(lineno)
    return lf


def _ident_char(c: str) -> bool:
    return c.isalnum() or c == "_"


# --------------------------------------------------------------------------
# Scoping rules
# --------------------------------------------------------------------------


def in_src(path: str) -> bool:
    return path.startswith("src/")


def in_digest_dirs(path: str) -> bool:
    return path.startswith(DIGEST_DIRS)


def rng_seed_scope(path: str) -> bool:
    # Literal Rng seeds are fine in tests and benches; everywhere else
    # (src/, examples/) seeds must flow in from configuration.
    return path.startswith(("src/", "examples/"))


def is_header(path: str) -> bool:
    return path.endswith((".hpp", ".h"))


# --------------------------------------------------------------------------
# Helpers shared by checks
# --------------------------------------------------------------------------


def line_of_offset(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def balanced_span(text: str, open_idx: int, open_ch: str, close_ch: str):
    """Return index one past the matching close bracket, or -1."""
    depth = 0
    i = open_idx
    n = len(text)
    while i < n:
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return -1


def balanced_angle_span(text: str, open_idx: int):
    """Match template angle brackets, tolerating >> closers and
    parenthesized expressions inside."""
    depth = 0
    i = open_idx
    n = len(text)
    while i < n:
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in "({[":
            closer = {"(": ")", "{": "}", "[": "]"}[c]
            nxt = balanced_span(text, i, c, closer)
            if nxt < 0:
                return -1
            i = nxt
            continue
        i += 1
    return -1


def split_top_level(text: str, sep: str = ","):
    """Split on `sep` at bracket depth zero."""
    parts, depth, start = [], 0, 0
    for i, c in enumerate(text):
        if c in "<([{":
            depth += 1
        elif c in ">)]}":
            depth -= 1
        elif c == sep and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return parts


# --------------------------------------------------------------------------
# Check implementations.  Each takes a LexedFile and returns [Finding].
# --------------------------------------------------------------------------

_WALLCLOCK_PATTERNS = (
    (re.compile(r"\bstd\s*::\s*random_device\b|(?<![\w:])random_device\s*\{|(?<![\w:])random_device\s+\w+"),
     "std::random_device is non-deterministic; draw from a seeded Rng"),
    (re.compile(r"(?<![\w.>])(?:std\s*::\s*|::\s*)?s?rand\s*\("),
     "rand()/srand() bypass the seeded Rng substreams"),
    (re.compile(r"\bsystem_clock\b"),
     "std::chrono::system_clock reads the wall clock; simulation time must "
     "come from the event queue"),
)
_STEADY_RE = re.compile(r"\bsteady_clock\b")


def check_determinism_wallclock(lf: LexedFile) -> list[Finding]:
    if not in_src(lf.path):
        return []
    out = []
    for lineno, line in enumerate(lf.code_lines, start=1):
        for pat, msg in _WALLCLOCK_PATTERNS:
            if pat.search(line):
                out.append(Finding(lf.path, lineno, "determinism-wallclock",
                                   msg, lf.raw_lines[lineno - 1].strip()))
        if _STEADY_RE.search(line):
            out.append(Finding(
                lf.path, lineno, "determinism-wallclock",
                "steady_clock in src/ must be annotated (telemetry-only "
                "uses) or routed through an injectable MonotonicClock "
                "(src/common/clock.hpp)",
                lf.raw_lines[lineno - 1].strip()))
    return out


_UNORDERED_DECL_RE = re.compile(r"\bstd\s*::\s*unordered_(?:map|set)\s*<")


def _unordered_decls(lf: LexedFile):
    """Yield (decl_line, var_name) for unordered_{map,set} declarations."""
    text = lf.code
    for m in _UNORDERED_DECL_RE.finditer(text):
        open_idx = text.index("<", m.start())
        end = balanced_angle_span(text, open_idx)
        if end < 0:
            continue
        tail = text[end:end + 200]
        name_m = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*(?:[;={(]|$)", tail)
        name = name_m.group(1) if name_m else ""
        yield line_of_offset(text, m.start()), name


def check_determinism_unordered(lf: LexedFile) -> list[Finding]:
    if not in_digest_dirs(lf.path):
        return []
    out = []
    names = set()
    for decl_line, name in _unordered_decls(lf):
        if name:
            names.add(name)
        out.append(Finding(
            lf.path, decl_line, "determinism-unordered-member",
            f"std::unordered container '{name or '<anonymous>'}' declared in "
            "a digest-affecting subsystem; annotate with the no-iteration "
            "contract or use a sorted container",
            lf.raw_lines[decl_line - 1].strip()))
    if names:
        alt = "|".join(re.escape(n) for n in sorted(names))
        iter_re = re.compile(
            r"for\s*\([^;()]*:\s*(?:this->)?(" + alt + r")\s*\)"
            r"|\b(" + alt + r")\s*\.\s*c?begin\s*\(")
        for lineno, line in enumerate(lf.code_lines, start=1):
            m = iter_re.search(line)
            if m:
                name = m.group(1) or m.group(2)
                out.append(Finding(
                    lf.path, lineno, "determinism-unordered-iter",
                    f"iteration over std::unordered container '{name}' in a "
                    "digest-affecting subsystem: iteration order is "
                    "implementation-defined and breaks bit-identical replay",
                    lf.raw_lines[lineno - 1].strip()))
    return out


_RNG_LITERAL_RE = re.compile(  # Rng{7}, Rng(7) and `Rng name(7)` forms
    r"\bRng\s*(?:[A-Za-z_]\w*\s*)?[({]\s*(?:0[xX][0-9A-Fa-f']+|\d[\d']*)\b")
_RNG_RESEED_RE = re.compile(
    r"\.\s*reseed\s*\(\s*(?:0[xX][0-9A-Fa-f']+|\d[\d']*)\b")


def check_rng_literal_seed(lf: LexedFile) -> list[Finding]:
    if not rng_seed_scope(lf.path):
        return []
    out = []
    for lineno, line in enumerate(lf.code_lines, start=1):
        if _RNG_LITERAL_RE.search(line) or _RNG_RESEED_RE.search(line):
            out.append(Finding(
                lf.path, lineno, "rng-literal-seed",
                "Rng seeded from a literal outside tests//bench/: seeds must "
                "flow in from configuration so runs stay replayable from one "
                "root seed",
                lf.raw_lines[lineno - 1].strip()))
    return out


_RNG_DECL_RE = re.compile(
    r"(?<![\w:])(const\s+)?Rng\s*&?\s+([A-Za-z_]\w*)\s*[;,)=({]")
_RNG_MUTATING = (
    r"(?:next|uniform|uniform_int|normal|normal_once|exponential|chance|"
    r"fork|reseed)\s*\(")
_PARALLEL_RE = re.compile(r"\bparallel_(?:for|map)\s*\(")


def check_rng_shared_capture(lf: LexedFile) -> list[Finding]:
    if not in_src(lf.path):
        return []
    text = lf.code
    # Non-const Rng variables visible in this file.
    rngs = set()
    for m in _RNG_DECL_RE.finditer(text):
        if not m.group(1):  # skip `const Rng`
            rngs.add(m.group(2))
    if not rngs:
        return []
    out = []
    for m in _PARALLEL_RE.finditer(text):
        open_idx = text.index("(", m.start())
        end = balanced_span(text, open_idx, "(", ")")
        if end < 0:
            continue
        call = text[open_idx:end]
        for lam in re.finditer(r"\[([^\[\]]*)\]\s*\(", call):
            captures = lam.group(1)
            body_open = call.index("(", lam.end() - 1)
            body_brace = call.find("{", body_open)
            if body_brace < 0:
                continue
            body_end = balanced_span(call, body_brace, "{", "}")
            body = call[body_brace:body_end if body_end > 0 else len(call)]
            by_ref_all = bool(re.match(r"\s*&\s*(?:,|$)", captures))
            explicit_refs = set(
                re.findall(r"&\s*([A-Za-z_]\w*)", captures))
            # An Rng declared inside the body is a fresh per-index
            # substream -- the sanctioned pattern -- not a capture.
            body_locals = {m.group(2)
                           for m in _RNG_DECL_RE.finditer(body)}
            for name in sorted(rngs - body_locals):
                captured = by_ref_all or name in explicit_refs
                if not captured:
                    continue
                if re.search(
                        r"\b" + re.escape(name) + r"\s*(?:\.\s*" +
                        _RNG_MUTATING + r"|\(\s*\))", body):
                    lineno = line_of_offset(
                        text, open_idx + body_brace)
                    out.append(Finding(
                        lf.path, lineno, "rng-shared-capture",
                        f"Rng '{name}' captured by reference into a "
                        "parallel_for/parallel_map body and drawn from: "
                        "draw order then depends on scheduling; derive a "
                        "per-index substream() instead",
                        lf.raw_lines[lineno - 1].strip()))
    return out


_RAW_PARAM_RE = re.compile(
    r"\b(double|float)\s+([A-Za-z_]\w*" + UNIT_SUFFIX + r")\b\s*(?=[,)=])")
_RAW_RETURN_RE = re.compile(
    r"(?<![\w:])(double|float)\s+([A-Za-z_]\w*" + UNIT_SUFFIX + r")\s*\(")


def check_units_raw_double(lf: LexedFile) -> list[Finding]:
    if not (in_src(lf.path) and is_header(lf.path)):
        return []
    out = []
    for lineno, line in enumerate(lf.code_lines, start=1):
        for m in _RAW_PARAM_RE.finditer(line):
            out.append(Finding(
                lf.path, lineno, "units-raw-double",
                f"parameter '{m.group(2)}' carries a unit suffix but is raw "
                f"{m.group(1)}; use the Quantity<Tag> strong type "
                "(src/common/units.hpp)",
                lf.raw_lines[lineno - 1].strip()))
        for m in _RAW_RETURN_RE.finditer(line):
            out.append(Finding(
                lf.path, lineno, "units-raw-double",
                f"function '{m.group(2)}' is named with a unit suffix but "
                f"returns raw {m.group(1)}; return the Quantity<Tag> strong "
                "type",
                lf.raw_lines[lineno - 1].strip()))
    return out


_ROUNDTRIP_RE = re.compile(
    r"\b(" + "|".join(QUANTITY_TYPES) + r")\s*[{(]\s*"
    r"([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*(?:\.|->)\s*value\(\)\s*[})]")


def check_units_value_roundtrip(lf: LexedFile) -> list[Finding]:
    if not in_src(lf.path):
        return []
    out = []
    for lineno, line in enumerate(lf.code_lines, start=1):
        for m in _ROUNDTRIP_RE.finditer(line):
            out.append(Finding(
                lf.path, lineno, "units-value-roundtrip",
                f"{m.group(1)}{{{m.group(2)}.value()}} unwraps a quantity "
                "just to rewrap it; pass the strong type through",
                lf.raw_lines[lineno - 1].strip()))
    return out


_SWAPPABLE_TYPES = QUANTITY_TYPES + ("double", "float")
_FUNC_PAREN_RE = re.compile(r"[A-Za-z_]\w*\s*\(")
_PARAM_TYPE_RE = re.compile(
    r"^\s*(?:const\s+)?(" + "|".join(_SWAPPABLE_TYPES) + r")\s+[A-Za-z_]\w*"
    r"\s*(?:=[^,]*)?$")


def check_units_swappable_pair(lf: LexedFile) -> list[Finding]:
    if not (in_src(lf.path) and is_header(lf.path)):
        return []
    text = lf.code
    out = []
    for m in _FUNC_PAREN_RE.finditer(text):
        open_idx = text.index("(", m.start())
        end = balanced_span(text, open_idx, "(", ")")
        if end < 0:
            continue
        params = split_top_level(text[open_idx + 1:end - 1])
        types = []
        for p in params:
            tm = _PARAM_TYPE_RE.match(" ".join(p.split()))
            types.append(tm.group(1) if tm else None)
        for a, b in zip(types, types[1:]):
            if a is not None and a == b:
                lineno = line_of_offset(text, m.start())
                out.append(Finding(
                    lf.path, lineno, "units-swappable-pair",
                    f"adjacent parameters share the type '{a}': a silent "
                    "argument transposition compiles; reorder, wrap in "
                    "distinct strong types, or annotate the documented "
                    "convention",
                    lf.raw_lines[lineno - 1].strip()))
                break  # one finding per signature
    return out


_PTR_KEY_RE = re.compile(r"\bstd\s*::\s*(map|set)\s*<")


def check_ordering_pointer_key(lf: LexedFile) -> list[Finding]:
    if not in_src(lf.path):
        return []
    text = lf.code
    out = []
    for m in _PTR_KEY_RE.finditer(text):
        open_idx = text.index("<", m.start())
        end = balanced_angle_span(text, open_idx)
        if end < 0:
            continue
        args = split_top_level(text[open_idx + 1:end - 1])
        if args and args[0].strip().endswith("*"):
            lineno = line_of_offset(text, m.start())
            out.append(Finding(
                lf.path, lineno, "ordering-pointer-key",
                f"std::{m.group(1)} keyed on a raw pointer: iteration order "
                "is allocation order, which varies run to run; key on a "
                "stable id or annotate the lookup-only contract",
                lf.raw_lines[lineno - 1].strip()))
    return out


ALL_CHECKS = (
    check_determinism_wallclock,
    check_determinism_unordered,
    check_rng_literal_seed,
    check_rng_shared_capture,
    check_units_raw_double,
    check_units_value_roundtrip,
    check_units_swappable_pair,
    check_ordering_pointer_key,
)


# --------------------------------------------------------------------------
# Annotation application
# --------------------------------------------------------------------------


def _comment_only(lf: LexedFile, lineno: int) -> bool:
    if lineno < 1 or lineno > len(lf.code_lines):
        return False
    return not lf.code_lines[lineno - 1].strip()


def apply_annotations(lf: LexedFile, findings: list[Finding]):
    """Drop findings covered by an annotation; report annotation misuse."""
    by_line: dict[int, list[Annotation]] = {}
    for ann in lf.annotations:
        by_line.setdefault(ann.line, []).append(ann)

    def annotations_covering(lineno: int):
        yield from by_line.get(lineno, [])
        probe = lineno - 1
        while _comment_only(lf, probe):
            yield from by_line.get(probe, [])
            probe -= 1

    kept = []
    for f in findings:
        suppressed = False
        for ann in annotations_covering(f.line):
            if ann.check == f.check:
                ann.used = True
                suppressed = True
        if not suppressed:
            kept.append(f)

    known = set(CHECK_IDS)
    for ann in lf.annotations:
        if ann.check not in known:
            kept.append(Finding(
                lf.path, ann.line, "lint-allow-unknown",
                f"ALPHAWAN-LINT-ALLOW names unknown check '{ann.check}' "
                f"(known: {', '.join(CHECK_IDS)})",
                lf.raw_lines[ann.line - 1].strip()))
        elif not ann.used:
            kept.append(Finding(
                lf.path, ann.line, "lint-allow-unused",
                f"ALPHAWAN-LINT-ALLOW({ann.check}: ...) no longer suppresses "
                "anything -- the finding it grandfathered is gone; delete "
                "the annotation",
                lf.raw_lines[ann.line - 1].strip()))
    for lineno in lf.malformed_allow:
        kept.append(Finding(
            lf.path, lineno, "lint-allow-malformed",
            "ALPHAWAN-LINT-ALLOW must be written "
            "ALPHAWAN-LINT-ALLOW(<check-id>: <reason>) with a non-empty "
            "reason",
            lf.raw_lines[lineno - 1].strip()))
    kept.sort(key=lambda f: (f.path, f.line, f.check))
    return kept


def lint_file(real_path: str, virtual_path: str) -> list[Finding]:
    with open(real_path, "r", encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    lf = lex_file(virtual_path, text)
    findings: list[Finding] = []
    for chk in ALL_CHECKS:
        findings.extend(chk(lf))
    return apply_annotations(lf, findings)


# --------------------------------------------------------------------------
# File-set discovery
# --------------------------------------------------------------------------


def rel_to_root(path: str) -> str:
    rp = os.path.relpath(os.path.abspath(path), REPO_ROOT)
    return rp.replace(os.sep, "/")


def files_from_compile_commands(cc_path: str) -> list[str]:
    with open(cc_path, "r", encoding="utf-8") as fh:
        entries = json.load(fh)
    files = set()
    for e in entries:
        f = e.get("file", "")
        if not os.path.isabs(f):
            f = os.path.join(e.get("directory", ""), f)
        rp = rel_to_root(f)
        if rp.startswith(("src/", "examples/")):
            files.add(rp)
    # compile_commands only lists translation units; the header-scoped
    # checks (units, unordered members) need the headers too.
    for dirpath, _dirnames, filenames in os.walk(
            os.path.join(REPO_ROOT, "src")):
        for fn in filenames:
            if fn.endswith((".hpp", ".h")):
                files.add(rel_to_root(os.path.join(dirpath, fn)))
    return sorted(files)


# --------------------------------------------------------------------------
# Baseline
# --------------------------------------------------------------------------


def fingerprint(f: Finding):
    return (f.path, f.check, f.context)


def load_baseline(path: str):
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    counts: dict[tuple, int] = {}
    for e in data.get("entries", []):
        key = (e["file"], e["check"], e["context"])
        counts[key] = counts.get(key, 0) + int(e.get("count", 1))
    return counts


def write_baseline(path: str, findings: list[Finding]):
    counts: dict[tuple, int] = {}
    for f in findings:
        counts[fingerprint(f)] = counts.get(fingerprint(f), 0) + 1
    entries = [
        {"file": k[0], "check": k[1], "context": k[2], "count": v}
        for k, v in sorted(counts.items())
    ]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"version": 1,
                   "comment": "Grandfathered alphawan-lint findings. "
                              "Shrink-only: scripts/check_lint_baseline.py "
                              "fails CI when this file grows.",
                   "entries": entries}, fh, indent=2)
        fh.write("\n")


def apply_baseline(findings: list[Finding], counts: dict):
    remaining = dict(counts)
    kept, suppressed = [], 0
    for f in findings:
        key = fingerprint(f)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            suppressed += 1
        else:
            kept.append(f)
    stale = [k for k, v in remaining.items() if v > 0]
    return kept, suppressed, stale


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------


def run_fixture(args) -> int:
    virtual = args.as_path or rel_to_root(args.fixture)
    findings = lint_file(args.fixture, virtual)
    got = [f"{f.line}: {f.check}" for f in findings]
    if args.expected is None:
        for f in findings:
            print(f.render())
        return 0 if not findings else 1
    want = []
    with open(args.expected, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line and not line.startswith("#"):
                want.append(line)
    if sorted(got) == sorted(want):
        print(f"fixture OK: {args.fixture} "
              f"({len(got)} expected finding(s))")
        return 0
    print(f"fixture MISMATCH: {args.fixture}", file=sys.stderr)
    for g in got:
        mark = " " if g in want else "+"
        print(f"  {mark} {g}", file=sys.stderr)
    for w in want:
        if w not in got:
            print(f"  - {w} (expected, not reported)", file=sys.stderr)
    return 1


def main(argv=None) -> int:
    global REPO_ROOT
    ap = argparse.ArgumentParser(
        prog="alphawan_lint.py",
        description="AlphaWAN project-convention static analysis "
                    "(token engine)")
    ap.add_argument("files", nargs="*", help="explicit files to lint")
    ap.add_argument("--compile-commands", metavar="JSON",
                    help="derive the file set from a compile database")
    ap.add_argument("--baseline", metavar="JSON",
                    help="suppress findings recorded in this baseline file")
    ap.add_argument("--write-baseline", action="store_true",
                    help="rewrite --baseline from the current findings")
    ap.add_argument("--fixture", metavar="CPP",
                    help="lint one fixture file (with --as-path scoping)")
    ap.add_argument("--as-path", metavar="RELPATH",
                    help="virtual repo-relative path for --fixture scoping")
    ap.add_argument("--expected", metavar="FILE",
                    help="expected-diagnostics file ('LINE: CHECK' per line)")
    ap.add_argument("--root", metavar="DIR", default=REPO_ROOT,
                    help="tree root for path scoping (default: the repo "
                         "containing this script); tests use a staged root")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)
    REPO_ROOT = os.path.abspath(args.root)

    if args.fixture:
        return run_fixture(args)

    if args.compile_commands:
        rel_files = files_from_compile_commands(args.compile_commands)
    elif args.files:
        rel_files = [rel_to_root(f) for f in args.files]
    else:
        ap.error("need FILE..., --compile-commands, or --fixture")

    findings: list[Finding] = []
    for rp in rel_files:
        real = os.path.join(REPO_ROOT, rp)
        if not os.path.exists(real):
            print(f"alphawan-lint: missing file {rp}", file=sys.stderr)
            return 2
        findings.extend(lint_file(real, rp))

    suppressed, stale = 0, []
    if args.baseline and args.write_baseline:
        write_baseline(args.baseline, findings)
        print(f"alphawan-lint: wrote {len(findings)} finding(s) to "
              f"{args.baseline}")
        return 0
    if args.baseline:
        counts = load_baseline(args.baseline)
        findings, suppressed, stale = apply_baseline(findings, counts)

    for f in findings:
        print(f.render())
    for key in stale:
        print(f"alphawan-lint: stale baseline entry ({key[0]}, {key[1]}): "
              "the finding is gone -- shrink the baseline", file=sys.stderr)
    if not args.quiet:
        print(f"alphawan-lint: {len(rel_files)} file(s), "
              f"{len(findings)} finding(s), {suppressed} baselined"
              + (f", {len(stale)} stale baseline entr(y/ies)" if stale else ""))
    return 1 if findings or stale else 0


if __name__ == "__main__":
    sys.exit(main())
