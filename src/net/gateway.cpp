#include "net/gateway.hpp"

namespace alphawan {

Gateway::Gateway(GatewayId id, NetworkId network, Point position,
                 GatewayProfile profile, std::uint16_t sync_word)
    : id_(id),
      network_(network),
      position_(position),
      radio_(profile, network, sync_word),
      antenna_(std::make_unique<OmniAntenna>()) {}

void Gateway::apply_channels(const GatewayChannelConfig& config) {
  radio_.configure_channels(config.channels);
  channels_ = config.channels;
  ++reboot_count_;
}

bool Gateway::apply_channels(const GatewayChannelConfig& config,
                             std::uint32_t version) {
  if (version <= config_version_) return false;
  apply_channels(config);
  config_version_ = version;
  return true;
}

void Gateway::set_antenna(std::unique_ptr<Antenna> antenna,
                          double boresight_rad) {
  antenna_ = std::move(antenna);
  boresight_rad_ = boresight_rad;
  ++antenna_epoch_;
}

Db Gateway::antenna_gain_towards(const Point& target) const {
  const double azimuth = bearing(position_, target);
  return antenna_->gain(azimuth - boresight_rad_);
}

std::vector<RxOutcome> Gateway::receive_window(
    const std::vector<RxEvent>& events, std::vector<UplinkRecord>& uplinks) {
  auto outcomes = radio_.process(events);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& out = outcomes[i];
    if (out.disposition != RxDisposition::kDelivered) continue;
    UplinkRecord rec;
    rec.packet = out.packet;
    rec.node = out.node;
    rec.gateway = id_;
    rec.network = network_;
    rec.timestamp = events[i].tx.end();
    rec.channel = events[i].tx.channel;
    rec.dr = sf_to_dr(events[i].tx.params.sf);
    rec.snr = out.snr;
    uplinks.push_back(rec);
  }
  return outcomes;
}

std::vector<RxOutcome> Gateway::receive_window(
    const RxEventView& view, std::vector<UplinkRecord>& uplinks) {
  std::vector<RxOutcome> outcomes;
  receive_window(view, uplinks, outcomes);
  return outcomes;
}

void Gateway::receive_window(const RxEventView& view,
                             std::vector<UplinkRecord>& uplinks,
                             std::vector<RxOutcome>& outcomes) {
  radio_.process_into(view, outcomes);
  const WindowTxTable& tbl = *view.table;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& out = outcomes[i];
    if (out.disposition != RxDisposition::kDelivered) continue;
    const std::uint32_t t = view.tx_index[i];
    UplinkRecord rec;
    rec.packet = out.packet;
    rec.node = out.node;
    rec.gateway = id_;
    rec.network = network_;
    rec.timestamp = tbl.end[t];
    rec.channel = tbl.channel[t];
    rec.dr = sf_to_dr(tbl.sf[t]);
    rec.snr = out.snr;
    uplinks.push_back(rec);
  }
}

}  // namespace alphawan
