#include "sim/batch.hpp"

#include <cstdlib>

namespace alphawan {

int parse_batch_mode(const char* text) {
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value == 0) return 0;
  return 1;
}

int default_batch_mode() {
  static const int mode = parse_batch_mode(std::getenv("ALPHAWAN_BATCH"));
  return mode;
}

int resolve_batch_mode(int requested) {
  if (requested < 0) return default_batch_mode();
  return requested == 0 ? 0 : 1;
}

}  // namespace alphawan
