#include "phy/airtime.hpp"

#include <algorithm>
#include <cmath>

namespace alphawan {

Seconds symbol_duration(SpreadingFactor sf, Hz bandwidth) {
  return Seconds{static_cast<double>(1u << sf_value(sf)) / bandwidth.value()};
}

Seconds preamble_duration(const TxParams& params) {
  return (static_cast<double>(params.preamble_symbols) + 4.25) *
         symbol_duration(params.sf, params.bandwidth);
}

bool low_data_rate_optimize(SpreadingFactor sf, Hz bandwidth) {
  return symbol_duration(sf, bandwidth) > Seconds{16e-3};
}

std::size_t payload_symbols(const TxParams& params,
                            std::size_t payload_bytes) {
  const int sf = sf_value(params.sf);
  const int de = low_data_rate_optimize(params.sf, params.bandwidth) ? 1 : 0;
  const int ih = params.explicit_header ? 0 : 1;
  const int crc = params.crc_enabled ? 1 : 0;
  const int cr = static_cast<int>(params.coding_rate);
  const double numerator =
      8.0 * static_cast<double>(payload_bytes) - 4.0 * sf + 28.0 + 16.0 * crc -
      20.0 * ih;
  const double denominator = 4.0 * (sf - 2 * de);
  const double blocks = std::ceil(std::max(numerator, 0.0) / denominator);
  return 8 + static_cast<std::size_t>(blocks * (cr + 4));
}

Seconds payload_duration(const TxParams& params, std::size_t payload_bytes) {
  return static_cast<double>(payload_symbols(params, payload_bytes)) *
         symbol_duration(params.sf, params.bandwidth);
}

Seconds time_on_air(const TxParams& params, std::size_t payload_bytes) {
  return preamble_duration(params) + payload_duration(params, payload_bytes);
}

double effective_bitrate(const TxParams& params, std::size_t payload_bytes) {
  const Seconds toa = time_on_air(params, payload_bytes);
  if (toa <= Seconds{0.0}) return 0.0;
  return 8.0 * static_cast<double>(payload_bytes) / toa.value();
}

}  // namespace alphawan
