// Compile-fail case: adding a bare double to a quantity
//
// Without CF_MISUSE this file must compile (positive control proving the
// harness sees a working translation unit). With -DCF_MISUSE it must NOT
// compile — ctest runs both variants (see CMakeLists.txt).
#include "common/units.hpp"

using namespace alphawan;

constexpr Db ok = Db{3.0} + Db{1.0};
#ifdef CF_MISUSE
constexpr Db bad = Db{3.0} + 1.0;  // the 1.0 must be wrapped explicitly
#endif

int main() { return 0; }
