// Co-channel capture model: when two LoRa transmissions overlap in time on
// the same (or partially overlapping) channel, whether the wanted packet
// survives depends on its signal-to-interference ratio and the SF pair.
//
// Same-SF interference is destructive unless the wanted packet is a few dB
// stronger (capture effect). Different SFs are quasi-orthogonal: the wanted
// packet survives unless the interferer is MUCH stronger (tens of dB). The
// thresholds follow the widely used measurements of Croce et al. (IEEE CL
// 2018) and match the paper's observation that orthogonal DRs coexist
// cleanly on overlapping channels (Fig. 8 / Fig. 16).
//
// Defined inline: the SIR threshold lookup runs once per candidate
// interferer pair in GatewayRadio::process, hot enough that the call
// overhead of an out-of-line table lookup is measurable.
#pragma once

#include <cmath>

#include "phy/lora_params.hpp"

namespace alphawan {

namespace detail {

// Croce et al. co-channel rejection matrix (dB), 125 kHz. Diagonal: the
// wanted packet needs ~+1 dB (we use +6 dB to model non-ideal timing /
// imperfect capture on COTS gateways). Off-diagonal: the interferer may
// be stronger by the listed magnitude before the wanted packet is lost.
inline constexpr double kCaptureSirMatrix[6][6] = {
    // interferer:  SF7     SF8     SF9     SF10    SF11    SF12
    /* SF7  */ {6.0, -8.0, -9.0, -9.0, -9.0, -9.0},
    /* SF8  */ {-11.0, 6.0, -11.0, -12.0, -13.0, -13.0},
    /* SF9  */ {-15.0, -13.0, 6.0, -13.0, -14.0, -15.0},
    /* SF10 */ {-19.0, -18.0, -17.0, 6.0, -17.0, -18.0},
    /* SF11 */ {-22.0, -22.0, -21.0, -20.0, 6.0, -20.0},
    /* SF12 */ {-25.0, -25.0, -25.0, -24.0, -23.0, 6.0},
};

}  // namespace detail

// Minimum SIR (dB) for the wanted packet (row: wanted SF, col: interferer
// SF) to survive a time-overlapping interferer.
[[nodiscard]] inline Db capture_sir_threshold(SpreadingFactor wanted,
                                              SpreadingFactor interferer) {
  return Db{detail::kCaptureSirMatrix[sf_index(wanted)][sf_index(interferer)]};
}

// True if a wanted packet with signal `wanted_dbm` survives a single
// interferer with in-band power `interferer_dbm`.
[[nodiscard]] inline bool survives_interference(SpreadingFactor wanted_sf,
                                                Dbm wanted_dbm,
                                                SpreadingFactor interferer_sf,
                                                Dbm interferer_dbm) {
  const Db sir = wanted_dbm - interferer_dbm;
  return sir >= capture_sir_threshold(wanted_sf, interferer_sf);
}

// Aggregate interference: combine interferer powers (linear sum, in dBm).
// Commutative, so the (a, b) order genuinely does not matter.
// ALPHAWAN-LINT-ALLOW(units-swappable-pair: commutative — both orders
// produce the same sum)
// NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
[[nodiscard]] inline Dbm combine_powers_dbm(Dbm a, Dbm b) {
  const double lin =
      std::pow(10.0, a.value() / 10.0) + std::pow(10.0, b.value() / 10.0);
  return Dbm{10.0 * std::log10(lin)};
}

}  // namespace alphawan
