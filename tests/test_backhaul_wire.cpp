#include "backhaul/wire.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

TEST(Wire, PrimitiveRoundTrip) {
  BufferWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(-2.5);
  w.str("hello");
  BufferReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.f64(), -2.5);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, LittleEndianLayout) {
  BufferWriter w;
  w.u16(0x0102);
  EXPECT_EQ(w.data()[0], 0x02);
  EXPECT_EQ(w.data()[1], 0x01);
}

TEST(Wire, TruncatedReadFails) {
  BufferWriter w;
  w.u16(7);
  BufferReader r(w.data());
  EXPECT_TRUE(r.u8().has_value());
  EXPECT_FALSE(r.u16().has_value());  // only 1 byte left
  EXPECT_FALSE(r.ok());
  // Latched: even a fitting read now fails.
  EXPECT_FALSE(r.u8().has_value());
}

TEST(Wire, StringWithBadLengthFails) {
  BufferWriter w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8('x');
  BufferReader r(w.data());
  EXPECT_FALSE(r.str().has_value());
  EXPECT_FALSE(r.ok());
}

TEST(Wire, EmptyString) {
  BufferWriter w;
  w.str("");
  BufferReader r(w.data());
  EXPECT_EQ(r.str(), "");
}

TEST(Wire, FramingRoundTrip) {
  BufferWriter w;
  w.str("payload");
  const auto framed = frame_message(w.data());
  FrameDecoder decoder;
  EXPECT_TRUE(decoder.feed(framed));
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, w.data());
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(Wire, FramingHandlesPartialDelivery) {
  BufferWriter w;
  w.u32(0xCAFEBABE);
  const auto framed = frame_message(w.data());
  FrameDecoder decoder;
  // Feed one byte at a time (TCP-style fragmentation).
  for (std::size_t i = 0; i < framed.size(); ++i) {
    const std::uint8_t byte = framed[i];
    EXPECT_TRUE(decoder.feed({&byte, 1}));
    if (i + 1 < framed.size()) {
      EXPECT_FALSE(decoder.next().has_value());
    }
  }
  EXPECT_TRUE(decoder.next().has_value());
}

TEST(Wire, FramingMultipleMessages) {
  BufferWriter a, b;
  a.u8(1);
  b.u8(2);
  auto stream = frame_message(a.data());
  const auto second = frame_message(b.data());
  stream.insert(stream.end(), second.begin(), second.end());
  FrameDecoder decoder;
  EXPECT_TRUE(decoder.feed(stream));
  EXPECT_EQ((*decoder.next())[0], 1);
  EXPECT_EQ((*decoder.next())[0], 2);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(Wire, OversizedFramePoisons) {
  BufferWriter w;
  w.u32(kMaxFrameBytes + 1);
  FrameDecoder decoder;
  EXPECT_TRUE(decoder.feed(w.data()));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_FALSE(decoder.feed(w.data()));
}

TEST(Wire, EmptyPayloadFrame) {
  const auto framed = frame_message({});
  FrameDecoder decoder;
  EXPECT_TRUE(decoder.feed(framed));
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_TRUE(payload->empty());
}

}  // namespace
}  // namespace alphawan
