// Shared coarse-frequency event index for gateway-side capture policies
// (CIC, SS5G, CurvingLoRa). Buckets one window's events by coarse
// frequency and sorts each bucket by start time, so finding a packet's
// co-channel time-overlappers is a windowed scan instead of O(n) per
// packet. Built per resolve() call — capture policies are stateless by
// contract (radio/capture_policy.hpp), so the index lives on the stack of
// the concurrent per-gateway task that needs it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "phy/overlap.hpp"
#include "radio/transmission.hpp"

namespace alphawan {

class OverlapIndex {
 public:
  explicit OverlapIndex(const std::vector<RxEvent>& events)
      : events_(events) {
    for (std::size_t i = 0; i < events.size(); ++i) {
      by_bucket_[bucket_of(events[i].tx.channel.center)].push_back(i);
    }
    for (auto& [bucket, indices] : by_bucket_) {
      std::sort(indices.begin(), indices.end(),
                [&](std::size_t a, std::size_t b) {
                  return events[a].tx.start < events[b].tx.start;
                });
      Seconds max_dur{0.0};
      for (const auto idx : indices) {
        max_dur =
            std::max(max_dur, events[idx].tx.end() - events[idx].tx.start);
      }
      longest_[bucket] = max_dur;
    }
  }

  // Visit every event j != i overlapping event i in time with co-channel
  // spectral overlap (overlap_ratio >= kDetectOverlapThreshold). The
  // visitor returns false to stop the scan early.
  template <typename Visitor>
  void for_each_cochannel_overlap(std::size_t i, Visitor&& visit) const {
    const auto& ev = events_[i];
    const std::int64_t center = bucket_of(ev.tx.channel.center);
    for (std::int64_t bucket = center - 1; bucket <= center + 1; ++bucket) {
      const auto it = by_bucket_.find(bucket);
      if (it == by_bucket_.end()) continue;
      const auto& indices = it->second;
      const auto first = std::lower_bound(
          indices.begin(), indices.end(),
          ev.tx.start - longest_.at(bucket),
          [&](std::size_t idx, Seconds t) {
            return events_[idx].tx.start < t;
          });
      for (auto jt = first; jt != indices.end(); ++jt) {
        const std::size_t j = *jt;
        if (events_[j].tx.start >= ev.tx.end()) break;
        if (j == i) continue;
        const auto& other = events_[j];
        if (!ev.tx.overlaps_in_time(other.tx)) continue;
        if (overlap_ratio(other.tx.channel, ev.tx.channel) <
            kDetectOverlapThreshold) {
          continue;
        }
        if (!visit(j)) return;
      }
    }
  }

 private:
  static std::int64_t bucket_of(Hz center) {
    return static_cast<std::int64_t>(center / kChannelSpacing);
  }

  const std::vector<RxEvent>& events_;
  std::map<std::int64_t, std::vector<std::size_t>> by_bucket_;
  std::map<std::int64_t, Seconds> longest_;
};

}  // namespace alphawan
