#include "radio/decoder_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace alphawan {

DecoderPool::DecoderPool(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("DecoderPool: capacity must be > 0");
  }
  busy_slots_.reserve(capacity);
}

void DecoderPool::release_expired(Seconds now) {
  // busy_slots_ is sorted by release_at; drop the prefix that has expired.
  auto it = std::upper_bound(
      busy_slots_.begin(), busy_slots_.end(), now,
      [](Seconds t, const Slot& s) { return t < s.release_at; });
  if (observer_ != nullptr) {
    for (auto released = busy_slots_.begin(); released != it; ++released) {
      observer_->on_pool_release(*this, released->packet, /*was_held=*/true);
    }
  }
  busy_slots_.erase(busy_slots_.begin(), it);
}

void DecoderPool::release(PacketId packet) {
  const auto it = std::find_if(busy_slots_.begin(), busy_slots_.end(),
                               [&](const Slot& s) { return s.packet == packet; });
  const bool was_held = it != busy_slots_.end();
  if (observer_ != nullptr) {
    observer_->on_pool_release(*this, packet, was_held);
  }
  if (was_held) busy_slots_.erase(it);
}

std::size_t DecoderPool::busy(Seconds now) {
  release_expired(now);
  return busy_slots_.size();
}

bool DecoderPool::try_acquire(Seconds now, Seconds until, NetworkId network,
                              PacketId packet) {
  release_expired(now);
  if (busy_slots_.size() >= capacity_) {
    if (observer_ != nullptr) {
      observer_->on_pool_refusal(*this, now, network, packet);
    }
    return false;
  }
  Slot slot{until, network, packet};
  const auto pos = std::upper_bound(
      busy_slots_.begin(), busy_slots_.end(), slot,
      [](const Slot& a, const Slot& b) { return a.release_at < b.release_at; });
  busy_slots_.insert(pos, slot);
  if (observer_ != nullptr) {
    observer_->on_pool_acquire(*this, now, until, network, packet);
  }
  return true;
}

bool DecoderPool::any_foreign_occupant(NetworkId network) const {
  return std::any_of(busy_slots_.begin(), busy_slots_.end(),
                     [&](const Slot& s) { return s.network != network; });
}

std::vector<PacketId> DecoderPool::occupants() const {
  std::vector<PacketId> ids;
  ids.reserve(busy_slots_.size());
  for (const auto& s : busy_slots_) ids.push_back(s.packet);
  return ids;
}

void DecoderPool::reset() {
  busy_slots_.clear();
  if (observer_ != nullptr) observer_->on_pool_reset(*this);
}

}  // namespace alphawan
