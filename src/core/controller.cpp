#include "core/controller.hpp"

#include <algorithm>
#include <stdexcept>

namespace alphawan {

UpgradeReport AlphaWanController::upgrade(
    Network& network, const Spectrum& spectrum, const LinkEstimates& links,
    const std::map<NodeId, double>& traffic, MasterNode* master) {
  UpgradeReport report;

  // ---- inter-network channel planning (Strategy 8) --------------------
  Hz offset{0.0};
  if (config_.strategy8_spectrum_sharing) {
    if (master == nullptr) {
      throw std::invalid_argument(
          "AlphaWanController: spectrum sharing enabled but no Master");
    }
    // Register + plan request: two request/response WAN exchanges.
    (void)master->handle_register(RegisterMsg{network.id(), network.name()});
    report.master_communication += latency_.master_round_trip();
    const auto reply = master->handle_plan_request(
        PlanRequestMsg{network.id(), spectrum.base, spectrum.width,
                       static_cast<std::uint16_t>(spectrum.grid_size())});
    report.master_communication += latency_.master_round_trip();
    const auto* assign = std::get_if<PlanAssignMsg>(&reply);
    if (assign == nullptr) {
      throw std::runtime_error("AlphaWanController: Master refused the plan");
    }
    offset = assign->frequency_offset;
    report.overlap_ratio = assign->overlap_ratio;
    report.master_epoch = assign->master_epoch;
    (void)accept_plan(network.id(), *assign);
  }
  report.frequency_offset = offset;

  // ---- intra-network channel planning ---------------------------------
  IntraPlanner planner(config_.planner);
  PlanOutcome outcome = planner.plan(network, spectrum, links, traffic, offset);
  report.cp_solve = outcome.solve_seconds;
  report.eval = outcome.eval;

  // ---- config distribution + reboot ------------------------------------
  const NetworkChannelConfig current = network.current_config();
  report.delta = diff_config(current, outcome.config);
  // Config pushes to gateways happen sequentially over the backhaul; the
  // per-gateway payload is small (a channel list). Reboots run in
  // parallel, so the reboot component is the slowest gateway.
  Seconds max_reboot{0.0};
  for (const auto& [gw_id, gw_cfg] : outcome.config.gateways) {
    const Gateway* gw = network.find_gateway(gw_id);
    if (gw == nullptr) continue;
    const bool changed =
        !(GatewayChannelConfig{gw->channels()} == gw_cfg);
    if (!changed) continue;
    report.config_distribution +=
        latency_.config_push(64 + 16 * gw_cfg.channels.size());
    max_reboot = std::max(max_reboot, latency_.gateway_reboot());
  }
  report.gateway_reboot = max_reboot;
  // Node settings travel as piggybacked LinkADRReq MAC commands on normal
  // downlink windows; they do not suspend the network, so Fig. 17 does not
  // count them. We still account a negligible serialization cost.
  report.config_distribution +=
      Seconds{1e-6 * static_cast<double>(outcome.config.nodes.size())};

  network.apply_config(outcome.config);
  return report;
}

bool AlphaWanController::accept_plan(NetworkId operator_id,
                                     const PlanAssignMsg& assign) {
  auto [it, inserted] = plan_epochs_.try_emplace(operator_id,
                                                 assign.master_epoch);
  if (!inserted) {
    if (assign.master_epoch < it->second) {
      ++stale_plans_ignored_;
      return false;
    }
    it->second = assign.master_epoch;
  }
  return true;
}

std::uint32_t AlphaWanController::plan_epoch(NetworkId operator_id) const {
  const auto it = plan_epochs_.find(operator_id);
  return it == plan_epochs_.end() ? 0 : it->second;
}

}  // namespace alphawan
