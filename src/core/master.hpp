// The AlphaWAN Master node (paper Sec. 4.3.2): a centralized spectrum
// coordinator. Operators register before deploying; the Master divides the
// shared spectrum into frequency-misaligned sub-channel plans and assigns
// one per operator, keeping an up-to-date occupancy record.
//
// Misalignment policy: with a desired pairwise overlap ratio rho, adjacent
// plans are offset by delta = (1 - rho) * 125 kHz. The 200 kHz grid
// spacing bounds how many distinct plans fit (floor(spacing / delta));
// when more operators register than fit, the Master compresses delta to
// spacing / N, trading overlap for operator count — exactly the "optimal
// misalignment depends on the number of coexisting networks" tradeoff.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "backhaul/bus.hpp"
#include "backhaul/master_protocol.hpp"
#include "net/network_server.hpp"
#include "phy/band_plan.hpp"

namespace alphawan {

struct MasterConfig {
  Spectrum spectrum{};
  // Desired pairwise channel overlap between adjacent operator plans.
  double desired_overlap = 0.4;
  // Expected number of coexisting networks in the region (used to pick
  // the misalignment before everyone has registered).
  int expected_networks = 2;
  // Extra offset applied to every plan — used to keep AlphaWAN adopters
  // misaligned from legacy networks that squat on the standard grid
  // (partial-adoption deployments, Fig. 14).
  Hz base_offset{0.0};
};

class MasterNode {
 public:
  explicit MasterNode(MasterConfig config);

  // Protocol handlers (pure logic; transport-agnostic).
  [[nodiscard]] RegisterAckMsg handle_register(const RegisterMsg& msg);
  [[nodiscard]] MasterMessage handle_plan_request(const PlanRequestMsg& msg);

  // The frequency offset assigned to an operator (registered order).
  [[nodiscard]] std::optional<Hz> offset_of(NetworkId operator_id) const;
  // Effective per-step offset under the current policy.
  [[nodiscard]] Hz plan_offset_step() const;
  // Worst-case overlap ratio between any two assigned plans.
  [[nodiscard]] double effective_overlap() const;

  [[nodiscard]] std::size_t registered_operators() const {
    return slots_.size();
  }
  // The current plan epoch. Bumped on every NEW registration (duplicate
  // registrations are idempotent); every PlanAssignMsg is stamped with the
  // epoch it was computed at, and receivers ignore stale epochs.
  [[nodiscard]] std::uint32_t current_epoch() const { return epoch_; }
  [[nodiscard]] const MasterConfig& config() const { return config_; }

 private:
  MasterConfig config_;
  std::uint32_t epoch_ = 1;
  std::map<NetworkId, int> slots_;  // operator -> misalignment slot
};

// Bus-attached Master service: decodes framed protocol messages addressed
// to endpoint "master" and replies to the sender (the Fig. 17 latency path
// and the integration tests exercise this).
class MasterService {
 public:
  MasterService(MasterNode& master, MessageBus& bus);

  [[nodiscard]] static EndpointId endpoint() { return "master"; }
  [[nodiscard]] std::size_t requests_served() const {
    return requests_served_;
  }
  // Protocol-level dedup telemetry: re-registrations of an already-known
  // operator (retry duplicates); each is answered idempotently.
  [[nodiscard]] std::size_t duplicate_registrations() const {
    return duplicate_registrations_;
  }

 private:
  void on_message(const EndpointId& from, std::vector<std::uint8_t> payload);

  MasterNode& master_;
  MessageBus& bus_;
  std::size_t requests_served_ = 0;
  std::size_t duplicate_registrations_ = 0;
};

// Statistics of one operator's exchange with the Master; folded into the
// chaos-suite replay digest, so every counter must stay deterministic.
struct OperatorClientStats {
  std::size_t sends = 0;
  std::size_t timeouts = 0;
  std::size_t retries = 0;
  std::size_t gave_up = 0;
  std::size_t duplicates_ignored = 0;
  std::size_t stale_plans_ignored = 0;
  std::size_t malformed_ignored = 0;
  std::size_t errors_received = 0;
};

// The operator-side agent of the Sec. 4.3.2 exchange, hardened for a
// faulty backhaul: register -> plan-request with per-attempt timeouts,
// exponential backoff (RetryPolicy), and epoch-based dedup. The last
// successfully applied plan is retained as last-known-good; a delayed or
// duplicated assignment from a stale epoch never overwrites a newer one.
// When constructed with a NetworkServer, every accepted plan is also
// adopted there (same epoch guard).
//
// Lifetime: timers capture `this` on the bus's engine; keep the client
// alive until the engine drains (the destructor detaches the bus handler
// and invalidates pending timers, but events already queued still run).
class OperatorClient {
 public:
  OperatorClient(NetworkId operator_id, std::string operator_name,
                 MessageBus& bus, RetryPolicy policy = RetryPolicy{},
                 NetworkServer* server = nullptr);
  ~OperatorClient();
  OperatorClient(const OperatorClient&) = delete;
  OperatorClient& operator=(const OperatorClient&) = delete;

  [[nodiscard]] EndpointId endpoint() const;

  // Start (or restart) the full exchange: register, then request a plan
  // for `spectrum`. Safe to call while an exchange is in flight (the old
  // exchange's timers are invalidated).
  void sync(const Spectrum& spectrum, std::uint16_t requested_channels);
  // Re-request the plan only (reconnect after an outage, epoch refresh).
  // Falls back to a full sync when not yet registered.
  void refresh();

  [[nodiscard]] bool registered() const { return registered_; }
  [[nodiscard]] bool has_plan() const { return plan_.has_value(); }
  // Last-known-good plan; valid only when has_plan().
  [[nodiscard]] const PlanAssignMsg& plan() const { return *plan_; }
  [[nodiscard]] std::uint32_t plan_epoch() const {
    return plan_ ? plan_->master_epoch : 0;
  }
  // True when no exchange (and no retry timer) is outstanding.
  [[nodiscard]] bool idle() const { return state_ == State::kIdle; }
  [[nodiscard]] const OperatorClientStats& stats() const { return stats_; }

 private:
  enum class State : std::uint8_t { kIdle, kRegistering, kRequesting };

  void on_message(const EndpointId& from, std::vector<std::uint8_t> payload);
  void transmit();       // (re)send the message for the current state
  void arm_timeout();
  void accept_plan(const PlanAssignMsg& assign);

  NetworkId id_;
  std::string name_;
  MessageBus& bus_;
  RetryPolicy policy_;
  NetworkServer* server_;
  State state_ = State::kIdle;
  Spectrum spectrum_{};
  std::uint16_t requested_channels_ = 8;
  int attempt_ = 0;
  // Bumped whenever the in-flight exchange changes; pending timeout events
  // compare against it and become no-ops when stale.
  std::uint64_t xact_ = 0;
  bool registered_ = false;
  std::optional<PlanAssignMsg> plan_;
  OperatorClientStats stats_;
};

}  // namespace alphawan
