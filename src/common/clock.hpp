// Injectable monotonic wall-clock for the few places that legitimately
// measure host time (solver telemetry, bench harnesses).
//
// Simulation time NEVER comes from here — it advances only through the
// event queue, which is what keeps runs bit-identical across thread and
// shard counts (docs/parallelism.md, docs/sharding.md). alphawan-lint's
// determinism-wallclock check bans bare std::chrono reads in src/ so that
// every host-clock dependency is either routed through this interface
// (tests inject ManualClock and stay deterministic) or carries an allow
// annotation stating why the value cannot reach simulation state
// (annotation grammar in docs/static-analysis.md).
#pragma once

#include <chrono>

#include "common/units.hpp"

namespace alphawan {

// Seconds since an arbitrary fixed epoch; monotone non-decreasing.
class MonotonicClock {
 public:
  virtual ~MonotonicClock() = default;
  [[nodiscard]] virtual Seconds now() const = 0;
};

// The host's monotonic clock — the default for telemetry.
class SteadyClock final : public MonotonicClock {
 public:
  [[nodiscard]] Seconds now() const override {
    // ALPHAWAN-LINT-ALLOW(determinism-wallclock: the one sanctioned
    // steady_clock read — values are telemetry-only by the contract above)
    const auto t = std::chrono::steady_clock::now().time_since_epoch();
    return Seconds{std::chrono::duration<double>(t).count()};
  }
};

// Hand-advanced clock for tests: now() returns the set instant and then
// steps by `auto_step` (so a start/stop measurement around an opaque call
// observes exactly one step, deterministically).
class ManualClock final : public MonotonicClock {
 public:
  // ALPHAWAN-LINT-ALLOW(units-swappable-pair: (start, step) mirrors every
  // range-style ctor in the codebase; both defaults are zero)
  explicit ManualClock(Seconds start = Seconds{0.0},
                       Seconds auto_step = Seconds{0.0})
      : now_(start), auto_step_(auto_step) {}

  [[nodiscard]] Seconds now() const override {
    const Seconds t = now_;
    now_ = now_ + auto_step_;
    return t;
  }
  void advance(Seconds by) { now_ = now_ + by; }

 private:
  mutable Seconds now_;
  Seconds auto_step_;
};

// Process-wide default used when no clock is injected.
[[nodiscard]] inline const MonotonicClock& steady_process_clock() {
  static const SteadyClock clock;
  return clock;
}

}  // namespace alphawan
