// Pluggable gateway-side capture policy: how overlapping receptions
// resolve after the stock pipeline ran. The COTS model in
// GatewayRadio::process is the fixed physical baseline (front-end, FCFS
// decoder dispatch, co/inter-SF SIR capture tests); a CapturePolicy is the
// *receiver algorithm* layered on top — CIC sub-band separation, SS5G
// superposition decoding, CurvingLoRa curvature-orthogonal despreading —
// which may rescue packets the stock demodulator lost to collisions.
//
// The decoder budget is the paper's methodology boundary (Sec. 5.2.1): a
// policy may only rewrite outcomes whose packet already HELD a decoder
// (consumed_decoder(disposition) == true). Decoder-contention drops,
// undetected packets, and front-end rejections are off limits — resolving
// a collision does not conjure a free decoder. GatewayRadio enforces this
// contract after every resolve() call.
//
// Policies run inside concurrent per-gateway tasks (docs/parallelism.md):
// resolve() must be const, must not touch state shared across gateways,
// and must be deterministic — any randomness has to derive from the ids
// already present in the events, never from an internal Rng.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "radio/transmission.hpp"

namespace alphawan {

// Everything GatewayRadio exposes to a capture policy about one window.
struct CaptureContext {
  // Every transmission the front-end observed (including foreign-network
  // and never-detected ones — their RF energy shaped the outcomes).
  const std::vector<RxEvent>& events;
  // The gateway's network sync word: a rescued packet is kDelivered only
  // if its sync word matches, kDecodedForeign otherwise.
  std::uint16_t sync_word = 0;
  // Decoder-pool capacity of this gateway (diagnostic; the budget itself
  // is enforced by the outcome contract above).
  int decoders = 0;
};

class CapturePolicy {
 public:
  virtual ~CapturePolicy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  // Rewrite reception outcomes (one per event, same order) for one
  // gateway window. Called at the end of GatewayRadio::process, so
  // rescued deliveries flow through the normal uplink-forwarding path.
  virtual void resolve(const CaptureContext& context,
                       std::vector<RxOutcome>& outcomes) const = 0;

 protected:
  CapturePolicy() = default;
  CapturePolicy(const CapturePolicy&) = default;
  CapturePolicy& operator=(const CapturePolicy&) = default;
};

}  // namespace alphawan
