// Component micro-benchmarks (google-benchmark): throughput of the pieces
// the system runs continuously — airtime math, decoder pool churn, the
// gateway radio pipeline, frame encode/decode + MIC, the CP solver at the
// Fig. 17 scales, and the scalar/batched PHY kernel pairs (ALPHAWAN_BATCH,
// phy/batch_kernels.hpp). The BM_Batch* pairs also report through
// PerfRecorder, so the per-kernel scalar-vs-batched throughputs land in
// the alphawan-bench-v1 JSON trajectory alongside the end-to-end numbers.
#include <benchmark/benchmark.h>

#include <chrono>
#include <numeric>

#include "baselines/standard_lorawan.hpp"
#include "core/ga_solver.hpp"
#include "harness.hpp"
#include "net/frame.hpp"
#include "net/sync_word.hpp"
#include "phy/airtime.hpp"
#include "phy/batch_kernels.hpp"
#include "radio/gateway_radio.hpp"
#include "sim/scenario.hpp"
#include "sim/traffic.hpp"

namespace alphawan {
namespace {

void BM_Airtime(benchmark::State& state) {
  TxParams params;
  params.sf = SpreadingFactor::kSF9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(time_on_air(params, 10));
  }
}
BENCHMARK(BM_Airtime);

void BM_DecoderPoolChurn(benchmark::State& state) {
  DecoderPool pool(16);
  Seconds t{0.0};
  PacketId id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.try_acquire(t, t + Seconds{0.05}, 0, id++));
    t += Seconds{0.001};
  }
}
BENCHMARK(BM_DecoderPoolChurn);

std::vector<RxEvent> burst_events(int count) {
  const Spectrum spec = spectrum_1m6();
  std::vector<RxEvent> events;
  for (int i = 0; i < count; ++i) {
    Transmission tx;
    tx.id = static_cast<PacketId>(i + 1);
    tx.node = static_cast<NodeId>(i + 1);
    tx.channel = spec.grid_channel(i % 8);
    tx.params.sf = sf_from_index((i / 8) % 6);
    tx.start = Seconds{0.0005 * i};
    events.push_back(RxEvent{tx, Dbm{-85.0}});
  }
  return events;
}

void BM_GatewayRadioProcess(benchmark::State& state) {
  GatewayRadio radio(default_profile(), 0, kPublicSyncWord);
  const Spectrum spec = spectrum_1m6();
  std::vector<Channel> channels;
  for (int i = 0; i < 8; ++i) channels.push_back(spec.grid_channel(i));
  radio.configure_channels(channels);
  const auto events = burst_events(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(radio.process(events));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GatewayRadioProcess)->Arg(48)->Arg(144)->Arg(1000);

void BM_FrameEncodeDecode(benchmark::State& state) {
  SessionKeys keys;
  keys.nwk_skey.fill(0x42);
  keys.app_skey.fill(0x24);
  DataFrame frame;
  frame.fhdr.dev_addr = make_dev_addr(1, 77);
  frame.fhdr.fcnt = 9;
  frame.fport = 1;
  frame.frm_payload.assign(10, 0xAB);
  for (auto _ : state) {
    const auto raw = encode_frame(frame, keys);
    benchmark::DoNotOptimize(decode_frame(raw, keys));
  }
}
BENCHMARK(BM_FrameEncodeDecode);

CpInstance solver_instance(int users, int gateways) {
  CpInstance inst;
  inst.spectrum = spectrum_4m8();
  inst.num_channels = inst.spectrum.grid_size();
  for (int j = 0; j < gateways; ++j) {
    inst.gateways.push_back({static_cast<GatewayId>(j + 1), 16, 8, 8});
  }
  for (int i = 0; i < users; ++i) {
    CpNode node;
    node.id = static_cast<NodeId>(i + 1);
    node.traffic = 1.0;
    node.min_level.assign(static_cast<std::size_t>(gateways), 0);
    // Roughly half the gateways in reach, varying per node.
    for (int j = 0; j < gateways; ++j) {
      if ((i + j) % 2 == 0) {
        node.min_level[static_cast<std::size_t>(j)] = 2;
      }
    }
    inst.nodes.push_back(std::move(node));
  }
  return inst;
}

// The Fig. 17 CP-solve scaling measurement (4k -> 12k users).
void BM_CpSolve(benchmark::State& state) {
  const auto inst = solver_instance(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(0)) / 1000);
  GaConfig cfg;
  cfg.population = 32;
  cfg.generations = 60;
  cfg.early_stop = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_cp(inst, cfg));
  }
}
BENCHMARK(BM_CpSolve)->Unit(benchmark::kMillisecond)->Arg(4000)->Arg(8000)->Arg(12000)->Iterations(1);

// ---- parallel-speedup table (threads x {GA solve, 1k-node window}) --------
// Results are bit-identical at every thread count (see docs/parallelism.md);
// only wall-clock time moves. The Arg is the explicit thread count, so the
// table is the speedup trajectory tracked in BENCH_*.json.

void BM_CpSolveThreads(benchmark::State& state) {
  const auto inst = solver_instance(4000, 4);
  GaConfig cfg;
  cfg.population = 32;
  cfg.generations = 20;
  cfg.early_stop = false;
  cfg.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_cp(inst, cfg));
  }
}
BENCHMARK(BM_CpSolveThreads)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1);

void BM_WindowThreads(benchmark::State& state) {
  ChannelModelConfig urban;
  urban.shadowing_sigma_db = Db{3.0};
  urban.fast_fading_sigma_db = Db{0.8};
  Deployment deployment{Region{Meters{2100}, Meters{1600}}, spectrum_4m8(),
                        urban};
  auto& network = deployment.add_network("op");
  Rng rng(17);
  deployment.place_gateways(network, 15, default_profile(), rng);
  deployment.place_nodes(network, 1000, rng);
  StandardLorawanPolicy().configure(deployment, network, rng);

  RunOptions options;
  options.threads = static_cast<int>(state.range(0));
  ScenarioRunner runner(deployment, 17, options);
  std::vector<EndNode*> nodes;
  for (auto& n : network.nodes()) nodes.push_back(&n);
  PacketIdSource ids;
  Rng traffic_rng(23);
  const auto txs =
      poisson_traffic(nodes, Seconds{30.0}, 1.0 / 40.0, traffic_rng, ids, 0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run_window(txs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(txs.size()));
}
BENCHMARK(BM_WindowThreads)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(4);

// ---- scalar vs batched PHY kernel pairs (ALPHAWAN_BATCH) ------------------
// Each BM_Batch* runs the same work through the scalar reference (Arg 0)
// and the batched kernel (Arg 1) and reports both as PerfRecorder rows, so
// the per-kernel speedups are tracked in BENCH_*.json independently of the
// end-to-end blend (where shared costs dilute them — docs/performance.md).
// Iterations are pinned so each row is recorded exactly once per process.

void record_kernel_row(const std::string& name, double items, double seconds) {
  bench::PerfRecorder::instance().record(name, items, seconds, 1);
}

void BM_BatchFading(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  constexpr std::size_t kDraws = 4096;
  const Rng root(0xFADEULL);
  const std::uint64_t domain = 0xFAD1'F0E5'7A7EULL ^ (std::uint64_t{5} << 40);
  std::vector<PacketId> packets(kDraws);
  std::vector<std::uint32_t> tx_index(kDraws);
  Rng setup(1);
  for (std::size_t i = 0; i < kDraws; ++i) {
    packets[i] = setup.next();
    tx_index[i] = static_cast<std::uint32_t>(i);
  }
  std::vector<double> out(kDraws);
  const double sigma = 0.8;
  const auto begin = std::chrono::steady_clock::now();
  for (auto _ : state) {
    if (batched) {
      const SubstreamBatch stream(root, domain);
      batch_fading_draws(stream, packets.data(), tx_index.data(), kDraws,
                         sigma, out.data());
    } else {
      for (std::size_t k = 0; k < kDraws; ++k) {
        Rng link = root.substream(domain, packets[tx_index[k]]);
        out[k] = link.normal_once(0.0, sigma);
      }
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kDraws));
  record_kernel_row(std::string("micro_fading_") +
                        (batched ? "batched" : "scalar"),
                    static_cast<double>(state.iterations()) * kDraws, secs);
}
BENCHMARK(BM_BatchFading)->Arg(0)->Arg(1)->Iterations(200);

void BM_BatchSensitivity(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  constexpr std::size_t kCandidates = 4096;
  constexpr std::size_t kRows = 512;
  Rng setup(2);
  std::vector<LinkGain> gains(kRows);
  for (auto& g : gains) {
    g.path_loss = Db{setup.uniform(70.0, 140.0)};
    g.antenna_gain = Db{setup.uniform(-1.0, 3.0)};
  }
  std::vector<std::uint32_t> row_of_tx(kCandidates);
  std::vector<Dbm> tx_power(kCandidates, Dbm{14.0});
  std::vector<double> fading(kCandidates);
  std::vector<std::uint32_t> base_index(kCandidates);
  for (std::size_t i = 0; i < kCandidates; ++i) {
    row_of_tx[i] = static_cast<std::uint32_t>(setup.uniform_int(
        0, static_cast<std::int64_t>(kRows) - 1));
    fading[i] = setup.normal(0.0, 3.0);
    base_index[i] = static_cast<std::uint32_t>(i);
  }
  const Dbm floor{-110.0};
  std::vector<std::uint32_t> tx_index(kCandidates);
  std::vector<Dbm> out_power(kCandidates, Dbm{-400.0});
  std::size_t kept = 0;
  const auto begin = std::chrono::steady_clock::now();
  for (auto _ : state) {
    // Both modes pay the same index-refresh copy: the batched filter
    // compacts tx_index in place, exactly like the pipeline's per-window
    // candidate arrays.
    std::copy(base_index.begin(), base_index.end(), tx_index.begin());
    if (batched) {
      kept = batch_rx_power_filter(gains, row_of_tx.data(), tx_power.data(),
                                   fading.data(), floor, tx_index.data(),
                                   kCandidates, out_power.data());
    } else {
      kept = 0;
      for (std::size_t k = 0; k < kCandidates; ++k) {
        const std::uint32_t i = tx_index[k];
        const LinkGain g = gains[row_of_tx[i]];
        const Dbm rx_power =
            tx_power[i] - g.path_loss + Db{fading[k]} + g.antenna_gain;
        if (rx_power < floor) continue;
        tx_index[kept] = i;
        out_power[kept] = rx_power;
        ++kept;
      }
    }
    benchmark::DoNotOptimize(kept);
    benchmark::ClobberMemory();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kCandidates));
  record_kernel_row(std::string("micro_sensitivity_") +
                        (batched ? "batched" : "scalar"),
                    static_cast<double>(state.iterations()) * kCandidates,
                    secs);
}
BENCHMARK(BM_BatchSensitivity)->Arg(0)->Arg(1)->Iterations(2000);

void BM_BatchCapture(benchmark::State& state) {
  // One dense uniform-channel bucket in the pipeline's real shape: the
  // decoded events are the strong minority (the decoder pool caps how many
  // events ever reach the interferer scan), visited in ascending start
  // order. The scalar mode pays a per-event lower_bound + per-element SF
  // tests; the batched mode the per-window stable SF grouping, the group
  // max-power prechecks, and the monotone-cursor group scans.
  const bool batched = state.range(0) != 0;
  constexpr std::size_t kEvents = 256;
  constexpr std::size_t kDecoded = 32;
  const Spectrum spec = spectrum_1m6();
  const Channel ch = spec.grid_channel(0);
  Rng setup(3);
  std::vector<Seconds> start(kEvents);
  std::vector<Seconds> end(kEvents);
  std::vector<double> lin_power(kEvents);
  std::vector<Channel> channel(kEvents, ch);
  std::vector<Dbm> power(kEvents);
  std::vector<SpreadingFactor> sf(kEvents);
  std::vector<NetworkId> net(kEvents);
  Seconds lookback{0.0};
  for (std::size_t i = 0; i < kEvents; ++i) {
    start[i] = Seconds{setup.uniform(0.0, 0.5)};
    const Seconds dur{setup.uniform(0.02, 0.2)};
    end[i] = start[i] + dur;
    lookback = std::max(lookback, dur);
    power[i] = Dbm{setup.uniform(-130.0, -60.0)};
    lin_power[i] = batch_detail::dbm_to_lin(power[i]);
    sf[i] = sf_from_index(static_cast<int>(setup.uniform_int(0, 5)));
    net[i] = static_cast<NetworkId>(setup.uniform_int(0, 2));
  }
  const RxScanSoA soa{start.data(),   end.data(), lin_power.data(),
                      channel.data(), power.data(), sf.data(), net.data()};
  std::vector<std::uint32_t> order(kEvents);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (start[a] != start[b]) return start[a] < start[b];
    return a < b;
  });
  // Decoded set: the kDecoded strongest events (the ones that win decoders),
  // scanned in ascending (start, index) order as the pipeline guarantees.
  std::vector<std::uint32_t> decoded(kEvents);
  std::iota(decoded.begin(), decoded.end(), 0u);
  std::partial_sort(decoded.begin(), decoded.begin() + kDecoded, decoded.end(),
                    [&](std::uint32_t a, std::uint32_t b) {
                      if (power[a] != power[b]) return power[a] > power[b];
                      return a < b;
                    });
  decoded.resize(kDecoded);
  std::sort(decoded.begin(), decoded.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (start[a] != start[b]) return start[a] < start[b];
              return a < b;
            });
  std::vector<std::uint32_t> order_sf(kEvents);
  std::vector<std::uint32_t> pos_sf(kEvents);
  std::vector<SfGroup> groups;
  std::vector<std::uint32_t> cursors;
  std::size_t sink = 0;
  const auto begin = std::chrono::steady_clock::now();
  for (auto _ : state) {
    if (batched) {
      // Per-window prep, as in build_sf_groups_and_memos: stable counting
      // sort by SF with per-group max power, then cursor-driven scans.
      groups.clear();
      std::uint32_t counts[kNumSpreadingFactors] = {};
      Dbm max_power[kNumSpreadingFactors];
      for (auto& p : max_power) p = Dbm{-400.0};
      for (const std::uint32_t j : order) {
        const int s = sf_index(sf[j]);
        ++counts[s];
        if (power[j] > max_power[s]) max_power[s] = power[j];
      }
      std::uint32_t cursor[kNumSpreadingFactors];
      std::uint32_t running = 0;
      for (int s = 0; s < kNumSpreadingFactors; ++s) {
        cursor[s] = running;
        if (counts[s] > 0) {
          groups.push_back(SfGroup{running, running + counts[s],
                                   sf_from_index(s), max_power[s]});
        }
        running += counts[s];
      }
      for (std::uint32_t k = 0; k < kEvents; ++k) {
        const std::uint32_t j = order[k];
        auto& cur = cursor[sf_index(sf[j])];
        order_sf[cur] = j;
        pos_sf[cur] = k;
        ++cur;
      }
      cursors.clear();
      for (const auto& g : groups) cursors.push_back(g.begin);
    }
    for (const std::uint32_t i : decoded) {
      const ScanEvent ev{i,     start[i], end[i], power[i],
                         sf[i], net[i],   ch};
      ScanAccum acc;
      if (batched) {
        scan_bucket_aligned_grouped(soa, order_sf.data(), pos_sf.data(),
                                    groups.data(),
                                    groups.data() + groups.size(),
                                    cursors.data(), lookback, ev, acc);
      } else {
        scan_bucket_scalar(soa, order.data(), order.data() + kEvents,
                           /*uniform=*/true, /*rho_uniform=*/1.0, lookback,
                           ev, acc);
      }
      sink += acc.collided ? 1 : 0;
    }
    benchmark::DoNotOptimize(sink);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kDecoded));
  record_kernel_row(std::string("micro_capture_") +
                        (batched ? "batched" : "scalar"),
                    static_cast<double>(state.iterations()) * kDecoded, secs);
}
BENCHMARK(BM_BatchCapture)->Arg(0)->Arg(1)->Iterations(2000);

}  // namespace
}  // namespace alphawan

BENCHMARK_MAIN();
