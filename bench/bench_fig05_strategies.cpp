// Figure 5 reproduction: the two spectrum-optimization strategies.
// (a) Strategy 1 — fewer channels per gateway concentrates decoders:
//     5 gateways in 1.6 MHz, capacity grows 16 -> 48 as channels/GW drop
//     from 8 to 2.
// (b) Strategy 2 — heterogeneous channel settings across 3 gateways lift
//     capacity from 16 (standard) to ~24+.
#include "harness.hpp"

using namespace alphawan;
using namespace alphawan::bench;

namespace {

// Configure `count` clustered gateways with `width`-channel windows tiled
// across the 8-channel spectrum.
void tile_channels(Deployment& deployment, Network& network, int width) {
  const auto channels = deployment.spectrum().grid_channels();
  int start = 0;
  for (auto& gw : network.gateways()) {
    GatewayChannelConfig cfg;
    for (int c = 0; c < width; ++c) {
      cfg.channels.push_back(
          channels[static_cast<std::size_t>((start + c) % 8)]);
    }
    // Keep windows contiguous within the radio span.
    std::sort(cfg.channels.begin(), cfg.channels.end(),
              [](const Channel& a, const Channel& b) {
                return a.center < b.center;
              });
    gw.apply_channels(cfg);
    start = (start + width) % 8;
  }
}

std::size_t burst_capacity(Deployment& deployment, Network& network,
                           Rng& rng) {
  auto nodesCopy = std::vector<EndNode*>();
  for (auto& n : network.nodes()) nodesCopy.push_back(&n);
  PacketIdSource ids;
  return run_burst(deployment, nodesCopy, Seconds{0.0}, ids)
      .total_delivered();
}

}  // namespace

int main() {
  print_header(
      "Fig. 5a — Strategy 1: capacity vs channels per gateway\n"
      "(5 gateways, 1.6 MHz, 48 orthogonal users; paper: 16 -> 48)");
  std::printf("  %-16s %-10s %-10s\n", "channels_per_gw", "paper",
              "measured");
  const int paper_5a[3][2] = {{8, 16}, {4, 32}, {2, 48}};
  for (const auto& row : paper_5a) {
    Deployment deployment{Region{Meters{600}, Meters{600}}, spectrum_1m6(), quiet_channel()};
    auto& network = deployment.add_network("op");
    place_clustered_gateways(deployment, network, 5);
    Rng rng(7);
    (void)add_orthogonal_users(deployment, network, 48, rng);
    tile_channels(deployment, network, row[0]);
    const auto measured = burst_capacity(deployment, network, rng);
    std::printf("  %-16d %-10d %-10zu\n", row[0], row[1], measured);
  }

  print_header(
      "Fig. 5b — Strategy 2: heterogeneous channel settings, 3 gateways\n"
      "(paper: standard 16 -> 24 with heterogeneous settings)");
  std::printf("  %-16s %-10s\n", "setting", "measured");
  {
    // Standard: all three gateways identical.
    Deployment deployment{Region{Meters{600}, Meters{600}}, spectrum_1m6(), quiet_channel()};
    auto& network = deployment.add_network("op");
    place_clustered_gateways(deployment, network, 3);
    Rng rng(9);
    (void)add_orthogonal_users(deployment, network, 48, rng);
    std::printf("  %-16s %-10zu   (paper: 16)\n", "standard",
                burst_capacity(deployment, network, rng));
  }
  {
    // Setting 1: gw1 keeps 8 channels; gw2/gw3 take disjoint halves.
    Deployment deployment{Region{Meters{600}, Meters{600}}, spectrum_1m6(), quiet_channel()};
    auto& network = deployment.add_network("op");
    place_clustered_gateways(deployment, network, 3);
    Rng rng(9);
    (void)add_orthogonal_users(deployment, network, 48, rng);
    const auto chans = deployment.spectrum().grid_channels();
    auto& gws = network.gateways();
    gws[1].apply_channels(
        GatewayChannelConfig{{chans[0], chans[1], chans[2], chans[3]}});
    gws[2].apply_channels(
        GatewayChannelConfig{{chans[4], chans[5], chans[6], chans[7]}});
    std::printf("  %-16s %-10zu   (paper: ~24)\n", "heterogeneous-1",
                burst_capacity(deployment, network, rng));
  }
  {
    // Setting 2: staggered 4-channel windows.
    Deployment deployment{Region{Meters{600}, Meters{600}}, spectrum_1m6(), quiet_channel()};
    auto& network = deployment.add_network("op");
    place_clustered_gateways(deployment, network, 3);
    Rng rng(9);
    (void)add_orthogonal_users(deployment, network, 48, rng);
    const auto chans = deployment.spectrum().grid_channels();
    auto& gws = network.gateways();
    gws[0].apply_channels(
        GatewayChannelConfig{{chans[0], chans[1], chans[2], chans[3]}});
    gws[1].apply_channels(
        GatewayChannelConfig{{chans[2], chans[3], chans[4], chans[5]}});
    gws[2].apply_channels(
        GatewayChannelConfig{{chans[4], chans[5], chans[6], chans[7]}});
    std::printf("  %-16s %-10zu   (paper: ~24)\n", "heterogeneous-2",
                burst_capacity(deployment, network, rng));
  }
  print_note(
      "shape check: heterogeneous settings beat the standard plan without\n"
      "  any extra hardware; disjoint halves use the most decoders");
  return 0;
}
