// Batched-kernel mode selection for the receive pipeline, mirroring the
// ALPHAWAN_SHARDS / ALPHAWAN_THREADS conventions (sim/shard.hpp): an env
// process default plus an explicit RunOptions override. Mode 0 runs the
// scalar reference kernels, mode 1 the batched ones (phy/batch_kernels.hpp);
// both produce bit-identical results (docs/performance.md, enforced by
// tests/property/test_prop_kernels.cpp), so the switch trades nothing but
// speed.
#pragma once

namespace alphawan {

// Parse an ALPHAWAN_BATCH value: "1" (or any nonzero integer) selects the
// batched kernels, everything else — unset, empty, "0", garbage — the
// scalar reference path.
[[nodiscard]] int parse_batch_mode(const char* text);

// The process-wide default, read once from ALPHAWAN_BATCH.
[[nodiscard]] int default_batch_mode();

// Resolve a RunOptions::batch request: negative = the process default,
// otherwise 0 (scalar) / nonzero (batched).
[[nodiscard]] int resolve_batch_mode(int requested);

}  // namespace alphawan
