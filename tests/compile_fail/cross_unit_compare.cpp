// Compile-fail case: comparing quantities of different units
//
// Without CF_MISUSE this file must compile (positive control proving the
// harness sees a working translation unit). With -DCF_MISUSE it must NOT
// compile — ctest runs both variants (see CMakeLists.txt).
#include "common/units.hpp"

using namespace alphawan;

constexpr bool ok = Hz{125e3} < Hz{250e3};
#ifdef CF_MISUSE
constexpr bool bad = Hz{125e3} < Seconds{1.0};  // comparison across units
#endif

int main() { return 0; }
