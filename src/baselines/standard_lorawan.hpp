// Baseline: standard LoRaWAN operation. Gateways are uniformly configured
// from the standard channel plans (homogeneous reception — the paper's
// root inefficiency); nodes pick random channels; data rates come either
// from the default long-range setting (ADR off) or from the greedy
// standard ADR (ADR on).
#pragma once

#include "baselines/policy.hpp"
#include "net/adr.hpp"
#include "sim/topology.hpp"

namespace alphawan {

struct StandardLorawanOptions {
  bool use_adr = true;
  // Spread gateways across the available standard plans (operators with
  // more gateways than one plan covers do this for spectrum coverage).
  bool spread_gateways_across_plans = true;
  // When false, only the gateway side is provisioned and existing node
  // configs are kept — for experiments (fig12) that pre-assign node
  // channels/DRs themselves and only want the scheme's gateway plan.
  bool configure_nodes = true;
  AdrConfig adr{};
};

// Registry schemes "standard" / "standard-no-adr": the way commercial
// operators run LoRaWAN today. Node data rates use deployment geometry as
// a stand-in for the ADR feedback loop (the strongest-gateway SNR standard
// ADR would converge to).
class StandardLorawanPolicy final : public NodeMacPolicy {
 public:
  explicit StandardLorawanPolicy(StandardLorawanOptions options = {})
      : options_(options) {}

  [[nodiscard]] std::string_view name() const override {
    return options_.use_adr ? "standard" : "standard-no-adr";
  }
  void configure(Deployment& deployment, Network& network,
                 Rng& rng) const override;

  [[nodiscard]] const StandardLorawanOptions& options() const {
    return options_;
  }

 private:
  StandardLorawanOptions options_;
};

// Deprecated free-function entry point, kept one release as a shim over
// StandardLorawanPolicy (same streams, bit-identical provisioning).
[[deprecated(
    "use StandardLorawanPolicy (baselines/policy.hpp) or the baseline "
    "registry (baselines/registry.hpp)")]]
inline void apply_standard_lorawan(
    Deployment& deployment, Network& network, Rng& rng,
    const StandardLorawanOptions& options = StandardLorawanOptions{}) {
  StandardLorawanPolicy(options).configure(deployment, network, rng);
}

}  // namespace alphawan
