// AlphaWanController: the end-to-end capacity-upgrade pipeline of Fig. 10.
// For one network it (1) optionally obtains a misaligned channel plan from
// the Master (inter-network channel planning), (2) runs the intra-network
// CP solve, (3) distributes configurations to gateways and end nodes, and
// (4) accounts for every latency component the way Fig. 17 reports them.
#pragma once

#include <optional>

#include "backhaul/latency_model.hpp"
#include "core/intra_planner.hpp"
#include "core/master.hpp"

namespace alphawan {

struct AlphaWanConfig {
  IntraPlannerConfig planner{};
  // Strategy 8: coordinate spectrum with the Master.
  bool strategy8_spectrum_sharing = true;
  double desired_overlap = 0.4;
};

// Latency breakdown of one capacity-upgrade operation (Fig. 17).
struct UpgradeReport {
  Seconds cp_solve{0.0};
  Seconds master_communication{0.0};
  Seconds config_distribution{0.0};
  Seconds gateway_reboot{0.0};  // max across gateways (they reboot in parallel)
  [[nodiscard]] Seconds total() const {
    return cp_solve + master_communication + config_distribution +
           gateway_reboot;
  }
  CpEvaluation eval{};
  ConfigDelta delta{};
  Hz frequency_offset{0.0};
  double overlap_ratio = 0.0;
  // Epoch of the Master plan this upgrade was computed against (0 when
  // spectrum sharing is disabled). See core/master.hpp.
  std::uint32_t master_epoch = 0;
};

class AlphaWanController {
 public:
  AlphaWanController(AlphaWanConfig config, LatencyModel& latency)
      : config_(config), latency_(latency) {}

  // Plan and apply a capacity upgrade for `network`. When spectrum
  // sharing is enabled a `master` must be supplied; the controller
  // registers the operator and requests its misaligned plan first.
  UpgradeReport upgrade(Network& network, const Spectrum& spectrum,
                        const LinkEstimates& links,
                        const std::map<NodeId, double>& traffic,
                        MasterNode* master = nullptr);

  // Epoch-guarded plan acceptance: record `assign` as the plan in force
  // for its operator unless it is staler than the plan already held (a
  // delayed/duplicated backhaul delivery). Returns whether it was
  // accepted; stale assignments are counted instead.
  bool accept_plan(NetworkId operator_id, const PlanAssignMsg& assign);
  [[nodiscard]] std::uint32_t plan_epoch(NetworkId operator_id) const;
  [[nodiscard]] std::size_t stale_plans_ignored() const {
    return stale_plans_ignored_;
  }

  [[nodiscard]] const AlphaWanConfig& config() const { return config_; }

 private:
  AlphaWanConfig config_;
  LatencyModel& latency_;
  std::map<NetworkId, std::uint32_t> plan_epochs_;
  std::size_t stale_plans_ignored_ = 0;
};

}  // namespace alphawan
