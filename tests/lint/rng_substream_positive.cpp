// alphawan-lint fixture: RNG-substream family, positive cases.
// Linted as-if at src/core/rng_substream_positive.cpp.
#include <cstddef>
#include <cstdint>

namespace alphawan {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : seed_(seed) {}
  void reseed(std::uint64_t seed) { seed_ = seed; }
  double uniform() { return static_cast<double>(seed_++); }
  Rng substream(std::uint64_t key) const { return Rng(seed_ ^ key); }

 private:
  std::uint64_t seed_;
};

template <typename Body>
void parallel_for(std::size_t count, Body body) {
  for (std::size_t i = 0; i < count; ++i) body(i);
}

inline double hardcoded_seed() {
  Rng rng(42);  // finding: literal seed outside tests//bench/
  Rng hex{0xDEADBEEF};  // finding: literal seed
  rng.reseed(7);  // finding: literal reseed
  return rng.uniform() + hex.uniform();
}

inline double shared_draw(std::size_t n) {
  Rng rng(0);  // finding: literal seed
  double sum = 0.0;
  parallel_for(n, [&](std::size_t i) {
    sum += rng.uniform() + static_cast<double>(i);  // finding: shared draw
  });
  return sum;
}

}  // namespace alphawan
