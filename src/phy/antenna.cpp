#include "phy/antenna.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace alphawan {

Db DirectionalAntenna::gain(double angle) const {
  // Wrap to [-pi, pi] and use the absolute off-boresight angle.
  double a = std::remainder(angle, 2.0 * std::numbers::pi);
  a = std::abs(a);
  const double half_beam = config_.beamwidth_rad / 2.0;
  if (a <= half_beam) {
    // Parabolic main lobe: -3 dB at the half-power beamwidth edge.
    const double frac = a / half_beam;
    return config_.peak_gain_dbi - Db{3.0 * frac * frac};
  }
  // Outside the main lobe: interpolate attenuation from first sidelobe
  // level to the front-to-back floor as the angle approaches pi.
  const double t = std::clamp((a - half_beam) / (std::numbers::pi - half_beam),
                              0.0, 1.0);
  const Db attenuation =
      config_.first_sidelobe_db +
      t * (config_.front_to_back_db - config_.first_sidelobe_db);
  return config_.peak_gain_dbi - attenuation;
}

}  // namespace alphawan
