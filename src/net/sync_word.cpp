#include "net/sync_word.hpp"

namespace alphawan {

std::uint16_t sync_word_for_network(NetworkId network) {
  if (network == 0) return kPublicSyncWord;
  // Spread private networks over distinct odd words away from 0x34.
  return static_cast<std::uint16_t>(kPrivateSyncWordBase + 2 * network);
}

}  // namespace alphawan
