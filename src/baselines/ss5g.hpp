// Baseline: SS5G-style collision resolution (El Rachkidy, Guitton &
// Kamoun — "decoding superposed LoRa signals"). When two same-SF
// transmissions collide with a sufficient timing offset, the receiver can
// slice the superposed symbol stream at the offset boundaries and recover
// both packets. The scheme was designed assuming RF collisions are the
// bottleneck; under the paper's decoder-contention model each recovered
// packet still occupied its own decoder, so decoder drops stay dropped.
#pragma once

#include "baselines/standard_lorawan.hpp"
#include "radio/capture_policy.hpp"

namespace alphawan {

struct Ss5gOptions {
  // Maximum superposed same-SF signals the decoder can disentangle
  // (wanted packet included). The published algorithm handles 2.
  int max_superposed = 2;
  // Minimum timing offset between any colliding pair, in symbols: the
  // de-superposition needs whole mis-aligned symbols to slice at.
  double min_offset_symbols = 3.0;
  // SNR headroom above the demod threshold needed for reliable slicing.
  Db snr_headroom{1.0};
};

// Registry scheme "ss5g" (capture side): rescues collision drops the
// superposition decoder could have separated.
class Ss5gCapturePolicy final : public CapturePolicy {
 public:
  explicit Ss5gCapturePolicy(Ss5gOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string_view name() const override { return "ss5g"; }
  void resolve(const CaptureContext& context,
               std::vector<RxOutcome>& outcomes) const override;

  [[nodiscard]] const Ss5gOptions& options() const { return options_; }

 private:
  Ss5gOptions options_;
};

}  // namespace alphawan
