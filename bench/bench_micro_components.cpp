// Component micro-benchmarks (google-benchmark): throughput of the pieces
// the system runs continuously — airtime math, decoder pool churn, the
// gateway radio pipeline, frame encode/decode + MIC, and the CP solver at
// the Fig. 17 scales.
#include <benchmark/benchmark.h>

#include "baselines/standard_lorawan.hpp"
#include "core/ga_solver.hpp"
#include "net/frame.hpp"
#include "net/sync_word.hpp"
#include "phy/airtime.hpp"
#include "radio/gateway_radio.hpp"
#include "sim/scenario.hpp"
#include "sim/traffic.hpp"

namespace alphawan {
namespace {

void BM_Airtime(benchmark::State& state) {
  TxParams params;
  params.sf = SpreadingFactor::kSF9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(time_on_air(params, 10));
  }
}
BENCHMARK(BM_Airtime);

void BM_DecoderPoolChurn(benchmark::State& state) {
  DecoderPool pool(16);
  Seconds t{0.0};
  PacketId id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.try_acquire(t, t + Seconds{0.05}, 0, id++));
    t += Seconds{0.001};
  }
}
BENCHMARK(BM_DecoderPoolChurn);

std::vector<RxEvent> burst_events(int count) {
  const Spectrum spec = spectrum_1m6();
  std::vector<RxEvent> events;
  for (int i = 0; i < count; ++i) {
    Transmission tx;
    tx.id = static_cast<PacketId>(i + 1);
    tx.node = static_cast<NodeId>(i + 1);
    tx.channel = spec.grid_channel(i % 8);
    tx.params.sf = sf_from_index((i / 8) % 6);
    tx.start = Seconds{0.0005 * i};
    events.push_back(RxEvent{tx, Dbm{-85.0}});
  }
  return events;
}

void BM_GatewayRadioProcess(benchmark::State& state) {
  GatewayRadio radio(default_profile(), 0, kPublicSyncWord);
  const Spectrum spec = spectrum_1m6();
  std::vector<Channel> channels;
  for (int i = 0; i < 8; ++i) channels.push_back(spec.grid_channel(i));
  radio.configure_channels(channels);
  const auto events = burst_events(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(radio.process(events));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GatewayRadioProcess)->Arg(48)->Arg(144)->Arg(1000);

void BM_FrameEncodeDecode(benchmark::State& state) {
  SessionKeys keys;
  keys.nwk_skey.fill(0x42);
  keys.app_skey.fill(0x24);
  DataFrame frame;
  frame.fhdr.dev_addr = make_dev_addr(1, 77);
  frame.fhdr.fcnt = 9;
  frame.fport = 1;
  frame.frm_payload.assign(10, 0xAB);
  for (auto _ : state) {
    const auto raw = encode_frame(frame, keys);
    benchmark::DoNotOptimize(decode_frame(raw, keys));
  }
}
BENCHMARK(BM_FrameEncodeDecode);

CpInstance solver_instance(int users, int gateways) {
  CpInstance inst;
  inst.spectrum = spectrum_4m8();
  inst.num_channels = inst.spectrum.grid_size();
  for (int j = 0; j < gateways; ++j) {
    inst.gateways.push_back({static_cast<GatewayId>(j + 1), 16, 8, 8});
  }
  for (int i = 0; i < users; ++i) {
    CpNode node;
    node.id = static_cast<NodeId>(i + 1);
    node.traffic = 1.0;
    node.min_level.assign(static_cast<std::size_t>(gateways), 0);
    // Roughly half the gateways in reach, varying per node.
    for (int j = 0; j < gateways; ++j) {
      if ((i + j) % 2 == 0) {
        node.min_level[static_cast<std::size_t>(j)] = 2;
      }
    }
    inst.nodes.push_back(std::move(node));
  }
  return inst;
}

// The Fig. 17 CP-solve scaling measurement (4k -> 12k users).
void BM_CpSolve(benchmark::State& state) {
  const auto inst = solver_instance(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(0)) / 1000);
  GaConfig cfg;
  cfg.population = 32;
  cfg.generations = 60;
  cfg.early_stop = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_cp(inst, cfg));
  }
}
BENCHMARK(BM_CpSolve)->Unit(benchmark::kMillisecond)->Arg(4000)->Arg(8000)->Arg(12000)->Iterations(1);

// ---- parallel-speedup table (threads x {GA solve, 1k-node window}) --------
// Results are bit-identical at every thread count (see docs/parallelism.md);
// only wall-clock time moves. The Arg is the explicit thread count, so the
// table is the speedup trajectory tracked in BENCH_*.json.

void BM_CpSolveThreads(benchmark::State& state) {
  const auto inst = solver_instance(4000, 4);
  GaConfig cfg;
  cfg.population = 32;
  cfg.generations = 20;
  cfg.early_stop = false;
  cfg.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_cp(inst, cfg));
  }
}
BENCHMARK(BM_CpSolveThreads)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1);

void BM_WindowThreads(benchmark::State& state) {
  ChannelModelConfig urban;
  urban.shadowing_sigma_db = Db{3.0};
  urban.fast_fading_sigma_db = Db{0.8};
  Deployment deployment{Region{Meters{2100}, Meters{1600}}, spectrum_4m8(),
                        urban};
  auto& network = deployment.add_network("op");
  Rng rng(17);
  deployment.place_gateways(network, 15, default_profile(), rng);
  deployment.place_nodes(network, 1000, rng);
  StandardLorawanPolicy().configure(deployment, network, rng);

  RunOptions options;
  options.threads = static_cast<int>(state.range(0));
  ScenarioRunner runner(deployment, 17, options);
  std::vector<EndNode*> nodes;
  for (auto& n : network.nodes()) nodes.push_back(&n);
  PacketIdSource ids;
  Rng traffic_rng(23);
  const auto txs =
      poisson_traffic(nodes, Seconds{30.0}, 1.0 / 40.0, traffic_rng, ids, 0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run_window(txs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(txs.size()));
}
BENCHMARK(BM_WindowThreads)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(4);

}  // namespace
}  // namespace alphawan

BENCHMARK_MAIN();
