// alphawan-lint fixture: unit-discipline family, positive cases.
// Linted as-if at src/phy/units_positive.hpp (header: all unit checks on).
#pragma once

namespace alphawan {

template <typename Tag>
class Quantity {
 public:
  constexpr explicit Quantity(double v) : value_(v) {}
  [[nodiscard]] constexpr double value() const { return value_; }

 private:
  double value_;
};

struct DbmTag {};
struct HzTag {};
using Dbm = Quantity<DbmTag>;
using Hz = Quantity<HzTag>;

// Raw double parameters named with unit suffixes: findings.
double link_budget(double tx_power_dbm, double path_loss_db);

// Function named with a unit suffix returning a raw double: finding.
double noise_floor_dbm(Hz bandwidth);

// Adjacent same-unit parameters with no annotated convention: finding.
Dbm combine(Dbm first, Dbm second);

// Unwrap-then-rewrap round trip: finding.
inline Dbm passthrough(Dbm power) { return Dbm{power.value()}; }

}  // namespace alphawan
