#include "baselines/alphawan_policy.hpp"

namespace alphawan {

void AlphaWanPolicy::configure(Deployment& deployment, Network& network,
                               Rng& rng) const {
  // Start from the commercial status quo AlphaWAN upgrades in the field.
  StandardLorawanPolicy(node_side_).configure(deployment, network, rng);

  // The latency model's jitter stream derives from the caller's root seed
  // (keyed substream), so the whole upgrade replays with the experiment.
  LatencyModel latency{LatencyModelConfig{},
                       rng.substream("alphawan-latency").root_seed()};
  AlphaWanController controller(options_.controller, latency);
  const LinkEstimates links = oracle_link_estimates(deployment, network);
  const std::map<NodeId, double> traffic =
      uniform_traffic(network, options_.demand_per_node);
  (void)controller.upgrade(network, deployment.spectrum(), links, traffic);
}

}  // namespace alphawan
