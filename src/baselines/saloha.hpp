// Baseline: slotted-ALOHA overlay on LoRaWAN (Polonelli et al. — a TDMA
// grid laid over stock LoRaWAN with *distributed* slot synchronization:
// nodes align to slot boundaries using a shared beacon, but each node's
// local clock carries a bounded sync error, so alignment is imperfect).
//
// Model: each data-rate class has its own slot grid — slot length = the
// packet airtime of that radio setting plus a guard interval — anchored at
// simulation time 0. A node delays every transmission to the next slot
// boundary as seen by its *local* clock, which is offset from true time by
// a per-node draw (zero-mean, clamped). Aligned transmissions within a DR
// class either collide fully or not at all, removing partial overlaps —
// the scheme's whole benefit, and one that does nothing for decoder
// contention (more simultaneous slot-aligned packets, same decoder pool).
#pragma once

#include "baselines/standard_lorawan.hpp"

namespace alphawan {

struct SlottedAlohaOptions {
  // Guard interval appended to the airtime to form the slot length.
  Seconds guard{2e-3};
  // Distributed-sync clock error: per-node offset ~ N(0, sync_jitter),
  // clamped to ±max_offset (beacon loss bounds are enforced in the real
  // protocol by re-synchronizing).
  Seconds sync_jitter{1e-3};
  Seconds max_offset{4e-3};
};

// Registry scheme "saloha": standard-LoRaWAN provisioning (node_side) plus
// per-DR slot alignment of every window's schedule.
class SlottedAlohaPolicy final : public NodeMacPolicy {
 public:
  explicit SlottedAlohaPolicy(SlottedAlohaOptions options = {},
                              StandardLorawanOptions node_side = {})
      : options_(options), node_side_(node_side) {}

  [[nodiscard]] std::string_view name() const override { return "saloha"; }
  void configure(Deployment& deployment, Network& network,
                 Rng& rng) const override {
    StandardLorawanPolicy(node_side_).configure(deployment, network, rng);
  }
  [[nodiscard]] std::vector<Transmission> shape_window(
      std::vector<Transmission> txs, Rng& rng) const override;

  [[nodiscard]] const SlottedAlohaOptions& options() const {
    return options_;
  }

 private:
  SlottedAlohaOptions options_;
  StandardLorawanOptions node_side_;
};

}  // namespace alphawan
