#include "backhaul/forwarder.hpp"

#include <gtest/gtest.h>

#include "backhaul/faults.hpp"
#include "net/network.hpp"
#include "phy/band_plan.hpp"

namespace alphawan {
namespace {

UplinkRecord sample_record(PacketId packet) {
  UplinkRecord rec;
  rec.packet = packet;
  rec.node = 10;
  rec.gateway = 1;
  rec.network = 2;
  rec.timestamp = Seconds{12.5};
  rec.channel = Channel{Hz{923.3e6}, Hz{125e3}};
  rec.dr = DataRate::kDR3;
  rec.snr = Db{-4.5};
  return rec;
}

TEST(ForwarderCodec, PushDataRoundTrip) {
  PushDataMsg msg;
  msg.token = 77;
  msg.gateway = 1;
  msg.uplinks = {sample_record(1), sample_record(2)};
  const auto bytes = encode_forwarder(msg);
  const auto decoded = decode_forwarder(bytes);
  ASSERT_TRUE(decoded.has_value());
  const auto* push = std::get_if<PushDataMsg>(&*decoded);
  ASSERT_NE(push, nullptr);
  EXPECT_EQ(push->token, 77);
  ASSERT_EQ(push->uplinks.size(), 2u);
  EXPECT_EQ(push->uplinks[0].packet, 1u);
  EXPECT_EQ(push->uplinks[1].packet, 2u);
  EXPECT_DOUBLE_EQ(push->uplinks[0].snr.value(), -4.5);
  EXPECT_EQ(push->uplinks[0].dr, DataRate::kDR3);
}

TEST(ForwarderCodec, AllOpsRoundTrip) {
  for (const ForwarderMessage msg :
       {ForwarderMessage{PushAckMsg{5}}, ForwarderMessage{PullDataMsg{6, 9}},
        ForwarderMessage{PullAckMsg{7}}}) {
    const auto decoded = decode_forwarder(encode_forwarder(msg));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->index(), msg.index());
  }
  PullRespMsg resp;
  resp.token = 8;
  resp.gateway = 3;
  resp.channels = {Channel{Hz{923.3e6 + 75e3}, Hz{125e3}}};
  const auto decoded = decode_forwarder(encode_forwarder(resp));
  ASSERT_TRUE(decoded.has_value());
  const auto* r = std::get_if<PullRespMsg>(&*decoded);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->channels.size(), 1u);
  EXPECT_DOUBLE_EQ(r->channels[0].center.value(), 923.3e6 + 75e3);
}

TEST(ForwarderCodec, TruncationRejected) {
  const auto bytes = encode_forwarder(PushDataMsg{1, 2, {sample_record(1)}});
  for (std::size_t cut = 1; cut < bytes.size(); cut += 3) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_FALSE(decode_forwarder(prefix).has_value()) << cut;
  }
}

TEST(ForwarderCodec, GarbageRejected) {
  EXPECT_FALSE(decode_forwarder({}).has_value());
  const std::vector<std::uint8_t> junk = {0x99, 0x01};
  EXPECT_FALSE(decode_forwarder(junk).has_value());
}

struct ForwarderFixture : ::testing::Test {
  Engine engine;
  LatencyModel latency{LatencyModelConfig{}, 21};
  MessageBus bus{engine, latency};
  Network network{2, "op"};
  NetworkServer& server = network.server();

  ForwarderFixture() {
    auto& gw = network.add_gateway(1, Point{Meters{0}, Meters{0}}, default_profile());
    gw.apply_channels(
        GatewayChannelConfig{standard_plan(spectrum_1m6(), 0).channels});
  }
};

TEST_F(ForwarderFixture, PushDataReachesServerAndIsAcked) {
  ForwarderServer fwd_server(server, bus);
  GatewayForwarder agent(network.gateways()[0], bus, fwd_server.endpoint());
  agent.push_uplinks({sample_record(1), sample_record(2)});
  EXPECT_EQ(agent.unacked_pushes(), 1u);
  engine.run();
  EXPECT_EQ(agent.unacked_pushes(), 0u);
  EXPECT_EQ(fwd_server.uplink_batches(), 1u);
  EXPECT_EQ(server.delivered_packets(), 2u);
}

TEST_F(ForwarderFixture, ConfigPushNeedsPullPath) {
  ForwarderServer fwd_server(server, bus);
  GatewayForwarder agent(network.gateways()[0], bus, fwd_server.endpoint());
  // Without a PULL_DATA, the server has no downlink path.
  EXPECT_FALSE(fwd_server.push_config(1, {Channel{Hz{923.3e6}, Hz{125e3}}}));
  agent.pull();
  engine.run();
  ASSERT_TRUE(fwd_server.pull_paths().contains(1));
  const int reboots_before = network.gateways()[0].reboot_count();
  const std::vector<Channel> new_plan = {Channel{Hz{923.3e6 + 37.5e3}, Hz{125e3}},
                                         Channel{Hz{923.5e6 + 37.5e3}, Hz{125e3}}};
  EXPECT_TRUE(fwd_server.push_config(1, new_plan));
  engine.run();
  EXPECT_EQ(agent.configs_applied(), 1u);
  EXPECT_EQ(network.gateways()[0].channels(), new_plan);
  EXPECT_EQ(network.gateways()[0].reboot_count(), reboots_before + 1);
}

TEST_F(ForwarderFixture, PushRetriesUntilAckedThroughLossyBus) {
  FaultPlan fault_plan;
  fault_plan.seed = 7;
  fault_plan.everywhere.drop_prob = 0.5;
  FaultInjector injector(bus, fault_plan);
  ForwarderServer fwd_server(server, bus);
  GatewayForwarder agent(network.gateways()[0], bus, fwd_server.endpoint());
  agent.push_uplinks({sample_record(1), sample_record(2)});
  engine.run();
  EXPECT_EQ(agent.unacked_pushes(), 0u);  // retried to completion
  EXPECT_GT(agent.stats().push_retries, 0u);
  EXPECT_EQ(server.delivered_packets(), 2u);  // retries deduped, counted once
  EXPECT_EQ(fwd_server.uplink_batches(), 1u);
}

TEST_F(ForwarderFixture, RetriedBatchNotDoubleIngested) {
  ForwarderServer fwd_server(server, bus);
  GatewayForwarder agent(network.gateways()[0], bus, fwd_server.endpoint());
  // Simulate a retransmit whose original also arrived: send the same
  // sealed PUSH_DATA frame twice.
  const auto frame = encode_forwarder(
      PushDataMsg{42, 1, {sample_record(1), sample_record(2)}});
  bus.send(agent.endpoint(), fwd_server.endpoint(), frame);
  bus.send(agent.endpoint(), fwd_server.endpoint(), frame);
  engine.run();
  EXPECT_EQ(fwd_server.uplink_batches(), 1u);
  EXPECT_EQ(fwd_server.stats().duplicate_batches, 1u);
  EXPECT_EQ(server.delivered_packets(), 2u);
}

TEST_F(ForwarderFixture, DuplicateConfigPushNotReapplied) {
  ForwarderServer fwd_server(server, bus);
  GatewayForwarder agent(network.gateways()[0], bus, fwd_server.endpoint());
  agent.pull();
  engine.run();
  const std::vector<Channel> plan = {Channel{Hz{923.3e6 + 37.5e3}, Hz{125e3}}};
  ASSERT_TRUE(fwd_server.push_config(1, plan));
  engine.run();
  EXPECT_EQ(agent.configs_applied(), 1u);
  const int reboots = network.gateways()[0].reboot_count();

  // A duplicated delivery of the same versioned push: acked, not re-applied,
  // no extra reboot.
  PullRespMsg dup;
  dup.token = 999;
  dup.gateway = 1;
  dup.config_version = network.gateways()[0].config_version();
  dup.channels = plan;
  bus.send(fwd_server.endpoint(), agent.endpoint(), encode_forwarder(dup));
  engine.run();
  EXPECT_EQ(agent.configs_applied(), 1u);
  EXPECT_EQ(agent.stats().duplicate_configs, 1u);
  EXPECT_EQ(network.gateways()[0].reboot_count(), reboots);
}

TEST_F(ForwarderFixture, UnackedConfigRepushedOnReconnect) {
  ForwarderServer fwd_server(server, bus);
  GatewayForwarder agent(network.gateways()[0], bus, fwd_server.endpoint());
  agent.pull();
  engine.run();

  // The gateway crashes; a config push goes out and is lost.
  bus.set_down(agent.endpoint(), true);
  const std::vector<Channel> plan = {Channel{Hz{923.3e6 + 37.5e3}, Hz{125e3}}};
  ASSERT_TRUE(fwd_server.push_config(1, plan));
  engine.run();
  EXPECT_EQ(agent.configs_applied(), 0u);
  EXPECT_FALSE(fwd_server.config_acked(1));

  // Restart + reconnect: the PULL_DATA keepalive triggers a re-push and
  // the config lands exactly once.
  bus.set_down(agent.endpoint(), false);
  agent.pull();
  engine.run();
  EXPECT_EQ(fwd_server.stats().config_repushes, 1u);
  EXPECT_EQ(agent.configs_applied(), 1u);
  EXPECT_EQ(network.gateways()[0].channels(), plan);
  EXPECT_TRUE(fwd_server.config_acked(1));
}

TEST(ForwarderCodec, SingleBitFlipsRejected) {
  const auto bytes = encode_forwarder(
      PushDataMsg{1, 2, {UplinkRecord{.packet = 3, .node = 4}}});
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    auto flipped = bytes;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(decode_forwarder(flipped).has_value()) << "bit " << bit;
  }
}

TEST_F(ForwarderFixture, ConfigForUnknownGatewayIgnored) {
  ForwarderServer fwd_server(server, bus);
  GatewayForwarder agent(network.gateways()[0], bus, fwd_server.endpoint());
  agent.pull();
  engine.run();
  // Addressed to gateway 99: the agent for gateway 1 must not apply it.
  PullRespMsg resp;
  resp.token = 9;
  resp.gateway = 99;
  resp.channels = {Channel{Hz{923.3e6}, Hz{125e3}}};
  bus.send(fwd_server.endpoint(), agent.endpoint(), encode_forwarder(resp));
  engine.run();
  EXPECT_EQ(agent.configs_applied(), 0u);
}

}  // namespace
}  // namespace alphawan
