#include "core/intra_planner.hpp"

#include <gtest/gtest.h>

#include "sim/traffic.hpp"
#include "sim/scenario.hpp"

namespace alphawan {
namespace {

struct PlannerFixture {
  Deployment deployment{Region{Meters{1200.0}, Meters{1000.0}}, spectrum_1m6()};
  Network* network = nullptr;
  Rng rng{21};

  explicit PlannerFixture(std::size_t gateways = 5, std::size_t nodes = 48) {
    network = &deployment.add_network("op");
    deployment.place_gateways(*network, gateways, default_profile(), rng);
    deployment.place_nodes(*network, nodes, rng);
  }
};

IntraPlannerConfig fast_planner() {
  IntraPlannerConfig cfg;
  cfg.ga.population = 16;
  cfg.ga.generations = 25;
  cfg.ga.seed = 5;
  return cfg;
}

TEST(IntraPlanner, InstanceReflectsHardware) {
  PlannerFixture f;
  IntraPlanner planner(fast_planner());
  const auto links = oracle_link_estimates(f.deployment, *f.network);
  const auto inst = planner.build_instance(
      *f.network, f.deployment.spectrum(), links,
      uniform_traffic(*f.network));
  EXPECT_EQ(inst.gateways.size(), 5u);
  EXPECT_EQ(inst.num_channels, 8);
  for (const auto& gw : inst.gateways) {
    EXPECT_EQ(gw.decoders, 16);
    EXPECT_EQ(gw.max_channels, 8);
    EXPECT_EQ(gw.max_span_channels, 8);
  }
  EXPECT_EQ(inst.nodes.size(), 48u);
}

TEST(IntraPlanner, MinLevelsMonotoneWithSnr) {
  PlannerFixture f(1, 0);
  IntraPlanner planner(fast_planner());
  // Hand-build links: strong node and weak node.
  NodeRadioConfig cfg;
  cfg.channel = f.deployment.spectrum().grid_channel(0);
  f.network->add_node(501, Point{Meters{10}, Meters{10}}, cfg);
  f.network->add_node(502, Point{Meters{20}, Meters{20}}, cfg);
  LinkEstimates links;
  links.nodes[501].gateway_snr[f.network->gateways()[0].id()] = Db{10.0};
  links.nodes[501].observed_tx_power = Dbm{14.0};
  links.nodes[502].gateway_snr[f.network->gateways()[0].id()] = Db{-14.0};
  links.nodes[502].observed_tx_power = Dbm{14.0};
  const auto inst = planner.build_instance(
      *f.network, f.deployment.spectrum(), links, {});
  ASSERT_EQ(inst.nodes.size(), 2u);
  // The strong node reaches at a faster (lower) level than the weak one.
  EXPECT_LT(inst.nodes[0].min_level[0], inst.nodes[1].min_level[0]);
}

TEST(IntraPlanner, UnheardNodesExcluded) {
  PlannerFixture f(2, 5);
  IntraPlanner planner(fast_planner());
  LinkEstimates links;  // nobody heard
  const auto inst = planner.build_instance(
      *f.network, f.deployment.spectrum(), links, {});
  EXPECT_TRUE(inst.nodes.empty());
}

TEST(IntraPlanner, PlanAppliesCleanly) {
  PlannerFixture f;
  IntraPlanner planner(fast_planner());
  const auto links = oracle_link_estimates(f.deployment, *f.network);
  const auto outcome = planner.plan(*f.network, f.deployment.spectrum(),
                                    links, uniform_traffic(*f.network));
  EXPECT_GT(outcome.solve_seconds, Seconds{0.0});
  EXPECT_NO_THROW(f.network->apply_config(outcome.config));
  // Every gateway got a valid hardware config.
  for (const auto& gw : f.network->gateways()) {
    EXPECT_FALSE(gw.channels().empty());
    EXPECT_TRUE(valid_for_profile(GatewayChannelConfig{gw.channels()},
                                  gw.profile()));
  }
}

TEST(IntraPlanner, InjectedClockMakesSolveTimeDeterministic) {
  PlannerFixture f(2, 6);
  // ManualClock auto-steps by 0.25 s per read; plan() reads it exactly
  // twice (start/stop), so the telemetry equals one step, every run.
  ManualClock manual{Seconds{100.0}, Seconds{0.25}};
  IntraPlannerConfig cfg = fast_planner();
  cfg.clock = &manual;
  IntraPlanner planner(cfg);
  const auto links = oracle_link_estimates(f.deployment, *f.network);
  const auto outcome = planner.plan(*f.network, f.deployment.spectrum(),
                                    links, uniform_traffic(*f.network));
  EXPECT_EQ(outcome.solve_seconds, Seconds{0.25});
  EXPECT_EQ(manual.now(), Seconds{100.5});
}

TEST(IntraPlanner, FrequencyOffsetShiftsEverything) {
  PlannerFixture f(2, 6);
  IntraPlanner planner(fast_planner());
  const auto links = oracle_link_estimates(f.deployment, *f.network);
  const Hz offset{75e3};
  const auto outcome =
      planner.plan(*f.network, f.deployment.spectrum(), links,
                   uniform_traffic(*f.network), offset);
  const Spectrum& s = f.deployment.spectrum();
  for (const auto& [gw, cfg] : outcome.config.gateways) {
    for (const auto& ch : cfg.channels) {
      const int idx = s.nearest_grid_index(ch.center - offset);
      EXPECT_NEAR(ch.center.value(), (s.grid_center(idx) + offset).value(), 1.0);
    }
  }
  for (const auto& [node, cfg] : outcome.config.nodes) {
    const int idx = s.nearest_grid_index(cfg.channel.center - offset);
    EXPECT_NEAR(cfg.channel.center.value(), (s.grid_center(idx) + offset).value(),
                1.0);
  }
}

TEST(IntraPlanner, NodeSideDisabledTouchesOnlyGateways) {
  PlannerFixture f;
  IntraPlannerConfig cfg = fast_planner();
  cfg.strategy7_node_side = false;
  IntraPlanner planner(cfg);
  const auto links = oracle_link_estimates(f.deployment, *f.network);
  const auto outcome = planner.plan(*f.network, f.deployment.spectrum(),
                                    links, uniform_traffic(*f.network));
  EXPECT_TRUE(outcome.config.nodes.empty());
  EXPECT_FALSE(outcome.config.gateways.empty());
}

TEST(IntraPlanner, Strategy1DisabledKeepsEightChannels) {
  PlannerFixture f;
  IntraPlannerConfig cfg = fast_planner();
  cfg.strategy1_adapt_channel_count = false;
  IntraPlanner planner(cfg);
  const auto links = oracle_link_estimates(f.deployment, *f.network);
  const auto outcome = planner.plan(*f.network, f.deployment.spectrum(),
                                    links, uniform_traffic(*f.network));
  for (const auto& [gw, gw_cfg] : outcome.config.gateways) {
    EXPECT_EQ(gw_cfg.channels.size(), 8u);
  }
}

TEST(IntraPlanner, PlannedNetworkBeatsStandardCapacity) {
  // End-to-end value check (small-scale Fig. 5a): 5 gateways in 1.6 MHz.
  // Standard LoRaWAN caps at 16 concurrent; the planner must beat it
  // substantially.
  PlannerFixture f(5, 48);
  // All 48 users transmit concurrently on orthogonal settings.
  IntraPlanner planner(fast_planner());
  const auto links = oracle_link_estimates(f.deployment, *f.network);
  const auto outcome = planner.plan(*f.network, f.deployment.spectrum(),
                                    links, uniform_traffic(*f.network));
  f.network->apply_config(outcome.config);

  std::vector<EndNode*> nodes;
  for (auto& n : f.network->nodes()) nodes.push_back(&n);
  PacketIdSource ids;
  ScenarioRunner runner(f.deployment);
  const auto txs = staggered_by_lock_on(nodes, Seconds{0.0}, Seconds{0.0004}, ids);
  const auto result = runner.run_window(txs);
  EXPECT_GE(result.total_delivered(), 28u);  // well above the standard 16
}

}  // namespace
}  // namespace alphawan
