#include "phy/channel_model.hpp"

#include <gtest/gtest.h>

#include "phy/sensitivity.hpp"

namespace alphawan {
namespace {

TEST(ChannelModel, PathLossMonotoneInDistance) {
  ChannelModel model;
  double prev = model.mean_path_loss(1.0);
  for (Meters d = 10.0; d < 5000.0; d *= 2.0) {
    const double pl = model.mean_path_loss(d);
    EXPECT_GT(pl, prev);
    prev = pl;
  }
}

TEST(ChannelModel, BelowReferenceDistanceClamped) {
  ChannelModel model;
  EXPECT_DOUBLE_EQ(model.mean_path_loss(0.1), model.mean_path_loss(1.0));
}

TEST(ChannelModel, ShadowingFrozenPerLink) {
  ChannelModel model;
  const Db a1 = model.link_path_loss(1, 2, 500.0);
  const Db a2 = model.link_path_loss(1, 2, 500.0);
  EXPECT_DOUBLE_EQ(a1, a2);
}

TEST(ChannelModel, ShadowingDiffersAcrossLinks) {
  ChannelModel model;
  const Db a = model.link_path_loss(1, 2, 500.0);
  const Db b = model.link_path_loss(3, 2, 500.0);
  EXPECT_NE(a, b);
}

TEST(ChannelModel, ShadowingDeterministicAcrossInstances) {
  ChannelModelConfig cfg;
  cfg.seed = 99;
  ChannelModel m1(cfg), m2(cfg);
  EXPECT_DOUBLE_EQ(m1.link_path_loss(5, 6, 800.0),
                   m2.link_path_loss(5, 6, 800.0));
}

TEST(ChannelModel, FastFadingVariesPerPacket) {
  ChannelModel model;
  Rng rng(3);
  const Dbm p1 = model.received_power(1, 2, 300.0, 14.0, rng);
  const Dbm p2 = model.received_power(1, 2, 300.0, 14.0, rng);
  EXPECT_NE(p1, p2);
  EXPECT_NEAR(p1, p2, 10.0);  // but they stay close (sigma ~1 dB)
}

TEST(ChannelModel, RangeForSnrInvertsModel) {
  ChannelModel model;
  const Db target_snr = -10.0;
  const Meters range = model.range_for_snr(target_snr, 14.0);
  const Db snr_at_range =
      14.0 - model.mean_path_loss(range) - noise_floor_dbm(kLoRaBandwidth125k);
  EXPECT_NEAR(snr_at_range, target_snr, 0.2);
}

TEST(ChannelModel, UrbanRangesRealistic) {
  // With defaults + 14 dBm, SF7 should reach hundreds of meters and SF12
  // over a kilometer (the paper's testbed exercises all DRs over
  // 2.1 x 1.6 km).
  ChannelModel model;
  const Meters sf7 = model.range_for_snr(
      demod_snr_threshold(SpreadingFactor::kSF7), 14.0 + 2.0);
  const Meters sf12 = model.range_for_snr(
      demod_snr_threshold(SpreadingFactor::kSF12), 14.0 + 2.0);
  EXPECT_GT(sf7, 300.0);
  EXPECT_LT(sf7, 1500.0);
  EXPECT_GT(sf12, 1000.0);
  EXPECT_LT(sf12, 4000.0);
  EXPECT_GT(sf12, sf7);
}

TEST(ChannelModel, MeanSnrDropsWithDistance) {
  ChannelModel model;
  EXPECT_GT(model.mean_link_snr(1, 2, 100.0, 14.0),
            model.mean_link_snr(1, 2, 1000.0, 14.0));
}

TEST(ChannelModel, HigherPowerHigherSnr) {
  ChannelModel model;
  EXPECT_GT(model.mean_link_snr(1, 2, 500.0, 20.0),
            model.mean_link_snr(1, 2, 500.0, 8.0));
}

}  // namespace
}  // namespace alphawan
