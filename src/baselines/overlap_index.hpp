// Shared coarse-frequency event index for gateway-side capture policies
// (CIC, SS5G, CurvingLoRa). Buckets one window's events by coarse
// frequency and sorts each bucket by start time, so finding a packet's
// co-channel time-overlappers is a windowed scan instead of O(n) per
// packet. Built per resolve() call — capture policies are stateless by
// contract (radio/capture_policy.hpp), so the index lives on the stack of
// the concurrent per-gateway task that needs it. Reads only the columnar
// CaptureContext, never an RxEvent struct, so the batched pipeline can
// run policies without materializing events.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "phy/overlap.hpp"
#include "radio/capture_policy.hpp"

namespace alphawan {

class OverlapIndex {
 public:
  explicit OverlapIndex(const CaptureContext& ctx) : ctx_(ctx) {
    for (std::size_t i = 0; i < ctx.count; ++i) {
      by_bucket_[bucket_of(ctx.channel[i].center)].push_back(i);
    }
    for (auto& [bucket, indices] : by_bucket_) {
      std::sort(indices.begin(), indices.end(),
                [&](std::size_t a, std::size_t b) {
                  return ctx.start[a] < ctx.start[b];
                });
      Seconds max_dur{0.0};
      for (const auto idx : indices) {
        max_dur = std::max(max_dur, ctx.end[idx] - ctx.start[idx]);
      }
      longest_[bucket] = max_dur;
    }
  }

  // Visit every event j != i overlapping event i in time with co-channel
  // spectral overlap (overlap_ratio >= kDetectOverlapThreshold). The
  // visitor returns false to stop the scan early.
  template <typename Visitor>
  void for_each_cochannel_overlap(std::size_t i, Visitor&& visit) const {
    const Seconds ev_start = ctx_.start[i];
    const Seconds ev_end = ctx_.end[i];
    const Channel& ev_channel = ctx_.channel[i];
    const std::int64_t center = bucket_of(ev_channel.center);
    for (std::int64_t bucket = center - 1; bucket <= center + 1; ++bucket) {
      const auto it = by_bucket_.find(bucket);
      if (it == by_bucket_.end()) continue;
      const auto& indices = it->second;
      const auto first = std::lower_bound(
          indices.begin(), indices.end(), ev_start - longest_.at(bucket),
          [&](std::size_t idx, Seconds t) { return ctx_.start[idx] < t; });
      for (auto jt = first; jt != indices.end(); ++jt) {
        const std::size_t j = *jt;
        if (ctx_.start[j] >= ev_end) break;
        if (j == i) continue;
        // Transmission::overlaps_in_time over the columns.
        if (!(ev_start < ctx_.end[j] && ctx_.start[j] < ev_end)) continue;
        if (overlap_ratio(ctx_.channel[j], ev_channel) <
            kDetectOverlapThreshold) {
          continue;
        }
        if (!visit(j)) return;
      }
    }
  }

 private:
  static std::int64_t bucket_of(Hz center) {
    return static_cast<std::int64_t>(center / kChannelSpacing);
  }

  const CaptureContext& ctx_;
  std::map<std::int64_t, std::vector<std::size_t>> by_bucket_;
  std::map<std::int64_t, Seconds> longest_;
};

}  // namespace alphawan
