// LoRa PHY parameterization: spreading factors, data rates, coding rates.
//
// The paper's testbed (AS923-style band, 125 kHz channels) uses the classic
// DR0..DR5 ladder: DR0 = SF12 ... DR5 = SF7, all at 125 kHz. Six mutually
// quasi-orthogonal spreading factors per channel give the "6 concurrent
// users per channel" theoretical figure used throughout the paper
// (24 channels x 6 DRs = 144 concurrent users in 4.8 MHz).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace alphawan {

enum class SpreadingFactor : std::uint8_t {
  kSF7 = 7,
  kSF8 = 8,
  kSF9 = 9,
  kSF10 = 10,
  kSF11 = 11,
  kSF12 = 12,
};

inline constexpr std::array<SpreadingFactor, 6> kAllSpreadingFactors = {
    SpreadingFactor::kSF7,  SpreadingFactor::kSF8,  SpreadingFactor::kSF9,
    SpreadingFactor::kSF10, SpreadingFactor::kSF11, SpreadingFactor::kSF12,
};

inline constexpr int kNumSpreadingFactors =
    static_cast<int>(kAllSpreadingFactors.size());

[[nodiscard]] constexpr int sf_value(SpreadingFactor sf) {
  return static_cast<int>(sf);
}

// Index 0..5 for SF7..SF12 (handy for matrices).
[[nodiscard]] constexpr int sf_index(SpreadingFactor sf) {
  return sf_value(sf) - 7;
}

[[nodiscard]] constexpr SpreadingFactor sf_from_index(int index) {
  return static_cast<SpreadingFactor>(index + 7);
}

[[nodiscard]] std::string_view sf_name(SpreadingFactor sf);

// LoRaWAN data rate (regional ladder used by the paper: DR0=SF12..DR5=SF7,
// all 125 kHz).
enum class DataRate : std::uint8_t {
  kDR0 = 0,  // SF12 — longest range, slowest
  kDR1 = 1,  // SF11
  kDR2 = 2,  // SF10
  kDR3 = 3,  // SF9
  kDR4 = 4,  // SF8
  kDR5 = 5,  // SF7 — shortest range, fastest
};

inline constexpr std::array<DataRate, 6> kAllDataRates = {
    DataRate::kDR0, DataRate::kDR1, DataRate::kDR2,
    DataRate::kDR3, DataRate::kDR4, DataRate::kDR5,
};

inline constexpr int kNumDataRates = static_cast<int>(kAllDataRates.size());

[[nodiscard]] constexpr int dr_value(DataRate dr) {
  return static_cast<int>(dr);
}

[[nodiscard]] constexpr SpreadingFactor dr_to_sf(DataRate dr) {
  return static_cast<SpreadingFactor>(12 - static_cast<int>(dr));
}

[[nodiscard]] constexpr DataRate sf_to_dr(SpreadingFactor sf) {
  return static_cast<DataRate>(12 - static_cast<int>(sf));
}

[[nodiscard]] std::string_view dr_name(DataRate dr);

// 4/(4+cr) coding rate; LoRaWAN uplinks use CR 4/5.
enum class CodingRate : std::uint8_t {
  kCR45 = 1,
  kCR46 = 2,
  kCR47 = 3,
  kCR48 = 4,
};

// Full radio settings of one transmission.
struct TxParams {
  SpreadingFactor sf = SpreadingFactor::kSF7;
  Hz bandwidth = kLoRaBandwidth125k;
  CodingRate coding_rate = CodingRate::kCR45;
  std::uint8_t preamble_symbols = 8;  // LoRaWAN default
  bool explicit_header = true;
  bool crc_enabled = true;

  friend bool operator==(const TxParams&, const TxParams&) = default;
};

// Two transmissions on the same channel are "orthogonal" when they use
// different spreading factors (the paper's theoretical capacity assumes
// this quasi-orthogonality).
[[nodiscard]] constexpr bool orthogonal(SpreadingFactor a, SpreadingFactor b) {
  return a != b;
}

}  // namespace alphawan
