// Three canonical scenarios with checked-in golden digests
// (tests/golden/digests.txt). They are small but exercise the three loss
// regimes the paper separates: decoder contention, inter-network
// contention, and channel contention. Any behavioural change to the radio
// pipeline, the channel model, or the RNG substream derivation shows up as
// a digest mismatch; docs/testing.md describes when and how to re-bless.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "check/digest.hpp"
#include "sim/scenario.hpp"
#include "sim/traffic.hpp"

namespace alphawan {

struct CanonicalScenario {
  std::string name;
  std::uint64_t seed = 0;
  std::unique_ptr<Deployment> deployment;
  std::vector<Transmission> txs;
};

// Names of all canonical scenarios, in golden-file order.
[[nodiscard]] const std::vector<std::string>& canonical_names();

// Build a canonical scenario. Throws std::invalid_argument on an unknown
// name.
[[nodiscard]] CanonicalScenario make_canonical(std::string_view name);

// Build, run one window through a fresh ScenarioRunner, and digest the
// ordered fate stream.
[[nodiscard]] std::uint64_t canonical_digest(std::string_view name);

}  // namespace alphawan
