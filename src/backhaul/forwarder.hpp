// Gateway <-> network-server forwarding protocol, modeled on the Semtech
// UDP packet forwarder that real LoRaWAN gateways run: PUSH_DATA carries
// uplink receptions (with rx metadata), PULL_DATA keeps the downlink path
// alive, PULL_RESP carries downlink payloads / configuration updates, and
// every datagram is acknowledged with a token echo.
//
// The wire format here is the library's binary codec rather than Semtech's
// JSON, but the protocol state machine (tokens, acks, keepalive) is the
// same — it is what the AlphaWAN agents on gateways ride on.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <optional>
#include <variant>

#include "backhaul/bus.hpp"
#include "backhaul/wire.hpp"
#include "net/gateway.hpp"
#include "net/network_server.hpp"

namespace alphawan {

enum class ForwarderOp : std::uint8_t {
  kPushData = 0x00,
  kPushAck = 0x01,
  kPullData = 0x02,
  kPullResp = 0x03,
  kPullAck = 0x04,
};

struct PushDataMsg {
  std::uint16_t token = 0;
  GatewayId gateway = kInvalidGateway;
  std::vector<UplinkRecord> uplinks;
};

struct PushAckMsg {
  std::uint16_t token = 0;
};

struct PullDataMsg {
  std::uint16_t token = 0;
  GatewayId gateway = kInvalidGateway;
};

struct PullRespMsg {
  std::uint16_t token = 0;
  GatewayId gateway = kInvalidGateway;
  // Channel configuration push (the AlphaWAN agent applies it and reboots).
  std::vector<Channel> channels;
};

struct PullAckMsg {
  std::uint16_t token = 0;
};

using ForwarderMessage = std::variant<PushDataMsg, PushAckMsg, PullDataMsg,
                                      PullRespMsg, PullAckMsg>;

[[nodiscard]] std::vector<std::uint8_t> encode_forwarder(
    const ForwarderMessage& msg);
[[nodiscard]] std::optional<ForwarderMessage> decode_forwarder(
    std::span<const std::uint8_t> payload);

// The gateway-side agent: forwards uplink batches, answers PULL_RESP
// configuration pushes by reconfiguring its gateway, tracks ack state.
class GatewayForwarder {
 public:
  GatewayForwarder(Gateway& gateway, MessageBus& bus, EndpointId server);

  [[nodiscard]] EndpointId endpoint() const;

  // Send one batch of uplinks (PUSH_DATA). Returns the token used.
  std::uint16_t push_uplinks(std::vector<UplinkRecord> uplinks);
  // Send a keepalive (PULL_DATA) so the server can address us.
  std::uint16_t pull();

  [[nodiscard]] std::size_t unacked_pushes() const {
    return pending_push_.size();
  }
  [[nodiscard]] std::size_t configs_applied() const {
    return configs_applied_;
  }

 private:
  void on_message(const EndpointId& from, std::vector<std::uint8_t> payload);

  Gateway& gateway_;
  MessageBus& bus_;
  EndpointId server_;
  std::uint16_t next_token_ = 1;
  std::set<std::uint16_t> pending_push_;
  std::size_t configs_applied_ = 0;
};

// The server-side endpoint: ingests PUSH_DATA into a NetworkServer, acks
// everything, and can push channel configurations to gateways that have
// pulled at least once.
class ForwarderServer {
 public:
  ForwarderServer(NetworkServer& server, MessageBus& bus,
                  EndpointId endpoint = "nss");

  [[nodiscard]] const EndpointId& endpoint() const { return endpoint_; }
  // Gateways that have an open downlink path (sent PULL_DATA).
  [[nodiscard]] const std::map<GatewayId, EndpointId>& pull_paths() const {
    return pull_paths_;
  }

  // Push a channel configuration to a gateway (must have pulled).
  // Returns false when no downlink path is known.
  bool push_config(GatewayId gateway, std::vector<Channel> channels);

  [[nodiscard]] std::size_t uplink_batches() const { return batches_; }

 private:
  void on_message(const EndpointId& from, std::vector<std::uint8_t> payload);

  NetworkServer& server_;
  MessageBus& bus_;
  EndpointId endpoint_;
  std::map<GatewayId, EndpointId> pull_paths_;
  std::uint16_t next_token_ = 1;
  std::size_t batches_ = 0;
};

}  // namespace alphawan
