// In-process message bus with simulated delivery latency: the backhaul
// substrate carrying operator <-> Master traffic and server -> gateway
// config pushes. Endpoints exchange framed byte payloads; delivery is
// scheduled on a discrete-event Engine so end-to-end latencies (Fig. 17)
// are measurable.
//
// Delivery semantics (see docs/robustness.md): attachment and liveness are
// checked at DELIVERY time, not send time. A message addressed to an
// endpoint that is detached — or crashed via `set_down` — when the
// delivery event fires is dropped and counted in `BusStats::dropped`.
// Conversely, a send issued while the SOURCE is down never leaves the
// endpoint (a crashed process cannot transmit) and is dropped immediately.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "backhaul/latency_model.hpp"
#include "sim/engine.hpp"

namespace alphawan {

using EndpointId = std::string;

class FaultInjector;

struct BusStats {
  std::size_t messages = 0;
  std::size_t bytes = 0;
  // Messages that reached no handler: unknown endpoint, endpoint detached
  // while the message was in flight, or endpoint down (crash outage).
  std::size_t dropped = 0;
};

// Timeout/retry parameters shared by the bus endpoints that implement a
// reliable exchange on top of the lossy substrate (OperatorClient, the
// forwarder push/config paths). Exponential backoff: attempt k waits
// initial_timeout * backoff_factor^k, capped at max_timeout.
struct RetryPolicy {
  Seconds initial_timeout{0.25};
  double backoff_factor = 2.0;
  Seconds max_timeout{4.0};
  // Total attempts before giving up (the first send counts). 0 = retry
  // until the exchange succeeds or the endpoint is torn down.
  int max_attempts = 0;

  [[nodiscard]] Seconds timeout_for_attempt(int attempt) const {
    Seconds t = initial_timeout;
    for (int i = 0; i < attempt && t < max_timeout; ++i) {
      t = t * backoff_factor;
    }
    return t < max_timeout ? t : max_timeout;
  }
};

class MessageBus {
 public:
  using Handler =
      std::function<void(const EndpointId& from, std::vector<std::uint8_t>)>;

  MessageBus(Engine& engine, LatencyModel& latency)
      : engine_(engine), latency_(latency) {}

  // Register (or replace) an endpoint's receive handler.
  void attach(const EndpointId& id, Handler handler);
  void detach(const EndpointId& id);
  [[nodiscard]] bool attached(const EndpointId& id) const {
    return handlers_.contains(id);
  }

  // Crash/restore an endpoint without losing its handler: while down, the
  // endpoint neither receives (deliveries drop) nor sends. FaultInjector
  // outage events drive this; tests may call it directly.
  void set_down(const EndpointId& id, bool down);
  [[nodiscard]] bool is_down(const EndpointId& id) const {
    return down_.contains(id);
  }

  // Send a payload; `wan` selects the WAN (operator<->Master) latency
  // distribution instead of the LAN one. Messages to unknown or down
  // endpoints are dropped (counted in `BusStats::dropped`).
  void send(const EndpointId& from, const EndpointId& to,
            std::vector<std::uint8_t> payload, bool wan = false);

  // Route every subsequent send through `faults` (nullptr restores the
  // direct path). The no-injector fast path is a single pointer test —
  // deliberately a branch, not a virtual call, so the disabled
  // configuration costs nothing measurable.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  // Schedule the delivery leg of a message. Exposed for FaultInjector,
  // which re-enters here after applying per-message faults; everyone else
  // goes through send().
  void schedule_delivery(const EndpointId& from, const EndpointId& to,
                         Seconds delay, std::vector<std::uint8_t> payload);

  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const BusStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t dropped() const { return stats_.dropped; }

 private:
  Engine& engine_;
  LatencyModel& latency_;
  std::map<EndpointId, Handler> handlers_;
  std::set<EndpointId> down_;
  FaultInjector* faults_ = nullptr;
  BusStats stats_;
};

}  // namespace alphawan
