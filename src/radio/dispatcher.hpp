// The FCFS dispatcher: orders detected packets by lock-on time and assigns
// decoders from the pool in that order (paper Appendix C, Fig. 20b).
#pragma once

#include <vector>

#include "radio/decoder_pool.hpp"
#include "radio/transmission.hpp"

namespace alphawan {

// An entry awaiting dispatch: a detected packet bound to a chain.
struct DispatchEntry {
  // Index into the caller's RxEvent array.
  std::size_t event_index = 0;
  Seconds lock_on{0.0};
  Seconds end{0.0};
  NetworkId network = 0;
  PacketId packet = 0;
};

// Sort entries into FCFS dispatch order: by lock-on time, ties broken by
// packet id for determinism.
void sort_fcfs(std::vector<DispatchEntry>& entries);

// Outcome of a dispatch attempt.
struct DispatchResult {
  bool acquired = false;
  bool foreign_among_occupants = false;  // valid when !acquired
};

// Attempt to claim a decoder for one entry.
[[nodiscard]] DispatchResult dispatch(DecoderPool& pool,
                                      const DispatchEntry& entry);

}  // namespace alphawan
