#include "sim/scenario.hpp"

#include <algorithm>

#include "check/invariants.hpp"
#include "common/parallel.hpp"
#include "phy/batch_kernels.hpp"
#include "phy/sensitivity.hpp"
#include "radio/detector.hpp"
#include "sim/batch.hpp"

namespace alphawan {
namespace {
// Substream domain tag separating fading draws from any future named
// substreams derived from the same runner seed.
constexpr std::uint64_t kFadingDomain = 0xFAD1'F0E5'7A7EULL;

}  // namespace

Rng packet_link_rng(const Rng& root, GatewayId gateway, PacketId packet) {
  return root.substream(kFadingDomain ^ (static_cast<std::uint64_t>(gateway) << 40),
                        packet);
}

std::size_t WindowResult::total_delivered() const {
  std::size_t total = 0;
  for (const auto& [net, n] : delivered) total += n;
  return total;
}

std::size_t WindowResult::total_offered() const {
  std::size_t total = 0;
  for (const auto& [net, n] : offered) total += n;
  return total;
}

ScenarioRunner::ScenarioRunner(Deployment& deployment, std::uint64_t seed,
                               RunOptions options)
    : deployment_(deployment),
      rng_(seed),
      options_(std::move(options)),
      invariants_(invariants_from_env()) {}

WindowResult ScenarioRunner::run_window(const std::vector<Transmission>& txs) {
  WindowResult result;
  auto& channel = deployment_.channel_model();
  const int shard_count = resolve_shard_count(options_.shards);
  const ShardLayout layout = deployment_.shard_layout(shard_count);
  // Refreshing the cache set registers every gateway column in its home
  // slice (and recomputes antenna gains for gateways whose antenna changed
  // since the last call).
  ShardedLinkCache& caches = deployment_.shard_caches(shard_count);
  // Flatten (network, gateway) pairs in deployment order: the parallel
  // fan-out runs them in any order, the merge below walks them in this one.
  std::vector<std::pair<Network*, Gateway*>> tasks;
  for (auto& network : deployment_.networks()) {
    // (Re)attach the checker and capture policy every window: gateways may
    // have been added since the last one, and a null attach detaches stale
    // state. The policy pointer is const and shared across concurrent
    // gateway tasks — safe because resolve() is stateless by contract.
    for (auto& gw : network.gateways()) {
      gw.set_observer(invariants_);
      gw.set_capture_policy(options_.capture_policy.get());
      tasks.emplace_back(&network, &gw);
    }
  }

  auto& sc = scratch_;
  const Dbm floor =
      noise_floor_dbm(kLoRaBandwidth125k) - options_.prune_margin;
  const auto shards = static_cast<std::size_t>(shard_count);
  sc.shards.resize(shards);
  sc.task_col.resize(tasks.size());
  sc.task_shard.resize(tasks.size());
  sc.task_slot.resize(tasks.size());
  for (auto& sh : sc.shards) sh.tasks.clear();
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    Gateway* gw = tasks[t].second;
    const auto home = static_cast<std::size_t>(layout.shard_of(gw->position()));
    sc.task_shard[t] = static_cast<std::uint32_t>(home);
    sc.task_col[t] = caches.slice(home).column_of(gw->id());
    sc.task_slot[t] = static_cast<std::uint32_t>(sc.shards[home].tasks.size());
    sc.shards[home].tasks.push_back(t);
  }

  // Serial prepass, one pass per shard: register every audible transmitter
  // row with the shard's LinkCache slice and record its candidate columns,
  // so a gateway task walks only transmissions that could plausibly clear
  // its prune floor. The audibility gate uses exactly the candidate bound,
  // so a transmitter skipped by a slice has no candidate columns there and
  // no event is lost; ascending tx order is preserved per gateway, so every
  // event list is identical to the monolithic loop's (docs/sharding.md).
  shard_stats_ = ShardWindowStats{};
  shard_stats_.shards = shard_count;
  for (std::size_t s = 0; s < shards; ++s) {
    auto& sh = sc.shards[s];
    LinkCache& slice = caches.slice(s);
    // Candidacy is recorded per transmission as a column bitmask when the
    // slice fits in 64 gateways (one AND per (tx, gateway) pair in the
    // fan-out); larger slices fall back to materialized per-column
    // transmission lists. Both paths visit transmissions in ascending
    // index order per gateway, so event lists are identical either way.
    sh.use_mask = slice.column_count() <= 64;
    sh.row_of_tx.resize(txs.size());
    if (sh.use_mask) {
      sh.tx_mask.resize(txs.size());
    } else {
      if (sh.gw_txs.size() < slice.column_count()) {
        sh.gw_txs.resize(slice.column_count());
      }
      for (auto& list : sh.gw_txs) list.clear();
    }
    for (std::size_t i = 0; i < txs.size(); ++i) {
      const auto& tx = txs[i];
      // Out-of-spec tx power: the candidate bound does not cover it, so
      // register and consider the transmission at every gateway.
      const bool in_spec = tx.tx_power <= kMaxTxPower;
      const std::uint32_t row =
          in_spec ? slice.ensure_row_if_audible(tx.node, tx.origin, floor,
                                                kMaxTxPower)
                  : slice.ensure_row(tx.node, tx.origin);
      sh.row_of_tx[i] = row;
      if (row != LinkCache::kInvalidRow &&
          layout.shard_of(tx.origin) != static_cast<int>(s)) {
        ++shard_stats_.boundary_rows;
      }
      if (sh.use_mask) {
        sh.tx_mask[i] =
            row == LinkCache::kInvalidRow ? 0
            : in_spec ? slice.candidate_mask(row, floor, kMaxTxPower)
                      : ~std::uint64_t{0};
        continue;
      }
      if (row == LinkCache::kInvalidRow) continue;
      if (in_spec) {
        for (const std::uint32_t col :
             slice.candidate_columns(row, floor, kMaxTxPower)) {
          sh.gw_txs[col].push_back(static_cast<std::uint32_t>(i));
        }
      } else {
        for (std::uint32_t col = 0; col < slice.column_count(); ++col) {
          sh.gw_txs[col].push_back(static_cast<std::uint32_t>(i));
        }
      }
    }
    shard_stats_.resident_rows += slice.row_count();
  }
  if (sc.events.size() < tasks.size()) sc.events.resize(tasks.size());
  const double fading_sigma = channel.config().fast_fading_sigma_db.value();

  // Batched receive kernels (sim/batch.hpp): build the window's shared
  // transmission columns once; each gateway task then consumes them through
  // the batched fading / filter / scan kernels instead of per-event struct
  // walks. Either mode yields bit-identical windows
  // (tests/property/test_prop_kernels.cpp).
  const bool batched = resolve_batch_mode(options_.batch) != 0;
  if (batched) {
    sc.table.build(txs);
    if (sc.task_idx.size() < tasks.size()) {
      sc.task_idx.resize(tasks.size());
      sc.task_fade.resize(tasks.size());
      sc.task_power.resize(tasks.size());
    }
  }

  // Per-gateway pipelines are independent: each consumes its shard's
  // candidate transmission list and touches only its own gateway (the link
  // cache slices and scratch arenas are read-only / per-task here). Yields
  // land in shard-local staging; the window barrier below publishes them.
  // The invariant checker's observer protocol is sequential, so an attached
  // checker forces serial execution.
  auto& staged = sc.staged;
  staged.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    staged[s].resize(sc.shards[s].tasks.size());
  }
  const int threads = invariants_ != nullptr ? 1 : options_.threads;
  parallel_for(
      tasks.size(),
      [&](std::size_t t) {
        auto& [network, gw] = tasks[t];
        const auto& sh = sc.shards[sc.task_shard[t]];
        auto& yield = staged[sc.task_shard[t]][sc.task_slot[t]];
        yield.uplinks.clear();
        // Build this gateway's view of the air from the cached static link
        // terms; only the fast-fading draw is per-packet. The expression
        // reproduces the uncached arithmetic term for term —
        //   ((tx_power - link_path_loss) + fading) + antenna_gain
        // — so rx powers are bit-identical.
        const auto gains = caches.slice(sc.task_shard[t]).gains(sc.task_col[t]);
        auto& events = sc.events[t];
        events.clear();
        if (batched) {
          // Batched pipeline: gather the gateway's candidate transmission
          // indices (same ascending order the scalar loop visits), draw
          // their fading in one keyed batch, filter by the prune floor,
          // then run the batched radio kernels off the shared columns.
          auto& idx = sc.task_idx[t];
          auto& fade = sc.task_fade[t];
          auto& power = sc.task_power[t];
          idx.clear();
          if (sh.use_mask) {
            const std::uint64_t bit = std::uint64_t{1} << sc.task_col[t];
            for (std::size_t i = 0; i < txs.size(); ++i) {
              if (sh.tx_mask[i] & bit) {
                idx.push_back(static_cast<std::uint32_t>(i));
              }
            }
          } else {
            const auto& list = sh.gw_txs[sc.task_col[t]];
            idx.assign(list.begin(), list.end());
          }
          fade.resize(idx.size());
          power.resize(idx.size());
          const SubstreamBatch fading_stream(
              rng_,
              kFadingDomain ^ (static_cast<std::uint64_t>(gw->id()) << 40));
          batch_fading_draws(fading_stream, sc.table.packet.data(), idx.data(),
                             idx.size(), fading_sigma, fade.data());
          const std::size_t kept = batch_rx_power_filter(
              gains, sh.row_of_tx.data(), sc.table.tx_power.data(),
              fade.data(), floor, idx.data(), idx.size(), power.data());
          idx.resize(kept);
          power.resize(kept);
          yield.event_tx_index.assign(idx.begin(), idx.end());
          // The deprecated RxPostProcessor shim is the one consumer left
          // that takes an RxEvent list; capture policies read the columnar
          // CaptureContext inside the radio and need no materialization.
          if (options_.post_processor) {
            events.reserve(kept);
            for (std::size_t k = 0; k < kept; ++k) {
              events.push_back(RxEvent{txs[idx[k]], power[k]});
            }
          }
          const RxEventView view{&sc.table, idx.data(), power.data(), kept};
          gw->receive_window(view, yield.uplinks, yield.outcomes);
        } else {
          events.reserve(txs.size());
          yield.event_tx_index.clear();
          yield.event_tx_index.reserve(txs.size());
          const auto consider = [&](std::size_t i) {
            const auto& tx = txs[i];
            const LinkGain g = gains[sh.row_of_tx[i]];
            Rng link_rng = packet_link_rng(rng_, gw->id(), tx.id);
            const Db fading{link_rng.normal_once(0.0, fading_sigma)};
            const Dbm rx_power =
                tx.tx_power - g.path_loss + fading + g.antenna_gain;
            if (rx_power < floor) return;
            events.push_back(RxEvent{tx, rx_power});
            yield.event_tx_index.push_back(i);
          };
          if (sh.use_mask) {
            const std::uint64_t bit = std::uint64_t{1} << sc.task_col[t];
            for (std::size_t i = 0; i < txs.size(); ++i) {
              if (sh.tx_mask[i] & bit) consider(i);
            }
          } else {
            for (const std::uint32_t i : sh.gw_txs[sc.task_col[t]]) {
              consider(i);
            }
          }

          yield.outcomes = gw->receive_window(events, yield.uplinks);
        }
        if (options_.post_processor) {
          options_.post_processor(*gw, events, yield.outcomes);
          // Post-processors may promote outcomes to kDelivered; forward
          // newly delivered packets to the server like the radio would.
          for (std::size_t e = 0; e < yield.outcomes.size(); ++e) {
            const auto& out = yield.outcomes[e];
            if (out.disposition != RxDisposition::kDelivered) continue;
            const bool already = std::any_of(
                yield.uplinks.begin(), yield.uplinks.end(),
                [&](const UplinkRecord& r) {
                  return r.packet == out.packet && r.gateway == gw->id();
                });
            if (already) continue;
            UplinkRecord rec;
            rec.packet = out.packet;
            rec.node = out.node;
            rec.gateway = gw->id();
            rec.network = network->id();
            rec.timestamp = events[e].tx.end();
            rec.channel = events[e].tx.channel;
            rec.dr = sf_to_dr(events[e].tx.params.sf);
            rec.snr = out.snr;
            yield.uplinks.push_back(rec);
          }
        }
      },
      threads);

  // Deterministic window barrier: each shard's event queue holds a single
  // publish event at the end of the window, which hands the shard's yields
  // — boundary events included — to the global merge slots. Queues are
  // drained in ascending shard order, and every yield lands in the slot of
  // its global task index, so the exchange is order-insensitive by
  // construction and the merge below is byte-for-byte the monolithic one
  // (docs/sharding.md).
  Seconds barrier{0.0};
  for (const auto& tx : txs) barrier = std::max(barrier, tx.end());
  sc.yield_ptr.assign(tasks.size(), nullptr);
  for (std::size_t s = 0; s < shards; ++s) {
    auto& sh = sc.shards[s];
    sh.engine.reset();
    sh.engine.schedule_at(barrier, [&, s] {
      auto& mine = staged[s];
      const auto& owned = sc.shards[s].tasks;
      for (std::size_t k = 0; k < owned.size(); ++k) {
        for (const std::size_t i : mine[k].event_tx_index) {
          if (layout.shard_of(txs[i].origin) != static_cast<int>(s)) {
            ++shard_stats_.boundary_events;
          }
        }
        sc.yield_ptr[owned[k]] = &mine[k];
      }
    });
  }
  for (std::size_t s = 0; s < shards; ++s) sc.shards[s].engine.run();

  // Merge in deployment order: per own-network outcomes of each packet
  // (keyed by its index in txs) gather in gateway-ID order within the
  // packet's network, and each server ingests its gateways' uplinks in that
  // same order — exactly the serial sequence. The gather is a counted flat
  // layout (count, prefix-sum, fill) instead of one heap vector per packet.
  sc.own_count.assign(txs.size(), 0);
  {
    std::size_t t = 0;
    for (auto& network : deployment_.networks()) {
      for ([[maybe_unused]] auto& gw : network.gateways()) {
        const auto& yield = *sc.yield_ptr[t++];
        for (const std::size_t i : yield.event_tx_index) {
          if (txs[i].network == network.id()) ++sc.own_count[i];
        }
      }
    }
  }
  sc.own_offset.resize(txs.size() + 1);
  sc.own_offset[0] = 0;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    sc.own_offset[i + 1] = sc.own_offset[i] + sc.own_count[i];
  }
  // Growth-only: every slot in [0, own_offset[n]) is written by the fill
  // pass below before the classify pass reads it, so neither shrinking nor
  // zero-initializing a reused prefix buys anything.
  if (sc.own_flat.size() < sc.own_offset[txs.size()]) {
    sc.own_flat.resize(sc.own_offset[txs.size()]);
  }
  // Reuse own_count as the per-packet fill cursor (relative to the offset).
  std::fill(sc.own_count.begin(), sc.own_count.end(), 0);
  std::size_t t = 0;
  for (auto& network : deployment_.networks()) {
    std::vector<UplinkRecord>& uplinks = sc.uplinks;
    uplinks.clear();
    for ([[maybe_unused]] auto& gw : network.gateways()) {
      const auto& yield = *sc.yield_ptr[t++];
      for (std::size_t e = 0; e < yield.outcomes.size(); ++e) {
        const std::size_t i = yield.event_tx_index[e];
        if (txs[i].network != network.id()) continue;  // foreign at this GW
        sc.own_flat[sc.own_offset[i] + sc.own_count[i]++] = yield.outcomes[e];
      }
      uplinks.insert(uplinks.end(), yield.uplinks.begin(), yield.uplinks.end());
    }
    network.server().ingest(uplinks);
  }

  // Classify every offered packet against its own network's gateways.
  // Counters are flat vectors indexed by a dense network index (network
  // ids are allocated sequentially, so the common case is index == id);
  // the result maps are filled once at the end.
  sc.net_ids.clear();
  for (const auto& network : deployment_.networks()) {
    sc.net_ids.push_back(network.id());
  }
  const std::size_t deployed = sc.net_ids.size();
  sc.offered.assign(deployed, 0);
  sc.delivered.assign(deployed, 0);
  sc.served.resize(deployed);
  for (auto& nodes : sc.served) nodes.clear();
  auto index_of = [&sc](NetworkId id) -> std::size_t {
    if (id < sc.net_ids.size() && sc.net_ids[id] == id) return id;
    for (std::size_t n = 0; n < sc.net_ids.size(); ++n) {
      if (sc.net_ids[n] == id) return n;
    }
    // Traffic may reference a network id absent from the deployment; give
    // it a slot so its fates are still tallied (the map-based bookkeeping
    // this replaces created entries on the fly).
    sc.net_ids.push_back(id);
    sc.offered.push_back(0);
    sc.delivered.push_back(0);
    sc.served.emplace_back();
    return sc.net_ids.size() - 1;
  };
  result.fates.reserve(txs.size());
  for (std::size_t i = 0; i < txs.size(); ++i) {
    PacketFate fate = classify_packet(
        txs[i], std::span<const RxOutcome>(
                    sc.own_flat.data() + sc.own_offset[i],
                    sc.own_offset[i + 1] - sc.own_offset[i]));
    const std::size_t n = index_of(fate.network);
    ++sc.offered[n];
    if (fate.delivered) {
      ++sc.delivered[n];
      sc.served[n].push_back(fate.node);
    }
    result.fates.push_back(std::move(fate));
  }
  for (std::size_t n = 0; n < sc.net_ids.size(); ++n) {
    auto& nodes = sc.served[n];
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    const NetworkId id = sc.net_ids[n];
    // Deployment networks always report (zeroes included); ids outside the
    // deployment get exactly the entries their packets created, matching
    // the previous on-the-fly map behaviour.
    if (n < deployed || sc.offered[n] > 0) result.offered[id] = sc.offered[n];
    if (n < deployed || sc.delivered[n] > 0) {
      result.delivered[id] = sc.delivered[n];
    }
    if (n < deployed || !nodes.empty()) {
      result.served_nodes[id] = nodes.size();
    }
  }
  if (invariants_ != nullptr) invariants_->check_window(result);
  return result;
}

WindowResult ScenarioRunner::run_window(const std::vector<Transmission>& txs,
                                        MetricsCollector& metrics) {
  WindowResult result = run_window(txs);
  for (const auto& fate : result.fates) metrics.record(fate);
  return result;
}

}  // namespace alphawan
