// LoRaWAN 1.0.x PHYPayload codec: MHDR | FHDR | FPort | FRMPayload | MIC.
//
// The codec matters to the paper's story: the network identifiers that
// could filter foreign packets (DevAddr's NwkID bits, the MIC) live INSIDE
// the frame, so a gateway must fully decode a packet — consuming a decoder
// — before it can tell the packet belongs to another network (Sec. 3.1).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/crypto.hpp"

namespace alphawan {

enum class MType : std::uint8_t {
  kJoinRequest = 0x00,
  kJoinAccept = 0x01,
  kUnconfirmedDataUp = 0x02,
  kUnconfirmedDataDown = 0x03,
  kConfirmedDataUp = 0x04,
  kConfirmedDataDown = 0x05,
  kProprietary = 0x07,
};

inline constexpr std::uint8_t kUplinkDirection = 0x00;
inline constexpr std::uint8_t kDownlinkDirection = 0x01;
inline constexpr std::size_t kMaxFOptsLen = 15;

struct FCtrl {
  bool adr = false;
  bool adr_ack_req = false;
  bool ack = false;
  std::uint8_t fopts_len = 0;

  [[nodiscard]] std::uint8_t to_byte() const;
  [[nodiscard]] static FCtrl from_byte(std::uint8_t b);
};

struct FrameHeader {
  std::uint32_t dev_addr = 0;
  FCtrl fctrl{};
  std::uint16_t fcnt = 0;
  std::vector<std::uint8_t> fopts;  // piggybacked MAC commands
};

// A decoded (or to-be-encoded) uplink/downlink data frame.
struct DataFrame {
  MType mtype = MType::kUnconfirmedDataUp;
  FrameHeader fhdr{};
  std::optional<std::uint8_t> fport;     // absent if no payload
  std::vector<std::uint8_t> frm_payload;  // plaintext application payload

  [[nodiscard]] bool is_uplink() const {
    return mtype == MType::kUnconfirmedDataUp ||
           mtype == MType::kConfirmedDataUp;
  }
};

// DevAddr layout (LoRaWAN 1.0): 7-bit NwkID | 25-bit NwkAddr.
[[nodiscard]] constexpr std::uint8_t nwk_id(std::uint32_t dev_addr) {
  return static_cast<std::uint8_t>(dev_addr >> 25);
}
[[nodiscard]] constexpr std::uint32_t make_dev_addr(std::uint8_t nwk,
                                                    std::uint32_t nwk_addr) {
  return (static_cast<std::uint32_t>(nwk & 0x7F) << 25) |
         (nwk_addr & 0x01FFFFFF);
}

// Session keys for a device.
struct SessionKeys {
  AesKey nwk_skey{};
  AesKey app_skey{};
};

// Serialize a frame: encrypts FRMPayload with AppSKey and appends the
// NwkSKey MIC. Throws std::invalid_argument on structural errors (FOpts
// too long, FPort missing while payload present).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const DataFrame& frame,
                                                     const SessionKeys& keys);

enum class DecodeError {
  kTooShort,
  kBadMType,
  kBadLength,
  kBadMic,
};

struct DecodeResult {
  std::optional<DataFrame> frame;
  std::optional<DecodeError> error;

  [[nodiscard]] bool ok() const { return frame.has_value(); }
};

// Parse and verify a PHYPayload. MIC is checked against `keys.nwk_skey`;
// payload decrypted with `keys.app_skey`. A wrong-network frame fails with
// kBadMic — exactly the "must decode before filtering" property.
[[nodiscard]] DecodeResult decode_frame(std::span<const std::uint8_t> raw,
                                        const SessionKeys& keys);

// Parse only the header (no MIC check) — what a network server does to
// route by DevAddr before key lookup.
[[nodiscard]] std::optional<FrameHeader> peek_header(
    std::span<const std::uint8_t> raw);

}  // namespace alphawan
