// Pins the bench harness helpers the reproduction figures lean on — in
// particular that max_concurrent_users returns the USER COUNT of the
// largest passing burst, not the burst's delivered-packet count (its
// doc-comment once described the pre-parallelism return value).
#include "bench/harness.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

// One gateway with a small decoder pool and orthogonal users: a staggered
// burst delivers exactly min(N, decoders) packets, making the
// count-vs-delivered distinction observable.
struct HarnessFixture {
  Deployment deployment{Region{Meters{800.0}, Meters{800.0}}, spectrum_1m6(),
                        bench::quiet_channel()};
  Network* network = nullptr;
  PacketIdSource ids;
  Rng rng{2024};
  std::vector<EndNode*> nodes;

  explicit HarnessFixture(int decoders, int users) {
    network = &deployment.add_network("op");
    GatewayProfile profile = default_profile();
    profile.decoders = decoders;
    bench::place_clustered_gateways(deployment, *network, 1, profile);
    nodes = bench::add_orthogonal_users(deployment, *network, users, rng);
  }
};

TEST(BenchHarness, MaxConcurrentUsersHitsTheDecoderCeiling) {
  HarnessFixture f(/*decoders=*/4, /*users=*/8);
  EXPECT_EQ(bench::max_concurrent_users(f.deployment, f.nodes, f.ids), 4u);
}

TEST(BenchHarness, MaxConcurrentUsersReturnsUserCountNotDelivered) {
  HarnessFixture f(/*decoders=*/4, /*users=*/8);
  // With a 0.5 threshold the 8-user burst passes while delivering only 4
  // packets (the decoder ceiling). The metric must report the burst's user
  // count, 8 — if it reported delivered packets it would say 4.
  EXPECT_EQ(bench::max_concurrent_users(f.deployment, f.nodes, f.ids,
                                        /*threshold=*/0.5),
            8u);
}

TEST(BenchHarness, MaxConcurrentUsersIsBoundedByOfferedUsers) {
  HarnessFixture f(/*decoders=*/16, /*users=*/6);
  // Plenty of decoders: every burst passes and the metric saturates at the
  // population size.
  EXPECT_EQ(bench::max_concurrent_users(f.deployment, f.nodes, f.ids), 6u);
}

}  // namespace
}  // namespace alphawan
