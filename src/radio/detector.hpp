// Preamble detection: decides whether a chain locks onto a packet and at
// what instant. Detection only depends on the packet's SNR clearing the
// spreading factor's demodulation threshold — COTS gateways do not
// prioritize by SNR or channel crowdedness (paper Figs. 3c/3d).
#pragma once

#include <optional>

#include "phy/sensitivity.hpp"
#include "radio/transmission.hpp"

namespace alphawan {

struct Detection {
  Seconds lock_on{0.0};   // dispatch instant (end of preamble)
  Db snr{0.0};            // packet SNR at this gateway
};

// Returns the detection if the packet is lockable at the given SNR.
// Inline: runs once per candidate event in GatewayRadio::process phase 1.
[[nodiscard]] inline std::optional<Detection> detect(const Transmission& tx,
                                                     Db snr) {
  if (snr < demod_snr_threshold(tx.params.sf) + kDetectionMargin) {
    return std::nullopt;
  }
  return Detection{tx.lock_on(), snr};
}

// SNR of a received packet given its in-band power.
[[nodiscard]] constexpr Db packet_snr(Dbm rx_power, Hz bandwidth) {
  return rx_power - noise_floor_dbm(bandwidth);
}

}  // namespace alphawan
