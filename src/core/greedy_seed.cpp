#include "core/greedy_seed.hpp"

#include <algorithm>
#include <cmath>

namespace alphawan {

CpSolution greedy_seed(const CpInstance& instance,
                       const GreedyOptions& options) {
  CpSolution solution = CpSolution::empty_for(instance);
  const std::size_t num_gw = instance.gateways.size();
  const int num_ch = instance.num_channels;

  // ---- gateway channel windows -------------------------------------
  // Per-channel accumulated decoder capacity; each new gateway takes the
  // contiguous window where coverage is thinnest.
  std::vector<double> channel_capacity(static_cast<std::size_t>(num_ch), 0.0);
  for (std::size_t j = 0; j < num_gw; ++j) {
    const auto& gw = instance.gateways[j];
    int width = options.forced_channel_count.value_or(
        std::max(1, static_cast<int>(std::lround(
                        static_cast<double>(gw.decoders) / kNumDataRates))));
    width = std::clamp(width, 1,
                       std::min({gw.max_channels, gw.max_span_channels,
                                 num_ch}));
    int best_start = 0;
    double best_score = 1e300;
    for (int start = 0; start + width <= num_ch; ++start) {
      double score = 0.0;
      for (int c = start; c < start + width; ++c) {
        score += channel_capacity[static_cast<std::size_t>(c)];
      }
      if (score < best_score) {
        best_score = score;
        best_start = start;
      }
    }
    auto& chans = solution.gateway_channels[j];
    chans.clear();
    const double per_channel =
        static_cast<double>(gw.decoders) / static_cast<double>(width);
    for (int c = best_start; c < best_start + width; ++c) {
      chans.push_back(c);
      channel_capacity[static_cast<std::size_t>(c)] += per_channel;
    }
  }

  // ---- node assignment ----------------------------------------------
  std::vector<double> gw_load(num_gw, 0.0);
  std::vector<double> pair_load(
      static_cast<std::size_t>(num_ch) * kNumDataRates, 0.0);

  // Nodes with fewer reachable gateways first (they are the constrained
  // ones); ties by heavier traffic first.
  std::vector<std::size_t> order(instance.nodes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<int> reach_count(instance.nodes.size(), 0);
  for (std::size_t i = 0; i < instance.nodes.size(); ++i) {
    for (std::size_t j = 0; j < num_gw; ++j) {
      if (instance.nodes[i].min_level[j] != kUnreachable) ++reach_count[i];
    }
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (reach_count[a] != reach_count[b]) {
      return reach_count[a] < reach_count[b];
    }
    return instance.nodes[a].traffic > instance.nodes[b].traffic;
  });

  for (const std::size_t i : order) {
    const auto& node = instance.nodes[i];
    double best_score = 1e300;
    int best_gw = -1;
    int best_level = 0;
    int best_channel = 0;
    for (std::size_t j = 0; j < num_gw; ++j) {
      if (node.min_level[j] == kUnreachable) continue;
      const auto& gw = instance.gateways[j];
      const double load_frac =
          (gw_load[j] + node.traffic) / static_cast<double>(gw.decoders);
      for (int level = node.min_level[j]; level < kNumLevels; ++level) {
        const int dr = dr_value(level_to_dr(level));
        for (const auto ch : solution.gateway_channels[j]) {
          const double pl =
              pair_load[static_cast<std::size_t>(ch) * kNumDataRates + dr];
          const double cap =
              instance.pair_capacity[static_cast<std::size_t>(dr)];
          const double pair_over = std::max(0.0, pl + node.traffic - cap);
          // Prefer: no RF-pair overload, then lightly loaded gateways,
          // then short levels (low power), then lightly used pairs.
          const double score = pair_over * 100.0 +
                               std::max(0.0, load_frac - 1.0) * 50.0 +
                               load_frac + 0.02 * level + 0.001 * pl;
          if (score < best_score) {
            best_score = score;
            best_gw = static_cast<int>(j);
            best_level = level;
            best_channel = ch;
          }
        }
      }
    }
    if (best_gw < 0) {
      // Unreachable node: leave defaults (channel 0, level max for reach).
      solution.node_channel[i] = 0;
      solution.node_level[i] = kNumLevels - 1;
      continue;
    }
    solution.node_channel[i] = best_channel;
    solution.node_level[i] = best_level;
    gw_load[static_cast<std::size_t>(best_gw)] += node.traffic;
    pair_load[static_cast<std::size_t>(best_channel) * kNumDataRates +
              dr_value(level_to_dr(best_level))] += node.traffic;
  }

  repair(instance, solution);
  return solution;
}

}  // namespace alphawan
