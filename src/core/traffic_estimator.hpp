// AlphaWAN's traffic estimator (paper Sec. 4.3.3): combines per-window
// traffic series across gateways and "aggressively uses samples with high
// capacity demand" so the computed plan covers peak rather than average
// load.
#pragma once

#include <map>
#include <vector>

#include "common/types.hpp"

namespace alphawan {

struct TrafficEstimatorConfig {
  // Quantile of the per-window series used as the node's demand
  // (1.0 = peak window, the aggressive choice the paper advocates).
  double demand_quantile = 1.0;
  // Multiplier headroom for growth between planning runs.
  double safety_factor = 1.0;
  // Floor for nodes that were heard at least once (a silent-but-known
  // node still needs a slot).
  double min_traffic = 0.5;
};

class TrafficEstimator {
 public:
  explicit TrafficEstimator(TrafficEstimatorConfig config = {})
      : config_(config) {}

  // Estimated demand (packets per window) per node.
  [[nodiscard]] std::map<NodeId, double> estimate(
      const std::map<NodeId, std::vector<std::size_t>>& series) const;

  [[nodiscard]] const TrafficEstimatorConfig& config() const {
    return config_;
  }

 private:
  TrafficEstimatorConfig config_;
};

}  // namespace alphawan
