#include "sim/traffic.hpp"

#include <algorithm>

#include "phy/airtime.hpp"

namespace alphawan {

std::vector<Transmission> concurrent_burst(std::vector<EndNode*> nodes,
                                           Seconds start, PacketIdSource& ids,
                                           std::uint32_t payload_bytes) {
  std::vector<Transmission> txs;
  txs.reserve(nodes.size());
  for (EndNode* node : nodes) {
    txs.push_back(node->make_transmission(start, payload_bytes, ids.next()));
  }
  return txs;
}

std::vector<Transmission> staggered_by_start(std::vector<EndNode*> nodes,
                                             Seconds start, Seconds slot,
                                             PacketIdSource& ids,
                                             std::uint32_t payload_bytes) {
  std::vector<Transmission> txs;
  txs.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    txs.push_back(nodes[i]->make_transmission(
        start + slot * static_cast<double>(i), payload_bytes, ids.next()));
  }
  return txs;
}

std::vector<Transmission> staggered_by_lock_on(std::vector<EndNode*> nodes,
                                               Seconds start, Seconds slot,
                                               PacketIdSource& ids,
                                               std::uint32_t payload_bytes) {
  std::vector<Transmission> txs;
  txs.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    // Choose the start time so that lock-on (= start + preamble) falls at
    // the slot boundary.
    const Seconds preamble = preamble_duration(nodes[i]->tx_params());
    const Seconds tx_start =
        start + slot * static_cast<double>(i + 1) - preamble;
    txs.push_back(
        nodes[i]->make_transmission(tx_start, payload_bytes, ids.next()));
  }
  return txs;
}

std::vector<Transmission> poisson_traffic(std::vector<EndNode*> nodes,
                                          Seconds window, double rate_per_node,
                                          Rng& rng, PacketIdSource& ids,
                                          double duty_cycle_limit,
                                          std::uint32_t payload_bytes) {
  std::vector<Transmission> txs;
  for (EndNode* node : nodes) {
    Seconds t{rng.exponential(rate_per_node)};
    while (t < window) {
      const Seconds allowed = node->next_allowed_start(duty_cycle_limit);
      const Seconds start = std::max(t, allowed);
      if (start >= window) break;
      txs.push_back(node->make_transmission(start, payload_bytes, ids.next()));
      t = start + Seconds{rng.exponential(rate_per_node)};
    }
  }
  sort_by_start(txs);
  return txs;
}

std::vector<Transmission> emulated_user_traffic(
    std::vector<EndNode*> nodes, std::size_t users_per_node, Seconds window,
    double rate_per_user, Rng& rng, PacketIdSource& ids,
    NodeId virtual_id_base, std::uint32_t payload_bytes) {
  std::vector<Transmission> txs;
  NodeId next_virtual = virtual_id_base;
  for (EndNode* node : nodes) {
    for (std::size_t u = 0; u < users_per_node; ++u) {
      const NodeId virtual_id = next_virtual++;
      Seconds t{rng.exponential(rate_per_user)};
      Seconds last_end{-1e18};
      Seconds last_airtime{0.0};
      while (t < window) {
        // Per-virtual-user duty-cycle pacing (each emulated user obeys the
        // regulatory limit independently, as in the paper's methodology).
        Seconds allowed{0.0};
        if (last_end > Seconds{0.0}) {
          allowed = last_end + last_airtime / 0.01 - last_airtime;
        }
        const Seconds start = std::max(t, allowed);
        if (start >= window) break;
        Transmission tx =
            node->make_transmission(start, payload_bytes, ids.next());
        tx.node = virtual_id;
        txs.push_back(tx);
        last_end = tx.end();
        last_airtime = time_on_air(tx.params, payload_bytes);
        t = start + Seconds{rng.exponential(rate_per_user)};
      }
    }
  }
  sort_by_start(txs);
  return txs;
}

void sort_by_start(std::vector<Transmission>& txs) {
  std::sort(txs.begin(), txs.end(),
            [](const Transmission& a, const Transmission& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.id < b.id;
            });
}

}  // namespace alphawan
