// The COTS gateway radio model: front-end chains with frequency
// selectivity, SNR-based preamble detection, FCFS dispatch into a finite
// decoder pool, interference-aware decoding, and post-decode sync-word
// filtering. Reproduces the reception pipeline of paper Appendix C.
//
// The radio processes a *batch* of transmissions (one simulation window):
// internally it is event-ordered (lock-on sorted), so batch processing is
// exact as long as no packet straddles the window boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "radio/decoder_pool.hpp"
#include "radio/dispatcher.hpp"
#include "radio/profiles.hpp"
#include "radio/rx_chain.hpp"
#include "radio/transmission.hpp"

namespace alphawan {

// Extra rejection (dB) applied to a *misaligned* interferer using a
// different spreading factor: partial-band energy of an orthogonal chirp is
// further suppressed by despreading. Same-SF misaligned energy keeps some
// chirp structure and is only suppressed by the channel filter. This split
// is what makes non-orthogonal DRs on overlapping channels measurably worse
// (paper Figs. 8 and 16).
inline constexpr Db kCrossSfMisalignedRejection{12.0};

class GatewayRadio {
 public:
  GatewayRadio(GatewayProfile profile, NetworkId network,
               std::uint16_t sync_word);

  // Configure the operating channels. Throws std::invalid_argument if more
  // channels than data Rx chains or if the frequency span exceeds the
  // radio bandwidth B_j (paper's gateway radio constraints, Sec. 4.3.1).
  void configure_channels(std::vector<Channel> channels);

  [[nodiscard]] const GatewayProfile& profile() const { return profile_; }
  [[nodiscard]] const std::vector<RxChain>& chains() const { return chains_; }
  [[nodiscard]] NetworkId network() const { return network_; }
  [[nodiscard]] std::uint16_t sync_word() const { return sync_word_; }

  // Attach a correctness observer: notified of window starts, every FCFS
  // dispatch, and (via the pool) every decoder acquire/release/refusal.
  // Pass nullptr to detach.
  void set_observer(SimObserver* observer);

  // Process one window of transmissions observed at this gateway. Events
  // may arrive unsorted. Returns one outcome per input event (same order).
  [[nodiscard]] std::vector<RxOutcome> process(
      const std::vector<RxEvent>& events);

 private:
  GatewayProfile profile_;
  NetworkId network_;
  std::uint16_t sync_word_;
  std::vector<RxChain> chains_;
  DecoderPool pool_;
  SimObserver* observer_ = nullptr;
};

}  // namespace alphawan
