#include "core/cp_problem.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace alphawan {

bool CpInstance::valid() const {
  if (num_channels <= 0 || gateways.empty()) return false;
  for (const auto& node : nodes) {
    if (node.min_level.size() != gateways.size()) return false;
  }
  return pair_capacity.size() == static_cast<std::size_t>(kNumDataRates);
}

double CpInstance::total_decoders() const {
  double total = 0.0;
  for (const auto& gw : gateways) total += gw.decoders;
  return total;
}

double CpInstance::total_traffic() const {
  double total = 0.0;
  for (const auto& node : nodes) total += node.traffic;
  return total;
}

CpSolution CpSolution::empty_for(const CpInstance& instance) {
  CpSolution s;
  s.gateway_channels.resize(instance.gateways.size());
  s.node_channel.assign(instance.nodes.size(), 0);
  s.node_level.assign(instance.nodes.size(), 0);
  return s;
}

bool feasible(const CpInstance& instance, const CpSolution& solution) {
  if (solution.gateway_channels.size() != instance.gateways.size() ||
      solution.node_channel.size() != instance.nodes.size() ||
      solution.node_level.size() != instance.nodes.size()) {
    return false;
  }
  for (std::size_t j = 0; j < instance.gateways.size(); ++j) {
    const auto& chans = solution.gateway_channels[j];
    const auto& gw = instance.gateways[j];
    if (chans.empty() ||
        static_cast<int>(chans.size()) > gw.max_channels) {
      return false;
    }
    if (!std::is_sorted(chans.begin(), chans.end())) return false;
    if (std::adjacent_find(chans.begin(), chans.end()) != chans.end()) {
      return false;
    }
    if (chans.front() < 0 || chans.back() >= instance.num_channels) {
      return false;
    }
    if (chans.back() - chans.front() + 1 > gw.max_span_channels) return false;
  }
  for (std::size_t i = 0; i < instance.nodes.size(); ++i) {
    if (solution.node_channel[i] < 0 ||
        solution.node_channel[i] >= instance.num_channels) {
      return false;
    }
    if (solution.node_level[i] < 0 || solution.node_level[i] >= kNumLevels) {
      return false;
    }
  }
  return true;
}

void repair(const CpInstance& instance, CpSolution& solution) {
  solution.gateway_channels.resize(instance.gateways.size());
  solution.node_channel.resize(instance.nodes.size(), 0);
  solution.node_level.resize(instance.nodes.size(), 0);
  for (std::size_t j = 0; j < instance.gateways.size(); ++j) {
    auto& chans = solution.gateway_channels[j];
    const auto& gw = instance.gateways[j];
    for (auto& c : chans) {
      c = std::clamp(c, 0, instance.num_channels - 1);
    }
    std::sort(chans.begin(), chans.end());
    chans.erase(std::unique(chans.begin(), chans.end()), chans.end());
    if (chans.empty()) chans.push_back(0);
    // Enforce the bandwidth span: keep the densest window of allowed span.
    const int span = gw.max_span_channels;
    if (chans.back() - chans.front() + 1 > span) {
      std::size_t best_begin = 0;
      std::size_t best_count = 0;
      std::size_t begin = 0;
      for (std::size_t end = 0; end < chans.size(); ++end) {
        while (chans[end] - chans[begin] + 1 > span) ++begin;
        if (end - begin + 1 > best_count) {
          best_count = end - begin + 1;
          best_begin = begin;
        }
      }
      std::vector<std::int32_t> kept(
          chans.begin() + static_cast<std::ptrdiff_t>(best_begin),
          chans.begin() + static_cast<std::ptrdiff_t>(best_begin + best_count));
      chans = std::move(kept);
    }
    // Enforce the channel-count cap.
    if (static_cast<int>(chans.size()) > gw.max_channels) {
      chans.resize(static_cast<std::size_t>(gw.max_channels));
    }
  }
  for (std::size_t i = 0; i < instance.nodes.size(); ++i) {
    solution.node_channel[i] =
        std::clamp(solution.node_channel[i], 0, instance.num_channels - 1);
    solution.node_level[i] =
        std::clamp(solution.node_level[i], 0, kNumLevels - 1);
  }
}

CpEvaluation evaluate(const CpInstance& instance, const CpSolution& solution,
                      const CpWeights& weights) {
  assert(feasible(instance, solution));
  CpEvaluation eval;
  const std::size_t num_gw = instance.gateways.size();
  const std::size_t num_nodes = instance.nodes.size();

  // Channel masks per gateway (grid sizes used in practice are <= 64).
  std::vector<std::uint64_t> gw_mask(num_gw, 0);
  for (std::size_t j = 0; j < num_gw; ++j) {
    for (const auto c : solution.gateway_channels[j]) {
      if (c < 64) gw_mask[j] |= (1ULL << c);
    }
  }

  // Pass 1: gateway loads k_j and per-(channel, dr) pair loads.
  eval.gateway_load.assign(num_gw, 0.0);
  std::vector<double> pair_load(
      static_cast<std::size_t>(instance.num_channels) * kNumDataRates, 0.0);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    const auto& node = instance.nodes[i];
    const int ch = solution.node_channel[i];
    const int level = solution.node_level[i];
    const std::uint64_t bit = ch < 64 ? (1ULL << ch) : 0;
    for (std::size_t j = 0; j < num_gw; ++j) {
      if (node.min_level[j] <= level && (gw_mask[j] & bit)) {
        eval.gateway_load[j] += node.traffic;
      }
    }
    const int dr = dr_value(level_to_dr(level));
    pair_load[static_cast<std::size_t>(ch) * kNumDataRates + dr] +=
        node.traffic;
  }

  // Gateway overload phi_j, normalized to the expected FRACTION of this
  // gateway's packets lost to decoder exhaustion: (k_j - C_j) / k_j.
  // (The paper uses the raw overshoot k_j - C_j; normalizing makes the
  // risk commensurable with the certain losses of disconnection and RF
  // pair collisions, which matters once demand exceeds total capacity.)
  std::vector<double> phi(num_gw, 0.0);
  for (std::size_t j = 0; j < num_gw; ++j) {
    const double k = eval.gateway_load[j];
    const double c = static_cast<double>(instance.gateways[j].decoders);
    phi[j] = k > c ? (k - c) / k : 0.0;
  }

  // Pass 2: node risk Phi_i = min phi over serving gateways.
  for (std::size_t i = 0; i < num_nodes; ++i) {
    const auto& node = instance.nodes[i];
    const int ch = solution.node_channel[i];
    const int level = solution.node_level[i];
    const std::uint64_t bit = ch < 64 ? (1ULL << ch) : 0;
    double best_phi = -1.0;
    for (std::size_t j = 0; j < num_gw; ++j) {
      if (node.min_level[j] <= level && (gw_mask[j] & bit)) {
        if (best_phi < 0.0 || phi[j] < best_phi) best_phi = phi[j];
      }
    }
    if (best_phi < 0.0) {
      eval.disconnected += node.traffic;
    } else {
      eval.overload_risk += node.traffic * best_phi;
    }
    eval.level_bias += weights.level_cost * node.traffic *
                       static_cast<double>(level);
  }
  eval.objective += eval.level_bias;

  // RF channel contention pressure: load beyond a pair's capacity.
  for (int ch = 0; ch < instance.num_channels; ++ch) {
    for (int dr = 0; dr < kNumDataRates; ++dr) {
      const double load =
          pair_load[static_cast<std::size_t>(ch) * kNumDataRates + dr];
      const double cap = instance.pair_capacity[static_cast<std::size_t>(dr)];
      if (load > cap) eval.pair_overload += load - cap;
    }
  }

  eval.objective += eval.overload_risk +
                    weights.pair_overload_weight * eval.pair_overload +
                    weights.disconnect_penalty * eval.disconnected;
  return eval;
}

}  // namespace alphawan
