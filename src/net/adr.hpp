// Standard LoRaWAN Adaptive Data Rate (the TTN/ChirpStack algorithm): from
// the best SNR a node's uplinks achieved, raise the data rate as far as the
// link margin allows, then step transmit power down.
//
// This is the paper's Strategy 5 baseline: it shrinks cells (fewer gateways
// per user — Fig. 6a-c) but aggressively pushes nodes to DR5, skewing
// data-rate usage (Fig. 6d/6e) and under-using the orthogonal-SF capacity
// of each channel. AlphaWAN's Strategy 7 replaces the greedy DR choice
// with capacity-aware joint planning.
#pragma once

#include <map>
#include <optional>

#include "net/channel_plan.hpp"
#include "net/network_server.hpp"

namespace alphawan {

struct AdrConfig {
  // Safety margin subtracted from the measured SNR before stepping
  // (device margin / fading allowance). TTN default: 10 dB... the paper's
  // local deployment behaves closer to 7.
  Db installation_margin{8.0};
  Db step_db{3.0};  // one DR step is worth ~2.5-3 dB of threshold
  Dbm min_tx_power{2.0};
  Dbm max_tx_power = kDefaultTxPower;
};

// Compute the standard-ADR radio settings for one node given the best SNR
// observed across gateways at the node's *current* settings. Keeps the
// node's channel. Returns nullopt if the profile has no uplinks.
[[nodiscard]] std::optional<NodeRadioConfig> standard_adr(
    const NodeRadioConfig& current, const LinkProfile& profile,
    const AdrConfig& adr = {});

// Run standard ADR over every node of a server's link profiles.
[[nodiscard]] std::map<NodeId, NodeRadioConfig> standard_adr_all(
    const std::map<NodeId, NodeRadioConfig>& current,
    const NetworkServer& server, const AdrConfig& adr = {});

}  // namespace alphawan
