#include "sim/scenario.hpp"

#include <gtest/gtest.h>
#include <set>

#include "sim/traffic.hpp"

namespace alphawan {
namespace {

ChannelModelConfig quiet_channel() {
  // The paper's controlled capacity experiments use stable links (fixed
  // node placements, clear margins); heavy shadowing would conflate
  // decoder contention with RF capture losses.
  ChannelModelConfig cfg;
  cfg.shadowing_sigma_db = Db{0.3};
  cfg.fast_fading_sigma_db = Db{0.1};
  return cfg;
}

// A compact single-network deployment: one central gateway, nodes nearby.
struct Fixture {
  Deployment deployment{Region{Meters{800.0}, Meters{800.0}}, spectrum_1m6(), quiet_channel()};
  Network* network = nullptr;
  PacketIdSource ids;
  Rng rng{101};

  Fixture() {
    network = &deployment.add_network("op");
    auto& gw = network->add_gateway(deployment.next_gateway_id(),
                                    deployment.region().center(),
                                    default_profile());
    gw.apply_channels(GatewayChannelConfig{
        standard_plan(deployment.spectrum(), 0).channels});
  }

  EndNode& add_node(int channel, DataRate dr, Point pos) {
    NodeRadioConfig cfg;
    cfg.channel = deployment.spectrum().grid_channel(channel);
    cfg.dr = dr;
    cfg.tx_power = Dbm{14.0};
    return network->add_node(deployment.next_node_id(), pos, cfg);
  }
};

TEST(Scenario, SinglePacketDelivered) {
  Fixture f;
  auto& node = f.add_node(0, DataRate::kDR3, Point{Meters{420}, Meters{400}});
  ScenarioRunner runner(f.deployment);
  const auto result =
      runner.run_window({node.make_transmission(Seconds{0.0}, 10, f.ids.next())});
  EXPECT_EQ(result.total_delivered(), 1u);
  EXPECT_TRUE(result.fates[0].delivered);
  EXPECT_EQ(f.network->server().delivered_packets(), 1u);
}

TEST(Scenario, ConservationOfferedEqualsDeliveredPlusLost) {
  Fixture f;
  std::vector<EndNode*> nodes;
  for (int i = 0; i < 30; ++i) {
    nodes.push_back(&f.add_node(i % 8, static_cast<DataRate>(i % 6),
                                Point{Meters{400.0 + (i % 6) * 30.0},
                                      Meters{380.0 + (i / 6) * 25.0}}));
  }
  ScenarioRunner runner(f.deployment);
  MetricsCollector metrics;
  const auto txs = concurrent_burst(nodes, Seconds{0.0}, f.ids);
  const auto result = runner.run_window(txs, metrics);
  EXPECT_EQ(result.total_offered(), 30u);
  std::size_t losses = 0;
  for (auto cause :
       {LossCause::kDecoderContentionIntra, LossCause::kDecoderContentionInter,
        LossCause::kChannelContentionIntra, LossCause::kChannelContentionInter,
        LossCause::kOther}) {
    losses += static_cast<std::size_t>(
        metrics.loss_fraction(cause) * static_cast<double>(result.total_offered()) + 0.5);
  }
  EXPECT_EQ(result.total_delivered() + losses, 30u);
}

TEST(Scenario, SixteenDecoderCeilingEndToEnd) {
  // 48 orthogonal concurrent users, 1 gateway: exactly 16 delivered.
  Fixture f;
  std::vector<EndNode*> nodes;
  for (int i = 0; i < 48; ++i) {
    nodes.push_back(&f.add_node(i % 8, static_cast<DataRate>(i / 8),
                                Point{Meters{350.0 + (i % 8) * 20.0},
                                      Meters{360.0 + (i / 8) * 15.0}}));
  }
  ScenarioRunner runner(f.deployment);
  // Stagger lock-ons so dispatch order is defined.
  const auto txs = staggered_by_lock_on(nodes, Seconds{0.0}, Seconds{0.0005}, f.ids);
  const auto result = runner.run_window(txs);
  EXPECT_EQ(result.total_delivered(), 16u);
}

TEST(Scenario, OutOfRangeNodeGetsOtherLoss) {
  Fixture f;
  // Far outside the region (the deployment only covers 800 m).
  auto& node = f.add_node(0, DataRate::kDR5, Point{Meters{0}, Meters{0}});
  NodeRadioConfig cfg = node.config();
  cfg.tx_power = Dbm{2.0};  // minimal power, SF7 from a corner: unreachable
  node.apply_config(cfg);
  ScenarioRunner runner(f.deployment);
  const auto result =
      runner.run_window({node.make_transmission(Seconds{0.0}, 10, f.ids.next())});
  // Either not detected at all (kOther) or, rarely, delivered if fading
  // smiles; with 2 dBm at ~570 m and SF7 it must fail.
  EXPECT_EQ(result.total_delivered(), 0u);
  EXPECT_EQ(result.fates[0].cause, LossCause::kOther);
}

TEST(Scenario, MetricsOverloadMatchesWindowResult) {
  Fixture f;
  std::vector<EndNode*> nodes;
  for (int i = 0; i < 20; ++i) {
    nodes.push_back(&f.add_node(i % 8, static_cast<DataRate>(i % 6),
                                Point{Meters{400.0 + i * 5.0}, Meters{400.0}}));
  }
  ScenarioRunner runner(f.deployment);
  MetricsCollector metrics;
  const auto txs = concurrent_burst(nodes, Seconds{0.0}, f.ids);
  const auto result = runner.run_window(txs, metrics);
  EXPECT_EQ(metrics.total_offered(), result.total_offered());
  EXPECT_EQ(metrics.total_delivered(), result.total_delivered());
}

TEST(Scenario, RepeatedWindowsAccumulateServerState) {
  Fixture f;
  auto& node = f.add_node(2, DataRate::kDR2, Point{Meters{420}, Meters{380}});
  ScenarioRunner runner(f.deployment);
  (void)runner.run_window({node.make_transmission(Seconds{0.0}, 10, f.ids.next())});
  (void)runner.run_window({node.make_transmission(Seconds{100.0}, 10, f.ids.next())});
  EXPECT_EQ(f.network->server().delivered_packets(), 2u);
  EXPECT_EQ(f.network->server().link_profiles().at(node.id()).uplinks, 2u);
}

TEST(Scenario, DeterministicUnderSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    Fixture f;
    std::vector<EndNode*> nodes;
    for (int i = 0; i < 25; ++i) {
      nodes.push_back(&f.add_node(i % 8, static_cast<DataRate>(i % 6),
                                  Point{Meters{300.0 + i * 10.0}, Meters{500.0}}));
    }
    ScenarioRunner runner(f.deployment, seed);
    const auto txs = concurrent_burst(nodes, Seconds{0.0}, f.ids);
    return runner.run_window(txs).total_delivered();
  };
  EXPECT_EQ(run_once(5), run_once(5));
}

}  // namespace
}  // namespace alphawan
