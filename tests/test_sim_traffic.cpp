#include "sim/traffic.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "phy/band_plan.hpp"

namespace alphawan {
namespace {

std::vector<std::unique_ptr<EndNode>> make_nodes(std::size_t count) {
  std::vector<std::unique_ptr<EndNode>> nodes;
  const Spectrum s = spectrum_1m6();
  for (std::size_t i = 0; i < count; ++i) {
    NodeRadioConfig cfg;
    cfg.channel = s.grid_channel(static_cast<int>(i % 8));
    cfg.dr = static_cast<DataRate>(i % kNumDataRates);
    nodes.push_back(std::make_unique<EndNode>(
        static_cast<NodeId>(i + 1), 0, Point{}, cfg));
  }
  return nodes;
}

std::vector<EndNode*> raw(const std::vector<std::unique_ptr<EndNode>>& nodes) {
  std::vector<EndNode*> out;
  for (const auto& n : nodes) out.push_back(n.get());
  return out;
}

TEST(Traffic, ConcurrentBurstAllStartTogether) {
  auto nodes = make_nodes(10);
  PacketIdSource ids;
  const auto txs = concurrent_burst(raw(nodes), Seconds{3.0}, ids);
  ASSERT_EQ(txs.size(), 10u);
  for (const auto& tx : txs) EXPECT_DOUBLE_EQ(tx.start.value(), 3.0);
}

TEST(Traffic, PacketIdsUnique) {
  auto nodes = make_nodes(20);
  PacketIdSource ids;
  const auto a = concurrent_burst(raw(nodes), Seconds{0.0}, ids);
  const auto b = concurrent_burst(raw(nodes), Seconds{10.0}, ids);
  std::set<PacketId> seen;
  for (const auto& tx : a) seen.insert(tx.id);
  for (const auto& tx : b) seen.insert(tx.id);
  EXPECT_EQ(seen.size(), 40u);
}

TEST(Traffic, StaggeredByStartOrdersStarts) {
  auto nodes = make_nodes(12);
  PacketIdSource ids;
  const auto txs = staggered_by_start(raw(nodes), Seconds{0.0}, Seconds{0.001}, ids);
  for (std::size_t i = 0; i + 1 < txs.size(); ++i) {
    EXPECT_LT(txs[i].start, txs[i + 1].start);
  }
}

TEST(Traffic, StaggeredByLockOnOrdersLockOns) {
  // Scheme (b): even with wildly different preamble lengths (mixed SFs),
  // the lock-on instants are in node order.
  auto nodes = make_nodes(12);
  PacketIdSource ids;
  const auto txs = staggered_by_lock_on(raw(nodes), Seconds{0.0}, Seconds{0.001}, ids);
  for (std::size_t i = 0; i + 1 < txs.size(); ++i) {
    EXPECT_LT(txs[i].lock_on(), txs[i + 1].lock_on());
  }
}

TEST(Traffic, PoissonRateApproximatelyCorrect) {
  auto nodes = make_nodes(50);
  PacketIdSource ids;
  Rng rng(5);
  const Seconds window{1000.0};
  const double rate = 0.01;  // 10 packets per node expected
  const auto txs = poisson_traffic(raw(nodes), window, rate, rng, ids,
                                   /*duty=*/1.0);
  const double expected = 50 * window.value() * rate;
  EXPECT_NEAR(static_cast<double>(txs.size()), expected, expected * 0.2);
}

TEST(Traffic, PoissonRespectsWindow) {
  auto nodes = make_nodes(5);
  PacketIdSource ids;
  Rng rng(7);
  const auto txs = poisson_traffic(raw(nodes), Seconds{100.0}, 0.1, rng, ids, 1.0);
  for (const auto& tx : txs) {
    EXPECT_GE(tx.start, Seconds{0.0});
    EXPECT_LT(tx.start, Seconds{100.0});
  }
}

TEST(Traffic, PoissonHonorsDutyCycle) {
  // A node asked to transmit far faster than 1% duty allows must be paced:
  // consecutive packets of the same node keep >= 99x airtime spacing.
  auto nodes = make_nodes(1);
  PacketIdSource ids;
  Rng rng(9);
  const auto txs =
      poisson_traffic(raw(nodes), Seconds{2000.0}, 1.0, rng, ids, /*duty=*/0.01);
  ASSERT_GT(txs.size(), 1u);
  for (std::size_t i = 1; i < txs.size(); ++i) {
    const Seconds airtime = txs[i - 1].end() - txs[i - 1].start;
    EXPECT_GE(txs[i].start - txs[i - 1].end(), 99.0 * airtime - Seconds{1e-6});
  }
  // Aggregate duty cycle stays at (or below) the cap.
  Seconds busy{0.0};
  for (const auto& tx : txs) busy += tx.end() - tx.start;
  EXPECT_LE(busy.value() / 2000.0, 0.011);
}

TEST(Traffic, EmulatedUsersCarryVirtualIds) {
  auto nodes = make_nodes(3);
  PacketIdSource ids;
  Rng rng(11);
  const auto txs = emulated_user_traffic(raw(nodes), /*users_per_node=*/4,
                                         Seconds{500.0}, 0.01, rng, ids,
                                         /*virtual_base=*/1000);
  std::set<NodeId> users;
  for (const auto& tx : txs) {
    EXPECT_GE(tx.node, 1000u);
    users.insert(tx.node);
  }
  EXPECT_LE(users.size(), 12u);
  EXPECT_GT(users.size(), 6u);  // most virtual users get at least a packet
}

TEST(Traffic, EmulatedUsersShareOriginPosition) {
  auto nodes = make_nodes(1);
  PacketIdSource ids;
  Rng rng(13);
  const auto txs =
      emulated_user_traffic(raw(nodes), 5, Seconds{500.0}, 0.02, rng, ids, 1000);
  for (const auto& tx : txs) {
    EXPECT_EQ(tx.origin, nodes[0]->position());
  }
}

TEST(Traffic, SortByStartStable) {
  auto nodes = make_nodes(4);
  PacketIdSource ids;
  auto txs = concurrent_burst(raw(nodes), Seconds{1.0}, ids);
  std::reverse(txs.begin(), txs.end());
  sort_by_start(txs);
  for (std::size_t i = 0; i + 1 < txs.size(); ++i) {
    EXPECT_LT(txs[i].id, txs[i + 1].id);  // tie-break by packet id
  }
}

}  // namespace
}  // namespace alphawan
