// ScenarioRunner: the glue that runs one window of traffic through every
// gateway of every coexisting network, feeds the network servers, and
// classifies packet fates. This is the top-level simulation API used by
// benches, examples, and AlphaWAN's measurement loop.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/topology.hpp"

namespace alphawan {

class SimInvariants;

// Seed-stable per-(gateway, packet) generator for fast-fading draws. The
// stream depends only on the runner's root seed and the two ids — never on
// iteration order — so engine refactors cannot reshuffle draws and a single
// packet's reception can be replayed in isolation (check/replay.hpp).
[[nodiscard]] Rng packet_link_rng(const Rng& root, GatewayId gateway,
                                  PacketId packet);

// Optional per-gateway outcome post-processor (hook used by the CIC
// baseline to resolve collisions a stock gateway cannot). Receives the
// events the gateway saw and may rewrite outcome dispositions.
using RxPostProcessor = std::function<void(
    const Gateway& gw, const std::vector<RxEvent>& events,
    std::vector<RxOutcome>& outcomes)>;

struct WindowResult {
  // Fate of every offered packet (across all networks).
  std::vector<PacketFate> fates;
  // Delivered unique packets per network in this window.
  std::map<NetworkId, std::size_t> delivered;
  std::map<NetworkId, std::size_t> offered;
  // Distinct nodes served per network.
  std::map<NetworkId, std::size_t> served_nodes;

  [[nodiscard]] std::size_t total_delivered() const;
  [[nodiscard]] std::size_t total_offered() const;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(Deployment& deployment, std::uint64_t seed = 7);

  // Transmissions weaker than noise_floor - margin at a gateway are
  // dropped from that gateway's event list (they can neither be received
  // nor meaningfully interfere).
  void set_prune_margin(Db margin) { prune_margin_ = margin; }
  [[nodiscard]] Db prune_margin() const { return prune_margin_; }
  [[nodiscard]] std::uint64_t seed() const { return rng_.root_seed(); }
  void set_post_processor(RxPostProcessor proc) { post_ = std::move(proc); }

  // Attach the correctness harness: every window is checked for packet
  // conservation, FCFS ordering, and decoder-pool discipline. Enabled
  // automatically (fail-fast) when ALPHAWAN_CHECK=1 is exported. Pass
  // nullptr to detach.
  void set_invariants(SimInvariants* invariants) { invariants_ = invariants; }
  [[nodiscard]] SimInvariants* invariants() const { return invariants_; }

  // Run one window. Transmissions may belong to any network in the
  // deployment; every gateway observes every transmission in range
  // (including foreign ones — that is the point of the paper).
  WindowResult run_window(const std::vector<Transmission>& txs);

  // Convenience: run a window and add each fate to `metrics`.
  WindowResult run_window(const std::vector<Transmission>& txs,
                          MetricsCollector& metrics);

 private:
  Deployment& deployment_;
  Rng rng_;
  Db prune_margin_{25.0};
  RxPostProcessor post_;
  SimInvariants* invariants_ = nullptr;
};

}  // namespace alphawan
