// alphawan-lint fixture: ordering-keys family, negative cases.
// Linted as-if at src/radio/ordering_negative.cpp; must stay silent.
#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace alphawan {

struct DecoderPool {
  int capacity = 16;
};

struct Registry {
  // Stable-id keys: deterministic iteration order.
  std::map<std::uint64_t, int> held_by_pool_id;
  std::set<std::string> pool_names;
  // Pointer VALUES are fine; only pointer KEYS order the container.
  std::map<std::uint64_t, DecoderPool*> pool_by_id;

  // ALPHAWAN-LINT-ALLOW(ordering-pointer-key: lookup-only — populated and
  // queried by key, never iterated, so order cannot leak into digests)
  std::map<const DecoderPool*, int> scratch_index;
};

}  // namespace alphawan
