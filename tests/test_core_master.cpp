#include "core/master.hpp"

#include <gtest/gtest.h>

#include "backhaul/faults.hpp"
#include "phy/overlap.hpp"

namespace alphawan {
namespace {

MasterConfig config_for(int networks, double overlap = 0.4) {
  MasterConfig cfg;
  cfg.spectrum = Spectrum{Hz{923.2e6}, Hz{1.6e6}};
  cfg.desired_overlap = overlap;
  cfg.expected_networks = networks;
  return cfg;
}

TEST(Master, RegistrationAssignsStableSlots) {
  MasterNode master(config_for(3));
  (void)master.handle_register({1, "a"});
  (void)master.handle_register({2, "b"});
  (void)master.handle_register({1, "a-again"});
  EXPECT_EQ(master.registered_operators(), 2u);
  EXPECT_DOUBLE_EQ(master.offset_of(1)->value(), 0.0);
  EXPECT_GT(master.offset_of(2)->value(), 0.0);
}

TEST(Master, UnregisteredOperatorHasNoOffset) {
  MasterNode master(config_for(2));
  EXPECT_FALSE(master.offset_of(9).has_value());
}

TEST(Master, PlanRequestBeforeRegisterIsError) {
  MasterNode master(config_for(2));
  const auto reply = master.handle_plan_request({5, Hz{923.2e6}, Hz{1.6e6}, 8});
  EXPECT_NE(std::get_if<ErrorMsg>(&reply), nullptr);
}

TEST(Master, DesiredOverlapSetsOffsetStep) {
  MasterNode master(config_for(2, /*overlap=*/0.4));
  // delta = (1 - 0.4) * 125 kHz = 75 kHz.
  EXPECT_NEAR(master.plan_offset_step().value(), 75e3, 1.0);
  EXPECT_NEAR(master.effective_overlap(), 0.4, 1e-9);
}

TEST(Master, CompressesStepWhenManyNetworks) {
  // 6 networks cannot fit at 40% overlap (capacity = 200/75 = 2 plans);
  // the Master compresses to spacing/6 and reports the higher overlap.
  MasterNode master(config_for(6, 0.4));
  EXPECT_NEAR(master.plan_offset_step().value(), kChannelSpacing.value() / 6.0,
              1.0);
  EXPECT_GT(master.effective_overlap(), 0.4);
  EXPECT_LT(master.effective_overlap(), 0.95);
}

TEST(Master, AssignedPlansAreMisaligned) {
  MasterNode master(config_for(2, 0.4));
  (void)master.handle_register({1, "a"});
  (void)master.handle_register({2, "b"});
  const auto r1 = master.handle_plan_request({1, Hz{923.2e6}, Hz{1.6e6}, 8});
  const auto r2 = master.handle_plan_request({2, Hz{923.2e6}, Hz{1.6e6}, 8});
  const auto* p1 = std::get_if<PlanAssignMsg>(&r1);
  const auto* p2 = std::get_if<PlanAssignMsg>(&r2);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  ASSERT_FALSE(p1->channels.empty());
  ASSERT_FALSE(p2->channels.empty());
  // Worst-case pairwise overlap must match the advertised ratio.
  double worst = 0.0;
  for (const auto& a : p1->channels) {
    for (const auto& b : p2->channels) {
      worst = std::max(worst, overlap_ratio(a, b));
    }
  }
  EXPECT_NEAR(worst, p2->overlap_ratio, 0.02);
  // And crucially: below the front-end detection threshold, so the
  // networks are physically isolated (Strategy 8).
  EXPECT_LT(worst, kDetectOverlapThreshold);
}

TEST(Master, ChannelsStayInsideSpectrum) {
  MasterNode master(config_for(4, 0.2));
  for (NetworkId op = 1; op <= 4; ++op) {
    (void)master.handle_register({op, "op"});
  }
  for (NetworkId op = 1; op <= 4; ++op) {
    const auto reply = master.handle_plan_request({op, Hz{923.2e6}, Hz{1.6e6}, 8});
    const auto* assign = std::get_if<PlanAssignMsg>(&reply);
    ASSERT_NE(assign, nullptr);
    for (const auto& ch : assign->channels) {
      EXPECT_TRUE(master.config().spectrum.contains(ch));
    }
  }
}

TEST(Master, BaseOffsetShiftsAllPlans) {
  MasterConfig cfg = config_for(2, 0.4);
  cfg.base_offset = Hz{37.5e3};
  MasterNode master(cfg);
  (void)master.handle_register({1, "a"});
  (void)master.handle_register({2, "b"});
  EXPECT_DOUBLE_EQ(master.offset_of(1)->value(), 37.5e3);
  EXPECT_DOUBLE_EQ(master.offset_of(2)->value(),
                   37.5e3 + master.plan_offset_step().value());
  // Assigned channels sit off the standard grid by at least base_offset.
  const auto reply = master.handle_plan_request({1, Hz{923.2e6}, Hz{1.6e6}, 8});
  const auto* assign = std::get_if<PlanAssignMsg>(&reply);
  ASSERT_NE(assign, nullptr);
  const Spectrum spec{Hz{923.2e6}, Hz{1.6e6}};
  for (const auto& ch : assign->channels) {
    const int idx = spec.nearest_grid_index(ch.center);
    EXPECT_GT(abs(ch.center - spec.grid_center(idx)), Hz{30e3});
  }
}

TEST(MasterServiceTest, RoundTripOverBus) {
  Engine engine;
  LatencyModel latency{LatencyModelConfig{}, 5};
  MessageBus bus(engine, latency);
  MasterNode master(config_for(2));
  MasterService service(master, bus);

  std::optional<MasterMessage> reply;
  bus.attach("operator-1", [&](const EndpointId&,
                               std::vector<std::uint8_t> payload) {
    reply = decode_message(payload);
  });

  bus.send("operator-1", MasterService::endpoint(),
           encode_message(RegisterMsg{1, "op-1"}), /*wan=*/true);
  engine.run();
  ASSERT_TRUE(reply.has_value());
  EXPECT_NE(std::get_if<RegisterAckMsg>(&*reply), nullptr);
  // The exchange took two WAN legs (Fig. 17 component).
  EXPECT_GT(engine.now(), Seconds{0.05});
  EXPECT_LT(engine.now(), Seconds{0.3});

  reply.reset();
  bus.send("operator-1", MasterService::endpoint(),
           encode_message(PlanRequestMsg{1, Hz{923.2e6}, Hz{1.6e6}, 8}), true);
  engine.run();
  ASSERT_TRUE(reply.has_value());
  EXPECT_NE(std::get_if<PlanAssignMsg>(&*reply), nullptr);
  EXPECT_EQ(service.requests_served(), 2u);
}

TEST(Master, DuplicateRegistrationKeepsEpochStable) {
  MasterNode master(config_for(3));
  EXPECT_EQ(master.current_epoch(), 1u);
  (void)master.handle_register({1, "a"});
  const auto epoch_after_first = master.current_epoch();
  EXPECT_EQ(epoch_after_first, 2u);
  // A retried registration (lost ack) is idempotent: same slot, same epoch.
  const auto ack = master.handle_register({1, "a"});
  EXPECT_EQ(master.current_epoch(), epoch_after_first);
  EXPECT_EQ(ack.master_epoch, epoch_after_first);
  EXPECT_EQ(master.registered_operators(), 1u);
  // A NEW operator advances the epoch.
  (void)master.handle_register({2, "b"});
  EXPECT_EQ(master.current_epoch(), epoch_after_first + 1);
}

TEST(MasterServiceTest, DuplicateRegisterMsgCountedAndAnsweredIdempotently) {
  Engine engine;
  LatencyModel latency{LatencyModelConfig{}, 5};
  MessageBus bus(engine, latency);
  MasterNode master(config_for(2));
  MasterService service(master, bus);

  std::vector<RegisterAckMsg> acks;
  bus.attach("operator-1", [&](const EndpointId&,
                               std::vector<std::uint8_t> payload) {
    const auto reply = decode_message(payload);
    ASSERT_TRUE(reply.has_value());
    const auto* ack = std::get_if<RegisterAckMsg>(&*reply);
    ASSERT_NE(ack, nullptr);
    acks.push_back(*ack);
  });
  for (int i = 0; i < 3; ++i) {
    bus.send("operator-1", MasterService::endpoint(),
             encode_message(RegisterMsg{1, "op-1"}), /*wan=*/true);
  }
  engine.run();
  ASSERT_EQ(acks.size(), 3u);
  EXPECT_EQ(service.duplicate_registrations(), 2u);
  EXPECT_EQ(acks[0].master_epoch, acks[1].master_epoch);
  EXPECT_EQ(acks[1].master_epoch, acks[2].master_epoch);
  EXPECT_EQ(master.registered_operators(), 1u);
}

TEST(MasterServiceTest, PlanRequestFromUnregisteredOperatorGetsError) {
  Engine engine;
  LatencyModel latency{LatencyModelConfig{}, 5};
  MessageBus bus(engine, latency);
  MasterNode master(config_for(2));
  MasterService service(master, bus);

  std::optional<MasterMessage> reply;
  bus.attach("operator-9", [&](const EndpointId&,
                               std::vector<std::uint8_t> payload) {
    reply = decode_message(payload);
  });
  bus.send("operator-9", MasterService::endpoint(),
           encode_message(PlanRequestMsg{9, Hz{923.2e6}, Hz{1.6e6}, 8}), true);
  engine.run();
  ASSERT_TRUE(reply.has_value());
  const auto* error = std::get_if<ErrorMsg>(&*reply);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, 1);  // "operator not registered"
}

TEST(MasterServiceTest, MalformedMessageGetsError) {
  Engine engine;
  LatencyModel latency{LatencyModelConfig{}, 7};
  MessageBus bus(engine, latency);
  MasterNode master(config_for(2));
  MasterService service(master, bus);

  std::optional<MasterMessage> reply;
  bus.attach("rogue", [&](const EndpointId&, std::vector<std::uint8_t> p) {
    reply = decode_message(p);
  });
  bus.send("rogue", MasterService::endpoint(), {0xDE, 0xAD}, true);
  engine.run();
  ASSERT_TRUE(reply.has_value());
  EXPECT_NE(std::get_if<ErrorMsg>(&*reply), nullptr);
}

struct OperatorClientFixture : ::testing::Test {
  Engine engine;
  LatencyModel latency{LatencyModelConfig{}, 5};
  MessageBus bus{engine, latency};
  MasterNode master{config_for(2)};
  MasterService service{master, bus};
  Spectrum spectrum{Hz{923.2e6}, Hz{1.6e6}};
};

TEST_F(OperatorClientFixture, CleanBusConvergesToMasterPlan) {
  NetworkServer server(1);
  OperatorClient client(1, "op-1", bus, RetryPolicy{}, &server);
  client.sync(spectrum, 8);
  engine.run();
  EXPECT_TRUE(client.registered());
  ASSERT_TRUE(client.has_plan());
  EXPECT_TRUE(client.idle());
  EXPECT_EQ(client.plan_epoch(), master.current_epoch());
  EXPECT_EQ(client.plan().frequency_offset, *master.offset_of(1));
  EXPECT_EQ(client.stats().retries, 0u);
  // The accepted plan was adopted into the network server too.
  ASSERT_TRUE(server.has_plan());
  EXPECT_EQ(server.plan_epoch(), master.current_epoch());
  EXPECT_EQ(server.plan().channels, client.plan().channels);
}

TEST_F(OperatorClientFixture, StaleEpochPlanAssignIgnored) {
  OperatorClient client(1, "op-1", bus, RetryPolicy{});
  client.sync(spectrum, 8);
  engine.run();
  ASSERT_TRUE(client.has_plan());
  const auto good = client.plan();
  ASSERT_GT(good.master_epoch, 0u);

  // A delayed duplicate from an older epoch arrives after convergence: it
  // must be counted and discarded, keeping the last-known-good plan.
  PlanAssignMsg stale = good;
  stale.master_epoch = good.master_epoch - 1;
  stale.frequency_offset = Hz{999.0e3};
  bus.send("imposter", client.endpoint(), encode_message(stale), true);
  engine.run();
  EXPECT_EQ(client.stats().stale_plans_ignored, 1u);
  EXPECT_EQ(client.plan().frequency_offset, good.frequency_offset);
  EXPECT_EQ(client.plan_epoch(), good.master_epoch);
}

TEST_F(OperatorClientFixture, DuplicatePlanAssignIgnoredAfterConvergence) {
  OperatorClient client(1, "op-1", bus, RetryPolicy{});
  client.sync(spectrum, 8);
  engine.run();
  ASSERT_TRUE(client.has_plan());
  bus.send("imposter", client.endpoint(), encode_message(client.plan()), true);
  engine.run();
  EXPECT_EQ(client.stats().duplicates_ignored, 1u);
}

TEST_F(OperatorClientFixture, RetriesThroughLossyBusAndConverges) {
  FaultPlan plan;
  plan.seed = 99;
  plan.everywhere.drop_prob = 0.5;
  FaultInjector injector(bus, plan);
  OperatorClient client(1, "op-1", bus, RetryPolicy{});
  client.sync(spectrum, 8);
  engine.run();
  EXPECT_TRUE(client.registered());
  ASSERT_TRUE(client.has_plan());
  EXPECT_TRUE(client.idle());
  EXPECT_GT(client.stats().timeouts, 0u);  // the loss actually bit
  EXPECT_EQ(client.plan().frequency_offset, *master.offset_of(1));
}

TEST_F(OperatorClientFixture, BoundedAttemptsGiveUpKeepingLastKnownGood) {
  OperatorClient client(1, "op-1", bus, RetryPolicy{.max_attempts = 3});
  client.sync(spectrum, 8);
  engine.run();
  ASSERT_TRUE(client.has_plan());
  const auto good = client.plan();

  // The master goes dark; a refresh must give up after 3 attempts and
  // keep the previously accepted plan in force.
  bus.set_down(MasterService::endpoint(), true);
  client.refresh();
  engine.run();
  EXPECT_TRUE(client.idle());
  EXPECT_EQ(client.stats().gave_up, 1u);
  EXPECT_EQ(client.plan(), good);
}

}  // namespace
}  // namespace alphawan
