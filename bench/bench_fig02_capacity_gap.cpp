// Figure 2 reproduction.
// (a) Capacity gap of an operational LoRaWAN: received packets vs. number
//     of concurrent transmissions, for 1 and 3 homogeneous gateways, vs.
//     the theoretical Oracle.
// (b) Two coexisting networks in the same band: the per-network reception
//     varies with the traffic split, but the total is always 16.
#include "harness.hpp"

using namespace alphawan;
using namespace alphawan::bench;

namespace {

void figure_2a() {
  print_header(
      "Fig. 2a — capacity gap: received vs concurrent transmissions\n"
      "(1.6 MHz spectrum, oracle = 48; TTN receives at most 16; extra\n"
      "homogeneous gateways add nothing)");
  std::printf("  %-12s %-8s %-14s %-14s\n", "concurrent", "oracle",
              "gateways=1", "gateways=3");
  const std::vector<int> levels = {1, 8, 16, 24, 32, 40, 48, 56, 64};
  // Every (n, gateway-count) point is an independent world, so the sweep
  // fans out across the executor and prints in input order afterwards.
  struct Row {
    std::size_t delivered[2] = {0, 0};
  };
  const auto rows = parallel_sweep(levels, [](const int& n) {
    Row row;
    int variant = 0;
    for (int gw_count : {1, 3}) {
      Deployment deployment{Region{Meters{600}, Meters{600}}, spectrum_1m6(), quiet_channel()};
      auto& network = deployment.add_network("ttn");
      place_clustered_gateways(deployment, network, gw_count);
      Rng rng(11);
      // Beyond 48 users the 48 orthogonal (channel, SF) pairs are
      // exhausted; extra users duplicate the late pairs (as the paper's
      // schedule does), colliding with late-arriving — already decoder-
      // dropped — packets rather than with the early receptions.
      auto nodes =
          add_orthogonal_users(deployment, network, std::min(n, 48), rng);
      if (n > 48) {
        auto extra = add_orthogonal_users(deployment, network, n - 48, rng,
                                          /*pair_offset=*/32);
        nodes.insert(nodes.end(), extra.begin(), extra.end());
      }
      PacketIdSource ids;
      row.delivered[variant++] = run_burst(deployment, nodes, Seconds{0.0}, ids)
                                     .total_delivered();
    }
    return row;
  });
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const int oracle = std::min(levels[i], oracle_capacity(spectrum_1m6()));
    std::printf("  %-12d %-8d %-14zu %-14zu\n", levels[i], oracle,
                rows[i].delivered[0], rows[i].delivered[1]);
  }
  print_note("paper: both gateway counts saturate at 16 (Fig. 2a)");
}

void figure_2b() {
  print_header(
      "Fig. 2b — two coexisting networks: total received is pinned at 16");
  std::printf("  %-12s %-12s %-12s %-12s %-12s\n", "setting", "ttn_recv",
              "local_recv", "total", "dropped");
  struct Setting {
    const char* name;
    int ttn_users;
    int local_users;
  };
  const Setting settings[] = {{"setting-1", 24, 24},
                              {"setting-2", 32, 16},
                              {"setting-3", 12, 36}};
  for (const auto& s : settings) {
    Deployment deployment{Region{Meters{600}, Meters{600}}, spectrum_1m6(), quiet_channel()};
    auto& ttn = deployment.add_network("ttn");
    auto& local = deployment.add_network("local");
    place_clustered_gateways(deployment, ttn, 1);
    place_clustered_gateways(deployment, local, 1);
    Rng rng(13);
    auto ttn_nodes = add_orthogonal_users(deployment, ttn, s.ttn_users, rng, 0);
    auto local_nodes =
        add_orthogonal_users(deployment, local, s.local_users, rng,
                             s.ttn_users);
    std::vector<EndNode*> all;
    const std::size_t total_users =
        ttn_nodes.size() + local_nodes.size();
    for (std::size_t i = 0, t = 0, l = 0; i < total_users; ++i) {
      // Interleave proportionally so lock-on order mixes the networks.
      if (l * ttn_nodes.size() >= t * local_nodes.size() &&
          t < ttn_nodes.size()) {
        all.push_back(ttn_nodes[t++]);
      } else if (l < local_nodes.size()) {
        all.push_back(local_nodes[l++]);
      } else {
        all.push_back(ttn_nodes[t++]);
      }
    }
    PacketIdSource ids;
    const auto result = run_burst(deployment, all, Seconds{0.0}, ids);
    const std::size_t total = result.total_delivered();
    std::printf("  %-12s %-12zu %-12zu %-12zu %-12zu\n", s.name,
                result.delivered.at(ttn.id()), result.delivered.at(local.id()),
                total, total_users - total);
  }
  print_note("paper: received totals always add up to 16 across settings");
}

}  // namespace

int main() {
  figure_2a();
  figure_2b();
  return 0;
}
