// Name-keyed registry of coexistence schemes: every baseline is a
// (NodeMacPolicy, CapturePolicy) pair bound to a stable name, so benches,
// examples, and tests select schemes by string — via RunOptions, a CLI
// flag, or the ALPHAWAN_BASELINE environment variable — instead of
// hard-wiring per-baseline includes and calls.
//
// Built-in schemes (docs/baselines.md):
//   standard, standard-no-adr, random-cp, lmac, cic, saloha, ss5g,
//   curvinglora, alphawan
//
// Factories are deterministic: make(name, tuning) builds a fresh policy
// pair from the tuning value alone, and names() iterates an ordered map,
// so every enumeration of the registry is reproducible.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/alphawan_policy.hpp"
#include "baselines/cic.hpp"
#include "baselines/curvinglora.hpp"
#include "baselines/lmac.hpp"
#include "baselines/policy.hpp"
#include "baselines/random_cp.hpp"
#include "baselines/saloha.hpp"
#include "baselines/ss5g.hpp"

namespace alphawan {

// One instantiated scheme. Either side may be null: a null mac leaves
// provisioning and scheduling to the caller, a null capture runs the stock
// COTS pipeline.
struct BaselineScheme {
  std::string name;
  std::shared_ptr<const NodeMacPolicy> mac;
  std::shared_ptr<const CapturePolicy> capture;

  // Convenience pass-throughs treating the null sides as no-ops.
  void configure(Deployment& deployment, Network& network, Rng& rng) const {
    if (mac) mac->configure(deployment, network, rng);
  }
  [[nodiscard]] std::vector<Transmission> shape_window(
      std::vector<Transmission> txs, Rng& rng) const {
    return mac ? mac->shape_window(std::move(txs), rng) : std::move(txs);
  }
};

// Cross-scheme knobs a factory may consume. One tuning value configures a
// whole eval grid: the shared node side plus each scheme's own options.
struct BaselineTuning {
  StandardLorawanOptions node_side{};
  RandomCpOptions random_cp{};
  LmacOptions lmac{};
  CicOptions cic{};
  SlottedAlohaOptions saloha{};
  Ss5gOptions ss5g{};
  CurvingLoraOptions curvinglora{};
  AlphaWanBaselineOptions alphawan{};
};

class BaselineRegistry {
 public:
  using Factory = std::function<BaselineScheme(const BaselineTuning&)>;

  // The process-wide registry, with the built-in schemes pre-registered.
  [[nodiscard]] static BaselineRegistry& instance();

  // Register a scheme factory. Throws std::invalid_argument if `name` is
  // already taken or empty.
  void register_scheme(std::string name, Factory factory);

  // Instantiate a scheme. Throws std::invalid_argument naming the unknown
  // scheme (and listing the registered ones) on a bad name.
  [[nodiscard]] BaselineScheme make(
      std::string_view name, const BaselineTuning& tuning = {}) const;

  [[nodiscard]] bool contains(std::string_view name) const;
  // Registered names in lexicographic order (deterministic enumeration).
  [[nodiscard]] std::vector<std::string> names() const;

  // A fresh registry with only the built-ins (for tests that register
  // schemes without polluting the process-wide instance).
  BaselineRegistry();

 private:
  std::map<std::string, Factory, std::less<>> factories_;
};

// Parse a comma-separated scheme list ("lmac,cic,saloha"). Whitespace
// around entries is ignored; an empty string yields an empty list. Throws
// std::invalid_argument on a name the registry does not contain.
[[nodiscard]] std::vector<std::string> parse_baseline_list(
    std::string_view text, const BaselineRegistry& registry =
                               BaselineRegistry::instance());

// The ALPHAWAN_BASELINE selection (mirrors ALPHAWAN_SHARDS): a
// comma-separated scheme list restricts benches/examples to those schemes;
// unset or empty keeps `fallback`. Unknown names throw, listing the
// registered schemes.
[[nodiscard]] std::vector<std::string> baselines_from_env(
    std::vector<std::string> fallback);

}  // namespace alphawan
