// Discrete-event scheduling primitives: a time-ordered queue with stable
// FIFO ordering among simultaneous events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace alphawan {

class EventQueue {
 public:
  using Action = std::function<void()>;

  // Schedule an action at absolute time `when`.
  void push(Seconds when, Action action);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] Seconds next_time() const;

  // Pop and return the earliest event's action, advancing `now` out-param.
  Action pop(Seconds& now);

  void clear();

 private:
  struct Entry {
    Seconds when{0.0};
    std::uint64_t seq = 0;  // insertion order for deterministic ties
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace alphawan
