// The name-keyed baseline registry: built-in scheme set, factory errors,
// ALPHAWAN_BASELINE parsing, and the null-side convenience semantics of
// BaselineScheme (docs/baselines.md).
#include "baselines/registry.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

namespace alphawan {
namespace {

TEST(BaselineRegistry, BuiltinsRegisteredInLexicographicOrder) {
  const auto names = BaselineRegistry::instance().names();
  const std::vector<std::string> expected = {
      "alphawan", "cic",  "curvinglora", "lmac",     "random-cp",
      "saloha",   "ss5g", "standard",    "standard-no-adr"};
  EXPECT_EQ(names, expected);
  for (const auto& name : expected) {
    EXPECT_TRUE(BaselineRegistry::instance().contains(name)) << name;
  }
}

TEST(BaselineRegistry, MakeBuildsTheNamedScheme) {
  const auto& registry = BaselineRegistry::instance();
  for (const auto& name : registry.names()) {
    const BaselineScheme scheme = registry.make(name);
    EXPECT_EQ(scheme.name, name);
    // Every scheme has a MAC side; only the gateway-side collision
    // resolvers carry a capture policy.
    ASSERT_NE(scheme.mac, nullptr) << name;
    const bool capture_side =
        name == "cic" || name == "ss5g" || name == "curvinglora";
    EXPECT_EQ(scheme.capture != nullptr, capture_side) << name;
    if (scheme.capture) EXPECT_EQ(scheme.capture->name(), name);
  }
  // MAC-side policies report their registry name.
  EXPECT_EQ(registry.make("standard").mac->name(), "standard");
  EXPECT_EQ(registry.make("standard-no-adr").mac->name(), "standard-no-adr");
  EXPECT_EQ(registry.make("saloha").mac->name(), "saloha");
  EXPECT_EQ(registry.make("alphawan").mac->name(), "alphawan");
}

TEST(BaselineRegistry, UnknownNameThrowsListingRegisteredSchemes) {
  try {
    (void)BaselineRegistry::instance().make("no-such-scheme");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-scheme"), std::string::npos) << what;
    EXPECT_NE(what.find("saloha"), std::string::npos)
        << "error should list the registered schemes: " << what;
  }
}

TEST(BaselineRegistry, DuplicateEmptyAndNullRegistrationsThrow) {
  BaselineRegistry registry;  // fresh instance, built-ins pre-registered
  EXPECT_THROW(registry.register_scheme(
                   "standard",
                   [](const BaselineTuning&) {
                     return BaselineScheme{"standard", nullptr, nullptr};
                   }),
               std::invalid_argument);
  EXPECT_THROW(registry.register_scheme(
                   "", [](const BaselineTuning&) { return BaselineScheme{}; }),
               std::invalid_argument);
  EXPECT_THROW(registry.register_scheme("null-factory", nullptr),
               std::invalid_argument);
}

TEST(BaselineRegistry, CustomSchemeRegistersOnFreshInstance) {
  BaselineRegistry registry;
  registry.register_scheme("custom", [](const BaselineTuning& tuning) {
    return BaselineScheme{
        "custom", std::make_shared<StandardLorawanPolicy>(tuning.node_side),
        nullptr};
  });
  EXPECT_TRUE(registry.contains("custom"));
  EXPECT_EQ(registry.make("custom").name, "custom");
  // The process-wide instance is untouched.
  EXPECT_FALSE(BaselineRegistry::instance().contains("custom"));
}

TEST(BaselineRegistry, ParseBaselineListTrimsAndValidates) {
  const auto parsed = parse_baseline_list(" lmac , cic,\tsaloha ,");
  EXPECT_EQ(parsed,
            (std::vector<std::string>{"lmac", "cic", "saloha"}));
  EXPECT_TRUE(parse_baseline_list("").empty());
  EXPECT_TRUE(parse_baseline_list(" , ,").empty());
  EXPECT_THROW((void)parse_baseline_list("lmac,unknown-scheme"),
               std::invalid_argument);
}

TEST(BaselineRegistry, BaselinesFromEnvFallsBackAndOverrides) {
  // NOLINTBEGIN(concurrency-mt-unsafe) — single-threaded test process.
  const std::vector<std::string> fallback = {"standard"};
  unsetenv("ALPHAWAN_BASELINE");
  EXPECT_EQ(baselines_from_env(fallback), fallback);
  setenv("ALPHAWAN_BASELINE", "", /*overwrite=*/1);
  EXPECT_EQ(baselines_from_env(fallback), fallback);
  setenv("ALPHAWAN_BASELINE", "ss5g,curvinglora", 1);
  EXPECT_EQ(baselines_from_env(fallback),
            (std::vector<std::string>{"ss5g", "curvinglora"}));
  setenv("ALPHAWAN_BASELINE", "not-a-scheme", 1);
  EXPECT_THROW((void)baselines_from_env(fallback), std::invalid_argument);
  unsetenv("ALPHAWAN_BASELINE");
  // NOLINTEND(concurrency-mt-unsafe)
}

// A policy that overrides nothing inherits the documented defaults:
// configure is a no-op and shape_window is the identity.
TEST(NodeMacPolicy, BaseClassDefaultsAreIdentity) {
  struct Inert final : NodeMacPolicy {
    [[nodiscard]] std::string_view name() const override { return "inert"; }
  };
  const Inert policy;
  Deployment deployment{Region{Meters{100.0}, Meters{100.0}}, spectrum_1m6()};
  auto& network = deployment.add_network("op");
  Rng rng(1);
  policy.configure(deployment, network, rng);
  EXPECT_TRUE(network.nodes().empty());
  std::vector<Transmission> txs(2);
  txs[0].id = 4;
  txs[1].id = 5;
  const auto shaped = policy.shape_window(std::move(txs), rng);
  ASSERT_EQ(shaped.size(), 2u);
  EXPECT_EQ(shaped[0].id, 4u);
  EXPECT_EQ(shaped[1].id, 5u);
}

TEST(BaselineScheme, NullSidesAreNoOps) {
  BaselineScheme scheme{"empty", nullptr, nullptr};
  Deployment deployment{Region{Meters{100.0}, Meters{100.0}}, spectrum_1m6()};
  auto& network = deployment.add_network("op");
  Rng rng(1);
  scheme.configure(deployment, network, rng);  // must not crash
  std::vector<Transmission> txs(3);
  txs[0].id = 7;
  txs[1].id = 8;
  txs[2].id = 9;
  const auto shaped = scheme.shape_window(std::move(txs), rng);
  ASSERT_EQ(shaped.size(), 3u);
  EXPECT_EQ(shaped[0].id, 7u);
  EXPECT_EQ(shaped[2].id, 9u);
}

}  // namespace
}  // namespace alphawan
