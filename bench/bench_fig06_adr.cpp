// Figure 6 reproduction: what standard LoRaWAN ADR does to the network.
// (a-c) cell size: average number of gateways each user's packets occupy,
//       before and after ADR (paper: ~7 -> ~2).
// (d,e) data-rate distribution after ADR (paper: >90% of nodes at DR5 in
//       the local network, 53.7% in TTN): aggressive cell shrinking skews
//       the DR mix and wastes orthogonal capacity.
#include "harness.hpp"

#include "phy/sensitivity.hpp"

using namespace alphawan;
using namespace alphawan::bench;

namespace {

double mean_reachable_gateways(Deployment& deployment, Network& network) {
  double total = 0.0;
  for (auto& node : network.nodes()) {
    int reachable = 0;
    for (auto& gw : network.gateways()) {
      const Db snr = deployment.mean_snr(node, gw);
      if (snr >= demod_snr_threshold(dr_to_sf(node.config().dr))) {
        ++reachable;
      }
    }
    total += reachable;
  }
  return total / static_cast<double>(network.nodes().size());
}

std::array<double, kNumDataRates> dr_distribution(const Network& network) {
  std::array<double, kNumDataRates> dist{};
  for (const auto& node : network.nodes()) {
    dist[static_cast<std::size_t>(dr_value(node.config().dr))] += 1.0;
  }
  for (auto& d : dist) d /= static_cast<double>(network.nodes().size());
  return dist;
}

}  // namespace

int main() {
  Deployment deployment{Region{Meters{2100}, Meters{1600}}, spectrum_4m8(), urban_channel(5)};
  auto& network = deployment.add_network("local");
  Rng rng(31);
  deployment.place_gateways(network, 15, default_profile(), rng);
  deployment.place_nodes(network, 144, rng);

  // Before ADR: join defaults (DR0, 14 dBm) — widest cells.
  StandardLorawanOptions no_adr;
  no_adr.use_adr = false;
  StandardLorawanPolicy(no_adr).configure(deployment, network, rng);
  const double gw_before = mean_reachable_gateways(deployment, network);

  // After ADR.
  StandardLorawanOptions with_adr;
  with_adr.use_adr = true;
  StandardLorawanPolicy(with_adr).configure(deployment, network, rng);
  const double gw_after = mean_reachable_gateways(deployment, network);
  const auto dist = dr_distribution(network);

  print_header(
      "Fig. 6a-c — ADR shrinks cells: gateways occupied per user packet");
  print_row("gateways/user, ADR off", 7.0, gw_before);
  print_row("gateways/user, ADR on", 2.0, gw_after);

  print_header(
      "Fig. 6d/6e — data-rate distribution after standard ADR\n"
      "(paper local: >90% DR5; TTN: 53.7% DR5 — unbalanced usage)");
  for (int dr = kNumDataRates - 1; dr >= 0; --dr) {
    std::printf("  DR%-2d  %5.1f%%\n", dr,
                100.0 * dist[static_cast<std::size_t>(dr)]);
  }
  const double dr5_share = dist[5];
  print_note("");
  print_row("DR5 share (%)", 90.0, 100.0 * dr5_share);
  print_note(
      "shape check: ADR reduces per-user gateway occupancy severalfold but\n"
      "  piles most users onto the fastest data rate");
  return 0;
}
