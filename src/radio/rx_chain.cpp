#include "radio/rx_chain.hpp"

namespace alphawan {

std::optional<std::size_t> best_chain(const std::vector<RxChain>& chains,
                                      const Channel& packet_channel) {
  std::optional<std::size_t> best;
  double best_overlap = 0.0;
  for (std::size_t i = 0; i < chains.size(); ++i) {
    const double rho = overlap_ratio(packet_channel, chains[i].channel);
    if (rho >= kDetectOverlapThreshold && rho > best_overlap) {
      best_overlap = rho;
      best = i;
    }
  }
  return best;
}

}  // namespace alphawan
