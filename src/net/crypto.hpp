// LoRaWAN cryptography: AES-128 (FIPS-197 encrypt-only), AES-CMAC
// (RFC 4493), and the LoRaWAN 1.0.x payload encryption / MIC constructions
// (LoRa Alliance specification sections 4.3.3 and 4.4).
//
// Encrypt-only AES suffices: LoRaWAN payload "encryption" is a CTR-style
// XOR with an AES-encrypted keystream (so decryption reuses encryption),
// and CMAC only ever encrypts.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace alphawan {

using AesKey = std::array<std::uint8_t, 16>;
using AesBlock = std::array<std::uint8_t, 16>;

// AES-128 single-block encryption.
class Aes128 {
 public:
  explicit Aes128(const AesKey& key);
  [[nodiscard]] AesBlock encrypt(const AesBlock& plaintext) const;

 private:
  std::array<std::uint8_t, 176> round_keys_{};  // 11 round keys
};

// AES-CMAC (RFC 4493) over an arbitrary message.
[[nodiscard]] AesBlock aes_cmac(const AesKey& key,
                                std::span<const std::uint8_t> message);

// LoRaWAN frame-payload encryption (spec 4.3.3): CTR keystream
// A_i = AES(K, 0x01 | 4x00 | dir | DevAddr | FCnt | 0x00 | i).
// Symmetric: call again with the same arguments to decrypt.
[[nodiscard]] std::vector<std::uint8_t> lorawan_encrypt_payload(
    const AesKey& key, std::uint32_t dev_addr, std::uint32_t fcnt,
    std::uint8_t direction, std::span<const std::uint8_t> payload);

// LoRaWAN MIC (spec 4.4): first 4 bytes of
// CMAC(NwkSKey, B0 | msg), B0 = 0x49 | 4x00 | dir | DevAddr | FCnt | 0 | len.
[[nodiscard]] std::uint32_t lorawan_mic(const AesKey& nwk_skey,
                                        std::uint32_t dev_addr,
                                        std::uint32_t fcnt,
                                        std::uint8_t direction,
                                        std::span<const std::uint8_t> msg);

}  // namespace alphawan
