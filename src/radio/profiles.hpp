// COTS gateway hardware profiles (paper Table 4). Capacity of the radio is
// fixed by the chipset: Rx chains bound how many channels can be monitored
// and the decoder pool bounds concurrent packet reception.
#pragma once

#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace alphawan {

enum class Chipset : std::uint8_t { kSX1301, kSX1302, kSX1303, kSX1308 };

[[nodiscard]] std::string_view chipset_name(Chipset chipset);

struct GatewayProfile {
  std::string_view product;
  Chipset chipset = Chipset::kSX1302;
  Hz rx_spectrum{1.6e6};       // maximal radio bandwidth B_j
  int data_rx_chains = 8;       // multi-SF channels (P_j)
  int service_rx_chains = 1;    // LoRa service / FSK chains
  int decoders = 16;            // decoder pool size C_j

  // Theoretical concurrent capacity of the monitored spectrum: every
  // chain's channel times 6 orthogonal SFs (Table 4 "Theory Capacity").
  [[nodiscard]] int theory_capacity() const {
    return (data_rx_chains + service_rx_chains) * 6;
  }
  // Practical concurrency: the decoder pool size (Table 4 "Practical").
  [[nodiscard]] int practical_capacity() const { return decoders; }
};

// Profiles from Table 4.
[[nodiscard]] GatewayProfile profile_dragino_lps8n();      // SX1302, 16 dec
[[nodiscard]] GatewayProfile profile_rak7246g();           // SX1308, 8 dec
[[nodiscard]] GatewayProfile profile_rak7268cv2();         // SX1302, 16 dec
[[nodiscard]] GatewayProfile profile_rak7289cv2();         // SX1303x2, 32 dec
[[nodiscard]] GatewayProfile profile_kerlink_ibts();       // SX1301, 8 dec

// Default profile used across the evaluation (the paper's case-study
// gateway WisGate RAK7268CV2).
[[nodiscard]] GatewayProfile default_profile();

[[nodiscard]] const std::vector<GatewayProfile>& all_profiles();

}  // namespace alphawan
