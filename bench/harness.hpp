// Shared scaffolding for the reproduction benches: canonical deployments
// (lab-bench clustered gateways, testbed-style grids), orthogonal user
// populations, and table printing. Each bench binary regenerates one table
// or figure of the paper and prints the paper's reported values alongside
// the measured ones (see EXPERIMENTS.md).
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <map>
#include <set>
#include <numbers>
#include <string>
#include <type_traits>
#include <vector>

#include "baselines/standard_lorawan.hpp"
#include "common/parallel.hpp"
#include "core/controller.hpp"
#include "sim/scenario.hpp"
#include "sim/traffic.hpp"

#ifndef ALPHAWAN_GIT_SHA
#define ALPHAWAN_GIT_SHA "unknown"
#endif

namespace alphawan::bench {

// ---- perf telemetry -------------------------------------------------------
// Machine-readable throughput records, written as JSON so the perf
// trajectory is tracked across PRs (BENCH_PR4.json onward; see
// docs/performance.md). A bench accumulates (packets, wall seconds) for a
// named hot path and the recorder writes every record at process exit.
//
// Output path: $ALPHAWAN_BENCH_JSON if set (empty disables), else
// BENCH_PR10.json in the working directory. Nothing is written when no
// record was made, so benches that don't opt in stay side-effect free.

struct PerfRecord {
  std::string name;
  double packets = 0;
  double wall_seconds = 0;
  int threads = 1;

  [[nodiscard]] double packets_per_sec() const {
    return wall_seconds > 0 ? packets / wall_seconds : 0.0;
  }
};

class PerfRecorder {
 public:
  static PerfRecorder& instance() {
    static PerfRecorder recorder;
    return recorder;
  }

  void record(std::string name, double packets, double wall_seconds,
              int threads) {
    records_.push_back(
        PerfRecord{std::move(name), packets, wall_seconds, threads});
  }

  ~PerfRecorder() {
    if (records_.empty()) return;
    std::string path = "BENCH_PR10.json";
    if (const char* env = std::getenv("ALPHAWAN_BENCH_JSON")) {
      path = env;
    }
    if (path.empty()) return;
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) return;
    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    if (gmtime_r(&now, &tm_utc) != nullptr) {
      std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    }
    std::fprintf(out,
                 "{\n  \"schema\": \"alphawan-bench-v1\",\n"
                 "  \"git_sha\": \"%s\",\n  \"generated\": \"%s\",\n"
                 "  \"benchmarks\": [\n",
                 ALPHAWAN_GIT_SHA, stamp);
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const auto& r = records_[i];
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"packets\": %.0f, "
                   "\"wall_s\": %.6f, \"packets_per_sec\": %.1f, "
                   "\"threads\": %d}%s\n",
                   r.name.c_str(), r.packets, r.wall_seconds,
                   r.packets_per_sec(), r.threads,
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
  }

 private:
  std::vector<PerfRecord> records_;
};

// Accumulates wall time over the timed sections of one named hot path.
// Destructor-free usage: call add() around each timed region, then
// report() once (typically at the end of main).
class PerfAccumulator {
 public:
  explicit PerfAccumulator(std::string name) : name_(std::move(name)) {}

  template <typename Fn>
  auto time(std::size_t packets, Fn&& fn) {
    const auto begin = std::chrono::steady_clock::now();
    auto result = fn();
    const auto end = std::chrono::steady_clock::now();
    packets_ += static_cast<double>(packets);
    wall_seconds_ += std::chrono::duration<double>(end - begin).count();
    return result;
  }

  void report(int threads = default_thread_count()) const {
    if (packets_ <= 0) return;
    PerfRecorder::instance().record(name_, packets_, wall_seconds_, threads);
    std::printf("  [perf] %s: %.0f packets in %.3f s = %.0f packets/sec\n",
                name_.c_str(), packets_, wall_seconds_,
                packets_ > 0 && wall_seconds_ > 0 ? packets_ / wall_seconds_
                                                  : 0.0);
  }

 private:
  std::string name_;
  double packets_ = 0;
  double wall_seconds_ = 0;
};

// True when the reduced perf-smoke configuration is requested (CI runs the
// benches this way to track regressions without paying full-figure cost).
inline bool perf_smoke_mode() {
  const char* env = std::getenv("ALPHAWAN_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// Evaluate one independent data point per input concurrently and return
// the results in input order. Sweep bodies must be self-contained: build a
// fresh Deployment (and runner, id source, rng) per point — points share
// nothing, so any ALPHAWAN_THREADS value yields the same table.
template <typename Input, typename Fn>
auto parallel_sweep(const std::vector<Input>& inputs, Fn&& fn) {
  using Result = std::decay_t<std::invoke_result_t<Fn&, const Input&>>;
  std::vector<Result> out(inputs.size());
  parallel_for(inputs.size(),
               [&](std::size_t i) { out[i] = fn(inputs[i]); });
  return out;
}

// Stable links: the paper's controlled capacity experiments pick placements
// with clear margins, so decoder contention is not confounded by fading.
inline ChannelModelConfig quiet_channel() {
  ChannelModelConfig cfg;
  cfg.shadowing_sigma_db = Db{0.3};
  cfg.fast_fading_sigma_db = Db{0.1};
  return cfg;
}

// Urban channel for the at-scale studies (Figs. 4, 13, 21).
inline ChannelModelConfig urban_channel(std::uint64_t seed = 1) {
  ChannelModelConfig cfg;
  cfg.shadowing_sigma_db = Db{3.0};
  cfg.fast_fading_sigma_db = Db{0.8};
  cfg.seed = seed;
  return cfg;
}

// Colocated gateway cluster (lab-style; every gateway hears every node at
// similar power). Initial channels: standard plan 0.
inline void place_clustered_gateways(Deployment& deployment, Network& network,
                                     int count,
                                     GatewayProfile profile = default_profile()) {
  const Point center = deployment.region().center();
  const auto plan0 = standard_plan(deployment.spectrum(), 0);
  for (int i = 0; i < count; ++i) {
    const Point pos{Meters{center.x.value() + 15.0 * i - 7.5 * (count - 1)},
                    Meters{center.y.value() + 10.0 * (i % 2)}};
    auto& gw = network.add_gateway(deployment.next_gateway_id(), pos, profile);
    gw.apply_channels(GatewayChannelConfig{plan0.channels});
  }
}

// Ring of users with globally orthogonal (channel, SF) pairs starting at
// `pair_offset`; balanced received powers, no RF collisions by design.
inline std::vector<EndNode*> add_orthogonal_users(Deployment& deployment,
                                                  Network& network, int count,
                                                  Rng& rng,
                                                  int pair_offset = 0,
                                                  double radius = 140.0) {
  std::vector<EndNode*> nodes;
  const auto channels = deployment.spectrum().grid_channels();
  const Point center = deployment.region().center();
  for (int k = 0; k < count; ++k) {
    const int i = k + pair_offset;
    NodeRadioConfig cfg;
    cfg.channel = channels[static_cast<std::size_t>(i) % channels.size()];
    cfg.dr = static_cast<DataRate>(
        (i / static_cast<int>(channels.size())) % kNumDataRates);
    cfg.tx_power = Dbm{14.0};
    const double angle = 2.0 * std::numbers::pi *
                         (static_cast<double>(k) + rng.uniform(0.0, 0.5)) /
                         static_cast<double>(count);
    const Point pos{Meters{center.x.value() + radius * std::cos(angle)},
                    Meters{center.y.value() + radius * std::sin(angle)}};
    nodes.push_back(&network.add_node(deployment.next_node_id(), pos, cfg));
  }
  return nodes;
}

// Run one concurrent burst (lock-on staggered) and return delivered count
// per network.
inline WindowResult run_burst(Deployment& deployment,
                              std::vector<EndNode*> nodes, Seconds at,
                              PacketIdSource& ids, std::uint64_t seed = 7) {
  ScenarioRunner runner(deployment, seed);
  const auto txs = staggered_by_lock_on(std::move(nodes), at, Seconds{0.0004}, ids);
  return runner.run_window(txs);
}

// Max concurrent users supported: largest N <= nodes.size() such that a
// burst of the first N users is delivered at >= threshold. Returns that
// USER COUNT N — the paper's "maximum number of concurrent users" metric —
// not the burst's delivered-packet count (with threshold < 1 a passing
// burst delivers fewer than N; tests/test_bench_harness.cpp pins this).
inline std::size_t max_concurrent_users(Deployment& deployment,
                                        const std::vector<EndNode*>& nodes,
                                        PacketIdSource& ids,
                                        double threshold = 0.95) {
  std::size_t best = 0;
  Seconds at{0.0};
  for (std::size_t n = 1; n <= nodes.size(); ++n) {
    std::vector<EndNode*> subset(nodes.begin(),
                                 nodes.begin() + static_cast<std::ptrdiff_t>(n));
    const auto result = run_burst(deployment, subset, at, ids);
    at += Seconds{100.0};  // separate bursts in time
    if (static_cast<double>(result.total_delivered()) >=
        threshold * static_cast<double>(n)) {
      // The metric is the user count N, not the delivered count of the
      // burst (with threshold < 1 a passing burst may deliver fewer).
      best = n;
    }
  }
  return best;
}

// A service session: the users transmit repeatedly across `bursts`
// concurrent rounds with a re-shuffled lock-on order each round (as in a
// live network, where dispatch order rotates). Returns the set of users
// whose packets were received at least once — the paper's "service ratio"
// numerator (Fig. 15).
inline std::map<NetworkId, std::set<NodeId>> run_service_session(
    Deployment& deployment, std::vector<EndNode*> all, int bursts,
    std::uint64_t seed) {
  std::map<NetworkId, std::set<NodeId>> served;
  PacketIdSource ids;
  Rng rng(seed);
  ScenarioRunner runner(deployment, seed);
  Seconds at{0.0};
  for (int round = 0; round < bursts; ++round) {
    // Fisher-Yates shuffle of the lock-on order.
    for (std::size_t i = all.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(all[i - 1], all[j]);
    }
    const auto txs = staggered_by_lock_on(all, at, Seconds{0.0004}, ids);
    const auto result = runner.run_window(txs);
    for (const auto& fate : result.fates) {
      if (fate.delivered) served[fate.network].insert(fate.node);
    }
    at += Seconds{120.0};
  }
  return served;
}

// ---- printing -------------------------------------------------------------

inline void print_header(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void print_row(const char* label, double paper, double measured,
                      const char* unit = "") {
  std::printf("  %-44s paper=%8.1f  measured=%8.1f %s\n", label, paper,
              measured, unit);
}

inline void print_note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

}  // namespace alphawan::bench
