#include "baselines/ss5g.hpp"

#include <cmath>

#include "baselines/overlap_index.hpp"
#include "phy/airtime.hpp"
#include "phy/sensitivity.hpp"

namespace alphawan {

void Ss5gCapturePolicy::resolve(const CaptureContext& context,
                                std::vector<RxOutcome>& outcomes) const {
  const Ss5gOptions& options = options_;
  const auto& events = context.events;
  const OverlapIndex index(events);

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    auto& out = outcomes[i];
    if (out.disposition != RxDisposition::kDroppedCollision) continue;
    const auto& ev = events[i];
    const Seconds symbol =
        symbol_duration(ev.tx.params.sf, ev.tx.channel.bandwidth);
    const Seconds min_offset{options.min_offset_symbols * symbol.value()};

    // Every co-channel overlapper must be same-SF (cross-SF energy defeats
    // the symbol slicer) and offset by whole symbols; the superposition
    // count is bounded by what the algorithm can disentangle.
    int superposed = 1;  // the wanted packet itself
    bool resolvable = true;
    index.for_each_cochannel_overlap(i, [&](std::size_t j) {
      const auto& other = events[j];
      if (other.tx.params.sf != ev.tx.params.sf) {
        resolvable = false;
        return false;
      }
      const Seconds offset{
          std::abs(other.tx.start.value() - ev.tx.start.value())};
      if (offset < min_offset) {
        resolvable = false;  // near-aligned symbols cannot be sliced apart
        return false;
      }
      if (++superposed > options.max_superposed) {
        resolvable = false;
        return false;
      }
      return true;
    });
    if (!resolvable) continue;
    if (out.snr <
        demod_snr_threshold(ev.tx.params.sf) + options.snr_headroom) {
      continue;
    }
    out.disposition = ev.tx.sync_word == context.sync_word
                          ? RxDisposition::kDelivered
                          : RxDisposition::kDecodedForeign;
  }
}

}  // namespace alphawan
