// City scale: the full measurement-driven operations loop on a 2.1 x 1.6 km
// deployment — exactly the pipeline AlphaWAN adds to ChirpStack:
//
//   traffic -> gateway logs -> log parser -> traffic estimator
//           -> CP solver -> config distribution -> measurable PRR gain.
//
//   ./example_city_scale
#include <cstdint>
#include <cstdio>

#include "baselines/standard_lorawan.hpp"
#include "common/parallel.hpp"
#include "core/controller.hpp"
#include "core/log_parser.hpp"
#include "core/traffic_estimator.hpp"
#include "sim/scenario.hpp"
#include "sim/traffic.hpp"

using namespace alphawan;

namespace {

constexpr Seconds kWindow{120.0};
constexpr int kMeasurementWindows = 4;
// Every random draw in this example derives from these two seeds; change
// them here to replay a different world.
constexpr std::uint64_t kRootSeed = 42;
constexpr std::uint64_t kSweepSeedBase = 100;

double run_epoch(Deployment& deployment, Network& network,
                 ScenarioRunner& runner, PacketIdSource& ids, Rng& rng,
                 Seconds start) {
  std::vector<EndNode*> nodes;
  for (auto& n : network.nodes()) nodes.push_back(&n);
  auto txs = poisson_traffic(nodes, kWindow, 1.0 / 40.0, rng, ids, 0.01);
  for (auto& tx : txs) tx.start += start;
  MetricsCollector metrics;
  (void)runner.run_window(txs, metrics);
  return metrics.total_prr();
}

}  // namespace

int main() {
  ChannelModelConfig urban;
  urban.shadowing_sigma_db = Db{3.0};
  urban.fast_fading_sigma_db = Db{0.8};
  Deployment deployment{Region{Meters{2100}, Meters{1600}}, spectrum_4m8(), urban};
  auto& network = deployment.add_network("city-op");
  Rng rng(kRootSeed);
  deployment.place_gateways(network, 15, default_profile(), rng);
  deployment.place_nodes(network, 600, rng);

  StandardLorawanOptions options;
  options.spread_gateways_across_plans = false;  // status-quo operator
  StandardLorawanPolicy(options).configure(deployment, network, rng);

  std::printf("city-scale deployment: 15 gateways, 600 nodes, 4.8 MHz\n\n");

  // --- phase 1: operate + measure ---------------------------------------
  ScenarioRunner runner(deployment, 3);
  PacketIdSource ids;
  Seconds clock{0.0};
  double before = 0.0;
  for (int w = 0; w < kMeasurementWindows; ++w) {
    before = run_epoch(deployment, network, runner, ids, rng, clock);
    clock += kWindow + Seconds{10.0};
  }
  std::printf("status quo PRR (last window): %.3f\n", before);
  std::printf("server log: %zu receptions of %zu delivered packets\n\n",
              network.server().log().size(),
              network.server().delivered_packets());

  // --- phase 2: AlphaWAN's ChirpStack modules ----------------------------
  const auto links = parse_links(network.server().log());
  std::printf("log parser: link profiles for %zu nodes\n",
              links.nodes.size());

  const auto series = per_window_counts(network.server().log(),
                                        kWindow + Seconds{10.0},
                                        kMeasurementWindows);
  TrafficEstimator estimator;
  const auto demand = estimator.estimate(series);
  double total_demand = 0.0;
  for (const auto& [node, d] : demand) total_demand += d;
  std::printf("traffic estimator: %.0f packets/window across %zu nodes\n",
              total_demand, demand.size());

  LatencyModel latency{LatencyModelConfig{}, 7};
  AlphaWanConfig config;
  config.strategy8_spectrum_sharing = false;
  config.planner.pair_capacity = 4.0;  // packets per pair per window
  AlphaWanController controller(config, latency);
  const auto report = controller.upgrade(network, deployment.spectrum(),
                                         links, demand);
  std::printf(
      "CP solve %.2f s; %zu gateway configs pushed; reboot %.1f s; total "
      "upgrade %.1f s\n\n",
      report.cp_solve.value(), report.delta.gateways_changed,
      report.gateway_reboot.value(), report.total().value());

  // --- phase 3: operate under the new plan -------------------------------
  double after = 0.0;
  for (int w = 0; w < 2; ++w) {
    after = run_epoch(deployment, network, runner, ids, rng, clock);
    clock += kWindow + Seconds{10.0};
  }
  std::printf("PRR after AlphaWAN planning: %.3f (was %.3f)\n", after,
              before);

  // --- phase 4: status-quo scaling sweep ---------------------------------
  // Each density point is an independent world, so the sweep fans out
  // across ALPHAWAN_THREADS; the table is identical at every thread count.
  const std::vector<int> densities = {200, 400, 600, 800};
  const auto sweep_prr = parallel_map(densities.size(), [&](std::size_t i) {
    Deployment world{Region{Meters{2100}, Meters{1600}}, spectrum_4m8(), urban};
    auto& op = world.add_network("sweep-op");
    Rng world_rng(kSweepSeedBase + i);
    world.place_gateways(op, 15, default_profile(), world_rng);
    world.place_nodes(op, densities[i], world_rng);
    StandardLorawanOptions sweep_options;
    sweep_options.spread_gateways_across_plans = false;
    StandardLorawanPolicy(sweep_options).configure(world, op, world_rng);
    ScenarioRunner sweep_runner(world, 3);
    PacketIdSource sweep_ids;
    return run_epoch(world, op, sweep_runner, sweep_ids, world_rng,
                     Seconds{0.0});
  });
  std::printf("\nstatus-quo PRR vs node density (one window each):\n");
  for (std::size_t i = 0; i < densities.size(); ++i) {
    std::printf("  %4d nodes: %.3f\n", densities[i], sweep_prr[i]);
  }
  return 0;
}
