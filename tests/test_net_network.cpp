#include "net/network.hpp"

#include <gtest/gtest.h>

#include "phy/band_plan.hpp"

namespace alphawan {
namespace {

TEST(NetworkServerTest, IngestDeduplicatesAcrossGateways) {
  NetworkServer server(0);
  UplinkRecord a;
  a.packet = 1;
  a.node = 5;
  a.gateway = 1;
  a.snr = Db{-3.0};
  UplinkRecord b = a;
  b.gateway = 2;
  b.snr = Db{2.0};
  server.ingest({a, b});
  EXPECT_EQ(server.delivered_packets(), 1u);
  EXPECT_TRUE(server.was_delivered(1));
  EXPECT_FALSE(server.was_delivered(2));
  EXPECT_EQ(server.log().size(), 2u);  // raw log keeps both receptions
  EXPECT_EQ(server.per_node_delivered().at(5), 1u);
}

TEST(NetworkServerTest, LinkProfileTracksBestSnr) {
  NetworkServer server(0);
  UplinkRecord rec;
  rec.packet = 1;
  rec.node = 5;
  rec.gateway = 1;
  rec.snr = Db{-10.0};
  server.ingest({rec});
  rec.packet = 2;
  rec.snr = Db{-4.0};
  server.ingest({rec});
  const auto& profile = server.link_profiles().at(5);
  EXPECT_DOUBLE_EQ(profile.gateway_snr.at(1).value(), -4.0);
  EXPECT_DOUBLE_EQ(profile.best_snr().value(), -4.0);
  EXPECT_EQ(profile.uplinks, 2u);
}

TEST(NetworkTest, SyncWordsDistinctPerNetwork) {
  Network a(0, "public"), b(1, "op1"), c(2, "op2");
  EXPECT_EQ(a.sync_word(), kPublicSyncWord);
  EXPECT_NE(b.sync_word(), a.sync_word());
  EXPECT_NE(b.sync_word(), c.sync_word());
}

TEST(NetworkTest, AddAndFindDevices) {
  Network net(1, "test");
  net.add_gateway(10, Point{Meters{0}, Meters{0}}, default_profile());
  net.add_node(20, Point{Meters{5}, Meters{5}}, NodeRadioConfig{});
  EXPECT_NE(net.find_gateway(10), nullptr);
  EXPECT_EQ(net.find_gateway(11), nullptr);
  EXPECT_NE(net.find_node(20), nullptr);
  EXPECT_EQ(net.find_node(21), nullptr);
}

TEST(NetworkTest, ApplyConfigRoundTrips) {
  Network net(1, "test");
  const Spectrum s = spectrum_1m6();
  net.add_gateway(10, Point{Meters{0}, Meters{0}}, default_profile());
  net.add_node(20, Point{Meters{5}, Meters{5}}, NodeRadioConfig{});

  NetworkChannelConfig config;
  config.gateways[10] = GatewayChannelConfig{standard_plan(s, 0).channels};
  NodeRadioConfig node_cfg;
  node_cfg.channel = s.grid_channel(3);
  node_cfg.dr = DataRate::kDR2;
  node_cfg.tx_power = Dbm{8.0};
  config.nodes[20] = node_cfg;
  net.apply_config(config);

  const auto current = net.current_config();
  EXPECT_EQ(current.gateways.at(10).channels.size(), 8u);
  EXPECT_EQ(current.nodes.at(20), node_cfg);
  EXPECT_EQ(net.find_gateway(10)->reboot_count(), 1);
}

TEST(NetworkTest, ApplyConfigIgnoresUnknownIds) {
  Network net(1, "test");
  NetworkChannelConfig config;
  config.gateways[99] = GatewayChannelConfig{{Channel{Hz{915e6}, Hz{125e3}}}};
  config.nodes[98] = NodeRadioConfig{};
  EXPECT_NO_THROW(net.apply_config(config));
}

TEST(NetworkTest, GatewayAntennaSwap) {
  Network net(0, "t");
  auto& gw = net.add_gateway(1, Point{Meters{0}, Meters{0}}, default_profile());
  const Db omni = gw.antenna_gain_towards(Point{Meters{100}, Meters{0}});
  gw.set_antenna(std::make_unique<DirectionalAntenna>(), 0.0);
  const Db steered = gw.antenna_gain_towards(Point{Meters{100}, Meters{0}});
  const Db behind = gw.antenna_gain_towards(Point{Meters{-100}, Meters{0}});
  EXPECT_GT(steered, omni);
  EXPECT_LT(behind, steered - Db{30.0});
}

}  // namespace
}  // namespace alphawan
