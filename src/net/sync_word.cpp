#include "net/sync_word.hpp"

namespace alphawan {

std::uint16_t sync_word_for_network(NetworkId network) {
  if (network == 0) return kPublicSyncWord;
  // Spread private networks over distinct even words; step over 0x34 so no
  // private network ever aliases the public word (network 17 would
  // otherwise land exactly on it).
  auto word = static_cast<std::uint16_t>(kPrivateSyncWordBase + 2 * network);
  if (word >= kPublicSyncWord) word += 2;
  return word;
}

}  // namespace alphawan
