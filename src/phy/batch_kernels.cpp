#include "phy/batch_kernels.hpp"

namespace alphawan {

void batch_fading_draws(const SubstreamBatch& stream, const PacketId* packets,
                        const std::uint32_t* tx_index, std::size_t count,
                        double sigma, double* out) {
  for (std::size_t k = 0; k < count; ++k) {
    Rng link_rng = stream.at(packets[tx_index[k]]);
    out[k] = link_rng.normal_once(0.0, sigma);
  }
}

std::size_t batch_rx_power_filter(std::span<const LinkGain> gains,
                                  const std::uint32_t* row_of_tx,
                                  const Dbm* tx_power, const double* fading,
                                  Dbm floor, std::uint32_t* tx_index,
                                  std::size_t count, Dbm* out_power) {
  std::size_t kept = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint32_t i = tx_index[k];
    const LinkGain g = gains[row_of_tx[i]];
    const Dbm rx_power =
        tx_power[i] - g.path_loss + Db{fading[k]} + g.antenna_gain;
    if (rx_power < floor) continue;
    // kept <= k always, so the in-place compaction never clobbers an
    // unread input slot.
    tx_index[kept] = i;
    out_power[kept] = rx_power;
    ++kept;
  }
  return kept;
}

}  // namespace alphawan
