#include "baselines/policy.hpp"

namespace alphawan {

void NodeMacPolicy::configure(Deployment& /*deployment*/,
                              Network& /*network*/, Rng& /*rng*/) const {}

std::vector<Transmission> NodeMacPolicy::shape_window(
    std::vector<Transmission> txs, Rng& /*rng*/) const {
  return txs;
}

}  // namespace alphawan
