// Monotonicity properties of the radio pipeline. Both are exact (not
// statistical): fading draws are keyed by (seed, gateway, packet), so a
// modified world replays the unmodified packets bit-identically, and FCFS
// admission into a finite pool is sample-path monotone in capacity.
#include "proptest.hpp"

namespace alphawan {
namespace {

using prop::CaseParams;

std::size_t own_network_delivered(const CaseParams& p, NetworkId network) {
  auto world = prop::build_world(p);
  ScenarioRunner runner(*world.deployment, p.seed ^ 0xF00D);
  const auto result = runner.run_window(world.txs);
  const auto it = result.delivered.find(network);
  return it == result.delivered.end() ? 0 : it->second;
}

// Adding a foreign network (more interference, more decoder competition)
// can never INCREASE the first network's delivery.
std::optional<std::string> foreign_network_never_helps(const CaseParams& p) {
  CaseParams alone = p;
  alone.networks = 1;
  CaseParams coexisting = p;
  coexisting.networks = p.networks + 1;
  const std::size_t before = own_network_delivered(alone, 0);
  const std::size_t after = own_network_delivered(coexisting, 0);
  if (after > before) {
    return "own-network delivery rose from " + std::to_string(before) +
           " to " + std::to_string(after) + " when a foreign network joined";
  }
  return std::nullopt;
}

std::size_t total_delivered(const CaseParams& p) {
  auto world = prop::build_world(p);
  ScenarioRunner runner(*world.deployment, p.seed ^ 0xF00D);
  return runner.run_window(world.txs).total_delivered();
}

// Growing every gateway's decoder pool can never decrease delivery.
std::optional<std::string> more_decoders_never_hurt(const CaseParams& p) {
  CaseParams larger = p;
  larger.decoders = p.decoders + 1 + static_cast<int>(p.seed % 8);
  const std::size_t small_pool = total_delivered(p);
  const std::size_t large_pool = total_delivered(larger);
  if (large_pool < small_pool) {
    return "delivery fell from " + std::to_string(small_pool) + " to " +
           std::to_string(large_pool) + " when decoders grew from " +
           std::to_string(p.decoders) + " to " +
           std::to_string(larger.decoders);
  }
  return std::nullopt;
}

const CaseParams kLo{1, 1, 1, 1, 1, false, 0};
const CaseParams kHi{2, 2, 24, 8, 12, false, 0};

TEST(PropertyMonotonicity, ForeignNetworkNeverIncreasesOwnDelivery) {
  prop::check_property("foreign-never-helps", 60, 0xC0FFEE, kLo, kHi,
                       foreign_network_never_helps);
}

TEST(PropertyMonotonicity, MoreDecodersNeverDecreaseDelivery) {
  prop::check_property("more-decoders-never-hurt", 60, 0x5EED, kLo, kHi,
                       more_decoders_never_hurt);
}

}  // namespace
}  // namespace alphawan
