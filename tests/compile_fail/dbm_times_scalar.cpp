// Compile-fail case: scaling an absolute log-power
//
// Without CF_MISUSE this file must compile (positive control proving the
// harness sees a working translation unit). With -DCF_MISUSE it must NOT
// compile — ctest runs both variants (see CMakeLists.txt).
#include "common/units.hpp"

using namespace alphawan;

constexpr Db gain{3.0};
constexpr Db ok = gain * 2.0;  // scaling a ratio is fine
#ifdef CF_MISUSE
constexpr Dbm bad = Dbm{-80.0} * 2.0;  // doubling a dBm value is a unit error
#endif

int main() { return 0; }
