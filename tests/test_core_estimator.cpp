#include "core/traffic_estimator.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

TEST(TrafficEstimator, PeakWindowByDefault) {
  TrafficEstimator estimator;
  std::map<NodeId, std::vector<std::size_t>> series;
  series[1] = {1, 5, 2};
  const auto demand = estimator.estimate(series);
  EXPECT_DOUBLE_EQ(demand.at(1), 5.0);  // the aggressive high-demand sample
}

TEST(TrafficEstimator, QuantileConfigurable) {
  TrafficEstimatorConfig cfg;
  cfg.demand_quantile = 0.5;
  TrafficEstimator estimator(cfg);
  std::map<NodeId, std::vector<std::size_t>> series;
  series[1] = {0, 2, 10};
  EXPECT_DOUBLE_EQ(estimator.estimate(series).at(1), 2.0);
}

TEST(TrafficEstimator, SafetyFactorApplies) {
  TrafficEstimatorConfig cfg;
  cfg.safety_factor = 1.5;
  TrafficEstimator estimator(cfg);
  std::map<NodeId, std::vector<std::size_t>> series;
  series[1] = {4};
  EXPECT_DOUBLE_EQ(estimator.estimate(series).at(1), 6.0);
}

TEST(TrafficEstimator, SilentNodeGetsFloor) {
  TrafficEstimator estimator;
  std::map<NodeId, std::vector<std::size_t>> series;
  series[1] = {0, 0, 0};
  EXPECT_DOUBLE_EQ(estimator.estimate(series).at(1), 0.5);
}

TEST(TrafficEstimator, EmptySeriesSkipped) {
  TrafficEstimator estimator;
  std::map<NodeId, std::vector<std::size_t>> series;
  series[1] = {};
  EXPECT_TRUE(estimator.estimate(series).empty());
}

}  // namespace
}  // namespace alphawan
