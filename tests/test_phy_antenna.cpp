#include "phy/antenna.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace alphawan {
namespace {

TEST(Antenna, OmniIsFlat) {
  OmniAntenna omni(2.0);
  EXPECT_DOUBLE_EQ(omni.gain(0.0), 2.0);
  EXPECT_DOUBLE_EQ(omni.gain(1.5), 2.0);
  EXPECT_DOUBLE_EQ(omni.gain(-3.0), 2.0);
}

TEST(Antenna, DirectionalPeakAtBoresight) {
  DirectionalAntenna dir;
  EXPECT_DOUBLE_EQ(dir.gain(0.0), 12.0);
}

TEST(Antenna, DirectionalThreeDbAtBeamEdge) {
  DirectionalAntenna dir;
  const double half = dir.config().beamwidth_rad / 2.0;
  EXPECT_NEAR(dir.gain(half), 12.0 - 3.0, 1e-9);
}

TEST(Antenna, DirectionalAttenuationWithinPaperRange) {
  // The paper measures 14-40 dB attenuation for non-steered directions
  // (Fig. 7). Verify the pattern stays in that envelope outside the lobe.
  DirectionalAntenna dir;
  const double half = dir.config().beamwidth_rad / 2.0;
  for (double a = half + 0.05; a <= std::numbers::pi; a += 0.1) {
    const Db attenuation = 12.0 - dir.gain(a);
    EXPECT_GE(attenuation, 14.0 - 1e-6) << "angle " << a;
    EXPECT_LE(attenuation, 40.0 + 1e-6) << "angle " << a;
  }
}

TEST(Antenna, DirectionalBackLobeDeepest) {
  DirectionalAntenna dir;
  EXPECT_NEAR(dir.gain(std::numbers::pi), 12.0 - 40.0, 1e-6);
}

TEST(Antenna, DirectionalSymmetricAndPeriodic) {
  DirectionalAntenna dir;
  EXPECT_DOUBLE_EQ(dir.gain(0.7), dir.gain(-0.7));
  EXPECT_NEAR(dir.gain(0.5), dir.gain(0.5 + 2 * std::numbers::pi), 1e-9);
}

TEST(Antenna, DirectionalMonotoneRollOff) {
  DirectionalAntenna dir;
  double prev = dir.gain(0.0);
  for (double a = 0.05; a <= std::numbers::pi; a += 0.05) {
    const double g = dir.gain(a);
    EXPECT_LE(g, prev + 1e-9);
    prev = g;
  }
}

}  // namespace
}  // namespace alphawan
