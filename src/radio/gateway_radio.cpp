#include "radio/gateway_radio.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "phy/capture.hpp"
#include "phy/overlap.hpp"
#include "phy/sensitivity.hpp"
#include "radio/detector.hpp"

namespace alphawan {
namespace {

double dbm_to_lin(Dbm p) { return std::pow(10.0, p.value() / 10.0); }
Dbm lin_to_dbm(double lin) { return Dbm{10.0 * std::log10(lin)}; }

// The per-packet noise-floor conversion is a pow() on a three-valued input;
// memoize the three LoRa bandwidths (anything else still reaches
// noise_floor_dbm's hard model error).
double noise_floor_lin(Hz bandwidth) {
  static const double lin125 = dbm_to_lin(noise_floor_dbm(kLoRaBandwidth125k));
  static const double lin250 = dbm_to_lin(noise_floor_dbm(kLoRaBandwidth250k));
  static const double lin500 = dbm_to_lin(noise_floor_dbm(kLoRaBandwidth500k));
  if (bandwidth == kLoRaBandwidth125k) return lin125;
  if (bandwidth == kLoRaBandwidth250k) return lin250;
  if (bandwidth == kLoRaBandwidth500k) return lin500;
  return dbm_to_lin(noise_floor_dbm(bandwidth));
}

// Coarse frequency bucket of a channel center (interference requires
// spectral overlap, so candidates live in the same or an adjacent bucket).
std::int64_t bucket_of(Hz center) {
  return static_cast<std::int64_t>(center / kChannelSpacing);
}

}  // namespace

GatewayRadio::GatewayRadio(GatewayProfile profile, NetworkId network,
                           std::uint16_t sync_word)
    : profile_(profile),
      network_(network),
      sync_word_(sync_word),
      pool_(static_cast<std::size_t>(profile.decoders)) {}

void GatewayRadio::configure_channels(std::vector<Channel> channels) {
  if (channels.empty()) {
    throw std::invalid_argument("GatewayRadio: empty channel set");
  }
  if (static_cast<int>(channels.size()) > profile_.data_rx_chains) {
    throw std::invalid_argument(
        "GatewayRadio: more channels than Rx chains (P_j violated)");
  }
  auto [lo, hi] = std::minmax_element(
      channels.begin(), channels.end(),
      [](const Channel& a, const Channel& b) { return a.center < b.center; });
  if (hi->high() - lo->low() > profile_.rx_spectrum + Hz{1.0}) {
    throw std::invalid_argument(
        "GatewayRadio: channel span exceeds radio bandwidth (B_j violated)");
  }
  chains_.clear();
  chains_.reserve(channels.size());
  for (const auto& ch : channels) chains_.push_back(RxChain{ch});
  scratch_.chain_memo.clear();
}

void GatewayRadio::set_observer(SimObserver* observer) {
  observer_ = observer;
  pool_.set_observer(observer);
}

void GatewayRadio::set_capture_policy(const CapturePolicy* policy) {
  capture_policy_ = policy;
}

int GatewayRadio::chain_for(const Channel& packet_channel) {
  for (const auto& memo : scratch_.chain_memo) {
    if (memo.center == packet_channel.center &&
        memo.bandwidth == packet_channel.bandwidth) {
      return memo.chain;
    }
  }
  const auto chain = best_chain(chains_, packet_channel);
  const int index = chain ? static_cast<int>(*chain) : -1;
  scratch_.chain_memo.push_back(RxScratch::ChainMemo{
      packet_channel.center, packet_channel.bandwidth, index});
  return index;
}

const GatewayRadio::RxScratch::AirtimeMemo& GatewayRadio::airtime_for(
    const Transmission& tx) {
  for (const auto& memo : scratch_.airtime_memo) {
    if (memo.payload_bytes == tx.payload_bytes && memo.params == tx.params) {
      return memo;
    }
  }
  scratch_.airtime_memo.push_back(RxScratch::AirtimeMemo{
      tx.params, tx.payload_bytes, time_on_air(tx.params, tx.payload_bytes),
      preamble_duration(tx.params)});
  return scratch_.airtime_memo.back();
}

// Phase 2: FCFS dispatch into the decoder pool. The observer timestamp is
// the event's start time, read from the phase-1 scratch column (the same
// value the RxEvent held).
void GatewayRadio::dispatch_queue(std::vector<RxOutcome>& outcomes,
                                  bool already_sorted) {
  auto& sc = scratch_;
  if (!already_sorted) sort_fcfs(sc.queue);
  sc.decoding.clear();
  sc.decoding.reserve(sc.queue.size());
  for (const auto& entry : sc.queue) {
    if (observer_ != nullptr) {
      observer_->on_dispatch(sc.start_of[entry.event_index], entry.lock_on,
                             entry.packet);
    }
    const DispatchResult result = dispatch(pool_, entry);
    auto& out = outcomes[entry.event_index];
    if (!result.acquired) {
      out.disposition = RxDisposition::kDroppedDecoderBusy;
      out.foreign_among_occupants = result.foreign_among_occupants;
      continue;
    }
    sc.decoding.push_back(entry.event_index);
  }
}

// Phase 3a: group events into coarse frequency buckets (interference
// requires spectral overlap) and sort each bucket by start time, bounding
// the interferer scan to plausible overlappers. Reads only the phase-1
// scratch columns, so both pipelines share it verbatim.
//
// The bucket index is flat: sorting (bucket, event index) pairs groups
// each bucket's events in ascending index order — the same initial
// sequence the map-based code fed to the identical start-time sort, so
// the per-bucket permutation (and thus every floating-point accumulation
// order downstream) is unchanged.
void GatewayRadio::build_bucket_index(std::size_t count) {
  auto& sc = scratch_;
  sc.order.resize(count);
  sc.buckets.clear();
  if (count != 0) {
    sc.bucket_id.resize(count);
    std::int64_t lo = bucket_of(sc.channel_of[0].center);
    std::int64_t hi = lo;
    for (std::size_t i = 0; i < count; ++i) {
      const std::int64_t b = bucket_of(sc.channel_of[i].center);
      sc.bucket_id[i] = b;
      lo = std::min(lo, b);
      hi = std::max(hi, b);
    }
    const std::int64_t span = hi - lo + 1;
    if (span <= static_cast<std::int64_t>(4 * count + 64)) {
      // Stable counting sort over the compact id range: within a bucket,
      // ascending scatter order keeps indices ascending — the exact order
      // sorting (bucket, index) pairs produces — without the comparison
      // sort.
      sc.bucket_count.assign(static_cast<std::size_t>(span), 0);
      for (std::size_t i = 0; i < count; ++i) {
        ++sc.bucket_count[static_cast<std::size_t>(sc.bucket_id[i] - lo)];
      }
      std::uint32_t running = 0;
      for (auto& c : sc.bucket_count) {
        const std::uint32_t n = c;
        c = running;
        running += n;
      }
      for (std::size_t i = 0; i < count; ++i) {
        auto& cursor =
            sc.bucket_count[static_cast<std::size_t>(sc.bucket_id[i] - lo)];
        sc.order[cursor++] = static_cast<std::uint32_t>(i);
      }
      // Post-scatter, bucket_count[b] is the end of bucket b (== the start
      // of bucket b + 1 before the scatter).
      for (std::int64_t b = 0; b < span; ++b) {
        const std::uint32_t begin =
            b == 0 ? 0 : sc.bucket_count[static_cast<std::size_t>(b - 1)];
        const std::uint32_t end =
            sc.bucket_count[static_cast<std::size_t>(b)];
        if (end > begin) {
          sc.buckets.push_back(
              RxScratch::Bucket{lo + b, begin, end, Seconds{0.0}});
        }
      }
    } else {
      // Pathological center spread (sparse ids): fall back to the pair
      // sort, which produces the identical grouping.
      sc.keyed.clear();
      sc.keyed.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        sc.keyed.emplace_back(sc.bucket_id[i], static_cast<std::uint32_t>(i));
      }
      std::sort(sc.keyed.begin(), sc.keyed.end());
      for (std::uint32_t pos = 0; pos < sc.keyed.size(); ++pos) {
        const auto [bucket, index] = sc.keyed[pos];
        if (sc.buckets.empty() || sc.buckets.back().id != bucket) {
          sc.buckets.push_back(
              RxScratch::Bucket{bucket, pos, pos, Seconds{0.0}});
        }
        sc.order[pos] = index;
        sc.buckets.back().end = pos + 1;
      }
    }
  }
  for (auto& b : sc.buckets) {
    const auto begin = sc.order.begin() + b.begin;
    const auto end = sc.order.begin() + b.end;
    // Sort each bucket's group by start time — through a contiguous
    // (start, index) staging array, because comparing via the wide event
    // records costs a scattered load per comparison. A start-only
    // comparator sees exactly the comparison outcomes the index comparator
    // would, so the resulting index permutation is identical to sorting
    // the indices directly (bit-identity of every downstream accumulation
    // order).
    auto& staged = sc.start_idx;
    staged.clear();
    bool sorted = true;
    bool strictly = true;
    for (auto it = begin; it != end; ++it) {
      const Seconds start = sc.start_of[*it];
      if (!staged.empty()) {
        if (start < staged.back().first) sorted = strictly = false;
        if (!(staged.back().first < start)) strictly = false;
      }
      staged.emplace_back(start, *it);
    }
    // Skip the sort when it provably cannot move anything: any comparison
    // sort is the identity on strictly sorted input, and libstdc++'s
    // std::sort uses pure insertion sort below its 16-element threshold,
    // which never reorders a sorted-with-ties sequence.
    const bool identity =
        strictly || (sorted && staged.size() <= 16);
    if (!identity) {
      std::sort(staged.begin(), staged.end(),
                [](const std::pair<Seconds, std::uint32_t>& a,
                   const std::pair<Seconds, std::uint32_t>& c) {
                  return a.first < c.first;
                });
      auto out = begin;
      for (const auto& [start, index] : staged) *out++ = index;
    }
    Seconds longest{0.0};
    b.channel = sc.channel_of[*begin];
    b.uniform = true;
    for (auto it = begin; it != end; ++it) {
      longest = std::max(longest, sc.end_of[*it] - sc.start_of[*it]);
      const Channel& ch = sc.channel_of[*it];
      if (!(ch.center == b.channel.center) ||
          !(ch.bandwidth == b.channel.bandwidth)) {
        b.uniform = false;
      }
    }
    b.max_duration = longest;
  }
}

// Batched phase-3 prep: per uniform bucket, a stable counting sort by SF
// (preserving the start order within each SF, so every same-SF subsequence
// keeps its scalar accumulation order) plus the per-(bucket, chain)
// overlap/coupling memo — overlap_ratio and coupling_db are pure functions
// of the two channels, so memoized values are bit-identical to the ones the
// scalar scan recomputes per decoded event.
void GatewayRadio::build_sf_groups_and_memos(std::size_t count) {
  auto& sc = scratch_;
  sc.order_sf.resize(count);
  sc.pos_sf.resize(count);
  sc.sf_groups.clear();
  sc.bucket_cursor.assign(sc.buckets.size(), 0);
  const std::size_t n_chains = chains_.size();
  sc.bucket_chain.resize(sc.buckets.size() * n_chains);
  for (std::size_t bpos = 0; bpos < sc.buckets.size(); ++bpos) {
    auto& b = sc.buckets[bpos];
    b.groups_begin = static_cast<std::uint32_t>(sc.sf_groups.size());
    b.groups_end = b.groups_begin;
    if (!b.uniform) continue;  // mixed buckets take the scalar kernel
    for (std::size_t c = 0; c < n_chains; ++c) {
      auto& memo = sc.bucket_chain[bpos * n_chains + c];
      memo.rho = overlap_ratio(b.channel, chains_[c].channel);
      memo.coupling =
          (memo.rho > 0.0 && memo.rho < kDetectOverlapThreshold)
              ? coupling_db(b.channel, chains_[c].channel)
              : Db{-400.0};
    }
    std::uint32_t counts[6] = {0, 0, 0, 0, 0, 0};
    Dbm max_power[6] = {Dbm{-400.0}, Dbm{-400.0}, Dbm{-400.0},
                        Dbm{-400.0}, Dbm{-400.0}, Dbm{-400.0}};
    for (std::uint32_t k = b.begin; k < b.end; ++k) {
      const std::uint32_t j = sc.order[k];
      const int s = sf_index(sc.sf_of[j]);
      ++counts[s];
      if (sc.power_of[j] > max_power[s]) max_power[s] = sc.power_of[j];
    }
    std::uint32_t cursor[6];
    std::uint32_t running = b.begin;
    for (int s = 0; s < 6; ++s) {
      cursor[s] = running;
      if (counts[s] > 0) {
        sc.sf_groups.push_back(SfGroup{running, running + counts[s],
                                       sf_from_index(s), max_power[s]});
      }
      running += counts[s];
    }
    for (std::uint32_t k = b.begin; k < b.end; ++k) {
      const std::uint32_t j = sc.order[k];
      auto& cur = cursor[sf_index(sc.sf_of[j])];
      sc.order_sf[cur] = j;
      sc.pos_sf[cur] = k - b.begin;  // bucket rank, for last-collider order
      ++cur;
    }
    b.groups_end = static_cast<std::uint32_t>(sc.sf_groups.size());
  }
  // Window-start cursors begin at each group's first element; the scan
  // loop advances them monotonically (decoded events visit in ascending
  // start order).
  sc.group_cursor.resize(sc.sf_groups.size());
  for (std::size_t g = 0; g < sc.sf_groups.size(); ++g) {
    sc.group_cursor[g] = sc.sf_groups[g].begin;
  }
}

// Phase 4 (optional): pluggable capture resolution. The policy may
// rescue packets the stock demodulator lost to collisions, but the
// decoder budget is binding: only outcomes whose packet already held a
// decoder may change, and they must stay decoder-consuming — a policy
// cannot un-busy kDroppedDecoderBusy or decode an undetected packet.
void GatewayRadio::apply_capture_policy(std::size_t count,
                                        std::vector<RxOutcome>& outcomes) {
  auto& sc = scratch_;
  sc.pre_policy.resize(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    sc.pre_policy[i] = outcomes[i].disposition;
  }
  capture_policy_->resolve(
      CaptureContext{count, sc.start_of.data(), sc.end_of.data(),
                     sc.channel_of.data(), sc.sf_of.data(), sc.node_of.data(),
                     sc.sync_of.data(), sync_word_, profile_.decoders},
      outcomes);
  if (outcomes.size() != count) {
    throw std::logic_error(
        "CapturePolicy: outcome count changed during resolve");
  }
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const RxDisposition before = sc.pre_policy[i];
    const RxDisposition after = outcomes[i].disposition;
    if (after == before) continue;
    if (!consumed_decoder(before) || !consumed_decoder(after)) {
      throw std::logic_error(
          "CapturePolicy violated the decoder budget: rewrote an outcome "
          "that did not hold a decoder (or released one it held)");
    }
  }
}

std::vector<RxOutcome> GatewayRadio::process(
    const std::vector<RxEvent>& events) {
  std::vector<RxOutcome> outcomes(events.size());
  pool_.reset();
  if (observer_ != nullptr) observer_->on_radio_window_begin();
  auto& sc = scratch_;

  // Phase 1: front-end + detection per event. Also fills the per-event
  // caches phase 3 leans on: tx.end() (a full airtime recomputation) and
  // the linear rx power (a pow), each otherwise paid once per *candidate
  // pair* in the interferer scan.
  sc.queue.clear();
  sc.queue.reserve(events.size());
  sc.chain_of.assign(events.size(), -1);
  sc.end_of.resize(events.size());
  sc.lin_power.resize(events.size());
  sc.start_of.resize(events.size());
  sc.channel_of.resize(events.size());
  sc.power_of.resize(events.size());
  sc.sf_of.resize(events.size());
  sc.net_of.resize(events.size());
  const bool policy_columns = capture_policy_ != nullptr;
  if (policy_columns) {
    sc.node_of.resize(events.size());
    sc.sync_of.resize(events.size());
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& ev = events[i];
    auto& out = outcomes[i];
    if (policy_columns) {
      sc.node_of[i] = ev.tx.node;
      sc.sync_of[i] = ev.tx.sync_word;
    }
    // airtime_for memoizes the airtime formula per radio setting; the sums
    // below are term-for-term the ones tx.end() / tx.lock_on() compute.
    const auto& airtime = airtime_for(ev.tx);
    sc.end_of[i] = ev.tx.start + airtime.airtime;
    sc.lin_power[i] = dbm_to_lin(ev.rx_power);
    sc.start_of[i] = ev.tx.start;
    sc.channel_of[i] = ev.tx.channel;
    sc.power_of[i] = ev.rx_power;
    sc.sf_of[i] = ev.tx.params.sf;
    sc.net_of[i] = ev.tx.network;
    out.packet = ev.tx.id;
    out.node = ev.tx.node;
    out.network = ev.tx.network;
    const int chain = chain_for(ev.tx.channel);
    if (chain < 0) {
      out.disposition = RxDisposition::kRejectedFrontEnd;
      continue;
    }
    sc.chain_of[i] = chain;
    out.chain_channel = chain;
    out.snr = packet_snr(ev.rx_power, ev.tx.channel.bandwidth);
    // Inline detect(): the lock-on instant comes from the memoized
    // preamble duration instead of a fresh preamble_duration call.
    if (out.snr < demod_snr_threshold(ev.tx.params.sf) + kDetectionMargin) {
      out.disposition = RxDisposition::kNotDetected;
      continue;
    }
    sc.queue.push_back(DispatchEntry{i, ev.tx.start + airtime.preamble,
                                     sc.end_of[i], ev.tx.network, ev.tx.id});
  }

  // Phase 2: FCFS dispatch into the decoder pool.
  dispatch_queue(outcomes, /*already_sorted=*/false);

  // Phase 3: decode each packet that holds a decoder, accounting for
  // interference from *all* transmissions in the air (including ones the
  // front-end rejected or that were never detected — their RF energy is
  // still present).
  build_bucket_index(events.size());

  const RxScanSoA soa{sc.start_of.data(), sc.end_of.data(),
                      sc.lin_power.data(), sc.channel_of.data(),
                      sc.power_of.data(),  sc.sf_of.data(),
                      sc.net_of.data()};
  const std::uint32_t* order = sc.order.data();
  for (const std::size_t i : sc.decoding) {
    const auto& ev = events[i];
    auto& out = outcomes[i];
    const Channel& rx_ch =
        chains_[static_cast<std::size_t>(sc.chain_of[i])].channel;

    const double noise_lin = noise_floor_lin(ev.tx.channel.bandwidth);
    ScanAccum acc;
    const ScanEvent se{i,
                       sc.start_of[i],
                       sc.end_of[i],
                       sc.power_of[i],
                       sc.sf_of[i],
                       sc.net_of[i],
                       rx_ch};

    // Candidates: same or adjacent frequency bucket, starting within
    // [ev.start - bucket_longest, ev.end). The scan reads only the flat
    // per-event arrays filled in phase 1 — never the RxEvent structs.
    const std::int64_t center_bucket = bucket_of(ev.tx.channel.center);
    for (std::int64_t bucket = center_bucket - 1;
         bucket <= center_bucket + 1; ++bucket) {
      const auto bucket_it = std::lower_bound(
          sc.buckets.begin(), sc.buckets.end(), bucket,
          [](const RxScratch::Bucket& b, std::int64_t id) {
            return b.id < id;
          });
      if (bucket_it == sc.buckets.end() || bucket_it->id != bucket) continue;
      // Uniform-channel bucket: one overlap test covers every event in it.
      // Zero overlap means no event in the bucket can couple into this
      // chain — skip the whole range (adjacent grid channels, typically).
      const bool uniform = bucket_it->uniform;
      double rho_uniform = 0.0;
      if (uniform) {
        rho_uniform = overlap_ratio(bucket_it->channel, rx_ch);
        if (rho_uniform <= 0.0) continue;
      }
      scan_bucket_scalar(soa, order + bucket_it->begin,
                         order + bucket_it->end, uniform, rho_uniform,
                         bucket_it->max_duration, se, acc);
    }

    // Combined same-SF co-channel power must also satisfy capture.
    if (!acc.collided && acc.aligned_same_sf_lin > 0.0) {
      const Dbm combined = lin_to_dbm(acc.aligned_same_sf_lin);
      if (ev.rx_power - combined <
          capture_sir_threshold(ev.tx.params.sf, ev.tx.params.sf)) {
        acc.collided = true;
      }
    }

    if (acc.collided) {
      out.disposition = RxDisposition::kDroppedCollision;
      out.foreign_interferer = acc.foreign_fatal;
      continue;
    }

    const Db snr_eff =
        ev.rx_power - lin_to_dbm(noise_lin + acc.misaligned_intf_lin);
    if (snr_eff < demod_snr_threshold(ev.tx.params.sf)) {
      out.disposition = RxDisposition::kDroppedLowSnr;
      continue;
    }

    out.disposition = ev.tx.sync_word == sync_word_
                          ? RxDisposition::kDelivered
                          : RxDisposition::kDecodedForeign;
  }

  if (capture_policy_ != nullptr) apply_capture_policy(events.size(), outcomes);
  return outcomes;
}


std::vector<RxOutcome> GatewayRadio::process(const RxEventView& view) {
  std::vector<RxOutcome> outcomes;
  process_into(view, outcomes);
  return outcomes;
}

void GatewayRadio::process_into(const RxEventView& view,
                                std::vector<RxOutcome>& outcomes) {
  const WindowTxTable& tbl = *view.table;
  outcomes.assign(view.count, RxOutcome{});
  pool_.reset();
  if (observer_ != nullptr) observer_->on_radio_window_begin();
  auto& sc = scratch_;

  // Phase 1, batched: the same per-event pipeline, reading the window's
  // shared table columns instead of wide RxEvent structs. The airtime-
  // derived instants (end, lock_on) come memoized from the table — the
  // identical sums the scalar phase computes through airtime_for. As the
  // dispatch queue fills, a running strict-order check records whether
  // sort_fcfs can be skipped (ascending tx order usually already is
  // lock-on ordered within a chain mix).
  sc.queue.clear();
  sc.queue.reserve(view.count);
  sc.chain_of.assign(view.count, -1);
  sc.end_of.resize(view.count);
  sc.lin_power.resize(view.count);
  sc.start_of.resize(view.count);
  sc.channel_of.resize(view.count);
  sc.power_of.resize(view.count);
  sc.sf_of.resize(view.count);
  sc.net_of.resize(view.count);
  const bool policy_columns = capture_policy_ != nullptr;
  if (policy_columns) {
    sc.node_of.resize(view.count);
    sc.sync_of.resize(view.count);
  }
  bool queue_sorted = true;
  for (std::size_t k = 0; k < view.count; ++k) {
    const std::uint32_t t = view.tx_index[k];
    const Dbm rx_power = view.rx_power[k];
    auto& out = outcomes[k];
    sc.end_of[k] = tbl.end[t];
    sc.lin_power[k] = dbm_to_lin(rx_power);
    sc.start_of[k] = tbl.start[t];
    sc.channel_of[k] = tbl.channel[t];
    sc.power_of[k] = rx_power;
    sc.sf_of[k] = tbl.sf[t];
    sc.net_of[k] = tbl.net[t];
    out.packet = tbl.packet[t];
    out.node = tbl.node[t];
    out.network = tbl.net[t];
    if (policy_columns) {
      sc.node_of[k] = tbl.node[t];
      sc.sync_of[k] = tbl.sync[t];
    }
    const int chain = chain_for(tbl.channel[t]);
    if (chain < 0) {
      out.disposition = RxDisposition::kRejectedFrontEnd;
      continue;
    }
    sc.chain_of[k] = chain;
    out.chain_channel = chain;
    out.snr = packet_snr(rx_power, tbl.channel[t].bandwidth);
    if (out.snr < demod_snr_threshold(tbl.sf[t]) + kDetectionMargin) {
      out.disposition = RxDisposition::kNotDetected;
      continue;
    }
    if (!sc.queue.empty()) {
      const auto& prev = sc.queue.back();
      const bool strictly_before =
          prev.lock_on < tbl.lock_on[t] ||
          (prev.lock_on == tbl.lock_on[t] && prev.packet < tbl.packet[t]);
      if (!strictly_before) queue_sorted = false;
    }
    sc.queue.push_back(DispatchEntry{k, tbl.lock_on[t], sc.end_of[k],
                                     tbl.net[t], tbl.packet[t]});
  }

  // Phase 2: FCFS dispatch (sort skipped when provably the identity).
  dispatch_queue(outcomes, queue_sorted);

  // Phase 3, batched: the shared bucket index plus the batched-only prep
  // (SF grouping, per-(bucket, chain) overlap memos), then the kernel
  // dispatch per bucket: aligned uniform buckets take the SF-grouped
  // kernel, partially overlapping uniform buckets the hoisted-coupling
  // kernel, mixed-channel buckets the scalar reference kernel.
  build_bucket_index(view.count);
  build_sf_groups_and_memos(view.count);

  const RxScanSoA soa{sc.start_of.data(), sc.end_of.data(),
                      sc.lin_power.data(), sc.channel_of.data(),
                      sc.power_of.data(),  sc.sf_of.data(),
                      sc.net_of.data()};
  const std::uint32_t* order = sc.order.data();
  const std::size_t n_chains = chains_.size();
  // Visit decoded events in ascending start order (ties by event index):
  // outcomes are per-event independent, so any visit order gives identical
  // results, and a monotone order lets the kernels' window-start cursors
  // replace per-event lower_bounds. sc.decoding arrives in dispatch
  // (lock-on) order and is not read again afterwards, so sort in place.
  std::sort(sc.decoding.begin(), sc.decoding.end(),
            [&sc](std::size_t a, std::size_t b) {
              if (sc.start_of[a] != sc.start_of[b]) {
                return sc.start_of[a] < sc.start_of[b];
              }
              return a < b;
            });
  for (const std::size_t i : sc.decoding) {
    auto& out = outcomes[i];
    const auto chain = static_cast<std::size_t>(sc.chain_of[i]);
    const Channel& rx_ch = chains_[chain].channel;

    const double noise_lin = noise_floor_lin(sc.channel_of[i].bandwidth);
    ScanAccum acc;
    const ScanEvent se{i,
                       sc.start_of[i],
                       sc.end_of[i],
                       sc.power_of[i],
                       sc.sf_of[i],
                       sc.net_of[i],
                       rx_ch};

    // One lower_bound finds the candidate bucket run (ids are consecutive
    // within [center-1, center+1], and buckets are id-sorted), walked in
    // ascending id order — the same order the scalar loop probes them.
    const std::int64_t center_bucket = bucket_of(sc.channel_of[i].center);
    auto bucket_it = std::lower_bound(
        sc.buckets.begin(), sc.buckets.end(), center_bucket - 1,
        [](const RxScratch::Bucket& b, std::int64_t id) { return b.id < id; });
    for (; bucket_it != sc.buckets.end() && bucket_it->id <= center_bucket + 1;
         ++bucket_it) {
      const auto bpos =
          static_cast<std::size_t>(bucket_it - sc.buckets.begin());
      if (bucket_it->uniform) {
        const auto& memo = sc.bucket_chain[bpos * n_chains + chain];
        if (memo.rho <= 0.0) continue;
        if (memo.rho >= kDetectOverlapThreshold) {
          scan_bucket_aligned_grouped(
              soa, sc.order_sf.data(), sc.pos_sf.data(),
              sc.sf_groups.data() + bucket_it->groups_begin,
              sc.sf_groups.data() + bucket_it->groups_end,
              sc.group_cursor.data() + bucket_it->groups_begin,
              bucket_it->max_duration, se, acc);
        } else {
          scan_bucket_misaligned_uniform(soa, order + bucket_it->begin,
                                         order + bucket_it->end,
                                         sc.bucket_cursor[bpos],
                                         bucket_it->max_duration,
                                         memo.coupling, se, acc);
        }
      } else {
        scan_bucket_scalar(soa, order + bucket_it->begin,
                           order + bucket_it->end, /*uniform=*/false,
                           /*rho_uniform=*/0.0, bucket_it->max_duration, se,
                           acc);
      }
    }

    // Combined same-SF co-channel power must also satisfy capture.
    if (!acc.collided && acc.aligned_same_sf_lin > 0.0) {
      const Dbm combined = lin_to_dbm(acc.aligned_same_sf_lin);
      if (se.power - combined < capture_sir_threshold(se.sf, se.sf)) {
        acc.collided = true;
      }
    }

    if (acc.collided) {
      out.disposition = RxDisposition::kDroppedCollision;
      out.foreign_interferer = acc.foreign_fatal;
      continue;
    }

    const Db snr_eff =
        se.power - lin_to_dbm(noise_lin + acc.misaligned_intf_lin);
    if (snr_eff < demod_snr_threshold(se.sf)) {
      out.disposition = RxDisposition::kDroppedLowSnr;
      continue;
    }

    out.disposition = tbl.sync[view.tx_index[i]] == sync_word_
                          ? RxDisposition::kDelivered
                          : RxDisposition::kDecodedForeign;
  }

  if (capture_policy_ != nullptr) apply_capture_policy(view.count, outcomes);
}

}  // namespace alphawan
