// Golden run-digests for the canonical scenarios, plus replay round-trips.
// If a digest mismatch is intentional (a real behaviour change), follow
// docs/testing.md to re-bless tests/golden/digests.txt.
#include <fstream>
#include <map>
#include <sstream>

#include <gtest/gtest.h>

#include "check/canonical.hpp"
#include "check/replay.hpp"

namespace alphawan {
namespace {

std::map<std::string, std::string> load_golden_digests() {
  std::ifstream in(std::string(ALPHAWAN_GOLDEN_DIR) + "/digests.txt");
  EXPECT_TRUE(in.good()) << "missing tests/golden/digests.txt";
  std::map<std::string, std::string> golden;
  std::string name;
  std::string hex;
  while (in >> name >> hex) golden[name] = hex;
  return golden;
}

TEST(GoldenDigest, CanonicalScenariosMatchCheckedInDigests) {
  const auto golden = load_golden_digests();
  for (const auto& name : canonical_names()) {
    const auto it = golden.find(name);
    ASSERT_NE(it, golden.end()) << "no golden digest for " << name;
    EXPECT_EQ(digest_hex(canonical_digest(name)), it->second)
        << "behaviour change in canonical scenario '" << name
        << "' — if intentional, re-bless per docs/testing.md";
  }
}

TEST(GoldenDigest, DigestsAreStableAcrossConsecutiveRuns) {
  for (const auto& name : canonical_names()) {
    EXPECT_EQ(canonical_digest(name), canonical_digest(name)) << name;
  }
}

TEST(GoldenDigest, DigestIsOrderSensitive) {
  PacketFate a;
  a.packet = 1;
  PacketFate b;
  b.packet = 2;
  EXPECT_NE(fate_digest({a, b}), fate_digest({b, a}));
  EXPECT_NE(fate_digest({a}), fate_digest({a, a}));
}

// Replaying any packet of a canonical run must reproduce the fate the full
// run assigned — bit-for-bit, thanks to seed-keyed fading substreams.
TEST(GoldenDigest, ReplayReproducesEveryPacketFate) {
  for (const auto& name : canonical_names()) {
    CanonicalScenario scenario = make_canonical(name);
    ScenarioRunner runner(*scenario.deployment, scenario.seed);
    const auto result = runner.run_window(scenario.txs);
    for (const auto& fate : result.fates) {
      const ReplayReport report =
          replay_packet(*scenario.deployment, scenario.seed, scenario.txs,
                        fate.packet, runner.prune_margin());
      ASSERT_TRUE(report.found) << name << " packet " << fate.packet;
      EXPECT_EQ(report.fate.delivered, fate.delivered)
          << name << " packet " << fate.packet;
      EXPECT_EQ(report.fate.cause, fate.cause)
          << name << " packet " << fate.packet << "\n"
          << report.to_string();
    }
  }
}

TEST(GoldenDigest, ReplayReportsMissingPacket) {
  CanonicalScenario scenario = make_canonical("burst-1net");
  const ReplayReport report = replay_packet(
      *scenario.deployment, scenario.seed, scenario.txs, 999'999);
  EXPECT_FALSE(report.found);
  EXPECT_NE(report.to_string().find("not present"), std::string::npos);
}

}  // namespace
}  // namespace alphawan
