#include "baselines/ss5g.hpp"

#include <cmath>

#include "baselines/overlap_index.hpp"
#include "phy/airtime.hpp"
#include "phy/sensitivity.hpp"

namespace alphawan {

void Ss5gCapturePolicy::resolve(const CaptureContext& context,
                                std::vector<RxOutcome>& outcomes) const {
  const Ss5gOptions& options = options_;
  const OverlapIndex index(context);

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    auto& out = outcomes[i];
    if (out.disposition != RxDisposition::kDroppedCollision) continue;
    const SpreadingFactor sf = context.sf[i];
    const Seconds symbol = symbol_duration(sf, context.channel[i].bandwidth);
    const Seconds min_offset{options.min_offset_symbols * symbol.value()};

    // Every co-channel overlapper must be same-SF (cross-SF energy defeats
    // the symbol slicer) and offset by whole symbols; the superposition
    // count is bounded by what the algorithm can disentangle.
    int superposed = 1;  // the wanted packet itself
    bool resolvable = true;
    index.for_each_cochannel_overlap(i, [&](std::size_t j) {
      if (context.sf[j] != sf) {
        resolvable = false;
        return false;
      }
      const Seconds offset{
          std::abs(context.start[j].value() - context.start[i].value())};
      if (offset < min_offset) {
        resolvable = false;  // near-aligned symbols cannot be sliced apart
        return false;
      }
      if (++superposed > options.max_superposed) {
        resolvable = false;
        return false;
      }
      return true;
    });
    if (!resolvable) continue;
    if (out.snr < demod_snr_threshold(sf) + options.snr_headroom) {
      continue;
    }
    out.disposition = context.tx_sync[i] == context.sync_word
                          ? RxDisposition::kDelivered
                          : RxDisposition::kDecodedForeign;
  }
}

}  // namespace alphawan
