#include "sim/scenario.hpp"

#include <algorithm>

#include "check/invariants.hpp"
#include "common/parallel.hpp"
#include "phy/sensitivity.hpp"
#include "radio/detector.hpp"

namespace alphawan {
namespace {
// Substream domain tag separating fading draws from any future named
// substreams derived from the same runner seed.
constexpr std::uint64_t kFadingDomain = 0xFAD1'F0E5'7A7EULL;

// Everything one gateway produces from a window, computed independently of
// every other gateway and merged in deployment order afterwards.
struct GatewayYield {
  std::vector<RxOutcome> outcomes;
  std::vector<std::size_t> event_tx_index;
  std::vector<UplinkRecord> uplinks;
};
}  // namespace

Rng packet_link_rng(const Rng& root, GatewayId gateway, PacketId packet) {
  return root.substream(kFadingDomain ^ (static_cast<std::uint64_t>(gateway) << 40),
                        packet);
}

std::size_t WindowResult::total_delivered() const {
  std::size_t total = 0;
  for (const auto& [net, n] : delivered) total += n;
  return total;
}

std::size_t WindowResult::total_offered() const {
  std::size_t total = 0;
  for (const auto& [net, n] : offered) total += n;
  return total;
}

ScenarioRunner::ScenarioRunner(Deployment& deployment, std::uint64_t seed,
                               RunOptions options)
    : deployment_(deployment),
      rng_(seed),
      options_(std::move(options)),
      invariants_(invariants_from_env()) {}

WindowResult ScenarioRunner::run_window(const std::vector<Transmission>& txs) {
  WindowResult result;
  auto& channel = deployment_.channel_model();
  // Refreshing the cache registers every gateway column (and recomputes
  // antenna gains for gateways whose antenna changed since the last call).
  LinkCache& cache = deployment_.link_cache();
  // Flatten (network, gateway) pairs in deployment order: the parallel
  // fan-out runs them in any order, the merge below walks them in this one.
  std::vector<std::pair<Network*, Gateway*>> tasks;
  for (auto& network : deployment_.networks()) {
    // (Re)attach the checker every window: gateways may have been added
    // since the last one, and a null attach detaches a stale checker.
    for (auto& gw : network.gateways()) {
      gw.set_observer(invariants_);
      tasks.emplace_back(&network, &gw);
    }
  }

  // Serial prepass: register every transmitter row with the link cache and
  // invert each row's candidate gateway list into per-gateway transmission
  // lists, so a gateway task walks only transmissions that could plausibly
  // clear its prune floor. Candidates are a conservative superset (see
  // LinkCache::candidate_columns), and ascending tx order is preserved per
  // gateway, so every event list is identical to the unpruned loop's.
  auto& sc = scratch_;
  const Dbm floor =
      noise_floor_dbm(kLoRaBandwidth125k) - options_.prune_margin;
  sc.task_col.resize(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    sc.task_col[t] = cache.column_of(tasks[t].second->id());
  }
  // Candidacy is recorded per transmission as a column bitmask when the
  // deployment fits in 64 gateways (one AND per (tx, gateway) pair in the
  // fan-out); larger deployments fall back to materialized per-column
  // transmission lists. Both paths visit transmissions in ascending index
  // order per gateway, so event lists are identical either way.
  const bool use_mask = cache.column_count() <= 64;
  sc.row_of_tx.resize(txs.size());
  if (use_mask) {
    sc.tx_mask.resize(txs.size());
  } else {
    if (sc.gw_txs.size() < cache.column_count()) {
      sc.gw_txs.resize(cache.column_count());
    }
    for (auto& list : sc.gw_txs) list.clear();
  }
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const auto& tx = txs[i];
    const std::uint32_t row = cache.ensure_row(tx.node, tx.origin);
    sc.row_of_tx[i] = row;
    if (use_mask) {
      // Out-of-spec tx power: the candidate bound does not cover it, so
      // consider the transmission at every gateway.
      sc.tx_mask[i] = tx.tx_power <= kMaxTxPower
                          ? cache.candidate_mask(row, floor, kMaxTxPower)
                          : ~std::uint64_t{0};
      continue;
    }
    if (tx.tx_power <= kMaxTxPower) {
      for (const std::uint32_t col :
           cache.candidate_columns(row, floor, kMaxTxPower)) {
        sc.gw_txs[col].push_back(static_cast<std::uint32_t>(i));
      }
    } else {
      for (std::uint32_t col = 0; col < cache.column_count(); ++col) {
        sc.gw_txs[col].push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
  if (sc.events.size() < tasks.size()) sc.events.resize(tasks.size());
  const double fading_sigma = channel.config().fast_fading_sigma_db.value();

  // Per-gateway pipelines are independent: each consumes its candidate
  // transmission list and touches only its own gateway (the link cache and
  // scratch arenas are read-only / per-task here). The invariant checker's
  // observer protocol is sequential, so an attached checker forces serial
  // execution.
  std::vector<GatewayYield> yields(tasks.size());
  const int threads = invariants_ != nullptr ? 1 : options_.threads;
  parallel_for(
      tasks.size(),
      [&](std::size_t t) {
        auto& [network, gw] = tasks[t];
        auto& yield = yields[t];
        // Build this gateway's view of the air from the cached static link
        // terms; only the fast-fading draw is per-packet. The expression
        // reproduces the uncached arithmetic term for term —
        //   ((tx_power - link_path_loss) + fading) + antenna_gain
        // — so rx powers are bit-identical.
        const auto gains = cache.gains(sc.task_col[t]);
        auto& events = sc.events[t];
        events.clear();
        events.reserve(txs.size());
        yield.event_tx_index.reserve(txs.size());
        const auto consider = [&](std::size_t i) {
          const auto& tx = txs[i];
          const LinkGain g = gains[sc.row_of_tx[i]];
          Rng link_rng = packet_link_rng(rng_, gw->id(), tx.id);
          const Db fading{link_rng.normal_once(0.0, fading_sigma)};
          const Dbm rx_power =
              tx.tx_power - g.path_loss + fading + g.antenna_gain;
          if (rx_power < floor) return;
          events.push_back(RxEvent{tx, rx_power});
          yield.event_tx_index.push_back(i);
        };
        if (use_mask) {
          const std::uint64_t bit = std::uint64_t{1} << sc.task_col[t];
          for (std::size_t i = 0; i < txs.size(); ++i) {
            if (sc.tx_mask[i] & bit) consider(i);
          }
        } else {
          for (const std::uint32_t i : sc.gw_txs[sc.task_col[t]]) consider(i);
        }

        yield.outcomes = gw->receive_window(events, yield.uplinks);
        if (options_.post_processor) {
          options_.post_processor(*gw, events, yield.outcomes);
          // Post-processors may promote outcomes to kDelivered; forward
          // newly delivered packets to the server like the radio would.
          for (std::size_t e = 0; e < yield.outcomes.size(); ++e) {
            const auto& out = yield.outcomes[e];
            if (out.disposition != RxDisposition::kDelivered) continue;
            const bool already = std::any_of(
                yield.uplinks.begin(), yield.uplinks.end(),
                [&](const UplinkRecord& r) {
                  return r.packet == out.packet && r.gateway == gw->id();
                });
            if (already) continue;
            UplinkRecord rec;
            rec.packet = out.packet;
            rec.node = out.node;
            rec.gateway = gw->id();
            rec.network = network->id();
            rec.timestamp = events[e].tx.end();
            rec.channel = events[e].tx.channel;
            rec.dr = sf_to_dr(events[e].tx.params.sf);
            rec.snr = out.snr;
            yield.uplinks.push_back(rec);
          }
        }
      },
      threads);

  // Merge in deployment order: per own-network outcomes of each packet
  // (keyed by its index in txs) gather in gateway-ID order within the
  // packet's network, and each server ingests its gateways' uplinks in that
  // same order — exactly the serial sequence. The gather is a counted flat
  // layout (count, prefix-sum, fill) instead of one heap vector per packet.
  sc.own_count.assign(txs.size(), 0);
  {
    std::size_t t = 0;
    for (auto& network : deployment_.networks()) {
      for ([[maybe_unused]] auto& gw : network.gateways()) {
        const auto& yield = yields[t++];
        for (const std::size_t i : yield.event_tx_index) {
          if (txs[i].network == network.id()) ++sc.own_count[i];
        }
      }
    }
  }
  sc.own_offset.resize(txs.size() + 1);
  sc.own_offset[0] = 0;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    sc.own_offset[i + 1] = sc.own_offset[i] + sc.own_count[i];
  }
  sc.own_flat.resize(sc.own_offset[txs.size()]);
  // Reuse own_count as the per-packet fill cursor (relative to the offset).
  std::fill(sc.own_count.begin(), sc.own_count.end(), 0);
  std::size_t t = 0;
  for (auto& network : deployment_.networks()) {
    std::vector<UplinkRecord>& uplinks = sc.uplinks;
    uplinks.clear();
    for ([[maybe_unused]] auto& gw : network.gateways()) {
      auto& yield = yields[t++];
      for (std::size_t e = 0; e < yield.outcomes.size(); ++e) {
        const std::size_t i = yield.event_tx_index[e];
        if (txs[i].network != network.id()) continue;  // foreign at this GW
        sc.own_flat[sc.own_offset[i] + sc.own_count[i]++] = yield.outcomes[e];
      }
      uplinks.insert(uplinks.end(), yield.uplinks.begin(), yield.uplinks.end());
    }
    network.server().ingest(uplinks);
  }

  // Classify every offered packet against its own network's gateways.
  // Counters are flat vectors indexed by a dense network index (network
  // ids are allocated sequentially, so the common case is index == id);
  // the result maps are filled once at the end.
  sc.net_ids.clear();
  for (const auto& network : deployment_.networks()) {
    sc.net_ids.push_back(network.id());
  }
  const std::size_t deployed = sc.net_ids.size();
  sc.offered.assign(deployed, 0);
  sc.delivered.assign(deployed, 0);
  sc.served.resize(deployed);
  for (auto& nodes : sc.served) nodes.clear();
  auto index_of = [&sc](NetworkId id) -> std::size_t {
    if (id < sc.net_ids.size() && sc.net_ids[id] == id) return id;
    for (std::size_t n = 0; n < sc.net_ids.size(); ++n) {
      if (sc.net_ids[n] == id) return n;
    }
    // Traffic may reference a network id absent from the deployment; give
    // it a slot so its fates are still tallied (the map-based bookkeeping
    // this replaces created entries on the fly).
    sc.net_ids.push_back(id);
    sc.offered.push_back(0);
    sc.delivered.push_back(0);
    sc.served.emplace_back();
    return sc.net_ids.size() - 1;
  };
  result.fates.reserve(txs.size());
  for (std::size_t i = 0; i < txs.size(); ++i) {
    PacketFate fate = classify_packet(
        txs[i], std::span<const RxOutcome>(
                    sc.own_flat.data() + sc.own_offset[i],
                    sc.own_offset[i + 1] - sc.own_offset[i]));
    const std::size_t n = index_of(fate.network);
    ++sc.offered[n];
    if (fate.delivered) {
      ++sc.delivered[n];
      sc.served[n].push_back(fate.node);
    }
    result.fates.push_back(std::move(fate));
  }
  for (std::size_t n = 0; n < sc.net_ids.size(); ++n) {
    auto& nodes = sc.served[n];
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    const NetworkId id = sc.net_ids[n];
    // Deployment networks always report (zeroes included); ids outside the
    // deployment get exactly the entries their packets created, matching
    // the previous on-the-fly map behaviour.
    if (n < deployed || sc.offered[n] > 0) result.offered[id] = sc.offered[n];
    if (n < deployed || sc.delivered[n] > 0) {
      result.delivered[id] = sc.delivered[n];
    }
    if (n < deployed || !nodes.empty()) {
      result.served_nodes[id] = nodes.size();
    }
  }
  if (invariants_ != nullptr) invariants_->check_window(result);
  return result;
}

WindowResult ScenarioRunner::run_window(const std::vector<Transmission>& txs,
                                        MetricsCollector& metrics) {
  WindowResult result = run_window(txs);
  for (const auto& fate : result.fates) metrics.record(fate);
  return result;
}

}  // namespace alphawan
