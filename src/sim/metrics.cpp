#include "sim/metrics.hpp"

#include <algorithm>

namespace alphawan {

std::string_view loss_cause_name(LossCause cause) {
  switch (cause) {
    case LossCause::kDelivered: return "delivered";
    case LossCause::kDecoderContentionIntra: return "decoder-contention-intra";
    case LossCause::kDecoderContentionInter: return "decoder-contention-inter";
    case LossCause::kChannelContentionIntra: return "channel-contention-intra";
    case LossCause::kChannelContentionInter: return "channel-contention-inter";
    case LossCause::kOther: return "other";
  }
  return "?";
}

MetricsCollector::PerNetwork& MetricsCollector::slot(NetworkId network) {
  for (auto& net : per_network_) {
    if (net.id == network) return net;
  }
  per_network_.emplace_back();
  per_network_.back().id = network;
  return per_network_.back();
}

const MetricsCollector::PerNetwork* MetricsCollector::find(
    NetworkId network) const {
  for (const auto& net : per_network_) {
    if (net.id == network) return &net;
  }
  return nullptr;
}

std::size_t MetricsCollector::distinct(std::vector<NodeId> nodes) {
  std::sort(nodes.begin(), nodes.end());
  return static_cast<std::size_t>(
      std::unique(nodes.begin(), nodes.end()) - nodes.begin());
}

void MetricsCollector::record(const PacketFate& fate) {
  fates_.push_back(fate);
  auto& net = slot(fate.network);
  ++net.offered;
  ++total_offered_;
  if (fate.delivered) {
    ++net.delivered;
    ++total_delivered_;
    net.delivered_bytes += fate.payload_bytes;
    total_delivered_bytes_ += fate.payload_bytes;
    net.served.push_back(fate.node);
  } else {
    net.causes.add(fate.cause);
    total_causes_.add(fate.cause);
  }
}

std::size_t MetricsCollector::offered(NetworkId network) const {
  const PerNetwork* net = find(network);
  return net == nullptr ? 0 : net->offered;
}

std::size_t MetricsCollector::delivered(NetworkId network) const {
  const PerNetwork* net = find(network);
  return net == nullptr ? 0 : net->delivered;
}

double MetricsCollector::prr(NetworkId network) const {
  const std::size_t off = offered(network);
  return off == 0 ? 0.0
                  : static_cast<double>(delivered(network)) /
                        static_cast<double>(off);
}

double MetricsCollector::total_prr() const {
  return total_offered_ == 0 ? 0.0
                             : static_cast<double>(total_delivered_) /
                                   static_cast<double>(total_offered_);
}

double MetricsCollector::loss_fraction(LossCause cause) const {
  return total_offered_ == 0
             ? 0.0
             : static_cast<double>(total_causes_.get(cause)) /
                   static_cast<double>(total_offered_);
}

double MetricsCollector::loss_fraction(NetworkId network,
                                       LossCause cause) const {
  const PerNetwork* net = find(network);
  if (net == nullptr || net->offered == 0) return 0.0;
  return static_cast<double>(net->causes.get(cause)) /
         static_cast<double>(net->offered);
}

std::size_t MetricsCollector::losses(NetworkId network, LossCause cause) const {
  const PerNetwork* net = find(network);
  return net == nullptr ? 0 : net->causes.get(cause);
}

std::vector<NetworkId> MetricsCollector::networks() const {
  std::vector<NetworkId> ids;
  ids.reserve(per_network_.size());
  for (const auto& net : per_network_) ids.push_back(net.id);
  std::sort(ids.begin(), ids.end());  // map-era callers expect ascending ids
  return ids;
}

std::size_t MetricsCollector::delivered_bytes(NetworkId network) const {
  const PerNetwork* net = find(network);
  return net == nullptr ? 0 : net->delivered_bytes;
}

std::size_t MetricsCollector::served_nodes(NetworkId network) const {
  const PerNetwork* net = find(network);
  return net == nullptr ? 0 : distinct(net->served);
}

std::size_t MetricsCollector::total_served_nodes() const {
  std::size_t total = 0;
  for (const auto& net : per_network_) total += distinct(net.served);
  return total;
}

void MetricsCollector::clear() { *this = MetricsCollector{}; }

}  // namespace alphawan
