// The network server (ChirpStack counterpart): deduplicates uplinks
// forwarded by multiple gateways, stores the operational log that
// AlphaWAN's log parser and traffic estimator consume, and tracks
// delivery statistics.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <vector>

#include "net/gateway.hpp"

namespace alphawan {

// Per-node link profile maintained by the server from uplink metadata:
// which gateways hear the node and how well. This is the ADR input and a
// core piece of the CP problem's coverage relation r_ijl.
struct LinkProfile {
  // Best SNR seen per gateway.
  std::map<GatewayId, Db> gateway_snr;
  std::size_t uplinks = 0;

  [[nodiscard]] Db best_snr() const;
  [[nodiscard]] std::size_t gateway_count() const {
    return gateway_snr.size();
  }
};

class NetworkServer {
 public:
  explicit NetworkServer(NetworkId network) : network_(network) {}

  [[nodiscard]] NetworkId network() const { return network_; }

  // Ingest one window's uplink records from all gateways. Duplicate
  // receptions of the same packet by several gateways count once.
  void ingest(const std::vector<UplinkRecord>& records);

  // Unique packets delivered so far.
  [[nodiscard]] std::size_t delivered_packets() const {
    return delivered_.size();
  }
  [[nodiscard]] bool was_delivered(PacketId packet) const {
    return delivered_.contains(packet);
  }

  // The raw operational log (every reception, including duplicates).
  [[nodiscard]] const std::vector<UplinkRecord>& log() const { return log_; }

  // Link profiles per node.
  [[nodiscard]] const std::map<NodeId, LinkProfile>& link_profiles() const {
    return link_profiles_;
  }

  // Number of unique packets delivered per node (traffic evidence).
  [[nodiscard]] const std::map<NodeId, std::size_t>& per_node_delivered()
      const {
    return per_node_delivered_;
  }

  void clear();

 private:
  NetworkId network_;
  std::vector<UplinkRecord> log_;
  std::set<PacketId> delivered_;
  std::map<NodeId, LinkProfile> link_profiles_;
  std::map<NodeId, std::size_t> per_node_delivered_;
};

}  // namespace alphawan
