#include "common/units.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <type_traits>

#include "common/types.hpp"
#include "phy/capture.hpp"

namespace alphawan {
namespace {

// ---- zero-overhead guarantees -------------------------------------------

static_assert(sizeof(Hz) == sizeof(double));
static_assert(sizeof(Dbm) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Seconds>);
static_assert(std::is_trivially_copyable_v<Dbm>);

// ---- construction and literals ------------------------------------------

TEST(Units, LiteralsMatchExplicitConstruction) {
  // Scaled literals compare against the identical scaling expression so
  // the test is immune to last-ulp differences vs. a hand-typed constant.
  EXPECT_EQ(868.1_MHz, Hz{868.1 * 1e6});
  EXPECT_EQ(125_kHz, Hz{125.0 * 1e3});
  EXPECT_EQ(500_Hz, Hz{500.0});
  EXPECT_EQ(-120.0_dBm, Dbm{-120.0});
  EXPECT_EQ(6_dB, Db{6.0});
  EXPECT_EQ(50.0_ms, Seconds{50.0 * 1e-3});
  EXPECT_EQ(2_s, Seconds{2.0});
  EXPECT_EQ(1.5_km, Meters{1.5 * 1e3});
  EXPECT_EQ(75_m, Meters{75.0});
}

TEST(Units, DefaultConstructionIsZero) {
  EXPECT_DOUBLE_EQ(Hz{}.value(), 0.0);
  EXPECT_DOUBLE_EQ(Dbm{}.value(), 0.0);
  EXPECT_DOUBLE_EQ(Seconds{}.value(), 0.0);
}

TEST(Units, ValueRoundTrips) {
  constexpr double raw = -117.25;
  constexpr Dbm p{raw};
  static_assert(p.value() == raw);
  EXPECT_DOUBLE_EQ(Dbm{p.value()}.value(), raw);
}

// ---- linear-unit arithmetic identities ----------------------------------

TEST(Units, LinearAdditionAndSubtraction) {
  constexpr Hz a{125e3};
  constexpr Hz b{200e3};
  static_assert((a + b).value() == 325e3);
  static_assert((b - a).value() == 75e3);
  static_assert(a + b == b + a);               // commutative
  static_assert((a + b) - b == a);             // inverse
  static_assert(a + Hz{0.0} == a);             // identity
}

TEST(Units, ScalarScaling) {
  constexpr Seconds t{0.25};
  static_assert((t * 4.0).value() == 1.0);
  static_assert((4.0 * t).value() == 1.0);     // both orders
  static_assert((t / 0.5).value() == 0.5);
  static_assert((t * 2.0) / 2.0 == t);         // inverse
}

TEST(Units, SameUnitRatioIsDimensionless) {
  constexpr Hz width{4.8e6};
  constexpr double channels = width / kChannelSpacing;
  static_assert(channels == 24.0);
  EXPECT_DOUBLE_EQ(Meters{1500.0} / Meters{300.0}, 5.0);
}

TEST(Units, CompoundAssignment) {
  Seconds now{1.0};
  now += Seconds{0.5};
  EXPECT_EQ(now, Seconds{1.5});
  now -= Seconds{1.0};
  EXPECT_EQ(now, Seconds{0.5});
  now *= 4.0;
  EXPECT_EQ(now, Seconds{2.0});
  now /= 2.0;
  EXPECT_EQ(now, Seconds{1.0});
}

TEST(Units, UnaryMinusAndAbs) {
  constexpr Db margin{-3.5};
  static_assert((-margin).value() == 3.5);
  static_assert(abs(margin) == Db{3.5});
  static_assert(abs(Db{3.5}) == Db{3.5});
  static_assert(abs(Db{0.0}) == Db{0.0});
}

// ---- log-domain power algebra -------------------------------------------

TEST(Units, DbmOffsetByDb) {
  constexpr Dbm tx{14.0};
  constexpr Db path_loss{120.0};
  constexpr Dbm rx = tx - path_loss;
  static_assert(rx.value() == -106.0);
  static_assert(rx + path_loss == tx);         // round trip
  static_assert(Db{3.0} + tx == tx + Db{3.0}); // both orders
}

TEST(Units, DbmDifferenceIsDb) {
  constexpr Dbm signal{-100.0};
  constexpr Dbm noise{-117.0};
  constexpr Db snr = signal - noise;
  static_assert(snr.value() == 17.0);
  static_assert(noise + snr == signal);        // round trip
}

TEST(Units, DbmCompoundAssignment) {
  Dbm p{-80.0};
  p += Db{6.0};
  EXPECT_EQ(p, Dbm{-74.0});
  p -= Db{6.0};
  EXPECT_EQ(p, Dbm{-80.0});
}

// ---- combine_powers_dbm round trips -------------------------------------

TEST(Units, CombinePowersEqualInputsAddThreeDb) {
  const Dbm sum = combine_powers_dbm(Dbm{-90.0}, Dbm{-90.0});
  EXPECT_NEAR(sum.value(), -90.0 + 10.0 * std::log10(2.0), 1e-9);
}

TEST(Units, CombinePowersIsCommutative) {
  const Dbm ab = combine_powers_dbm(Dbm{-85.0}, Dbm{-97.0});
  const Dbm ba = combine_powers_dbm(Dbm{-97.0}, Dbm{-85.0});
  EXPECT_DOUBLE_EQ(ab.value(), ba.value());
}

TEST(Units, CombinePowersDominatedByStronger) {
  // A 40 dB weaker interferer barely moves the total.
  const Dbm sum = combine_powers_dbm(Dbm{-80.0}, Dbm{-120.0});
  EXPECT_GT(sum, Dbm{-80.0});
  EXPECT_LT(sum - Dbm{-80.0}, Db{0.01});
}

TEST(Units, CombinePowersRoundTripThroughLinearDomain) {
  const Dbm a{-92.3};
  const Dbm b{-95.7};
  const double linear =
      std::pow(10.0, a.value() / 10.0) + std::pow(10.0, b.value() / 10.0);
  const Dbm expected{10.0 * std::log10(linear)};
  EXPECT_NEAR(combine_powers_dbm(a, b).value(), expected.value(), 1e-12);
}

// ---- comparisons ---------------------------------------------------------

TEST(Units, ComparisonsAreOrderedWithinAUnit) {
  static_assert(Dbm{-120.0} < Dbm{-80.0});
  static_assert(Hz{125e3} < Hz{250e3});
  static_assert(Seconds{1.0} >= Seconds{1.0});
  static_assert(Db{3.0} != Db{6.0});
  EXPECT_LT(Meters{10.0}, Meters{20.0});
  EXPECT_GE(Dbm{-80.0}, Dbm{-80.0});
}

TEST(Units, StreamInsertionPrintsRawValue) {
  std::ostringstream os;
  os << Dbm{-117.5} << " " << Hz{868.1e6};
  EXPECT_EQ(os.str(), "-117.5 8.681e+08");
}

// ---- noise floor keyed off the named bandwidth constants ----------------

TEST(Units, NoiseFloorIsConstexprForNamedBandwidths) {
  constexpr Dbm nf125 = noise_floor_dbm(kLoRaBandwidth125k);
  constexpr Dbm nf250 = noise_floor_dbm(kLoRaBandwidth250k);
  constexpr Dbm nf500 = noise_floor_dbm(kLoRaBandwidth500k);
  static_assert(nf125 < nf250 && nf250 < nf500);  // wider band, more noise
  EXPECT_NEAR(nf125.value(), -117.03, 1e-6);
  // Doubling the bandwidth raises the floor by ~3 dB.
  EXPECT_NEAR((nf250 - nf125).value(), 3.01, 1e-6);
  EXPECT_NEAR((nf500 - nf250).value(), 3.01, 1e-6);
}

}  // namespace
}  // namespace alphawan
