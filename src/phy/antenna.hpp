// Antenna gain patterns. Used by the Fig. 7 experiment: a 12 dBi
// directional antenna attenuates off-axis packets by 14-40 dB, yet LoRa's
// sub-noise sensitivity means those packets are still received — which is
// why Strategy 6 (directional sectorization) fails to relieve decoder
// contention.
#pragma once

#include "common/types.hpp"

namespace alphawan {

class Antenna {
 public:
  virtual ~Antenna() = default;
  // Gain (dBi) toward azimuth `angle` (radians) relative to boresight.
  [[nodiscard]] virtual Db gain(double angle) const = 0;
};

class OmniAntenna final : public Antenna {
 public:
  explicit OmniAntenna(Db gain_dbi = Db{2.0}) : gain_dbi_(gain_dbi) {}
  [[nodiscard]] Db gain(double /*angle*/) const override { return gain_dbi_; }

 private:
  Db gain_dbi_;
};

// Parametric sector antenna modeled on the RAK 12 dBi panel: full gain
// within the main lobe, smoothly rolling off to a back-lobe floor 14-40 dB
// below peak depending on angle.
class DirectionalAntenna final : public Antenna {
 public:
  struct Config {
    Db peak_gain_dbi{12.0};
    double beamwidth_rad = 0.52;    // ~30 degrees half-power beamwidth
    Db front_to_back_db{40.0};     // max attenuation directly behind
    Db first_sidelobe_db{14.0};    // attenuation just outside main lobe
  };

  DirectionalAntenna() : config_{} {}
  explicit DirectionalAntenna(Config config) : config_(config) {}
  [[nodiscard]] Db gain(double angle) const override;
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace alphawan
