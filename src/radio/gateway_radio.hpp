// The COTS gateway radio model: front-end chains with frequency
// selectivity, SNR-based preamble detection, FCFS dispatch into a finite
// decoder pool, interference-aware decoding, and post-decode sync-word
// filtering. Reproduces the reception pipeline of paper Appendix C.
//
// The radio processes a *batch* of transmissions (one simulation window):
// internally it is event-ordered (lock-on sorted), so batch processing is
// exact as long as no packet straddles the window boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "radio/capture_policy.hpp"
#include "radio/decoder_pool.hpp"
#include "radio/dispatcher.hpp"
#include "radio/profiles.hpp"
#include "radio/rx_chain.hpp"
#include "radio/transmission.hpp"

namespace alphawan {

// Extra rejection (dB) applied to a *misaligned* interferer using a
// different spreading factor: partial-band energy of an orthogonal chirp is
// further suppressed by despreading. Same-SF misaligned energy keeps some
// chirp structure and is only suppressed by the channel filter. This split
// is what makes non-orthogonal DRs on overlapping channels measurably worse
// (paper Figs. 8 and 16).
inline constexpr Db kCrossSfMisalignedRejection{12.0};

class GatewayRadio {
 public:
  GatewayRadio(GatewayProfile profile, NetworkId network,
               std::uint16_t sync_word);

  // Configure the operating channels. Throws std::invalid_argument if more
  // channels than data Rx chains or if the frequency span exceeds the
  // radio bandwidth B_j (paper's gateway radio constraints, Sec. 4.3.1).
  void configure_channels(std::vector<Channel> channels);

  [[nodiscard]] const GatewayProfile& profile() const { return profile_; }
  [[nodiscard]] const std::vector<RxChain>& chains() const { return chains_; }
  [[nodiscard]] NetworkId network() const { return network_; }
  [[nodiscard]] std::uint16_t sync_word() const { return sync_word_; }

  // Attach a correctness observer: notified of window starts, every FCFS
  // dispatch, and (via the pool) every decoder acquire/release/refusal.
  // Pass nullptr to detach.
  void set_observer(SimObserver* observer);

  // Attach a capture policy invoked at the end of process() (nullptr =
  // stock pipeline only, bit-identical to the pre-policy code path). The
  // policy is not owned; the caller keeps it alive across windows. After
  // resolve(), process() verifies the policy only rewrote outcomes whose
  // packet already held a decoder (consumed_decoder) and throws
  // std::logic_error otherwise — see capture_policy.hpp.
  void set_capture_policy(const CapturePolicy* policy);
  [[nodiscard]] const CapturePolicy* capture_policy() const {
    return capture_policy_;
  }

  // Process one window of transmissions observed at this gateway. Events
  // may arrive unsorted. Returns one outcome per input event (same order).
  [[nodiscard]] std::vector<RxOutcome> process(
      const std::vector<RxEvent>& events);

 private:
  // Reusable per-window working storage (docs/performance.md): allocated
  // once, capacity retained across windows, so a steady-state window does
  // no per-window heap allocation inside process(). The flat sorted bucket
  // index replaces the per-window std::map frequency buckets.
  struct RxScratch {
    std::vector<DispatchEntry> queue;
    std::vector<int> chain_of;          // event -> rx chain (-1 = rejected)
    std::vector<Seconds> end_of;        // cached tx.end() per event
    std::vector<double> lin_power;      // cached dBm->linear rx power
    std::vector<std::size_t> decoding;  // event indices holding a decoder
    // Hot per-event fields mirrored into flat arrays in phase 1, so the
    // interferer scan reads small contiguous vectors instead of doing one
    // wide scattered RxEvent load per candidate pair.
    std::vector<Seconds> start_of;
    std::vector<Channel> channel_of;
    std::vector<Dbm> power_of;
    std::vector<SpreadingFactor> sf_of;
    std::vector<NetworkId> net_of;
    struct Bucket {
      std::int64_t id = 0;      // coarse frequency bucket
      std::uint32_t begin = 0;  // [begin, end) range into `order`
      std::uint32_t end = 0;
      Seconds max_duration{0.0};
      // When every event in the bucket shares one exact channel, a single
      // overlap test against the wanted chain covers the whole bucket —
      // and zero overlap skips its entire scan range.
      bool uniform = true;
      Channel channel{};
    };
    std::vector<std::int64_t> bucket_id;     // per-event coarse bucket
    std::vector<std::uint32_t> bucket_count; // counting-sort workspace
    std::vector<std::pair<std::int64_t, std::uint32_t>> keyed;
    std::vector<std::uint32_t> order;  // event indices grouped by bucket
    // Per-bucket (start, index) staging for the start-time sort.
    std::vector<std::pair<Seconds, std::uint32_t>> start_idx;
    std::vector<Bucket> buckets;       // sorted by bucket id
    struct ChainMemo {
      Hz center{};
      Hz bandwidth{};
      int chain = -1;
    };
    // best_chain result per distinct packet channel; valid until the
    // channel set changes (cleared by configure_channels).
    std::vector<ChainMemo> chain_memo;
    struct AirtimeMemo {
      TxParams params{};
      std::uint32_t payload_bytes = 0;
      Seconds airtime{0.0};
      Seconds preamble{0.0};
    };
    // time_on_air/preamble_duration per distinct (params, payload): a
    // window draws from a handful of radio settings, so the full airtime
    // formula runs once per setting instead of once per event.
    std::vector<AirtimeMemo> airtime_memo;
    // Pre-resolve disposition snapshot for the capture-policy budget check
    // (only filled when a policy is installed).
    std::vector<RxDisposition> pre_policy;
  };

  // Memoized best_chain: the chain index for a packet channel, or -1 when
  // every chain's filter truncates it.
  [[nodiscard]] int chain_for(const Channel& packet_channel);

  // Memoized airtime terms for one transmission's radio settings.
  [[nodiscard]] const RxScratch::AirtimeMemo& airtime_for(
      const Transmission& tx);

  GatewayProfile profile_;
  NetworkId network_;
  std::uint16_t sync_word_;
  std::vector<RxChain> chains_;
  DecoderPool pool_;
  SimObserver* observer_ = nullptr;
  const CapturePolicy* capture_policy_ = nullptr;
  RxScratch scratch_;
};

}  // namespace alphawan
