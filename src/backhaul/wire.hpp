// Binary wire codec for backhaul messages: little-endian primitives,
// length-delimited strings, and length-prefixed frames, with explicit
// bounds checking on the read side (never trust the peer).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace alphawan {

class BufferWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(const std::string& s);  // u32 length + bytes
  void bytes(std::span<const std::uint8_t> data);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Reads fail-soft: each accessor returns nullopt once the buffer is
// exhausted or a length prefix is inconsistent, and the reader latches
// into an error state.
class BufferReader {
 public:
  explicit BufferReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::optional<std::uint8_t> u8();
  [[nodiscard]] std::optional<std::uint16_t> u16();
  [[nodiscard]] std::optional<std::uint32_t> u32();
  [[nodiscard]] std::optional<std::uint64_t> u64();
  [[nodiscard]] std::optional<double> f64();
  [[nodiscard]] std::optional<std::string> str();

  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  [[nodiscard]] bool take(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// CRC-32 (IEEE 802.3 polynomial, reflected). Detects every single-bit
// error and all burst errors up to 32 bits, which is what the payload
// integrity trailer below relies on.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

// Payload integrity trailer: protocol payloads travel as [body][u32 CRC].
// The backhaul can truncate or bit-corrupt messages in flight (see
// backhaul/faults.hpp); the trailer turns silent corruption into a clean
// decode failure that the sender's retry path handles.
[[nodiscard]] std::vector<std::uint8_t> seal_payload(
    std::vector<std::uint8_t> body);
// Verifies and strips the trailer. Returns nullopt when the payload is too
// short to carry a trailer or the CRC does not match the body.
[[nodiscard]] std::optional<std::span<const std::uint8_t>> open_payload(
    std::span<const std::uint8_t> payload);

// Length-prefixed framing for a byte stream: [u32 length][payload].
// Max frame size guards against corrupt prefixes.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

[[nodiscard]] std::vector<std::uint8_t> frame_message(
    std::span<const std::uint8_t> payload);

// Incremental stream decoder: feed received bytes, pop complete frames.
class FrameDecoder {
 public:
  // Returns false (and poisons the decoder) on an oversized length prefix.
  bool feed(std::span<const std::uint8_t> bytes);
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> next();
  [[nodiscard]] bool poisoned() const { return poisoned_; }

 private:
  std::vector<std::uint8_t> buf_;
  bool poisoned_ = false;
};

}  // namespace alphawan
