// Figure 14 reproduction: partial adoption — four coexisting networks,
// 0..4 of which join AlphaWAN's spectrum sharing; the rest stay on legacy
// standard plans. Paper: adopters roughly double their capacity, legacy
// networks improve slightly (less contention on the standard channels),
// and everyone wins once all four coordinate.
#include "harness.hpp"

using namespace alphawan;
using namespace alphawan::bench;

int main() {
  print_header(
      "Fig. 14 — per-network users served vs number of AlphaWAN adopters\n"
      "(4 coexisting networks, 1.6 MHz, 3 GWs + 24 users each)");
  std::printf("  %-10s %-10s %-10s %-10s %-10s   %s\n", "adopters", "net1",
              "net2", "net3", "net4", "(net3/net4 adopt first)");

  for (int adopters = 0; adopters <= 4; ++adopters) {
    Deployment deployment{Region{Meters{600}, Meters{600}}, spectrum_1m6(), quiet_channel()};
    Rng rng(71);
    std::vector<Network*> nets;
    std::vector<std::vector<EndNode*>> net_nodes;
    for (int n = 0; n < 4; ++n) {
      auto& net = deployment.add_network("op" + std::to_string(n + 1));
      place_clustered_gateways(deployment, net, 3);
      // Staggered pair sets and ring radii: real coexisting operators use
      // partially-overlapping settings and sit at different path losses.
      net_nodes.push_back(add_orthogonal_users(deployment, net, 24, rng,
                                               /*pair_offset=*/n * 12,
                                               /*radius=*/110.0 + 35.0 * n));
      nets.push_back(&net);
    }
    // Legacy networks: homogeneous standard plans.
    for (auto* net : nets) {
      std::vector<GatewayId> ids;
      for (const auto& gw : net->gateways()) ids.push_back(gw.id());
      net->apply_config(
          homogeneous_standard_config(deployment.spectrum(), ids, true));
    }
    // The last `adopters` networks join AlphaWAN (paper: networks 3 and 4
    // adopt first).
    // base_offset keeps adopters misaligned from the legacy standard grid.
    MasterNode master(MasterConfig{deployment.spectrum(), 0.4,
                                   std::max(adopters, 1), Hz{37.5e3}});
    LatencyModel latency{LatencyModelConfig{}, 3};
    for (int n = 4 - adopters; n < 4; ++n) {
      AlphaWanConfig cfg;
      cfg.strategy8_spectrum_sharing = true;
      cfg.planner.ga.population = 24;
      cfg.planner.ga.generations = 40;
      AlphaWanController controller(cfg, latency);
      const auto links = oracle_link_estimates(deployment, *nets[n]);
      (void)controller.upgrade(*nets[n], deployment.spectrum(), links,
                               uniform_traffic(*nets[n]), &master);
    }
    // Joint service session.
    std::vector<EndNode*> all;
    for (int i = 0; i < 24; ++i) {
      for (auto& nodes : net_nodes) all.push_back(nodes[i]);
    }
    const auto served = run_service_session(deployment, all, 10, 5);
    std::printf("  %-10d", adopters);
    for (auto* net : nets) {
      const auto it = served.find(net->id());
      std::printf(" %-10zu", it == served.end() ? 0 : it->second.size());
    }
    std::printf("\n");
  }
  print_note(
      "paper: 0 adopters -> ~4 users each; 2 adopters -> adopters ~2x,\n"
      "  legacy slightly up; 4 adopters -> all networks high");
  return 0;
}
