#include "backhaul/latency_model.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

TEST(LatencyModel, LanTransferIsRttPlusSerialization) {
  LatencyModel model;
  const auto& cfg = model.config();
  EXPECT_DOUBLE_EQ(model.lan_transfer(0).value(), cfg.lan_rtt.value());
  const std::size_t mb = 1'000'000;
  EXPECT_DOUBLE_EQ(
      model.lan_transfer(mb).value(),
      cfg.lan_rtt.value() + static_cast<double>(mb) / cfg.lan_bytes_per_second);
  EXPECT_GT(model.lan_transfer(2 * mb), model.lan_transfer(mb));
}

TEST(LatencyModel, WanLatencyIsPositiveAndNearMean) {
  LatencyModel model;
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const Seconds s = model.wan_one_way();
    ASSERT_GE(s, Seconds{1e-3});  // clamped floor
    sum += s.value();
  }
  // Fig. 17: operator <-> Master one-way ~55 ms.
  EXPECT_NEAR(sum / n, model.config().wan_one_way_mean.value(), 0.002);
}

TEST(LatencyModel, MasterRoundTripCoversTwoLegs) {
  LatencyModel model;
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const Seconds rtt = model.master_round_trip();
    ASSERT_GT(rtt, Seconds{0.0});
    sum += rtt.value();
  }
  EXPECT_NEAR(sum / n, 2.0 * model.config().wan_one_way_mean.value(), 0.004);
}

TEST(LatencyModel, RebootMatchesFig17Measurement) {
  LatencyModel model;
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const Seconds reboot = model.gateway_reboot();
    ASSERT_GE(reboot, Seconds{0.5});  // clamped floor
    sum += reboot.value();
  }
  EXPECT_NEAR(sum / n, model.config().reboot_mean.value(), 0.05);
}

TEST(LatencyModel, ConfigPushAddsBaseCost) {
  LatencyModel model;
  EXPECT_DOUBLE_EQ(
      model.config_push(512).value(),
      (model.config().config_push_base + model.lan_transfer(512)).value());
}

TEST(LatencyModel, SameSeedReproducesSequence) {
  LatencyModel a(LatencyModelConfig{}, 99);
  LatencyModel b(LatencyModelConfig{}, 99);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.wan_one_way().value(), b.wan_one_way().value());
    EXPECT_DOUBLE_EQ(a.gateway_reboot().value(), b.gateway_reboot().value());
  }
}

}  // namespace
}  // namespace alphawan
