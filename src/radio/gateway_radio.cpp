#include "radio/gateway_radio.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "phy/capture.hpp"
#include "phy/overlap.hpp"
#include "phy/sensitivity.hpp"
#include "radio/detector.hpp"

namespace alphawan {
namespace {

double dbm_to_lin(Dbm p) { return std::pow(10.0, p.value() / 10.0); }
Dbm lin_to_dbm(double lin) { return Dbm{10.0 * std::log10(lin)}; }

// The per-packet noise-floor conversion is a pow() on a three-valued input;
// memoize the three LoRa bandwidths (anything else still reaches
// noise_floor_dbm's hard model error).
double noise_floor_lin(Hz bandwidth) {
  static const double lin125 = dbm_to_lin(noise_floor_dbm(kLoRaBandwidth125k));
  static const double lin250 = dbm_to_lin(noise_floor_dbm(kLoRaBandwidth250k));
  static const double lin500 = dbm_to_lin(noise_floor_dbm(kLoRaBandwidth500k));
  if (bandwidth == kLoRaBandwidth125k) return lin125;
  if (bandwidth == kLoRaBandwidth250k) return lin250;
  if (bandwidth == kLoRaBandwidth500k) return lin500;
  return dbm_to_lin(noise_floor_dbm(bandwidth));
}

}  // namespace

GatewayRadio::GatewayRadio(GatewayProfile profile, NetworkId network,
                           std::uint16_t sync_word)
    : profile_(profile),
      network_(network),
      sync_word_(sync_word),
      pool_(static_cast<std::size_t>(profile.decoders)) {}

void GatewayRadio::configure_channels(std::vector<Channel> channels) {
  if (channels.empty()) {
    throw std::invalid_argument("GatewayRadio: empty channel set");
  }
  if (static_cast<int>(channels.size()) > profile_.data_rx_chains) {
    throw std::invalid_argument(
        "GatewayRadio: more channels than Rx chains (P_j violated)");
  }
  auto [lo, hi] = std::minmax_element(
      channels.begin(), channels.end(),
      [](const Channel& a, const Channel& b) { return a.center < b.center; });
  if (hi->high() - lo->low() > profile_.rx_spectrum + Hz{1.0}) {
    throw std::invalid_argument(
        "GatewayRadio: channel span exceeds radio bandwidth (B_j violated)");
  }
  chains_.clear();
  chains_.reserve(channels.size());
  for (const auto& ch : channels) chains_.push_back(RxChain{ch});
  scratch_.chain_memo.clear();
}

void GatewayRadio::set_observer(SimObserver* observer) {
  observer_ = observer;
  pool_.set_observer(observer);
}

void GatewayRadio::set_capture_policy(const CapturePolicy* policy) {
  capture_policy_ = policy;
}

int GatewayRadio::chain_for(const Channel& packet_channel) {
  for (const auto& memo : scratch_.chain_memo) {
    if (memo.center == packet_channel.center &&
        memo.bandwidth == packet_channel.bandwidth) {
      return memo.chain;
    }
  }
  const auto chain = best_chain(chains_, packet_channel);
  const int index = chain ? static_cast<int>(*chain) : -1;
  scratch_.chain_memo.push_back(RxScratch::ChainMemo{
      packet_channel.center, packet_channel.bandwidth, index});
  return index;
}

const GatewayRadio::RxScratch::AirtimeMemo& GatewayRadio::airtime_for(
    const Transmission& tx) {
  for (const auto& memo : scratch_.airtime_memo) {
    if (memo.payload_bytes == tx.payload_bytes && memo.params == tx.params) {
      return memo;
    }
  }
  scratch_.airtime_memo.push_back(RxScratch::AirtimeMemo{
      tx.params, tx.payload_bytes, time_on_air(tx.params, tx.payload_bytes),
      preamble_duration(tx.params)});
  return scratch_.airtime_memo.back();
}

std::vector<RxOutcome> GatewayRadio::process(
    const std::vector<RxEvent>& events) {
  std::vector<RxOutcome> outcomes(events.size());
  pool_.reset();
  if (observer_ != nullptr) observer_->on_radio_window_begin();
  auto& sc = scratch_;

  // Phase 1: front-end + detection per event. Also fills the per-event
  // caches phase 3 leans on: tx.end() (a full airtime recomputation) and
  // the linear rx power (a pow), each otherwise paid once per *candidate
  // pair* in the interferer scan.
  sc.queue.clear();
  sc.queue.reserve(events.size());
  sc.chain_of.assign(events.size(), -1);
  sc.end_of.resize(events.size());
  sc.lin_power.resize(events.size());
  sc.start_of.resize(events.size());
  sc.channel_of.resize(events.size());
  sc.power_of.resize(events.size());
  sc.sf_of.resize(events.size());
  sc.net_of.resize(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& ev = events[i];
    auto& out = outcomes[i];
    // airtime_for memoizes the airtime formula per radio setting; the sums
    // below are term-for-term the ones tx.end() / tx.lock_on() compute.
    const auto& airtime = airtime_for(ev.tx);
    sc.end_of[i] = ev.tx.start + airtime.airtime;
    sc.lin_power[i] = dbm_to_lin(ev.rx_power);
    sc.start_of[i] = ev.tx.start;
    sc.channel_of[i] = ev.tx.channel;
    sc.power_of[i] = ev.rx_power;
    sc.sf_of[i] = ev.tx.params.sf;
    sc.net_of[i] = ev.tx.network;
    out.packet = ev.tx.id;
    out.node = ev.tx.node;
    out.network = ev.tx.network;
    const int chain = chain_for(ev.tx.channel);
    if (chain < 0) {
      out.disposition = RxDisposition::kRejectedFrontEnd;
      continue;
    }
    sc.chain_of[i] = chain;
    out.chain_channel = chain;
    out.snr = packet_snr(ev.rx_power, ev.tx.channel.bandwidth);
    // Inline detect(): the lock-on instant comes from the memoized
    // preamble duration instead of a fresh preamble_duration call.
    if (out.snr < demod_snr_threshold(ev.tx.params.sf) + kDetectionMargin) {
      out.disposition = RxDisposition::kNotDetected;
      continue;
    }
    sc.queue.push_back(DispatchEntry{i, ev.tx.start + airtime.preamble,
                                     sc.end_of[i], ev.tx.network, ev.tx.id});
  }

  // Phase 2: FCFS dispatch into the decoder pool.
  sort_fcfs(sc.queue);
  sc.decoding.clear();
  sc.decoding.reserve(sc.queue.size());
  for (const auto& entry : sc.queue) {
    if (observer_ != nullptr) {
      observer_->on_dispatch(events[entry.event_index].tx.start, entry.lock_on,
                             entry.packet);
    }
    const DispatchResult result = dispatch(pool_, entry);
    auto& out = outcomes[entry.event_index];
    if (!result.acquired) {
      out.disposition = RxDisposition::kDroppedDecoderBusy;
      out.foreign_among_occupants = result.foreign_among_occupants;
      continue;
    }
    sc.decoding.push_back(entry.event_index);
  }

  // Phase 3: decode each packet that holds a decoder, accounting for
  // interference from *all* transmissions in the air (including ones the
  // front-end rejected or that were never detected — their RF energy is
  // still present). Events are bucketed by coarse frequency (interference
  // requires spectral overlap) and sorted by start time within a bucket,
  // bounding the interferer scan to plausible overlappers.
  //
  // The bucket index is flat: sorting (bucket, event index) pairs groups
  // each bucket's events in ascending index order — the same initial
  // sequence the map-based code fed to the identical start-time sort, so
  // the per-bucket permutation (and thus every floating-point accumulation
  // order below) is unchanged.
  constexpr auto bucket_of = [](Hz center) {
    return static_cast<std::int64_t>(center / kChannelSpacing);
  };
  sc.order.resize(events.size());
  sc.buckets.clear();
  if (!events.empty()) {
    sc.bucket_id.resize(events.size());
    std::int64_t lo = bucket_of(sc.channel_of[0].center);
    std::int64_t hi = lo;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const std::int64_t b = bucket_of(sc.channel_of[i].center);
      sc.bucket_id[i] = b;
      lo = std::min(lo, b);
      hi = std::max(hi, b);
    }
    const std::int64_t span = hi - lo + 1;
    if (span <= static_cast<std::int64_t>(4 * events.size() + 64)) {
      // Stable counting sort over the compact id range: within a bucket,
      // ascending scatter order keeps indices ascending — the exact order
      // sorting (bucket, index) pairs produces — without the comparison
      // sort.
      sc.bucket_count.assign(static_cast<std::size_t>(span), 0);
      for (std::size_t i = 0; i < events.size(); ++i) {
        ++sc.bucket_count[static_cast<std::size_t>(sc.bucket_id[i] - lo)];
      }
      std::uint32_t running = 0;
      for (auto& c : sc.bucket_count) {
        const std::uint32_t count = c;
        c = running;
        running += count;
      }
      for (std::size_t i = 0; i < events.size(); ++i) {
        auto& cursor =
            sc.bucket_count[static_cast<std::size_t>(sc.bucket_id[i] - lo)];
        sc.order[cursor++] = static_cast<std::uint32_t>(i);
      }
      // Post-scatter, bucket_count[b] is the end of bucket b (== the start
      // of bucket b + 1 before the scatter).
      for (std::int64_t b = 0; b < span; ++b) {
        const std::uint32_t begin =
            b == 0 ? 0 : sc.bucket_count[static_cast<std::size_t>(b - 1)];
        const std::uint32_t end =
            sc.bucket_count[static_cast<std::size_t>(b)];
        if (end > begin) {
          sc.buckets.push_back(
              RxScratch::Bucket{lo + b, begin, end, Seconds{0.0}});
        }
      }
    } else {
      // Pathological center spread (sparse ids): fall back to the pair
      // sort, which produces the identical grouping.
      sc.keyed.clear();
      sc.keyed.reserve(events.size());
      for (std::size_t i = 0; i < events.size(); ++i) {
        sc.keyed.emplace_back(sc.bucket_id[i], static_cast<std::uint32_t>(i));
      }
      std::sort(sc.keyed.begin(), sc.keyed.end());
      for (std::uint32_t pos = 0; pos < sc.keyed.size(); ++pos) {
        const auto [bucket, index] = sc.keyed[pos];
        if (sc.buckets.empty() || sc.buckets.back().id != bucket) {
          sc.buckets.push_back(
              RxScratch::Bucket{bucket, pos, pos, Seconds{0.0}});
        }
        sc.order[pos] = index;
        sc.buckets.back().end = pos + 1;
      }
    }
  }
  for (auto& b : sc.buckets) {
    const auto begin = sc.order.begin() + b.begin;
    const auto end = sc.order.begin() + b.end;
    // Sort each bucket's group by start time — through a contiguous
    // (start, index) staging array, because comparing via events[idx] costs
    // a scattered RxEvent load per comparison. A start-only comparator sees
    // exactly the comparison outcomes the index comparator would, so the
    // resulting index permutation is identical to sorting the indices
    // directly (bit-identity of every downstream accumulation order).
    auto& staged = sc.start_idx;
    staged.clear();
    bool sorted = true;
    bool strictly = true;
    for (auto it = begin; it != end; ++it) {
      const Seconds start = sc.start_of[*it];
      if (!staged.empty()) {
        if (start < staged.back().first) sorted = strictly = false;
        if (!(staged.back().first < start)) strictly = false;
      }
      staged.emplace_back(start, *it);
    }
    // Skip the sort when it provably cannot move anything: any comparison
    // sort is the identity on strictly sorted input, and libstdc++'s
    // std::sort uses pure insertion sort below its 16-element threshold,
    // which never reorders a sorted-with-ties sequence.
    const bool identity =
        strictly || (sorted && staged.size() <= 16);
    if (!identity) {
      std::sort(staged.begin(), staged.end(),
                [](const std::pair<Seconds, std::uint32_t>& a,
                   const std::pair<Seconds, std::uint32_t>& c) {
                  return a.first < c.first;
                });
      auto out = begin;
      for (const auto& [start, index] : staged) *out++ = index;
    }
    Seconds longest{0.0};
    b.channel = sc.channel_of[*begin];
    b.uniform = true;
    for (auto it = begin; it != end; ++it) {
      longest = std::max(longest, sc.end_of[*it] - sc.start_of[*it]);
      const Channel& ch = sc.channel_of[*it];
      if (!(ch.center == b.channel.center) ||
          !(ch.bandwidth == b.channel.bandwidth)) {
        b.uniform = false;
      }
    }
    b.max_duration = longest;
  }

  for (const std::size_t i : sc.decoding) {
    const auto& ev = events[i];
    auto& out = outcomes[i];
    const Channel& rx_ch =
        chains_[static_cast<std::size_t>(sc.chain_of[i])].channel;

    const double noise_lin = noise_floor_lin(ev.tx.channel.bandwidth);
    double misaligned_intf_lin = 0.0;
    double aligned_same_sf_lin = 0.0;
    bool collided = false;
    bool foreign_fatal = false;
    Dbm strongest_same_sf{-400.0};
    const Seconds ev_start = sc.start_of[i];
    const Seconds ev_end = sc.end_of[i];
    const Dbm ev_power = sc.power_of[i];
    const SpreadingFactor ev_sf = sc.sf_of[i];
    const NetworkId ev_net = sc.net_of[i];

    // Candidates: same or adjacent frequency bucket, starting within
    // [ev.start - bucket_longest, ev.end). The scan reads only the flat
    // per-event arrays filled in phase 1 — never the RxEvent structs.
    const std::int64_t center_bucket = bucket_of(ev.tx.channel.center);
    for (std::int64_t bucket = center_bucket - 1;
         bucket <= center_bucket + 1; ++bucket) {
      const auto bucket_it = std::lower_bound(
          sc.buckets.begin(), sc.buckets.end(), bucket,
          [](const RxScratch::Bucket& b, std::int64_t id) {
            return b.id < id;
          });
      if (bucket_it == sc.buckets.end() || bucket_it->id != bucket) continue;
      // Uniform-channel bucket: one overlap test covers every event in it.
      // Zero overlap means no event in the bucket can couple into this
      // chain — skip the whole range (adjacent grid channels, typically).
      const bool uniform = bucket_it->uniform;
      double rho_uniform = 0.0;
      if (uniform) {
        rho_uniform = overlap_ratio(bucket_it->channel, rx_ch);
        if (rho_uniform <= 0.0) continue;
      }
      const Seconds lookback = bucket_it->max_duration;
      const auto indices_begin = sc.order.begin() + bucket_it->begin;
      const auto indices_end = sc.order.begin() + bucket_it->end;
      const auto first = std::lower_bound(
          indices_begin, indices_end, ev_start - lookback,
          [&](std::uint32_t idx, Seconds t) {
            return sc.start_of[idx] < t;
          });
    for (auto it = first; it != indices_end; ++it) {
      const std::size_t j = *it;
      const Seconds j_start = sc.start_of[j];
      if (j_start >= ev_end) break;
      if (j == i) continue;
      if (!(ev_start < sc.end_of[j] && j_start < ev_end)) continue;
      const double rho =
          uniform ? rho_uniform : overlap_ratio(sc.channel_of[j], rx_ch);
      if (rho <= 0.0) continue;
      const bool same_sf = sc.sf_of[j] == ev_sf;
      if (rho >= kDetectOverlapThreshold) {
        // Co-channel interferer: SF capture matrix applies.
        if (same_sf) {
          aligned_same_sf_lin += sc.lin_power[j];
          if (sc.power_of[j] > strongest_same_sf) {
            strongest_same_sf = sc.power_of[j];
            // Attribute a potential fatal collision to this interferer.
          }
          if (ev_power - sc.power_of[j] <
              capture_sir_threshold(ev_sf, sc.sf_of[j])) {
            collided = true;
            foreign_fatal = sc.net_of[j] != ev_net;
          }
        } else if (ev_power - sc.power_of[j] <
                   capture_sir_threshold(ev_sf, sc.sf_of[j])) {
          collided = true;
          foreign_fatal = sc.net_of[j] != ev_net;
        }
      } else {
        // Misaligned interferer: filter-truncated energy acts as noise.
        Dbm eff = effective_interference_dbm(sc.power_of[j], sc.channel_of[j],
                                             rx_ch);
        if (!same_sf) eff -= kCrossSfMisalignedRejection;
        if (eff > Dbm{-250.0}) misaligned_intf_lin += dbm_to_lin(eff);
      }
    }
    }

    // Combined same-SF co-channel power must also satisfy capture.
    if (!collided && aligned_same_sf_lin > 0.0) {
      const Dbm combined = lin_to_dbm(aligned_same_sf_lin);
      if (ev.rx_power - combined <
          capture_sir_threshold(ev.tx.params.sf, ev.tx.params.sf)) {
        collided = true;
      }
    }

    if (collided) {
      out.disposition = RxDisposition::kDroppedCollision;
      out.foreign_interferer = foreign_fatal;
      continue;
    }

    const Db snr_eff =
        ev.rx_power - lin_to_dbm(noise_lin + misaligned_intf_lin);
    if (snr_eff < demod_snr_threshold(ev.tx.params.sf)) {
      out.disposition = RxDisposition::kDroppedLowSnr;
      continue;
    }

    out.disposition = ev.tx.sync_word == sync_word_
                          ? RxDisposition::kDelivered
                          : RxDisposition::kDecodedForeign;
  }

  // Phase 4 (optional): pluggable capture resolution. The policy may
  // rescue packets the stock demodulator lost to collisions, but the
  // decoder budget is binding: only outcomes whose packet already held a
  // decoder may change, and they must stay decoder-consuming — a policy
  // cannot un-busy kDroppedDecoderBusy or decode an undetected packet.
  if (capture_policy_ != nullptr) {
    sc.pre_policy.resize(outcomes.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      sc.pre_policy[i] = outcomes[i].disposition;
    }
    capture_policy_->resolve(
        CaptureContext{events, sync_word_, profile_.decoders}, outcomes);
    if (outcomes.size() != events.size()) {
      throw std::logic_error(
          "CapturePolicy: outcome count changed during resolve");
    }
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const RxDisposition before = sc.pre_policy[i];
      const RxDisposition after = outcomes[i].disposition;
      if (after == before) continue;
      if (!consumed_decoder(before) || !consumed_decoder(after)) {
        throw std::logic_error(
            "CapturePolicy violated the decoder budget: rewrote an outcome "
            "that did not hold a decoder (or released one it held)");
      }
    }
  }
  return outcomes;
}

}  // namespace alphawan
