// Baseline: CIC-style concurrent interference cancellation (Shahid et al.,
// SIGCOMM'21). A CIC receiver separates up to K time-overlapping
// same-channel transmissions using sub-band spectra, recovering packets a
// stock demodulator loses to collisions. Per the paper's methodology
// (Sec. 5.2.1), CIC is still subject to the COTS decoder budget: resolving
// a collision does not conjure a free decoder, so decoder-contention drops
// stay dropped.
#pragma once

#include <memory>

#include "radio/capture_policy.hpp"
#include "sim/scenario.hpp"

namespace alphawan {

struct CicOptions {
  // Maximum simultaneous same-channel transmissions CIC can disentangle.
  int max_resolvable = 3;
  // Minimum SNR headroom above the demod threshold CIC needs to separate
  // sub-band spectra reliably.
  Db snr_headroom{1.0};
};

// Registry scheme "cic" (capture side): promotes collision drops back to
// receptions when CIC could have resolved them.
class CicCapturePolicy final : public CapturePolicy {
 public:
  explicit CicCapturePolicy(CicOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string_view name() const override { return "cic"; }
  void resolve(const CaptureContext& context,
               std::vector<RxOutcome>& outcomes) const override;

  [[nodiscard]] const CicOptions& options() const { return options_; }

 private:
  CicOptions options_;
};

// Deprecated ScenarioRunner post-processor entry point, kept one release
// as a shim: prefer RunOptions::capture_policy with a CicCapturePolicy
// (or the registry's "cic" scheme), which resolves inside
// GatewayRadio::process. Same logic, bit-identical outcomes.
[[deprecated(
    "set RunOptions::capture_policy to a CicCapturePolicy "
    "(baselines/cic.hpp) or use the baseline registry")]]
[[nodiscard]] inline RxPostProcessor make_cic_processor(
    CicOptions options = CicOptions{}) {
  auto policy = std::make_shared<CicCapturePolicy>(options);
  return [policy](const Gateway& gw, const std::vector<RxEvent>& events,
                  std::vector<RxOutcome>& outcomes) {
    const CaptureColumns columns(events);
    policy->resolve(
        columns.context(gw.radio().sync_word(), gw.profile().decoders),
        outcomes);
  };
}

}  // namespace alphawan
