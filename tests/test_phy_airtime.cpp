#include "phy/airtime.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace alphawan {
namespace {

TEST(Airtime, SymbolDuration) {
  EXPECT_NEAR(symbol_duration(SpreadingFactor::kSF7, Hz{125e3}).value(),
              1.024e-3, 1e-9);
  EXPECT_NEAR(symbol_duration(SpreadingFactor::kSF12, Hz{125e3}).value(),
              32.768e-3, 1e-9);
  EXPECT_NEAR(symbol_duration(SpreadingFactor::kSF7, Hz{250e3}).value(),
              0.512e-3, 1e-9);
}

TEST(Airtime, PreambleDuration) {
  TxParams p;
  p.sf = SpreadingFactor::kSF7;
  // (8 + 4.25) * 1.024 ms = 12.544 ms
  EXPECT_NEAR(preamble_duration(p).value(), 12.544e-3, 1e-7);
}

TEST(Airtime, LowDataRateOptimizeOnlyForSlowSymbols) {
  EXPECT_FALSE(low_data_rate_optimize(SpreadingFactor::kSF10, Hz{125e3}));
  EXPECT_TRUE(low_data_rate_optimize(SpreadingFactor::kSF11, Hz{125e3}));
  EXPECT_TRUE(low_data_rate_optimize(SpreadingFactor::kSF12, Hz{125e3}));
  EXPECT_FALSE(low_data_rate_optimize(SpreadingFactor::kSF12, Hz{500e3}));
}

TEST(Airtime, KnownReferenceValueSf7) {
  // Semtech formula: SF7/125k, CR4/5, explicit header, CRC, 10-byte
  // payload -> 8 + ceil((80 - 28 + 28 + 16) / 28) * 5 = 8 + 4*5 symbols.
  TxParams p;
  p.sf = SpreadingFactor::kSF7;
  EXPECT_EQ(payload_symbols(p, 10), 8u + 4u * 5u);
}

TEST(Airtime, KnownReferenceValueSf12) {
  TxParams p;
  p.sf = SpreadingFactor::kSF12;
  // DE=1: denominator 4*(12-2)=40; numerator 8*10-48+28+16=76 -> 2 blocks.
  EXPECT_EQ(payload_symbols(p, 10), 8u + 2u * 5u);
}

TEST(Airtime, ImplicitHeaderSavesSymbols) {
  TxParams expl;
  expl.sf = SpreadingFactor::kSF8;
  TxParams impl = expl;
  impl.explicit_header = false;
  EXPECT_LE(payload_symbols(impl, 20), payload_symbols(expl, 20));
}

TEST(Airtime, ZeroPayloadStillHasEightSymbols) {
  TxParams p;
  p.sf = SpreadingFactor::kSF9;
  EXPECT_GE(payload_symbols(p, 0), 8u);
}

TEST(Airtime, EffectiveBitrateOrdering) {
  TxParams fast, slow;
  fast.sf = SpreadingFactor::kSF7;
  slow.sf = SpreadingFactor::kSF12;
  EXPECT_GT(effective_bitrate(fast, 10), effective_bitrate(slow, 10));
}

// Property sweep: airtime is monotone in payload size and spreading factor.
class AirtimeMonotone
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(AirtimeMonotone, IncreasesWithPayload) {
  const auto [sf_idx, payload] = GetParam();
  TxParams p;
  p.sf = sf_from_index(sf_idx);
  EXPECT_LE(time_on_air(p, payload), time_on_air(p, payload + 16));
}

TEST_P(AirtimeMonotone, IncreasesWithSpreadingFactor) {
  const auto [sf_idx, payload] = GetParam();
  if (sf_idx >= kNumSpreadingFactors - 1) GTEST_SKIP();
  TxParams lo, hi;
  lo.sf = sf_from_index(sf_idx);
  hi.sf = sf_from_index(sf_idx + 1);
  EXPECT_LT(time_on_air(lo, payload), time_on_air(hi, payload));
}

TEST_P(AirtimeMonotone, PreamblePlusPayloadEqualsTotal) {
  const auto [sf_idx, payload] = GetParam();
  TxParams p;
  p.sf = sf_from_index(sf_idx);
  EXPECT_DOUBLE_EQ(time_on_air(p, payload).value(),
                   (preamble_duration(p) + payload_duration(p, payload)).value());
}

INSTANTIATE_TEST_SUITE_P(
    AllSfPayloads, AirtimeMonotone,
    ::testing::Combine(::testing::Range(0, kNumSpreadingFactors),
                       ::testing::Values<std::size_t>(0, 1, 10, 51, 222)));

}  // namespace
}  // namespace alphawan
