// 2-D geometry for the deployment plane (the paper's testbed covers a
// 2.1 km x 1.6 km urban area; we model node and gateway placement on a
// metric plane).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace alphawan {

struct Point {
  Meters x{};
  Meters y{};

  friend bool operator==(const Point&, const Point&) = default;
};

[[nodiscard]] Meters distance(const Point& a, const Point& b);

// Azimuth (radians, in [-pi, pi]) of `to` as seen from `from`.
[[nodiscard]] double bearing(const Point& from, const Point& to);

// A rectangular deployment region.
struct Region {
  Meters width{2100.0};   // paper testbed: 2.1 km
  Meters height{1600.0};  // paper testbed: 1.6 km

  [[nodiscard]] Point center() const { return {width / 2, height / 2}; }
  [[nodiscard]] Point random_point(Rng& rng) const;
  [[nodiscard]] bool contains(const Point& p) const;
};

// Evenly spread `count` points on a jittered grid covering the region —
// how an operator would place gateways for coverage.
[[nodiscard]] std::vector<Point> grid_placement(const Region& region,
                                                std::size_t count,
                                                Rng& rng,
                                                double jitter_fraction = 0.1);

// Uniformly random placement (used for nodes).
[[nodiscard]] std::vector<Point> uniform_placement(const Region& region,
                                                   std::size_t count,
                                                   Rng& rng);

// Clustered placement: `clusters` hot spots, each holding a Gaussian blob of
// nodes — a closer match to real deployments (buildings, metering clusters).
[[nodiscard]] std::vector<Point> clustered_placement(const Region& region,
                                                     std::size_t count,
                                                     std::size_t clusters,
                                                     Meters cluster_sigma,
                                                     Rng& rng);

}  // namespace alphawan
