#include "baselines/random_cp.hpp"

#include <algorithm>

namespace alphawan {

void RandomCpPolicy::configure(Deployment& deployment, Network& network,
                               Rng& rng) const {
  const RandomCpOptions& options = options_;
  // Node side behaves like a standard ADR network (skipped entirely when
  // the caller pre-assigned node configs — fig12's orthogonalized users).
  const bool touch_nodes = node_side_.configure_nodes;
  if (touch_nodes) {
    StandardLorawanOptions std_options = node_side_;
    std_options.use_adr = true;
    StandardLorawanPolicy(std_options).configure(deployment, network, rng);
  }

  // Gateway side: random contiguous windows of random width.
  const Spectrum& spectrum = deployment.spectrum();
  NetworkChannelConfig config;
  for (const auto& gw : network.gateways()) {
    const int max_span = std::max(
        1, static_cast<int>(gw.profile().rx_spectrum / kChannelSpacing));
    int width = static_cast<int>(rng.uniform_int(
        options.min_channels_per_gateway, options.max_channels_per_gateway));
    width = std::clamp(width, 1,
                       std::min({gw.profile().data_rx_chains, max_span,
                                 spectrum.grid_size()}));
    const int start = static_cast<int>(
        rng.uniform_int(0, spectrum.grid_size() - width));
    GatewayChannelConfig gw_cfg;
    for (int c = start; c < start + width; ++c) {
      gw_cfg.channels.push_back(spectrum.grid_channel(c));
    }
    config.gateways[gw.id()] = std::move(gw_cfg);
  }
  network.apply_config(config);

  if (!touch_nodes) return;

  // Re-home nodes onto channels some gateway actually monitors (an
  // operator rolling out new gateway plans pushes matching channel masks
  // to its devices); data rates keep their ADR settings.
  std::vector<Channel> monitored;
  for (const auto& [gw_id, gw_cfg] : config.gateways) {
    for (const auto& ch : gw_cfg.channels) {
      if (std::find(monitored.begin(), monitored.end(), ch) ==
          monitored.end()) {
        monitored.push_back(ch);
      }
    }
  }
  for (auto& node : network.nodes()) {
    NodeRadioConfig cfg = node.config();
    cfg.channel = monitored[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(monitored.size()) - 1))];
    node.apply_config(cfg);
  }
}

}  // namespace alphawan
