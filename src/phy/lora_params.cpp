#include "phy/lora_params.hpp"

namespace alphawan {

std::string_view sf_name(SpreadingFactor sf) {
  switch (sf) {
    case SpreadingFactor::kSF7: return "SF7";
    case SpreadingFactor::kSF8: return "SF8";
    case SpreadingFactor::kSF9: return "SF9";
    case SpreadingFactor::kSF10: return "SF10";
    case SpreadingFactor::kSF11: return "SF11";
    case SpreadingFactor::kSF12: return "SF12";
  }
  return "SF?";
}

std::string_view dr_name(DataRate dr) {
  switch (dr) {
    case DataRate::kDR0: return "DR0";
    case DataRate::kDR1: return "DR1";
    case DataRate::kDR2: return "DR2";
    case DataRate::kDR3: return "DR3";
    case DataRate::kDR4: return "DR4";
    case DataRate::kDR5: return "DR5";
  }
  return "DR?";
}

}  // namespace alphawan
