// Pins the [[deprecated]] attribute on the legacy baseline entry points.
// Control: calls compile with the warning suppressed (the shims still
// exist and still work). Misuse: the same calls with deprecation promoted
// to an error — the build must fail, proving every shim actually carries
// the attribute and in-tree callers compiled with ALPHAWAN_WERROR have
// all migrated to the policy objects / registry.
#include <utility>
#include <vector>

#include "baselines/cic.hpp"
#include "baselines/lmac.hpp"
#include "baselines/random_cp.hpp"
#include "baselines/standard_lorawan.hpp"

namespace alphawan {

#ifdef CF_MISUSE
#pragma GCC diagnostic error "-Wdeprecated-declarations"
#else
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

void legacy_baseline_calls(Deployment& deployment, Network& network,
                           Rng& rng, std::vector<Transmission> txs) {
  apply_standard_lorawan(deployment, network, rng);
  apply_random_cp(deployment, network, rng);
  txs = lmac_schedule(std::move(txs), rng);
  (void)make_cic_processor();
}

}  // namespace alphawan
