// alphawan-lint fixture: the allow-annotation grammar is itself checked.
// Linted as-if at src/sim/allow_misuse.cpp.
#include <map>

namespace alphawan {

// An annotation naming a check id that does not exist: finding
// (lint-allow-unknown).
// ALPHAWAN-LINT-ALLOW(determinism-wibble: no such check)
inline int unknown_check() { return 1; }

// An annotation that suppresses nothing has expired and must be deleted:
// finding (lint-allow-unused).
// ALPHAWAN-LINT-ALLOW(determinism-wallclock: the clock call below was
// removed two refactors ago)
inline int expired_allow() { return 2; }

// An annotation without the mandatory ": reason" part: finding
// (lint-allow-malformed).
// ALPHAWAN-LINT-ALLOW(ordering-pointer-key)
inline int malformed_allow() { return 3; }

}  // namespace alphawan
