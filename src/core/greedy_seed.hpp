// Greedy constructive heuristic for the CP problem: balances per-channel
// decoder capacity across gateways (Strategies 1+2) and spreads nodes over
// (gateway, channel, data-rate) slots (Strategy 7). Used to seed the
// evolutionary solver and as a fast anytime fallback.
#pragma once

#include <optional>

#include "core/cp_problem.hpp"

namespace alphawan {

struct GreedyOptions {
  // Force every gateway to operate exactly this many channels (Strategy 1
  // disabled -> 8). nullopt: choose ~decoders/6 channels per gateway.
  std::optional<int> forced_channel_count;
};

[[nodiscard]] CpSolution greedy_seed(const CpInstance& instance,
                                     const GreedyOptions& options = {});

}  // namespace alphawan
