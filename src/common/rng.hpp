// Deterministic, seedable random number generation.
//
// All stochastic components of the simulator draw from an explicitly seeded
// Rng so that every experiment is exactly reproducible. The generator is
// xoshiro256** (public domain, Blackman & Vigna) seeded via SplitMix64.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace alphawan {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Copies reproduce the generator state but deliberately drop the cached
  // Box-Muller half-pair: otherwise the copy and the original would both
  // return the same stale normal() sample, silently correlating streams.
  Rng(const Rng& other);
  Rng& operator=(const Rng& other);

  // Re-initialize in place, exactly as if freshly constructed with `seed`
  // (also discards any cached Box-Muller sample).
  void reseed(std::uint64_t seed);

  // The seed this generator (or substream) was created from. Unaffected by
  // draws; substreams derive from it, not from the evolving state.
  [[nodiscard]] std::uint64_t root_seed() const { return seed_; }

  // UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi). Interval order (lo then hi) is the
  // universal convention; swapping the bounds is caught by an assert.
  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Standard normal via Box-Muller (cached second sample).
  double normal();
  // Normal with given mean / standard deviation — the (mean, sigma)
  // order every math library uses.
  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
  double normal(double mean, double stddev);
  // Exponential with given rate (lambda > 0).
  double exponential(double rate);
  // Bernoulli trial.
  bool chance(double p);

  // Derive an independent child stream (for per-entity generators). The
  // child depends on the parent's current state, so fork order matters.
  Rng fork();

  // Named substreams: independent generators derived (via SplitMix64) from
  // the ROOT SEED only, never from the evolving state. The same root seed
  // and name always yield the same stream, no matter how many draws the
  // parent has made — this is what keeps simulation runs replayable when
  // engine refactors reorder intermediate draws.
  [[nodiscard]] Rng substream(std::string_view name) const;
  [[nodiscard]] Rng substream(std::uint64_t a, std::uint64_t b = 0) const;

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace alphawan
