#include "common/logging.hpp"

#include <cstdarg>
#include <cstdio>

namespace alphawan {
namespace {
LogLevel g_level = LogLevel::kOff;

constexpr const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] ", level_name(level));
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace alphawan
