// Compile-time unit safety: zero-overhead strong types for the physical
// quantities AlphaWAN's link-budget arithmetic lives on.
//
// Every quantity is a `Quantity<Tag>` wrapping exactly one double — same
// size, same alignment, same codegen as the bare double it replaces — but
// the algebra below only admits the physically meaningful operations:
//
//   linear units (Hz, Seconds, Meters, Db):
//     q + q -> q          q - q -> q          q / q -> double (ratio)
//     q * scalar -> q     scalar * q -> q     q / scalar -> q
//   log-domain absolute power (Dbm):
//     Dbm + Db -> Dbm     Db + Dbm -> Dbm     (apply a gain/loss)
//     Dbm - Db -> Dbm                          (remove a gain/loss)
//     Dbm - Dbm -> Db                          (SNR / SIR / link margin)
//   everything:
//     unary minus, defaulted comparisons (same tag only)
//
// Deliberately rejected at compile time:
//   Dbm + Dbm            (adding absolute log-powers is meaningless; use
//                         combine_powers_dbm for linear-domain summation)
//   Hz + Dbm, Meters + Seconds, ...   (cross-unit mixing)
//   Meters / Seconds, Hz * Seconds    (derived dimensions are not modeled;
//                                      unwrap with .value() and say what
//                                      you mean at the call site)
//   Dbm * scalar, Dbm / Dbm           (scaling an absolute log-power is a
//                                      unit error ~100% of the time)
//   implicit construction from double (every raw number entering the unit
//                                      system is an explicit, visible act)
//
// Escape hatch: `.value()` returns the raw double for transcendental math
// (std::pow, std::log10) and I/O. Wrap the result back explicitly.
//
// Everything here is constexpr so band-plan constants and noise floors
// stay compile-time. See docs/units.md for the full operation table and
// how to add a new unit.
#pragma once

#include <compare>
#include <iosfwd>

namespace alphawan {

// Unit tags. `linear` opts the tag into the vector-space operations
// (addition, subtraction, scalar scaling, same-unit ratios); log-domain
// absolute units like dBm keep it false and define their own algebra.
struct HzTag {
  static constexpr bool linear = true;
};
struct DbTag {
  static constexpr bool linear = true;
};
struct DbmTag {
  static constexpr bool linear = false;
};
struct SecondsTag {
  static constexpr bool linear = true;
};
struct MetersTag {
  static constexpr bool linear = true;
};

template <class Tag>
concept LinearUnitTag = Tag::linear;

template <class Tag>
class Quantity {
 public:
  using tag_type = Tag;

  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : value_(value) {}

  // The raw double, for transcendental math and I/O. Unwrapping is the
  // explicit, grep-able boundary of the unit system.
  [[nodiscard]] constexpr double value() const { return value_; }

  [[nodiscard]] constexpr Quantity operator-() const {
    return Quantity{-value_};
  }
  [[nodiscard]] constexpr Quantity operator+() const { return *this; }

  friend constexpr bool operator==(Quantity, Quantity) = default;
  friend constexpr auto operator<=>(Quantity, Quantity) = default;

  // Vector-space operations for linear units only.
  constexpr Quantity& operator+=(Quantity rhs)
    requires LinearUnitTag<Tag>
  {
    value_ += rhs.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity rhs)
    requires LinearUnitTag<Tag>
  {
    value_ -= rhs.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double s)
    requires LinearUnitTag<Tag>
  {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s)
    requires LinearUnitTag<Tag>
  {
    value_ /= s;
    return *this;
  }

 private:
  double value_ = 0.0;
};

// ---- linear-unit algebra -------------------------------------------------

template <LinearUnitTag Tag>
[[nodiscard]] constexpr Quantity<Tag> operator+(Quantity<Tag> a,
                                                Quantity<Tag> b) {
  return Quantity<Tag>{a.value() + b.value()};
}

template <LinearUnitTag Tag>
[[nodiscard]] constexpr Quantity<Tag> operator-(Quantity<Tag> a,
                                                Quantity<Tag> b) {
  return Quantity<Tag>{a.value() - b.value()};
}

template <LinearUnitTag Tag>
[[nodiscard]] constexpr Quantity<Tag> operator*(Quantity<Tag> q, double s) {
  return Quantity<Tag>{q.value() * s};
}

template <LinearUnitTag Tag>
[[nodiscard]] constexpr Quantity<Tag> operator*(double s, Quantity<Tag> q) {
  return Quantity<Tag>{s * q.value()};
}

template <LinearUnitTag Tag>
[[nodiscard]] constexpr Quantity<Tag> operator/(Quantity<Tag> q, double s) {
  return Quantity<Tag>{q.value() / s};
}

// Ratio of two like quantities is a dimensionless double.
template <LinearUnitTag Tag>
[[nodiscard]] constexpr double operator/(Quantity<Tag> a, Quantity<Tag> b) {
  return a.value() / b.value();
}

template <LinearUnitTag Tag>
[[nodiscard]] constexpr Quantity<Tag> abs(Quantity<Tag> q) {
  return Quantity<Tag>{q.value() < 0.0 ? -q.value() : q.value()};
}

// Stream insertion prints the raw value (diagnostics/logging only — the
// caller's format string is expected to name the unit).
template <class CharT, class Traits, class Tag>
std::basic_ostream<CharT, Traits>& operator<<(
    std::basic_ostream<CharT, Traits>& os, Quantity<Tag> q) {
  return os << q.value();
}

// ---- the unit aliases ----------------------------------------------------

using Hz = Quantity<HzTag>;
using Db = Quantity<DbTag>;
using Dbm = Quantity<DbmTag>;
using Seconds = Quantity<SecondsTag>;
using Meters = Quantity<MetersTag>;

// ---- log-domain power algebra --------------------------------------------
// dBm is an absolute power on a log scale: offsetting by a dB ratio is the
// only meaningful additive operation, and the difference of two absolute
// powers is a ratio. Summing powers requires the linear domain — see
// combine_powers_dbm in phy/capture.hpp.

[[nodiscard]] constexpr Dbm operator+(Dbm power, Db gain) {
  return Dbm{power.value() + gain.value()};
}
[[nodiscard]] constexpr Dbm operator+(Db gain, Dbm power) {
  return Dbm{gain.value() + power.value()};
}
[[nodiscard]] constexpr Dbm operator-(Dbm power, Db loss) {
  return Dbm{power.value() - loss.value()};
}
[[nodiscard]] constexpr Db operator-(Dbm a, Dbm b) {
  return Db{a.value() - b.value()};
}
constexpr Dbm& operator+=(Dbm& power, Db gain) {
  power = power + gain;
  return power;
}
constexpr Dbm& operator-=(Dbm& power, Db loss) {
  power = power - loss;
  return power;
}

// ---- user-defined literals -----------------------------------------------
// `using namespace alphawan::literals;` (implicit inside namespace
// alphawan) enables -120.0_dBm, 868.1_MHz, 50.0_ms, ...

inline namespace literals {

[[nodiscard]] constexpr Hz operator""_Hz(long double v) {
  return Hz{static_cast<double>(v)};
}
[[nodiscard]] constexpr Hz operator""_Hz(unsigned long long v) {
  return Hz{static_cast<double>(v)};
}
[[nodiscard]] constexpr Hz operator""_kHz(long double v) {
  return Hz{static_cast<double>(v) * 1e3};
}
[[nodiscard]] constexpr Hz operator""_kHz(unsigned long long v) {
  return Hz{static_cast<double>(v) * 1e3};
}
[[nodiscard]] constexpr Hz operator""_MHz(long double v) {
  return Hz{static_cast<double>(v) * 1e6};
}
[[nodiscard]] constexpr Hz operator""_MHz(unsigned long long v) {
  return Hz{static_cast<double>(v) * 1e6};
}
[[nodiscard]] constexpr Db operator""_dB(long double v) {
  return Db{static_cast<double>(v)};
}
[[nodiscard]] constexpr Db operator""_dB(unsigned long long v) {
  return Db{static_cast<double>(v)};
}
[[nodiscard]] constexpr Dbm operator""_dBm(long double v) {
  return Dbm{static_cast<double>(v)};
}
[[nodiscard]] constexpr Dbm operator""_dBm(unsigned long long v) {
  return Dbm{static_cast<double>(v)};
}
[[nodiscard]] constexpr Seconds operator""_s(long double v) {
  return Seconds{static_cast<double>(v)};
}
[[nodiscard]] constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds{static_cast<double>(v)};
}
[[nodiscard]] constexpr Seconds operator""_ms(long double v) {
  return Seconds{static_cast<double>(v) * 1e-3};
}
[[nodiscard]] constexpr Seconds operator""_ms(unsigned long long v) {
  return Seconds{static_cast<double>(v) * 1e-3};
}
[[nodiscard]] constexpr Meters operator""_m(long double v) {
  return Meters{static_cast<double>(v)};
}
[[nodiscard]] constexpr Meters operator""_m(unsigned long long v) {
  return Meters{static_cast<double>(v)};
}
[[nodiscard]] constexpr Meters operator""_km(long double v) {
  return Meters{static_cast<double>(v) * 1e3};
}
[[nodiscard]] constexpr Meters operator""_km(unsigned long long v) {
  return Meters{static_cast<double>(v) * 1e3};
}

}  // namespace literals

static_assert(sizeof(Dbm) == sizeof(double) && sizeof(Hz) == sizeof(double),
              "Quantity must stay a zero-overhead double wrapper");

}  // namespace alphawan
