// Deterministic, seedable random number generation.
//
// All stochastic components of the simulator draw from an explicitly seeded
// Rng so that every experiment is exactly reproducible. The generator is
// xoshiro256** (public domain, Blackman & Vigna) seeded via SplitMix64.
//
// The class is header-only on purpose: substream derivation and the
// Box-Muller fading draw sit on the per-(gateway, packet) fast path of
// ScenarioRunner::run_window, and keeping the definitions visible lets the
// compiler inline them there. The arithmetic is identical to the previous
// out-of-line definitions, so all streams are unchanged.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <string_view>

namespace alphawan {

// Hard bound on |normal()|, in standard deviations. Box-Muller's radius is
// sqrt(-2 ln u1) and uniform() quantizes to multiples of 2^-53, so the
// largest radius any draw can realize is sqrt(-2 ln 2^-53) ~= 8.572. Code
// that prunes against a worst-case normal draw (e.g. the link cache's
// candidate gateway lists) may rely on this: no draw ever exceeds it.
inline constexpr double kNormalTailSigmas = 8.6;

namespace detail {

inline std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace detail

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  // Copies reproduce the generator state but deliberately drop the cached
  // Box-Muller half-pair: otherwise the copy and the original would both
  // return the same stale normal() sample, silently correlating streams.
  Rng(const Rng& other) : state_(other.state_), seed_(other.seed_) {}
  Rng& operator=(const Rng& other) {
    state_ = other.state_;
    seed_ = other.seed_;
    cached_normal_ = 0.0;
    has_cached_normal_ = false;
    return *this;
  }

  // Re-initialize in place, exactly as if freshly constructed with `seed`
  // (also discards any cached Box-Muller sample).
  void reseed(std::uint64_t seed) {
    seed_ = seed;
    std::uint64_t s = seed;
    for (auto& word : state_) {
      word = detail::splitmix64(s);
    }
    cached_normal_ = 0.0;
    has_cached_normal_ = false;
  }

  // The seed this generator (or substream) was created from. Unaffected by
  // draws; substreams derive from it, not from the evolving state.
  [[nodiscard]] std::uint64_t root_seed() const { return seed_; }

  // UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = detail::rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = detail::rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  // Uniform double in [lo, hi). Interval order (lo then hi) is the
  // universal convention; swapping the bounds is caught by an assert.
  // ALPHAWAN-LINT-ALLOW(units-swappable-pair: (lo, hi) interval order)
  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next());  // full range
    // Rejection-free modulo bias is negligible for our span sizes, but use
    // Lemire's multiply-shift reduction anyway.
    const unsigned __int128 product =
        static_cast<unsigned __int128>(next()) * span;
    return lo + static_cast<std::int64_t>(product >> 64);
  }
  // Standard normal via Box-Muller (cached second sample).
  double normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_normal_ = radius * std::sin(angle);
    has_cached_normal_ = true;
    return radius * std::cos(angle);
  }
  // Normal with given mean / standard deviation — the (mean, sigma)
  // order every math library uses.
  // ALPHAWAN-LINT-ALLOW(units-swappable-pair: (mean, sigma) convention)
  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }
  // Single normal draw for throwaway generators (no cached Box-Muller
  // sample pending): bit-identical value and state advance to
  // normal(mean, stddev) on a fresh generator, but skips computing and
  // caching the companion sample the caller will never consume. The
  // per-(gateway, packet) fading draw in run_window is the intended user.
  // ALPHAWAN-LINT-ALLOW(units-swappable-pair: (mean, sigma) convention)
  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
  double normal_once(double mean, double stddev) {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    return mean + stddev * (radius * std::cos(angle));
  }
  // Exponential with given rate (lambda > 0).
  double exponential(double rate) {
    double u = uniform();
    while (u <= 1e-300) u = uniform();
    return -std::log(u) / rate;
  }
  // Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  // Derive an independent child stream (for per-entity generators). The
  // child depends on the parent's current state, so fork order matters.
  Rng fork() { return Rng(next()); }

  // Named substreams: independent generators derived (via SplitMix64) from
  // the ROOT SEED only, never from the evolving state. The same root seed
  // and name always yield the same stream, no matter how many draws the
  // parent has made — this is what keeps simulation runs replayable when
  // engine refactors reorder intermediate draws.
  [[nodiscard]] Rng substream(std::string_view name) const {
    // FNV-1a over the name, then one SplitMix64 round against the root seed.
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const char c : name) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001B3ULL;
    }
    return substream(h);
  }
  [[nodiscard]] Rng substream(std::uint64_t a, std::uint64_t b = 0) const {
    std::uint64_t s = seed_;
    std::uint64_t mixed = detail::splitmix64(s) ^ a;
    mixed = detail::splitmix64(mixed) ^ b;
    return Rng(detail::splitmix64(mixed));
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

// A family of substreams sharing the first key: SubstreamBatch(root, a)
// then at(b) returns a generator bit-identical to root.substream(a, b),
// with the first SplitMix64 round (which depends only on the root seed and
// `a`) hoisted out of the per-`b` derivation. The batched fading kernel
// (phy/batch_kernels.hpp) uses one batch per (window, gateway) and derives
// the per-packet streams from it, so determinism — streams keyed by ids,
// never by iteration order — is preserved by construction.
class SubstreamBatch {
 public:
  SubstreamBatch(const Rng& root, std::uint64_t a) {
    std::uint64_t s = root.root_seed();
    partial_ = detail::splitmix64(s) ^ a;
  }

  [[nodiscard]] Rng at(std::uint64_t b) const {
    std::uint64_t mixed = partial_;
    mixed = detail::splitmix64(mixed) ^ b;
    return Rng(detail::splitmix64(mixed));
  }

 private:
  std::uint64_t partial_ = 0;
};

}  // namespace alphawan
