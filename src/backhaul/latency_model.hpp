// Latency model of the backhaul and of gateway maintenance operations,
// parameterized from the paper's Fig. 17 measurements: gateway reboot
// ~4.62 s, operator-to-Master exchanges 0.17-0.28 s, config distribution
// over 2.5 GbE in tens of milliseconds.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"

namespace alphawan {

struct LatencyModelConfig {
  // LAN between gateways and the network server (2.5 Gbps Ethernet).
  Seconds lan_rtt{0.8e-3};
  double lan_bytes_per_second = 2.5e9 / 8.0;
  // WAN between an operator's server and the cloud Master node (one way).
  Seconds wan_one_way_mean{0.055};
  Seconds wan_one_way_sigma{0.012};
  // Gateway reboot after a channel reconfiguration.
  Seconds reboot_mean{4.62};
  Seconds reboot_sigma{0.35};
  // Per-gateway configuration push (serialize + apply).
  Seconds config_push_base{12e-3};
};

class LatencyModel {
 public:
  explicit LatencyModel(LatencyModelConfig config = LatencyModelConfig{},
                        std::uint64_t seed = 17);

  // Transfer time of `bytes` over the LAN, including one RTT.
  [[nodiscard]] Seconds lan_transfer(std::size_t bytes);
  // One-way operator <-> Master WAN latency (randomized per message).
  [[nodiscard]] Seconds wan_one_way();
  // Full request/response exchange with the Master.
  [[nodiscard]] Seconds master_round_trip();
  // Gateway reboot duration (randomized per gateway).
  [[nodiscard]] Seconds gateway_reboot();
  // Config distribution to one gateway carrying `bytes` of configuration.
  [[nodiscard]] Seconds config_push(std::size_t bytes);

  [[nodiscard]] const LatencyModelConfig& config() const { return config_; }

 private:
  LatencyModelConfig config_;
  Rng rng_;
};

}  // namespace alphawan
