// A LoRaWAN gateway: position + antenna + the COTS radio model + packet
// forwarding. Converts radio outcomes into the uplink records a network
// server stores (the metadata AlphaWAN's log parser later mines).
#pragma once

#include <memory>
#include <vector>

#include "common/geometry.hpp"
#include "net/channel_plan.hpp"
#include "phy/antenna.hpp"
#include "radio/gateway_radio.hpp"

namespace alphawan {

// Metadata a gateway attaches when forwarding a decoded uplink to the
// network server (ChirpStack-style rxInfo).
struct UplinkRecord {
  PacketId packet = 0;
  NodeId node = kInvalidNode;
  GatewayId gateway = kInvalidGateway;
  NetworkId network = 0;
  Seconds timestamp{0.0};
  Channel channel{};
  DataRate dr = DataRate::kDR0;
  Db snr{0.0};

  [[nodiscard]] bool operator==(const UplinkRecord&) const = default;
};

class Gateway {
 public:
  Gateway(GatewayId id, NetworkId network, Point position,
          GatewayProfile profile, std::uint16_t sync_word);

  [[nodiscard]] GatewayId id() const { return id_; }
  [[nodiscard]] NetworkId network() const { return network_; }
  [[nodiscard]] const Point& position() const { return position_; }
  [[nodiscard]] const GatewayProfile& profile() const {
    return radio_.profile();
  }
  [[nodiscard]] const GatewayRadio& radio() const { return radio_; }
  [[nodiscard]] const std::vector<Channel>& channels() const {
    return channels_;
  }

  // Apply a channel configuration (triggers a "reboot" in the latency
  // model). Throws on configurations the hardware cannot realize.
  void apply_channels(const GatewayChannelConfig& config);

  // Versioned variant used by the forwarder push path: configs carry a
  // monotonically increasing version so a duplicated or reordered push
  // never re-applies (and never re-reboots) — only strictly newer versions
  // take effect. Returns whether the config was applied.
  bool apply_channels(const GatewayChannelConfig& config,
                      std::uint32_t version);
  [[nodiscard]] std::uint32_t config_version() const {
    return config_version_;
  }

  // Attach/detach a correctness observer on the underlying radio.
  void set_observer(SimObserver* observer) { radio_.set_observer(observer); }

  // Attach/detach a pluggable capture policy on the underlying radio
  // (nullptr = stock COTS pipeline). Not owned; see radio/capture_policy.hpp
  // for the contract.
  void set_capture_policy(const CapturePolicy* policy) {
    radio_.set_capture_policy(policy);
  }

  // Antenna control (omni by default; directional for the Fig. 7 study).
  void set_antenna(std::unique_ptr<Antenna> antenna, double boresight_rad);
  [[nodiscard]] Db antenna_gain_towards(const Point& target) const;

  // Bumped by set_antenna; lets the link cache (phy/link_cache.hpp) know
  // its cached antenna gains for this gateway are stale.
  [[nodiscard]] std::uint64_t antenna_epoch() const { return antenna_epoch_; }

  // Process one window of on-air transmissions; returns per-event radio
  // outcomes and appends delivered packets to `uplinks`.
  [[nodiscard]] std::vector<RxOutcome> receive_window(
      const std::vector<RxEvent>& events, std::vector<UplinkRecord>& uplinks);

  // Batched-mode variant (ALPHAWAN_BATCH=1): same pipeline through the
  // batched radio kernels, with uplink metadata read from the window's
  // shared transmission table — the table's memoized end instant is the
  // identical sum Transmission::end() evaluates, so records are
  // bit-identical. Capture policies run off the columnar CaptureContext
  // inside the radio; no RxEvent list is needed.
  [[nodiscard]] std::vector<RxOutcome> receive_window(
      const RxEventView& view, std::vector<UplinkRecord>& uplinks);

  // In-place form of the batched variant: fills a caller-owned outcome
  // buffer (GatewayRadio::process_into), so per-window arenas keep their
  // capacity across windows.
  void receive_window(const RxEventView& view,
                      std::vector<UplinkRecord>& uplinks,
                      std::vector<RxOutcome>& outcomes);

  [[nodiscard]] int reboot_count() const { return reboot_count_; }

 private:
  GatewayId id_;
  NetworkId network_;
  Point position_;
  GatewayRadio radio_;
  std::vector<Channel> channels_;
  std::unique_ptr<Antenna> antenna_;
  double boresight_rad_ = 0.0;
  std::uint64_t antenna_epoch_ = 0;
  std::uint32_t config_version_ = 0;
  int reboot_count_ = 0;
};

}  // namespace alphawan
