#include "radio/dispatcher.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

TEST(Dispatcher, SortsByLockOn) {
  std::vector<DispatchEntry> entries = {
      {0, Seconds{3.0}, Seconds{4.0}, 0, 10},
      {1, Seconds{1.0}, Seconds{2.0}, 0, 11},
      {2, Seconds{2.0}, Seconds{3.0}, 0, 12},
  };
  sort_fcfs(entries);
  EXPECT_EQ(entries[0].packet, 11u);
  EXPECT_EQ(entries[1].packet, 12u);
  EXPECT_EQ(entries[2].packet, 10u);
}

TEST(Dispatcher, TiesBrokenByPacketId) {
  std::vector<DispatchEntry> entries = {
      {0, Seconds{1.0}, Seconds{2.0}, 0, 20},
      {1, Seconds{1.0}, Seconds{2.0}, 0, 7},
  };
  sort_fcfs(entries);
  EXPECT_EQ(entries[0].packet, 7u);
}

TEST(Dispatcher, DispatchAcquires) {
  DecoderPool pool(1);
  const DispatchEntry e{0, Seconds{0.0}, Seconds{1.0}, 0, 1};
  const auto r = dispatch(pool, e);
  EXPECT_TRUE(r.acquired);
}

TEST(Dispatcher, DispatchRefusalReportsForeignMix) {
  DecoderPool pool(1);
  (void)dispatch(pool, DispatchEntry{0, Seconds{0.0}, Seconds{5.0}, /*network=*/1, 1});
  const auto refused = dispatch(pool, DispatchEntry{1, Seconds{0.1}, Seconds{5.0}, 0, 2});
  EXPECT_FALSE(refused.acquired);
  EXPECT_TRUE(refused.foreign_among_occupants);
}

TEST(Dispatcher, DispatchRefusalIntraOnly) {
  DecoderPool pool(1);
  (void)dispatch(pool, DispatchEntry{0, Seconds{0.0}, Seconds{5.0}, 0, 1});
  const auto refused = dispatch(pool, DispatchEntry{1, Seconds{0.1}, Seconds{5.0}, 0, 2});
  EXPECT_FALSE(refused.acquired);
  EXPECT_FALSE(refused.foreign_among_occupants);
}

TEST(Dispatcher, ReleasesBeforeDispatch) {
  DecoderPool pool(1);
  (void)dispatch(pool, DispatchEntry{0, Seconds{0.0}, Seconds{1.0}, 0, 1});
  const auto later = dispatch(pool, DispatchEntry{1, Seconds{2.0}, Seconds{3.0}, 0, 2});
  EXPECT_TRUE(later.acquired);
}

}  // namespace
}  // namespace alphawan
