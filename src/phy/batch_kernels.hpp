// Batched PHY receive kernels (ALPHAWAN_BATCH=1, sim/batch.hpp) and the
// scalar reference kernel they are differentially tested against.
//
// The four hot loops of the receive pipeline — candidate link-gain /
// sensitivity filtering, the co-SF / inter-SF SIR capture tests, the
// partial-overlap interference scan, and the Box–Muller fading draws — are
// each expressed twice: a scalar reference (a verbatim transcription of the
// original per-event loop) and a batched form that restructures the *scan*
// but never the *arithmetic*. Bit-exactness is by construction:
//
//  * every floating-point expression a batched kernel evaluates for a live
//    element is the same expression, on the same operands, in the same
//    order, as the scalar loop (hoisted subexpressions are values the
//    scalar loop recomputes identically each iteration — overlap couplings
//    per uniform bucket, SIR thresholds per SF pair, the first SplitMix64
//    round of each fading substream);
//  * elements the batched form skips are exactly those whose scalar
//    contribution is dead: interference sums are never read once a
//    collision is established (the event is dropped before the SNR test),
//    and range pruning uses the identical floating-point bound the scalar
//    lower_bound evaluates, so the candidate sets match element for
//    element;
//  * order-sensitive outputs are preserved explicitly: same-SF linear power
//    accumulates in the scalar subsequence order (the SF grouping is a
//    stable sort), and the fatal-interferer attribution — last colliding
//    element in scalar scan order — is recovered from the max stable-sort
//    rank among colliders.
//
// The differential harness (tests/property/test_prop_kernels.cpp) checks
// scalar == batched bit-for-bit across randomized worlds; the equivalences
// above are what make that hold for every input, not just the sampled ones.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/rng.hpp"
#include "phy/capture.hpp"
#include "phy/link_cache.hpp"
#include "phy/overlap.hpp"

namespace alphawan {

namespace batch_detail {
// Same formula as the receive pipeline's local dBm->linear helper
// (radio/gateway_radio.cpp); qualified so it cannot collide with that
// translation unit's anonymous-namespace copy.
inline double dbm_to_lin(Dbm p) { return std::pow(10.0, p.value() / 10.0); }
}  // namespace batch_detail

// Columns of the per-event scratch arrays the interferer scan reads
// (GatewayRadio::RxScratch fills them in phase 1; all pointers are indexed
// by event and valid for the whole scan).
struct RxScanSoA {
  const Seconds* start = nullptr;
  const Seconds* end = nullptr;
  const double* lin_power = nullptr;  // dBm->linear received power
  const Channel* channel = nullptr;
  const Dbm* power = nullptr;
  const SpreadingFactor* sf = nullptr;
  const NetworkId* net = nullptr;
};

// The event currently being decoded, hoisted out of its scratch columns.
struct ScanEvent {
  std::size_t index = 0;  // its own event index (skipped as an interferer)
  Seconds start{0.0};
  Seconds end{0.0};
  Dbm power{-400.0};
  SpreadingFactor sf = SpreadingFactor::kSF7;
  NetworkId net = 0;
  Channel rx_channel{};  // the receiving chain's channel
};

// Interference accumulated for one decoded event across all scanned
// buckets. The sums are only meaningful while !collided: the scalar loop
// keeps accumulating after a collision but the event is dropped before
// either sum is read, so batched kernels stop contributing to them the
// moment a collision is established.
struct ScanAccum {
  double misaligned_intf_lin = 0.0;
  double aligned_same_sf_lin = 0.0;
  bool collided = false;
  bool foreign_fatal = false;  // fatal interferer was foreign (last in scan
                               // order, matching the scalar overwrite chain)
  Dbm strongest_same_sf{-400.0};
};

// One same-SF run of a bucket's stable SF grouping: [begin, end) into the
// order_sf/pos_sf arrays, events in ascending start time (the stable sort
// preserves the bucket's start order within each SF). max_power is the
// strongest received power in the group: since ev.power - p is monotone
// (non-increasing) in p under IEEE rounding, a group whose strongest member
// fails the capture predicate cannot contain a collider, and the aligned
// kernel skips it without touching its elements.
struct SfGroup {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  SpreadingFactor sf = SpreadingFactor::kSF7;
  Dbm max_power{-400.0};
};

// Scalar reference scan of one frequency bucket — a verbatim transcription
// of the original GatewayRadio::process phase-3 inner loop, shared by the
// scalar pipeline and by batched buckets that don't qualify for a fast
// kernel (mixed-channel buckets). `order_begin/order_end` delimit the
// bucket's start-sorted event indices; `uniform`/`rho_uniform` mirror the
// bucket's uniform-channel fast path; `lookback` is the bucket's longest
// event duration.
inline void scan_bucket_scalar(const RxScanSoA& soa,
                               const std::uint32_t* order_begin,
                               const std::uint32_t* order_end, bool uniform,
                               double rho_uniform, Seconds lookback,
                               const ScanEvent& ev, ScanAccum& acc) {
  const std::uint32_t* first = std::lower_bound(
      order_begin, order_end, ev.start - lookback,
      [&](std::uint32_t idx, Seconds t) { return soa.start[idx] < t; });
  for (const std::uint32_t* it = first; it != order_end; ++it) {
    const std::size_t j = *it;
    const Seconds j_start = soa.start[j];
    if (j_start >= ev.end) break;
    if (j == ev.index) continue;
    if (!(ev.start < soa.end[j] && j_start < ev.end)) continue;
    const double rho =
        uniform ? rho_uniform : overlap_ratio(soa.channel[j], ev.rx_channel);
    if (rho <= 0.0) continue;
    const bool same_sf = soa.sf[j] == ev.sf;
    if (rho >= kDetectOverlapThreshold) {
      // Co-channel interferer: SF capture matrix applies.
      if (same_sf) {
        acc.aligned_same_sf_lin += soa.lin_power[j];
        if (soa.power[j] > acc.strongest_same_sf) {
          acc.strongest_same_sf = soa.power[j];
          // Attribute a potential fatal collision to this interferer.
        }
        if (ev.power - soa.power[j] < capture_sir_threshold(ev.sf, soa.sf[j])) {
          acc.collided = true;
          acc.foreign_fatal = soa.net[j] != ev.net;
        }
      } else if (ev.power - soa.power[j] <
                 capture_sir_threshold(ev.sf, soa.sf[j])) {
        acc.collided = true;
        acc.foreign_fatal = soa.net[j] != ev.net;
      }
    } else {
      // Misaligned interferer: filter-truncated energy acts as noise.
      Dbm eff =
          effective_interference_dbm(soa.power[j], soa.channel[j], ev.rx_channel);
      if (!same_sf) eff -= kCrossSfMisalignedRejection;
      if (eff > Dbm{-250.0}) acc.misaligned_intf_lin += batch_detail::dbm_to_lin(eff);
    }
  }
}

// Batched scan of a uniform-channel bucket whose overlap with the receiving
// chain is >= kDetectOverlapThreshold: every overlapper takes the aligned
// (capture-matrix) branch, so the scan runs per SF group instead of testing
// SFs per element. Per group the SIR threshold is hoisted (the scalar loop
// recomputes capture_sir_threshold(ev.sf, sf_j) with the same arguments at
// every element), and the candidate range is the scalar's time window — the
// identical floating-point bound ev.start - lookback, and start < ev.end —
// restricted to the group:
//  * the window's lower edge comes from `cursors` (one per group, parallel
//    to the groups span): the caller scans decoded events in ascending
//    start order, so ev.start - lookback is non-decreasing per group and a
//    monotone cursor lands on exactly the element a per-event lower_bound
//    from the group's begin would — without the per-event binary searches;
//  * the event's own SF group accumulates same-SF linear power in scalar
//    subsequence order; past the first collider the remaining terms are
//    dead (the sum is only read when no collision occurred anywhere);
//  * the fatal-interferer attribution takes the collider with the maximum
//    stable-sort rank — the forward overwrite chain leaves the group's
//    last collider, exactly as the scalar loop's does.
// `order_sf`/`pos_sf` are bucket-global arrays: order_sf holds the bucket's
// events stably regrouped by SF, pos_sf the bucket rank of each entry.
inline void scan_bucket_aligned_grouped(const RxScanSoA& soa,
                                        const std::uint32_t* order_sf,
                                        const std::uint32_t* pos_sf,
                                        const SfGroup* groups_begin,
                                        const SfGroup* groups_end,
                                        std::uint32_t* cursors,
                                        Seconds lookback, const ScanEvent& ev,
                                        ScanAccum& acc) {
  // The scalar time-window bound, evaluated once with the scalar's exact
  // floating-point expression (bucket-wide lookback, not per group, so the
  // candidate set matches the reference element for element).
  const Seconds window_from = ev.start - lookback;
  bool found = false;       // a collider exists in this bucket
  std::uint32_t best_pos = 0;  // bucket rank of the last collider so far
  std::uint32_t best_j = 0;
  for (const SfGroup* g = groups_begin; g != groups_end; ++g) {
    const Db threshold = capture_sir_threshold(ev.sf, g->sf);
    // Strongest-member precheck: if even max_power fails the capture
    // predicate, no member can pass it (monotonicity — see SfGroup), so the
    // group matters only through the same-SF power sum, if that is live.
    const bool may_collide = ev.power - g->max_power < threshold;
    const bool sums_live = g->sf == ev.sf && !acc.collided && !found;
    if (!may_collide && !sums_live) continue;
    std::uint32_t& cur = cursors[g - groups_begin];
    while (cur < g->end && soa.start[order_sf[cur]] < window_from) ++cur;
    if (sums_live && !may_collide) {
      // Collider-free by the precheck: accumulate the whole window — the
      // identical terms in the identical order, the per-element predicate
      // provably false throughout.
      for (std::uint32_t it = cur; it < g->end; ++it) {
        const std::uint32_t j = order_sf[it];
        if (soa.start[j] >= ev.end) break;
        if (j == ev.index) continue;
        if (!(ev.start < soa.end[j])) continue;
        acc.aligned_same_sf_lin += soa.lin_power[j];
      }
      continue;
    }
    // Forward scan: accumulate (own-SF group only) until the first collider
    // — everything after it is dead, see ScanAccum — while the overwrite
    // chain keeps the group's last collider for the attribution.
    bool hit = false;
    std::uint32_t last_pos = 0;
    std::uint32_t last_j = 0;
    for (std::uint32_t it = cur; it < g->end; ++it) {
      const std::uint32_t j = order_sf[it];
      if (soa.start[j] >= ev.end) break;
      if (j == ev.index) continue;
      if (!(ev.start < soa.end[j])) continue;
      if (sums_live && !hit) acc.aligned_same_sf_lin += soa.lin_power[j];
      if (ev.power - soa.power[j] < threshold) {
        hit = true;
        last_pos = pos_sf[it];
        last_j = j;
      }
    }
    if (hit && (!found || last_pos > best_pos)) {
      best_pos = last_pos;
      best_j = last_j;
    }
    found = found || hit;
  }
  if (found) {
    acc.collided = true;
    acc.foreign_fatal = soa.net[best_j] != ev.net;
  }
}

// Batched scan of a uniform-channel bucket with partial overlap
// (0 < rho < kDetectOverlapThreshold): every overlapper takes the
// misaligned branch, whose channel coupling is constant across the bucket —
// `coupling` must be coupling_db(bucket channel, chain channel), the value
// the scalar loop recomputes identically per element inside
// effective_interference_dbm. Skipped entirely when a collision is already
// established (the interference sum is dead — the event is dropped before
// the SNR test reads it) or when the coupling pins every contribution to
// the -400 dBm floor (below the -250 dBm accumulation cutoff).
// `cursor` is the bucket's monotone window-start cursor into [0, count):
// like the aligned kernel's per-group cursors, it replaces the per-event
// lower_bound because callers scan decoded events in ascending start order.
// The cursor only advances on live scans (early returns leave it parked),
// which is safe: a lagging cursor re-skips the same already-expired
// elements the lower_bound would.
inline void scan_bucket_misaligned_uniform(const RxScanSoA& soa,
                                           const std::uint32_t* order_begin,
                                           const std::uint32_t* order_end,
                                           std::uint32_t& cursor,
                                           Seconds lookback, Db coupling,
                                           const ScanEvent& ev,
                                           ScanAccum& acc) {
  if (acc.collided) return;
  if (coupling <= Db{-399.0}) return;
  const Seconds window_from = ev.start - lookback;
  const auto count = static_cast<std::uint32_t>(order_end - order_begin);
  while (cursor < count && soa.start[order_begin[cursor]] < window_from) {
    ++cursor;
  }
  for (const std::uint32_t* it = order_begin + cursor; it != order_end; ++it) {
    const std::uint32_t j = *it;
    if (soa.start[j] >= ev.end) break;
    if (j == ev.index) continue;
    if (!(ev.start < soa.end[j])) continue;
    Dbm eff = effective_interference_from_coupling(soa.power[j], coupling);
    if (soa.sf[j] != ev.sf) eff -= kCrossSfMisalignedRejection;
    if (eff > Dbm{-250.0}) acc.misaligned_intf_lin += batch_detail::dbm_to_lin(eff);
  }
}

// Batched per-(window, gateway) fast-fading draws: out[k] is the Box–Muller
// draw of the keyed substream for packet packets[tx_index[k]], bit-identical
// to Rng::substream(a, packet).normal_once(0.0, sigma) where `stream` is
// SubstreamBatch(root, a) — the per-packet derivation only re-mixes the
// second key. Streams stay keyed by ids, never iteration order, so the
// batching cannot reorder draws by construction.
void batch_fading_draws(const SubstreamBatch& stream, const PacketId* packets,
                        const std::uint32_t* tx_index, std::size_t count,
                        double sigma, double* out);

// Batched candidate filter: computes each candidate transmission's received
// power through the cached static link terms —
//   ((tx_power - path_loss) + fading) + antenna_gain
// the exact expression and operand order of the scalar consider() — and
// compacts tx_index in place to the transmissions clearing `floor`, writing
// the surviving powers to out_power. fading[k] parallels the *input*
// tx_index. Returns the number kept; compaction preserves ascending order.
std::size_t batch_rx_power_filter(std::span<const LinkGain> gains,
                                  const std::uint32_t* row_of_tx,
                                  const Dbm* tx_power, const double* fading,
                                  Dbm floor, std::uint32_t* tx_index,
                                  std::size_t count, Dbm* out_power);

}  // namespace alphawan
