// Partial channel overlap: front-end frequency selectivity and
// inter-channel interference coupling.
//
// This is the physical mechanism behind AlphaWAN's Strategy 8 (inter-network
// isolation via misaligned channel plans, Sec. 4.2.4): a radio tuned to
// channel A truncates a packet transmitted on a misaligned channel B before
// the decoding pipeline — the packet never consumes a decoder. The residual
// energy that does fall in-band acts as interference; the coupling model
// below is calibrated to reproduce the measured PRR-vs-overlap curve of
// Fig. 8 and the SNR-threshold shifts of Fig. 16.
//
// Defined inline: overlap_ratio runs once per candidate interferer pair in
// GatewayRadio::process's phase-3 scan (the single hottest call site in the
// simulator), where inlining lets the compiler hoist the receiver channel's
// band edges out of the loop.
#pragma once

#include <algorithm>
#include <cmath>

#include "phy/band_plan.hpp"
#include "phy/lora_params.hpp"

namespace alphawan {

// Fractional bandwidth overlap between two channels, in [0, 1]:
// overlap_width / min(bandwidths).
[[nodiscard]] inline double overlap_ratio(const Channel& a, const Channel& b) {
  const Hz lo = std::max(a.low(), b.low());
  const Hz hi = std::min(a.high(), b.high());
  const Hz width = std::max(Hz{0.0}, hi - lo);
  const Hz denom = std::min(a.bandwidth, b.bandwidth);
  if (denom <= Hz{0.0}) return 0.0;
  return std::clamp(width / denom, 0.0, 1.0);
}

// Minimum overlap for a packet to be detectable/lockable by a receiver
// tuned to a given channel. COTS LoRa radios need near-alignment to
// correlate the preamble; anything below this is truncated by the
// front-end and never reaches the dispatcher.
inline constexpr double kDetectOverlapThreshold = 0.95;

[[nodiscard]] inline bool detectable(const Channel& packet_channel,
                                     const Channel& rx_channel) {
  return overlap_ratio(packet_channel, rx_channel) >= kDetectOverlapThreshold;
}

// Interference coupling (dB, <= 0): how much of an interferer's power on
// channel `src` leaks into a receiver tuned to `dst`. Two effects:
//   * only the overlapping band fraction couples (10*log10(rho)),
//   * the receiver's channel filter attenuates misaligned energy by
//     kSelectivitySlope dB per unit of misalignment.
// Calibration (see bench_fig08_overlap): with equal powers and
// non-orthogonal DRs, reception survives up to ~60-70% overlap; with a
// strong (+15 dB) non-orthogonal interferer the cliff moves to ~45%;
// orthogonal DRs survive essentially all overlaps — matching Fig. 8.
inline constexpr Db kSelectivitySlope{35.0};

[[nodiscard]] inline Db coupling_db(const Channel& src, const Channel& dst) {
  const double rho = overlap_ratio(src, dst);
  if (rho <= 0.0) return Db{-400.0};
  return Db{10.0 * std::log10(rho) - (1.0 - rho) * kSelectivitySlope.value()};
}

// Interferer power through a precomputed coupling — the hoisted form of
// effective_interference_dbm used by the batched uniform-bucket kernel
// (phy/batch_kernels.hpp): within a uniform-channel frequency bucket every
// interferer shares one (src, dst) pair, so coupling_db runs once per
// bucket and each event pays only the addition. Bit-identical to the
// per-event form because `power + coupling` is the exact expression
// effective_interference_dbm evaluates after its own coupling_db call.
[[nodiscard]] inline Dbm effective_interference_from_coupling(Dbm power,
                                                              Db coupling) {
  if (coupling <= Db{-399.0}) return Dbm{-400.0};
  return power + coupling;
}

// Effective in-band power (dBm) at a receiver on `dst` of an interferer
// with received power `power` on channel `src`. Returns -infinity-ish
// (-400 dBm) for disjoint channels.
[[nodiscard]] inline Dbm effective_interference_dbm(Dbm power,
                                                    const Channel& src,
                                                    const Channel& dst) {
  return effective_interference_from_coupling(power, coupling_db(src, dst));
}

// Extra rejection (dB) applied to a *misaligned* interferer using a
// different spreading factor: partial-band energy of an orthogonal chirp is
// further suppressed by despreading. Same-SF misaligned energy keeps some
// chirp structure and is only suppressed by the channel filter. This split
// is what makes non-orthogonal DRs on overlapping channels measurably worse
// (paper Figs. 8 and 16).
inline constexpr Db kCrossSfMisalignedRejection{12.0};

}  // namespace alphawan
