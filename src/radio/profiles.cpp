#include "radio/profiles.hpp"

namespace alphawan {

std::string_view chipset_name(Chipset chipset) {
  switch (chipset) {
    case Chipset::kSX1301: return "SX1301";
    case Chipset::kSX1302: return "SX1302";
    case Chipset::kSX1303: return "SX1303";
    case Chipset::kSX1308: return "SX1308";
  }
  return "?";
}

GatewayProfile profile_dragino_lps8n() {
  return {"Dragino LPS8N", Chipset::kSX1302, Hz{1.6e6}, 8, 1, 16};
}

GatewayProfile profile_rak7246g() {
  return {"RAK7246G", Chipset::kSX1308, Hz{1.6e6}, 8, 1, 8};
}

GatewayProfile profile_rak7268cv2() {
  return {"RAK7268CV2 (WisGate)", Chipset::kSX1302, Hz{1.6e6}, 8, 1, 16};
}

GatewayProfile profile_rak7289cv2() {
  // Dual SX1303: doubled chains, decoders and monitored spectrum.
  return {"RAK7289CV2", Chipset::kSX1303, Hz{3.2e6}, 16, 2, 32};
}

GatewayProfile profile_kerlink_ibts() {
  return {"Kerlink Wirnet iBTS", Chipset::kSX1301, Hz{1.6e6}, 8, 1, 8};
}

GatewayProfile default_profile() { return profile_rak7268cv2(); }

const std::vector<GatewayProfile>& all_profiles() {
  static const std::vector<GatewayProfile> kProfiles = {
      profile_dragino_lps8n(), profile_rak7246g(), profile_rak7268cv2(),
      profile_rak7289cv2(), profile_kerlink_ibts()};
  return kProfiles;
}

}  // namespace alphawan
