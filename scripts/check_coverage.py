#!/usr/bin/env python3
"""Aggregate gcov line coverage per source directory and gate it.

Works with plain `gcov --json-format --stdout` (no gcovr/llvm-cov
dependency): finds every .gcda under the build tree, asks gcov for the
JSON intermediate format, and folds executable/executed line counts per
watched source directory (default: src/backhaul, src/baselines,
src/core, src/phy, src/radio, and src/sim).

Usage:
  # after building with -DALPHAWAN_COVERAGE=ON and running ctest
  python3 scripts/check_coverage.py build --baseline COVERAGE_BASELINE.json
  # re-record the baseline (e.g. at the end of a PR):
  python3 scripts/check_coverage.py build --baseline COVERAGE_BASELINE.json \
      --update-baseline

The gate fails (exit 1) when a directory listed in the baseline's
"gated" array drops more than --tolerance percentage points below its
recorded line coverage; other watched directories are reported only.
Additionally, the baseline's "gated_files" map pins per-file floors:
each listed file must measure at least its recorded percent (an
absolute floor, so new subsystems keep the coverage they shipped with).
"""
from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys


def find_gcda(build_dir: str) -> list[str]:
    hits = []
    for root, _dirs, files in os.walk(build_dir):
        hits.extend(os.path.join(root, f) for f in files if f.endswith(".gcda"))
    return sorted(hits)


def gcov_json(gcda: str, build_dir: str) -> dict | None:
    """Run gcov in JSON/stdout mode for one .gcda; None on failure."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", os.path.relpath(gcda, build_dir)],
        cwd=build_dir,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0 or not proc.stdout.strip():
        return None
    # One JSON document per input file; take the first line that parses.
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            return json.loads(line)
        except json.JSONDecodeError:
            continue
    return None


def collect_line_counts(build_dir: str, repo_root: str,
                        watch_dirs: list[str]) -> dict[tuple[str, int], int]:
    """(file, line) -> max execution count across all translation units.

    A line is counted once per (file, line) with the max execution count
    across all translation units that include it (headers are seen many
    times).
    """
    line_counts: dict[tuple[str, int], int] = {}
    for gcda in find_gcda(build_dir):
        doc = gcov_json(gcda, build_dir)
        if doc is None:
            continue
        for entry in doc.get("files", []):
            path = entry.get("file", "")
            abs_path = os.path.normpath(
                path if os.path.isabs(path)
                else os.path.join(build_dir, path))
            try:
                rel = os.path.relpath(abs_path, repo_root)
            except ValueError:
                continue
            if not any(rel == d or rel.startswith(d + os.sep)
                       for d in watch_dirs):
                continue
            for line in entry.get("lines", []):
                key = (rel, int(line.get("line_number", 0)))
                count = int(line.get("count", 0))
                line_counts[key] = max(line_counts.get(key, 0), count)
    return line_counts


def fold(line_counts: dict[tuple[str, int], int],
         prefix: str) -> dict[str, object]:
    """Coverage summary for one directory (prefix match) or exact file."""
    total = sum(1 for (f, _l) in line_counts
                if f == prefix or f.startswith(prefix + os.sep))
    hit = sum(1 for (f, _l), c in line_counts.items()
              if (f == prefix or f.startswith(prefix + os.sep)) and c > 0)
    pct = 100.0 * hit / total if total else 0.0
    return {"lines": total, "covered": hit, "percent": round(pct, 2)}


def aggregate(build_dir: str, repo_root: str,
              watch_dirs: list[str]) -> dict[str, dict[str, object]]:
    """Per watched directory: executable line total, executed total."""
    line_counts = collect_line_counts(build_dir, repo_root, watch_dirs)
    return {d: fold(line_counts, d) for d in watch_dirs}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("build_dir", help="CMake build dir with .gcda files")
    parser.add_argument("--dirs", nargs="*",
                        default=["src/backhaul", "src/baselines", "src/core",
                                 "src/phy", "src/radio", "src/sim"],
                        help="source directories to aggregate")
    parser.add_argument("--baseline", default="COVERAGE_BASELINE.json")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the measured coverage as the new baseline")
    parser.add_argument("--tolerance", type=float, default=1.0,
                        help="allowed drop in percentage points before failing")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
    except FileNotFoundError:
        baseline = None
        if not args.update_baseline:
            print(f"check_coverage: baseline {args.baseline} missing; run "
                  "with --update-baseline to create it", file=sys.stderr)
            return 2

    # Gated files may live outside the watched directories (e.g. a
    # src/phy file): collect for them too.
    gated_files = list(baseline.get("gated_files", {})) if baseline else []
    watched = args.dirs + [f for f in gated_files
                           if not any(f.startswith(d + os.sep)
                                      for d in args.dirs)]
    line_counts = collect_line_counts(os.path.abspath(args.build_dir),
                                      repo_root, watched)
    measured = {d: fold(line_counts, d) for d in args.dirs}
    if all(v["lines"] == 0 for v in measured.values()):
        print("check_coverage: no coverage data found — build with "
              "-DALPHAWAN_COVERAGE=ON and run the tests first",
              file=sys.stderr)
        return 2

    for d, v in measured.items():
        print(f"{d}: {v['covered']}/{v['lines']} lines = {v['percent']}%")

    if args.update_baseline:
        gated = baseline.get("gated", ["src/backhaul"]) if baseline \
            else ["src/backhaul"]
        gated_files = baseline.get("gated_files", {}) if baseline else {}
        # Refresh each per-file floor to what is actually measured now.
        gated_files = {f: fold(line_counts, f)["percent"]
                       for f in gated_files}
        new_baseline = {"schema": "alphawan-coverage-v1",
                        "gated": gated,
                        "gated_files": gated_files,
                        "coverage": measured}
        with open(args.baseline, "w", encoding="utf-8") as out:
            json.dump(new_baseline, out, indent=2)
            out.write("\n")
        print(f"baseline written to {args.baseline}")
        return 0

    failed = False
    for d in baseline.get("gated", []):
        want = float(baseline["coverage"].get(d, {}).get("percent", 0.0))
        have = float(measured.get(d, {}).get("percent", 0.0))
        if have + args.tolerance < want:
            print(f"FAIL: {d} line coverage {have}% dropped below baseline "
                  f"{want}% (tolerance {args.tolerance} pts)")
            failed = True
        else:
            print(f"OK: {d} {have}% vs baseline {want}%")
    # Per-file floors are absolute: a file listed at 90 must measure >= 90
    # (minus tolerance), regardless of how it drifted historically.
    for path, floor in baseline.get("gated_files", {}).items():
        stats = fold(line_counts, path)
        have = float(stats["percent"])
        if stats["lines"] == 0:
            print(f"FAIL: {path} has no coverage data (file gone or "
                  "never executed)")
            failed = True
        elif have + args.tolerance < float(floor):
            print(f"FAIL: {path} line coverage {have}% below required "
                  f"floor {floor}% (tolerance {args.tolerance} pts)")
            failed = True
        else:
            print(f"OK: {path} {have}% vs floor {floor}%")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
