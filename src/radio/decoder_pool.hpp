// The finite pool of packet decoders inside a gateway's baseband chip —
// the resource whose exhaustion is the paper's decoder contention problem.
//
// Semantics (paper Appendix C): a decoder is claimed at a packet's lock-on
// instant and held until the packet's last payload symbol. If no decoder is
// free at lock-on, the packet is dropped immediately (the radio cannot
// re-synchronize mid-packet, so a decoder freeing up later does not help).
#pragma once

#include <cstddef>
#include <vector>

#include "check/hooks.hpp"
#include "common/types.hpp"

namespace alphawan {

class DecoderPool {
 public:
  explicit DecoderPool(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  // Attach an observer notified of every acquire/release/refusal (the
  // correctness harness). Pass nullptr to detach.
  void set_observer(SimObserver* observer) { observer_ = observer; }

  // Release decoders whose packets end at or before `now`.
  void release_expired(Seconds now);

  // Explicitly release the decoder held by `packet` (early teardown).
  // Releasing a packet that holds no decoder is a no-op for the pool but is
  // reported to the observer as a double-free.
  void release(PacketId packet);

  // Number of decoders busy at `now` (after releasing expired ones).
  [[nodiscard]] std::size_t busy(Seconds now);

  // Claim a decoder at `now`, holding it until `until`, for a packet of
  // `network`. Returns true on success; false if the pool is exhausted.
  // (now, until) is a time interval: chronological order, never swapped.
  // ALPHAWAN-LINT-ALLOW(units-swappable-pair: (now, until) interval)
  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
  bool try_acquire(Seconds now, Seconds until, NetworkId network,
                   PacketId packet);

  // True if any currently-busy decoder holds a packet from a network other
  // than `network` (used to attribute inter- vs intra-network contention).
  [[nodiscard]] bool any_foreign_occupant(NetworkId network) const;

  // Ids of packets currently holding decoders (diagnostics/tests).
  [[nodiscard]] std::vector<PacketId> occupants() const;

  void reset();

 private:
  struct Slot {
    Seconds release_at{};
    NetworkId network = 0;
    PacketId packet = 0;
  };

  std::size_t capacity_;
  std::vector<Slot> busy_slots_;  // kept sorted by release_at
  SimObserver* observer_ = nullptr;
};

}  // namespace alphawan
