#include "backhaul/latency_model.hpp"

#include <algorithm>

namespace alphawan {

LatencyModel::LatencyModel(LatencyModelConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

Seconds LatencyModel::lan_transfer(std::size_t bytes) {
  return config_.lan_rtt +
         Seconds{static_cast<double>(bytes) / config_.lan_bytes_per_second};
}

Seconds LatencyModel::wan_one_way() {
  return Seconds{std::max(1e-3, rng_.normal(config_.wan_one_way_mean.value(),
                                            config_.wan_one_way_sigma.value()))};
}

Seconds LatencyModel::master_round_trip() {
  return wan_one_way() + wan_one_way();
}

Seconds LatencyModel::gateway_reboot() {
  return Seconds{std::max(
      0.5, rng_.normal(config_.reboot_mean.value(), config_.reboot_sigma.value()))};
}

Seconds LatencyModel::config_push(std::size_t bytes) {
  return config_.config_push_base + lan_transfer(bytes);
}

}  // namespace alphawan
