// Window-invariant link-gain matrix. Everything about a (node, gateway)
// link that does not change between packets — mean path loss, the frozen
// shadowing draw, and the receive antenna gain toward the node — is
// precomputed once into flat per-gateway columns, so the per-packet cost in
// ScenarioRunner::run_window collapses to one array load plus the
// fast-fading draw (docs/performance.md).
//
// The two static terms are stored separately (not pre-summed) so the runner
// can replay the exact floating-point operation order of the uncached path:
//   rx = ((tx_power - path_loss) + fading) + antenna_gain
// which is what keeps the cached pipeline bit-identical to the original.
//
// The cache also derives per-row *candidate gateway lists*: the columns
// whose best-case static gain could let any transmission clear a prune
// floor, assuming the strongest legal tx power and the largest fast-fading
// draw the Rng can produce (kNormalTailSigmas). Pruning against them is a
// conservative superset filter — a skipped (row, column) pair is guaranteed
// to fall below the floor for every possible draw, so event lists are
// unchanged.
//
// Mutation (upsert_gateway / ensure_row) is not thread-safe; the runner
// performs all registration in a serial prepass and the parallel gateway
// fan-out only reads.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/geometry.hpp"
#include "phy/channel_model.hpp"

namespace alphawan {

// The frozen static terms of one (node, gateway) link.
struct LinkGain {
  Db path_loss{0.0};     // mean path loss + frozen shadowing
  Db antenna_gain{0.0};  // receive antenna gain toward the node
};

class LinkCache {
 public:
  // Queried for the receive antenna gain toward a transmitter position
  // whenever a column is (re)built; must stay valid until the gateway is
  // re-upserted or the cache destroyed (gateways live in stable deques).
  using AntennaGainFn = std::function<Db(const Point&)>;

  explicit LinkCache(ChannelModel& model) : model_(&model) {}

  // Register a gateway column, or refresh its antenna gains when
  // `antenna_epoch` advanced since the last upsert (Gateway::set_antenna
  // bumps the epoch). Gateway positions are immutable. Returns the column
  // index, stable for the lifetime of the cache.
  std::size_t upsert_gateway(GatewayId id, std::uint64_t rx_key,
                             const Point& position,
                             std::uint64_t antenna_epoch,
                             AntennaGainFn antenna_gain);

  // Register a transmitter row (idempotent), extending every column with
  // the link's static terms. A registered id whose origin later differs —
  // a traffic generator reusing virtual ids for different positions — is
  // recomputed in place. Returns the row index.
  std::uint32_t ensure_row(NodeId node, const Point& origin);

  [[nodiscard]] std::size_t row_count() const { return row_origin_.size(); }
  [[nodiscard]] std::size_t column_count() const { return columns_.size(); }

  // Column index for a registered gateway id; kInvalidColumn if absent.
  static constexpr std::uint32_t kInvalidColumn = ~0U;
  [[nodiscard]] std::uint32_t column_of(GatewayId id) const;

  // The per-row static link terms of one gateway column (size row_count()).
  [[nodiscard]] std::span<const LinkGain> gains(std::size_t column) const {
    return columns_[column].gains;
  }

  // Columns whose best-case received power — tx power <= `power_bound`,
  // fading up to kNormalTailSigmas * fast_fading_sigma, plus a 1 dB slack
  // absorbing floating-point reassociation — can clear `floor` from `row`.
  // Built lazily for the (floor, power_bound) in use and kept incrementally
  // as rows are added; any gateway change rebuilds from scratch.
  [[nodiscard]] std::span<const std::uint32_t> candidate_columns(
      std::uint32_t row, Dbm floor, Dbm power_bound);

  // candidate_columns as a bitmask (bit c == column c). Only meaningful
  // when column_count() <= 64 — the dense-deployment fast path that lets
  // the runner test candidacy with one AND instead of materializing
  // per-column transmission lists.
  [[nodiscard]] std::uint64_t candidate_mask(std::uint32_t row, Dbm floor,
                                             Dbm power_bound);

 private:
  struct Column {
    GatewayId id = kInvalidGateway;
    std::uint64_t rx_key = 0;
    Point position{};
    std::uint64_t antenna_epoch = 0;
    AntennaGainFn antenna_gain;
    std::vector<LinkGain> gains;  // indexed by row
  };

  [[nodiscard]] LinkGain compute_gain(const Column& column, NodeId node,
                                      const Point& origin);
  // Static-gain threshold below which a (row, column) pair can never clear
  // the candidate floor.
  [[nodiscard]] double candidate_threshold() const;
  void append_candidates_for_row(std::uint32_t row);
  void rebuild_candidates(Dbm floor, Dbm power_bound);

  ChannelModel* model_;
  std::vector<Column> columns_;
  std::unordered_map<GatewayId, std::uint32_t> column_of_;

  std::vector<NodeId> row_node_;
  std::vector<Point> row_origin_;
  std::unordered_map<NodeId, std::uint32_t> row_of_;

  // Flat candidate storage: per-row [begin, end) ranges into one vector.
  bool candidates_valid_ = false;
  Dbm candidate_floor_{0.0};
  Dbm candidate_power_bound_{0.0};
  std::vector<std::uint32_t> candidate_flat_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> candidate_range_;
};

}  // namespace alphawan
