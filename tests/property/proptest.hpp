// Minimal property-based testing harness (no external deps): random
// topology/traffic generation from a scalar parameter vector, a
// toward-the-minimum shrinker, and a gtest-integrated driver.
//
// A test case is fully described by CaseParams; the generator draws params
// uniformly between a lo and hi bound, a property maps params to
// std::nullopt (pass) or a failure message, and on failure the shrinker
// walks every scalar toward its lo bound while the failure persists, then
// reports the minimal failing case. Everything derives deterministically
// from the seeds, so a reported case replays exactly.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "sim/traffic.hpp"

namespace alphawan::prop {

struct CaseParams {
  int networks = 1;
  int gateways_per_net = 1;
  int nodes_per_net = 8;
  int plan_channels = 8;  // distinct grid channels the nodes spread over
  int decoders = 16;      // decoder pool size of every gateway
  bool burst = false;     // concurrent burst instead of Poisson arrivals
  std::uint64_t seed = 1;
};

inline std::string describe(const CaseParams& p) {
  std::ostringstream out;
  out << "{networks=" << p.networks << " gateways=" << p.gateways_per_net
      << " nodes=" << p.nodes_per_net << " channels=" << p.plan_channels
      << " decoders=" << p.decoders << " traffic="
      << (p.burst ? "burst" : "poisson") << " seed=" << p.seed << "}";
  return out.str();
}

struct World {
  std::unique_ptr<Deployment> deployment;
  std::vector<std::vector<EndNode*>> nodes_by_network;
  std::vector<Transmission> txs;  // one window, network-major packet ids
};

// Deterministic world construction. Every per-network random decision uses
// an Rng derived from (seed, network index), and packet ids are assigned
// network-major — so building the same params with MORE networks appended
// leaves the earlier networks' ids, placements, and traffic bit-identical.
// The monotonicity properties depend on this.
inline World build_world(const CaseParams& p) {
  World world;
  world.deployment = std::make_unique<Deployment>(
      Region{Meters{1000.0}, Meters{1000.0}}, spectrum_1m6(), ChannelModelConfig{});
  GatewayProfile profile = default_profile();
  profile.decoders = p.decoders;
  const Rng root(p.seed);
  PacketIdSource ids;
  for (int n = 0; n < p.networks; ++n) {
    auto& network =
        world.deployment->add_network("net-" + std::to_string(n));
    Rng net_rng = root.substream("net").substream(static_cast<std::uint64_t>(n));
    const auto plan = standard_plan(world.deployment->spectrum(), 0);
    for (int g = 0; g < p.gateways_per_net; ++g) {
      // Spread gateways over the middle of the region deterministically.
      const Point pos{
          Meters{300.0 + 400.0 * g / std::max(1, p.gateways_per_net - 1)},
          Meters{400.0 + 120.0 * n}};
      auto& gw = network.add_gateway(world.deployment->next_gateway_id(), pos,
                                     profile);
      gw.apply_channels(GatewayChannelConfig{plan.channels});
    }
    auto& placed = world.nodes_by_network.emplace_back();
    for (int i = 0; i < p.nodes_per_net; ++i) {
      NodeRadioConfig cfg;
      cfg.channel = world.deployment->spectrum().grid_channel(
          static_cast<int>(net_rng.uniform_int(0, p.plan_channels - 1)));
      cfg.dr = static_cast<DataRate>(net_rng.uniform_int(0, 5));
      cfg.tx_power = Dbm{14.0};
      const Point pos{Meters{net_rng.uniform(250.0, 750.0)},
                      Meters{net_rng.uniform(250.0, 750.0)}};
      placed.push_back(&network.add_node(world.deployment->next_node_id(),
                                         pos, cfg));
    }
    // Per-network traffic: ids and draws never depend on later networks.
    Rng traffic_rng =
        root.substream("traffic").substream(static_cast<std::uint64_t>(n));
    // A dense window (0.8 s at 1.5 pkt/s/node) so Poisson worlds carry
    // real contention, not isolated packets.
    std::vector<Transmission> txs =
        p.burst ? concurrent_burst(placed, Seconds{0.0}, ids)
                : poisson_traffic(placed, Seconds{0.8}, 1.5, traffic_rng, ids);
    world.txs.insert(world.txs.end(), txs.begin(), txs.end());
  }
  return world;
}

// A property maps params to nullopt (pass) or a failure message.
using Property = std::function<std::optional<std::string>(const CaseParams&)>;

inline CaseParams random_case(Rng& rng, const CaseParams& lo,
                              const CaseParams& hi) {
  CaseParams p;
  p.networks = static_cast<int>(rng.uniform_int(lo.networks, hi.networks));
  p.gateways_per_net = static_cast<int>(
      rng.uniform_int(lo.gateways_per_net, hi.gateways_per_net));
  p.nodes_per_net =
      static_cast<int>(rng.uniform_int(lo.nodes_per_net, hi.nodes_per_net));
  p.plan_channels =
      static_cast<int>(rng.uniform_int(lo.plan_channels, hi.plan_channels));
  p.decoders = static_cast<int>(rng.uniform_int(lo.decoders, hi.decoders));
  p.burst = rng.chance(0.5);
  p.seed = rng.next();
  return p;
}

// Walk each scalar toward its lo bound while the property keeps failing.
inline CaseParams shrink(CaseParams failing, const CaseParams& lo,
                         const Property& prop, int max_steps = 64) {
  const auto fields = {&CaseParams::networks, &CaseParams::gateways_per_net,
                       &CaseParams::nodes_per_net, &CaseParams::plan_channels,
                       &CaseParams::decoders};
  int steps = 0;
  bool shrunk = true;
  while (shrunk && steps < max_steps) {
    shrunk = false;
    for (const auto field : fields) {
      const int floor_value = lo.*field;
      while (failing.*field > floor_value && steps < max_steps) {
        CaseParams candidate = failing;
        // Halve the distance to the floor; final step is -1.
        const int distance = candidate.*field - floor_value;
        candidate.*field = floor_value + distance / 2;
        ++steps;
        if (prop(candidate).has_value()) {
          failing = candidate;
          shrunk = true;
        } else {
          break;
        }
      }
    }
  }
  return failing;
}

// Generate `cases` random cases between lo and hi and check `prop` on each;
// on the first failure, shrink and report via gtest.
inline void check_property(const char* name, int cases, std::uint64_t seed,
                           const CaseParams& lo, const CaseParams& hi,
                           const Property& prop) {
  Rng meta(seed);
  for (int c = 0; c < cases; ++c) {
    const CaseParams params = random_case(meta, lo, hi);
    const auto failure = prop(params);
    if (!failure.has_value()) continue;
    const CaseParams minimal = shrink(params, lo, prop);
    const auto minimal_failure = prop(minimal);
    ADD_FAILURE() << name << " (case " << c << "/" << cases
                  << "): " << *failure << "\n  failing: " << describe(params)
                  << "\n  shrunk:  " << describe(minimal) << " -> "
                  << minimal_failure.value_or("(no longer fails)");
    return;
  }
}

}  // namespace alphawan::prop
