#include "net/frame.hpp"

#include <cstring>
#include <stdexcept>

namespace alphawan {
namespace {

void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint8_t FCtrl::to_byte() const {
  return static_cast<std::uint8_t>((adr ? 0x80 : 0) | (adr_ack_req ? 0x40 : 0) |
                                   (ack ? 0x20 : 0) | (fopts_len & 0x0F));
}

FCtrl FCtrl::from_byte(std::uint8_t b) {
  FCtrl f;
  f.adr = (b & 0x80) != 0;
  f.adr_ack_req = (b & 0x40) != 0;
  f.ack = (b & 0x20) != 0;
  f.fopts_len = b & 0x0F;
  return f;
}

std::vector<std::uint8_t> encode_frame(const DataFrame& frame,
                                       const SessionKeys& keys) {
  if (frame.fhdr.fopts.size() > kMaxFOptsLen) {
    throw std::invalid_argument("encode_frame: FOpts longer than 15 bytes");
  }
  if (!frame.frm_payload.empty() && !frame.fport.has_value()) {
    throw std::invalid_argument("encode_frame: payload requires FPort");
  }
  const std::uint8_t direction =
      frame.is_uplink() ? kUplinkDirection : kDownlinkDirection;

  std::vector<std::uint8_t> out;
  out.reserve(13 + frame.fhdr.fopts.size() + frame.frm_payload.size());
  out.push_back(static_cast<std::uint8_t>(static_cast<int>(frame.mtype) << 5));
  put_u32_le(out, frame.fhdr.dev_addr);
  FCtrl fctrl = frame.fhdr.fctrl;
  fctrl.fopts_len = static_cast<std::uint8_t>(frame.fhdr.fopts.size());
  out.push_back(fctrl.to_byte());
  out.push_back(static_cast<std::uint8_t>(frame.fhdr.fcnt & 0xFF));
  out.push_back(static_cast<std::uint8_t>(frame.fhdr.fcnt >> 8));
  out.insert(out.end(), frame.fhdr.fopts.begin(), frame.fhdr.fopts.end());
  if (frame.fport.has_value()) {
    out.push_back(*frame.fport);
    const auto encrypted = lorawan_encrypt_payload(
        frame.fport == 0 ? keys.nwk_skey : keys.app_skey, frame.fhdr.dev_addr,
        frame.fhdr.fcnt, direction, frame.frm_payload);
    out.insert(out.end(), encrypted.begin(), encrypted.end());
  }
  const std::uint32_t mic = lorawan_mic(keys.nwk_skey, frame.fhdr.dev_addr,
                                        frame.fhdr.fcnt, direction, out);
  put_u32_le(out, mic);
  return out;
}

std::optional<FrameHeader> peek_header(std::span<const std::uint8_t> raw) {
  // MHDR(1) + DevAddr(4) + FCtrl(1) + FCnt(2) + MIC(4) minimum.
  if (raw.size() < 12) return std::nullopt;
  FrameHeader fhdr;
  fhdr.dev_addr = get_u32_le(raw.data() + 1);
  fhdr.fctrl = FCtrl::from_byte(raw[5]);
  fhdr.fcnt = static_cast<std::uint16_t>(raw[6] | (raw[7] << 8));
  if (raw.size() < 12u + fhdr.fctrl.fopts_len) return std::nullopt;
  fhdr.fopts.assign(raw.begin() + 8, raw.begin() + 8 + fhdr.fctrl.fopts_len);
  return fhdr;
}

DecodeResult decode_frame(std::span<const std::uint8_t> raw,
                          const SessionKeys& keys) {
  DecodeResult result;
  if (raw.size() < 12) {
    result.error = DecodeError::kTooShort;
    return result;
  }
  const std::uint8_t mhdr = raw[0];
  const auto mtype = static_cast<MType>(mhdr >> 5);
  if (mtype != MType::kUnconfirmedDataUp && mtype != MType::kConfirmedDataUp &&
      mtype != MType::kUnconfirmedDataDown &&
      mtype != MType::kConfirmedDataDown) {
    result.error = DecodeError::kBadMType;
    return result;
  }
  const auto header = peek_header(raw);
  if (!header) {
    result.error = DecodeError::kBadLength;
    return result;
  }
  const std::size_t header_end = 8 + header->fctrl.fopts_len;
  const std::size_t mic_offset = raw.size() - 4;
  if (mic_offset < header_end) {
    result.error = DecodeError::kBadLength;
    return result;
  }

  DataFrame frame;
  frame.mtype = mtype;
  frame.fhdr = *header;
  const std::uint8_t direction =
      frame.is_uplink() ? kUplinkDirection : kDownlinkDirection;

  const std::uint32_t expected_mic =
      lorawan_mic(keys.nwk_skey, frame.fhdr.dev_addr, frame.fhdr.fcnt,
                  direction, raw.subspan(0, mic_offset));
  const std::uint32_t got_mic = get_u32_le(raw.data() + mic_offset);
  if (expected_mic != got_mic) {
    result.error = DecodeError::kBadMic;
    return result;
  }

  if (mic_offset > header_end) {
    frame.fport = raw[header_end];
    const auto cipher = raw.subspan(header_end + 1, mic_offset - header_end - 1);
    frame.frm_payload = lorawan_encrypt_payload(
        *frame.fport == 0 ? keys.nwk_skey : keys.app_skey, frame.fhdr.dev_addr,
        frame.fhdr.fcnt, direction, cipher);
  }
  result.frame = std::move(frame);
  return result;
}

}  // namespace alphawan
