// Frame sync words distinguish coexisting networks at the PHY framing
// level (LoRaWAN spec: 0x34 public, 0x12 private). Crucially — and this is
// the paper's point — the sync word sits BETWEEN preamble and payload, so a
// gateway only learns it after committing a decoder to the packet.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace alphawan {

inline constexpr std::uint16_t kPublicSyncWord = 0x34;
inline constexpr std::uint16_t kPrivateSyncWordBase = 0x12;

// Deterministic sync word for a network: network 0 gets the public word,
// private networks get distinct words derived from their id.
[[nodiscard]] std::uint16_t sync_word_for_network(NetworkId network);

}  // namespace alphawan
