#include "core/controller.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

struct ControllerFixture {
  Deployment deployment{Region{Meters{1000.0}, Meters{1000.0}}, spectrum_1m6()};
  Network* network = nullptr;
  LatencyModel latency{LatencyModelConfig{}, 9};
  Rng rng{33};

  ControllerFixture() {
    network = &deployment.add_network("op");
    deployment.place_gateways(*network, 3, default_profile(), rng);
    deployment.place_nodes(*network, 24, rng);
  }

  AlphaWanConfig fast_config(bool share = false) {
    AlphaWanConfig cfg;
    cfg.planner.ga.population = 12;
    cfg.planner.ga.generations = 15;
    cfg.strategy8_spectrum_sharing = share;
    return cfg;
  }
};

TEST(Controller, UpgradeWithoutSharing) {
  ControllerFixture f;
  AlphaWanController controller(f.fast_config(false), f.latency);
  const auto links = oracle_link_estimates(f.deployment, *f.network);
  const auto report = controller.upgrade(*f.network, f.deployment.spectrum(),
                                         links, uniform_traffic(*f.network));
  EXPECT_GT(report.cp_solve, Seconds{0.0});
  EXPECT_DOUBLE_EQ(report.master_communication.value(), 0.0);
  EXPECT_DOUBLE_EQ(report.frequency_offset.value(), 0.0);
  EXPECT_GT(report.delta.gateways_changed, 0u);
  // Total upgrade latency stays under the paper's ~10 s bound.
  EXPECT_LT(report.total(), Seconds{10.0});
}

TEST(Controller, SharingRequiresMaster) {
  ControllerFixture f;
  AlphaWanController controller(f.fast_config(true), f.latency);
  const auto links = oracle_link_estimates(f.deployment, *f.network);
  EXPECT_THROW(controller.upgrade(*f.network, f.deployment.spectrum(), links,
                                  uniform_traffic(*f.network)),
               std::invalid_argument);
}

TEST(Controller, SharingUsesMasterOffset) {
  ControllerFixture f;
  MasterNode master(
      MasterConfig{f.deployment.spectrum(), 0.4, /*expected=*/2});
  // A first operator takes slot 0.
  (void)master.handle_register({99, "first"});
  AlphaWanController controller(f.fast_config(true), f.latency);
  const auto links = oracle_link_estimates(f.deployment, *f.network);
  const auto report =
      controller.upgrade(*f.network, f.deployment.spectrum(), links,
                         uniform_traffic(*f.network), &master);
  EXPECT_GT(report.master_communication, Seconds{0.15});  // two round trips
  EXPECT_GT(report.frequency_offset, Hz{0.0});      // slot 1 is misaligned
  EXPECT_NEAR(report.overlap_ratio, 0.4, 1e-9);
  // The applied gateway channels actually sit off-grid.
  const Spectrum& s = f.deployment.spectrum();
  const auto& ch = f.network->gateways()[0].channels()[0];
  const int idx = s.nearest_grid_index(ch.center);
  EXPECT_GT(abs(ch.center - s.grid_center(idx)), Hz{10e3});
}

TEST(Controller, RebootOnlyWhenGatewaysChange) {
  ControllerFixture f;
  AlphaWanController controller(f.fast_config(false), f.latency);
  const auto links = oracle_link_estimates(f.deployment, *f.network);
  const auto traffic = uniform_traffic(*f.network);
  const auto first =
      controller.upgrade(*f.network, f.deployment.spectrum(), links, traffic);
  EXPECT_GT(first.gateway_reboot, Seconds{0.0});
  // Re-running with identical inputs converges: nothing to change.
  const auto second =
      controller.upgrade(*f.network, f.deployment.spectrum(), links, traffic);
  EXPECT_EQ(second.delta.gateways_changed, 0u);
  EXPECT_DOUBLE_EQ(second.gateway_reboot.value(), 0.0);
}

TEST(Controller, AcceptPlanGuardsAgainstStaleEpochs) {
  ControllerFixture f;
  AlphaWanController controller(f.fast_config(false), f.latency);
  PlanAssignMsg fresh;
  fresh.operator_id = 1;
  fresh.master_epoch = 5;
  EXPECT_TRUE(controller.accept_plan(1, fresh));
  EXPECT_EQ(controller.plan_epoch(1), 5u);

  PlanAssignMsg stale = fresh;
  stale.master_epoch = 3;
  EXPECT_FALSE(controller.accept_plan(1, stale));
  EXPECT_EQ(controller.plan_epoch(1), 5u);  // last-known-good kept
  EXPECT_EQ(controller.stale_plans_ignored(), 1u);

  // Same epoch (a duplicate) and newer epochs are accepted.
  EXPECT_TRUE(controller.accept_plan(1, fresh));
  PlanAssignMsg newer = fresh;
  newer.master_epoch = 9;
  EXPECT_TRUE(controller.accept_plan(1, newer));
  EXPECT_EQ(controller.plan_epoch(1), 9u);
  // Epochs are tracked per operator.
  EXPECT_EQ(controller.plan_epoch(2), 0u);
}

TEST(Controller, UpgradeStampsMasterEpoch) {
  ControllerFixture f;
  AlphaWanController controller(f.fast_config(true), f.latency);
  MasterNode master(
      MasterConfig{f.deployment.spectrum(), 0.4, /*expected=*/2});
  const auto links = oracle_link_estimates(f.deployment, *f.network);
  const auto report =
      controller.upgrade(*f.network, f.deployment.spectrum(), links,
                         uniform_traffic(*f.network), &master);
  EXPECT_EQ(report.master_epoch, master.current_epoch());
  EXPECT_EQ(controller.plan_epoch(f.network->id()), master.current_epoch());
}

TEST(Controller, RebootDominatesLatency) {
  // Paper Fig. 17a: reboot (~4.6 s) dominates the upgrade latency.
  ControllerFixture f;
  AlphaWanController controller(f.fast_config(false), f.latency);
  const auto links = oracle_link_estimates(f.deployment, *f.network);
  const auto report = controller.upgrade(*f.network, f.deployment.spectrum(),
                                         links, uniform_traffic(*f.network));
  EXPECT_GT(report.gateway_reboot, report.config_distribution);
  EXPECT_GT(report.gateway_reboot, Seconds{3.0});
}

}  // namespace
}  // namespace alphawan
