// Property: for ANY random topology, channel plan, and traffic mix, the
// invariant checker stays clean and packet conservation holds exactly.
#include <numeric>

#include "check/digest.hpp"
#include "proptest.hpp"

namespace alphawan {
namespace {

using prop::CaseParams;

std::optional<std::string> join_violations(const SimInvariants& inv) {
  if (inv.ok()) return std::nullopt;
  std::string joined;
  for (const auto& v : inv.violations()) {
    if (!joined.empty()) joined += "; ";
    joined += v;
  }
  return joined;
}

// Invariants + conservation on a random world.
std::optional<std::string> invariants_hold(const CaseParams& p) {
  auto world = prop::build_world(p);
  SimInvariants checker;
  ScenarioRunner runner(*world.deployment, p.seed ^ 0xBEEF);
  runner.set_invariants(&checker);
  MetricsCollector metrics;
  const auto result = runner.run_window(world.txs, metrics);
  checker.check_metrics(metrics);
  if (result.total_offered() != world.txs.size()) {
    return "offered != generated transmissions";
  }
  // Conservation down to exact counts.
  std::size_t losses = 0;
  for (const auto cause :
       {LossCause::kDecoderContentionIntra, LossCause::kDecoderContentionInter,
        LossCause::kChannelContentionIntra, LossCause::kChannelContentionInter,
        LossCause::kOther}) {
    losses += metrics.losses(cause);
  }
  if (metrics.total_offered() != metrics.total_delivered() + losses) {
    return "offered != delivered + sum(loss causes)";
  }
  return join_violations(checker);
}

// Bit-identical reruns: same params -> same fate digest.
std::optional<std::string> deterministic_digest(const CaseParams& p) {
  std::uint64_t digests[2] = {0, 0};
  for (auto& digest : digests) {
    auto world = prop::build_world(p);
    ScenarioRunner runner(*world.deployment, p.seed);
    digest = fate_digest(runner.run_window(world.txs).fates);
  }
  if (digests[0] != digests[1]) {
    return "same params produced different digests: " +
           digest_hex(digests[0]) + " vs " + digest_hex(digests[1]);
  }
  return std::nullopt;
}

const CaseParams kLo{1, 1, 1, 1, 1, false, 0};
const CaseParams kHi{3, 2, 28, 8, 16, false, 0};

TEST(PropertyInvariants, HoldOnRandomTopologies) {
  prop::check_property("invariants-hold", 120, 0xA11CE, kLo, kHi,
                       invariants_hold);
}

TEST(PropertyInvariants, RunsAreBitReproducible) {
  prop::check_property("deterministic-digest", 60, 0xD15E5, kLo, kHi,
                       deterministic_digest);
}

// The negative control demanded by the acceptance criteria: an injected
// double-release in the decoder pool MUST be caught.
TEST(PropertyInvariants, InjectedDoubleReleaseIsCaught) {
  SimInvariants checker;
  DecoderPool pool(4);
  pool.set_observer(&checker);
  ASSERT_TRUE(pool.try_acquire(Seconds{0.0}, Seconds{1.0}, 0, 42));
  pool.release(42);
  EXPECT_TRUE(checker.ok());
  pool.release(42);  // the injected double-free
  EXPECT_FALSE(checker.ok());
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_NE(checker.violations()[0].find("double-free"), std::string::npos);
  EXPECT_THROW(checker.require_clean(), std::logic_error);
}

// Duplicate acquisition of the same packet is equally fatal.
TEST(PropertyInvariants, DuplicateAcquireIsCaught) {
  SimInvariants checker;
  DecoderPool pool(4);
  pool.set_observer(&checker);
  ASSERT_TRUE(pool.try_acquire(Seconds{0.0}, Seconds{1.0}, 0, 7));
  ASSERT_TRUE(pool.try_acquire(Seconds{0.0}, Seconds{1.0}, 0, 7));
  EXPECT_FALSE(checker.ok());
  EXPECT_NE(checker.violations()[0].find("already holds"), std::string::npos);
}

// A fail-fast checker throws at the violation site instead of collecting.
TEST(PropertyInvariants, FailFastThrowsImmediately) {
  SimInvariants checker;
  checker.set_fail_fast(true);
  DecoderPool pool(2);
  pool.set_observer(&checker);
  ASSERT_TRUE(pool.try_acquire(Seconds{0.0}, Seconds{1.0}, 0, 1));
  EXPECT_THROW(pool.release(99), std::logic_error);
}

}  // namespace
}  // namespace alphawan
