// alphawan-lint fixture: RNG-substream family, negative cases.
// Linted as-if at src/core/rng_substream_negative.cpp; must stay silent.
#include <cstddef>
#include <cstdint>

namespace alphawan {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : seed_(seed) {}
  double uniform() { return static_cast<double>(seed_++); }
  Rng substream(std::uint64_t key) const { return Rng(seed_ ^ key); }

 private:
  std::uint64_t seed_;
};

template <typename Body>
void parallel_for(std::size_t count, Body body) {
  for (std::size_t i = 0; i < count; ++i) body(i);
}

struct RunConfig {
  std::uint64_t seed = 0;
};

// Seed flows in from configuration: replayable from one root seed.
inline double configured_seed(const RunConfig& config) {
  Rng rng(config.seed);
  return rng.uniform();
}

// The sanctioned parallel pattern: the shared Rng is only forked via the
// const substream() derivation; draws happen on the per-index local.
inline double keyed_parallel(const RunConfig& config, std::size_t n) {
  const Rng rng(config.seed);
  double sum = 0.0;
  parallel_for(n, [&](std::size_t i) {
    Rng local = rng.substream(static_cast<std::uint64_t>(i));
    sum += local.uniform();
  });
  return sum;
}

}  // namespace alphawan
