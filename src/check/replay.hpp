// Deterministic replay of a single packet's event chain.
//
// Because fast-fading draws are keyed by (runner seed, gateway, packet) —
// see packet_link_rng — a packet's reception at every gateway can be
// recomputed in isolation, bit-for-bit identical to the full run, without
// mutating any simulation state. This is the debugging tool for "why was
// packet N lost?": it lists, per gateway that could hear the packet, the
// received power, SNR, and disposition, plus the resulting fate.
//
// Limitation: post-processors installed via RunOptions (the CIC baseline)
// are not replayed; the report reflects the stock radio pipeline.
#pragma once

#include <string>
#include <vector>

#include "sim/scenario.hpp"

namespace alphawan {

// What one gateway saw of the replayed packet.
struct GatewayObservation {
  GatewayId gateway = kInvalidGateway;
  NetworkId network = 0;
  bool own_network = false;  // gateway belongs to the packet's network
  bool pruned = false;       // below the runner's prune floor at this gateway
  Dbm rx_power{-400.0};
  Db snr{-400.0};
  RxDisposition disposition = RxDisposition::kNotDetected;
  int chain_channel = -1;
};

struct ReplayReport {
  bool found = false;  // the packet id exists in the window
  Transmission tx{};
  std::vector<GatewayObservation> observations;
  PacketFate fate{};  // classification against own-network gateways

  // Human-readable multi-line rendering for CLI debugging.
  [[nodiscard]] std::string to_string() const;
};

// Re-run `packet`'s event chain through every gateway of `deployment`,
// reproducing the draws a ScenarioRunner with the same `seed` and
// `prune_margin` made. Radios are copied before processing, so decoder
// pools, servers, and metrics are untouched.
[[nodiscard]] ReplayReport replay_packet(Deployment& deployment,
                                         std::uint64_t seed,
                                         const std::vector<Transmission>& txs,
                                         PacketId packet,
                                         Db prune_margin = Db{25.0});

}  // namespace alphawan
