#include "net/end_node.hpp"

#include "phy/airtime.hpp"

namespace alphawan {

EndNode::EndNode(NodeId id, NetworkId network, Point position,
                 NodeRadioConfig config)
    : id_(id),
      network_(network),
      position_(position),
      config_(config),
      dev_addr_(make_dev_addr(static_cast<std::uint8_t>(network & 0x7F), id)) {
  // Derive deterministic per-device session keys (a stand-in for OTAA).
  for (int i = 0; i < 16; ++i) {
    keys_.nwk_skey[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(0xA0 + i + id * 7 + network * 31);
    keys_.app_skey[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(0x5F + i + id * 13 + network * 17);
  }
}

TxParams EndNode::tx_params() const {
  TxParams params;
  params.sf = dr_to_sf(config_.dr);
  params.bandwidth = config_.channel.bandwidth;
  return params;
}

Transmission EndNode::make_transmission(Seconds start,
                                        std::uint32_t payload_bytes,
                                        PacketId packet_id) {
  Transmission tx;
  tx.id = packet_id;
  tx.node = id_;
  tx.network = network_;
  tx.sync_word = sync_word_for_network(network_);
  tx.channel = config_.channel;
  tx.params = tx_params();
  tx.payload_bytes = payload_bytes;
  tx.tx_power = config_.tx_power;
  tx.origin = position_;
  tx.start = start;
  ++fcnt_;
  last_tx_end_ = tx.end();
  last_tx_airtime_ = time_on_air(tx.params, payload_bytes);
  return tx;
}

std::vector<std::uint8_t> EndNode::encode_uplink(
    std::span<const std::uint8_t> app_payload) {
  DataFrame frame;
  frame.mtype = MType::kUnconfirmedDataUp;
  frame.fhdr.dev_addr = dev_addr_;
  frame.fhdr.fcnt = fcnt_;
  frame.fport = 1;
  frame.frm_payload.assign(app_payload.begin(), app_payload.end());
  ++fcnt_;
  return encode_frame(frame, keys_);
}

Seconds EndNode::next_allowed_start(double duty_cycle_limit) const {
  if (last_tx_end_ < Seconds{0.0} || duty_cycle_limit >= 1.0) {
    return Seconds{0.0};
  }
  // Classic per-subband off-time rule: T_off = T_air/duty - T_air.
  const Seconds off_time =
      last_tx_airtime_ / duty_cycle_limit - last_tx_airtime_;
  return last_tx_end_ + off_time;
}

}  // namespace alphawan
