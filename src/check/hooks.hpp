// Observer hooks the radio pipeline exposes to the correctness harness.
//
// This header depends only on common/types.hpp so that radio-layer code can
// include it without pulling in the checker itself. All callbacks default
// to no-ops; instrumented components hold a nullable SimObserver* and skip
// notification entirely when unset, so the hooks cost one pointer test on
// the hot path.
#pragma once

#include "common/types.hpp"

namespace alphawan {

class DecoderPool;

class SimObserver {
 public:
  virtual ~SimObserver() = default;

  // ---- decoder pool lifecycle ----
  virtual void on_pool_reset(const DecoderPool& /*pool*/) {}
  virtual void on_pool_acquire(const DecoderPool& /*pool*/, Seconds /*now*/,
                               Seconds /*until*/, NetworkId /*network*/,
                               PacketId /*packet*/) {}
  // `was_held` is false when the pool was asked to release a packet it does
  // not hold (a double-free, which the checker reports).
  virtual void on_pool_release(const DecoderPool& /*pool*/,
                               PacketId /*packet*/, bool /*was_held*/) {}
  virtual void on_pool_refusal(const DecoderPool& /*pool*/, Seconds /*now*/,
                               NetworkId /*network*/, PacketId /*packet*/) {}

  // ---- gateway radio dispatch ----
  // A radio starts processing one window of events.
  virtual void on_radio_window_begin() {}
  // One detected packet is handed to the FCFS dispatcher. `arrival` is the
  // transmission start, `lock_on` the end-of-preamble dispatch instant.
  virtual void on_dispatch(Seconds /*arrival*/, Seconds /*lock_on*/,
                           PacketId /*packet*/) {}
};

}  // namespace alphawan
