#include "radio/decoder_pool.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

TEST(DecoderPool, ZeroCapacityThrows) {
  EXPECT_THROW(DecoderPool(0), std::invalid_argument);
}

TEST(DecoderPool, AcquireUpToCapacity) {
  DecoderPool pool(3);
  EXPECT_TRUE(pool.try_acquire(Seconds{0.0}, Seconds{1.0}, 0, 1));
  EXPECT_TRUE(pool.try_acquire(Seconds{0.0}, Seconds{1.0}, 0, 2));
  EXPECT_TRUE(pool.try_acquire(Seconds{0.0}, Seconds{1.0}, 0, 3));
  EXPECT_FALSE(pool.try_acquire(Seconds{0.0}, Seconds{1.0}, 0, 4));
  EXPECT_EQ(pool.busy(Seconds{0.5}), 3u);
}

TEST(DecoderPool, ReleaseFreesSlots) {
  DecoderPool pool(2);
  EXPECT_TRUE(pool.try_acquire(Seconds{0.0}, Seconds{1.0}, 0, 1));
  EXPECT_TRUE(pool.try_acquire(Seconds{0.0}, Seconds{2.0}, 0, 2));
  EXPECT_FALSE(pool.try_acquire(Seconds{0.5}, Seconds{3.0}, 0, 3));
  // Packet 1 ends at 1.0; a new acquire at t=1.0 must succeed.
  EXPECT_TRUE(pool.try_acquire(Seconds{1.0}, Seconds{3.0}, 0, 4));
  EXPECT_EQ(pool.busy(Seconds{1.5}), 2u);
  EXPECT_EQ(pool.busy(Seconds{2.5}), 1u);
  EXPECT_EQ(pool.busy(Seconds{3.5}), 0u);
}

TEST(DecoderPool, BusyNeverExceedsCapacity) {
  DecoderPool pool(16);
  for (int i = 0; i < 100; ++i) {
    (void)pool.try_acquire(Seconds{static_cast<double>(i) * 0.01},
                           Seconds{10.0}, 0, static_cast<PacketId>(i));
    ASSERT_LE(pool.busy(Seconds{static_cast<double>(i) * 0.01}), 16u);
  }
}

TEST(DecoderPool, ForeignOccupantDetection) {
  DecoderPool pool(2);
  EXPECT_TRUE(pool.try_acquire(Seconds{0.0}, Seconds{1.0}, /*network=*/0, 1));
  EXPECT_FALSE(pool.any_foreign_occupant(0));
  EXPECT_TRUE(pool.any_foreign_occupant(1));
  EXPECT_TRUE(pool.try_acquire(Seconds{0.0}, Seconds{1.0}, /*network=*/1, 2));
  EXPECT_TRUE(pool.any_foreign_occupant(0));
  EXPECT_TRUE(pool.any_foreign_occupant(1));
}

TEST(DecoderPool, OccupantsListed) {
  DecoderPool pool(4);
  (void)pool.try_acquire(Seconds{0.0}, Seconds{2.0}, 0, 11);
  (void)pool.try_acquire(Seconds{0.0}, Seconds{1.0}, 0, 22);
  const auto occupants = pool.occupants();
  EXPECT_EQ(occupants.size(), 2u);
}

TEST(DecoderPool, ResetClears) {
  DecoderPool pool(1);
  (void)pool.try_acquire(Seconds{0.0}, Seconds{100.0}, 0, 1);
  pool.reset();
  EXPECT_TRUE(pool.try_acquire(Seconds{0.0}, Seconds{1.0}, 0, 2));
}

TEST(DecoderPool, InterleavedReleaseOrder) {
  DecoderPool pool(2);
  // Later-acquired packet releases first.
  EXPECT_TRUE(pool.try_acquire(Seconds{0.0}, Seconds{5.0}, 0, 1));
  EXPECT_TRUE(pool.try_acquire(Seconds{0.1}, Seconds{1.0}, 0, 2));
  EXPECT_FALSE(pool.try_acquire(Seconds{0.2}, Seconds{1.0}, 0, 3));
  EXPECT_TRUE(pool.try_acquire(Seconds{1.5}, Seconds{2.0}, 0, 4));  // slot from packet 2
  EXPECT_FALSE(pool.try_acquire(Seconds{1.6}, Seconds{2.0}, 0, 5));
}

class PoolCapacitySweep : public ::testing::TestWithParam<int> {};

TEST_P(PoolCapacitySweep, ExactlyCapacityConcurrent) {
  const int capacity = GetParam();
  DecoderPool pool(static_cast<std::size_t>(capacity));
  int granted = 0;
  for (int i = 0; i < capacity + 10; ++i) {
    if (pool.try_acquire(Seconds{0.0}, Seconds{1.0}, 0, static_cast<PacketId>(i))) ++granted;
  }
  EXPECT_EQ(granted, capacity);
  // After release, the pool refills to exactly `capacity` again.
  granted = 0;
  for (int i = 0; i < capacity + 10; ++i) {
    if (pool.try_acquire(Seconds{2.0}, Seconds{3.0}, 0, static_cast<PacketId>(100 + i))) {
      ++granted;
    }
  }
  EXPECT_EQ(granted, capacity);
}

INSTANTIATE_TEST_SUITE_P(Capacities, PoolCapacitySweep,
                         ::testing::Values(1, 2, 8, 16, 32, 64));

}  // namespace
}  // namespace alphawan
