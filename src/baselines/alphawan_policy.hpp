// The paper's own system, packaged as a registry scheme so the eval grid
// treats it like any other baseline: standard provisioning first (the
// state every operator starts from), then the AlphaWAN capacity-upgrade
// pipeline (intra-network CP solve + config distribution) re-plans the
// network. No capture-side policy — AlphaWAN runs on stock COTS gateways;
// that is the point of the paper.
#pragma once

#include "baselines/standard_lorawan.hpp"
#include "core/controller.hpp"

namespace alphawan {

struct AlphaWanBaselineOptions {
  AlphaWanConfig controller{};
  // Per-node traffic demand handed to the CP solver, in offered airtime
  // utilization (Erlangs). Benches scale this with the emulated user count
  // (fig13: users_per_node * utilization).
  double demand_per_node = 0.005;

  AlphaWanBaselineOptions() {
    // Registry default: a single-network upgrade with no Master in the
    // loop (strategy 8 needs one; benches that want it construct the
    // controller themselves).
    controller.strategy8_spectrum_sharing = false;
  }
};

class AlphaWanPolicy final : public NodeMacPolicy {
 public:
  explicit AlphaWanPolicy(AlphaWanBaselineOptions options = {},
                          StandardLorawanOptions node_side = {})
      : options_(options), node_side_(node_side) {}

  [[nodiscard]] std::string_view name() const override { return "alphawan"; }
  void configure(Deployment& deployment, Network& network,
                 Rng& rng) const override;

  [[nodiscard]] const AlphaWanBaselineOptions& options() const {
    return options_;
  }

 private:
  AlphaWanBaselineOptions options_;
  StandardLorawanOptions node_side_;
};

}  // namespace alphawan
