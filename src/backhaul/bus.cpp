#include "backhaul/bus.hpp"

#include <utility>

namespace alphawan {

void MessageBus::attach(const EndpointId& id, Handler handler) {
  handlers_[id] = std::move(handler);
}

void MessageBus::detach(const EndpointId& id) { handlers_.erase(id); }

void MessageBus::send(const EndpointId& from, const EndpointId& to,
                      std::vector<std::uint8_t> payload, bool wan) {
  ++stats_.messages;
  stats_.bytes += payload.size();
  const Seconds delay = wan ? latency_.wan_one_way()
                            : latency_.lan_transfer(payload.size());
  engine_.schedule_in(
      delay, [this, from, to, data = std::move(payload)]() mutable {
        const auto it = handlers_.find(to);
        if (it == handlers_.end()) {
          ++dropped_;
          return;
        }
        it->second(from, std::move(data));
      });
}

}  // namespace alphawan
