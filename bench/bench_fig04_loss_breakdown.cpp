// Figure 4 reproduction: packet-loss cause breakdown of a standard
// LoRaWAN under (a) growing single-network user scale and (b) a growing
// number of coexisting networks (1k users each). The paper's finding:
// decoder contention overtakes channel contention beyond ~3k users and
// dominates once 3+ networks coexist.
#include "harness.hpp"

using namespace alphawan;
using namespace alphawan::bench;

namespace {

constexpr Seconds kWindow{90.0};

// Offered traffic of fully active duty-cycled users: each user pushes up
// to its 1% regulatory airtime budget (the paper's capacity-stress
// regime).
std::vector<Transmission> offered_traffic(Network& network, Rng& rng,
                                          PacketIdSource& ids) {
  std::vector<Transmission> txs;
  for (auto& node : network.nodes()) {
    const Seconds airtime = time_on_air(node.tx_params(), 10);
    const double rate = 0.0095 / airtime.value();
    std::vector<EndNode*> one = {&node};
    auto node_txs = poisson_traffic(one, kWindow, rate, rng, ids, 0.01);
    txs.insert(txs.end(), node_txs.begin(), node_txs.end());
  }
  sort_by_start(txs);
  return txs;
}

struct Breakdown {
  double decoder_intra = 0, decoder_inter = 0;
  double channel_intra = 0, channel_inter = 0;
  double other = 0;
  double prr = 0;
};

Breakdown run(std::size_t networks_count, std::size_t users_per_network,
              std::uint64_t seed) {
  // Dense mutual coverage (every gateway hears every user): the regime of
  // the paper's operational deployments, where decoder contention — not
  // spatial reuse — governs capacity.
  Deployment deployment{Region{Meters{500}, Meters{400}}, spectrum_4m8(),
                        urban_channel(seed)};
  Rng rng(seed);
  std::vector<Network*> nets;
  for (std::size_t n = 0; n < networks_count; ++n) {
    auto& net = deployment.add_network("op" + std::to_string(n));
    deployment.place_gateways(net, 15 / networks_count + 3, default_profile(),
                              rng);
    deployment.place_nodes(net, users_per_network, rng);
    // TTN-style homogeneous operation (paper Sec. 3.2): every gateway on
    // the SAME standard plan, users on the plan's channels.
    StandardLorawanOptions options;
    options.spread_gateways_across_plans = false;
    StandardLorawanPolicy(options).configure(deployment, net, rng);
    // Data-rate mix of an operational network: the paper's measured TTN
    // distribution (Fig. 6e) rather than the fully-converged ADR of a
    // dense lab deployment (which would put 100% on DR5).
    for (auto& node : net.nodes()) {
      const double u = rng.uniform();
      NodeRadioConfig cfg = node.config();
      if (u < 0.537) cfg.dr = DataRate::kDR5;
      else if (u < 0.537 + 0.125) cfg.dr = DataRate::kDR4;
      else if (u < 0.537 + 0.125 + 0.194) cfg.dr = DataRate::kDR3;
      else if (u < 0.537 + 0.125 + 0.194 + 0.09) cfg.dr = DataRate::kDR2;
      else if (u < 0.537 + 0.125 + 0.194 + 0.09 + 0.04) cfg.dr = DataRate::kDR1;
      else cfg.dr = DataRate::kDR0;
      node.apply_config(cfg);
    }
    nets.push_back(&net);
  }
  ScenarioRunner runner(deployment, seed);
  MetricsCollector metrics;
  PacketIdSource ids;
  // Merge traffic from every network into one shared-spectrum window.
  std::vector<Transmission> all;
  for (auto* net : nets) {
    auto txs = offered_traffic(*net, rng, ids);
    all.insert(all.end(), txs.begin(), txs.end());
  }
  sort_by_start(all);
  (void)runner.run_window(all, metrics);

  Breakdown b;
  b.decoder_intra = metrics.loss_fraction(LossCause::kDecoderContentionIntra);
  b.decoder_inter = metrics.loss_fraction(LossCause::kDecoderContentionInter);
  b.channel_intra = metrics.loss_fraction(LossCause::kChannelContentionIntra);
  b.channel_inter = metrics.loss_fraction(LossCause::kChannelContentionInter);
  b.other = metrics.loss_fraction(LossCause::kOther);
  b.prr = metrics.total_prr();
  return b;
}

void print_breakdown(const char* label, const Breakdown& b) {
  std::printf("  %-10s %-9.3f %-9.3f %-9.3f %-9.3f %-8.3f %-7.3f\n", label,
              b.decoder_intra, b.decoder_inter, b.channel_intra,
              b.channel_inter, b.other, b.prr);
}

}  // namespace

int main() {
  print_header(
      "Fig. 4a — loss causes vs user scale (single standard LoRaWAN,\n"
      "15 GW, 4.8 MHz). Paper: decoder contention overtakes channel\n"
      "contention beyond ~3k users.");
  std::printf("  %-10s %-9s %-9s %-9s %-9s %-8s %-7s\n", "users", "dec-intra",
              "dec-inter", "chan-intra", "chan-intr", "other", "PRR");
  for (std::size_t users : {500u, 1000u, 2000u, 3000u, 4000u, 6000u, 8000u}) {
    const auto b = run(1, users, 17);
    print_breakdown(std::to_string(users).c_str(), b);
  }

  print_header(
      "Fig. 4b — loss causes vs # coexisting networks (1k users each).\n"
      "Paper: inter-network decoder contention leads once 3+ networks\n"
      "coexist.");
  std::printf("  %-10s %-9s %-9s %-9s %-9s %-8s %-7s\n", "networks",
              "dec-intra", "dec-inter", "chan-intra", "chan-intr", "other",
              "PRR");
  for (std::size_t networks : {1u, 2u, 3u, 4u, 5u, 6u}) {
    const auto b = run(networks, 1000, 23);
    print_breakdown(std::to_string(networks).c_str(), b);
  }
  return 0;
}
