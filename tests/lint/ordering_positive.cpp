// alphawan-lint fixture: ordering-keys family, positive cases.
// Linted as-if at src/radio/ordering_positive.cpp.
#include <map>
#include <set>
#include <string>

namespace alphawan {

struct DecoderPool {
  int capacity = 16;
};

struct Registry {
  // Pointer-keyed ordered containers: iteration order is allocation
  // order, which varies run to run. Both are findings.
  std::map<const DecoderPool*, int> held_by_pool;
  std::set<DecoderPool*> active_pools;
};

inline int count(const Registry& registry) {
  int total = 0;
  for (const auto& [pool, held] : registry.held_by_pool) {
    total += held + pool->capacity;
  }
  return total;
}

}  // namespace alphawan
