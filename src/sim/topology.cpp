#include "sim/topology.hpp"

#include <algorithm>

#include "phy/sensitivity.hpp"

namespace alphawan {

Deployment::Deployment(Region region, Spectrum spectrum,
                       ChannelModelConfig channel_config)
    : region_(region), spectrum_(spectrum), channel_model_(channel_config) {}

Network& Deployment::add_network(const std::string& name) {
  networks_.emplace_back(next_network_id_++, name);
  return networks_.back();
}

Network* Deployment::find_network(NetworkId id) {
  const auto it =
      std::find_if(networks_.begin(), networks_.end(),
                   [&](const Network& n) { return n.id() == id; });
  return it == networks_.end() ? nullptr : &*it;
}

std::vector<GatewayId> Deployment::place_gateways(
    Network& network, std::size_t count, const GatewayProfile& profile,
    Rng& rng) {
  const auto positions = grid_placement(region_, count, rng);
  std::vector<GatewayId> ids;
  ids.reserve(count);
  const auto plan0 = standard_plan(spectrum_, 0);
  for (const auto& pos : positions) {
    const GatewayId id = next_gateway_id();
    auto& gw = network.add_gateway(id, pos, profile);
    gw.apply_channels(GatewayChannelConfig{plan0.channels});
    ids.push_back(id);
  }
  return ids;
}

ShardedLinkCache& Deployment::shard_caches(int shards) {
  const ShardLayout layout = shard_layout(shards);
  if (shard_caches_.shard_count() !=
      static_cast<std::size_t>(layout.shards())) {
    shard_caches_.reset(static_cast<std::size_t>(layout.shards()));
  }
  for (auto& network : networks_) {
    for (auto& gw : network.gateways()) {
      // Gateway positions are immutable, so a gateway's home slice is
      // stable for a given shard count.
      const auto home = static_cast<std::size_t>(layout.shard_of(gw.position()));
      shard_caches_.slice(home).upsert_gateway(
          gw.id(), kGatewayKeyBase + gw.id(), gw.position(),
          gw.antenna_epoch(),
          [&gw](const Point& origin) {
            return gw.antenna_gain_towards(origin);
          });
    }
  }
  return shard_caches_;
}

Db Deployment::mean_snr(const EndNode& node, const Gateway& gw) {
  const Meters dist = distance(node.position(), gw.position());
  return channel_model_.mean_link_snr(node.id(), kGatewayKeyBase + gw.id(),
                                      dist, node.config().tx_power) +
         gw.antenna_gain_towards(node.position());
}

DataRate Deployment::feasible_dr(const EndNode& node, const Network& network,
                                 Db margin) {
  Db best{-1e9};
  for (const auto& gw : network.gateways()) {
    best = std::max(best, mean_snr(node, gw));
  }
  const auto dr = best_data_rate_for_snr(best, margin);
  return dr.value_or(DataRate::kDR0);
}

std::vector<NodeId> Deployment::place_nodes(Network& network,
                                            std::size_t count, Rng& rng) {
  const auto positions = uniform_placement(region_, count, rng);
  const auto channels = spectrum_.grid_channels();
  std::vector<NodeId> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId id = next_node_id();
    NodeRadioConfig cfg;
    cfg.channel = channels[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(channels.size()) - 1))];
    cfg.tx_power = kDefaultTxPower;
    cfg.dr = DataRate::kDR0;
    auto& node = network.add_node(id, positions[i], cfg);
    cfg.dr = feasible_dr(node, network);
    node.apply_config(cfg);
    ids.push_back(id);
  }
  return ids;
}

}  // namespace alphawan
