// Coexistence: two operators share 1.6 MHz through the AlphaWAN Master.
//
// Walks the full inter-network channel-planning exchange — registration
// and plan assignment as real protocol messages over the simulated
// backhaul — then shows the capacity effect of frequency-misaligned plans.
//
//   ./example_coexistence
#include <cmath>
#include <cstdio>

#include "backhaul/bus.hpp"
#include "core/controller.hpp"
#include "sim/scenario.hpp"
#include "sim/traffic.hpp"

using namespace alphawan;

namespace {

std::vector<EndNode*> ring_users(Deployment& deployment, Network& network,
                                 int count, int pair_offset, double radius) {
  std::vector<EndNode*> nodes;
  const auto channels = deployment.spectrum().grid_channels();
  const Point center = deployment.region().center();
  for (int k = 0; k < count; ++k) {
    const int i = k + pair_offset;
    NodeRadioConfig cfg;
    cfg.channel = channels[i % 8];
    cfg.dr = static_cast<DataRate>((i / 8) % kNumDataRates);
    const double angle = 2 * 3.14159265 * k / count;
    nodes.push_back(&network.add_node(
        deployment.next_node_id(),
        Point{Meters{center.x.value() + radius * std::cos(angle)},
              Meters{center.y.value() + radius * std::sin(angle)}},
        cfg));
  }
  return nodes;
}

void add_gateways(Deployment& deployment, Network& network, int count) {
  const Point center = deployment.region().center();
  const auto plan0 = standard_plan(deployment.spectrum(), 0);
  for (int i = 0; i < count; ++i) {
    auto& gw = network.add_gateway(deployment.next_gateway_id(),
                                   Point{Meters{center.x.value() + 20.0 * i},
                                         Meters{center.y.value() + 10.0 * i}},
                                   default_profile());
    gw.apply_channels(GatewayChannelConfig{plan0.channels});
  }
}

}  // namespace

int main() {
  ChannelModelConfig quiet;
  quiet.shadowing_sigma_db = Db{0.3};
  quiet.fast_fading_sigma_db = Db{0.1};
  Deployment deployment{Region{Meters{600}, Meters{600}}, spectrum_1m6(), quiet};
  auto& op1 = deployment.add_network("metro-utility");
  auto& op2 = deployment.add_network("parking-iot");
  add_gateways(deployment, op1, 3);
  add_gateways(deployment, op2, 3);
  auto nodes1 = ring_users(deployment, op1, 24, 0, 130.0);
  auto nodes2 = ring_users(deployment, op2, 24, 24, 150.0);

  std::printf("Two operators, one 1.6 MHz band, 24 users each.\n\n");

  // --- the Master protocol over the simulated backhaul ------------------
  Engine engine;
  LatencyModel latency{LatencyModelConfig{}, 11};
  MessageBus bus(engine, latency);
  MasterNode master(MasterConfig{deployment.spectrum(), 0.4, 2});
  MasterService service(master, bus);

  for (const Network* op : {&op1, &op2}) {
    const EndpointId endpoint = "server-" + op->name();
    bus.attach(endpoint, [&, name = op->name()](const EndpointId&,
                                                std::vector<std::uint8_t> p) {
      const auto msg = decode_message(p);
      if (!msg) return;
      if (const auto* ack = std::get_if<RegisterAckMsg>(&*msg)) {
        std::printf("  [%s] registered with Master (epoch %u)\n",
                    name.c_str(), ack->master_epoch);
      } else if (const auto* assign = std::get_if<PlanAssignMsg>(&*msg)) {
        std::printf(
            "  [%s] plan assigned: %zu channels, offset %+.1f kHz, "
            "overlap %.0f%%\n",
            name.c_str(), assign->channels.size(),
            assign->frequency_offset.value() / 1e3, 100.0 * assign->overlap_ratio);
      }
    });
    bus.send(endpoint, MasterService::endpoint(),
             encode_message(RegisterMsg{op->id(), op->name()}), /*wan=*/true);
    bus.send(endpoint, MasterService::endpoint(),
             encode_message(PlanRequestMsg{op->id(),
                                           deployment.spectrum().base,
                                           deployment.spectrum().width, 8}),
             /*wan=*/true);
  }
  engine.run();
  std::printf("  backhaul: %zu messages, %zu bytes, %.0f ms elapsed\n\n",
              bus.stats().messages, bus.stats().bytes, engine.now().value() * 1e3);

  // --- apply AlphaWAN on both operators ---------------------------------
  for (Network* op : {&op1, &op2}) {
    AlphaWanConfig config;
    config.strategy8_spectrum_sharing = true;
    AlphaWanController controller(config, latency);
    const auto links = oracle_link_estimates(deployment, *op);
    const auto report = controller.upgrade(
        *op, deployment.spectrum(), links, uniform_traffic(*op), &master);
    std::printf("  [%s] upgraded: offset %+.1f kHz, total latency %.1f s\n",
                op->name().c_str(), report.frequency_offset.value() / 1e3,
                report.total().value());
  }

  // --- measure the shared-spectrum burst --------------------------------
  std::vector<EndNode*> all;
  for (int i = 0; i < 24; ++i) {
    all.push_back(nodes1[i]);
    all.push_back(nodes2[i]);
  }
  PacketIdSource ids;
  ScenarioRunner runner(deployment, 5);
  const auto txs = staggered_by_lock_on(all, Seconds{0.0}, Seconds{0.0004}, ids);
  const auto result = runner.run_window(txs);
  std::printf(
      "\n48 concurrent packets (24 per operator) in the shared band:\n");
  std::printf("  %s: %zu/24 received\n", op1.name().c_str(),
              result.delivered.at(op1.id()));
  std::printf("  %s: %zu/24 received\n", op2.name().c_str(),
              result.delivered.at(op2.id()));
  std::printf(
      "  (standard coexistence would cap the TOTAL at 16 — the two\n"
      "   networks' packets would contend for every gateway's decoders)\n");
  return 0;
}
