#include "backhaul/master_protocol.hpp"

#include <cmath>

namespace alphawan {
namespace {

enum class Tag : std::uint8_t {
  kRegister = 1,
  kRegisterAck = 2,
  kPlanRequest = 3,
  kPlanAssign = 4,
  kError = 5,
};

void encode_channel(BufferWriter& w, const Channel& ch) {
  w.f64(ch.center.value());
  w.f64(ch.bandwidth.value());
}

std::optional<Channel> decode_channel(BufferReader& r) {
  const auto center = r.f64();
  const auto bw = r.f64();
  if (!center || !bw) return std::nullopt;
  // A NaN/Inf channel would silently poison every overlap and airtime
  // computation downstream; reject it at the trust boundary.
  if (!std::isfinite(*center) || !std::isfinite(*bw)) return std::nullopt;
  return Channel{Hz{*center}, Hz{*bw}};
}

}  // namespace

std::vector<std::uint8_t> encode_message(const MasterMessage& msg) {
  BufferWriter w;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RegisterMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kRegister));
          w.u16(m.operator_id);
          w.str(m.operator_name);
        } else if constexpr (std::is_same_v<T, RegisterAckMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kRegisterAck));
          w.u16(m.operator_id);
          w.u32(m.master_epoch);
        } else if constexpr (std::is_same_v<T, PlanRequestMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kPlanRequest));
          w.u16(m.operator_id);
          w.f64(m.spectrum_base.value());
          w.f64(m.spectrum_width.value());
          w.u16(m.requested_channels);
        } else if constexpr (std::is_same_v<T, PlanAssignMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kPlanAssign));
          w.u16(m.operator_id);
          w.u32(m.master_epoch);
          w.f64(m.overlap_ratio);
          w.f64(m.frequency_offset.value());
          w.u32(static_cast<std::uint32_t>(m.channels.size()));
          for (const auto& ch : m.channels) encode_channel(w, ch);
        } else if constexpr (std::is_same_v<T, ErrorMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kError));
          w.u16(m.code);
          w.str(m.message);
        }
      },
      msg);
  return seal_payload(w.take());
}

std::optional<MasterMessage> decode_message(
    std::span<const std::uint8_t> payload) {
  const auto body = open_payload(payload);
  if (!body) return std::nullopt;
  BufferReader r(*body);
  const auto tag = r.u8();
  if (!tag) return std::nullopt;
  switch (static_cast<Tag>(*tag)) {
    case Tag::kRegister: {
      RegisterMsg m;
      const auto id = r.u16();
      const auto name = r.str();
      if (!id || !name || r.remaining() != 0) return std::nullopt;
      m.operator_id = *id;
      m.operator_name = *name;
      return m;
    }
    case Tag::kRegisterAck: {
      RegisterAckMsg m;
      const auto id = r.u16();
      const auto epoch = r.u32();
      if (!id || !epoch || r.remaining() != 0) return std::nullopt;
      m.operator_id = *id;
      m.master_epoch = *epoch;
      return m;
    }
    case Tag::kPlanRequest: {
      PlanRequestMsg m;
      const auto id = r.u16();
      const auto base = r.f64();
      const auto width = r.f64();
      const auto want = r.u16();
      if (!id || !base || !width || !want || r.remaining() != 0) {
        return std::nullopt;
      }
      if (!std::isfinite(*base) || !std::isfinite(*width)) return std::nullopt;
      m.operator_id = *id;
      m.spectrum_base = Hz{*base};
      m.spectrum_width = Hz{*width};
      m.requested_channels = *want;
      return m;
    }
    case Tag::kPlanAssign: {
      PlanAssignMsg m;
      const auto id = r.u16();
      const auto epoch = r.u32();
      const auto overlap = r.f64();
      const auto offset = r.f64();
      const auto count = r.u32();
      if (!id || !epoch || !overlap || !offset || !count) return std::nullopt;
      if (*count > 4096) return std::nullopt;
      if (!std::isfinite(*overlap) || !std::isfinite(*offset)) {
        return std::nullopt;
      }
      m.operator_id = *id;
      m.master_epoch = *epoch;
      m.overlap_ratio = *overlap;
      m.frequency_offset = Hz{*offset};
      m.channels.reserve(*count);
      for (std::uint32_t i = 0; i < *count; ++i) {
        const auto ch = decode_channel(r);
        if (!ch) return std::nullopt;
        m.channels.push_back(*ch);
      }
      if (r.remaining() != 0) return std::nullopt;
      return m;
    }
    case Tag::kError: {
      ErrorMsg m;
      const auto code = r.u16();
      const auto text = r.str();
      if (!code || !text || r.remaining() != 0) return std::nullopt;
      m.code = *code;
      m.message = *text;
      return m;
    }
  }
  return std::nullopt;
}

}  // namespace alphawan
