// Urban radio propagation: log-distance path loss with log-normal
// shadowing. Substitutes the paper's 2.1 km x 1.6 km urban testbed
// (outdoor/indoor/blockage mix) — see DESIGN.md section 2.
//
// Shadowing is frozen per (transmitter, receiver) pair: the draw is a pure
// function of (config seed, tx id, rx id), recomputed on demand rather than
// memoized. That keeps a given deployment's link qualities stable across a
// run — matching the paper's static testbed — while the model itself holds
// no per-link state, so its memory stays O(1) no matter how many links a
// city-scale world probes (docs/sharding.md). Fast fading is drawn per
// packet. Hot paths that revisit links cache the composite static terms in
// the LinkCache instead (phy/link_cache.hpp).
#pragma once

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "phy/lora_params.hpp"

namespace alphawan {

struct ChannelModelConfig {
  // Log-distance parameters typical of dense urban 900 MHz measurements
  // (e.g. Rademacher et al., VTC'21 LoRa path loss study). With these
  // values and 14 dBm + 2 dBi, SF7 reaches ~600 m and SF12 ~1.4 km —
  // consistent with the paper's 2.1 km x 1.6 km urban testbed where all
  // six data rates are exercised (Fig. 11).
  double path_loss_exponent = 3.5;
  Db reference_loss_db{38.0};  // at 1 m
  Meters reference_distance{1.0};
  Db shadowing_sigma_db{4.0};  // per-link, frozen
  Db fast_fading_sigma_db{1.0};  // per-packet
  std::uint64_t seed = 1;
};

class ChannelModel {
 public:
  explicit ChannelModel(ChannelModelConfig config = {});

  // Deterministic mean path loss at a distance.
  [[nodiscard]] Db mean_path_loss(Meters dist) const;

  // Path loss including this link's frozen shadowing term. Links are keyed
  // by (tx_id, rx_id) chosen by the caller (node id, gateway id).
  [[nodiscard]] Db link_path_loss(std::uint64_t tx_id, std::uint64_t rx_id,
                                  Meters dist) const;

  // Received power for a transmission, with per-packet fast fading.
  [[nodiscard]] Dbm received_power(std::uint64_t tx_id, std::uint64_t rx_id,
                                   Meters dist, Dbm tx_power,
                                   Rng& packet_rng) const;

  // Mean SNR of a link (no fast fading) — what ADR and planners estimate
  // from history.
  [[nodiscard]] Db mean_link_snr(std::uint64_t tx_id, std::uint64_t rx_id,
                                 Meters dist, Dbm tx_power,
                                 Hz bandwidth = kLoRaBandwidth125k) const;

  // Distance at which mean SNR equals `snr` for the given tx power (inverse
  // of the deterministic model; ignores shadowing). Used to build the
  // discrete range table.
  [[nodiscard]] Meters range_for_snr(Db snr, Dbm tx_power,
                                     Hz bandwidth = kLoRaBandwidth125k) const;

  [[nodiscard]] const ChannelModelConfig& config() const { return config_; }

 private:
  [[nodiscard]] Db shadowing(std::uint64_t tx_id, std::uint64_t rx_id) const;

  ChannelModelConfig config_;
  std::uint64_t shadow_seed_;
};

}  // namespace alphawan
