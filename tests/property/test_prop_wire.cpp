// Wire-codec hardening properties: for RANDOM instances of every message
// type of both backhaul protocols,
//   - encode/decode round-trips exactly;
//   - every strict prefix (truncation) is rejected with an error;
//   - every single-bit flip is rejected with an error (guaranteed by the
//     CRC-32 trailer, which detects all 1-bit errors);
// and the decoder never crashes or over-reads (this binary runs under
// ASan/TSan in CI).
#include <string>

#include <gtest/gtest.h>

#include "backhaul/forwarder.hpp"
#include "backhaul/master_protocol.hpp"
#include "common/rng.hpp"

namespace alphawan {
namespace {

std::string random_name(Rng& rng) {
  std::string s;
  const auto len = rng.uniform_int(0, 24);
  for (std::int64_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.uniform_int(32, 126)));
  }
  return s;
}

std::vector<Channel> random_channels(Rng& rng, int max_count) {
  std::vector<Channel> channels;
  const auto count = rng.uniform_int(0, max_count);
  for (std::int64_t i = 0; i < count; ++i) {
    channels.push_back(Channel{Hz{rng.uniform(902e6, 928e6)},
                               Hz{rng.chance(0.5) ? 125e3 : 500e3}});
  }
  return channels;
}

MasterMessage random_master_message(Rng& rng) {
  switch (rng.uniform_int(0, 4)) {
    case 0:
      return RegisterMsg{static_cast<NetworkId>(rng.uniform_int(0, 65535)),
                         random_name(rng)};
    case 1:
      return RegisterAckMsg{static_cast<NetworkId>(rng.uniform_int(0, 65535)),
                            static_cast<std::uint32_t>(rng.next())};
    case 2:
      return PlanRequestMsg{
          static_cast<NetworkId>(rng.uniform_int(0, 65535)),
          Hz{rng.uniform(100e6, 1e9)}, Hz{rng.uniform(1e5, 1e8)},
          static_cast<std::uint16_t>(rng.uniform_int(0, 65535))};
    case 3: {
      PlanAssignMsg m;
      m.operator_id = static_cast<NetworkId>(rng.uniform_int(0, 65535));
      m.master_epoch = static_cast<std::uint32_t>(rng.next());
      m.overlap_ratio = rng.uniform(0.0, 1.0);
      m.frequency_offset = Hz{rng.uniform(-200e3, 200e3)};
      m.channels = random_channels(rng, 16);
      return m;
    }
    default:
      return ErrorMsg{static_cast<std::uint16_t>(rng.uniform_int(0, 65535)),
                      random_name(rng)};
  }
}

UplinkRecord random_uplink(Rng& rng) {
  UplinkRecord rec;
  rec.packet = rng.next();
  rec.node = static_cast<NodeId>(rng.uniform_int(0, 1 << 20));
  rec.gateway = static_cast<GatewayId>(rng.uniform_int(0, 1 << 10));
  rec.network = static_cast<NetworkId>(rng.uniform_int(0, 65535));
  rec.timestamp = Seconds{rng.uniform(0.0, 1e6)};
  rec.channel = Channel{Hz{rng.uniform(902e6, 928e6)}, Hz{125e3}};
  rec.dr = static_cast<DataRate>(rng.uniform_int(0, kNumDataRates - 1));
  rec.snr = Db{rng.uniform(-25.0, 15.0)};
  return rec;
}

ForwarderMessage random_forwarder_message(Rng& rng) {
  switch (rng.uniform_int(0, 4)) {
    case 0: {
      PushDataMsg m;
      m.token = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
      m.gateway = static_cast<GatewayId>(rng.uniform_int(0, 1 << 10));
      const auto count = rng.uniform_int(0, 8);
      for (std::int64_t i = 0; i < count; ++i) {
        m.uplinks.push_back(random_uplink(rng));
      }
      return m;
    }
    case 1:
      return PushAckMsg{static_cast<std::uint16_t>(rng.uniform_int(0, 65535))};
    case 2:
      return PullDataMsg{static_cast<std::uint16_t>(rng.uniform_int(0, 65535)),
                         static_cast<GatewayId>(rng.uniform_int(0, 1 << 10))};
    case 3: {
      PullRespMsg m;
      m.token = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
      m.gateway = static_cast<GatewayId>(rng.uniform_int(0, 1 << 10));
      m.config_version = static_cast<std::uint32_t>(rng.next());
      m.channels = random_channels(rng, 16);
      return m;
    }
    default:
      return PullAckMsg{static_cast<std::uint16_t>(rng.uniform_int(0, 65535))};
  }
}

// The three properties, applied to one encoded frame. decode() is the
// codec under test; eq checks the round-trip against the original.
template <typename Decode, typename Eq>
void check_frame(const std::vector<std::uint8_t>& bytes,
                 const Decode& decode, const Eq& eq, const char* what) {
  const auto back = decode(bytes);
  ASSERT_TRUE(back.has_value()) << what << ": round trip failed";
  EXPECT_TRUE(eq(*back)) << what << ": round trip changed the message";
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_FALSE(decode(prefix).has_value())
        << what << ": truncation to " << cut << " bytes accepted";
  }
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    auto flipped = bytes;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(decode(flipped).has_value())
        << what << ": flip of bit " << bit << " accepted";
  }
}

TEST(WireProperty, MasterMessagesRoundTripAndRejectAllCorruption) {
  Rng rng(20260806);
  for (int i = 0; i < 120; ++i) {
    const MasterMessage msg = random_master_message(rng);
    check_frame(
        encode_message(msg),
        [](std::span<const std::uint8_t> b) { return decode_message(b); },
        [&](const MasterMessage& back) { return back == msg; }, "master");
  }
}

TEST(WireProperty, ForwarderMessagesRoundTripAndRejectAllCorruption) {
  Rng rng(424242);
  for (int i = 0; i < 120; ++i) {
    const ForwarderMessage msg = random_forwarder_message(rng);
    check_frame(
        encode_forwarder(msg),
        [](std::span<const std::uint8_t> b) { return decode_forwarder(b); },
        [&](const ForwarderMessage& back) { return back == msg; },
        "forwarder");
  }
}

TEST(WireProperty, RandomGarbageNeverDecodes) {
  // Pure noise should (overwhelmingly) fail the CRC; mostly this checks
  // the decoder never crashes or over-reads on arbitrary input.
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    (void)decode_message(junk);
    (void)decode_forwarder(junk);
  }
}

}  // namespace
}  // namespace alphawan
