// One receive chain of the gateway front-end: tuned to a single channel,
// detecting all spreading factors on it (SX130x IF chain behaviour).
#pragma once

#include <optional>
#include <vector>

#include "phy/band_plan.hpp"
#include "phy/overlap.hpp"
#include "radio/transmission.hpp"

namespace alphawan {

struct RxChain {
  Channel channel{};

  // True if this chain's filter passes the packet's channel well enough to
  // correlate a preamble (front-end frequency selectivity).
  [[nodiscard]] bool passes(const Channel& packet_channel) const {
    return detectable(packet_channel, channel);
  }
};

// Select the chain that best matches a packet's channel. Returns the chain
// index, or nullopt if every chain's filter truncates the packet
// (front-end rejection — the Strategy-8 isolation path).
[[nodiscard]] std::optional<std::size_t> best_chain(
    const std::vector<RxChain>& chains, const Channel& packet_channel);

}  // namespace alphawan
