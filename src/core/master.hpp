// The AlphaWAN Master node (paper Sec. 4.3.2): a centralized spectrum
// coordinator. Operators register before deploying; the Master divides the
// shared spectrum into frequency-misaligned sub-channel plans and assigns
// one per operator, keeping an up-to-date occupancy record.
//
// Misalignment policy: with a desired pairwise overlap ratio rho, adjacent
// plans are offset by delta = (1 - rho) * 125 kHz. The 200 kHz grid
// spacing bounds how many distinct plans fit (floor(spacing / delta));
// when more operators register than fit, the Master compresses delta to
// spacing / N, trading overlap for operator count — exactly the "optimal
// misalignment depends on the number of coexisting networks" tradeoff.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "backhaul/bus.hpp"
#include "backhaul/master_protocol.hpp"
#include "phy/band_plan.hpp"

namespace alphawan {

struct MasterConfig {
  Spectrum spectrum{};
  // Desired pairwise channel overlap between adjacent operator plans.
  double desired_overlap = 0.4;
  // Expected number of coexisting networks in the region (used to pick
  // the misalignment before everyone has registered).
  int expected_networks = 2;
  // Extra offset applied to every plan — used to keep AlphaWAN adopters
  // misaligned from legacy networks that squat on the standard grid
  // (partial-adoption deployments, Fig. 14).
  Hz base_offset{0.0};
};

class MasterNode {
 public:
  explicit MasterNode(MasterConfig config);

  // Protocol handlers (pure logic; transport-agnostic).
  [[nodiscard]] RegisterAckMsg handle_register(const RegisterMsg& msg);
  [[nodiscard]] MasterMessage handle_plan_request(const PlanRequestMsg& msg);

  // The frequency offset assigned to an operator (registered order).
  [[nodiscard]] std::optional<Hz> offset_of(NetworkId operator_id) const;
  // Effective per-step offset under the current policy.
  [[nodiscard]] Hz plan_offset_step() const;
  // Worst-case overlap ratio between any two assigned plans.
  [[nodiscard]] double effective_overlap() const;

  [[nodiscard]] std::size_t registered_operators() const {
    return slots_.size();
  }
  [[nodiscard]] const MasterConfig& config() const { return config_; }

 private:
  MasterConfig config_;
  std::uint32_t epoch_ = 1;
  std::map<NetworkId, int> slots_;  // operator -> misalignment slot
};

// Bus-attached Master service: decodes framed protocol messages addressed
// to endpoint "master" and replies to the sender (the Fig. 17 latency path
// and the integration tests exercise this).
class MasterService {
 public:
  MasterService(MasterNode& master, MessageBus& bus);

  [[nodiscard]] static EndpointId endpoint() { return "master"; }
  [[nodiscard]] std::size_t requests_served() const {
    return requests_served_;
  }

 private:
  void on_message(const EndpointId& from, std::vector<std::uint8_t> payload);

  MasterNode& master_;
  MessageBus& bus_;
  std::size_t requests_served_ = 0;
};

}  // namespace alphawan
