#include "common/geometry.hpp"

#include <algorithm>
#include <cmath>

namespace alphawan {

Meters distance(const Point& a, const Point& b) {
  const double dx = a.x.value() - b.x.value();
  const double dy = a.y.value() - b.y.value();
  return Meters{std::sqrt(dx * dx + dy * dy)};
}

double bearing(const Point& from, const Point& to) {
  return std::atan2(to.y.value() - from.y.value(), to.x.value() - from.x.value());
}

Point Region::random_point(Rng& rng) const {
  return {Meters{rng.uniform(0.0, width.value())},
          Meters{rng.uniform(0.0, height.value())}};
}

bool Region::contains(const Point& p) const {
  return p.x >= Meters{0.0} && p.x <= width && p.y >= Meters{0.0} &&
         p.y <= height;
}

std::vector<Point> grid_placement(const Region& region, std::size_t count,
                                  Rng& rng, double jitter_fraction) {
  std::vector<Point> points;
  points.reserve(count);
  if (count == 0) return points;
  // Pick the most-square grid that holds `count` cells.
  const auto cols = static_cast<std::size_t>(std::ceil(std::sqrt(
      static_cast<double>(count) * region.width.value() / region.height.value())));
  const std::size_t rows = (count + cols - 1) / cols;
  const double cell_w = region.width.value() / static_cast<double>(cols);
  const double cell_h = region.height.value() / static_cast<double>(rows);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t r = i / cols;
    const std::size_t c = i % cols;
    const double jitter_x =
        rng.uniform(-jitter_fraction, jitter_fraction) * cell_w;
    const double jitter_y =
        rng.uniform(-jitter_fraction, jitter_fraction) * cell_h;
    Point p{Meters{(static_cast<double>(c) + 0.5) * cell_w + jitter_x},
            Meters{(static_cast<double>(r) + 0.5) * cell_h + jitter_y}};
    p.x = std::clamp(p.x, Meters{0.0}, region.width);
    p.y = std::clamp(p.y, Meters{0.0}, region.height);
    points.push_back(p);
  }
  return points;
}

std::vector<Point> uniform_placement(const Region& region, std::size_t count,
                                     Rng& rng) {
  std::vector<Point> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back(region.random_point(rng));
  }
  return points;
}

std::vector<Point> clustered_placement(const Region& region, std::size_t count,
                                       std::size_t clusters,
                                       Meters cluster_sigma, Rng& rng) {
  std::vector<Point> centers = uniform_placement(region, std::max<std::size_t>(clusters, 1), rng);
  std::vector<Point> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& c = centers[i % centers.size()];
    Point p{Meters{c.x.value() + rng.normal(0.0, cluster_sigma.value())},
            Meters{c.y.value() + rng.normal(0.0, cluster_sigma.value())}};
    p.x = std::clamp(p.x, Meters{0.0}, region.width);
    p.y = std::clamp(p.y, Meters{0.0}, region.height);
    points.push_back(p);
  }
  return points;
}

}  // namespace alphawan
