#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

Transmission tx_of(PacketId id, NetworkId network = 0) {
  Transmission tx;
  tx.id = id;
  tx.node = static_cast<NodeId>(id * 10);
  tx.network = network;
  tx.payload_bytes = 10;
  return tx;
}

RxOutcome outcome(RxDisposition d, bool foreign_occ = false,
                  bool foreign_intf = false) {
  RxOutcome o;
  o.disposition = d;
  o.foreign_among_occupants = foreign_occ;
  o.foreign_interferer = foreign_intf;
  return o;
}

TEST(Classify, DeliveredWinsOverEverything) {
  const auto fate = classify_packet(
      tx_of(1), {outcome(RxDisposition::kDroppedDecoderBusy),
                 outcome(RxDisposition::kDelivered),
                 outcome(RxDisposition::kDroppedCollision)});
  EXPECT_TRUE(fate.delivered);
  EXPECT_EQ(fate.cause, LossCause::kDelivered);
}

TEST(Classify, DecoderBeatsCollision) {
  const auto fate = classify_packet(
      tx_of(1), {outcome(RxDisposition::kDroppedCollision),
                 outcome(RxDisposition::kDroppedDecoderBusy)});
  EXPECT_FALSE(fate.delivered);
  EXPECT_EQ(fate.cause, LossCause::kDecoderContentionIntra);
}

TEST(Classify, ForeignOccupantsMakeItInterNetwork) {
  const auto fate = classify_packet(
      tx_of(1),
      {outcome(RxDisposition::kDroppedDecoderBusy, /*foreign=*/true)});
  EXPECT_EQ(fate.cause, LossCause::kDecoderContentionInter);
}

TEST(Classify, CollisionInterVsIntra) {
  EXPECT_EQ(classify_packet(tx_of(1),
                            {outcome(RxDisposition::kDroppedCollision, false,
                                     /*foreign_intf=*/true)})
                .cause,
            LossCause::kChannelContentionInter);
  EXPECT_EQ(classify_packet(tx_of(1),
                            {outcome(RxDisposition::kDroppedCollision)})
                .cause,
            LossCause::kChannelContentionIntra);
}

TEST(Classify, NoGatewaysMeansOther) {
  const auto fate = classify_packet(tx_of(1), {});
  EXPECT_FALSE(fate.delivered);
  EXPECT_EQ(fate.cause, LossCause::kOther);
}

TEST(Classify, LowSnrIsOther) {
  EXPECT_EQ(
      classify_packet(tx_of(1), {outcome(RxDisposition::kNotDetected),
                                 outcome(RxDisposition::kDroppedLowSnr)})
          .cause,
      LossCause::kOther);
}

TEST(Collector, PrrAndLossFractionsSumToOne) {
  MetricsCollector m;
  PacketFate delivered;
  delivered.network = 0;
  delivered.delivered = true;
  delivered.cause = LossCause::kDelivered;
  delivered.payload_bytes = 10;
  PacketFate lost = delivered;
  lost.delivered = false;
  lost.cause = LossCause::kDecoderContentionIntra;

  for (int i = 0; i < 7; ++i) {
    delivered.packet = static_cast<PacketId>(i);
    delivered.node = static_cast<NodeId>(i);
    m.record(delivered);
  }
  for (int i = 0; i < 3; ++i) {
    lost.packet = static_cast<PacketId>(100 + i);
    m.record(lost);
  }
  EXPECT_DOUBLE_EQ(m.total_prr(), 0.7);
  EXPECT_DOUBLE_EQ(m.loss_fraction(LossCause::kDecoderContentionIntra), 0.3);
  EXPECT_DOUBLE_EQ(m.total_prr() +
                       m.loss_fraction(LossCause::kDecoderContentionIntra),
                   1.0);
  EXPECT_EQ(m.total_delivered_bytes(), 70u);
  EXPECT_EQ(m.served_nodes(0), 7u);
}

TEST(Collector, PerNetworkSeparation) {
  MetricsCollector m;
  PacketFate f;
  f.delivered = true;
  f.cause = LossCause::kDelivered;
  f.network = 1;
  f.packet = 1;
  f.node = 1;
  m.record(f);
  f.network = 2;
  f.delivered = false;
  f.cause = LossCause::kChannelContentionInter;
  f.packet = 2;
  m.record(f);
  EXPECT_DOUBLE_EQ(m.prr(1), 1.0);
  EXPECT_DOUBLE_EQ(m.prr(2), 0.0);
  EXPECT_DOUBLE_EQ(m.loss_fraction(2, LossCause::kChannelContentionInter),
                   1.0);
  EXPECT_DOUBLE_EQ(m.loss_fraction(1, LossCause::kChannelContentionInter),
                   0.0);
  EXPECT_EQ(m.total_offered(), 2u);
}

TEST(Collector, EmptyCollectorSafe) {
  MetricsCollector m;
  EXPECT_DOUBLE_EQ(m.total_prr(), 0.0);
  EXPECT_DOUBLE_EQ(m.prr(9), 0.0);
  EXPECT_EQ(m.total_served_nodes(), 0u);
}

TEST(Collector, ClearResets) {
  MetricsCollector m;
  PacketFate f;
  f.delivered = true;
  m.record(f);
  m.clear();
  EXPECT_EQ(m.total_offered(), 0u);
}

TEST(LossCauseNames, AllDistinct) {
  std::set<std::string_view> names;
  for (auto cause :
       {LossCause::kDelivered, LossCause::kDecoderContentionIntra,
        LossCause::kDecoderContentionInter, LossCause::kChannelContentionIntra,
        LossCause::kChannelContentionInter, LossCause::kOther}) {
    names.insert(loss_cause_name(cause));
  }
  EXPECT_EQ(names.size(), 6u);
}

}  // namespace
}  // namespace alphawan
