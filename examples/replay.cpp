// Replay a single packet's event chain through one of the canonical
// scenarios, or print the canonical digests (used to bless
// tests/golden/digests.txt — see docs/testing.md).
//
// Usage:
//   example_replay --digests
//   example_replay [--scenario NAME] --replay PACKET_ID
//   example_replay [--scenario NAME] --list
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "check/canonical.hpp"
#include "check/replay.hpp"
#include "sim/metrics.hpp"

namespace {

int usage() {
  std::cerr << "usage: example_replay --digests\n"
            << "       example_replay [--scenario NAME] --replay PACKET_ID\n"
            << "       example_replay [--scenario NAME] --list\n"
            << "scenarios:";
  for (const auto& name : alphawan::canonical_names()) {
    std::cerr << ' ' << name;
  }
  std::cerr << '\n';
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alphawan;
  std::string scenario_name = canonical_names().front();
  bool list = false;
  bool digests = false;
  bool have_packet = false;
  PacketId packet = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--digests") {
      digests = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--scenario" && i + 1 < argc) {
      scenario_name = argv[++i];
    } else if (arg == "--replay" && i + 1 < argc) {
      packet = static_cast<PacketId>(std::strtoull(argv[++i], nullptr, 10));
      have_packet = true;
    } else {
      return usage();
    }
  }

  if (digests) {
    for (const auto& name : canonical_names()) {
      std::cout << name << ' ' << digest_hex(canonical_digest(name)) << '\n';
    }
    return 0;
  }
  if (!list && !have_packet) return usage();

  bool known = false;
  for (const auto& name : canonical_names()) known |= (name == scenario_name);
  if (!known) {
    std::cerr << "unknown scenario: " << scenario_name << '\n';
    return usage();
  }
  CanonicalScenario scenario = make_canonical(scenario_name);
  if (list) {
    ScenarioRunner runner(*scenario.deployment, scenario.seed);
    const auto result = runner.run_window(scenario.txs);
    std::cout << scenario.name << ": " << result.fates.size()
              << " packets\n";
    for (const auto& fate : result.fates) {
      std::cout << "  packet " << fate.packet << " node " << fate.node
                << " net " << fate.network << " -> "
                << loss_cause_name(fate.cause)
                << '\n';
    }
    return 0;
  }

  const ReplayReport report = replay_packet(
      *scenario.deployment, scenario.seed, scenario.txs, packet);
  std::cout << "scenario " << scenario.name << " seed " << scenario.seed
            << '\n'
            << report.to_string();
  return report.found ? 0 : 1;
}
