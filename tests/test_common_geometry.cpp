#include "common/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace alphawan {
namespace {

Point pt(double x, double y) { return Point{Meters{x}, Meters{y}}; }

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance(pt(0, 0), pt(3, 4)).value(), 5.0);
  EXPECT_DOUBLE_EQ(distance(pt(1, 1), pt(1, 1)).value(), 0.0);
}

TEST(Geometry, Bearing) {
  EXPECT_NEAR(bearing(pt(0, 0), pt(1, 0)), 0.0, 1e-12);
  EXPECT_NEAR(bearing(pt(0, 0), pt(0, 1)), std::numbers::pi / 2, 1e-12);
  EXPECT_NEAR(bearing(pt(0, 0), pt(-1, 0)), std::numbers::pi, 1e-12);
}

TEST(Geometry, RegionContains) {
  Region r{Meters{100.0}, Meters{50.0}};
  EXPECT_TRUE(r.contains(pt(0, 0)));
  EXPECT_TRUE(r.contains(pt(100, 50)));
  EXPECT_FALSE(r.contains(pt(101, 10)));
  EXPECT_FALSE(r.contains(pt(10, -1)));
}

TEST(Geometry, RandomPointInsideRegion) {
  Region r{Meters{200.0}, Meters{300.0}};
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(r.contains(r.random_point(rng)));
  }
}

TEST(Geometry, GridPlacementCountAndBounds) {
  Region r{Meters{2100.0}, Meters{1600.0}};
  Rng rng(3);
  for (std::size_t count : {1u, 3u, 15u, 20u}) {
    const auto pts = grid_placement(r, count, rng);
    EXPECT_EQ(pts.size(), count);
    for (const auto& p : pts) EXPECT_TRUE(r.contains(p));
  }
}

TEST(Geometry, GridPlacementZero) {
  Region r;
  Rng rng(3);
  EXPECT_TRUE(grid_placement(r, 0, rng).empty());
}

TEST(Geometry, GridPlacementSpreads) {
  // With 4 gateways the pairwise minimum distance should be a sizable
  // fraction of the region (not all clumped).
  Region r{Meters{2000.0}, Meters{2000.0}};
  Rng rng(7);
  const auto pts = grid_placement(r, 4, rng, 0.0);
  Meters min_dist{1e9};
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      min_dist = std::min(min_dist, distance(pts[i], pts[j]));
    }
  }
  EXPECT_GT(min_dist, Meters{500.0});
}

TEST(Geometry, UniformPlacement) {
  Region r{Meters{500.0}, Meters{500.0}};
  Rng rng(9);
  const auto pts = uniform_placement(r, 100, rng);
  EXPECT_EQ(pts.size(), 100u);
  for (const auto& p : pts) EXPECT_TRUE(r.contains(p));
}

TEST(Geometry, ClusteredPlacementBoundsAndCount) {
  Region r{Meters{1000.0}, Meters{1000.0}};
  Rng rng(11);
  const auto pts = clustered_placement(r, 60, 3, Meters{50.0}, rng);
  EXPECT_EQ(pts.size(), 60u);
  for (const auto& p : pts) EXPECT_TRUE(r.contains(p));
}

TEST(Geometry, ClusteredPlacementZeroClustersStillWorks) {
  Region r{Meters{1000.0}, Meters{1000.0}};
  Rng rng(13);
  const auto pts = clustered_placement(r, 10, 0, Meters{50.0}, rng);
  EXPECT_EQ(pts.size(), 10u);
}

}  // namespace
}  // namespace alphawan
