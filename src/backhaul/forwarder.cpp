#include "backhaul/forwarder.hpp"

#include <cmath>
#include <utility>

namespace alphawan {
namespace {

void encode_uplink(BufferWriter& w, const UplinkRecord& rec) {
  w.u64(rec.packet);
  w.u32(rec.node);
  w.u32(rec.gateway);
  w.u16(rec.network);
  w.f64(rec.timestamp.value());
  w.f64(rec.channel.center.value());
  w.f64(rec.channel.bandwidth.value());
  w.u8(static_cast<std::uint8_t>(dr_value(rec.dr)));
  w.f64(rec.snr.value());
}

std::optional<UplinkRecord> decode_uplink(BufferReader& r) {
  UplinkRecord rec;
  const auto packet = r.u64();
  const auto node = r.u32();
  const auto gateway = r.u32();
  const auto network = r.u16();
  const auto timestamp = r.f64();
  const auto center = r.f64();
  const auto bandwidth = r.f64();
  const auto dr = r.u8();
  const auto snr = r.f64();
  if (!r.ok() || !dr || *dr >= kNumDataRates) return std::nullopt;
  if (!std::isfinite(*timestamp) || !std::isfinite(*center) ||
      !std::isfinite(*bandwidth) || !std::isfinite(*snr)) {
    return std::nullopt;
  }
  rec.packet = *packet;
  rec.node = *node;
  rec.gateway = *gateway;
  rec.network = static_cast<NetworkId>(*network);
  rec.timestamp = Seconds{*timestamp};
  rec.channel = Channel{Hz{*center}, Hz{*bandwidth}};
  rec.dr = static_cast<DataRate>(*dr);
  rec.snr = Db{*snr};
  return rec;
}

}  // namespace

std::vector<std::uint8_t> encode_forwarder(const ForwarderMessage& msg) {
  BufferWriter w;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, PushDataMsg>) {
          w.u8(static_cast<std::uint8_t>(ForwarderOp::kPushData));
          w.u16(m.token);
          w.u32(m.gateway);
          w.u32(static_cast<std::uint32_t>(m.uplinks.size()));
          for (const auto& rec : m.uplinks) encode_uplink(w, rec);
        } else if constexpr (std::is_same_v<T, PushAckMsg>) {
          w.u8(static_cast<std::uint8_t>(ForwarderOp::kPushAck));
          w.u16(m.token);
        } else if constexpr (std::is_same_v<T, PullDataMsg>) {
          w.u8(static_cast<std::uint8_t>(ForwarderOp::kPullData));
          w.u16(m.token);
          w.u32(m.gateway);
        } else if constexpr (std::is_same_v<T, PullRespMsg>) {
          w.u8(static_cast<std::uint8_t>(ForwarderOp::kPullResp));
          w.u16(m.token);
          w.u32(m.gateway);
          w.u32(m.config_version);
          w.u32(static_cast<std::uint32_t>(m.channels.size()));
          for (const auto& ch : m.channels) {
            w.f64(ch.center.value());
            w.f64(ch.bandwidth.value());
          }
        } else if constexpr (std::is_same_v<T, PullAckMsg>) {
          w.u8(static_cast<std::uint8_t>(ForwarderOp::kPullAck));
          w.u16(m.token);
        }
      },
      msg);
  return seal_payload(w.take());
}

std::optional<ForwarderMessage> decode_forwarder(
    std::span<const std::uint8_t> payload) {
  const auto body = open_payload(payload);
  if (!body) return std::nullopt;
  BufferReader r(*body);
  const auto op = r.u8();
  if (!op) return std::nullopt;
  switch (static_cast<ForwarderOp>(*op)) {
    case ForwarderOp::kPushData: {
      PushDataMsg m;
      const auto token = r.u16();
      const auto gateway = r.u32();
      const auto count = r.u32();
      if (!token || !gateway || !count || *count > 65536) return std::nullopt;
      m.token = *token;
      m.gateway = *gateway;
      m.uplinks.reserve(*count);
      for (std::uint32_t i = 0; i < *count; ++i) {
        const auto rec = decode_uplink(r);
        if (!rec) return std::nullopt;
        m.uplinks.push_back(*rec);
      }
      if (r.remaining() != 0) return std::nullopt;
      return m;
    }
    case ForwarderOp::kPushAck: {
      const auto token = r.u16();
      if (!token || r.remaining() != 0) return std::nullopt;
      return PushAckMsg{*token};
    }
    case ForwarderOp::kPullData: {
      const auto token = r.u16();
      const auto gateway = r.u32();
      if (!token || !gateway || r.remaining() != 0) return std::nullopt;
      return PullDataMsg{*token, *gateway};
    }
    case ForwarderOp::kPullResp: {
      PullRespMsg m;
      const auto token = r.u16();
      const auto gateway = r.u32();
      const auto version = r.u32();
      const auto count = r.u32();
      if (!token || !gateway || !version || !count || *count > 4096) {
        return std::nullopt;
      }
      m.token = *token;
      m.gateway = *gateway;
      m.config_version = *version;
      for (std::uint32_t i = 0; i < *count; ++i) {
        const auto center = r.f64();
        const auto bandwidth = r.f64();
        if (!center || !bandwidth) return std::nullopt;
        if (!std::isfinite(*center) || !std::isfinite(*bandwidth)) {
          return std::nullopt;
        }
        m.channels.push_back(Channel{Hz{*center}, Hz{*bandwidth}});
      }
      if (r.remaining() != 0) return std::nullopt;
      return m;
    }
    case ForwarderOp::kPullAck: {
      const auto token = r.u16();
      if (!token || r.remaining() != 0) return std::nullopt;
      return PullAckMsg{*token};
    }
  }
  return std::nullopt;
}

// ---- gateway side -----------------------------------------------------------

GatewayForwarder::GatewayForwarder(Gateway& gateway, MessageBus& bus,
                                   EndpointId server, RetryPolicy policy)
    : gateway_(gateway),
      bus_(bus),
      server_(std::move(server)),
      policy_(policy) {
  bus_.attach(endpoint(), [this](const EndpointId& from,
                                 std::vector<std::uint8_t> payload) {
    on_message(from, std::move(payload));
  });
}

GatewayForwarder::~GatewayForwarder() {
  bus_.detach(endpoint());
  detached_ = true;  // neutralize retry timers still queued on the engine
}

EndpointId GatewayForwarder::endpoint() const {
  return "gw-" + std::to_string(gateway_.id());
}

std::uint16_t GatewayForwarder::push_uplinks(
    std::vector<UplinkRecord> uplinks) {
  PushDataMsg msg;
  msg.token = next_token_++;
  msg.gateway = gateway_.id();
  msg.uplinks = std::move(uplinks);
  auto payload = encode_forwarder(msg);
  pending_push_[msg.token] = PendingPush{payload, 0};
  bus_.send(endpoint(), server_, std::move(payload));
  arm_push_timer(msg.token, 0);
  return msg.token;
}

void GatewayForwarder::arm_push_timer(std::uint16_t token, int attempt) {
  const Seconds timeout = policy_.timeout_for_attempt(attempt);
  bus_.engine().schedule_in(timeout, [this, token, attempt] {
    if (detached_) return;
    const auto it = pending_push_.find(token);
    if (it == pending_push_.end()) return;         // acked meanwhile
    if (it->second.attempt != attempt) return;     // superseded timer
    const int next_attempt = it->second.attempt + 1;
    if (policy_.max_attempts > 0 && next_attempt >= policy_.max_attempts) {
      // Give up; the uplinks in this batch are lost to the server.
      ++stats_.pushes_abandoned;
      pending_push_.erase(it);
      return;
    }
    ++stats_.push_retries;
    it->second.attempt = next_attempt;
    bus_.send(endpoint(), server_, it->second.payload);
    arm_push_timer(token, next_attempt);
  });
}

std::uint16_t GatewayForwarder::pull() {
  PullDataMsg msg{next_token_++, gateway_.id()};
  bus_.send(endpoint(), server_, encode_forwarder(msg));
  return msg.token;
}

void GatewayForwarder::on_message(const EndpointId& /*from*/,
                                  std::vector<std::uint8_t> payload) {
  const auto msg = decode_forwarder(payload);
  if (!msg) {
    ++stats_.malformed_ignored;
    return;
  }
  if (const auto* ack = std::get_if<PushAckMsg>(&*msg)) {
    pending_push_.erase(ack->token);
  } else if (const auto* resp = std::get_if<PullRespMsg>(&*msg)) {
    if (resp->gateway != gateway_.id() || resp->channels.empty()) return;
    if (gateway_.apply_channels(GatewayChannelConfig{resp->channels},
                                resp->config_version)) {
      ++configs_applied_;
    } else {
      // Duplicated or reordered push: already in force (or older than
      // what is). Re-ack so the server stops re-pushing, don't reboot.
      ++stats_.duplicate_configs;
    }
    bus_.send(endpoint(), server_,
              encode_forwarder(PullAckMsg{resp->token}));
  }
}

// ---- server side -------------------------------------------------------------

ForwarderServer::ForwarderServer(NetworkServer& server, MessageBus& bus,
                                 EndpointId endpoint)
    : server_(server), bus_(bus), endpoint_(std::move(endpoint)) {
  bus_.attach(endpoint_, [this](const EndpointId& from,
                                std::vector<std::uint8_t> payload) {
    on_message(from, std::move(payload));
  });
}

bool ForwarderServer::push_config(GatewayId gateway,
                                  std::vector<Channel> channels) {
  const auto it = pull_paths_.find(gateway);
  if (it == pull_paths_.end()) return false;
  auto& state = configs_[gateway];
  ++state.version;
  state.channels = std::move(channels);
  state.acked = false;
  send_config(gateway, it->second);
  return true;
}

void ForwarderServer::send_config(GatewayId gateway, const EndpointId& to) {
  auto& state = configs_.at(gateway);
  PullRespMsg msg;
  msg.token = next_token_++;
  msg.gateway = gateway;
  msg.config_version = state.version;
  msg.channels = state.channels;
  state.token = msg.token;
  bus_.send(endpoint_, to, encode_forwarder(msg));
}

bool ForwarderServer::config_acked(GatewayId gateway) const {
  const auto it = configs_.find(gateway);
  return it != configs_.end() && it->second.acked;
}

std::uint32_t ForwarderServer::config_version(GatewayId gateway) const {
  const auto it = configs_.find(gateway);
  return it == configs_.end() ? 0 : it->second.version;
}

void ForwarderServer::on_message(const EndpointId& from,
                                 std::vector<std::uint8_t> payload) {
  const auto msg = decode_forwarder(payload);
  if (!msg) {
    ++stats_.malformed_ignored;
    return;
  }
  if (const auto* push = std::get_if<PushDataMsg>(&*msg)) {
    // Dedup retried batches: a retransmit whose original (or whose ack)
    // was lost must not double-count uplinks.
    if (seen_push_tokens_[push->gateway].insert(push->token).second) {
      server_.ingest(push->uplinks);
      ++batches_;
    } else {
      ++stats_.duplicate_batches;
    }
    bus_.send(endpoint_, from, encode_forwarder(PushAckMsg{push->token}));
  } else if (const auto* pull = std::get_if<PullDataMsg>(&*msg)) {
    pull_paths_[pull->gateway] = from;
    bus_.send(endpoint_, from, encode_forwarder(PullAckMsg{pull->token}));
    // Reconnect: if a config push is still unacked (the gateway may have
    // been down when it went out), re-push it now.
    const auto cfg = configs_.find(pull->gateway);
    if (cfg != configs_.end() && !cfg->second.acked) {
      ++stats_.config_repushes;
      send_config(pull->gateway, from);
    }
  } else if (const auto* ack = std::get_if<PullAckMsg>(&*msg)) {
    // Config application confirmed: match the token of the last push.
    for (auto& [gw, state] : configs_) {
      if (state.token == ack->token) {
        state.acked = true;
        break;
      }
    }
  }
}

}  // namespace alphawan
