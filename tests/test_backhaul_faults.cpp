#include "backhaul/faults.hpp"

#include <gtest/gtest.h>

#include "backhaul/master_protocol.hpp"

namespace alphawan {
namespace {

struct FaultsFixture : ::testing::Test {
  Engine engine;
  LatencyModel latency{LatencyModelConfig{}, 3};
  MessageBus bus{engine, latency};

  int received = 0;
  void attach_sink(const EndpointId& id) {
    bus.attach(id, [this](const EndpointId&, std::vector<std::uint8_t>) {
      ++received;
    });
  }
};

TEST_F(FaultsFixture, InactivePlanIsPassthrough) {
  FaultInjector injector(bus, FaultPlan{});  // no faults configured
  attach_sink("s");
  for (int i = 0; i < 20; ++i) bus.send("c", "s", {1, 2, 3});
  engine.run();
  EXPECT_EQ(received, 20);
  EXPECT_EQ(injector.stats().messages_seen, 20u);
  EXPECT_EQ(injector.stats().dropped, 0u);
}

TEST_F(FaultsFixture, DropProbabilityOneDropsEverything) {
  FaultPlan plan;
  plan.everywhere.drop_prob = 1.0;
  FaultInjector injector(bus, plan);
  attach_sink("s");
  for (int i = 0; i < 10; ++i) bus.send("c", "s", {1});
  engine.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(injector.stats().dropped, 10u);
}

TEST_F(FaultsFixture, DuplicateProbabilityOneDoublesDelivery) {
  FaultPlan plan;
  plan.everywhere.duplicate_prob = 1.0;
  FaultInjector injector(bus, plan);
  attach_sink("s");
  for (int i = 0; i < 10; ++i) bus.send("c", "s", {1});
  engine.run();
  EXPECT_EQ(received, 20);
  EXPECT_EQ(injector.stats().duplicated, 10u);
}

TEST_F(FaultsFixture, RulesScopeToEndpointAndDirection) {
  FaultPlan plan;
  plan.rules.push_back({"victim", FaultDirection::kRx,
                        FaultSpec{.drop_prob = 1.0}});
  FaultInjector injector(bus, plan);
  attach_sink("victim");
  attach_sink("bystander");
  bus.send("c", "victim", {1});
  bus.send("c", "bystander", {1});
  // kRx rule must not affect what "victim" SENDS.
  bus.send("victim", "bystander", {1});
  engine.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(injector.stats().dropped, 1u);
}

TEST_F(FaultsFixture, CorruptionIsRejectedByCrcNotMisparsed) {
  FaultPlan plan;
  plan.everywhere.corrupt_prob = 1.0;
  FaultInjector injector(bus, plan);
  int decoded = 0, rejected = 0;
  bus.attach("s", [&](const EndpointId&, std::vector<std::uint8_t> payload) {
    if (decode_message(payload)) {
      ++decoded;
    } else {
      ++rejected;
    }
  });
  for (int i = 0; i < 50; ++i) {
    bus.send("c", "s", encode_message(RegisterMsg{7, "op"}));
  }
  engine.run();
  EXPECT_EQ(injector.stats().corrupted, 50u);
  EXPECT_EQ(decoded, 0);
  EXPECT_EQ(rejected, 50);
}

TEST_F(FaultsFixture, OutageCrashesAndRestoresEndpoint) {
  FaultPlan plan;
  plan.outages.push_back({"s", Seconds{1.0}, Seconds{2.0}});
  FaultInjector injector(bus, plan);
  EndpointId restarted;
  injector.set_restart_hook([&](const EndpointId& ep) { restarted = ep; });
  injector.arm_outages();
  attach_sink("s");

  engine.schedule_at(Seconds{0.5}, [&] { bus.send("c", "s", {1}); });
  engine.schedule_at(Seconds{1.5}, [&] { bus.send("c", "s", {1}); });  // down
  engine.schedule_at(Seconds{3.5}, [&] { bus.send("c", "s", {1}); });
  engine.run();

  EXPECT_EQ(received, 2);
  EXPECT_EQ(bus.dropped(), 1u);
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_EQ(injector.stats().restarts, 1u);
  EXPECT_EQ(restarted, "s");
  EXPECT_FALSE(bus.is_down("s"));
}

TEST_F(FaultsFixture, DownSourceCannotSend) {
  FaultInjector injector(bus, FaultPlan{});
  attach_sink("s");
  bus.set_down("c", true);
  bus.send("c", "s", {1});
  engine.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(bus.dropped(), 1u);
}

TEST_F(FaultsFixture, SameSeedSameFaultDecisions) {
  // Two independent runs of the identical (plan, traffic) must produce
  // identical fault statistics — chaos is replayable.
  auto run_once = [](std::uint64_t seed) {
    Engine engine;
    LatencyModel latency{LatencyModelConfig{}, 3};
    MessageBus bus{engine, latency};
    FaultPlan plan;
    plan.seed = seed;
    plan.everywhere = FaultSpec{.drop_prob = 0.3,
                                .duplicate_prob = 0.2,
                                .delay_prob = 0.3,
                                .truncate_prob = 0.1,
                                .corrupt_prob = 0.2};
    FaultInjector injector(bus, plan);
    int received = 0;
    bus.attach("s", [&](const EndpointId&, std::vector<std::uint8_t>) {
      ++received;
    });
    for (int i = 0; i < 200; ++i) bus.send("c", "s", {1, 2, 3, 4});
    engine.run();
    return std::tuple{received, injector.stats().dropped,
                      injector.stats().duplicated, injector.stats().delayed,
                      injector.stats().truncated, injector.stats().corrupted};
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));  // and the seed actually matters
}

TEST_F(FaultsFixture, DetachRestoresDirectPath) {
  attach_sink("s");
  {
    FaultPlan plan;
    plan.everywhere.drop_prob = 1.0;
    FaultInjector injector(bus, plan);
    bus.send("c", "s", {1});
    engine.run();
    EXPECT_EQ(received, 0);
  }
  bus.send("c", "s", {1});  // injector destroyed: back to direct delivery
  engine.run();
  EXPECT_EQ(received, 1);
}

}  // namespace
}  // namespace alphawan
