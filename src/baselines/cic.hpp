// Baseline: CIC-style concurrent interference cancellation (Shahid et al.,
// SIGCOMM'21). A CIC receiver separates up to K time-overlapping
// same-channel transmissions using sub-band spectra, recovering packets a
// stock demodulator loses to collisions. Per the paper's methodology
// (Sec. 5.2.1), CIC is still subject to the COTS decoder budget: resolving
// a collision does not conjure a free decoder, so decoder-contention drops
// stay dropped.
#pragma once

#include "sim/scenario.hpp"

namespace alphawan {

struct CicOptions {
  // Maximum simultaneous same-channel transmissions CIC can disentangle.
  int max_resolvable = 3;
  // Minimum SNR headroom above the demod threshold CIC needs to separate
  // sub-band spectra reliably.
  Db snr_headroom{1.0};
};

// Post-processor for ScenarioRunner: promotes collision drops back to
// receptions when CIC could have resolved them.
[[nodiscard]] RxPostProcessor make_cic_processor(
    CicOptions options = CicOptions{});

}  // namespace alphawan
