// The network server (ChirpStack counterpart): deduplicates uplinks
// forwarded by multiple gateways, stores the operational log that
// AlphaWAN's log parser and traffic estimator consume, and tracks
// delivery statistics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "net/gateway.hpp"

namespace alphawan {

// Per-node link profile maintained by the server from uplink metadata:
// which gateways hear the node and how well. This is the ADR input and a
// core piece of the CP problem's coverage relation r_ijl.
struct LinkProfile {
  // Best SNR seen per gateway.
  std::map<GatewayId, Db> gateway_snr;
  std::size_t uplinks = 0;

  [[nodiscard]] Db best_snr() const;
  [[nodiscard]] std::size_t gateway_count() const {
    return gateway_snr.size();
  }
};

// The channel plan this server last adopted from the Master, tagged with
// the plan epoch it was computed at (see core/master.hpp). Kept as
// last-known-good: adopt_plan never rolls back to an older epoch.
struct AdoptedPlan {
  std::uint32_t epoch = 0;
  Hz frequency_offset{0.0};
  std::vector<Channel> channels;
};

class NetworkServer {
 public:
  explicit NetworkServer(NetworkId network) : network_(network) {}

  [[nodiscard]] NetworkId network() const { return network_; }

  // Adopt a Master-assigned plan. Stale epochs (older than the plan in
  // force) are ignored so a delayed or duplicated backhaul delivery can
  // never overwrite a newer assignment; returns whether it was applied.
  bool adopt_plan(std::uint32_t epoch, Hz frequency_offset,
                  std::vector<Channel> channels);
  [[nodiscard]] bool has_plan() const { return plan_.has_value(); }
  // Last-known-good plan; valid only when has_plan().
  [[nodiscard]] const AdoptedPlan& plan() const { return *plan_; }
  [[nodiscard]] std::uint32_t plan_epoch() const {
    return plan_ ? plan_->epoch : 0;
  }
  [[nodiscard]] std::size_t stale_plans_ignored() const {
    return stale_plans_ignored_;
  }

  // Ingest one window's uplink records from all gateways. Duplicate
  // receptions of the same packet by several gateways count once.
  void ingest(const std::vector<UplinkRecord>& records);

  // Unique packets delivered so far.
  [[nodiscard]] std::size_t delivered_packets() const {
    return delivered_.size();
  }
  [[nodiscard]] bool was_delivered(PacketId packet) const {
    return delivered_.contains(packet);
  }

  // The raw operational log (every reception, including duplicates).
  [[nodiscard]] const std::vector<UplinkRecord>& log() const { return log_; }

  // Link profiles per node.
  [[nodiscard]] const std::map<NodeId, LinkProfile>& link_profiles() const {
    return link_profiles_;
  }

  // Number of unique packets delivered per node (traffic evidence).
  [[nodiscard]] const std::map<NodeId, std::size_t>& per_node_delivered()
      const {
    return per_node_delivered_;
  }

  void clear();

 private:
  NetworkId network_;
  std::optional<AdoptedPlan> plan_;
  std::size_t stale_plans_ignored_ = 0;
  std::vector<UplinkRecord> log_;
  std::set<PacketId> delivered_;
  std::map<NodeId, LinkProfile> link_profiles_;
  std::map<NodeId, std::size_t> per_node_delivered_;
};

}  // namespace alphawan
