// Figure 13 reproduction: LoRaWAN at scale (2k-12k duty-cycled users,
// 15 gateways, 4.8 MHz) — AlphaWAN vs the state of the art.
//   (a) aggregate network throughput  (b) packet reception ratio
//   (c) loss-factor breakdown at 6k users
//   (d) spectrum utilization (per-DR delivered share)
// Baselines: LoRaWAN w/o ADR, LoRaWAN w/ ADR, LMAC (CSMA), CIC (collision
// resolution, still bound by 16 decoders), Random CP.
#include "harness.hpp"

#include "baselines/cic.hpp"
#include "baselines/lmac.hpp"
#include "baselines/random_cp.hpp"

using namespace alphawan;
using namespace alphawan::bench;

namespace {

constexpr Seconds kWindow{30.0};
// Per-user airtime utilization (half the regulatory 1% duty budget).
constexpr double kUserUtilization = 0.005;
constexpr std::size_t kPhysicalNodes = 144;

// Receive-pipeline throughput across every measured window, aggregated
// over all (strategy, scale) runs: the scaled-ops hot-path metric tracked
// in BENCH_PR4.json (planning/GA time deliberately excluded).
PerfAccumulator window_perf("fig13_scaled_ops.window");

enum class Strategy {
  kNoAdr,
  kAdr,
  kLmac,
  kCic,
  kRandomCp,
  kAlphaWan,
};

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kNoAdr: return "LoRaWAN w/o ADR";
    case Strategy::kAdr: return "LoRaWAN w/ ADR";
    case Strategy::kLmac: return "LMAC";
    case Strategy::kCic: return "CIC";
    case Strategy::kRandomCp: return "Random CP";
    case Strategy::kAlphaWan: return "AlphaWAN";
  }
  return "?";
}

struct Result {
  double throughput_bps = 0;
  double prr = 0;
  double dec = 0, chan = 0, other = 0;
  std::array<double, kNumDataRates> dr_share{};
};

Result run(Strategy strategy, std::size_t users, std::uint64_t seed) {
  Deployment deployment{Region{Meters{2100}, Meters{1600}}, spectrum_4m8(),
                        urban_channel(seed)};
  auto& network = deployment.add_network("op");
  Rng rng(seed);
  deployment.place_gateways(network, 15, default_profile(), rng);
  deployment.place_nodes(network, kPhysicalNodes, rng);

  StandardLorawanOptions std_options;
  std_options.use_adr = strategy != Strategy::kNoAdr;
  // Commercial operators run homogeneous plans (paper Sec. 3.2); only the
  // channel-planning strategies diversify them.
  std_options.spread_gateways_across_plans = false;
  std_options.adr.installation_margin = Db{10.0};  // keep links robust
  std_options.adr.min_tx_power = Dbm{8.0};
  apply_standard_lorawan(deployment, network, rng, std_options);
  if (strategy == Strategy::kRandomCp) {
    apply_random_cp(deployment, network, rng);
  } else if (strategy == Strategy::kAlphaWan) {
    LatencyModel latency{LatencyModelConfig{}, 3};
    AlphaWanConfig cfg;
    cfg.strategy8_spectrum_sharing = false;
    cfg.planner.ga.population = 24;
    cfg.planner.ga.generations = 40;
    // Demand in Erlangs (offered airtime utilization): each physical node
    // hosts users/144 virtual users at kUserUtilization each. Decoder
    // capacities C_j are concurrency limits, so Erlang units line up.
    const double users_per_node =
        static_cast<double>(users) / kPhysicalNodes;
    cfg.planner.pair_capacity = 0.08;  // clean Aloha load per (ch, DR) pair
    AlphaWanController controller(cfg, latency);
    const auto links = oracle_link_estimates(deployment, network);
    std::map<NodeId, double> demand;
    for (const auto& node : network.nodes()) {
      demand[node.id()] = users_per_node * kUserUtilization;
    }
    (void)controller.upgrade(network, deployment.spectrum(), links, demand);
  }

  // Emulated duty-cycled users (paper Sec. 5.2.1): each physical node
  // hosts users/144 virtual users, each filling kUserUtilization of its
  // data rate's airtime.
  PacketIdSource ids;
  Rng traffic_rng(seed * 7 + 1);
  std::vector<Transmission> txs;
  const std::size_t users_per_node =
      std::max<std::size_t>(1, users / kPhysicalNodes);
  NodeId virtual_base = 1'000'000;
  for (auto& node : network.nodes()) {
    const Seconds airtime = time_on_air(node.tx_params(), 10);
    const double rate = kUserUtilization / airtime.value();
    std::vector<EndNode*> one = {&node};
    auto node_txs = emulated_user_traffic(one, users_per_node, kWindow, rate,
                                          traffic_rng, ids, virtual_base);
    virtual_base += users_per_node;
    txs.insert(txs.end(), node_txs.begin(), node_txs.end());
  }
  sort_by_start(txs);
  if (strategy == Strategy::kLmac) {
    Rng lmac_rng(seed + 5);
    txs = lmac_schedule(std::move(txs), lmac_rng);
  }

  RunOptions options;
  if (strategy == Strategy::kCic) {
    options.post_processor = make_cic_processor();
  }
  ScenarioRunner runner(deployment, seed, std::move(options));
  MetricsCollector metrics;
  (void)window_perf.time(txs.size(),
                         [&] { return runner.run_window(txs, metrics); });

  Result result;
  result.prr = metrics.total_prr();
  result.throughput_bps =
      8.0 * static_cast<double>(metrics.total_delivered_bytes()) /
      kWindow.value();
  result.dec = metrics.loss_fraction(LossCause::kDecoderContentionIntra) +
               metrics.loss_fraction(LossCause::kDecoderContentionInter);
  result.chan = metrics.loss_fraction(LossCause::kChannelContentionIntra) +
                metrics.loss_fraction(LossCause::kChannelContentionInter);
  result.other = metrics.loss_fraction(LossCause::kOther);
  // Fig. 13d — spectrum utilization: delivered traffic share per DR,
  // straight from the streaming per-DR aggregate (the full fate history is
  // no longer retained).
  const auto delivered_total = static_cast<double>(metrics.total_delivered());
  for (const DataRate dr : kAllDataRates) {
    result.dr_share[static_cast<std::size_t>(dr_value(dr))] =
        static_cast<double>(metrics.delivered_by_dr(dr));
  }
  if (delivered_total > 0) {
    for (auto& share : result.dr_share) share /= delivered_total;
  }
  return result;
}

}  // namespace

int main() {
  // Smoke mode (ALPHAWAN_BENCH_SMOKE=1): two scales, the two cheap
  // strategies — enough windows to track receive-pipeline throughput in CI
  // without paying for the GA planner at every scale.
  const std::vector<std::size_t> scales =
      perf_smoke_mode() ? std::vector<std::size_t>{2000, 6000}
                        : std::vector<std::size_t>{2000, 4000, 6000, 8000,
                                                   10000, 12000};
  const std::vector<Strategy> strategies =
      perf_smoke_mode()
          ? std::vector<Strategy>{Strategy::kNoAdr, Strategy::kAdr}
          : std::vector<Strategy>{Strategy::kNoAdr, Strategy::kAdr,
                                  Strategy::kLmac, Strategy::kCic,
                                  Strategy::kRandomCp, Strategy::kAlphaWan};

  print_header(
      "Fig. 13a/13b — throughput (kbps) and PRR vs user scale\n"
      "paper: w/o-ADR, LMAC, CIC saturate at ~6k users (decoder bound);\n"
      "AlphaWAN keeps PRR > 85% at 12k users");
  std::printf("  %-18s", "strategy");
  for (auto s : scales) std::printf(" %8zu", s);
  std::printf("\n");
  std::vector<Result> at_6k(std::size(strategies));
  for (std::size_t si = 0; si < std::size(strategies); ++si) {
    std::vector<Result> row;
    for (std::size_t sc = 0; sc < std::size(scales); ++sc) {
      row.push_back(run(strategies[si], scales[sc], 900 + sc));
      if (scales[sc] == 6000) at_6k[si] = row.back();
    }
    std::printf("  %-18s", strategy_name(strategies[si]));
    for (const auto& r : row) std::printf(" %8.1f", r.throughput_bps / 1e3);
    std::printf("  kbps\n");
    std::printf("  %-18s", "");
    for (const auto& r : row) std::printf(" %8.2f", r.prr);
    std::printf("  PRR\n");
  }

  print_header(
      "Fig. 13c — loss factors at the 6k-user scale\n"
      "paper: decoder contention dominates for the non-planning baselines");
  std::printf("  %-18s %-10s %-10s %-10s\n", "strategy", "decoder",
              "channel", "other");
  for (std::size_t si = 0; si < std::size(strategies); ++si) {
    std::printf("  %-18s %-10.3f %-10.3f %-10.3f\n",
                strategy_name(strategies[si]), at_6k[si].dec, at_6k[si].chan,
                at_6k[si].other);
  }

  print_header(
      "Fig. 13d — spectrum utilization at 6k users: delivered share per DR\n"
      "paper: ADR piles traffic on DR5; AlphaWAN uses all data rates");
  std::printf("  %-18s", "strategy");
  for (int dr = 0; dr < kNumDataRates; ++dr) std::printf("   DR%d ", dr);
  std::printf("\n");
  for (std::size_t si = 0; si < std::size(strategies); ++si) {
    std::printf("  %-18s", strategy_name(strategies[si]));
    for (int dr = 0; dr < kNumDataRates; ++dr) {
      std::printf(" %5.2f ", at_6k[si].dr_share[static_cast<std::size_t>(dr)]);
    }
    std::printf("\n");
  }
  window_perf.report();
  return 0;
}
