// Spatial sharding of the deployment plane: the region is cut into vertical
// stripes, one shard per stripe. A gateway is homed in the stripe holding
// its position; a transmitter is resident in every shard where it is
// audible (conservatively, via the link cache's candidate bound), so nodes
// near a border appear in both neighbouring shards and no reception is ever
// missed. Shard count never changes results — only how the link cache,
// event queues, and scratch arenas are partitioned (docs/sharding.md).
//
// Shard count comes from ALPHAWAN_SHARDS (default: 1), mirroring how
// ALPHAWAN_THREADS picks the parallel width (common/parallel.hpp).
#pragma once

#include "common/geometry.hpp"

namespace alphawan {

// Parse an ALPHAWAN_SHARDS-style value: a positive integer gives that many
// shards; null/empty/invalid falls back to 1 (monolithic).
[[nodiscard]] int parse_shard_count(const char* text);

// The process-wide shard default: ALPHAWAN_SHARDS if exported, 1 otherwise.
// Read once at first use.
[[nodiscard]] int default_shard_count();

// Resolve a RunOptions-style request: 0 = the process default, otherwise
// the explicit count (clamped to >= 1).
[[nodiscard]] int resolve_shard_count(int requested);

// Maps points to shard indices: `shards` equal-width vertical stripes over
// the region. Positions outside the region clamp to the nearest stripe, so
// every point has a home shard.
class ShardLayout {
 public:
  ShardLayout(const Region& region, int shards);

  [[nodiscard]] int shards() const { return shards_; }
  [[nodiscard]] int shard_of(const Point& p) const;

 private:
  int shards_;
  double stripe_width_;  // meters; region width / shards
};

}  // namespace alphawan
