#include "phy/lora_params.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace alphawan {
namespace {

TEST(LoraParams, DrToSfLadderMatchesPaper) {
  // DR0=SF12 ... DR5=SF7 (regional ladder used throughout the paper).
  EXPECT_EQ(dr_to_sf(DataRate::kDR0), SpreadingFactor::kSF12);
  EXPECT_EQ(dr_to_sf(DataRate::kDR3), SpreadingFactor::kSF9);
  EXPECT_EQ(dr_to_sf(DataRate::kDR5), SpreadingFactor::kSF7);
}

TEST(LoraParams, DrSfRoundTrip) {
  for (const DataRate dr : kAllDataRates) {
    EXPECT_EQ(sf_to_dr(dr_to_sf(dr)), dr);
  }
  for (const SpreadingFactor sf : kAllSpreadingFactors) {
    EXPECT_EQ(dr_to_sf(sf_to_dr(sf)), sf);
  }
}

TEST(LoraParams, SfIndexRoundTrip) {
  for (int i = 0; i < kNumSpreadingFactors; ++i) {
    EXPECT_EQ(sf_index(sf_from_index(i)), i);
  }
  EXPECT_EQ(sf_index(SpreadingFactor::kSF7), 0);
  EXPECT_EQ(sf_index(SpreadingFactor::kSF12), 5);
  EXPECT_EQ(sf_value(SpreadingFactor::kSF10), 10);
}

TEST(LoraParams, NamesAreDistinctAndNonEmpty) {
  std::set<std::string> names;
  for (const SpreadingFactor sf : kAllSpreadingFactors) {
    ASSERT_FALSE(sf_name(sf).empty());
    EXPECT_TRUE(names.insert(std::string(sf_name(sf))).second);
  }
  names.clear();
  for (const DataRate dr : kAllDataRates) {
    ASSERT_FALSE(dr_name(dr).empty());
    EXPECT_TRUE(names.insert(std::string(dr_name(dr))).second);
  }
}

TEST(LoraParams, OrthogonalityIsSfInequality) {
  // Quasi-orthogonality underlies the "6 users per channel" capacity figure.
  for (const SpreadingFactor a : kAllSpreadingFactors) {
    for (const SpreadingFactor b : kAllSpreadingFactors) {
      EXPECT_EQ(orthogonal(a, b), a != b);
    }
  }
}

TEST(LoraParams, TxParamsDefaultsAreLorawanUplink) {
  const TxParams params;
  EXPECT_EQ(params.coding_rate, CodingRate::kCR45);
  EXPECT_EQ(params.preamble_symbols, 8);
  EXPECT_TRUE(params.explicit_header);
  EXPECT_TRUE(params.crc_enabled);
  EXPECT_DOUBLE_EQ(params.bandwidth.value(), kLoRaBandwidth125k.value());
}

TEST(LoraParams, TxParamsEquality) {
  TxParams a, b;
  EXPECT_EQ(a, b);
  b.sf = SpreadingFactor::kSF11;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace alphawan
