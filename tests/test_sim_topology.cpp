#include "sim/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace alphawan {
namespace {

TEST(Topology, NetworksGetSequentialIdsAndStableReferences) {
  Deployment deployment{Region{Meters{1000}, Meters{1000}}, spectrum_1m6()};
  Network& first = deployment.add_network("a");
  Network& second = deployment.add_network("b");
  EXPECT_EQ(first.id(), 0u);
  EXPECT_EQ(second.id(), 1u);
  // Deque storage: growing the deployment must not invalidate references.
  for (int i = 0; i < 16; ++i) {
    deployment.add_network("extra-" + std::to_string(i));
  }
  EXPECT_EQ(first.name(), "a");
  EXPECT_EQ(deployment.find_network(1), &second);
  EXPECT_EQ(deployment.find_network(999), nullptr);
}

TEST(Topology, IdAllocationIsGloballyUnique) {
  Deployment deployment{Region{Meters{1000}, Meters{1000}}, spectrum_1m6()};
  std::set<NodeId> nodes;
  std::set<GatewayId> gateways;
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(nodes.insert(deployment.next_node_id()).second);
    EXPECT_TRUE(gateways.insert(deployment.next_gateway_id()).second);
  }
}

TEST(Topology, PlaceGatewaysCoversRegionWithConfiguredRadios) {
  Deployment deployment{Region{Meters{2000}, Meters{1500}}, spectrum_1m6()};
  Network& network = deployment.add_network("op");
  Rng rng(42);
  const auto ids = deployment.place_gateways(network, 4, default_profile(), rng);
  EXPECT_EQ(ids.size(), 4u);
  EXPECT_EQ(network.gateways().size(), 4u);
  for (const auto& gw : network.gateways()) {
    EXPECT_TRUE(deployment.region().contains(gw.position()));
    // place_gateways applies standard plan #0.
    ASSERT_FALSE(gw.channels().empty());
    for (const auto& channel : gw.channels()) {
      EXPECT_TRUE(deployment.spectrum().contains(channel));
    }
  }
}

TEST(Topology, PlaceNodesStayInRegionOnSpectrumChannels) {
  Deployment deployment{Region{Meters{1200}, Meters{1200}}, spectrum_1m6()};
  Network& network = deployment.add_network("op");
  Rng rng(7);
  deployment.place_gateways(network, 1, default_profile(), rng);
  const auto ids = deployment.place_nodes(network, 25, rng);
  EXPECT_EQ(ids.size(), 25u);
  EXPECT_EQ(network.nodes().size(), 25u);
  for (const auto& node : network.nodes()) {
    EXPECT_TRUE(deployment.region().contains(node.position()));
    EXPECT_TRUE(deployment.spectrum().contains(node.config().channel));
  }
}

TEST(Topology, MeanSnrDecreasesWithDistance) {
  Deployment deployment{Region{Meters{4000}, Meters{4000}}, spectrum_1m6()};
  Network& network = deployment.add_network("op");
  auto& gw = network.add_gateway(deployment.next_gateway_id(), Point{Meters{2000}, Meters{2000}},
                                 default_profile());
  NodeRadioConfig cfg;
  cfg.channel = deployment.spectrum().grid_channel(0);
  cfg.tx_power = Dbm{14.0};
  auto& near = network.add_node(deployment.next_node_id(), Point{Meters{2100}, Meters{2000}}, cfg);
  auto& far = network.add_node(deployment.next_node_id(), Point{Meters{3900}, Meters{3900}}, cfg);
  EXPECT_GT(deployment.mean_snr(near, gw), deployment.mean_snr(far, gw));
}

TEST(Topology, FeasibleDrDegradesToDr0OnWeakLinks) {
  // A huge region: the corner node cannot clear any fast-DR threshold.
  Deployment deployment{Region{Meters{60000}, Meters{60000}}, spectrum_1m6()};
  Network& network = deployment.add_network("op");
  network.add_gateway(deployment.next_gateway_id(), Point{Meters{30000}, Meters{30000}},
                      default_profile());
  NodeRadioConfig cfg;
  cfg.channel = deployment.spectrum().grid_channel(0);
  cfg.tx_power = Dbm{14.0};
  auto& near =
      network.add_node(deployment.next_node_id(), Point{Meters{30050}, Meters{30000}}, cfg);
  auto& far = network.add_node(deployment.next_node_id(), Point{Meters{100}, Meters{100}}, cfg);
  EXPECT_EQ(deployment.feasible_dr(far, network), DataRate::kDR0);
  // Adjacent to the gateway, a faster DR must be feasible.
  EXPECT_GT(dr_value(deployment.feasible_dr(near, network)),
            dr_value(DataRate::kDR0));
}

}  // namespace
}  // namespace alphawan
