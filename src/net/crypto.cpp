#include "net/crypto.hpp"

#include <cstring>

namespace alphawan {
namespace {

// FIPS-197 S-box.
constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

}  // namespace

Aes128::Aes128(const AesKey& key) {
  std::memcpy(round_keys_.data(), key.data(), 16);
  for (int i = 4; i < 44; ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, &round_keys_[static_cast<std::size_t>(4 * (i - 1))], 4);
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ kRcon[i / 4]);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
    }
    for (int b = 0; b < 4; ++b) {
      round_keys_[static_cast<std::size_t>(4 * i + b)] = static_cast<std::uint8_t>(
          round_keys_[static_cast<std::size_t>(4 * (i - 4) + b)] ^ temp[b]);
    }
  }
}

AesBlock Aes128::encrypt(const AesBlock& plaintext) const {
  AesBlock state = plaintext;
  auto add_round_key = [&](int round) {
    for (int i = 0; i < 16; ++i) {
      state[static_cast<std::size_t>(i)] ^=
          round_keys_[static_cast<std::size_t>(16 * round + i)];
    }
  };
  auto sub_bytes = [&] {
    for (auto& b : state) b = kSbox[b];
  };
  auto shift_rows = [&] {
    // Row r (bytes r, r+4, r+8, r+12) rotated left by r.
    std::uint8_t t = state[1];
    state[1] = state[5]; state[5] = state[9]; state[9] = state[13];
    state[13] = t;
    std::swap(state[2], state[10]);
    std::swap(state[6], state[14]);
    t = state[15];
    state[15] = state[11]; state[11] = state[7]; state[7] = state[3];
    state[3] = t;
  };
  auto mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      auto* col = &state[static_cast<std::size_t>(4 * c)];
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      const std::uint8_t all = static_cast<std::uint8_t>(a0 ^ a1 ^ a2 ^ a3);
      col[0] = static_cast<std::uint8_t>(a0 ^ all ^ xtime(static_cast<std::uint8_t>(a0 ^ a1)));
      col[1] = static_cast<std::uint8_t>(a1 ^ all ^ xtime(static_cast<std::uint8_t>(a1 ^ a2)));
      col[2] = static_cast<std::uint8_t>(a2 ^ all ^ xtime(static_cast<std::uint8_t>(a2 ^ a3)));
      col[3] = static_cast<std::uint8_t>(a3 ^ all ^ xtime(static_cast<std::uint8_t>(a3 ^ a0)));
    }
  };

  add_round_key(0);
  for (int round = 1; round < 10; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
  return state;
}

namespace {

AesBlock left_shift_one(const AesBlock& in) {
  AesBlock out{};
  std::uint8_t carry = 0;
  for (int i = 15; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    out[idx] = static_cast<std::uint8_t>((in[idx] << 1) | carry);
    carry = static_cast<std::uint8_t>(in[idx] >> 7);
  }
  return out;
}

void xor_block(AesBlock& a, const AesBlock& b) {
  for (int i = 0; i < 16; ++i) {
    a[static_cast<std::size_t>(i)] ^= b[static_cast<std::size_t>(i)];
  }
}

}  // namespace

AesBlock aes_cmac(const AesKey& key, std::span<const std::uint8_t> message) {
  const Aes128 aes(key);
  // Subkey generation.
  AesBlock l = aes.encrypt(AesBlock{});
  AesBlock k1 = left_shift_one(l);
  if (l[0] & 0x80) k1[15] ^= 0x87;
  AesBlock k2 = left_shift_one(k1);
  if (k1[0] & 0x80) k2[15] ^= 0x87;

  const std::size_t n = message.size();
  const std::size_t full_blocks = n == 0 ? 0 : (n - 1) / 16;
  const std::size_t last_len = n - full_blocks * 16;
  const bool last_complete = n > 0 && last_len == 16;

  AesBlock x{};
  for (std::size_t i = 0; i < full_blocks; ++i) {
    AesBlock block;
    std::memcpy(block.data(), message.data() + i * 16, 16);
    xor_block(x, block);
    x = aes.encrypt(x);
  }
  AesBlock last{};
  if (last_complete) {
    std::memcpy(last.data(), message.data() + full_blocks * 16, 16);
    xor_block(last, k1);
  } else {
    std::memcpy(last.data(), message.data() + full_blocks * 16, last_len);
    last[last_len] = 0x80;
    xor_block(last, k2);
  }
  xor_block(x, last);
  return aes.encrypt(x);
}

std::vector<std::uint8_t> lorawan_encrypt_payload(
    const AesKey& key, std::uint32_t dev_addr, std::uint32_t fcnt,
    std::uint8_t direction, std::span<const std::uint8_t> payload) {
  const Aes128 aes(key);
  std::vector<std::uint8_t> out(payload.begin(), payload.end());
  const std::size_t blocks = (payload.size() + 15) / 16;
  for (std::size_t i = 0; i < blocks; ++i) {
    AesBlock a{};
    a[0] = 0x01;
    a[5] = direction;
    for (int b = 0; b < 4; ++b) {
      a[static_cast<std::size_t>(6 + b)] =
          static_cast<std::uint8_t>(dev_addr >> (8 * b));
      a[static_cast<std::size_t>(10 + b)] =
          static_cast<std::uint8_t>(fcnt >> (8 * b));
    }
    a[15] = static_cast<std::uint8_t>(i + 1);
    const AesBlock s = aes.encrypt(a);
    const std::size_t offset = i * 16;
    const std::size_t len = std::min<std::size_t>(16, payload.size() - offset);
    for (std::size_t b = 0; b < len; ++b) out[offset + b] ^= s[b];
  }
  return out;
}

std::uint32_t lorawan_mic(const AesKey& nwk_skey, std::uint32_t dev_addr,
                          std::uint32_t fcnt, std::uint8_t direction,
                          std::span<const std::uint8_t> msg) {
  std::vector<std::uint8_t> b0_msg(16 + msg.size());
  b0_msg[0] = 0x49;
  b0_msg[5] = direction;
  for (int b = 0; b < 4; ++b) {
    b0_msg[static_cast<std::size_t>(6 + b)] =
        static_cast<std::uint8_t>(dev_addr >> (8 * b));
    b0_msg[static_cast<std::size_t>(10 + b)] =
        static_cast<std::uint8_t>(fcnt >> (8 * b));
  }
  b0_msg[15] = static_cast<std::uint8_t>(msg.size());
  std::memcpy(b0_msg.data() + 16, msg.data(), msg.size());
  const AesBlock mac = aes_cmac(nwk_skey, b0_msg);
  return static_cast<std::uint32_t>(mac[0]) |
         (static_cast<std::uint32_t>(mac[1]) << 8) |
         (static_cast<std::uint32_t>(mac[2]) << 16) |
         (static_cast<std::uint32_t>(mac[3]) << 24);
}

}  // namespace alphawan
