// Basic identifiers, physical-unit aliases, and constants shared by all
// AlphaWAN subsystems.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <limits>

#include "common/units.hpp"

namespace alphawan {

// ---- identifiers ---------------------------------------------------------
using NodeId = std::uint32_t;
using GatewayId = std::uint32_t;
using NetworkId = std::uint16_t;
using ChannelIndex = std::int32_t;  // index into a band plan's channel grid
using PacketId = std::uint64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr GatewayId kInvalidGateway =
    std::numeric_limits<GatewayId>::max();
inline constexpr ChannelIndex kInvalidChannel = -1;

// Gateways enter the shadowing-cache keyspace (phy/channel_model.hpp) offset
// by this base so node ids and gateway ids can never collide as link
// endpoints. Shared by the runner, the replay checker, and the link cache —
// all three must derive identical keys for the same physical link.
inline constexpr std::uint64_t kGatewayKeyBase = 1ULL << 32;

// ---- physical units ------------------------------------------------------
// Strong quantity types (see common/units.hpp). All frequencies in Hz, all
// powers in dBm (or dB for ratios), all times in seconds unless a name says
// otherwise. Construction from a raw double is explicit: `Dbm{-120.0}` or
// `-120.0_dBm`; `.value()` unwraps for transcendental math and I/O.

inline constexpr Hz kLoRaBandwidth125k{125e3};
inline constexpr Hz kLoRaBandwidth250k{250e3};
inline constexpr Hz kLoRaBandwidth500k{500e3};

// Standard LoRaWAN channel spacing used throughout the paper's testbed
// (8 channels per 1.6 MHz of spectrum).
inline constexpr Hz kChannelSpacing{200e3};

namespace detail {
// Not constexpr on purpose: reaching this in a constant expression is a
// compile error, which is how noise_floor_dbm rejects unknown bandwidths
// at compile time. At runtime an unknown bandwidth is a hard model error.
[[noreturn]] inline void unknown_noise_floor_bandwidth() { std::abort(); }
}  // namespace detail

// Thermal noise floor of a LoRa channel: -174 dBm/Hz + 10log10(BW) + a
// typical 6 dB receiver noise figure. Keyed exactly off the three named
// kLoRaBandwidth* constants; any other bandwidth is a compile-time error
// in constexpr context (and aborts at runtime).
[[nodiscard]] constexpr Dbm noise_floor_dbm(Hz bandwidth) {
  // 10*log10(BW) precomputed for the three LoRa bandwidths.
  if (bandwidth == kLoRaBandwidth125k) {
    return Dbm{-174.0 + 50.97 + 6.0};
  }
  if (bandwidth == kLoRaBandwidth250k) {
    return Dbm{-174.0 + 53.98 + 6.0};
  }
  if (bandwidth == kLoRaBandwidth500k) {
    return Dbm{-174.0 + 56.99 + 6.0};
  }
  detail::unknown_noise_floor_bandwidth();
}

}  // namespace alphawan
