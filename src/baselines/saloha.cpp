#include "baselines/saloha.hpp"

#include <algorithm>
#include <cmath>

#include "sim/traffic.hpp"

namespace alphawan {

std::vector<Transmission> SlottedAlohaPolicy::shape_window(
    std::vector<Transmission> txs, Rng& rng) const {
  const SlottedAlohaOptions& options = options_;
  // Per-node clock offsets come from a keyed substream so a node's sync
  // error is identical no matter how the window's packets are ordered (and
  // across windows — a clock does not re-draw its error per packet).
  const Rng sync_root = rng.substream("saloha-sync");
  for (auto& tx : txs) {
    // Slot grid of this transmission's radio setting: airtime + guard,
    // anchored at t=0. All nodes in a DR class share the grid.
    const Seconds slot =
        time_on_air(tx.params, tx.payload_bytes) + options.guard;
    Rng node_clock = sync_root.substream(static_cast<std::uint64_t>(tx.node));
    const double offset = std::clamp(
        node_clock.normal(0.0, options.sync_jitter.value()),
        -options.max_offset.value(), options.max_offset.value());
    // Delay to the next slot boundary as seen by the node's local clock:
    // boundaries sit at k * slot + offset in true time, and the first one
    // at or after tx.start is the transmit instant.
    const double k =
        std::ceil((tx.start.value() - offset) / slot.value());
    tx.start = Seconds{k * slot.value() + offset};
  }
  sort_by_start(txs);
  return txs;
}

}  // namespace alphawan
