#include "phy/overlap.hpp"

#include <algorithm>
#include <cmath>

namespace alphawan {

double overlap_ratio(const Channel& a, const Channel& b) {
  const Hz lo = std::max(a.low(), b.low());
  const Hz hi = std::min(a.high(), b.high());
  const Hz width = std::max(Hz{0.0}, hi - lo);
  const Hz denom = std::min(a.bandwidth, b.bandwidth);
  if (denom <= Hz{0.0}) return 0.0;
  return std::clamp(width / denom, 0.0, 1.0);
}

bool detectable(const Channel& packet_channel, const Channel& rx_channel) {
  return overlap_ratio(packet_channel, rx_channel) >= kDetectOverlapThreshold;
}

Db coupling_db(const Channel& src, const Channel& dst) {
  const double rho = overlap_ratio(src, dst);
  if (rho <= 0.0) return Db{-400.0};
  return Db{10.0 * std::log10(rho) - (1.0 - rho) * kSelectivitySlope.value()};
}

Dbm effective_interference_dbm(Dbm power, const Channel& src,
                               const Channel& dst) {
  const Db coupling = coupling_db(src, dst);
  if (coupling <= Db{-399.0}) return Dbm{-400.0};
  return power + coupling;
}

}  // namespace alphawan
