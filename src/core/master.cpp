#include "core/master.hpp"

#include <algorithm>
#include <cmath>

namespace alphawan {

MasterNode::MasterNode(MasterConfig config) : config_(config) {
  config_.desired_overlap = std::clamp(config_.desired_overlap, 0.0, 0.95);
  config_.expected_networks = std::max(1, config_.expected_networks);
}

Hz MasterNode::plan_offset_step() const {
  const Hz desired_delta =
      (1.0 - config_.desired_overlap) * kLoRaBandwidth125k;
  const int networks =
      std::max<int>(config_.expected_networks,
                    static_cast<int>(slots_.size()));
  if (networks <= 1) return desired_delta;
  // Plans repeat every grid spacing; compress the step when the desired
  // misalignment cannot host everyone.
  const int capacity =
      std::max(1, static_cast<int>(kChannelSpacing / desired_delta));
  if (networks <= capacity) return desired_delta;
  return kChannelSpacing / static_cast<double>(networks);
}

double MasterNode::effective_overlap() const {
  const Hz step = plan_offset_step();
  return std::max(0.0, 1.0 - step / kLoRaBandwidth125k);
}

RegisterAckMsg MasterNode::handle_register(const RegisterMsg& msg) {
  if (!slots_.contains(msg.operator_id)) {
    const int slot = static_cast<int>(slots_.size());
    slots_[msg.operator_id] = slot;
    ++epoch_;
  }
  return RegisterAckMsg{msg.operator_id, epoch_};
}

std::optional<Hz> MasterNode::offset_of(NetworkId operator_id) const {
  const auto it = slots_.find(operator_id);
  if (it == slots_.end()) return std::nullopt;
  return config_.base_offset +
         plan_offset_step() * static_cast<double>(it->second);
}

MasterMessage MasterNode::handle_plan_request(const PlanRequestMsg& msg) {
  const auto offset = offset_of(msg.operator_id);
  if (!offset) {
    return ErrorMsg{1, "operator not registered"};
  }
  PlanAssignMsg assign;
  assign.operator_id = msg.operator_id;
  assign.frequency_offset = *offset;
  assign.overlap_ratio = effective_overlap();
  // Channels: the requested count of grid channels, shifted by the
  // operator's offset, kept inside the spectrum.
  const Spectrum& spec = config_.spectrum;
  const int want = std::max<int>(1, msg.requested_channels);
  for (int k = 0; k < spec.grid_size() && static_cast<int>(
                                              assign.channels.size()) < want;
       ++k) {
    Channel ch = spec.grid_channel(k);
    ch.center += *offset;
    if (spec.contains(ch)) assign.channels.push_back(ch);
  }
  return assign;
}

MasterService::MasterService(MasterNode& master, MessageBus& bus)
    : master_(master), bus_(bus) {
  bus_.attach(endpoint(), [this](const EndpointId& from,
                                 std::vector<std::uint8_t> payload) {
    on_message(from, std::move(payload));
  });
}

void MasterService::on_message(const EndpointId& from,
                               std::vector<std::uint8_t> payload) {
  const auto msg = decode_message(payload);
  MasterMessage reply = ErrorMsg{2, "malformed message"};
  if (msg) {
    if (const auto* reg = std::get_if<RegisterMsg>(&*msg)) {
      reply = master_.handle_register(*reg);
    } else if (const auto* req = std::get_if<PlanRequestMsg>(&*msg)) {
      reply = master_.handle_plan_request(*req);
    } else {
      reply = ErrorMsg{3, "unexpected message type"};
    }
  }
  ++requests_served_;
  bus_.send(endpoint(), from, encode_message(reply), /*wan=*/true);
}

}  // namespace alphawan
