#!/usr/bin/env python3
"""Gate: the alphawan-lint suppression baseline may only shrink.

Compares the working-tree baseline (tools/lint/lint_baseline.json) against
the copy at a git ref (default origin/main, falling back to HEAD) and fails
if any (file, check, context) entry count grew or appeared. Deleting
entries -- fixing grandfathered findings -- always passes. Run by the CI
lint-alphawan job; tests/lint/test_baseline_mechanics.py exercises it with
--against-file.

Exit status: 0 ok, 1 baseline grew, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

REPO = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
DEFAULT_BASELINE = os.path.join(REPO, "tools", "lint", "lint_baseline.json")
BASELINE_RELPATH = "tools/lint/lint_baseline.json"


def entry_counts(data) -> dict:
    counts: dict = {}
    for e in data.get("entries", []):
        key = (e["file"], e["check"], e["context"])
        counts[key] = counts.get(key, 0) + int(e.get("count", 1))
    return counts


def load_json_file(path: str):
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def load_at_ref(ref: str):
    """Baseline JSON at `ref`, or None when absent there (new file)."""
    proc = subprocess.run(
        ["git", "-C", REPO, "show", f"{ref}:{BASELINE_RELPATH}"],
        capture_output=True, text=True)
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def resolve_ref(requested: str) -> str:
    probe = subprocess.run(
        ["git", "-C", REPO, "rev-parse", "--verify", "--quiet", requested],
        capture_output=True, text=True)
    if probe.returncode == 0:
        return requested
    print(f"check_lint_baseline: ref '{requested}' not found, "
          "comparing against HEAD", file=sys.stderr)
    return "HEAD"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="working-tree baseline file")
    ap.add_argument("--against", default="origin/main", metavar="GITREF",
                    help="git ref holding the reference baseline "
                         "(default origin/main, falls back to HEAD)")
    ap.add_argument("--against-file", metavar="JSON",
                    help="compare against this file instead of a git ref")
    args = ap.parse_args()

    try:
        new = entry_counts(load_json_file(args.baseline))
    except FileNotFoundError:
        new = {}

    if args.against_file:
        old_data = load_json_file(args.against_file)
    else:
        old_data = load_at_ref(resolve_ref(args.against))
        if old_data is None:
            print("check_lint_baseline: no baseline at the reference ref "
                  "(new file) -- nothing to compare, passing")
            return 0
    old = entry_counts(old_data)

    grown = []
    for key, count in sorted(new.items()):
        if count > old.get(key, 0):
            grown.append((key, old.get(key, 0), count))
    if grown:
        print("check_lint_baseline: FAIL -- the suppression baseline may "
              "only shrink; fix or ALPHAWAN-LINT-ALLOW(+reason) new "
              "findings instead of baselining them:", file=sys.stderr)
        for (file, check, context), was, now in grown:
            print(f"  {file} [{check}] {was} -> {now}: {context}",
                  file=sys.stderr)
        return 1

    removed = sum(max(0, c - new.get(k, 0)) for k, c in old.items())
    total = sum(new.values())
    print(f"check_lint_baseline: OK ({total} entr{'y' if total == 1 else 'ies'}"
          f", {removed} burned down since the reference)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
