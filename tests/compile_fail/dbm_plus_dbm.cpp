// Compile-fail case: adding two absolute log-powers
//
// Without CF_MISUSE this file must compile (positive control proving the
// harness sees a working translation unit). With -DCF_MISUSE it must NOT
// compile — ctest runs both variants (see CMakeLists.txt).
#include "common/units.hpp"

using namespace alphawan;

// Summing absolute powers needs the linear domain (combine_powers_dbm).
constexpr Dbm a{-80.0};
constexpr Dbm b{-90.0};
constexpr Db ok = a - b;  // SIR: the meaningful difference
#ifdef CF_MISUSE
constexpr Dbm bad = a + b;  // dBm + dBm is physically meaningless
#endif

int main() { return 0; }
