#include "sim/shard.hpp"

#include <algorithm>
#include <cstdlib>

namespace alphawan {

int parse_shard_count(const char* text) {
  if (text == nullptr || *text == '\0') return 1;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 1) return 1;
  return static_cast<int>(value);
}

int default_shard_count() {
  static const int count = parse_shard_count(std::getenv("ALPHAWAN_SHARDS"));
  return count;
}

int resolve_shard_count(int requested) {
  if (requested == 0) return default_shard_count();
  return std::max(requested, 1);
}

ShardLayout::ShardLayout(const Region& region, int shards)
    : shards_(std::max(shards, 1)),
      stripe_width_(region.width.value() / static_cast<double>(shards_)) {}

int ShardLayout::shard_of(const Point& p) const {
  if (stripe_width_ <= 0.0) return 0;
  const int stripe = static_cast<int>(p.x.value() / stripe_width_);
  return std::clamp(stripe, 0, shards_ - 1);
}

}  // namespace alphawan
